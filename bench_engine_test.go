// Hot-path engine benchmarks: raw event dispatch, process wakeups, RPC
// round-trips, and end-to-end application throughput (virtual sim-seconds
// simulated per wall-clock second).
//
// These are the numbers tracked across PRs in BENCH_engine.json; regenerate
// it with scripts/bench.sh. Run ad hoc with:
//
//	go test -run '^$' -bench 'Engine|RPCRoundTrip|EndToEnd' -benchmem .
package albatross

import (
	"testing"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/harness"
	"albatross/internal/netsim"
	"albatross/internal/orca"
	"albatross/internal/sim"
)

// BenchmarkEngineEvents measures pure event-queue throughput: b.N timer
// events with distinct timestamps, each insertion and removal exercising the
// time-ordered queue (the heap path).
func BenchmarkEngineEvents(b *testing.B) {
	b.ReportAllocs()
	e := sim.NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(time.Microsecond, tick)
		}
	}
	e.After(time.Microsecond, tick)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	if n != b.N {
		b.Fatalf("ran %d events, want %d", n, b.N)
	}
}

// BenchmarkEngineSameInstantEvents measures dispatch of events that all fire
// at the current instant — the zero-delay case the ready ring serves.
func BenchmarkEngineSameInstantEvents(b *testing.B) {
	b.ReportAllocs()
	e := sim.NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(0, tick)
		}
	}
	e.After(0, tick)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	if n != b.N {
		b.Fatalf("ran %d events, want %d", n, b.N)
	}
}

// BenchmarkEngineWakes measures the park/wake handoff cycle: two processes
// baton-pass through a pair of mailboxes, so every iteration is one Put
// (wake) plus one Get (park) on each side, all at the same virtual instant.
func BenchmarkEngineWakes(b *testing.B) {
	b.ReportAllocs()
	e := sim.NewEngine()
	ping := sim.NewMailbox(e, "ping")
	pong := sim.NewMailbox(e, "pong")
	n := b.N
	var tok any = "tok" // pre-boxed: Put(i) would allocate per iteration
	e.Go("a", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			ping.Put(tok)
			pong.Get(p)
		}
	})
	e.Go("b", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			ping.Get(p)
			pong.Put(tok)
		}
	})
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRPCRoundTrip measures a full simulated remote invocation on a
// two-node LAN: request serialization, delivery, dispatch, reply, and the
// caller's park/wake — the per-operation cost every application pays.
func BenchmarkRPCRoundTrip(b *testing.B) {
	b.ReportAllocs()
	sys := core.NewDAS(1, 2)
	obj := sys.RTS.NewObject("bench", 0, new(int))
	n := b.N
	sys.SpawnAt(1, "caller", func(w *core.Worker) {
		for i := 0; i < n; i++ {
			w.Invoke(obj, orca.Op{Name: "inc", ArgBytes: 8,
				Apply: func(s any) any { *(s.(*int))++; return nil }})
		}
	})
	if _, err := sys.Run(); err != nil {
		b.Fatal(err)
	}
	if *(obj.State().(*int)) != b.N {
		b.Fatal("lost invocations")
	}
}

// benchEndToEnd runs one full application configuration per iteration and
// reports virtual sim-seconds per wall-clock second — the headline metric
// for how large a platform/problem the simulator can model in real time.
func benchEndToEnd(b *testing.B, appName string, clusters, perCluster int) {
	b.Helper()
	b.ReportAllocs()
	app, err := harness.AppByName(appName)
	if err != nil {
		b.Fatal(err)
	}
	var simSecs float64
	start := time.Now()
	for i := 0; i < b.N; i++ {
		m, err := harness.RunOne(app, clusters, perCluster, false)
		if err != nil {
			b.Fatal(err)
		}
		simSecs += m.Seconds()
	}
	if wall := time.Since(start).Seconds(); wall > 0 {
		b.ReportMetric(simSecs/wall, "simsec/wallsec")
	}
}

// The eight end-to-end benchmarks run every application of the paper's
// suite on a 2x8 wide-area system; together they cover every communication
// style the runtime serves. BENCH_apps.json tracks them across PRs.

// BenchmarkEndToEndASP is broadcast-dominated (sequencer-ordered updates).
func BenchmarkEndToEndASP(b *testing.B) { benchEndToEnd(b, "ASP", 2, 8) }

// BenchmarkEndToEndSOR is point-to-point/RPC-dominated (neighbor exchange).
func BenchmarkEndToEndSOR(b *testing.B) { benchEndToEnd(b, "SOR", 2, 8) }

// BenchmarkEndToEndWater is an all-to-all object-invocation exchange.
func BenchmarkEndToEndWater(b *testing.B) { benchEndToEnd(b, "Water", 2, 8) }

// BenchmarkEndToEndTSP is work-stealing with bound broadcasts.
func BenchmarkEndToEndTSP(b *testing.B) { benchEndToEnd(b, "TSP", 2, 8) }

// BenchmarkEndToEndATPG is static work distribution plus reductions.
func BenchmarkEndToEndATPG(b *testing.B) { benchEndToEnd(b, "ATPG", 2, 8) }

// BenchmarkEndToEndIDA is work-stealing with synchronous deepening rounds.
func BenchmarkEndToEndIDA(b *testing.B) { benchEndToEnd(b, "IDA*", 2, 8) }

// BenchmarkEndToEndRA is a storm of tiny asynchronous messages.
func BenchmarkEndToEndRA(b *testing.B) { benchEndToEnd(b, "RA", 2, 8) }

// BenchmarkEndToEndACP is iterative asynchronous neighbor updates.
func BenchmarkEndToEndACP(b *testing.B) { benchEndToEnd(b, "ACP", 2, 8) }

// benchEndToEndT is benchEndToEnd on the gateway transport layer: the same
// original program, with WAN messages coalesced into frames and striped over
// parallel streams. Comparing RA/ASP with their plain EndToEnd runs shows the
// simulator-side cost of framing (fewer, larger wire events) next to the
// simulated benefit.
func benchEndToEndT(b *testing.B, appName string, clusters, perCluster int) {
	b.Helper()
	b.ReportAllocs()
	app, err := harness.AppByName(appName)
	if err != nil {
		b.Fatal(err)
	}
	var simSecs float64
	start := time.Now()
	for i := 0; i < b.N; i++ {
		m, err := harness.RunOneT(app, clusters, perCluster, false, harness.DefaultTransport)
		if err != nil {
			b.Fatal(err)
		}
		simSecs += m.Seconds()
	}
	if wall := time.Since(start).Seconds(); wall > 0 {
		b.ReportMetric(simSecs/wall, "simsec/wallsec")
	}
}

// benchEndToEndGrid runs one application per iteration on the checked-in
// 64-cluster tiered topology (examples/topologies/tiered64.json): the
// grid-scale smoke for sparse adjacency, multi-hop store-and-forward
// routing, and per-link-class metering, end to end through the harness.
func benchEndToEndGrid(b *testing.B, appName string) {
	b.Helper()
	b.ReportAllocs()
	topo, err := cluster.LoadTopology("examples/topologies/tiered64.json")
	if err != nil {
		b.Fatal(err)
	}
	app, err := harness.AppByName(appName)
	if err != nil {
		b.Fatal(err)
	}
	var simSecs float64
	start := time.Now()
	for i := 0; i < b.N; i++ {
		m, err := harness.RunTopoOne(app, topo, false, harness.Transport{})
		if err != nil {
			b.Fatal(err)
		}
		simSecs += m.Seconds()
	}
	if wall := time.Since(start).Seconds(); wall > 0 {
		b.ReportMetric(simSecs/wall, "simsec/wallsec")
	}
}

// BenchmarkEndToEndGridASP is the broadcast-heavy ASP across 64 tiered
// clusters — sequenced traffic forwarded over backbone and regional links.
func BenchmarkEndToEndGridASP(b *testing.B) { benchEndToEndGrid(b, "ASP") }

// BenchmarkEndToEndGridRA is the RA message storm across 64 tiered clusters —
// the stress case for per-hop forwarding records and link queueing.
func BenchmarkEndToEndGridRA(b *testing.B) { benchEndToEndGrid(b, "RA") }

// BenchmarkEndToEndRATransport is the RA message storm on the coalescing/
// striping runtime — the best case for framing (tiny asynchronous messages).
func BenchmarkEndToEndRATransport(b *testing.B) { benchEndToEndT(b, "RA", 2, 8) }

// BenchmarkEndToEndASPTransport is the broadcast-heavy ASP on the transport
// runtime; sequenced rows exercise frame ordering under fan-out.
func BenchmarkEndToEndASPTransport(b *testing.B) { benchEndToEndT(b, "ASP", 2, 8) }

// benchEngineMode runs one full application configuration per iteration
// with the given engine shard count (0 = the sequential engine), reporting
// virtual sim-seconds per wall-clock second. Comparing an application's
// Sequential and Shards4 variants measures what the cluster-sharded engine
// buys end to end; results are byte-identical in either mode, so only the
// wall clock differs. Speedup over sequential requires free cores: with
// GOMAXPROCS (or the machine) at 1 the sharded engine serializes its LPs
// and only the window-synchronization overhead shows.
func benchEngineMode(b *testing.B, appName string, clusters, perCluster, shards int) {
	b.Helper()
	b.ReportAllocs()
	app, err := harness.AppByName(appName)
	if err != nil {
		b.Fatal(err)
	}
	var simSecs float64
	start := time.Now()
	for i := 0; i < b.N; i++ {
		var seqr orca.Sequencer
		if app.Sequencer != nil {
			seqr = app.Sequencer(false)
		}
		sys := core.NewSystem(core.Config{
			Topology:  cluster.DAS(clusters, perCluster),
			Params:    harness.Params,
			Sequencer: seqr,
			Shards:    shards,
		})
		verify := app.Build(sys, false)
		m, err := sys.Run()
		if err != nil {
			b.Fatal(err)
		}
		if err := verify(); err != nil {
			b.Fatal(err)
		}
		simSecs += m.Seconds()
	}
	if wall := time.Since(start).Seconds(); wall > 0 {
		b.ReportMetric(simSecs/wall, "simsec/wallsec")
	}
}

// The engine-mode pairs below benchmark shardable applications on a
// four-cluster platform, sequentially and with four LPs. Water and ATPG are
// the original pair from the engine's introduction; TSP, IDA* and RA are the
// event-dense crawlers the LP-pinned sequencer and shard-safe collectives
// unlocked — the runs where parallel dispatch has the most wall-clock to
// reclaim. BENCH_engine.json records both sides of each pair.

func BenchmarkEngineModeWaterSequential(b *testing.B) { benchEngineMode(b, "Water", 4, 2, 0) }

func BenchmarkEngineModeWaterShards4(b *testing.B) { benchEngineMode(b, "Water", 4, 2, 4) }

func BenchmarkEngineModeATPGSequential(b *testing.B) { benchEngineMode(b, "ATPG", 4, 2, 0) }

func BenchmarkEngineModeATPGShards4(b *testing.B) { benchEngineMode(b, "ATPG", 4, 2, 4) }

func BenchmarkEngineModeTSPSequential(b *testing.B) { benchEngineMode(b, "TSP", 4, 2, 0) }

func BenchmarkEngineModeTSPShards4(b *testing.B) { benchEngineMode(b, "TSP", 4, 2, 4) }

func BenchmarkEngineModeIDASequential(b *testing.B) { benchEngineMode(b, "IDA*", 4, 2, 0) }

func BenchmarkEngineModeIDAShards4(b *testing.B) { benchEngineMode(b, "IDA*", 4, 2, 4) }

func BenchmarkEngineModeRASequential(b *testing.B) { benchEngineMode(b, "RA", 4, 2, 0) }

func BenchmarkEngineModeRAShards4(b *testing.B) { benchEngineMode(b, "RA", 4, 2, 4) }

// BenchmarkEngineShardedWindows measures the sharded engine's window
// machinery in isolation: four LPs each dispatch a chain of local events
// ten per synchronization window, so the per-op cost is one event dispatch
// plus a tenth of a fence crossing. The sequential BenchmarkEngineEvents is
// the baseline this overhead compares against.
func BenchmarkEngineShardedWindows(b *testing.B) {
	b.ReportAllocs()
	e := sim.NewEngine()
	lps := e.Shard(4)
	e.SetLookahead(time.Millisecond)
	total := 0
	per := b.N/len(lps) + 1
	for _, lp := range lps {
		lp := lp
		n := 0
		var tick func()
		tick = func() {
			total++
			if n++; n < per {
				lp.At(lp.Now()+100*time.Microsecond, tick)
			}
		}
		lp.At(100*time.Microsecond, tick)
	}
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	if total < b.N {
		b.Fatalf("ran %d events, want >= %d", total, b.N)
	}
}

// BenchmarkShardedWindowSync measures the sharded engine's window
// synchronization under live cross-LP traffic: four LPs each run a local
// event chain and every eighth step additionally schedules a remote event
// on the next LP exactly one lookahead away — the tightest legal cross-LP
// schedule, so the fences stay load-bearing rather than idle. Besides the
// usual ns/op it reports windows/op and fences/op (windows minus
// inline-chained solo windows, i.e. barrier participations), which
// BENCH_engine.json tracks so a regression in window batching is visible
// even when raw wall clock hides it.
func BenchmarkShardedWindowSync(b *testing.B) {
	b.ReportAllocs()
	e := sim.NewEngine()
	lps := e.Shard(4)
	e.SetLookahead(time.Millisecond)
	// Each slot is touched only by its owner LP's thread: the local chain of
	// LP i and the cross events LP i-1 aims at it both run on thread i.
	counts := make([]int, len(lps))
	per := b.N/len(lps) + 1
	for i := range lps {
		i, lp, next := i, lps[i], lps[(i+1)%len(lps)]
		ni := (i + 1) % len(lps)
		bump := func() { counts[ni]++ }
		n := 0
		var tick func()
		tick = func() {
			counts[i]++
			if n++; n >= per {
				return
			}
			if n%8 == 0 {
				lp.AtShard(next, lp.Now()+time.Millisecond, bump)
			}
			lp.At(lp.Now()+200*time.Microsecond, tick)
		}
		lp.At(200*time.Microsecond, tick)
	}
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total < b.N {
		b.Fatalf("ran %d events, want >= %d", total, b.N)
	}
	var windows, fences uint64
	for _, st := range e.ShardStats() {
		windows += st.Windows
		fences += st.Windows - st.Chained
	}
	b.ReportMetric(float64(windows)/float64(b.N), "windows/op")
	b.ReportMetric(float64(fences)/float64(b.N), "fences/op")
}

// BenchmarkShardedGridASP runs broadcast-heavy ASP on the 64-cluster tiered
// topology with four LPs — the configuration the per-route lookahead matrix
// was built for — and reports the total windows and fence participations
// per run next to throughput. These are the acceptance counters for the
// matrix: the fixed baseline entry in BENCH_engine.json holds the scalar
// lookahead engine's numbers (145,060 windows per run, every one a fence).
func BenchmarkShardedGridASP(b *testing.B) {
	b.ReportAllocs()
	topo, err := cluster.LoadTopology("examples/topologies/tiered64.json")
	if err != nil {
		b.Fatal(err)
	}
	app, err := harness.AppByName("ASP")
	if err != nil {
		b.Fatal(err)
	}
	var windows, fences uint64
	var simSecs float64
	start := time.Now()
	for i := 0; i < b.N; i++ {
		var seqr orca.Sequencer
		if app.Sequencer != nil {
			seqr = app.Sequencer(false)
		}
		sys := core.NewSystem(core.Config{
			Topology:  topo,
			Params:    harness.Params,
			Sequencer: seqr,
			Shards:    4,
		})
		verify := app.Build(sys, false)
		m, err := sys.Run()
		if err != nil {
			b.Fatal(err)
		}
		if err := verify(); err != nil {
			b.Fatal(err)
		}
		for _, st := range sys.ShardStats() {
			windows += st.Windows
			fences += st.Windows - st.Chained
		}
		simSecs += m.Seconds()
	}
	if wall := time.Since(start).Seconds(); wall > 0 {
		b.ReportMetric(simSecs/wall, "simsec/wallsec")
	}
	b.ReportMetric(float64(windows)/float64(b.N), "windows/op")
	b.ReportMetric(float64(fences)/float64(b.N), "fences/op")
}

// BenchmarkNetSendLAN measures the flattened intracluster send path in
// isolation: one Send plus its delivery event per iteration.
func BenchmarkNetSendLAN(b *testing.B) {
	b.ReportAllocs()
	e := sim.NewEngine()
	net := netsim.New(e, cluster.Topology{Clusters: 1, NodesPerCluster: 2}, cluster.DASParams())
	delivered := 0
	net.SetHandler(1, func(m netsim.Msg) { delivered++ })
	for i := 0; i < b.N; i++ {
		net.Send(netsim.Msg{From: 0, To: 1, Kind: netsim.KindData, Size: 64})
	}
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}
