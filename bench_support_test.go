package albatross

import (
	"testing"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/netsim"
	"albatross/internal/orca"
	"albatross/internal/sim"
)

// newBenchEngine drives the raw event loop hard: b.N timer events.
func newBenchEngine(b *testing.B) *sim.Engine {
	e := sim.NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(time.Microsecond, tick)
		}
	}
	e.After(time.Microsecond, tick)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkSimMessageThroughput measures wall-clock cost per simulated LAN
// message (send + deliver events).
func BenchmarkSimMessageThroughput(b *testing.B) {
	e := sim.NewEngine()
	net := netsim.New(e, cluster.Topology{Clusters: 1, NodesPerCluster: 2}, cluster.DASParams())
	delivered := 0
	net.SetHandler(1, func(m netsim.Msg) { delivered++ })
	for i := 0; i < b.N; i++ {
		net.Send(netsim.Msg{From: 0, To: 1, Kind: netsim.KindData, Size: 64})
	}
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}

// BenchmarkOrcaOrderedBroadcast measures wall-clock cost per totally-ordered
// broadcast on a 2x8 wide-area platform.
func BenchmarkOrcaOrderedBroadcast(b *testing.B) {
	sys := core.NewDAS(2, 8)
	obj := sys.RTS.NewReplicated("bench", func(cluster.NodeID) any { return new(int) })
	n := b.N
	sys.SpawnAt(0, "writer", func(w *core.Worker) {
		for i := 0; i < n; i++ {
			w.Invoke(obj, orca.Op{Name: "inc", ArgBytes: 8,
				Apply: func(s any) any { *(s.(*int))++; return nil }})
		}
	})
	if _, err := sys.Run(); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if *(obj.Replica(cluster.NodeID(i)).(*int)) != b.N {
			b.Fatalf("replica %d has %d, want %d", i, *(obj.Replica(cluster.NodeID(i)).(*int)), b.N)
		}
	}
}

// BenchmarkOrcaRPC measures wall-clock cost per simulated remote invocation.
func BenchmarkOrcaRPC(b *testing.B) {
	sys := core.NewDAS(1, 2)
	obj := sys.RTS.NewObject("bench", 0, new(int))
	n := b.N
	sys.SpawnAt(1, "caller", func(w *core.Worker) {
		for i := 0; i < n; i++ {
			w.Invoke(obj, orca.Op{Name: "inc", ArgBytes: 8,
				Apply: func(s any) any { *(s.(*int))++; return nil }})
		}
	})
	if _, err := sys.Run(); err != nil {
		b.Fatal(err)
	}
	if *(obj.State().(*int)) != b.N {
		b.Fatal("lost invocations")
	}
}
