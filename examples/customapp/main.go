// Customapp: write your own parallel program against the library's public
// API and wide-area-optimize it with the techniques from the paper.
//
// The program computes a distributed histogram: every worker scans a slice
// of records and accumulates counts into a shared result owned by node 0 —
// the classic all-to-one pattern of the paper's ATPG application.
//
//   - naive version: one RPC per local batch from every worker;
//
//   - optimized version: cluster-level reduction (core.ClusterReducer), so
//     each remote cluster sends exactly one combined update over the WAN.
//
//     go run ./examples/customapp
package main

import (
	"fmt"
	"log"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/orca"
	"albatross/internal/rng"
)

const (
	records  = 1 << 17
	buckets  = 64
	batches  = 16 // each worker reports this many partial updates
	clusters = 4
	perClust = 8
)

func main() {
	fmt.Println("Custom application: distributed histogram on a 4-cluster WAN")
	fmt.Println()
	naiveT, naiveWAN, h1 := run(false)
	optT, optWAN, h2 := run(true)
	for b := range h1 {
		if h1[b] != h2[b] {
			log.Fatalf("histograms disagree at bucket %d", b)
		}
	}
	fmt.Printf("%-34s %12v  %6d WAN messages\n", "naive all-to-one RPCs:", naiveT.Round(time.Microsecond), naiveWAN)
	fmt.Printf("%-34s %12v  %6d WAN messages\n", "cluster-level reduction:", optT.Round(time.Microsecond), optWAN)
	fmt.Printf("\nSame histogram, %.1fx less wide-area traffic.\n", float64(naiveWAN)/float64(optWAN))
}

func run(optimized bool) (time.Duration, int64, [buckets]int64) {
	sys := core.NewSystem(core.Config{
		Topology: cluster.DAS(clusters, perClust),
		Params:   cluster.DASParams(),
	})
	p := sys.Topo.Compute()

	// The shared result lives on node 0.
	type histState struct{ counts [buckets]int64 }
	result := sys.RTS.NewObject("histogram", 0, &histState{})
	addOp := func(delta [buckets]int64) orca.Op {
		return orca.Op{Name: "Add", ArgBytes: 8 * buckets, ResBytes: 4,
			Apply: func(s any) any {
				st := s.(*histState)
				for b, v := range delta {
					st.counts[b] += v
				}
				return nil
			}}
	}

	var reducer *core.ClusterReducer
	if optimized {
		reducer = core.NewClusterReducer(sys, "hist", func(acc, v any) any {
			d := v.([buckets]int64)
			if acc == nil {
				return d
			}
			a := acc.([buckets]int64)
			for b := range a {
				a[b] += d[b]
			}
			return a
		})
	}

	// Node 0 folds reduced contributions into the shared object.
	if optimized {
		expect := 0
		contributors := make([]cluster.NodeID, 0, p-1)
		for r := 1; r < p; r++ {
			contributors = append(contributors, cluster.NodeID(r))
		}
		expect = reducer.ExpectedMessages(0, contributors)
		sys.SpawnAt(0, "collector", func(w *core.Worker) {
			for i := 0; i < expect; i++ {
				d := w.Recv(orca.Tag{Op: "hist"}).([buckets]int64)
				w.Invoke(result, addOp(d))
			}
		})
	}

	sys.SpawnWorkers("scanner", func(w *core.Worker) {
		r := rng.New(uint64(w.Rank()) + 7)
		per := records / p / batches
		for batch := 0; batch < batches; batch++ {
			var delta [buckets]int64
			for i := 0; i < per; i++ {
				delta[r.Intn(buckets)]++
			}
			w.Compute(time.Duration(per) * 200 * time.Nanosecond)
			if !optimized {
				w.Invoke(result, addOp(delta)) // possibly a WAN RPC
				continue
			}
			if w.Rank() == 0 {
				w.Invoke(result, addOp(delta)) // local fold
				continue
			}
			if batch < batches-1 {
				// Accumulate locally; only the final batch is reported,
				// like ATPG's optimized statistics.
				continue
			}
			var all [buckets]int64
			full := rng.New(uint64(w.Rank()) + 7)
			for b := 0; b < batches; b++ {
				for i := 0; i < per; i++ {
					all[full.Intn(buckets)]++
				}
			}
			nLocal := perClust
			if w.Cluster() == 0 {
				nLocal-- // rank 0 reports directly
			}
			reducer.Put(w, 0, orca.Tag{Op: "hist"}, 8*buckets, all, nLocal)
		}
	})

	m, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	st := result.State().(*histState)
	var total int64
	for _, v := range st.counts {
		total += v
	}
	want := int64(records / p / batches * batches * p)
	if total != want {
		log.Fatalf("histogram counted %d records, want %d", total, want)
	}
	return m.Elapsed, m.Net.TotalInter().Msgs, st.counts
}
