// Loadbalance: compare the paper's three work-distribution schemes on a
// synthetic bag-of-tasks workload over a wide-area multicluster:
//
//   - central queue (TSP original): every fetch may cross the WAN;
//   - per-cluster static queues (TSP optimized): no WAN fetches, but a
//     static division that can go out of balance;
//   - distributed queues with work stealing (IDA*): local queues plus
//     steals, with the cluster-aware "local first" victim order.
//
// The workload is deliberately skewed (task sizes follow a power law) so
// the static division suffers visible imbalance.
//
//	go run ./examples/loadbalance
package main

import (
	"fmt"
	"log"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/orca"
	"albatross/internal/rng"
)

const (
	nTasks   = 600
	clusters = 4
	perClust = 4
)

// taskCost returns a skewed task duration: a few tasks are much larger.
func taskCost(i int) time.Duration {
	h := rng.Hash64(uint64(i) + 1000)
	base := 200 + time.Duration(h%1800) // 0.2-2 ms
	if h%17 == 0 {
		base *= 12 // heavy tail
	}
	return base * time.Microsecond
}

func main() {
	total := time.Duration(0)
	for i := 0; i < nTasks; i++ {
		total += taskCost(i)
	}
	p := clusters * perClust
	fmt.Printf("%d skewed tasks, %v total work, %d CPUs on %d clusters (ideal %v)\n\n",
		nTasks, total.Round(time.Millisecond), p, clusters, (total / time.Duration(p)).Round(time.Microsecond))
	fmt.Printf("%-28s %12s %12s %10s\n", "scheme", "makespan", "efficiency", "WAN msgs")

	for _, tc := range []struct {
		name string
		run  func() (time.Duration, int64)
	}{
		{"central queue", runCentral},
		{"static per-cluster queues", runStatic},
		{"work stealing (local first)", runStealing},
	} {
		elapsed, wan := tc.run()
		eff := float64(total) / float64(p) / float64(elapsed)
		fmt.Printf("%-28s %12v %11.0f%% %10d\n", tc.name, elapsed.Round(time.Microsecond), eff*100, wan)
	}

	fmt.Println()
	fmt.Println("The central queue pays a WAN round trip per task for remote workers;")
	fmt.Println("the static division is cheap but strands the heavy tail in one")
	fmt.Println("cluster; stealing fixes the imbalance with a handful of WAN steals.")
}

func newSys() *core.System {
	return core.NewSystem(core.Config{
		Topology: cluster.DAS(clusters, perClust),
		Params:   cluster.DASParams(),
	})
}

func finish(sys *core.System, done []bool) (time.Duration, int64) {
	m, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	for i, d := range done {
		if !d {
			log.Fatalf("task %d never executed", i)
		}
	}
	return m.Elapsed, m.Net.TotalInter().Msgs
}

func runCentral() (time.Duration, int64) {
	sys := newSys()
	q := core.NewCentralQueue(sys, 0)
	done := make([]bool, nTasks)
	sys.SpawnAt(0, "master", func(w *core.Worker) {
		for i := 0; i < nTasks; i++ {
			q.Push(w, 32, i)
		}
		q.Close(w)
	})
	sys.SpawnWorkers("worker", func(w *core.Worker) {
		for {
			task, ok, closed := q.Pop(w, 32)
			if ok {
				w.Compute(taskCost(task.(int)))
				done[task.(int)] = true
				continue
			}
			if closed {
				return
			}
			w.P.Sleep(100 * time.Microsecond)
		}
	})
	return finish(sys, done)
}

func runStatic() (time.Duration, int64) {
	sys := newSys()
	q := core.NewClusterQueues(sys)
	done := make([]bool, nTasks)
	for c := 0; c < clusters; c++ {
		c := c
		sys.SpawnAt(sys.Topo.Node(c, 0), "master", func(w *core.Worker) {
			for i := c; i < nTasks; i += clusters {
				q.PushTo(w, c, 32, i)
			}
			q.Close(w, c)
		})
	}
	sys.SpawnWorkers("worker", func(w *core.Worker) {
		for {
			task, ok, closed := q.Pop(w, 32)
			if ok {
				w.Compute(taskCost(task.(int)))
				done[task.(int)] = true
				continue
			}
			if closed {
				return
			}
			w.P.Sleep(100 * time.Microsecond)
		}
	})
	return finish(sys, done)
}

func runStealing() (time.Duration, int64) {
	sys := newSys()
	p := sys.Topo.Compute()
	done := make([]bool, nTasks)
	remaining := nTasks

	type qState struct{ tasks []int }
	queues := make([]*orca.Object, p)
	for r := 0; r < p; r++ {
		st := &qState{}
		for i := r; i < nTasks; i += p {
			st.tasks = append(st.tasks, i)
		}
		queues[r] = sys.RTS.NewObject(fmt.Sprintf("q%d", r), cluster.NodeID(r), st)
	}
	pop := orca.Op{Name: "pop", ArgBytes: 8, ResBytes: 8, Apply: func(s any) any {
		st := s.(*qState)
		if len(st.tasks) == 0 {
			return -1
		}
		t := st.tasks[len(st.tasks)-1]
		st.tasks = st.tasks[:len(st.tasks)-1]
		return t
	}}

	sys.SpawnWorkers("worker", func(w *core.Worker) {
		order := core.StealOrderLocalFirst(sys.Topo, w.Node)
		for remaining > 0 {
			if t := w.Invoke(queues[w.Rank()], pop).(int); t >= 0 {
				w.Compute(taskCost(t))
				done[t] = true
				remaining--
				continue
			}
			stole := false
			for _, v := range order {
				if remaining == 0 {
					break
				}
				if t := w.Invoke(queues[int(v)], pop).(int); t >= 0 {
					w.Compute(taskCost(t))
					done[t] = true
					remaining--
					stole = true
					break
				}
			}
			if !stole && remaining > 0 {
				w.P.Sleep(200 * time.Microsecond)
			}
		}
	})
	return finish(sys, done)
}
