// Sequencers: compare the three totally-ordered broadcast protocols of the
// runtime — centralized, per-cluster rotating (the paper's wide-area
// default) and migrating (the ASP optimization) — on a broadcast-burst
// workload like ASP's row pipeline.
//
//	go run ./examples/sequencers
package main

import (
	"fmt"
	"log"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/orca"
)

const (
	bursts   = 8  // senders take turns, one burst each
	burstLen = 40 // broadcasts per burst
	rowBytes = 1024
	clusters = 4
	perClust = 4
)

func main() {
	fmt.Println("Totally-ordered broadcast on a 4-cluster WAN: one sender at a")
	fmt.Printf("time broadcasts a burst of %d x %d-byte updates (ASP's pattern).\n\n", burstLen, rowBytes)
	fmt.Printf("%-12s %12s %16s %14s\n", "sequencer", "total time", "per broadcast", "WAN msgs")

	for _, tc := range []struct {
		name string
		mk   func() orca.Sequencer
	}{
		{"central", func() orca.Sequencer { return orca.NewCentralSequencer(0) }},
		{"rotating", func() orca.Sequencer { return orca.NewRotatingSequencer() }},
		{"migrating", func() orca.Sequencer { return orca.NewMigratingSequencer() }},
	} {
		elapsed, wan := measure(tc.mk())
		per := elapsed / (bursts * burstLen)
		fmt.Printf("%-12s %12v %16v %14d\n", tc.name, elapsed.Round(time.Microsecond), per.Round(time.Microsecond), wan)
	}

	fmt.Println()
	fmt.Println("The rotating sequencer makes every broadcast wait for the token to")
	fmt.Println("come around the WAN ring; the migrating sequencer pays the WAN once")
	fmt.Println("per burst and orders the rest at LAN speed — the ASP optimization.")
}

// measure runs the burst workload under one protocol.
func measure(seqr orca.Sequencer) (time.Duration, int64) {
	sys := core.NewSystem(core.Config{
		Topology:  cluster.DAS(clusters, perClust),
		Params:    cluster.DASParams(),
		Sequencer: seqr,
	})
	obj := sys.RTS.NewReplicated("rows", func(cluster.NodeID) any { return new(int) })

	// Senders take turns: sender k runs burst k, gated by its own replica
	// having seen all previous bursts (pure data dependency, no barrier).
	sys.SpawnWorkers("sender", func(w *core.Worker) {
		for burst := 0; burst < bursts; burst++ {
			// Spread the senders over the whole machine (and thus over all
			// clusters), like ASP's row ownership.
			if burst*w.NProcs()/bursts != w.Rank() {
				continue
			}
			// Wait until our replica has all previous bursts applied.
			for *(obj.Replica(w.Node).(*int)) < burst*burstLen {
				w.P.Sleep(100 * time.Microsecond)
			}
			for i := 0; i < burstLen; i++ {
				w.Invoke(obj, orca.Op{Name: "row", ArgBytes: rowBytes,
					Apply: func(s any) any { *(s.(*int))++; return nil }})
			}
		}
	})
	m, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < sys.Topo.Compute(); i++ {
		if got := *(obj.Replica(cluster.NodeID(i)).(*int)); got != bursts*burstLen {
			log.Fatalf("replica %d saw %d of %d updates", i, got, bursts*burstLen)
		}
	}
	return m.Elapsed, m.Net.TotalInter().Msgs
}
