// Collectives: use the cluster-aware collective operations — the paper's
// wide-area restructurings generalized into a reusable library, the idea
// that later became MagPIe-style MPI collectives.
//
// A toy iterative solver does, per iteration: local work, an AllReduce for
// the global residual, and a Bcast of control data — the communication
// skeleton of many SPMD codes. We run it with topology-oblivious and
// cluster-aware collectives on the simulated 4-cluster DAS.
//
//	go run ./examples/collectives
package main

import (
	"fmt"
	"log"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/coll"
	"albatross/internal/core"
)

const (
	iterations = 25
	clusters   = 4
	perCluster = 8
	workPerIt  = 2 * time.Millisecond
)

func main() {
	fmt.Println("Iterative SPMD skeleton on a 4-cluster WAN:")
	fmt.Printf("%d iterations x (%v local work + AllReduce + Bcast)\n\n", iterations, workPerIt)
	fmt.Printf("%-22s %12s %12s %10s\n", "collectives", "total", "per iter", "WAN msgs")

	var flatTotal time.Duration
	for _, strat := range []coll.Strategy{coll.Flat, coll.WideArea} {
		elapsed, wan := run(strat)
		if strat == coll.Flat {
			flatTotal = elapsed
		}
		fmt.Printf("%-22s %12v %12v %10d\n",
			strat.String(), elapsed.Round(time.Microsecond),
			(elapsed / iterations).Round(time.Microsecond), wan)
	}
	_ = flatTotal

	fmt.Println()
	fmt.Println("The cluster-aware collectives cross each wide-area link exactly once")
	fmt.Println("per operation; the flat binomial tree pays chained WAN latencies.")
}

func run(strat coll.Strategy) (time.Duration, int64) {
	sys := core.NewSystem(core.Config{
		Topology: cluster.DAS(clusters, perCluster),
		Params:   cluster.DASParams(),
	})
	comm := coll.New(sys, "solver", strat)
	sum := func(acc, v any) any {
		if acc == nil {
			return v
		}
		return acc.(float64) + v.(float64)
	}
	sys.SpawnWorkers("solver", func(w *core.Worker) {
		residual := 1.0
		for it := 0; it < iterations; it++ {
			w.Compute(workPerIt)
			local := residual / float64(it+1+w.Rank())
			global := comm.AllReduce(w, 8, local, sum).(float64)
			// The root distributes the next iteration's control block.
			ctrl := comm.Bcast(w, 0, 256, global)
			residual = ctrl.(float64)
		}
	})
	m, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	return m.Elapsed, m.Net.TotalInter().Msgs
}
