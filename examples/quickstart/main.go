// Quickstart: build a simulated wide-area DAS platform, run the TSP
// application in its original (central job queue) and optimized (static
// per-cluster queues) forms, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"albatross/internal/apps/tsp"
	"albatross/internal/cluster"
	"albatross/internal/core"
)

func main() {
	fmt.Println("Albatross quickstart: TSP on a simulated wide-area multicluster")
	fmt.Println()
	fmt.Println("Platform: the DAS system of the paper (Figure 17) —")
	for i, site := range cluster.DASSites {
		fmt.Printf("  cluster %d: %s\n", i, site)
	}
	fmt.Println()

	cfg := tsp.Config{NCities: 12, Seed: 17, JobDepth: 4, NodeCost: 2000}

	// A single processor gives the baseline run time.
	t1 := run(1, 1, false, cfg)
	fmt.Printf("%-34s %10.3fs\n", "1 processor:", t1)

	for _, shape := range []struct {
		clusters, perCluster int
		optimized            bool
		label                string
	}{
		{1, 16, false, "1 cluster x 16 CPUs, original:"},
		{4, 4, false, "4 clusters x 4 CPUs, original:"},
		{4, 4, true, "4 clusters x 4 CPUs, optimized:"},
	} {
		t := run(shape.clusters, shape.perCluster, shape.optimized, cfg)
		fmt.Printf("%-34s %10.3fs   speedup %5.1f\n", shape.label, t, t1/t)
	}

	fmt.Println()
	fmt.Println("The original program fetches every job from one central queue, so")
	fmt.Println("three quarters of the fetches cross the 2.7 ms WAN; the optimized")
	fmt.Println("program divides the work statically over per-cluster queues.")
}

// run builds a fresh system, runs TSP on it and returns virtual seconds.
func run(clusters, perCluster int, optimized bool, cfg tsp.Config) float64 {
	sys := core.NewSystem(core.Config{
		Topology: cluster.DAS(clusters, perCluster),
		Params:   cluster.DASParams(),
	})
	verify := tsp.Build(sys, cfg, optimized)
	m, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	if err := verify(); err != nil {
		log.Fatalf("result verification failed: %v", err)
	}
	return m.Seconds()
}
