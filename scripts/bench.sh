#!/usr/bin/env sh
# Runs the hot-path engine benchmarks and regenerates BENCH_engine.json and
# BENCH_apps.json at the repository root. BENCH_engine.json keeps two
# sections:
#
#   baseline — the numbers measured on the container/heap engine before the
#              ready-ring rebuild (fixed; the reference for the speedup gate)
#   current  — the numbers from this run
#
# The BenchmarkEngineMode* pairs record the sequential engine against the
# cluster-sharded engine (-shards=4) for the shardable applications on a
# four-cluster platform; both sides land in the current section. Sharded
# results are byte-identical to sequential, so the pair compares wall-clock
# throughput only — on a single-core machine the sharded side serializes
# its LPs and shows pure synchronization overhead instead of speedup.
#
# BENCH_apps.json holds the end-to-end numbers for all eight applications of
# the paper's suite (2x8 wide-area, original variant). The RATransport and
# ASPTransport entries rerun RA and ASP with the gateway transport layer on
# (DefaultTransport: frame coalescing + multipath striping); each forms a
# coalescing-on/off pair with its plain entry. The GridASP and GridRA entries
# run on the 64-cluster tiered example topology (multi-hop sparse routing).
#
# The BenchmarkNetworkConstruct/c=N entries track building the sparse network
# for tiered platforms; BenchmarkNetworkConstructDense/c=N rebuilds the dense
# per-pair representation the package used before PR 8 on the same cluster
# counts — the dense-baseline column for the >=10x bytes/op gate at c=256.
#
# Usage:
#   scripts/bench.sh              # full run (benchtime 1s)
#   BENCHTIME=1x scripts/bench.sh # CI smoke: one iteration per benchmark
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
OUT="BENCH_engine.json"
APPS_OUT="BENCH_apps.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' \
	-bench 'BenchmarkEngine|BenchmarkSharded|BenchmarkRPCRoundTrip|BenchmarkNetSendLAN|BenchmarkEndToEnd' \
	-benchmem -benchtime "$BENCHTIME" . | tee "$RAW"

# Network-construction scaling: sparse tiered platforms against the dense
# per-pair representation at the same cluster counts. The c=256 pair is the
# memory acceptance gate for the sparse refactor (>=10x fewer bytes/op).
go test -run '^$' \
	-bench 'BenchmarkNetworkConstruct' \
	-benchmem -benchtime "$BENCHTIME" ./internal/netsim/ | tee -a "$RAW"

awk -v benchtime="$BENCHTIME" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix if present
	for (i = 2; i < NF; i++) {
		if ($(i + 1) == "ns/op")           ns[name] = $i
		if ($(i + 1) == "B/op")            bytes[name] = $i
		if ($(i + 1) == "allocs/op")       allocs[name] = $i
		if ($(i + 1) == "simsec/wallsec")  simsec[name] = $i
		if ($(i + 1) == "windows/op")      windows[name] = $i
		if ($(i + 1) == "fences/op")       fences[name] = $i
	}
	if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
}
END {
	printf "{\n"
	printf "  \"note\": \"hot-path engine benchmarks; regenerate with scripts/bench.sh\",\n"
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"baseline\": {\n"
	printf "    \"note\": \"container/heap engine before the ready-ring rebuild (PR 1 seed), benchtime 1s\",\n"
	printf "    \"BenchmarkEngineEvents\":            {\"ns_per_op\": 102.8, \"bytes_per_op\": 48, \"allocs_per_op\": 2},\n"
	printf "    \"BenchmarkEngineSameInstantEvents\": {\"ns_per_op\": 103.7, \"bytes_per_op\": 48, \"allocs_per_op\": 2},\n"
	printf "    \"BenchmarkEngineWakes\":             {\"ns_per_op\": 1697, \"bytes_per_op\": 239, \"allocs_per_op\": 13},\n"
	printf "    \"BenchmarkRPCRoundTrip\":            {\"ns_per_op\": 1522, \"bytes_per_op\": 544, \"allocs_per_op\": 17},\n"
	printf "    \"BenchmarkNetSendLAN\":              {\"ns_per_op\": 1363, \"bytes_per_op\": 232, \"allocs_per_op\": 3},\n"
	printf "    \"BenchmarkEndToEndASP\":             {\"simsec_per_wallsec\": 55.41},\n"
	printf "    \"BenchmarkEndToEndSOR\":             {\"simsec_per_wallsec\": 17.72},\n"
	printf "    \"dense_construct_note\": \"per-pair pipe matrix before the sparse refactor (PR 8), benchtime 1s; the live dense column is BenchmarkNetworkConstructDense in current\",\n"
	printf "    \"BenchmarkNetworkConstruct/c=4\":    {\"ns_per_op\": 3657, \"bytes_per_op\": 3920, \"allocs_per_op\": 49},\n"
	printf "    \"BenchmarkNetworkConstruct/c=64\":   {\"ns_per_op\": 62044, \"bytes_per_op\": 269836, \"allocs_per_op\": 649},\n"
	printf "    \"BenchmarkNetworkConstruct/c=256\":  {\"ns_per_op\": 506894, \"bytes_per_op\": 3835336, \"allocs_per_op\": 3083},\n"
	printf "    \"sharded_sync_note\": \"scalar-lookahead sharded engine before the per-route matrix (PR 10); tiered64 ASP shards=4, every window a fence participation\",\n"
	printf "    \"BenchmarkShardedGridASP\":          {\"windows_per_op\": 145060, \"fences_per_op\": 145060}\n"
	printf "  },\n"
	printf "  \"current\": {\n"
	for (i = 1; i <= n; i++) {
		name = order[i]
		printf "    \"%s\": {", name
		sep = ""
		if (name in ns)      { printf "%s\"ns_per_op\": %s", sep, ns[name]; sep = ", " }
		if (name in bytes)   { printf "%s\"bytes_per_op\": %s", sep, bytes[name]; sep = ", " }
		if (name in allocs)  { printf "%s\"allocs_per_op\": %s", sep, allocs[name]; sep = ", " }
		if (name in simsec)  { printf "%s\"simsec_per_wallsec\": %s", sep, simsec[name]; sep = ", " }
		if (name in windows) { printf "%s\"windows_per_op\": %s", sep, windows[name]; sep = ", " }
		if (name in fences)  { printf "%s\"fences_per_op\": %s", sep, fences[name]; sep = ", " }
		printf "}"
		printf (i < n) ? ",\n" : "\n"
	}
	printf "  }\n"
	printf "}\n"
}' "$RAW" > "$OUT"

awk -v benchtime="$BENCHTIME" '
/^BenchmarkEndToEnd/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^BenchmarkEndToEnd/, "", name)
	for (i = 2; i < NF; i++) {
		if ($(i + 1) == "ns/op")           ns[name] = $i
		if ($(i + 1) == "B/op")            bytes[name] = $i
		if ($(i + 1) == "allocs/op")       allocs[name] = $i
		if ($(i + 1) == "simsec/wallsec")  simsec[name] = $i
	}
	if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
}
END {
	printf "{\n"
	printf "  \"note\": \"end-to-end application benchmarks (2x8 wide-area, original variant); regenerate with scripts/bench.sh\",\n"
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"apps\": {\n"
	for (i = 1; i <= n; i++) {
		name = order[i]
		printf "    \"%s\": {", name
		sep = ""
		if (name in simsec) { printf "%s\"simsec_per_wallsec\": %s", sep, simsec[name]; sep = ", " }
		if (name in ns)     { printf "%s\"ns_per_op\": %s", sep, ns[name]; sep = ", " }
		if (name in bytes)  { printf "%s\"bytes_per_op\": %s", sep, bytes[name]; sep = ", " }
		if (name in allocs) { printf "%s\"allocs_per_op\": %s", sep, allocs[name]; sep = ", " }
		printf "}"
		printf (i < n) ? ",\n" : "\n"
	}
	printf "  }\n"
	printf "}\n"
}' "$RAW" > "$APPS_OUT"

echo "wrote $OUT and $APPS_OUT"
