package albatross

import (
	"testing"
	"time"

	"albatross/internal/apps/acp"
	"albatross/internal/apps/asp"
	"albatross/internal/apps/atpg"
	"albatross/internal/apps/ida"
	"albatross/internal/apps/ra"
	"albatross/internal/apps/sor"
	"albatross/internal/apps/tsp"
	"albatross/internal/apps/water"
	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/harness"
	"albatross/internal/orca"
)

// smallBuilder wires an application with a deliberately small problem so
// the whole-suite integration matrix stays fast.
type smallBuilder struct {
	name string
	seq  func(optimized bool) orca.Sequencer
	mk   func(sys *core.System, optimized bool) func() error
}

func smallApps() []smallBuilder {
	return []smallBuilder{
		{name: "water", mk: func(sys *core.System, opt bool) func() error {
			return water.Build(sys, water.Config{N: 48, Iters: 2, Seed: 3, PairCost: 2 * time.Microsecond, DT: 1e-4}, opt)
		}},
		{name: "tsp", mk: func(sys *core.System, opt bool) func() error {
			return tsp.Build(sys, tsp.Config{NCities: 10, Seed: 5, JobDepth: 2, NodeCost: 2 * time.Microsecond}, opt)
		}},
		{name: "asp",
			seq: func(opt bool) orca.Sequencer { return asp.Sequencer(opt) },
			mk: func(sys *core.System, opt bool) func() error {
				return asp.Build(sys, asp.Config{N: 40, Seed: 7, OpCost: time.Microsecond})
			}},
		{name: "atpg", mk: func(sys *core.System, opt bool) func() error {
			return atpg.Build(sys, atpg.Config{Inputs: 12, Gates: 60, Tries: 8, Seed: 7, GateCost: 200 * time.Nanosecond}, opt)
		}},
		{name: "ida", mk: func(sys *core.System, opt bool) func() error {
			return ida.Build(sys, ida.Config{Walk: 16, Seed: 4, Jobs: 32, ExpandCost: time.Microsecond}, opt)
		}},
		{name: "ra", mk: func(sys *core.System, opt bool) func() error {
			return ra.Build(sys, ra.Config{N: 2500, Succ: 3, Span: 150, TermPct: 6, Seed: 21,
				ApplyCost: time.Microsecond, SendCost: 10 * time.Microsecond,
				NodeBatch: 8, FlushEach: 300 * time.Microsecond}, opt)
		}},
		{name: "acp", mk: func(sys *core.System, opt bool) func() error {
			return acp.Build(sys, acp.Config{Vars: 50, Domain: 12, Degree: 6, Tightness: 65, Seed: 13,
				CheckCost: 500 * time.Nanosecond}, opt)
		}},
		{name: "sor", mk: func(sys *core.System, opt bool) func() error {
			return sor.Build(sys, sor.Config{NX: 24, NY: 16, Omega: 1.7, Eps: 1e-4, MaxIters: 3000,
				CellCost: time.Microsecond, SkipMod: 3}, opt)
		}},
	}
}

// TestEveryAppEveryShapeEveryVariant is the full integration matrix: all
// eight applications, original and optimized, across platform shapes, each
// verified against its sequential reference.
func TestEveryAppEveryShapeEveryVariant(t *testing.T) {
	shapes := [][2]int{{1, 1}, {1, 6}, {2, 3}, {3, 2}, {4, 2}}
	for _, app := range smallApps() {
		app := app
		t.Run(app.name, func(t *testing.T) {
			for _, sh := range shapes {
				for _, opt := range []bool{false, true} {
					var seqr orca.Sequencer
					if app.seq != nil {
						seqr = app.seq(opt)
					}
					sys := core.NewSystem(core.Config{
						Topology:  cluster.DAS(sh[0], sh[1]),
						Params:    cluster.DASParams(),
						Sequencer: seqr,
					})
					verify := app.mk(sys, opt)
					if _, err := sys.Run(); err != nil {
						t.Fatalf("%dx%d opt=%v: %v", sh[0], sh[1], opt, err)
					}
					if err := verify(); err != nil {
						t.Fatalf("%dx%d opt=%v: %v", sh[0], sh[1], opt, err)
					}
				}
			}
		})
	}
}

// TestDeterministicReplayAcrossApps: identical configuration must give the
// identical virtual time and traffic, whatever the application.
func TestDeterministicReplayAcrossApps(t *testing.T) {
	for _, app := range smallApps() {
		app := app
		t.Run(app.name, func(t *testing.T) {
			run := func() core.Metrics {
				sys := core.NewSystem(core.Config{
					Topology: cluster.DAS(2, 3),
					Params:   cluster.DASParams(),
				})
				verify := app.mk(sys, true)
				m, err := sys.Run()
				if err != nil {
					t.Fatal(err)
				}
				if err := verify(); err != nil {
					t.Fatal(err)
				}
				return m
			}
			a, b := run(), run()
			if a.Elapsed != b.Elapsed {
				t.Fatalf("elapsed differs across replays: %v vs %v", a.Elapsed, b.Elapsed)
			}
			if a.Net != b.Net {
				t.Fatalf("traffic differs across replays:\n%v\n%v", a.Net.String(), b.Net.String())
			}
		})
	}
}

// TestSlowerNetworksNeverHelp: for every original program, degrading the
// WAN must not make the 4-cluster run faster (a basic monotonicity sanity
// check of the whole stack).
func TestSlowerNetworksNeverHelp(t *testing.T) {
	for _, app := range smallApps() {
		if app.name == "acp" || app.name == "sor" {
			// Convergence-path algorithms may legitimately take a different
			// number of iterations under different timing; skip the strict
			// monotonicity check for them.
			continue
		}
		app := app
		t.Run(app.name, func(t *testing.T) {
			run := func(par cluster.Params) time.Duration {
				var seqr orca.Sequencer
				if app.seq != nil {
					seqr = app.seq(false)
				}
				sys := core.NewSystem(core.Config{Topology: cluster.DAS(4, 2), Params: par, Sequencer: seqr})
				verify := app.mk(sys, false)
				if _, err := sys.Run(); err != nil {
					t.Fatal(err)
				}
				if err := verify(); err != nil {
					t.Fatal(err)
				}
				return sys.Engine.Now()
			}
			das := run(cluster.DASParams())
			slow := run(cluster.SlowWANParams())
			if slow < das {
				t.Fatalf("slower WAN finished faster: %v vs %v", slow, das)
			}
		})
	}
}

// TestHarnessExperimentsRegistered ensures the CLI surface exposes the full
// reproduction (details are tested inside internal/harness).
func TestHarnessExperimentsRegistered(t *testing.T) {
	if n := len(harness.Experiments()); n < 30 {
		t.Fatalf("only %d experiments registered", n)
	}
}
