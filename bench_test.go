// Package albatross's top-level benchmarks regenerate every table and
// figure of the paper's evaluation, one testing.B benchmark each.
//
// Run them all with:
//
//	go test -bench=. -benchmem
//
// Each benchmark executes the full experiment (all topologies of a figure,
// all applications of a table) per iteration and reports the headline
// numbers as custom metrics, so the paper-vs-measured comparison appears in
// the standard benchmark output. Results are verified against the
// applications' sequential references on every run; a mismatch fails the
// benchmark.
package albatross

import (
	"strconv"
	"testing"
	"time"

	"albatross/internal/harness"
)

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) *harness.Report {
	b.Helper()
	exp, err := harness.ExperimentByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var rep *harness.Report
	for i := 0; i < b.N; i++ {
		rep, err = exp.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	return rep
}

// reportFigure publishes a speedup figure's headline points as metrics:
// the speedup at 60 CPUs for each cluster count.
func reportFigure(b *testing.B, rep *harness.Report) {
	if rep.Figure == nil {
		return
	}
	for _, s := range rep.Figure.Series {
		for _, p := range s.Points {
			if p.CPUs == 60 {
				b.ReportMetric(p.Speedup, "speedup60/"+metricLabel(s.Label))
			}
		}
	}
}

func metricLabel(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9', r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
			out = append(out, r)
		}
	}
	return string(out)
}

// speedup figures (paper Figures 1-14)

func benchSpeedupFigure(b *testing.B, id string) {
	rep := benchExperiment(b, id)
	reportFigure(b, rep)
}

func BenchmarkFig01WaterOriginal(b *testing.B)  { benchSpeedupFigure(b, "fig1") }
func BenchmarkFig02WaterOptimized(b *testing.B) { benchSpeedupFigure(b, "fig2") }
func BenchmarkFig03TSPOriginal(b *testing.B)    { benchSpeedupFigure(b, "fig3") }
func BenchmarkFig04TSPOptimized(b *testing.B)   { benchSpeedupFigure(b, "fig4") }
func BenchmarkFig05ASPOriginal(b *testing.B)    { benchSpeedupFigure(b, "fig5") }
func BenchmarkFig06ASPOptimized(b *testing.B)   { benchSpeedupFigure(b, "fig6") }
func BenchmarkFig07ATPGOriginal(b *testing.B)   { benchSpeedupFigure(b, "fig7") }
func BenchmarkFig08ATPGOptimized(b *testing.B)  { benchSpeedupFigure(b, "fig8") }
func BenchmarkFig09RAOriginal(b *testing.B)     { benchSpeedupFigure(b, "fig9") }
func BenchmarkFig10RAOptimized(b *testing.B)    { benchSpeedupFigure(b, "fig10") }
func BenchmarkFig11IDAStar(b *testing.B)        { benchSpeedupFigure(b, "fig11") }
func BenchmarkFig12ACP(b *testing.B)            { benchSpeedupFigure(b, "fig12") }
func BenchmarkFig13SOROriginal(b *testing.B)    { benchSpeedupFigure(b, "fig13") }
func BenchmarkFig14SOROptimized(b *testing.B)   { benchSpeedupFigure(b, "fig14") }

// summary bar charts (paper Figures 15-16)

func benchBars(b *testing.B, id string) {
	rep := benchExperiment(b, id)
	for _, t := range rep.Tables {
		for _, row := range t.Rows {
			// Column 3 is the optimized multicluster speedup in both charts.
			if v, err := strconv.ParseFloat(row[3], 64); err == nil {
				b.ReportMetric(v, "optspeedup/"+metricLabel(row[0]))
			}
		}
	}
}

func BenchmarkFig15FourClusterSummary(b *testing.B) { benchBars(b, "fig15") }
func BenchmarkFig16TwoClusterSummary(b *testing.B)  { benchBars(b, "fig16") }

// tables

func BenchmarkTable1Primitives(b *testing.B) {
	benchExperiment(b, "table1")
}

func BenchmarkTable2AppCharacteristics(b *testing.B) {
	rep := benchExperiment(b, "table2")
	for _, row := range rep.Tables[0].Rows {
		if v, err := strconv.ParseFloat(row[5], 64); err == nil {
			b.ReportMetric(v, "speedup64/"+metricLabel(row[0]))
		}
	}
}

func BenchmarkTable4TrafficBefore(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkTable5TrafficAfter(b *testing.B)  { benchExperiment(b, "table5") }

// Microbenchmarks of the simulator primitives themselves: these measure the
// wall-clock cost of the simulation substrate (events, messages, ordered
// broadcasts), which bounds how large a virtual platform the library can
// model in reasonable time.

func BenchmarkSimEventThroughput(b *testing.B) {
	e := newBenchEngine(b)
	_ = e
}

// newBenchEngine is defined in bench_support_test.go.

var _ = time.Nanosecond

// Extended experiments (beyond the paper's published artifacts).

func BenchmarkExtCollectives(b *testing.B)        { benchExperiment(b, "coll") }
func BenchmarkExtRealDAS(b *testing.B)            { benchExperiment(b, "real-das") }
func BenchmarkExtAblationWater(b *testing.B)      { benchExperiment(b, "abl-water") }
func BenchmarkExtAblationSOR(b *testing.B)        { benchExperiment(b, "abl-sor") }
func BenchmarkExtAblationRA(b *testing.B)         { benchExperiment(b, "abl-ra") }
func BenchmarkExtAblationIDA(b *testing.B)        { benchExperiment(b, "abl-ida") }
func BenchmarkExtAblationSequencer(b *testing.B)  { benchExperiment(b, "abl-seq") }
func BenchmarkExtAblationTSP(b *testing.B)        { benchExperiment(b, "abl-tsp") }
func BenchmarkExtSensitivityATPG(b *testing.B)    { benchExperiment(b, "sens-atpg") }
func BenchmarkExtSensitivityCluster(b *testing.B) { benchExperiment(b, "sens-clusters") }
