package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestResolveTopology covers the -topo flag's paths: the DAS default, a
// valid configuration file, a missing file, and a malformed one.
func TestResolveTopology(t *testing.T) {
	topo, platform, err := resolveTopology("", 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Clusters != 4 || platform != "4x16 (DAS parameters)" {
		t.Errorf("default platform: got %d clusters, %q", topo.Clusters, platform)
	}

	good := filepath.Join("..", "..", "examples", "topologies", "tiered64.json")
	topo, platform, err = resolveTopology(good, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Clusters != 64 || topo.WAN == nil {
		t.Errorf("example config: got %d clusters, WAN=%v", topo.Clusters, topo.WAN)
	}
	if !strings.Contains(platform, "tiered64.json") {
		t.Errorf("platform label should name the file: %q", platform)
	}

	if _, _, err := resolveTopology(filepath.Join(t.TempDir(), "absent.json"), 4, 16); err == nil {
		t.Error("missing topology file accepted")
	}

	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"roots": {"count": 0}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := resolveTopology(bad, 4, 16); err == nil {
		t.Error("malformed topology accepted")
	}
}
