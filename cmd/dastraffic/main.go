// Command dastraffic reports the wide-area traffic of any application on
// any platform shape, generalizing the paper's Tables 4 and 5.
//
//	dastraffic                       # all apps, 4x16, original + optimized
//	dastraffic -app RA -clusters 2 -nodes 8
//	dastraffic -app RA -coalesce 32768 -coalesce-window 500us -streams 4
//	                                 # gateway transport on: adds the framed
//	                                 # wire-level counts and packing column
//	dastraffic -app RA -topo examples/topologies/tiered64.json
//	                                 # ... on a declarative tiered topology
//	                                 # (-links adds per-class WAN statistics)
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/harness"
	"albatross/internal/netsim"
)

func main() {
	appFlag := flag.String("app", "all", "application name (Water, TSP, ASP, ATPG, IDA*, RA, ACP, SOR) or 'all'")
	clustersFlag := flag.Int("clusters", 4, "number of clusters")
	nodesFlag := flag.Int("nodes", 16, "compute nodes per cluster")
	topoFlag := flag.String("topo", "", "run on a declarative topology configuration (JSON file) instead of -clusters x -nodes")
	linksFlag := flag.Bool("links", false, "also print per-WAN-link load reports (and per-class statistics on -topo platforms)")
	coalesceFlag := flag.Int("coalesce", 0, "gateway transport: max coalesced WAN frame size in bytes (0 = no size bound)")
	windowFlag := flag.Duration("coalesce-window", 0, "gateway transport: max virtual time a WAN message waits for frame companions (0 = no window)")
	streamsFlag := flag.Int("streams", 0, "gateway transport: parallel WAN streams per directed cluster pair (0/1 = single pipe)")
	flag.Parse()

	tr := harness.Transport{
		MaxFrameBytes:  *coalesceFlag,
		CoalesceWindow: *windowFlag,
		WANStreams:     *streamsFlag,
	}
	harness.SetTransport(tr)

	var apps []harness.AppSpec
	if *appFlag == "all" {
		apps = harness.Apps
	} else {
		a, err := harness.AppByName(*appFlag)
		if err != nil {
			log.Fatal(err)
		}
		apps = []harness.AppSpec{a}
	}

	topo, platform, err := resolveTopology(*topoFlag, *clustersFlag, *nodesFlag)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Intercluster traffic on %s\n", platform)
	if tr.Enabled() {
		fmt.Printf("gateway transport: frames up to %dB, window %v, %d stream(s)\n",
			tr.MaxFrameBytes, tr.CoalesceWindow, tr.WANStreams)
	}
	fmt.Println()
	fmt.Printf("%-8s %-10s %10s %12s %10s %12s %12s", "app", "variant", "# p2p", "p2p kbyte", "# bcast", "bcast kbyte", "# control")
	if tr.Enabled() {
		fmt.Printf(" %10s %8s", "# frames", "packing")
	}
	fmt.Printf(" %12s\n", "time (s)")
	for _, app := range apps {
		for _, optimized := range []bool{false, true} {
			var m core.Metrics
			var err error
			if *topoFlag != "" {
				m, err = harness.RunTopoOne(app, topo, optimized, tr)
			} else {
				m, err = harness.RunOne(app, *clustersFlag, *nodesFlag, optimized)
			}
			if err != nil {
				log.Fatal(err)
			}
			variant := "original"
			if optimized {
				variant = "optimized"
			}
			rpc := m.Net.InterRPC()
			data := m.Net.InterData()
			bc := m.Net.InterBcast()
			ctl := m.Net.Inter(netsim.KindControl)
			fmt.Printf("%-8s %-10s %10d %12.0f %10d %12.0f %12d",
				app.Name, variant,
				rpc.Msgs+data.Msgs, rpc.KBytes()+data.KBytes(),
				bc.Msgs, bc.KBytes(), ctl.Msgs)
			if tr.Enabled() {
				fmt.Printf(" %10d %8.1f", m.Net.WANFrames().Msgs, m.Net.PackingRatio())
			}
			fmt.Printf(" %12.3f\n", m.Seconds())
			if *linksFlag {
				printLinks(app.Name, variant, m)
				printClasses(m)
			}
		}
	}
}

// resolveTopology picks the platform: the uniform DAS mesh from -clusters and
// -nodes, or a declarative configuration loaded from -topo.
func resolveTopology(path string, clusters, nodes int) (cluster.Topology, string, error) {
	if path == "" {
		return cluster.DAS(clusters, nodes), fmt.Sprintf("%dx%d (DAS parameters)", clusters, nodes), nil
	}
	topo, err := cluster.LoadTopology(path)
	if err != nil {
		return cluster.Topology{}, "", err
	}
	return topo, fmt.Sprintf("%s (from %s)", topo, path), nil
}

// printClasses shows the per-link-class statistics of the last run: per-hop
// transmissions, volume, busy time and the queueing-delay distribution on
// links of each declared capacity class (one synthetic "wan" class on mesh
// platforms).
func printClasses(m core.Metrics) {
	if len(m.Classes) == 0 {
		return
	}
	fmt.Printf("    %-10s %8s %8s %12s %12s %12s %12s %12s\n",
		"class", "xmits", "msgs", "kbyte", "busy", "mean-wait", "p99-wait", "max-wait")
	for _, cr := range m.Classes {
		fmt.Printf("    %-10s %8d %8d %12.0f %12v %12v %12v %12v\n",
			cr.Class, cr.Xmits, cr.Msgs, float64(cr.Bytes)/1024,
			cr.Busy.Round(time.Microsecond), cr.MeanWait.Round(time.Microsecond),
			cr.P99Wait.Round(time.Microsecond), cr.MaxWait.Round(time.Microsecond))
	}
}

// printLinks shows the per-directed-WAN-link load of the last run, exposing
// saturation (utilization near 1) and queueing hot spots. With the transport
// layer on, each stream of a striped pair reports separately, with its frame
// count and packing efficiency.
func printLinks(app, variant string, m core.Metrics) {
	reps := m.Links
	if len(reps) == 0 {
		fmt.Printf("    (no WAN traffic)\n")
		return
	}
	framed := false
	for _, r := range reps {
		if r.Frames > 0 {
			framed = true
			break
		}
	}
	fmt.Printf("    %-12s %8s", "link", "msgs")
	if framed {
		fmt.Printf(" %8s %8s", "frames", "packing")
	}
	fmt.Printf(" %12s %12s %12s\n", "kbyte", "utilization", "max queueing")
	for _, r := range reps {
		fmt.Printf("    c%d -> c%d", r.From, r.To)
		if framed {
			fmt.Printf(".%-2d", r.Stream)
		} else {
			fmt.Printf("%-3s", "")
		}
		fmt.Printf("  %8d", r.Msgs)
		if framed {
			fmt.Printf(" %8d %8.1f", r.Frames, r.Packing())
		}
		fmt.Printf(" %12.0f %11.0f%% %12v\n",
			float64(r.Bytes)/1024,
			100*r.Utilization(m.Elapsed), r.MaxQueueing.Round(time.Microsecond))
	}
}
