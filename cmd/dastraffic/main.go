// Command dastraffic reports the wide-area traffic of any application on
// any platform shape, generalizing the paper's Tables 4 and 5.
//
//	dastraffic                       # all apps, 4x16, original + optimized
//	dastraffic -app RA -clusters 2 -nodes 8
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"albatross/internal/core"
	"albatross/internal/harness"
	"albatross/internal/netsim"
)

func main() {
	appFlag := flag.String("app", "all", "application name (Water, TSP, ASP, ATPG, IDA*, RA, ACP, SOR) or 'all'")
	clustersFlag := flag.Int("clusters", 4, "number of clusters")
	nodesFlag := flag.Int("nodes", 16, "compute nodes per cluster")
	linksFlag := flag.Bool("links", false, "also print per-WAN-link load reports")
	flag.Parse()

	var apps []harness.AppSpec
	if *appFlag == "all" {
		apps = harness.Apps
	} else {
		a, err := harness.AppByName(*appFlag)
		if err != nil {
			log.Fatal(err)
		}
		apps = []harness.AppSpec{a}
	}

	fmt.Printf("Intercluster traffic on %dx%d (DAS parameters)\n\n", *clustersFlag, *nodesFlag)
	fmt.Printf("%-8s %-10s %10s %12s %10s %12s %12s %12s\n",
		"app", "variant", "# p2p", "p2p kbyte", "# bcast", "bcast kbyte", "# control", "time (s)")
	for _, app := range apps {
		for _, optimized := range []bool{false, true} {
			m, err := harness.RunOne(app, *clustersFlag, *nodesFlag, optimized)
			if err != nil {
				log.Fatal(err)
			}
			variant := "original"
			if optimized {
				variant = "optimized"
			}
			rpc := m.Net.InterRPC()
			data := m.Net.InterData()
			bc := m.Net.InterBcast()
			ctl := m.Net.Inter(netsim.KindControl)
			fmt.Printf("%-8s %-10s %10d %12.0f %10d %12.0f %12d %12.3f\n",
				app.Name, variant,
				rpc.Msgs+data.Msgs, rpc.KBytes()+data.KBytes(),
				bc.Msgs, bc.KBytes(), ctl.Msgs, m.Seconds())
			if *linksFlag {
				printLinks(app.Name, variant, m)
			}
		}
	}
}

// printLinks shows the per-directed-WAN-link load of the last run, exposing
// saturation (utilization near 1) and queueing hot spots.
func printLinks(app, variant string, m core.Metrics) {
	reps := m.Links
	if len(reps) == 0 {
		fmt.Printf("    (no WAN traffic)\n")
		return
	}
	fmt.Printf("    %-10s %8s %12s %12s %12s\n", "link", "msgs", "kbyte", "utilization", "max queueing")
	for _, r := range reps {
		fmt.Printf("    c%d -> c%-2d  %8d %12.0f %11.0f%% %12v\n",
			r.From, r.To, r.Msgs, float64(r.Bytes)/1024,
			100*r.Utilization(m.Elapsed), r.MaxQueueing.Round(time.Microsecond))
	}
}
