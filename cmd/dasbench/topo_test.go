package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"albatross/internal/harness"
)

// TestRunTopoExample runs the checked-in 64-cluster example configuration
// end to end and checks the report carries per-link-class statistics for
// both declared classes — the acceptance path behind `dasbench -topo`.
func TestRunTopoExample(t *testing.T) {
	if testing.Short() {
		t.Skip("64-cluster end-to-end run is long in -short mode")
	}
	var b strings.Builder
	err := runTopo(&b, filepath.Join("..", "..", "examples", "topologies", "tiered64.json"),
		"ASP", "", harness.Transport{})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"per-link-class WAN statistics", "backbone", "regional", "grid["} {
		if !strings.Contains(out, want) {
			t.Errorf("output misses %q:\n%s", want, out)
		}
	}
}

// TestRunTopoErrors covers the flag's error paths: missing file, malformed
// configuration, and an unknown application name.
func TestRunTopoErrors(t *testing.T) {
	var b strings.Builder
	if err := runTopo(&b, filepath.Join(t.TempDir(), "absent.json"), "SOR", "", harness.Transport{}); err == nil {
		t.Error("missing topology file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"classes": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runTopo(&b, bad, "SOR", "", harness.Transport{}); err == nil {
		t.Error("malformed topology accepted")
	}
	good := filepath.Join("..", "..", "examples", "topologies", "tiered64.json")
	if err := runTopo(&b, good, "NoSuchApp", "", harness.Transport{}); err == nil {
		t.Error("unknown application accepted")
	} else if !strings.Contains(err.Error(), "NoSuchApp") {
		t.Errorf("error should name the application: %v", err)
	}
}
