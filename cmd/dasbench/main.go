// Command dasbench regenerates the paper's tables and figures on the
// simulated DAS platform.
//
// Usage:
//
//	dasbench -exp all            # every experiment, paper order
//	dasbench -exp fig5,fig6      # selected experiments
//	dasbench -list               # show what is available
//	dasbench -exp fig1 -plot     # additionally draw ASCII speedup charts
//	dasbench -exp fig7 -shards 4 # run shardable apps on the parallel engine
//	dasbench -exp fig9 -coalesce 32768 -coalesce-window 500us -streams 4
//	                             # ... on the coalescing/striping runtime
//	dasbench -topo examples/topologies/tiered64.json -apps SOR,RA
//	                             # run apps on a declarative tiered topology
//	                             # and report per-link-class WAN statistics
//
// -shards N partitions each run of a shardable application (all eight of the
// paper's suite since the LP-pinned sequencer, DESIGN.md §5d) into
// min(N, clusters) cluster-owning logical processes synchronized by
// WAN-lookahead windows; single-cluster shapes keep the sequential engine.
// Results are byte-identical at any setting — the flag trades wall-clock
// time only — and after the experiments a per-LP window-counter table shows
// the synchronization overhead each application paid.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/harness"
	"albatross/internal/netsim"
	"albatross/internal/orca"
	"albatross/internal/plot"
	"albatross/internal/trace"
)

func main() {
	var (
		expFlag      = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		listFlag     = flag.Bool("list", false, "list available experiments")
		plotFlag     = flag.Bool("plot", true, "render ASCII charts for speedup figures")
		timelineFlag = flag.String("timeline", "", "show a message-activity timeline for one application on 4x15 instead of running experiments")
		chaosFlag    = flag.Bool("chaos", false, "run the fault-injection chaos sweep (loss rate x outage duration) instead of the paper experiments")
		quickFlag    = flag.Bool("quick", false, "with -chaos: trim the sweep to the smoke-test scenarios")
		csvFlag      = flag.String("csv", "", "also write each experiment's data as CSV into this directory")
		parallelFlag = flag.Int("parallel", 0, "simulation runs to execute concurrently (0 = GOMAXPROCS); output is identical at any setting")
		shardsFlag   = flag.Int("shards", 0, "engine shards (LPs) per run for shardable applications (0/1 = sequential engine); output is identical at any setting")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file")
		memProfile   = flag.String("memprofile", "", "write a heap profile (taken after all runs drain) to this file")
		coalesceFlag = flag.Int("coalesce", 0, "gateway transport: max coalesced WAN frame size in bytes (0 = no size bound)")
		windowFlag   = flag.Duration("coalesce-window", 0, "gateway transport: max virtual time a WAN message waits for frame companions (0 = no window)")
		streamsFlag  = flag.Int("streams", 0, "gateway transport: parallel WAN streams per directed cluster pair (0/1 = single pipe)")
		topoFlag     = flag.String("topo", "", "run on a declarative topology configuration (JSON file, see examples/topologies) instead of the paper experiments")
		appsFlag     = flag.String("apps", "ASP", "with -topo: comma-separated application names, or 'all'")
	)
	flag.Parse()
	harness.SetParallelism(*parallelFlag)
	harness.SetShards(*shardsFlag)
	// The transport flags run every experiment on the coalescing/striping
	// runtime (the "transport" experiment sweeps it explicitly either way).
	tr := harness.Transport{
		MaxFrameBytes:  *coalesceFlag,
		CoalesceWindow: *windowFlag,
		WANStreams:     *streamsFlag,
	}
	harness.SetTransport(tr)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		// The heap snapshot is taken after the scheduler has drained every
		// run, so it reflects steady-state retention, not in-flight churn.
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *listFlag {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *timelineFlag != "" {
		if err := showTimeline(*timelineFlag); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *chaosFlag {
		if err := runChaos(*quickFlag, *csvFlag, *topoFlag); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *shardsFlag > 1 {
			printShardUsage()
		}
		return
	}
	if *topoFlag != "" {
		if err := runTopo(os.Stdout, *topoFlag, *appsFlag, *csvFlag, tr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *shardsFlag > 1 {
			printShardUsage()
		}
		return
	}

	var selected []harness.Experiment
	if *expFlag == "all" {
		selected = harness.Experiments()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, err := harness.ExperimentByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		start := time.Now()
		rep, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Print(rep.Render())
		if *plotFlag && rep.Figure != nil {
			fmt.Print(plot.Render(rep.Figure, 64, 24))
		}
		if *csvFlag != "" {
			path := filepath.Join(*csvFlag, e.ID+".csv")
			if err := os.MkdirAll(*csvFlag, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := os.WriteFile(path, []byte(rep.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("(csv written to %s)\n", path)
		}
		fmt.Printf("(%s took %.1fs wall clock; all results verified against sequential references)\n\n",
			e.ID, time.Since(start).Seconds())
	}
	if *shardsFlag > 1 {
		printShardUsage()
	}
}

// printShardUsage renders the per-LP window counters every sharded run
// accumulated: windows executed, the share that dispatched no event on that
// LP (pure synchronization), windows chained inline without a barrier, the
// mean virtual width of a window, the window rate per simulated second,
// events dispatched, and wall-clock fence waits with their share of the
// run's wall clock. High fence shares or narrow windows are the sharded
// engine's overhead made visible — the results themselves are
// byte-identical either way.
func printShardUsage() {
	report := harness.ShardUsageReport()
	if report == nil {
		return
	}
	fmt.Println("== Sharded-engine window counters (observability only; results are engine-independent) ==")
	fmt.Printf("%-8s %4s %3s %10s %6s %8s %10s %10s %10s %11s %7s\n",
		"app", "runs", "lp", "windows", "idle%", "chained", "width", "win/simsec", "events", "fence-wait", "fence%")
	for _, u := range report {
		for _, lp := range u.LPs {
			idle := 0.0
			if lp.Windows > 0 {
				idle = 100 * float64(lp.IdleWindows) / float64(lp.Windows)
			}
			fmt.Printf("%-8s %4d %3d %10d %5.1f%% %8d %10s %10.0f %10d %11s %6.1f%%\n",
				u.App, u.Runs, lp.LP, lp.Windows, idle, lp.Chained,
				u.AvgWindowWidth(lp).Round(time.Microsecond), u.WindowsPerSimSec(lp),
				lp.Events, lp.FenceWait.Round(time.Millisecond), 100*u.FenceWaitShare(lp))
		}
	}
	fmt.Println()
}

// runChaos renders the fault-injection degradation sweep, then a chaos
// timeline of one representative run so the injected faults (distinct glyph
// ramp) can be read against the traffic they perturb. With a topology file
// it instead runs the grid-scale sweep — loss x outage x backbone
// partition over all eight applications — and skips the timeline (the
// availability and recovery tables carry the story there).
func runChaos(quick bool, csvDir, topoPath string) error {
	start := time.Now()
	if topoPath != "" {
		topo, err := cluster.LoadTopology(topoPath)
		if err != nil {
			return err
		}
		rep, err := harness.GridChaosReport(filepath.Base(topoPath), topo, quick)
		if err != nil {
			return err
		}
		fmt.Print(rep.Render())
		if csvDir != "" {
			path := filepath.Join(csvDir, "chaos.csv")
			if err := os.MkdirAll(csvDir, 0o755); err != nil {
				return err
			}
			if err := os.WriteFile(path, []byte(rep.CSV()), 0o644); err != nil {
				return err
			}
			fmt.Printf("(csv written to %s)\n", path)
		}
		fmt.Printf("(grid chaos took %.1fs wall clock; all completed runs verified against sequential references)\n",
			time.Since(start).Seconds())
		return nil
	}
	rep, err := harness.ChaosReport(quick)
	if err != nil {
		return err
	}
	fmt.Print(rep.Render())
	if csvDir != "" {
		path := filepath.Join(csvDir, "chaos.csv")
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(path, []byte(rep.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Printf("(csv written to %s)\n", path)
	}
	tl, err := harness.ChaosTimeline("SOR", false, harness.ChaosSpec{
		Loss: 0.01, Outage: 2 * time.Second,
	}, 72)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(tl)
	fmt.Printf("(chaos took %.1fs wall clock; all runs verified against sequential references)\n",
		time.Since(start).Seconds())
	return nil
}

// showTimeline runs one application on the 4x15 platform in both variants,
// tapping every message into a time-bucketed timeline, and prints the
// communication shape of the run (bursts, phases, saturation plateaus).
func showTimeline(appName string) error {
	app, err := harness.AppByName(appName)
	if err != nil {
		return err
	}
	for _, optimized := range []bool{false, true} {
		var seqr orca.Sequencer
		if app.Sequencer != nil {
			seqr = app.Sequencer(optimized)
		}
		sys := core.NewSystem(core.Config{
			Topology:  cluster.DAS(4, 15),
			Params:    cluster.DASParams(),
			Sequencer: seqr,
		})
		tl := trace.New(time.Millisecond)
		// A traced run is the one place readable mailbox names are worth
		// their formatting cost.
		sys.RTS.SetDebugNames(true)
		sys.Net.SetTap(func(at time.Duration, m netsim.Msg, inter bool) {
			scope := "intra"
			if inter {
				scope = "inter"
			}
			tl.Add(at, scope+"/"+m.Kind.String(), 1)
		})
		verify := app.Build(sys, optimized)
		m, err := sys.Run()
		if err != nil {
			return err
		}
		if err := verify(); err != nil {
			return err
		}
		variant := "original"
		if optimized {
			variant = "optimized"
		}
		fmt.Printf("== %s %s on 4x15 (%.3fs virtual) ==\n", appName, variant, m.Seconds())
		fmt.Print(tl.Render(72))
		fmt.Println()
	}
	return nil
}
