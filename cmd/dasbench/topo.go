package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/harness"
)

// runTopo loads a declarative topology configuration, runs the selected
// applications on it (both variants, honoring -shards and the transport
// flags), and renders the summary plus per-link-class statistics tables.
func runTopo(out io.Writer, path, appsCSV, csvDir string, tr harness.Transport) error {
	topo, err := cluster.LoadTopology(path)
	if err != nil {
		return err
	}
	var apps []harness.AppSpec
	if appsCSV == "all" {
		apps = harness.Apps
	} else {
		for _, name := range strings.Split(appsCSV, ",") {
			a, err := harness.AppByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			apps = append(apps, a)
		}
	}
	start := time.Now()
	rep, err := harness.TopoReport(topo, apps, tr)
	if err != nil {
		return err
	}
	fmt.Fprint(out, rep.Render())
	if csvDir != "" {
		p := filepath.Join(csvDir, "topo.csv")
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(p, []byte(rep.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "(csv written to %s)\n", p)
	}
	fmt.Fprintf(out, "(topo took %.1fs wall clock; all results verified against sequential references)\n",
		time.Since(start).Seconds())
	return nil
}
