// Command netbench measures the simulated platform's communication
// primitives, reproducing the paper's Table 1 and adding message-size
// sweeps for both network levels.
//
//	netbench            # Table 1 plus latency/bandwidth sweeps
//	netbench -sweep=false
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/harness"
	"albatross/internal/orca"
)

func main() {
	sweep := flag.Bool("sweep", true, "also print message-size sweeps")
	flag.Parse()

	rep, err := harness.Table1()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Render())

	if !*sweep {
		return
	}
	fmt.Println()
	fmt.Println("Round-trip time by message size (request size = reply size):")
	fmt.Printf("%10s %14s %14s\n", "bytes", "LAN", "WAN")
	for _, size := range []int{0, 64, 1024, 8192, 65536, 1 << 20} {
		lan := rtt(1, size)
		wan := rtt(2, size)
		fmt.Printf("%10d %14v %14v\n", size, lan.Round(time.Microsecond), wan.Round(time.Microsecond))
	}
}

// rtt measures one request/reply of the given payload size in each
// direction; with two clusters the peer is across the WAN.
func rtt(clusters int, size int) time.Duration {
	sys := core.NewSystem(core.Config{
		Topology: cluster.DAS(clusters, 2),
		Params:   cluster.DASParams(),
	})
	peer := cluster.NodeID(1)
	if clusters == 2 {
		peer = 2
	}
	mb := sys.RTS.RegisterService(peer, "echo")
	sys.SpawnAt(peer, "server", func(w *core.Worker) {
		w.P.SetDaemon(true)
		for {
			req := orca.NextRequest(w.P, mb)
			req.Reply(size, req.Payload)
		}
	})
	var elapsed time.Duration
	sys.SpawnAt(0, "client", func(w *core.Worker) {
		start := w.P.Now()
		w.Call(peer, "echo", size, "ping")
		elapsed = w.P.Now() - start
	})
	if _, err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	return elapsed
}
