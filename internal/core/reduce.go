package core

import (
	"fmt"

	"albatross/internal/cluster"
	"albatross/internal/orca"
)

// CombineFunc folds a contribution into an accumulator; acc is nil for the
// first contribution of a round.
type CombineFunc func(acc, value any) any

// ClusterReducer implements the paper's cluster-level reduction used by
// Water's write-back phase and by ATPG's statistics (Sections 4.1, 4.4,
// Table 3 "cluster-level reduction"): updates destined for a processor in a
// remote cluster are first sent to a local coordinator, which reduces them
// (e.g. adds force contributions) and transfers only the single combined
// result over the WAN.
//
// A round is identified by an orca.Tag. Contributors in the same cluster as
// the target bypass the reducer and send directly; contributors in a remote
// cluster Cast to their local coordinator together with the expected number
// of local contributors for that round, and the coordinator forwards one
// aggregate to the target when all have arrived. The target therefore
// receives one tagged message per remote cluster plus one per local
// contributor.
// Contribution and round records are pooled: coordinators recycle them as
// rounds are folded and forwarded, so sustained reduction traffic allocates
// nothing beyond what the application's combine function allocates.
type ClusterReducer struct {
	sys     *System
	name    string
	combine CombineFunc
	conPool []*reduceContribution
	rndPool []*roundState
}

// reduceContribution travels from a contributor to its local coordinator.
type reduceContribution struct {
	target cluster.NodeID
	tag    orca.Tag
	value  any
	expect int // local contributors for this (target, tag) round
	size   int // aggregate wire size when forwarded
}

// roundState accumulates one (target, tag) round at one coordinator.
type roundState struct {
	acc  any
	seen int
}

func (cr *ClusterReducer) getCon() *reduceContribution {
	if k := len(cr.conPool); k > 0 {
		con := cr.conPool[k-1]
		cr.conPool = cr.conPool[:k-1]
		return con
	}
	return new(reduceContribution)
}

func (cr *ClusterReducer) putCon(con *reduceContribution) {
	con.value = nil
	cr.conPool = append(cr.conPool, con)
}

func (cr *ClusterReducer) getRound() *roundState {
	if k := len(cr.rndPool); k > 0 {
		st := cr.rndPool[k-1]
		cr.rndPool = cr.rndPool[:k-1]
		return st
	}
	return new(roundState)
}

func (cr *ClusterReducer) putRound(st *roundState) {
	st.acc, st.seen = nil, 0
	cr.rndPool = append(cr.rndPool, st)
}

// NewClusterReducer installs one event-context coordinator per (cluster,
// remote target) pair. Call before System.Run.
func NewClusterReducer(sys *System, name string, combine CombineFunc) *ClusterReducer {
	cr := &ClusterReducer{sys: sys, name: name, combine: combine}
	topo := sys.Topo
	for c := 0; c < topo.Clusters; c++ {
		for t := 0; t < topo.Compute(); t++ {
			target := cluster.NodeID(t)
			if topo.ClusterOf(target) == c {
				continue
			}
			coord := cr.coordinator(c, target)
			cr.install(coord, cr.service(target))
		}
	}
	return cr
}

func (cr *ClusterReducer) coordinator(c int, target cluster.NodeID) cluster.NodeID {
	topo := cr.sys.Topo
	return topo.Node(c, int(target)%topo.Size(c))
}

func (cr *ClusterReducer) service(target cluster.NodeID) string {
	return fmt.Sprintf("reduce:%s:%d", cr.name, target)
}

// install registers the accumulate-and-forward handler at the coordinator.
func (cr *ClusterReducer) install(coord cluster.NodeID, svc string) {
	rounds := make(map[orca.Tag]*roundState)
	rts := cr.sys.RTS
	rts.HandleService(coord, svc, func(req *orca.Request) {
		con := req.Payload.(*reduceContribution)
		st, ok := rounds[con.tag]
		if !ok {
			st = cr.getRound()
			rounds[con.tag] = st
		}
		st.acc = cr.combine(st.acc, con.value)
		st.seen++
		target, tag, size, done := con.target, con.tag, con.size, st.seen >= con.expect
		cr.putCon(con)
		if !done {
			return
		}
		delete(rounds, tag)
		acc := st.acc
		cr.putRound(st)
		rts.SendData(coord, target, tag, size, acc)
	})
}

// Put contributes value to the (target, tag) round. size is the wire size
// of one contribution (and of the forwarded aggregate). expectLocal is the
// number of contributors in the caller's cluster for this round — known in
// advance, as the paper notes. Same-cluster targets are sent directly.
func (cr *ClusterReducer) Put(w *Worker, target cluster.NodeID, tag orca.Tag, size int, value any, expectLocal int) {
	topo := cr.sys.Topo
	if topo.SameCluster(w.Node, target) {
		w.Send(target, tag, size, value)
		return
	}
	coord := cr.coordinator(topo.ClusterOf(w.Node), target)
	con := cr.getCon()
	con.target, con.tag, con.value, con.expect, con.size = target, tag, value, expectLocal, size
	cr.sys.RTS.Cast(w.Node, coord, cr.service(target), size, con)
}

// ExpectedMessages reports how many tagged messages the target will receive
// for one round, given the set of contributing ranks (excluding the target
// itself): direct messages from its own cluster plus one aggregate per
// remote cluster with at least one contributor.
func (cr *ClusterReducer) ExpectedMessages(target cluster.NodeID, contributors []cluster.NodeID) int {
	topo := cr.sys.Topo
	n := 0
	remote := make(map[int]bool)
	for _, c := range contributors {
		if c == target {
			continue
		}
		if topo.SameCluster(c, target) {
			n++
		} else {
			remote[topo.ClusterOf(c)] = true
		}
	}
	return n + len(remote)
}
