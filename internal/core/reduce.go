package core

import (
	"fmt"

	"albatross/internal/cluster"
	"albatross/internal/orca"
)

// CombineFunc folds a contribution into an accumulator; acc is nil for the
// first contribution of a round.
type CombineFunc func(acc, value any) any

// ClusterReducer implements the paper's cluster-level reduction used by
// Water's write-back phase and by ATPG's statistics (Sections 4.1, 4.4,
// Table 3 "cluster-level reduction"): updates destined for a processor in a
// remote cluster are first sent to a local coordinator, which reduces them
// (e.g. adds force contributions) and transfers only the single combined
// result over the WAN.
//
// A round is identified by an orca.Tag. Contributors in the same cluster as
// the target bypass the reducer and send directly; contributors in a remote
// cluster Cast to their local coordinator together with the expected number
// of local contributors for that round, and the coordinator forwards one
// aggregate to the target when all have arrived. The target therefore
// receives one tagged message per remote cluster plus one per local
// contributor.
// Contribution and round records are pooled: coordinators recycle them as
// rounds are folded and forwarded, so sustained reduction traffic allocates
// nothing beyond what the application's combine function allocates. The
// pools are per cluster (a contribution and its coordinator are always in
// the same cluster), so on a sharded engine each free list is touched by a
// single logical process; sequentially every cluster shares one list.
type ClusterReducer struct {
	sys   *System
	name  string
	pools []*reducePools
}

// reducePools is one cluster's free lists (plus that cluster's combine
// function, which may close over cluster-local state such as buffer pools).
type reducePools struct {
	combine CombineFunc
	conPool []*reduceContribution
	rndPool []*roundState
}

// reduceContribution travels from a contributor to its local coordinator.
type reduceContribution struct {
	target cluster.NodeID
	tag    orca.Tag
	value  any
	expect int // local contributors for this (target, tag) round
	size   int // aggregate wire size when forwarded
}

// roundState accumulates one (target, tag) round at one coordinator.
type roundState struct {
	acc  any
	seen int
}

func (pl *reducePools) getCon() *reduceContribution {
	if k := len(pl.conPool); k > 0 {
		con := pl.conPool[k-1]
		pl.conPool = pl.conPool[:k-1]
		return con
	}
	return new(reduceContribution)
}

func (pl *reducePools) putCon(con *reduceContribution) {
	con.value = nil
	pl.conPool = append(pl.conPool, con)
}

func (pl *reducePools) getRound() *roundState {
	if k := len(pl.rndPool); k > 0 {
		st := pl.rndPool[k-1]
		pl.rndPool = pl.rndPool[:k-1]
		return st
	}
	return new(roundState)
}

func (pl *reducePools) putRound(st *roundState) {
	st.acc, st.seen = nil, 0
	pl.rndPool = append(pl.rndPool, st)
}

// NewClusterReducer installs one event-context coordinator per (cluster,
// remote target) pair. Call before System.Run.
func NewClusterReducer(sys *System, name string, combine CombineFunc) *ClusterReducer {
	return NewClusterReducerPer(sys, name, func(int) CombineFunc { return combine })
}

// NewClusterReducerPer is NewClusterReducer with a per-cluster combine
// function: mk(c) builds the fold used by cluster c's coordinators. Folds
// that touch cluster-local state (e.g. a buffer pool the aggregates are
// drawn from) need this on a sharded engine, where each cluster's
// coordinators run on their own logical process.
func NewClusterReducerPer(sys *System, name string, mk func(c int) CombineFunc) *ClusterReducer {
	cr := &ClusterReducer{sys: sys, name: name}
	topo := sys.Topo
	if sys.Sharded() {
		cr.pools = make([]*reducePools, topo.Clusters)
		for c := range cr.pools {
			cr.pools[c] = &reducePools{combine: mk(c)}
		}
	} else {
		shared := &reducePools{combine: mk(0)}
		cr.pools = make([]*reducePools, topo.Clusters)
		for c := range cr.pools {
			cr.pools[c] = shared
		}
	}
	for c := 0; c < topo.Clusters; c++ {
		for t := 0; t < topo.Compute(); t++ {
			target := cluster.NodeID(t)
			if topo.ClusterOf(target) == c {
				continue
			}
			coord := cr.coordinator(c, target)
			cr.install(coord, cr.service(target))
		}
	}
	return cr
}

func (cr *ClusterReducer) coordinator(c int, target cluster.NodeID) cluster.NodeID {
	topo := cr.sys.Topo
	return topo.Node(c, int(target)%topo.Size(c))
}

func (cr *ClusterReducer) service(target cluster.NodeID) string {
	return fmt.Sprintf("reduce:%s:%d", cr.name, target)
}

// install registers the accumulate-and-forward handler at the coordinator.
// The handler runs at the coordinator's node, so it uses the coordinator's
// cluster pools — the same pools its (always same-cluster) contributors use.
func (cr *ClusterReducer) install(coord cluster.NodeID, svc string) {
	rounds := make(map[orca.Tag]*roundState)
	rts := cr.sys.RTS
	pl := cr.pools[cr.sys.Topo.ClusterOf(coord)]
	rts.HandleService(coord, svc, func(req *orca.Request) {
		con := req.Payload.(*reduceContribution)
		st, ok := rounds[con.tag]
		if !ok {
			st = pl.getRound()
			rounds[con.tag] = st
		}
		st.acc = pl.combine(st.acc, con.value)
		st.seen++
		target, tag, size, done := con.target, con.tag, con.size, st.seen >= con.expect
		pl.putCon(con)
		if !done {
			return
		}
		delete(rounds, tag)
		acc := st.acc
		pl.putRound(st)
		rts.SendData(coord, target, tag, size, acc)
	})
}

// Put contributes value to the (target, tag) round. size is the wire size
// of one contribution (and of the forwarded aggregate). expectLocal is the
// number of contributors in the caller's cluster for this round — known in
// advance, as the paper notes. Same-cluster targets are sent directly.
func (cr *ClusterReducer) Put(w *Worker, target cluster.NodeID, tag orca.Tag, size int, value any, expectLocal int) {
	topo := cr.sys.Topo
	if topo.SameCluster(w.Node, target) {
		w.Send(target, tag, size, value)
		return
	}
	c := topo.ClusterOf(w.Node)
	coord := cr.coordinator(c, target)
	con := cr.pools[c].getCon()
	con.target, con.tag, con.value, con.expect, con.size = target, tag, value, expectLocal, size
	cr.sys.RTS.Cast(w.Node, coord, cr.service(target), size, con)
}

// ExpectedMessages reports how many tagged messages the target will receive
// for one round, given the set of contributing ranks (excluding the target
// itself): direct messages from its own cluster plus one aggregate per
// remote cluster with at least one contributor.
func (cr *ClusterReducer) ExpectedMessages(target cluster.NodeID, contributors []cluster.NodeID) int {
	topo := cr.sys.Topo
	n := 0
	remote := make(map[int]bool)
	for _, c := range contributors {
		if c == target {
			continue
		}
		if topo.SameCluster(c, target) {
			n++
		} else {
			remote[topo.ClusterOf(c)] = true
		}
	}
	return n + len(remote)
}
