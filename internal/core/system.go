// Package core is the paper's primary contribution turned into a library:
// a facade that assembles a simulated wide-area multilevel cluster (engine +
// two-level network + Orca-style runtime), plus reusable implementations of
// every wide-area optimization technique of the paper's Table 3 —
// cluster-level caching, cluster-level reduction, message combining,
// distributed job queues, and cluster-aware work-stealing policies.
//
// Applications build a System, spawn one Worker per compute node, and
// communicate through shared objects or messages; the harness then reads the
// run's Metrics (virtual elapsed time, logical operation counts, and
// intracluster/intercluster traffic).
package core

import (
	"fmt"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/netsim"
	"albatross/internal/orca"
	"albatross/internal/sim"
)

// Config describes one simulated platform.
type Config struct {
	Topology  cluster.Topology
	Params    cluster.Params
	Sequencer orca.Sequencer // nil selects the paper's default for the shape

	// Shards selects the cluster-sharded parallel engine: the simulation is
	// partitioned into min(Shards, Clusters) logical processes, each owning
	// the events of one or more whole clusters, synchronized by conservative
	// per-LP time fences derived from a per-route lookahead matrix — each
	// directed LP pair's fence distance is the cheapest routed path between
	// their clusters (see internal/sim and DESIGN.md §5c). 0 or 1 selects the sequential
	// engine. All eight applications, the sequenced broadcast protocols,
	// the reliability layer and fault injection run shard-safe — each
	// produces byte-identical results in both modes. The only remaining
	// sharded restriction is per-sample: WAN latency scales below 1
	// (profile or fault policy) are rejected because they would undercut
	// the engine's lookahead.
	Shards int
}

// System is one assembled simulated platform.
type System struct {
	Engine *sim.Engine
	Net    *netsim.Network
	RTS    *orca.RTS
	Topo   cluster.Topology
}

// NewSystem assembles a platform from the configuration.
func NewSystem(cfg Config) *System {
	if err := cfg.Topology.Validate(); err != nil {
		panic(err)
	}
	e := sim.NewEngine()
	if s := cfg.Shards; s > 1 && cfg.Topology.Clusters > 1 {
		if s > cfg.Topology.Clusters {
			s = cfg.Topology.Clusters
		}
		e.Shard(s)
	}
	net := netsim.New(e, cfg.Topology, cfg.Params)
	rts := orca.New(net, cfg.Sequencer)
	return &System{Engine: e, Net: net, RTS: rts, Topo: cfg.Topology}
}

// Sharded reports whether the system runs on the cluster-sharded engine.
func (s *System) Sharded() bool { return len(s.Engine.Shards()) > 0 }

// EngineFor returns the engine that schedules events for the given node:
// the root engine sequentially, the node's cluster LP when sharded. All
// process spawns bound to a node must go through it.
func (s *System) EngineFor(node cluster.NodeID) *sim.Engine {
	return s.Net.EngineFor(s.Topo.ClusterOf(node))
}

// NewDAS assembles a DAS-like platform with the paper's Table-1 parameters
// and the default sequencer for the shape.
func NewDAS(clusters, nodesPerCluster int) *System {
	return NewSystem(Config{
		Topology: cluster.DAS(clusters, nodesPerCluster),
		Params:   cluster.DASParams(),
	})
}

// Worker is one application process, bound to a compute node.
type Worker struct {
	Sys  *System
	P    *sim.Proc
	Node cluster.NodeID
}

// Rank is the worker's global rank (equal to its node number).
func (w *Worker) Rank() int { return int(w.Node) }

// NProcs is the total number of workers in the system.
func (w *Worker) NProcs() int { return w.Sys.Topo.Compute() }

// Cluster is the index of the worker's cluster.
func (w *Worker) Cluster() int { return w.Sys.Topo.ClusterOf(w.Node) }

// Compute charges d of CPU work to the worker.
func (w *Worker) Compute(d time.Duration) { w.P.Compute(d) }

// Invoke executes a shared-object operation on behalf of this worker.
func (w *Worker) Invoke(o *orca.Object, op orca.Op) any { return o.Invoke(w.P, w.Node, op) }

// Call performs a blocking request to a service at another node.
func (w *Worker) Call(to cluster.NodeID, service string, argBytes int, payload any) any {
	return w.Sys.RTS.Call(w.P, w.Node, to, service, argBytes, payload)
}

// Send transmits an asynchronous tagged message to another node.
func (w *Worker) Send(to cluster.NodeID, tag orca.Tag, size int, payload any) {
	w.Sys.RTS.SendData(w.Node, to, tag, size, payload)
}

// Recv blocks until a tagged message addressed to this worker arrives.
func (w *Worker) Recv(tag orca.Tag) any { return w.Sys.RTS.RecvData(w.P, w.Node, tag) }

// TryRecv returns a queued tagged message without blocking.
func (w *Worker) TryRecv(tag orca.Tag) (any, bool) { return w.Sys.RTS.TryRecvData(w.Node, tag) }

// SendID, RecvID and TryRecvID are the pre-interned-tag variants of
// Send/Recv/TryRecv: the zero-allocation fast path for per-iteration
// exchanges (intern the tag once with Sys.RTS.InternTag, then send by ID).
func (w *Worker) SendID(to cluster.NodeID, id orca.TagID, size int, payload any) {
	w.Sys.RTS.SendDataID(w.Node, to, id, size, payload)
}

// RecvID blocks until a message with the interned tag arrives.
func (w *Worker) RecvID(id orca.TagID) any { return w.Sys.RTS.RecvDataID(w.P, w.Node, id) }

// TryRecvID returns a queued message for the interned tag without blocking.
func (w *Worker) TryRecvID(id orca.TagID) (any, bool) { return w.Sys.RTS.TryRecvDataID(w.Node, id) }

// SpawnWorkers starts one worker process per compute node running body.
func (s *System) SpawnWorkers(name string, body func(w *Worker)) {
	for i := 0; i < s.Topo.Compute(); i++ {
		w := &Worker{Sys: s, P: nil, Node: cluster.NodeID(i)}
		p := s.EngineFor(w.Node).Go(fmt.Sprintf("%s-%d", name, i), func(p *sim.Proc) {
			w.P = p
			body(w)
		})
		_ = p
	}
}

// SpawnAt starts a single process bound to the given compute node (for
// masters, coordinators and other per-node servers).
func (s *System) SpawnAt(node cluster.NodeID, name string, body func(w *Worker)) {
	w := &Worker{Sys: s, Node: node}
	s.EngineFor(node).Go(name, func(p *sim.Proc) {
		w.P = p
		body(w)
	})
}

// Run executes the simulation to completion and returns the run's metrics.
// A deadlock (processes blocked forever) is returned as an error. After the
// run the engine is shut down: daemon servers (and, on deadlock, stuck
// workers) release their goroutines, so sweeps that build many Systems do
// not leak. Simulation state stays readable for result verification.
func (s *System) Run() (Metrics, error) {
	err := s.Engine.Run()
	m := s.Metrics()
	s.Engine.Shutdown()
	return m, err
}

// ShardStats reports the per-LP window-synchronization counters of a
// sharded run (nil on the sequential engine). It is diagnostic output about
// the simulator itself — window occupancy and fence waits — and deliberately
// not part of Metrics, which describes the simulated platform and must stay
// byte-identical between engines.
func (s *System) ShardStats() []sim.LPStats { return s.Engine.ShardStats() }

// Metrics snapshots the run's measurements so far.
func (s *System) Metrics() Metrics {
	return Metrics{
		Elapsed: s.Engine.Now(),
		Net:     s.Net.Stats().Clone(),
		Ops:     s.RTS.Ops(),
		Links:   s.Net.PipeReports(),
		Classes: s.Net.ClassReports(),
	}
}

// Metrics aggregates one run's outcome.
type Metrics struct {
	Elapsed time.Duration
	Net     netsim.Stats
	Ops     orca.OpStats
	Links   []netsim.PipeReport  // per-directed-WAN-link load
	Classes []netsim.ClassReport // per-link-class streaming aggregates
}

// Seconds reports the elapsed virtual time in seconds.
func (m Metrics) Seconds() float64 { return m.Elapsed.Seconds() }
