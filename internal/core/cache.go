package core

import (
	"fmt"

	"albatross/internal/cluster"
	"albatross/internal/orca"
	"albatross/internal/sim"
)

// FetchFunc reads data identified by key from its home node, on behalf of a
// process running at node at, and returns the data plus its simulated size
// in bytes. It typically performs one blocking Call to a service at source.
type FetchFunc func(p *sim.Proc, at, source cluster.NodeID, key any) (data any, size int)

// ClusterCache implements the paper's Water optimization (Section 4.1):
// caching of remote data at the cluster level so the same data never travels
// over the same WAN link more than once.
//
// For every remote processor P, one processor in each local cluster is
// designated the local coordinator for P. A process needing P's data issues
// an intracluster request to the coordinator; the coordinator fetches the
// data over the WAN on the first request for a key, caches it, and serves
// every later same-key request from the cache. Coherence is the
// application's concern: keys must distinguish versions (e.g. include the
// iteration number), which is safe because — as the paper notes — the
// coordinator knows in advance which processors read and write the data.
type ClusterCache struct {
	sys    *System
	name   string
	fetch  FetchFunc
	stores map[storeKey]*cacheStore
}

type storeKey struct {
	cluster int
	source  cluster.NodeID
}

// cacheStore is the shared cache of one (cluster, source) coordinator. It
// is shared between the coordinator's server process and direct gets issued
// by the worker running on the coordinator node itself.
type cacheStore struct {
	cached   map[any]cacheEntry
	inflight map[any]*sim.Future
}

type cacheEntry struct {
	data any
	size int
}

// get returns the cached or fetched value for key, coalescing concurrent
// fetches of the same key into one.
func (st *cacheStore) get(cc *ClusterCache, p *sim.Proc, at, source cluster.NodeID, key any) cacheEntry {
	if e, ok := st.cached[key]; ok {
		return e
	}
	if f, ok := st.inflight[key]; ok {
		return f.Await(p).(cacheEntry)
	}
	f := sim.NewFuture(p.Engine(), fmt.Sprintf("cache fetch %v", key))
	st.inflight[key] = f
	data, size := cc.fetch(p, at, source, key)
	e := cacheEntry{data: data, size: size}
	st.cached[key] = e
	delete(st.inflight, key)
	f.Set(e)
	return e
}

// NewClusterCache installs coordinator server processes for every (cluster,
// remote source) pair and returns the cache facade. Call before System.Run.
func NewClusterCache(sys *System, name string, fetch FetchFunc) *ClusterCache {
	cc := &ClusterCache{sys: sys, name: name, fetch: fetch, stores: make(map[storeKey]*cacheStore)}
	topo := sys.Topo
	for c := 0; c < topo.Clusters; c++ {
		for src := 0; src < topo.Compute(); src++ {
			source := cluster.NodeID(src)
			if topo.ClusterOf(source) == c {
				continue // only remote processors need a coordinator
			}
			st := &cacheStore{cached: make(map[any]cacheEntry), inflight: make(map[any]*sim.Future)}
			cc.stores[storeKey{c, source}] = st
			coord := cc.coordinator(c, source)
			svc := cc.service(source)
			mb := sys.RTS.RegisterService(coord, svc)
			sys.spawnDaemon(coord, fmt.Sprintf("cache %s/%s@%d", name, svc, coord),
				func(w *Worker) { cc.serve(w, mb, st, source) })
		}
	}
	return cc
}

// coordinator returns the node of cluster c that coordinates data of source.
// Coordinators are spread round-robin over the cluster's nodes.
func (cc *ClusterCache) coordinator(c int, source cluster.NodeID) cluster.NodeID {
	topo := cc.sys.Topo
	return topo.Node(c, int(source)%topo.Size(c))
}

func (cc *ClusterCache) service(source cluster.NodeID) string {
	return fmt.Sprintf("cache:%s:%d", cc.name, source)
}

// serve is the coordinator loop: the first request for a key triggers the
// WAN fetch; requests arriving during the fetch coalesce onto its future.
// Prefetch requests (casts) warm the cache without a reply.
func (cc *ClusterCache) serve(w *Worker, mb *sim.Mailbox, st *cacheStore, source cluster.NodeID) {
	for {
		req := orca.NextRequest(w.P, mb)
		e := st.get(cc, w.P, w.Node, source, req.Payload)
		if req.NeedsReply() {
			req.Reply(e.size, e.data)
		}
	}
}

// Prefetch asks the coordinator to start fetching source's data for key
// without blocking the caller. The paper's coordinators know in advance
// which processors will read which data, so warming the cluster cache ahead
// of the read phase is part of the same optimization. Same-cluster sources
// need no prefetch (reads are already LAN-fast) and none is sent.
func (cc *ClusterCache) Prefetch(w *Worker, source cluster.NodeID, key any) {
	topo := cc.sys.Topo
	if topo.SameCluster(w.Node, source) {
		return
	}
	c := topo.ClusterOf(w.Node)
	coord := cc.coordinator(c, source)
	if coord == w.Node {
		// The store is local; the coordinator daemon will fetch on the
		// first real request — casting to ourselves would not help.
		return
	}
	cc.sys.RTS.Cast(w.Node, coord, cc.service(source), keyBytes, key)
}

// keyBytes is the simulated size of a cache-request key.
const keyBytes = 16

// Get returns source's data for key on behalf of worker w. Same-cluster
// sources are fetched directly (the normal fast path); remote sources go
// through the cluster coordinator. When w itself runs on the coordinator
// node it uses the shared cache directly, skipping the loopback request.
func (cc *ClusterCache) Get(w *Worker, source cluster.NodeID, key any) any {
	topo := cc.sys.Topo
	if topo.SameCluster(w.Node, source) {
		data, _ := cc.fetch(w.P, w.Node, source, key)
		return data
	}
	c := topo.ClusterOf(w.Node)
	coord := cc.coordinator(c, source)
	if coord == w.Node {
		return cc.stores[storeKey{c, source}].get(cc, w.P, w.Node, source, key).data
	}
	return w.Call(coord, cc.service(source), keyBytes, key)
}

// spawnDaemon starts a server process that may stay parked forever.
func (s *System) spawnDaemon(node cluster.NodeID, name string, body func(w *Worker)) {
	w := &Worker{Sys: s, Node: node}
	s.EngineFor(node).Go(name, func(p *sim.Proc) {
		w.P = p
		p.SetDaemon(true)
		body(w)
	})
}
