package core

import (
	"testing"
	"testing/quick"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/orca"
	"albatross/internal/rng"
	"albatross/internal/sim"
)

func TestSystemSmoke(t *testing.T) {
	sys := NewDAS(2, 4)
	b := sim.NewBarrier(sys.Engine, "b", sys.Topo.Compute())
	ran := 0
	sys.SpawnWorkers("w", func(w *Worker) {
		w.Compute(time.Duration(w.Rank()+1) * time.Millisecond)
		b.Arrive(w.P)
		ran++
	})
	m, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ran != 8 {
		t.Fatalf("ran %d workers", ran)
	}
	if m.Elapsed != 8*time.Millisecond {
		t.Fatalf("elapsed %v", m.Elapsed)
	}
}

// fetchCounter builds a FetchFunc that counts how many fetches reach each
// source and charges a WAN-like RPC through a service at the source.
func fetchCounter(sys *System, fetches map[cluster.NodeID]int) FetchFunc {
	for i := 0; i < sys.Topo.Compute(); i++ {
		src := cluster.NodeID(i)
		mb := sys.RTS.RegisterService(src, "data")
		sys.spawnDaemon(src, "data-server", func(w *Worker) {
			for {
				req := orca.NextRequest(w.P, mb)
				fetches[src]++
				req.Reply(1024, "payload")
			}
		})
	}
	return func(p *sim.Proc, at, source cluster.NodeID, key any) (any, int) {
		v := sys.RTS.Call(p, at, source, "data", 16, key)
		return v, 1024
	}
}

func TestClusterCacheSingleWANFetch(t *testing.T) {
	sys := NewDAS(2, 4)
	fetches := make(map[cluster.NodeID]int)
	cc := NewClusterCache(sys, "t", fetchCounter(sys, fetches))
	// All 4 nodes of cluster 0 read the same key from node 4 (cluster 1).
	source := cluster.NodeID(4)
	got := 0
	sys.SpawnWorkers("w", func(w *Worker) {
		if w.Cluster() != 0 {
			return
		}
		v := cc.Get(w, source, "iter1")
		if v == "payload" {
			got++
		}
	})
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Fatalf("only %d readers got data", got)
	}
	if fetches[source] != 1 {
		t.Fatalf("source fetched %d times, want 1 (cluster caching)", fetches[source])
	}
}

func TestClusterCacheDistinctKeysRefetch(t *testing.T) {
	sys := NewDAS(2, 2)
	fetches := make(map[cluster.NodeID]int)
	cc := NewClusterCache(sys, "t", fetchCounter(sys, fetches))
	source := cluster.NodeID(2)
	sys.SpawnAt(1, "reader", func(w *Worker) {
		cc.Get(w, source, "iter1")
		cc.Get(w, source, "iter1") // cached
		cc.Get(w, source, "iter2") // new key: refetch
	})
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if fetches[source] != 2 {
		t.Fatalf("source fetched %d times, want 2", fetches[source])
	}
}

func TestClusterCacheSameClusterDirect(t *testing.T) {
	sys := NewDAS(2, 4)
	fetches := make(map[cluster.NodeID]int)
	cc := NewClusterCache(sys, "t", fetchCounter(sys, fetches))
	sys.SpawnAt(1, "reader", func(w *Worker) {
		cc.Get(w, 2, "k") // node 2 is in the same cluster: direct path
	})
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if fetches[2] != 1 {
		t.Fatalf("fetches %v", fetches)
	}
	if sys.Net.Stats().TotalInter().Msgs != 0 {
		t.Fatal("same-cluster get crossed the WAN")
	}
}

func TestClusterReducerCombinesRemoteContributions(t *testing.T) {
	sys := NewDAS(2, 3)
	cr := NewClusterReducer(sys, "sum", func(acc, v any) any {
		if acc == nil {
			return v
		}
		return acc.(int) + v.(int)
	})
	tag := orca.Tag{Op: "forces", A: 7}
	target := cluster.NodeID(0)
	var sum int
	var nmsgs int
	// Contributors: nodes 1,2 (local to target) and 3,4,5 (remote cluster).
	contributors := []cluster.NodeID{1, 2, 3, 4, 5}
	expectMsgs := cr.ExpectedMessages(target, contributors)
	sys.SpawnWorkers("w", func(w *Worker) {
		switch {
		case w.Node == target:
			for i := 0; i < expectMsgs; i++ {
				sum += w.Recv(tag).(int)
				nmsgs++
			}
		default:
			cr.Put(w, target, tag, 64, 1<<w.Rank(), 3) // 3 remote contributors
		}
	})
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if sum != 2+4+8+16+32 {
		t.Fatalf("sum %d", sum)
	}
	if expectMsgs != 3 { // 2 local directs + 1 remote aggregate
		t.Fatalf("expected messages %d", expectMsgs)
	}
	// Exactly one aggregate crossed the WAN.
	if got := sys.Net.Stats().TotalInter().Msgs; got != 1 {
		t.Fatalf("intercluster messages %d, want 1", got)
	}
}

func TestCombinerDeliversAllOnce(t *testing.T) {
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		sys := NewDAS(3, 3)
		cb := NewCombiner(sys, "t", 4096, 500*time.Microsecond)
		const nmsg = 40
		recvCount := make(map[int]int)
		total := 0
		sys.SpawnWorkers("w", func(w *Worker) {
			if w.Rank() == 0 {
				wr := r.Derive(99)
				for i := 0; i < nmsg; i++ {
					to := cluster.NodeID(1 + wr.Intn(8))
					cb.Send(w, to, orca.Tag{Op: "m", A: i}, 100, i)
					w.Compute(time.Duration(wr.Intn(200)) * time.Microsecond)
				}
			}
		})
		// Deliveries land in per-tag mailboxes; count after the run.
		if _, err := sys.Run(); err != nil {
			return false
		}
		for i := 0; i < nmsg; i++ {
			for n := 1; n < 9; n++ {
				if _, ok := sys.RTS.TryRecvData(cluster.NodeID(n), orca.Tag{Op: "m", A: i}); ok {
					recvCount[i]++
					total++
				}
			}
		}
		for i := 0; i < nmsg; i++ {
			if recvCount[i] != 1 {
				return false
			}
		}
		return total == nmsg
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestCombinerReducesInterclusterMessages(t *testing.T) {
	run := func(useCombiner bool) int64 {
		sys := NewDAS(2, 3)
		cb := NewCombiner(sys, "t", 8192, time.Millisecond)
		sys.SpawnAt(0, "sender", func(w *Worker) {
			for i := 0; i < 50; i++ {
				if useCombiner {
					cb.Send(w, 4, orca.Tag{Op: "m", A: i}, 100, i)
				} else {
					w.Send(4, orca.Tag{Op: "m", A: i}, 100, i)
				}
			}
			w.Compute(2 * time.Millisecond) // let timers flush
		})
		if _, err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		return sys.Net.Stats().TotalInter().Msgs
	}
	direct := run(false)
	combined := run(true)
	if combined*5 > direct {
		t.Fatalf("combining sent %d intercluster messages vs %d direct", combined, direct)
	}
}

func TestCombinerFlushAfterTimerDrainsStragglers(t *testing.T) {
	sys := NewDAS(2, 2)
	cb := NewCombiner(sys, "t", 1<<20 /* never by size */, 300*time.Microsecond)
	sys.SpawnAt(0, "sender", func(w *Worker) {
		cb.Send(w, 2, orca.Tag{Op: "x"}, 10, "v")
	})
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := sys.RTS.TryRecvData(2, orca.Tag{Op: "x"}); !ok {
		t.Fatal("straggler message never flushed")
	}
}

func TestCentralQueueAllJobsOnce(t *testing.T) {
	sys := NewDAS(2, 2)
	q := NewCentralQueue(sys, 0)
	const jobs = 20
	got := make(map[int]int)
	done := 0
	sys.SpawnAt(0, "master", func(w *Worker) {
		for i := 0; i < jobs; i++ {
			q.Push(w, 32, i)
		}
		q.Close(w)
	})
	sys.SpawnWorkers("w", func(w *Worker) {
		for {
			job, ok, closed := q.Pop(w, 32)
			if ok {
				got[job.(int)]++
				w.Compute(100 * time.Microsecond)
				continue
			}
			if closed {
				done++
				return
			}
			w.P.Sleep(50 * time.Microsecond)
		}
	})
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 4 {
		t.Fatalf("only %d workers terminated", done)
	}
	for i := 0; i < jobs; i++ {
		if got[i] != 1 {
			t.Fatalf("job %d executed %d times", i, got[i])
		}
	}
}

func TestClusterQueuesStaticDivision(t *testing.T) {
	sys := NewDAS(2, 2)
	q := NewClusterQueues(sys)
	const jobs = 20
	executedBy := make(map[int]int) // job -> cluster
	sys.SpawnAt(0, "master", func(w *Worker) {
		for i := 0; i < jobs; i++ {
			q.PushTo(w, i%2, 32, i)
		}
		q.CloseAll(w)
	})
	sys.SpawnWorkers("w", func(w *Worker) {
		for {
			job, ok, closed := q.Pop(w, 32)
			if ok {
				executedBy[job.(int)] = w.Cluster()
				w.Compute(100 * time.Microsecond)
				continue
			}
			if closed {
				return
			}
			w.P.Sleep(50 * time.Microsecond)
		}
	})
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if len(executedBy) != jobs {
		t.Fatalf("executed %d jobs", len(executedBy))
	}
	for i := 0; i < jobs; i++ {
		if executedBy[i] != i%2 {
			t.Fatalf("job %d ran on cluster %d, want %d", i, executedBy[i], i%2)
		}
	}
}

func TestCentralQueueFromRemoteClusterCostsWAN(t *testing.T) {
	sys := NewDAS(2, 2)
	q := NewCentralQueue(sys, 0)
	sys.SpawnAt(0, "master", func(w *Worker) {
		q.Push(w, 32, 1)
		q.Close(w)
	})
	sys.SpawnAt(2, "remote-worker", func(w *Worker) {
		w.P.Sleep(time.Millisecond)
		q.Pop(w, 32)
	})
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if sys.Net.Stats().InterRPC().Msgs != 1 {
		t.Fatalf("inter RPCs %d, want 1", sys.Net.Stats().InterRPC().Msgs)
	}
}

func TestStealOrderOriginalOffsets(t *testing.T) {
	topo := cluster.Topology{Clusters: 2, NodesPerCluster: 8}
	order := StealOrderOriginal(topo, 3)
	want := []cluster.NodeID{4, 5, 7, 11, 3 + 16 - 16} // offsets 1,2,4,8,16%16 -> skip self
	// offsets: 1,2,4,8 (16 == p so loop stops); want {4,5,7,11}
	want = want[:4]
	if len(order) != 4 {
		t.Fatalf("order %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestStealOrderLocalFirstProperty(t *testing.T) {
	prop := func(cl8, npc8, self8 uint8) bool {
		cs := int(cl8%4) + 1
		npc := int(npc8%8) + 2
		topo := cluster.Topology{Clusters: cs, NodesPerCluster: npc}
		self := cluster.NodeID(int(self8) % topo.Compute())
		order := StealOrderLocalFirst(topo, self)
		if len(order) != topo.Compute()-1 {
			return false
		}
		seen := map[cluster.NodeID]bool{self: true}
		localPhase := true
		for _, v := range order {
			if seen[v] {
				return false // duplicate
			}
			seen[v] = true
			local := topo.SameCluster(self, v)
			if local && !localPhase {
				return false // local victim after a remote one
			}
			if !local {
				localPhase = false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIdleMap(t *testing.T) {
	m := NewIdleMap(4)
	if m.AllIdle() || m.CountIdle() != 0 {
		t.Fatal("fresh map not all-busy")
	}
	m.Set(1, true)
	m.Set(3, true)
	if !m.Idle(1) || m.Idle(0) || m.CountIdle() != 2 {
		t.Fatal("Set/Idle broken")
	}
	c := m.Clone()
	c.Set(0, true)
	if m.Idle(0) {
		t.Fatal("Clone shares storage")
	}
	m.Set(0, true)
	m.Set(2, true)
	if !m.AllIdle() {
		t.Fatal("AllIdle false after setting all")
	}
}

func TestMetricsSeconds(t *testing.T) {
	m := Metrics{Elapsed: 1500 * time.Millisecond}
	if m.Seconds() != 1.5 {
		t.Fatalf("seconds %v", m.Seconds())
	}
}

// TestClusterCacheOnIrregularTopology: coordinators must map onto valid
// nodes whatever the per-cluster sizes.
func TestClusterCacheOnIrregularTopology(t *testing.T) {
	sys := NewSystem(Config{
		Topology: cluster.Irregular(3, 2, 4),
		Params:   cluster.DASParams(),
	})
	fetches := make(map[cluster.NodeID]int)
	cc := NewClusterCache(sys, "t", fetchCounter(sys, fetches))
	// Every node of the last cluster reads the same key from node 0.
	got := 0
	sys.SpawnWorkers("w", func(w *Worker) {
		if w.Cluster() != 2 {
			return
		}
		if cc.Get(w, 0, "k") == "payload" {
			got++
		}
	})
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Fatalf("%d readers got data, want 4", got)
	}
	if fetches[0] != 1 {
		t.Fatalf("source fetched %d times, want 1", fetches[0])
	}
}

// TestCombinerOnIrregularTopology: the designated agents sit on the last
// node of each (differently sized) cluster and still deliver exactly once.
func TestCombinerOnIrregularTopology(t *testing.T) {
	sys := NewSystem(Config{
		Topology: cluster.Irregular(2, 5, 3),
		Params:   cluster.DASParams(),
	})
	cb := NewCombiner(sys, "t", 4096, 300*time.Microsecond)
	const nmsg = 12
	sys.SpawnAt(0, "sender", func(w *Worker) {
		for i := 0; i < nmsg; i++ {
			cb.Send(w, cluster.NodeID(2+i%8), orca.Tag{Op: "m", A: i}, 50, i)
		}
	})
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nmsg; i++ {
		if _, ok := sys.RTS.TryRecvData(cluster.NodeID(2+i%8), orca.Tag{Op: "m", A: i}); !ok {
			t.Fatalf("message %d lost", i)
		}
	}
}
