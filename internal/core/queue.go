package core

import (
	"fmt"

	"albatross/internal/cluster"
	"albatross/internal/orca"
)

// jobQueueState is the shared-object state of one FIFO job queue.
type jobQueueState struct {
	jobs   []any
	closed bool
}

// popResult is what a GetJob operation returns.
type popResult struct {
	job    any
	ok     bool // a job was returned
	closed bool // the queue is closed and drained
}

// queueOps builds the shared-object operations for a job-queue state.
func pushOp(size int, job any) orca.Op {
	return orca.Op{
		Name: "AddJob", ArgBytes: size, ResBytes: 4,
		Apply: func(state any) any {
			q := state.(*jobQueueState)
			q.jobs = append(q.jobs, job)
			return nil
		},
	}
}

func popOp(resSize int) orca.Op {
	return orca.Op{
		Name: "GetJob", ArgBytes: 8, ResBytes: resSize,
		Apply: func(state any) any {
			q := state.(*jobQueueState)
			if len(q.jobs) == 0 {
				return popResult{closed: q.closed}
			}
			j := q.jobs[0]
			q.jobs = q.jobs[1:]
			return popResult{job: j, ok: true}
		},
	}
}

var closeOp = orca.Op{
	Name: "CloseQueue", ArgBytes: 4, ResBytes: 4,
	Apply: func(state any) any {
		state.(*jobQueueState).closed = true
		return nil
	},
}

// CentralQueue is the paper's original TSP work-distribution scheme
// (Section 4.2): a single FIFO job queue stored in a shared object on the
// master's machine. Every Pop by a worker in another cluster is an
// intercluster RPC — the wide-area bottleneck the optimization removes.
type CentralQueue struct {
	obj *orca.Object
}

// NewCentralQueue creates the queue object at the owner node.
func NewCentralQueue(sys *System, owner cluster.NodeID) *CentralQueue {
	return &CentralQueue{obj: sys.RTS.NewObject("central-queue", owner, &jobQueueState{})}
}

// Push appends a job (size = simulated job descriptor bytes).
func (q *CentralQueue) Push(w *Worker, size int, job any) {
	w.Invoke(q.obj, pushOp(size, job))
}

// Close marks the queue complete: workers seeing an empty closed queue stop.
func (q *CentralQueue) Close(w *Worker) { w.Invoke(q.obj, closeOp) }

// Pop removes the oldest job. ok is false with done=false when the queue is
// momentarily empty, and done=true when it is closed and drained.
func (q *CentralQueue) Pop(w *Worker, resSize int) (job any, ok, done bool) {
	r := w.Invoke(q.obj, popOp(resSize)).(popResult)
	return r.job, r.ok, r.closed
}

// ClusterQueues is the optimized TSP scheme: one job queue per cluster with
// the work divided statically over the clusters, trading load balance for a
// large reduction in intercluster communication (paper Section 4.2).
type ClusterQueues struct {
	objs []*orca.Object
	topo cluster.Topology
}

// NewClusterQueues creates one queue object per cluster, owned by that
// cluster's first node.
func NewClusterQueues(sys *System) *ClusterQueues {
	topo := sys.Topo
	cq := &ClusterQueues{topo: topo}
	for c := 0; c < topo.Clusters; c++ {
		cq.objs = append(cq.objs,
			sys.RTS.NewObject(fmt.Sprintf("cluster-queue-%d", c), topo.Node(c, 0), &jobQueueState{}))
	}
	return cq
}

// PushTo appends a job to cluster c's queue (the master's static division).
func (q *ClusterQueues) PushTo(w *Worker, c int, size int, job any) {
	w.Invoke(q.objs[c], pushOp(size, job))
}

// CloseAll closes every cluster queue.
func (q *ClusterQueues) CloseAll(w *Worker) {
	for _, o := range q.objs {
		w.Invoke(o, closeOp)
	}
}

// Close closes cluster c's queue only.
func (q *ClusterQueues) Close(w *Worker, c int) { w.Invoke(q.objs[c], closeOp) }

// Pop removes the oldest job from the caller's own cluster queue.
func (q *ClusterQueues) Pop(w *Worker, resSize int) (job any, ok, done bool) {
	r := w.Invoke(q.objs[w.Cluster()], popOp(resSize)).(popResult)
	return r.job, r.ok, r.closed
}
