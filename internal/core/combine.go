package core

import (
	"time"

	"albatross/internal/cluster"
	"albatross/internal/orca"
)

// Combiner implements the paper's RA optimization (Section 4.5): message
// combining at the cluster level. Small asynchronous intercluster messages
// are first sent to a designated machine in the sender's own cluster, which
// accumulates them and occasionally ships all messages with the same
// destination cluster as one large intercluster message; the receiving
// cluster's designated machine then scatters them locally.
//
// A buffer is flushed when it reaches FlushBytes or when FlushAfter elapses
// since its first pending message, whichever comes first.
//
// Item records and item slices are pooled: the receiving agent recycles
// them after scattering, so sustained combining allocates nothing beyond
// the flush timers.
type Combiner struct {
	sys        *System
	name       string
	FlushBytes int
	FlushAfter time.Duration

	// per (source cluster, destination cluster) buffers, at the source's
	// designated combiner node
	bufs [][]combineBuf

	itemPool  []*combineItem
	slicePool [][]*combineItem
}

// combineItem is one application message riding inside a combined message.
type combineItem struct {
	to      cluster.NodeID
	tag     orca.TagID
	size    int
	payload any
}

type combineBuf struct {
	items []*combineItem
	bytes int
	timer bool   // a flush timer is pending for the current generation
	gen   uint64 // bumped at every flush, so stale timers are ignored
}

// itemHeaderBytes is the per-item framing overhead inside a combined message.
const itemHeaderBytes = 8

// NewCombiner installs the per-cluster combining agents. Call before Run.
func NewCombiner(sys *System, name string, flushBytes int, flushAfter time.Duration) *Combiner {
	cb := &Combiner{
		sys: sys, name: name,
		FlushBytes: flushBytes, FlushAfter: flushAfter,
	}
	topo := sys.Topo
	cb.bufs = make([][]combineBuf, topo.Clusters)
	for c := 0; c < topo.Clusters; c++ {
		cb.bufs[c] = make([]combineBuf, topo.Clusters)
		cb.install(c)
	}
	return cb
}

func (cb *Combiner) getItem() *combineItem {
	if k := len(cb.itemPool); k > 0 {
		it := cb.itemPool[k-1]
		cb.itemPool = cb.itemPool[:k-1]
		return it
	}
	return new(combineItem)
}

func (cb *Combiner) putItem(it *combineItem) {
	it.payload = nil
	cb.itemPool = append(cb.itemPool, it)
}

func (cb *Combiner) getSlice() []*combineItem {
	if k := len(cb.slicePool); k > 0 {
		s := cb.slicePool[k-1]
		cb.slicePool = cb.slicePool[:k-1]
		return s
	}
	return nil
}

func (cb *Combiner) putSlice(s []*combineItem) {
	for i := range s {
		s[i] = nil
	}
	cb.slicePool = append(cb.slicePool, s[:0])
}

// agent returns the designated combining machine of cluster c: its last
// compute node (keeping it off the sequencer node).
func (cb *Combiner) agent(c int) cluster.NodeID {
	topo := cb.sys.Topo
	return topo.Node(c, topo.Size(c)-1)
}

func (cb *Combiner) install(c int) {
	rts := cb.sys.RTS
	agent := cb.agent(c)
	// Outgoing side: accumulate and flush.
	rts.HandleService(agent, "comb:"+cb.name, func(req *orca.Request) {
		it := req.Payload.(*combineItem)
		dc := cb.sys.Topo.ClusterOf(it.to)
		buf := &cb.bufs[c][dc]
		if buf.items == nil {
			buf.items = cb.getSlice()
		}
		buf.items = append(buf.items, it)
		buf.bytes += it.size + itemHeaderBytes
		if buf.bytes >= cb.FlushBytes {
			cb.flush(c, dc)
			return
		}
		if !buf.timer {
			buf.timer = true
			gen := buf.gen
			cb.sys.Engine.After(cb.FlushAfter, func() {
				if cb.bufs[c][dc].gen == gen { // not already flushed by size
					cb.flush(c, dc)
				}
			})
		}
	})
	// Incoming side: scatter a combined message locally, then recycle the
	// item records and the carrier slice.
	rts.HandleService(agent, "scat:"+cb.name, func(req *orca.Request) {
		items := req.Payload.([]*combineItem)
		for _, it := range items {
			rts.SendDataID(agent, it.to, it.tag, it.size, it.payload)
			cb.putItem(it)
		}
		cb.putSlice(items)
	})
}

// flush ships cluster c's pending items for destination cluster dc as one
// combined intercluster message.
func (cb *Combiner) flush(c, dc int) {
	buf := &cb.bufs[c][dc]
	items := buf.items
	bytes := buf.bytes
	buf.items = nil
	buf.bytes = 0
	buf.timer = false
	buf.gen++
	if len(items) == 0 {
		if items != nil {
			cb.putSlice(items)
		}
		return
	}
	cb.sys.RTS.Cast(cb.agent(c), cb.agent(dc), "scat:"+cb.name, bytes, items)
}

// Send transmits an asynchronous tagged message, combining it with other
// intercluster traffic when the destination is in a remote cluster.
// Same-cluster messages bypass the combiner.
func (cb *Combiner) Send(w *Worker, to cluster.NodeID, tag orca.Tag, size int, payload any) {
	cb.SendID(w, to, cb.sys.RTS.InternTag(tag), size, payload)
}

// SendID is Send for a pre-interned tag: the zero-allocation fast path.
func (cb *Combiner) SendID(w *Worker, to cluster.NodeID, tag orca.TagID, size int, payload any) {
	topo := cb.sys.Topo
	if topo.SameCluster(w.Node, to) {
		w.SendID(to, tag, size, payload)
		return
	}
	it := cb.getItem()
	it.to, it.tag, it.size, it.payload = to, tag, size, payload
	cb.sys.RTS.Cast(w.Node, cb.agent(topo.ClusterOf(w.Node)), "comb:"+cb.name, size, it)
}

// FlushAll forces out every pending buffer (used at phase boundaries so no
// message is stranded behind a long timer).
func (cb *Combiner) FlushAll() {
	for c := range cb.bufs {
		for dc := range cb.bufs[c] {
			cb.flush(c, dc)
		}
	}
}
