package core

import (
	"time"

	"albatross/internal/cluster"
	"albatross/internal/orca"
)

// Combiner implements the paper's RA optimization (Section 4.5): message
// combining at the cluster level. Small asynchronous intercluster messages
// are first sent to a designated machine in the sender's own cluster, which
// accumulates them and occasionally ships all messages with the same
// destination cluster as one large intercluster message; the receiving
// cluster's designated machine then scatters them locally.
//
// A buffer is flushed when it reaches FlushBytes or when FlushAfter elapses
// since its first pending message, whichever comes first.
//
// Item records and item slices are pooled: the receiving agent recycles
// them after scattering, so sustained combining allocates nothing beyond
// the flush timers. Pools are per cluster — a record retires into the pool
// of the cluster whose LP frees it, which may differ from where it was
// allocated, but each pool is only ever touched from its own LP thread, so
// combining stays shard-safe (see DESIGN.md §5c).
type Combiner struct {
	sys        *System
	name       string
	FlushBytes int
	FlushAfter time.Duration

	// per (source cluster, destination cluster) buffers, at the source's
	// designated combiner node
	bufs [][]combineBuf

	// per-cluster free lists; every cluster shares one instance on the
	// sequential engine
	pools []*combinePools
}

// combinePools is one cluster's slice of the combiner free lists.
type combinePools struct {
	itemPool  []*combineItem
	slicePool [][]*combineItem
}

// combineItem is one application message riding inside a combined message.
type combineItem struct {
	to      cluster.NodeID
	tag     orca.TagID
	size    int
	payload any
}

type combineBuf struct {
	items []*combineItem
	bytes int
	timer bool   // a flush timer is pending for the current generation
	gen   uint64 // bumped at every flush, so stale timers are ignored
}

// itemHeaderBytes is the per-item framing overhead inside a combined message.
const itemHeaderBytes = 8

// NewCombiner installs the per-cluster combining agents. Call before Run.
func NewCombiner(sys *System, name string, flushBytes int, flushAfter time.Duration) *Combiner {
	cb := &Combiner{
		sys: sys, name: name,
		FlushBytes: flushBytes, FlushAfter: flushAfter,
	}
	topo := sys.Topo
	cb.bufs = make([][]combineBuf, topo.Clusters)
	cb.pools = make([]*combinePools, topo.Clusters)
	if sys.Sharded() {
		for c := range cb.pools {
			cb.pools[c] = &combinePools{}
		}
	} else {
		one := &combinePools{}
		for c := range cb.pools {
			cb.pools[c] = one
		}
	}
	for c := 0; c < topo.Clusters; c++ {
		cb.bufs[c] = make([]combineBuf, topo.Clusters)
		cb.install(c)
	}
	return cb
}

func (pl *combinePools) getItem() *combineItem {
	if k := len(pl.itemPool); k > 0 {
		it := pl.itemPool[k-1]
		pl.itemPool = pl.itemPool[:k-1]
		return it
	}
	return new(combineItem)
}

func (pl *combinePools) putItem(it *combineItem) {
	it.payload = nil
	pl.itemPool = append(pl.itemPool, it)
}

func (pl *combinePools) getSlice() []*combineItem {
	if k := len(pl.slicePool); k > 0 {
		s := pl.slicePool[k-1]
		pl.slicePool = pl.slicePool[:k-1]
		return s
	}
	return nil
}

func (pl *combinePools) putSlice(s []*combineItem) {
	for i := range s {
		s[i] = nil
	}
	pl.slicePool = append(pl.slicePool, s[:0])
}

// agent returns the designated combining machine of cluster c: its last
// compute node (keeping it off the sequencer node).
func (cb *Combiner) agent(c int) cluster.NodeID {
	topo := cb.sys.Topo
	return topo.Node(c, topo.Size(c)-1)
}

func (cb *Combiner) install(c int) {
	rts := cb.sys.RTS
	agent := cb.agent(c)
	// Both handlers, and the flush timer below, run at the agent — i.e. on
	// cluster c's LP when sharded — so every touch of bufs[c] and pools[c]
	// is LP-local.
	pl := cb.pools[c]
	e := cb.sys.EngineFor(agent)
	// Outgoing side: accumulate and flush.
	rts.HandleService(agent, "comb:"+cb.name, func(req *orca.Request) {
		it := req.Payload.(*combineItem)
		dc := cb.sys.Topo.ClusterOf(it.to)
		buf := &cb.bufs[c][dc]
		if buf.items == nil {
			buf.items = pl.getSlice()
		}
		buf.items = append(buf.items, it)
		buf.bytes += it.size + itemHeaderBytes
		if buf.bytes >= cb.FlushBytes {
			cb.flush(c, dc)
			return
		}
		if !buf.timer {
			buf.timer = true
			gen := buf.gen
			e.After(cb.FlushAfter, func() {
				if cb.bufs[c][dc].gen == gen { // not already flushed by size
					cb.flush(c, dc)
				}
			})
		}
	})
	// Incoming side: scatter a combined message locally, then recycle the
	// item records and the carrier slice.
	rts.HandleService(agent, "scat:"+cb.name, func(req *orca.Request) {
		items := req.Payload.([]*combineItem)
		for _, it := range items {
			rts.SendDataID(agent, it.to, it.tag, it.size, it.payload)
			pl.putItem(it)
		}
		pl.putSlice(items)
	})
}

// flush ships cluster c's pending items for destination cluster dc as one
// combined intercluster message.
func (cb *Combiner) flush(c, dc int) {
	buf := &cb.bufs[c][dc]
	items := buf.items
	bytes := buf.bytes
	buf.items = nil
	buf.bytes = 0
	buf.timer = false
	buf.gen++
	if len(items) == 0 {
		if items != nil {
			cb.pools[c].putSlice(items)
		}
		return
	}
	cb.sys.RTS.Cast(cb.agent(c), cb.agent(dc), "scat:"+cb.name, bytes, items)
}

// Send transmits an asynchronous tagged message, combining it with other
// intercluster traffic when the destination is in a remote cluster.
// Same-cluster messages bypass the combiner.
func (cb *Combiner) Send(w *Worker, to cluster.NodeID, tag orca.Tag, size int, payload any) {
	cb.SendID(w, to, cb.sys.RTS.InternTag(tag), size, payload)
}

// SendID is Send for a pre-interned tag: the zero-allocation fast path.
func (cb *Combiner) SendID(w *Worker, to cluster.NodeID, tag orca.TagID, size int, payload any) {
	topo := cb.sys.Topo
	if topo.SameCluster(w.Node, to) {
		w.SendID(to, tag, size, payload)
		return
	}
	it := cb.pools[topo.ClusterOf(w.Node)].getItem()
	it.to, it.tag, it.size, it.payload = to, tag, size, payload
	cb.sys.RTS.Cast(w.Node, cb.agent(topo.ClusterOf(w.Node)), "comb:"+cb.name, size, it)
}

// FlushAll forces out every pending buffer (used at phase boundaries so no
// message is stranded behind a long timer). It drains every cluster's
// buffers from the calling context, which only one LP may do — on a sharded
// engine rely on the flush timers instead.
func (cb *Combiner) FlushAll() {
	if cb.sys.Sharded() {
		panic("core: Combiner.FlushAll on a sharded engine — buffers belong to their cluster's LP; rely on the flush timers or flush from each cluster (see DESIGN.md §5c)")
	}
	for c := range cb.bufs {
		for dc := range cb.bufs[c] {
			cb.flush(c, dc)
		}
	}
}
