package core

import (
	"albatross/internal/cluster"
)

// Work-stealing victim orders for IDA*'s distributed job queue (paper
// Section 4.6).

// StealOrderOriginal returns the victim sequence of the paper's original
// program: offsets 1, 2, 4, 8, … (powers of two below p) added to the own
// rank modulo p. The paper notes this works poorly for the highest-numbered
// process of a cluster, which starts stealing in remote clusters first.
func StealOrderOriginal(topo cluster.Topology, self cluster.NodeID) []cluster.NodeID {
	p := topo.Compute()
	var out []cluster.NodeID
	for off := 1; off < p; off *= 2 {
		v := cluster.NodeID((int(self) + off) % p)
		if v != self {
			out = append(out, v)
		}
	}
	return out
}

// StealOrderLocalFirst returns the optimized victim sequence: machines of
// the thief's own cluster first (cheap intracluster steals), then the
// remote machines, both in increasing-offset order.
func StealOrderLocalFirst(topo cluster.Topology, self cluster.NodeID) []cluster.NodeID {
	p := topo.Compute()
	var local, remote []cluster.NodeID
	for off := 1; off < p; off++ {
		v := cluster.NodeID((int(self) + off) % p)
		if topo.SameCluster(self, v) {
			local = append(local, v)
		} else {
			remote = append(remote, v)
		}
	}
	return append(local, remote...)
}

// IdleMap tracks which workers are known to be idle — the paper's
// "remember empty" heuristic. The IDA* program already broadcasts a message
// whenever a worker runs out of work or becomes active again (for
// termination detection), so each process can maintain this map for free and
// skip steal attempts at known-idle victims.
type IdleMap struct {
	idle []bool
}

// NewIdleMap creates a map for p workers, all initially busy.
func NewIdleMap(p int) *IdleMap { return &IdleMap{idle: make([]bool, p)} }

// Set records worker r's idleness.
func (m *IdleMap) Set(r int, idle bool) { m.idle[r] = idle }

// Idle reports whether worker r is known to be idle.
func (m *IdleMap) Idle(r int) bool { return m.idle[r] }

// AllIdle reports whether every worker is known to be idle.
func (m *IdleMap) AllIdle() bool {
	for _, b := range m.idle {
		if !b {
			return false
		}
	}
	return true
}

// CountIdle reports how many workers are known to be idle.
func (m *IdleMap) CountIdle() int {
	n := 0
	for _, b := range m.idle {
		if b {
			n++
		}
	}
	return n
}

// Clone returns a copy (each node's replica of the idle map is distinct).
func (m *IdleMap) Clone() *IdleMap {
	c := &IdleMap{idle: make([]bool, len(m.idle))}
	copy(c.idle, m.idle)
	return c
}
