// Package cluster models the multilevel (LAN/WAN) platform of the paper:
// a set of workstation clusters, each with a dedicated gateway node,
// interconnected by wide-area links. It provides the node numbering scheme
// shared by the network emulator and the runtime, plus parameter presets
// matching the DAS system's measured Table-1 figures.
package cluster

import (
	"fmt"
	"strconv"
	"time"
)

// NodeID identifies a machine (compute node or gateway) in the system.
// Compute nodes are numbered 0..Topology.Compute()-1, cluster by cluster;
// gateway g of cluster c has ID Topology.Compute()+c.
type NodeID int

// Topology describes the shape of a multilevel cluster system. Clusters are
// uniform (NodesPerCluster each) unless Sizes gives per-cluster node counts,
// as in the real DAS system whose VU Amsterdam cluster has 64 nodes and the
// other three sites 24 (Figure 17).
type Topology struct {
	Clusters        int   // number of clusters
	NodesPerCluster int   // compute nodes per cluster (ignored when Sizes is set)
	Sizes           []int // optional per-cluster sizes; len must equal Clusters

	// WAN, when set, replaces the implicit full mesh at Params' uniform
	// WANLatency/WANBandwidth with an explicit link graph (tiers, rings,
	// per-link capacity classes). Built by Builder or ParseTopology (dsl.go);
	// intercluster traffic is then routed hop by hop along Graph.Next.
	WAN *Graph
}

// Validate reports an error for nonsensical shapes.
func (t Topology) Validate() error {
	if t.Clusters <= 0 {
		return fmt.Errorf("cluster: Clusters must be positive, got %d", t.Clusters)
	}
	if t.WAN != nil {
		if err := t.WAN.Validate(t.Clusters); err != nil {
			return err
		}
	}
	if t.Sizes != nil {
		if len(t.Sizes) != t.Clusters {
			return fmt.Errorf("cluster: %d sizes for %d clusters", len(t.Sizes), t.Clusters)
		}
		for c, s := range t.Sizes {
			if s <= 0 {
				return fmt.Errorf("cluster: cluster %d has non-positive size %d", c, s)
			}
		}
		return nil
	}
	if t.NodesPerCluster <= 0 {
		return fmt.Errorf("cluster: NodesPerCluster must be positive, got %d", t.NodesPerCluster)
	}
	return nil
}

// Size reports the number of compute nodes in cluster c.
func (t Topology) Size(c int) int {
	if t.Sizes != nil {
		return t.Sizes[c]
	}
	return t.NodesPerCluster
}

// offset reports the first node id of cluster c.
func (t Topology) offset(c int) int {
	if t.Sizes == nil {
		return c * t.NodesPerCluster
	}
	off := 0
	for i := 0; i < c; i++ {
		off += t.Sizes[i]
	}
	return off
}

// Compute reports the total number of compute nodes.
func (t Topology) Compute() int {
	if t.Sizes == nil {
		return t.Clusters * t.NodesPerCluster
	}
	sum := 0
	for _, s := range t.Sizes {
		sum += s
	}
	return sum
}

// Total reports compute nodes plus gateways. Single-cluster systems need no
// gateway, matching the paper's setup where gateways exist only for WAN use.
func (t Topology) Total() int {
	if t.Clusters == 1 {
		return t.Compute()
	}
	return t.Compute() + t.Clusters
}

// ClusterOf reports which cluster a node (compute or gateway) belongs to.
func (t Topology) ClusterOf(n NodeID) int {
	if int(n) >= t.Compute() {
		return int(n) - t.Compute()
	}
	if t.Sizes == nil {
		return int(n) / t.NodesPerCluster
	}
	rest := int(n)
	for c, s := range t.Sizes {
		if rest < s {
			return c
		}
		rest -= s
	}
	panic(fmt.Sprintf("cluster: node %d out of range", n))
}

// Gateway returns the gateway node of cluster c. It panics for
// single-cluster topologies, which have no gateways.
func (t Topology) Gateway(c int) NodeID {
	if t.Clusters == 1 {
		panic("cluster: single-cluster topology has no gateway")
	}
	if c < 0 || c >= t.Clusters {
		panic(fmt.Sprintf("cluster: gateway of invalid cluster %d", c))
	}
	return NodeID(t.Compute() + c)
}

// IsGateway reports whether n is a gateway node.
func (t Topology) IsGateway(n NodeID) bool { return int(n) >= t.Compute() }

// Node returns the i'th compute node of cluster c.
func (t Topology) Node(c, i int) NodeID {
	if c < 0 || c >= t.Clusters || i < 0 || i >= t.Size(c) {
		panic(fmt.Sprintf("cluster: invalid node (%d,%d) in %v", c, i, t))
	}
	return NodeID(t.offset(c) + i)
}

// Nodes returns the compute nodes of cluster c in order.
func (t Topology) Nodes(c int) []NodeID {
	out := make([]NodeID, t.Size(c))
	for i := range out {
		out[i] = t.Node(c, i)
	}
	return out
}

// SameCluster reports whether two nodes are in the same cluster.
func (t Topology) SameCluster(a, b NodeID) bool { return t.ClusterOf(a) == t.ClusterOf(b) }

// IndexInCluster reports a compute node's rank within its cluster.
func (t Topology) IndexInCluster(n NodeID) int {
	if t.IsGateway(n) {
		panic("cluster: IndexInCluster of gateway")
	}
	return int(n) - t.offset(t.ClusterOf(n))
}

func (t Topology) String() string {
	var b []byte
	if t.WAN != nil {
		b = append(b, "grid["...)
		b = strconv.AppendInt(b, int64(t.Clusters), 10)
		b = append(b, "c/"...)
		b = strconv.AppendInt(b, int64(t.Compute()), 10)
		b = append(b, 'n')
		for _, c := range t.WAN.Classes {
			b = append(b, ' ')
			b = append(b, c.Name...)
		}
		b = append(b, ' ')
		b = append(b, t.WAN.ic.String()...)
		b = append(b, ']')
		return string(b)
	}
	if t.Sizes != nil {
		// Per-cluster sizes: "3x[8,16,32]", not the uniform CxN form (whose
		// NodesPerCluster is ignored and would mislead).
		b = strconv.AppendInt(b, int64(t.Clusters), 10)
		b = append(b, 'x', '[')
		for i, s := range t.Sizes {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendInt(b, int64(s), 10)
		}
		b = append(b, ']')
		return string(b)
	}
	return fmt.Sprintf("%dx%d", t.Clusters, t.NodesPerCluster)
}

// Params holds the application-level performance parameters of the two
// network levels, in the units the paper reports them.
type Params struct {
	// LAN (intracluster, Myrinet in the paper).
	LANLatency      time.Duration // one-way point-to-point message latency
	LANBandwidth    float64       // bytes/second
	LANBcastLatency time.Duration // physical broadcast latency to all cluster members

	// Fast Ethernet hop between a compute node and its cluster gateway.
	FELatency   time.Duration
	FEBandwidth float64

	// WAN (intercluster, gateway to gateway, ATM PVC in the paper).
	WANLatency   time.Duration // one-way gateway-to-gateway latency
	WANBandwidth float64       // bytes/second per directed cluster pair

	// Software overhead charged per protocol message at each endpoint
	// (marshalling, dispatch); folded into delivery times.
	SoftwareOverhead time.Duration

	// OrderCost is the sequencer's per-message processing time: ordered
	// broadcasts serialize on their sequencer node, so a single central
	// sequencer caps system-wide broadcast throughput at 1/OrderCost —
	// the effect that makes broadcast-heavy programs benefit from one
	// sequencer per cluster.
	OrderCost time.Duration

	// GatewayCost is the per-message forwarding time of a gateway's
	// protocol stack (the paper's gateways forward every WAN message over
	// IP). Messages serialize on each gateway they traverse, so floods of
	// small messages can make the gateways themselves the bottleneck —
	// the effect the paper describes for ACP ("much traffic for cluster
	// gateways"). Zero (the calibrated default) disables the extra stage.
	GatewayCost time.Duration

	// Gateway transport optimization (MPWide-style; zero values disable
	// it, restoring the paper's plain store-and-forward gateways).
	//
	// MaxFrameBytes bounds a coalesced frame: intercluster messages bound
	// for the same destination cluster queue at the local gateway and
	// leave as one frame, paying one WAN serialization and one software
	// overhead per frame instead of per message. A frame is flushed as
	// soon as its payload reaches MaxFrameBytes.
	MaxFrameBytes int
	// CoalesceWindow bounds how long a queued message may wait for frame
	// companions: a frame is flushed at latest CoalesceWindow after its
	// first message arrived at the gateway. Either bound alone enables
	// coalescing (the other is then effectively infinite).
	CoalesceWindow time.Duration
	// WANStreams stripes frames round-robin over this many parallel WAN
	// pipes per directed cluster pair (multipath), each with the full
	// WANLatency/WANBandwidth, with in-order frame reassembly at the
	// remote gateway. 0 or 1 keeps the single pipe.
	WANStreams int
}

// TransportEnabled reports whether the gateway transport optimization layer
// (frame coalescing and/or multipath striping) is configured on.
func (p Params) TransportEnabled() bool {
	return p.MaxFrameBytes > 0 || p.CoalesceWindow > 0 || p.WANStreams > 1
}

// Mbit converts megabits/second to bytes/second.
func Mbit(m float64) float64 { return m * 1e6 / 8 }

// DASParams returns parameters calibrated to the paper's Table 1:
// 40 us LAN null-RPC latency, 208 Mbit/s LAN bandwidth, 65 us replicated
// update, 2.7 ms WAN round trip, 4.53 Mbit/s WAN bandwidth.
//
// The WAN round trip in the paper is 2.7 ms application-to-application; one
// message crosses Fast Ethernet to the gateway, the WAN link, and Fast
// Ethernet again, so the one-way budget is 1.35 ms split across those hops.
func DASParams() Params {
	return Params{
		LANLatency:       18 * time.Microsecond, // 40 us RPC = 2 messages + overheads
		LANBandwidth:     Mbit(208),
		LANBcastLatency:  40 * time.Microsecond,
		FELatency:        70 * time.Microsecond,
		FEBandwidth:      Mbit(80),
		WANLatency:       1150 * time.Microsecond,
		WANBandwidth:     Mbit(4.53),
		SoftwareOverhead: 2 * time.Microsecond,
		OrderCost:        12 * time.Microsecond,
	}
}

// InternetParams mimics the paper's "ordinary Internet on a quiet Sunday
// morning" measurement: 8 ms round trip, 1.8 Mbit/s.
func InternetParams() Params {
	p := DASParams()
	p.WANLatency = 3800 * time.Microsecond
	p.WANBandwidth = Mbit(1.8)
	return p
}

// SlowWANParams mimics the paper's "slower network" scenario used in the
// ATPG discussion: 10 ms latency, 2 Mbit/s bandwidth.
func SlowWANParams() Params {
	p := DASParams()
	p.WANLatency = 5 * time.Millisecond
	p.WANBandwidth = Mbit(2)
	return p
}

// DAS returns a uniform multicluster like the paper's experiments use
// (the measurements split the system into equal clusters).
func DAS(clusters, nodesPerCluster int) Topology {
	return Topology{Clusters: clusters, NodesPerCluster: nodesPerCluster}
}

// Irregular returns a topology with explicit per-cluster sizes.
func Irregular(sizes ...int) Topology {
	return Topology{Clusters: len(sizes), Sizes: append([]int(nil), sizes...)}
}

// DASReal returns the full Distributed ASCI Supercomputer of the paper's
// Figure 17: VU Amsterdam 64 nodes, UvA Amsterdam, Leiden and Delft 24 each
// (136 compute nodes plus four gateways).
func DASReal() Topology { return Irregular(64, 24, 24, 24) }

// Site names of the DAS system, for presentation.
var DASSites = []string{"VU Amsterdam", "UvA Amsterdam", "Leiden", "Delft"}
