package cluster

import (
	"strings"
	"testing"
	"time"
)

// twoTier builds 2 backbone clusters, each with two leaf clusters:
// ids 0(root) 1,2(leaves) | 3(root) 4,5(leaves).
func twoTier(t *testing.T) Topology {
	t.Helper()
	b := NewBuilder()
	trunk := b.Class("trunk", 20*time.Millisecond, Mbit(155), 0)
	leafc := b.Class("leaf", 5*time.Millisecond, Mbit(45), 0)
	roots := b.Roots(2, Mesh, trunk, 4)
	b.Tier(roots, 2, leafc, 2, 3)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestBuilderDFSLayout(t *testing.T) {
	topo := twoTier(t)
	if topo.Clusters != 6 {
		t.Fatalf("clusters = %d, want 6", topo.Clusters)
	}
	want := []int{4, 2, 3, 4, 2, 3} // roots cycle [4]; leaves cycle [2,3] in DFS order
	for c, s := range want {
		if topo.Size(c) != s {
			t.Fatalf("size(%d) = %d, want %d (sizes %v)", c, topo.Size(c), s, topo.Sizes)
		}
	}
	g := topo.WAN
	if g.Parent(1) != 0 || g.Parent(4) != 3 || g.Parent(0) != -1 {
		t.Fatal("parent table wrong")
	}
	// 4 leaf uplinks + 1 root-root link.
	if len(g.Links) != 5 {
		t.Fatalf("links = %v", g.Links)
	}
	if len(g.Classes) != 2 || g.Classes[0].Name != "trunk" {
		t.Fatalf("classes = %v", g.Classes)
	}
}

func TestGraphNext(t *testing.T) {
	g := twoTier(t).WAN
	cases := []struct{ u, d, want int }{
		{1, 2, 0}, // sibling leaves route via their root
		{1, 4, 0}, // cross-backbone: up first
		{0, 4, 3}, // root to foreign leaf: across the backbone
		{0, 2, 2}, // root to own leaf: straight down
		{4, 5, 3},
		{5, 0, 3},
	}
	for _, c := range cases {
		if got := g.Next(c.u, c.d); got != c.want {
			t.Fatalf("Next(%d,%d) = %d, want %d", c.u, c.d, got, c.want)
		}
	}
}

func TestRingRouting(t *testing.T) {
	b := NewBuilder()
	cl := b.Class("ring", time.Millisecond, Mbit(100), 0)
	b.Roots(5, Ring, cl, 1)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := topo.WAN
	if len(g.Links) != 5 {
		t.Fatalf("ring of 5 has %d links", len(g.Links))
	}
	if got := g.Next(0, 2); got != 1 { // forward is shorter
		t.Fatalf("Next(0,2) = %d", got)
	}
	if got := g.Next(0, 3); got != 4 { // backward is shorter
		t.Fatalf("Next(0,3) = %d", got)
	}
	// Even ring: ties go forward.
	b2 := NewBuilder()
	cl2 := b2.Class("ring", time.Millisecond, Mbit(100), 0)
	b2.Roots(4, Ring, cl2, 1)
	topo2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := topo2.WAN.Next(0, 2); got != 1 {
		t.Fatalf("tie Next(0,2) = %d", got)
	}
}

func TestBuilderErrors(t *testing.T) {
	check := func(name string, f func(b *Builder)) {
		b := NewBuilder()
		f(b)
		if _, err := b.Build(); err == nil {
			t.Fatalf("%s: error not reported", name)
		}
	}
	check("no roots", func(b *Builder) {})
	check("bad class", func(b *Builder) { b.Roots(2, Mesh, 7, 4) })
	check("zero count", func(b *Builder) { b.Roots(0, Mesh, b.Class("c", time.Millisecond, 1e6, 0), 4) })
	check("zero nodes", func(b *Builder) { b.Roots(2, Mesh, b.Class("c", time.Millisecond, 1e6, 0), 0) })
	check("double roots", func(b *Builder) {
		c := b.Class("c", time.Millisecond, 1e6, 0)
		b.Roots(2, Mesh, c, 4)
		b.Roots(2, Mesh, c, 4)
	})
	check("bad tier parent", func(b *Builder) {
		c := b.Class("c", time.Millisecond, 1e6, 0)
		b.Roots(2, Mesh, c, 4)
		b.Tier(5, 2, c, 2)
	})
	check("bad class params", func(b *Builder) {
		b.Roots(2, Mesh, b.Class("c", 0, 1e6, 0), 4)
	})
}

func TestParseTopology(t *testing.T) {
	cfg := `{
	  "classes": [
	    {"name": "backbone", "latency": "20ms", "mbit": 155, "streams": 2},
	    {"name": "regional", "latency": "5ms", "mbit": 45}
	  ],
	  "roots": {"count": 3, "interconnect": "ring", "class": "backbone", "nodes": [4]},
	  "tiers": [{"fanout": 2, "class": "regional", "nodes": [2]}]
	}`
	topo, err := ParseTopology([]byte(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if topo.Clusters != 9 || topo.Compute() != 3*4+6*2 {
		t.Fatalf("parsed %v", topo)
	}
	if topo.WAN.ic != Ring || len(topo.WAN.Classes) != 2 {
		t.Fatal("graph wrong")
	}
	if topo.WAN.Classes[0].Streams != 2 || topo.WAN.Classes[0].Bandwidth != Mbit(155) {
		t.Fatalf("class 0 = %+v", topo.WAN.Classes[0])
	}
	if got := topo.String(); got != "grid[9c/24n backbone regional ring]" {
		t.Fatalf("string %q", got)
	}
}

func TestParseTopologyErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":         `{`,
		"unknown field":    `{"classes":[{"name":"a","latency":"1ms","mbit":1}],"roots":{"count":2,"class":"a","nodes":[1]},"typo":1}`,
		"no classes":       `{"roots":{"count":2,"class":"a","nodes":[1]}}`,
		"dup class":        `{"classes":[{"name":"a","latency":"1ms","mbit":1},{"name":"a","latency":"1ms","mbit":1}],"roots":{"count":2,"class":"a","nodes":[1]}}`,
		"bad duration":     `{"classes":[{"name":"a","latency":"fast","mbit":1}],"roots":{"count":2,"class":"a","nodes":[1]}}`,
		"unknown class":    `{"classes":[{"name":"a","latency":"1ms","mbit":1}],"roots":{"count":2,"class":"b","nodes":[1]}}`,
		"bad interconnect": `{"classes":[{"name":"a","latency":"1ms","mbit":1}],"roots":{"count":2,"interconnect":"torus","class":"a","nodes":[1]}}`,
		"zero mbit":        `{"classes":[{"name":"a","latency":"1ms","mbit":0}],"roots":{"count":2,"class":"a","nodes":[1]}}`,
		"zero fanout":      `{"classes":[{"name":"a","latency":"1ms","mbit":1}],"roots":{"count":2,"class":"a","nodes":[1]},"tiers":[{"fanout":0,"class":"a","nodes":[1]}]}`,
		"tier bad class":   `{"classes":[{"name":"a","latency":"1ms","mbit":1}],"roots":{"count":2,"class":"a","nodes":[1]},"tiers":[{"fanout":2,"class":"x","nodes":[1]}]}`,
	}
	for name, cfg := range cases {
		if _, err := ParseTopology([]byte(cfg)); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestLoadTopologyMissing(t *testing.T) {
	if _, err := LoadTopology("/nonexistent/topo.json"); err == nil || !strings.Contains(err.Error(), "reading topology config") {
		t.Fatalf("err = %v", err)
	}
}

// Every cluster must reach every other via Next in a bounded number of hops,
// and each hop must correspond to a declared physical link.
func TestRoutesUseDeclaredLinks(t *testing.T) {
	b := NewBuilder()
	trunk := b.Class("trunk", 20*time.Millisecond, Mbit(155), 0)
	leafc := b.Class("leaf", 5*time.Millisecond, Mbit(45), 0)
	roots := b.Roots(4, Ring, trunk, 2)
	mid := b.Tier(roots, 3, leafc, 2)
	b.Tier(mid, 2, leafc, 1)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := topo.WAN
	linked := map[[2]int]bool{}
	for _, l := range g.Links {
		linked[[2]int{l.A, l.B}] = true
		linked[[2]int{l.B, l.A}] = true
	}
	for u := 0; u < topo.Clusters; u++ {
		for d := 0; d < topo.Clusters; d++ {
			if u == d {
				continue
			}
			cur, hops := u, 0
			for cur != d {
				next := g.Next(cur, d)
				if !linked[[2]int{cur, next}] {
					t.Fatalf("route %d→%d uses undeclared link %d-%d", u, d, cur, next)
				}
				cur = next
				if hops++; hops > topo.Clusters {
					t.Fatalf("route %d→%d does not converge", u, d)
				}
			}
		}
	}
}

// TestNextAvoidingRing exercises the adaptive second-direction route: with
// one directed ring link cut, NextAvoiding walks the other way round, and the
// full-path scan prevents ping-ponging back toward the cut mid-route.
func TestNextAvoidingRing(t *testing.T) {
	b := NewBuilder()
	cl := b.Class("ring", time.Millisecond, Mbit(100), 0)
	b.Roots(5, Ring, cl, 1)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := topo.WAN
	down := func(from, to int) bool { return from == 0 && to == 1 }
	// 0→1 direct is cut: go backward via 4.
	if next, ok := g.NextAvoiding(0, 1, down); !ok || next != 4 {
		t.Fatalf("NextAvoiding(0,1) = %d,%v, want 4,true", next, ok)
	}
	// Walk the whole detour 0→1; every hop must avoid the cut and converge.
	cur, hops := 0, 0
	for cur != 1 {
		next, ok := g.NextAvoiding(cur, 1, down)
		if !ok {
			t.Fatalf("route stuck at %d", cur)
		}
		if down(cur, next) {
			t.Fatalf("route crossed the cut link %d→%d", cur, next)
		}
		cur = next
		if hops++; hops > topo.Clusters {
			t.Fatal("detour does not converge (ping-pong)")
		}
	}
	// The reverse direction 1→0 is untouched and keeps the static route.
	if next, ok := g.NextAvoiding(1, 0, down); !ok || next != 0 {
		t.Fatalf("NextAvoiding(1,0) = %d,%v, want 0,true", next, ok)
	}
	// Both directions of both ring links around cluster 0 cut: unreachable.
	sealed := func(from, to int) bool {
		return from == 0 || to == 0
	}
	if _, ok := g.NextAvoiding(1, 0, sealed); ok {
		t.Fatal("fully sealed destination still reported reachable")
	}
}

// TestNextAvoidingTree pins tree-edge semantics: leaf uplinks have no
// alternate, so a cut uplink reports unreachable, while a healthy graph
// returns the static next hop.
func TestNextAvoidingTree(t *testing.T) {
	g := twoTier(t).WAN
	up := func(int, int) bool { return false }
	cases := []struct{ u, d, want int }{
		{1, 2, 0},
		{1, 4, 0},
		{0, 2, 2},
		{0, 4, 3},
	}
	for _, c := range cases {
		if next, ok := g.NextAvoiding(c.u, c.d, up); !ok || next != c.want {
			t.Fatalf("NextAvoiding(%d,%d) = %d,%v, want %d,true", c.u, c.d, next, ok, c.want)
		}
	}
	// Cut leaf 1's uplink: nothing reroutes a tree edge.
	cut := func(from, to int) bool { return from == 1 && to == 0 }
	if _, ok := g.NextAvoiding(1, 4, cut); ok {
		t.Fatal("cut uplink should be unreachable, no alternate exists")
	}
	// Root mesh detour: with trunk 0→3 cut on a 3-root mesh, traffic relays
	// through the third root.
	b := NewBuilder()
	trunk := b.Class("trunk", 20*time.Millisecond, Mbit(155), 0)
	b.Roots(3, Mesh, trunk, 1)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g3 := topo.WAN
	cut03 := func(from, to int) bool { return from == 0 && to == 1 }
	if next, ok := g3.NextAvoiding(0, 1, cut03); !ok || next != 2 {
		t.Fatalf("mesh detour NextAvoiding(0,1) = %d,%v, want 2,true", next, ok)
	}
}
