package cluster

import (
	"testing"
	"time"
)

// TestAllPairsCost checks the routed-cost matrix on a small tiered platform
// against hand-computed values: a 3-root ring backbone (10ms hops) with one
// access child per root (1ms hops), per-hop software overhead of 2us.
func TestAllPairsCost(t *testing.T) {
	b := NewBuilder()
	trunk := b.Class("trunk", 10*time.Millisecond, Mbit(100), 0)
	access := b.Class("access", time.Millisecond, Mbit(100), 0)
	rt := b.Roots(3, Ring, trunk, 4)
	b.Tier(rt, 1, access, 2)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := topo.WAN
	over := 2 * time.Microsecond
	cost := g.AllPairsCost(topo.Clusters, func(class int) time.Duration {
		return g.Classes[class].Latency + over
	})
	if len(cost) != topo.Clusters {
		t.Fatalf("matrix has %d rows, want %d", len(cost), topo.Clusters)
	}
	th := 10*time.Millisecond + over // one trunk hop
	ah := time.Millisecond + over    // one access hop
	roots := g.Roots()
	r0, r1 := int(roots[0]), int(roots[1])
	leaf0 := int(g.sub[r0][0]) + 1 // DFS order: root then its child
	leaf1 := int(g.sub[r1][0]) + 1
	cases := []struct {
		a, b int
		want time.Duration
	}{
		{r0, r0, 0},
		{r0, r1, th},                 // one ring hop
		{r0, leaf0, ah},              // down the access link
		{leaf0, leaf1, ah + th + ah}, // up, across, down
		{leaf0, r1, ah + th},
	}
	for _, c := range cases {
		if got := cost[c.a][c.b]; got != c.want {
			t.Errorf("cost[%d][%d] = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := cost[c.b][c.a]; got != c.want {
			t.Errorf("cost[%d][%d] = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
	// Every off-diagonal entry is positive and finite; the triangle
	// inequality holds (shortest paths compose).
	for a := 0; a < topo.Clusters; a++ {
		for bb := 0; bb < topo.Clusters; bb++ {
			if a != bb && cost[a][bb] <= 0 {
				t.Fatalf("cost[%d][%d] = %v, want positive", a, bb, cost[a][bb])
			}
			for k := 0; k < topo.Clusters; k++ {
				if cost[a][bb] > cost[a][k]+cost[k][bb] {
					t.Fatalf("triangle violation: cost[%d][%d]=%v > cost[%d][%d]+cost[%d][%d]=%v",
						a, bb, cost[a][bb], a, k, k, bb, cost[a][k]+cost[k][bb])
				}
			}
		}
	}
}
