// Declarative wide-area topology DSL: tiered grids, stars, rings-of-stars,
// heterogeneous per-cluster sizes and named link classes, in the spirit of
// the ClusterBuilder topology language and Legrand et al.'s T0/T1 tiered-grid
// platforms (PAPERS.md).
//
// A platform is a tree of tiers. The root tier's clusters (tier 0) form the
// wide-area backbone, connected pairwise (Mesh) or cyclically (Ring); every
// other tier attaches `fanout` child clusters to each cluster of its parent
// tier, over a named link class {latency, bandwidth, streams}. The Builder
// assigns cluster IDs in depth-first order, so every subtree is a contiguous
// ID interval and next-hop routing is two comparisons plus a binary search
// (Graph.Next) — no per-pair tables anywhere.
//
// Build with the Go Builder, or load the equivalent JSON form (one config
// file per platform) via ParseTopology/LoadTopology.
package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// LinkClass is a named wide-area link type shared by many physical links.
type LinkClass struct {
	Name      string
	Latency   time.Duration // one-way gateway-to-gateway latency
	Bandwidth float64       // bytes/second per directed link
	Streams   int           // parallel pipes per directed link (0 = transport default)
}

// Link is one undirected wide-area link between two clusters' gateways. The
// network simulates each direction as an independent FIFO pipe (or stripe of
// pipes), like the paper's per-directed-pair ATM PVCs.
type Link struct {
	A, B  int // cluster indices
	Class int // index into Graph.Classes
}

// Interconnect selects how the root tier's clusters are wired to each other.
type Interconnect uint8

const (
	// Mesh links every pair of root clusters directly (the paper's DAS shape).
	Mesh Interconnect = iota
	// Ring links the root clusters in a cycle; traffic takes the shorter
	// direction (ties go forward), so bisection bandwidth is bounded.
	Ring
)

func (ic Interconnect) String() string {
	if ic == Ring {
		return "ring"
	}
	return "mesh"
}

// Graph is the wide-area link structure of a DSL-built topology: the link
// classes, the physical links, and the routing state the Builder derived
// from the tier tree. Construct it only through Builder or ParseTopology —
// the routing tables are unexported and Next depends on them.
type Graph struct {
	Classes []LinkClass
	Links   []Link

	parent   []int32    // cluster → parent cluster (-1 for root-tier clusters)
	sub      [][2]int32 // cluster → DFS subtree interval [lo, hi)
	children [][]int32  // cluster → child clusters, ascending (DFS order)
	roots    []int32    // root-tier clusters in interconnect order
	rootPos  []int32    // cluster → index of its root ancestor in roots
	ic       Interconnect
}

// Validate checks the graph's internal consistency against the cluster count.
func (g *Graph) Validate(nclusters int) error {
	if len(g.Classes) == 0 {
		return fmt.Errorf("cluster: topology graph has no link classes")
	}
	if len(g.parent) != nclusters || len(g.sub) != nclusters ||
		len(g.children) != nclusters || len(g.rootPos) != nclusters {
		return fmt.Errorf("cluster: topology graph routing tables sized for %d clusters, topology has %d", len(g.parent), nclusters)
	}
	if len(g.roots) == 0 {
		return fmt.Errorf("cluster: topology graph has no root tier")
	}
	for i, l := range g.Links {
		if l.A < 0 || l.A >= nclusters || l.B < 0 || l.B >= nclusters || l.A == l.B {
			return fmt.Errorf("cluster: link %d connects invalid clusters %d-%d", i, l.A, l.B)
		}
		if l.Class < 0 || l.Class >= len(g.Classes) {
			return fmt.Errorf("cluster: link %d uses invalid class %d", i, l.Class)
		}
	}
	return nil
}

// Next returns the next cluster on the route from u toward d (u != d):
// down into the child subtree containing d, up to the parent, or across the
// root interconnect. Routes are unique and deterministic.
func (g *Graph) Next(u, d int) int {
	su := g.sub[u]
	if int32(d) >= su[0] && int32(d) < su[1] {
		// d is in u's subtree: descend into the child whose interval holds it.
		ch := g.children[u]
		lo, hi := 0, len(ch)
		for lo < hi {
			mid := (lo + hi) / 2
			if int32(d) >= g.sub[ch[mid]][1] {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return int(ch[lo])
	}
	if p := g.parent[u]; p >= 0 {
		return int(p)
	}
	// Root-to-root: mesh goes direct; a ring takes the shorter way round
	// (ties forward). A two-root ring degenerates to the direct link.
	if g.ic == Ring && len(g.roots) > 2 {
		i, j := int(g.rootPos[u]), int(g.rootPos[d])
		r := len(g.roots)
		fwd := (j - i + r) % r
		if fwd <= r-fwd {
			return int(g.roots[(i+1)%r])
		}
		return int(g.roots[(i-1+r)%r])
	}
	return int(g.roots[g.rootPos[d]])
}

// NextAvoiding returns the next cluster on a route from u toward d (u != d)
// that avoids links the down predicate reports as failed, preferring the
// primary route (Next) when it is viable. down is consulted with directed
// (from, to) cluster pairs and must be a pure function of its arguments for
// the call's duration.
//
// Alternates exist only where the topology has redundancy: a ring backbone
// can go the other way round, a mesh backbone can detour through a third
// root. The choice is made by scanning the whole candidate backbone path —
// not just the first hop — so a cut deep in the preferred direction turns
// the route around immediately instead of bouncing traffic between the two
// neighbors of the cut (the hop-greedy ping-pong failure mode). Tree edges
// (a cluster's uplink or a descent into a subtree) have no alternate: when
// such a link is down there is no route and ok is false, which tells the
// caller to hold the traffic until the link heals.
func (g *Graph) NextAvoiding(u, d int, down func(from, to int) bool) (next int, ok bool) {
	su := g.sub[u]
	if int32(d) >= su[0] && int32(d) < su[1] {
		// Descent into u's subtree: the tree edge is the only way down.
		next = g.Next(u, d)
		if down(u, next) {
			return 0, false
		}
		return next, true
	}
	if p := g.parent[u]; p >= 0 {
		// Ascent toward the backbone: the uplink is the only way up.
		if down(u, int(p)) {
			return 0, false
		}
		return int(p), true
	}
	// u is a root: cross the interconnect toward d's root.
	r := len(g.roots)
	i, j := int(g.rootPos[u]), int(g.rootPos[d])
	if g.ic == Ring && r > 2 {
		fwd := (j - i + r) % r
		bwd := r - fwd
		fwdUp := g.ringUp(i, fwd, +1, down)
		bwdUp := g.ringUp(i, bwd, -1, down)
		switch {
		case fwdUp && (fwd <= bwd || !bwdUp):
			return int(g.roots[(i+1)%r]), true
		case bwdUp:
			return int(g.roots[(i-1+r)%r]), true
		}
		return 0, false
	}
	rd := int(g.roots[j])
	if !down(u, rd) {
		return rd, true
	}
	// Mesh detour: one intermediate root with both legs up, scanned in
	// interconnect order so the choice is deterministic.
	for w := 0; w < r; w++ {
		cand := int(g.roots[w])
		if cand == u || cand == rd {
			continue
		}
		if !down(u, cand) && !down(cand, rd) {
			return cand, true
		}
	}
	return 0, false
}

// ringUp reports whether every directed ring link on the nsteps-hop path
// from root index i in direction dir (+1 forward, -1 backward) is up.
func (g *Graph) ringUp(i, nsteps, dir int, down func(from, to int) bool) bool {
	r := len(g.roots)
	cur := i
	for s := 0; s < nsteps; s++ {
		nxt := (cur + dir + r) % r
		if down(int(g.roots[cur]), int(g.roots[nxt])) {
			return false
		}
		cur = nxt
	}
	return true
}

// Roots returns the root-tier clusters in interconnect order.
func (g *Graph) Roots() []int32 { return g.roots }

// Parent returns u's parent cluster, or -1 for a root-tier cluster.
func (g *Graph) Parent(u int) int { return int(g.parent[u]) }

// tierSpec is one tier of the Builder's platform tree.
type tierSpec struct {
	parent int   // parent tier index; -1 for the root tier
	count  int   // root tier: total clusters; otherwise children per parent cluster
	class  int   // link class toward the parent (root tier: interconnect class)
	nodes  []int // per-cluster compute-node counts, cycled across the tier
	ic     Interconnect
}

// Builder assembles a tiered wide-area platform. Methods record the first
// error; Build reports it.
type Builder struct {
	classes []LinkClass
	tiers   []tierSpec
	err     error
}

// NewBuilder returns an empty platform builder.
func NewBuilder() *Builder { return &Builder{} }

func (b *Builder) fail(format string, args ...any) int {
	if b.err == nil {
		b.err = fmt.Errorf("cluster: "+format, args...)
	}
	return -1
}

// Class declares a link class and returns its handle.
func (b *Builder) Class(name string, latency time.Duration, bandwidth float64, streams int) int {
	if name == "" {
		return b.fail("link class needs a name")
	}
	if latency <= 0 || bandwidth <= 0 || streams < 0 {
		return b.fail("link class %q needs positive latency and bandwidth (got %v, %g)", name, latency, bandwidth)
	}
	b.classes = append(b.classes, LinkClass{Name: name, Latency: latency, Bandwidth: bandwidth, Streams: streams})
	return len(b.classes) - 1
}

// Roots declares the root tier: count backbone clusters wired by ic over the
// given link class, with per-cluster node counts cycled from nodes. It
// returns the tier handle for attaching child tiers.
func (b *Builder) Roots(count int, ic Interconnect, class int, nodes ...int) int {
	if len(b.tiers) > 0 {
		return b.fail("Roots declared twice")
	}
	return b.tier(-1, count, ic, class, nodes)
}

// Tier attaches fanout child clusters to every cluster of the parent tier,
// linked to their parent over the given class. It returns the tier handle.
func (b *Builder) Tier(parent, fanout, class int, nodes ...int) int {
	if parent < 0 || parent >= len(b.tiers) {
		return b.fail("Tier attached to invalid parent tier %d", parent)
	}
	return b.tier(parent, fanout, Mesh, class, nodes)
}

func (b *Builder) tier(parent, count int, ic Interconnect, class int, nodes []int) int {
	if b.err != nil {
		return -1
	}
	if count <= 0 {
		return b.fail("tier needs a positive cluster count, got %d", count)
	}
	if class < 0 || class >= len(b.classes) {
		return b.fail("tier uses undeclared link class %d", class)
	}
	if len(nodes) == 0 {
		return b.fail("tier needs at least one node count")
	}
	for _, s := range nodes {
		if s <= 0 {
			return b.fail("tier has non-positive node count %d", s)
		}
	}
	b.tiers = append(b.tiers, tierSpec{
		parent: parent, count: count, class: class, ic: ic,
		nodes: append([]int(nil), nodes...),
	})
	return len(b.tiers) - 1
}

// Build expands the tier tree into a Topology with per-cluster sizes and the
// wide-area Graph, cluster IDs assigned depth-first so subtrees are
// contiguous intervals.
func (b *Builder) Build() (Topology, error) {
	if b.err != nil {
		return Topology{}, b.err
	}
	if len(b.tiers) == 0 {
		return Topology{}, fmt.Errorf("cluster: no Roots tier declared")
	}
	childTiers := make([][]int, len(b.tiers))
	for i := 1; i < len(b.tiers); i++ {
		p := b.tiers[i].parent
		childTiers[p] = append(childTiers[p], i)
	}
	g := &Graph{Classes: append([]LinkClass(nil), b.classes...), ic: b.tiers[0].ic}
	var sizes []int
	tierSeq := make([]int, len(b.tiers))
	var expand func(tier, par int) int
	expand = func(tier, par int) int {
		id := len(sizes)
		ts := &b.tiers[tier]
		sizes = append(sizes, ts.nodes[tierSeq[tier]%len(ts.nodes)])
		tierSeq[tier]++
		g.parent = append(g.parent, int32(par))
		g.children = append(g.children, nil)
		g.sub = append(g.sub, [2]int32{int32(id), 0})
		g.rootPos = append(g.rootPos, 0)
		if par >= 0 {
			g.children[par] = append(g.children[par], int32(id))
			g.Links = append(g.Links, Link{A: par, B: id, Class: ts.class})
		}
		for _, ct := range childTiers[tier] {
			for j := 0; j < b.tiers[ct].count; j++ {
				expand(ct, id)
			}
		}
		g.sub[id][1] = int32(len(sizes))
		return id
	}
	for r := 0; r < b.tiers[0].count; r++ {
		g.roots = append(g.roots, int32(expand(0, -1)))
	}
	for i, root := range g.roots {
		for id := g.sub[root][0]; id < g.sub[root][1]; id++ {
			g.rootPos[id] = int32(i)
		}
	}
	// Root interconnect links: mesh = every pair, ring = a cycle (two roots
	// share one link either way, one root needs none).
	rc := b.tiers[0].class
	switch {
	case len(g.roots) == 2:
		g.Links = append(g.Links, Link{A: int(g.roots[0]), B: int(g.roots[1]), Class: rc})
	case len(g.roots) > 2 && g.ic == Ring:
		for i := range g.roots {
			g.Links = append(g.Links, Link{A: int(g.roots[i]), B: int(g.roots[(i+1)%len(g.roots)]), Class: rc})
		}
	case len(g.roots) > 2:
		for i := 0; i < len(g.roots); i++ {
			for j := i + 1; j < len(g.roots); j++ {
				g.Links = append(g.Links, Link{A: int(g.roots[i]), B: int(g.roots[j]), Class: rc})
			}
		}
	}
	topo := Topology{Clusters: len(sizes), Sizes: sizes, WAN: g}
	return topo, topo.Validate()
}

// JSON configuration form, consumed by dasbench/dastraffic -topo. Tiers are
// a linear chain (tier i hangs off tier i-1), which covers tiered grids,
// stars and rings-of-stars; arbitrary branching needs the Go Builder.
//
//	{
//	  "classes": [{"name": "backbone", "latency": "20ms", "mbit": 155, "streams": 2}],
//	  "roots":   {"count": 4, "interconnect": "ring", "class": "backbone", "nodes": [8]},
//	  "tiers":   [{"fanout": 8, "class": "regional", "nodes": [4, 2]}]
//	}
type jsonClass struct {
	Name    string  `json:"name"`
	Latency string  `json:"latency"` // Go duration string, e.g. "20ms"
	Mbit    float64 `json:"mbit"`    // megabits/second
	Streams int     `json:"streams"` // optional parallel pipes per link
}

type jsonRoots struct {
	Count        int    `json:"count"`
	Interconnect string `json:"interconnect"` // "mesh" (default) or "ring"
	Class        string `json:"class"`
	Nodes        []int  `json:"nodes"`
}

type jsonTier struct {
	Fanout int    `json:"fanout"`
	Class  string `json:"class"`
	Nodes  []int  `json:"nodes"`
}

type jsonTopo struct {
	Classes []jsonClass `json:"classes"`
	Roots   jsonRoots   `json:"roots"`
	Tiers   []jsonTier  `json:"tiers"`
}

// ParseTopology builds a Topology from the JSON configuration form. Unknown
// fields are errors, so typos in config files fail loudly.
func ParseTopology(data []byte) (Topology, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var cfg jsonTopo
	if err := dec.Decode(&cfg); err != nil {
		return Topology{}, fmt.Errorf("cluster: parsing topology config: %w", err)
	}
	if len(cfg.Classes) == 0 {
		return Topology{}, fmt.Errorf("cluster: topology config declares no link classes")
	}
	b := NewBuilder()
	byName := make(map[string]int, len(cfg.Classes))
	for _, c := range cfg.Classes {
		if _, dup := byName[c.Name]; dup {
			return Topology{}, fmt.Errorf("cluster: duplicate link class %q", c.Name)
		}
		lat, err := time.ParseDuration(c.Latency)
		if err != nil {
			return Topology{}, fmt.Errorf("cluster: link class %q latency: %w", c.Name, err)
		}
		byName[c.Name] = b.Class(c.Name, lat, Mbit(c.Mbit), c.Streams)
	}
	class := func(name string) (int, error) {
		id, ok := byName[name]
		if !ok {
			return 0, fmt.Errorf("cluster: undeclared link class %q", name)
		}
		return id, nil
	}
	var ic Interconnect
	switch cfg.Roots.Interconnect {
	case "", "mesh":
		ic = Mesh
	case "ring":
		ic = Ring
	default:
		return Topology{}, fmt.Errorf("cluster: unknown interconnect %q (want mesh or ring)", cfg.Roots.Interconnect)
	}
	rc, err := class(cfg.Roots.Class)
	if err != nil {
		return Topology{}, err
	}
	tier := b.Roots(cfg.Roots.Count, ic, rc, cfg.Roots.Nodes...)
	for i, t := range cfg.Tiers {
		tc, err := class(t.Class)
		if err != nil {
			return Topology{}, fmt.Errorf("cluster: tier %d: %w", i+1, err)
		}
		tier = b.Tier(tier, t.Fanout, tc, t.Nodes...)
	}
	return b.Build()
}

// LoadTopology reads and parses a JSON topology configuration file.
func LoadTopology(path string) (Topology, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Topology{}, fmt.Errorf("cluster: reading topology config: %w", err)
	}
	return ParseTopology(data)
}
