package cluster

import (
	"testing"
	"testing/quick"
)

func TestTopologyBasics(t *testing.T) {
	topo := Topology{Clusters: 4, NodesPerCluster: 15}
	if topo.Compute() != 60 {
		t.Fatalf("compute %d", topo.Compute())
	}
	if topo.Total() != 64 {
		t.Fatalf("total %d", topo.Total())
	}
	if topo.Node(2, 3) != NodeID(33) {
		t.Fatalf("node(2,3)=%d", topo.Node(2, 3))
	}
	if topo.ClusterOf(33) != 2 {
		t.Fatalf("clusterOf(33)=%d", topo.ClusterOf(33))
	}
	gw := topo.Gateway(1)
	if gw != NodeID(61) || !topo.IsGateway(gw) || topo.ClusterOf(gw) != 1 {
		t.Fatalf("gateway %d cluster %d", gw, topo.ClusterOf(gw))
	}
	if topo.IsGateway(59) {
		t.Fatal("node 59 misreported as gateway")
	}
	if topo.IndexInCluster(33) != 3 {
		t.Fatalf("indexInCluster(33)=%d", topo.IndexInCluster(33))
	}
}

func TestSingleClusterHasNoGateways(t *testing.T) {
	topo := Topology{Clusters: 1, NodesPerCluster: 8}
	if topo.Total() != 8 {
		t.Fatalf("total %d", topo.Total())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Gateway on 1-cluster topology did not panic")
		}
	}()
	topo.Gateway(0)
}

func TestValidate(t *testing.T) {
	if err := (Topology{Clusters: 0, NodesPerCluster: 4}).Validate(); err == nil {
		t.Fatal("zero clusters accepted")
	}
	if err := (Topology{Clusters: 2, NodesPerCluster: 0}).Validate(); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if err := (Topology{Clusters: 4, NodesPerCluster: 15}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNodeClusterRoundTrip(t *testing.T) {
	prop := func(c8, n8, i8 uint8) bool {
		cs := int(c8%6) + 1
		npc := int(n8%20) + 1
		topo := Topology{Clusters: cs, NodesPerCluster: npc}
		c := int(i8) % cs
		i := int(i8/7) % npc
		n := topo.Node(c, i)
		return topo.ClusterOf(n) == c && topo.IndexInCluster(n) == i && !topo.IsGateway(n)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNodesList(t *testing.T) {
	topo := Topology{Clusters: 3, NodesPerCluster: 4}
	ns := topo.Nodes(1)
	if len(ns) != 4 || ns[0] != 4 || ns[3] != 7 {
		t.Fatalf("nodes %v", ns)
	}
}

func TestDASParamsShape(t *testing.T) {
	p := DASParams()
	// The paper's two-orders-of-magnitude gap must hold in the presets.
	if ratio := float64(p.WANLatency) / float64(p.LANLatency); ratio < 30 {
		t.Fatalf("WAN/LAN latency ratio %v too small", ratio)
	}
	if ratio := p.LANBandwidth / p.WANBandwidth; ratio < 30 {
		t.Fatalf("LAN/WAN bandwidth ratio %v too small", ratio)
	}
}

func TestMbit(t *testing.T) {
	if Mbit(8) != 1e6 {
		t.Fatalf("Mbit(8)=%v", Mbit(8))
	}
}

func TestIrregularTopology(t *testing.T) {
	topo := Irregular(4, 2, 3)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if topo.Compute() != 9 || topo.Total() != 12 {
		t.Fatalf("compute %d total %d", topo.Compute(), topo.Total())
	}
	wantCluster := []int{0, 0, 0, 0, 1, 1, 2, 2, 2}
	for n, c := range wantCluster {
		if got := topo.ClusterOf(NodeID(n)); got != c {
			t.Fatalf("ClusterOf(%d)=%d, want %d", n, got, c)
		}
	}
	if topo.Node(1, 1) != 5 || topo.Node(2, 0) != 6 {
		t.Fatalf("node ids wrong: %d %d", topo.Node(1, 1), topo.Node(2, 0))
	}
	if topo.IndexInCluster(7) != 1 {
		t.Fatalf("IndexInCluster(7)=%d", topo.IndexInCluster(7))
	}
	if topo.Size(0) != 4 || topo.Size(2) != 3 {
		t.Fatal("sizes wrong")
	}
	gw := topo.Gateway(1)
	if gw != 10 || topo.ClusterOf(gw) != 1 {
		t.Fatalf("gateway %d cluster %d", gw, topo.ClusterOf(gw))
	}
	if got := topo.Nodes(1); len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("nodes(1)=%v", got)
	}
}

func TestDASReal(t *testing.T) {
	topo := DASReal()
	if topo.Compute() != 136 {
		t.Fatalf("real DAS has %d compute nodes, want 136", topo.Compute())
	}
	if topo.Size(0) != 64 || topo.Size(3) != 24 {
		t.Fatal("real DAS sizes wrong")
	}
	if topo.String() != "4x[64,24,24,24]" {
		t.Fatalf("string %q", topo.String())
	}
}

func TestTopologyString(t *testing.T) {
	if got := DAS(4, 16).String(); got != "4x16" {
		t.Fatalf("uniform string %q", got)
	}
	// A Sizes topology must show the per-cluster sizes, not the ignored
	// NodesPerCluster field.
	irr := Irregular(8, 16, 32)
	irr.NodesPerCluster = 99
	if got := irr.String(); got != "3x[8,16,32]" {
		t.Fatalf("irregular string %q", got)
	}
}

func TestIrregularValidate(t *testing.T) {
	if err := (Topology{Clusters: 2, Sizes: []int{3}}).Validate(); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := (Topology{Clusters: 2, Sizes: []int{3, 0}}).Validate(); err == nil {
		t.Fatal("zero size accepted")
	}
}

func TestIrregularRoundTrip(t *testing.T) {
	prop := func(a, b, c uint8) bool {
		topo := Irregular(int(a%5)+1, int(b%5)+1, int(c%5)+1)
		for cl := 0; cl < topo.Clusters; cl++ {
			for i := 0; i < topo.Size(cl); i++ {
				n := topo.Node(cl, i)
				if topo.ClusterOf(n) != cl || topo.IndexInCluster(n) != i {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
