package cluster

import (
	"fmt"
	"time"
)

// AllPairsCost returns the all-pairs minimum route cost over the wide-area
// link graph, where every directed traversal of a link costs perHop(class).
// The result is a dense nclusters x nclusters matrix with zero on the
// diagonal.
//
// This is a floor over *every* path through the physical links — including
// multi-hop tree routes, ring reverse routes and mesh detours — not just the
// primary routes Graph.Next takes. That is exactly the property a
// conservative lookahead needs: no message can cross from cluster a to
// cluster b in less virtual time than cost[a][b], no matter how it is
// routed, rerouted around faults, or held at a cut link. perHop must be
// positive for every class.
func (g *Graph) AllPairsCost(nclusters int, perHop func(class int) time.Duration) [][]time.Duration {
	hop := make([]time.Duration, len(g.Classes))
	for c := range g.Classes {
		hop[c] = perHop(c)
		if hop[c] <= 0 {
			panic(fmt.Sprintf("cluster: AllPairsCost needs a positive per-hop cost, class %q got %v", g.Classes[c].Name, hop[c]))
		}
	}
	// Undirected adjacency in CSR form (links are simulated as a pipe per
	// direction with the same class, so cost is symmetric per link).
	deg := make([]int32, nclusters+1)
	for _, l := range g.Links {
		deg[l.A+1]++
		deg[l.B+1]++
	}
	for i := 0; i < nclusters; i++ {
		deg[i+1] += deg[i]
	}
	type arc struct {
		to   int32
		cost time.Duration
	}
	arcs := make([]arc, deg[nclusters])
	fill := make([]int32, nclusters)
	for _, l := range g.Links {
		c := hop[l.Class]
		arcs[deg[l.A]+fill[l.A]] = arc{to: int32(l.B), cost: c}
		fill[l.A]++
		arcs[deg[l.B]+fill[l.B]] = arc{to: int32(l.A), cost: c}
		fill[l.B]++
	}

	const unreached = time.Duration(1<<63 - 1)
	cost := make([][]time.Duration, nclusters)
	dist := make([]time.Duration, nclusters)
	done := make([]bool, nclusters)
	// Dijkstra from every source with a linear extract-min: topologies are a
	// few hundred clusters at most, and this runs once per constructed
	// network, so O(V^2) per source beats heap bookkeeping.
	for src := 0; src < nclusters; src++ {
		for i := range dist {
			dist[i] = unreached
			done[i] = false
		}
		dist[src] = 0
		for {
			u, best := -1, unreached
			for i := 0; i < nclusters; i++ {
				if !done[i] && dist[i] < best {
					u, best = i, dist[i]
				}
			}
			if u < 0 {
				break
			}
			done[u] = true
			for _, a := range arcs[deg[u]:deg[u+1]] {
				if d := best + a.cost; d < dist[a.to] {
					dist[a.to] = d
				}
			}
		}
		cost[src] = append([]time.Duration(nil), dist...)
	}
	return cost
}
