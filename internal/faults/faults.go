// Package faults builds deterministic wide-area fault injectors for the
// simulated network. A Plan declares what can go wrong — per-directed-pair
// drop/duplicate/reorder probabilities, scheduled link outages, WAN quality
// degradation windows, and gateway crash windows — and an Injector executes
// the plan as a netsim.FaultPolicy.
//
// Determinism is the point: the injector draws every probabilistic verdict
// from a splitmix64 stream derived from (Plan.Seed, source cluster,
// destination cluster), so a directed pair's verdict sequence depends only
// on how many messages that pair has sent — never on how traffic from
// different pairs interleaves. The sharded engine inspects each pair's
// messages on the source cluster's LP in that LP's deterministic order, so
// the same (seed, plan, workload) loses the exact same messages at the
// exact same virtual instants whether the engine runs sequentially or
// sharded. Scheduled faults (link-downs, outages, degradations, crashes)
// are pure functions of virtual time and consume no randomness at all.
package faults

import (
	"fmt"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/netsim"
	"albatross/internal/rng"
)

// PairProbs are per-message fault probabilities for one directed cluster
// pair. Each message entering the WAN draws one uniform variate; the three
// probabilities partition [0,1), so their sum must not exceed 1.
type PairProbs struct {
	Drop      float64 // message silently lost at the sending gateway
	Duplicate float64 // message transmitted twice
	Reorder   float64 // message delayed by Plan.ReorderDelay (overtaken by later traffic)
}

func (p PairProbs) sum() float64 { return p.Drop + p.Duplicate + p.Reorder }

// Outage is a full loss window on one directed WAN link: every message
// entering the pipe From→To within [Start, Start+Duration) is dropped.
// From or To may be Any to cover every link touching the other side
// (Any→Any is a total WAN blackout).
type Outage struct {
	From, To int
	Start    time.Duration
	Duration time.Duration
}

// Any is a wildcard cluster index for Outage endpoints.
const Any = -1

// Degradation scales WAN quality over [Start, Start+Duration): latency is
// multiplied by LatScale and bandwidth by BWScale. Overlapping windows
// compose multiplicatively.
type Degradation struct {
	Start    time.Duration
	Duration time.Duration
	LatScale float64 // must be >= 0
	BWScale  float64 // must be > 0
}

// LinkDown is a scheduled hard failure of one directed WAN link: for
// [Start, Start+Duration) the link From→To carries nothing. Unlike an
// Outage — which silently eats the messages already committed to the pipe —
// a down link is visible to routing: the network reroutes around it where
// the topology has an alternate path (ring second direction, mesh detour)
// and holds traffic at the gateway until the link heals where it does not.
// Cut both directions to fail a physical link entirely; cut every link
// around a cluster (see CutRingSegment/CutUplink) to partition it.
type LinkDown struct {
	From, To int
	Start    time.Duration
	Duration time.Duration
}

// GatewayCrash takes one cluster's gateway down for [Start, Start+Duration):
// every intercluster message that would traverse it — outbound or inbound —
// is lost. The gateway restarts (fault-free) at Start+Duration.
type GatewayCrash struct {
	Cluster  int
	Start    time.Duration
	Duration time.Duration
}

// Plan is a complete declarative fault schedule for one run.
type Plan struct {
	// Seed drives the probabilistic verdicts. Two runs with equal seeds,
	// plans and workloads observe identical fault sequences.
	Seed uint64

	// Default applies to every directed cluster pair without an explicit
	// entry in Pairs.
	Default PairProbs

	// Pairs overrides Default for specific directed pairs, keyed
	// [from cluster, to cluster].
	Pairs map[[2]int]PairProbs

	// ReorderDelay is the extra arrival delay a reordered message suffers.
	// Required (positive) when any Reorder probability is set.
	ReorderDelay time.Duration

	Outages      []Outage
	Degradations []Degradation
	Crashes      []GatewayCrash

	// LinkDowns are hard link-failure windows the network routes around
	// (or holds traffic through). See CutRingSegment, CutUplink and
	// CutClass for deriving partition scenarios from a topology graph.
	LinkDowns []LinkDown
}

// Validate rejects plans whose execution would be meaningless or corrupting:
// probabilities outside [0,1] or summing past 1, non-positive degradation
// scales, negative windows, or reordering without a delay.
func (pl Plan) Validate() error {
	check := func(what string, p PairProbs) error {
		for _, v := range []struct {
			name string
			p    float64
		}{{"drop", p.Drop}, {"duplicate", p.Duplicate}, {"reorder", p.Reorder}} {
			if !(v.p >= 0 && v.p <= 1) {
				return fmt.Errorf("faults: %s %s probability %g outside [0, 1]", what, v.name, v.p)
			}
		}
		if p.sum() > 1 {
			return fmt.Errorf("faults: %s probabilities sum to %g > 1", what, p.sum())
		}
		if p.Reorder > 0 && pl.ReorderDelay <= 0 {
			return fmt.Errorf("faults: %s has reorder probability %g but plan's ReorderDelay is %v", what, p.Reorder, pl.ReorderDelay)
		}
		return nil
	}
	if err := check("default", pl.Default); err != nil {
		return err
	}
	for pair, p := range pl.Pairs {
		if err := check(fmt.Sprintf("pair %d->%d", pair[0], pair[1]), p); err != nil {
			return err
		}
		if pair[0] < 0 || pair[1] < 0 {
			return fmt.Errorf("faults: pair %d->%d has a negative cluster index", pair[0], pair[1])
		}
	}
	for _, o := range pl.Outages {
		if o.Duration < 0 || o.Start < 0 {
			return fmt.Errorf("faults: outage %d->%d has negative window [%v, +%v]", o.From, o.To, o.Start, o.Duration)
		}
		if o.From < Any || o.To < Any {
			return fmt.Errorf("faults: outage %d->%d has an invalid cluster index", o.From, o.To)
		}
	}
	for _, d := range pl.Degradations {
		if d.Duration < 0 || d.Start < 0 {
			return fmt.Errorf("faults: degradation has negative window [%v, +%v]", d.Start, d.Duration)
		}
		if !(d.LatScale >= 0) || !(d.BWScale > 0) {
			return fmt.Errorf("faults: degradation scales (latency %g, bandwidth %g) invalid; latency must be >= 0 and bandwidth > 0", d.LatScale, d.BWScale)
		}
	}
	for _, c := range pl.Crashes {
		if c.Duration < 0 || c.Start < 0 {
			return fmt.Errorf("faults: gateway crash of cluster %d has negative window [%v, +%v]", c.Cluster, c.Start, c.Duration)
		}
		if c.Cluster < 0 {
			return fmt.Errorf("faults: gateway crash has negative cluster index %d", c.Cluster)
		}
	}
	for _, l := range pl.LinkDowns {
		if l.Duration < 0 || l.Start < 0 {
			return fmt.Errorf("faults: link-down %d->%d has negative window [%v, +%v]", l.From, l.To, l.Start, l.Duration)
		}
		if l.From < 0 || l.To < 0 || l.From == l.To {
			return fmt.Errorf("faults: link-down %d->%d is not a directed cluster pair", l.From, l.To)
		}
	}
	return nil
}

// CutRingSegment derives the LinkDown windows that sever ring segment seg —
// the physical link between the seg'th root and its successor on the
// backbone ring — in both directions for [start, start+dur). On a
// single-ring backbone this partitions nothing by itself (traffic goes the
// long way round); cut two segments to isolate the roots between them.
func CutRingSegment(g *cluster.Graph, seg int, start, dur time.Duration) []LinkDown {
	roots := g.Roots()
	r := len(roots)
	a, b := int(roots[seg%r]), int(roots[(seg+1)%r])
	return []LinkDown{
		{From: a, To: b, Start: start, Duration: dur},
		{From: b, To: a, Start: start, Duration: dur},
	}
}

// CutUplink derives the LinkDown windows that sever cluster c's uplink to
// its parent in both directions for [start, start+dur), partitioning c's
// whole subtree from the rest of the grid. c must not be a root cluster.
func CutUplink(g *cluster.Graph, c int, start, dur time.Duration) []LinkDown {
	p := g.Parent(c)
	if p < 0 {
		panic(fmt.Sprintf("faults: CutUplink(%d): cluster is root-tier, it has no uplink", c))
	}
	return []LinkDown{
		{From: c, To: p, Start: start, Duration: dur},
		{From: p, To: c, Start: start, Duration: dur},
	}
}

// CutClass derives the LinkDown windows that sever every physical link of
// the named link class, in both directions, for [start, start+dur). It
// panics if the topology declares no class with that name.
func CutClass(g *cluster.Graph, class string, start, dur time.Duration) []LinkDown {
	ci := -1
	for i, lc := range g.Classes {
		if lc.Name == class {
			ci = i
			break
		}
	}
	if ci < 0 {
		panic(fmt.Sprintf("faults: CutClass(%q): topology has no such link class", class))
	}
	var downs []LinkDown
	for _, l := range g.Links {
		if l.Class != ci {
			continue
		}
		downs = append(downs,
			LinkDown{From: l.A, To: l.B, Start: start, Duration: dur},
			LinkDown{From: l.B, To: l.A, Start: start, Duration: dur})
	}
	return downs
}

// EventKind classifies an injected fault occurrence.
type EventKind uint8

const (
	// EventDrop is a probabilistic message loss.
	EventDrop EventKind = iota
	// EventDuplicate is a probabilistic message duplication.
	EventDuplicate
	// EventReorder is a probabilistic reorder delay.
	EventReorder
	// EventOutage is a loss to a scheduled link outage.
	EventOutage
	// EventCrash is a loss to a crashed gateway.
	EventCrash
	numEventKinds
)

var eventKindNames = [numEventKinds]string{"drop", "duplicate", "reorder", "outage", "crash"}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "invalid"
}

// Event records one injected fault, for tracing. From/To are cluster
// indices; To is -1 for gateway crashes (the loss is at one gateway).
type Event struct {
	At       time.Duration
	Kind     EventKind
	From, To int
}

// Counters tallies what the injector actually did over a run.
type Counters struct {
	Inspected   uint64 // WAN messages ruled on
	Drops       uint64 // probabilistic losses
	Duplicates  uint64
	Reorders    uint64
	OutageDrops uint64 // losses to scheduled link outages
	CrashDrops  uint64 // losses to crashed gateways (either side)
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.Inspected += o.Inspected
	c.Drops += o.Drops
	c.Duplicates += o.Duplicates
	c.Reorders += o.Reorders
	c.OutageDrops += o.OutageDrops
	c.CrashDrops += o.CrashDrops
}

// Injector executes a Plan as a netsim.FaultPolicy.
//
// Shard safety: all mutable state is partitioned by cluster. The decision
// stream for directed pair (cs, cd) lives in streams[cs][cd] and is only
// touched by WANTransit, which the network always runs on cs's LP; the
// counters for cluster c live in ctr[c] and are only touched by calls the
// network runs on c's LP. Bind pre-sizes both outer slices so concurrent
// LPs never reallocate them.
type Injector struct {
	plan    Plan
	streams [][]uint64 // [source][dest] splitmix64 decision streams
	ctr     []Counters // per-cluster tallies

	// onEvent, if set, observes every injected fault as it happens. It runs
	// on the simulation's send path — under the sharded engine that means
	// the LP inspecting the message, concurrently with other LPs — and must
	// be cheap and side-effect-pure with respect to the simulation
	// (tracing only; synchronize externally if it aggregates).
	onEvent func(Event)
}

// NewInjector validates the plan and builds its injector.
func NewInjector(plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Injector{plan: plan}, nil
}

// MustInjector is NewInjector for statically-known-good plans.
func MustInjector(plan Plan) *Injector {
	in, err := NewInjector(plan)
	if err != nil {
		panic(err)
	}
	return in
}

// OnEvent installs a fault observer (nil removes it).
func (in *Injector) OnEvent(fn func(Event)) { in.onEvent = fn }

// Counters returns the tallies so far, summed over clusters. Under the
// sharded engine call it only while the simulation is stopped.
func (in *Injector) Counters() Counters {
	var tot Counters
	for i := range in.ctr {
		tot.Add(in.ctr[i])
	}
	return tot
}

// Bind pre-sizes the injector's per-cluster state for a topology of
// nclusters clusters. netsim.SetFaultPolicy calls it; the pre-sizing is
// what lets concurrent LPs index their own rows without reallocation.
func (in *Injector) Bind(nclusters int) {
	if nclusters > len(in.streams) {
		s := make([][]uint64, nclusters)
		copy(s, in.streams)
		in.streams = s
	}
	if nclusters > len(in.ctr) {
		c := make([]Counters, nclusters)
		copy(c, in.ctr)
		in.ctr = c
	}
}

// pairSeed derives the decision-stream seed for directed pair (cs, cd): the
// plan seed is perturbed by both endpoints and scrambled once so adjacent
// pairs land in unrelated parts of the splitmix64 sequence.
func pairSeed(seed uint64, cs, cd int) uint64 {
	s := seed ^ uint64(cs+1)*0x9E3779B97F4A7C15 ^ uint64(cd+1)*0xBF58476D1CE4E5B9
	return rng.SplitMix64(&s)
}

// stream returns the decision stream for directed pair (cs, cd), growing
// state lazily for unbound (sequential, direct-use) injectors. Rows are
// materialized by the source cluster's LP only, with every entry seeded
// eagerly, so a row's contents never change after creation.
func (in *Injector) stream(cs, cd int) *uint64 {
	if cs >= len(in.streams) {
		in.Bind(cs + 1)
	}
	row := in.streams[cs]
	if cd >= len(row) {
		n := len(in.streams)
		if cd >= n {
			n = cd + 1
		}
		grown := make([]uint64, n)
		copy(grown, row)
		for j := len(row); j < n; j++ {
			grown[j] = pairSeed(in.plan.Seed, cs, j)
		}
		in.streams[cs] = grown
		row = grown
	}
	return &row[cd]
}

func (in *Injector) counters(c int) *Counters {
	if c >= len(in.ctr) {
		in.Bind(c + 1)
	}
	return &in.ctr[c]
}

// roll draws the next uniform variate in [0, 1) from one pair's stream.
func roll(state *uint64) float64 {
	return float64(rng.SplitMix64(state)>>11) / (1 << 53)
}

func (in *Injector) emit(at time.Duration, k EventKind, from, to int) {
	if in.onEvent != nil {
		in.onEvent(Event{At: at, Kind: k, From: from, To: to})
	}
}

func inWindow(at, start, dur time.Duration) bool {
	return at >= start && at < start+dur
}

// WANTransit implements netsim.FaultPolicy. Scheduled outages take
// precedence and consume no randomness; otherwise one variate partitions
// into drop / duplicate / reorder / deliver.
func (in *Injector) WANTransit(at time.Duration, cs, cd int, m netsim.Msg) (netsim.FaultAction, time.Duration) {
	ctr := in.counters(cs)
	ctr.Inspected++
	for _, o := range in.plan.Outages {
		if (o.From == Any || o.From == cs) && (o.To == Any || o.To == cd) && inWindow(at, o.Start, o.Duration) {
			ctr.OutageDrops++
			in.emit(at, EventOutage, cs, cd)
			return netsim.FaultDrop, 0
		}
	}
	p, ok := in.plan.Pairs[[2]int{cs, cd}]
	if !ok {
		p = in.plan.Default
	}
	if p.sum() == 0 {
		return netsim.FaultDeliver, 0
	}
	u := roll(in.stream(cs, cd))
	switch {
	case u < p.Drop:
		ctr.Drops++
		in.emit(at, EventDrop, cs, cd)
		return netsim.FaultDrop, 0
	case u < p.Drop+p.Duplicate:
		ctr.Duplicates++
		in.emit(at, EventDuplicate, cs, cd)
		return netsim.FaultDuplicate, 0
	case u < p.Drop+p.Duplicate+p.Reorder:
		ctr.Reorders++
		in.emit(at, EventReorder, cs, cd)
		return netsim.FaultDeliver, in.plan.ReorderDelay
	}
	return netsim.FaultDeliver, 0
}

// WANQuality implements netsim.FaultPolicy: active degradation windows
// compose multiplicatively.
func (in *Injector) WANQuality(at time.Duration) (float64, float64) {
	lat, bw := 1.0, 1.0
	for _, d := range in.plan.Degradations {
		if inWindow(at, d.Start, d.Duration) {
			lat *= d.LatScale
			bw *= d.BWScale
		}
	}
	return lat, bw
}

// GatewayDown implements netsim.FaultPolicy. Each true answer is one lost
// message, tallied as a crash drop.
func (in *Injector) GatewayDown(at time.Duration, c int, m netsim.Msg) bool {
	for _, cr := range in.plan.Crashes {
		if cr.Cluster == c && inWindow(at, cr.Start, cr.Duration) {
			in.counters(c).CrashDrops++
			in.emit(at, EventCrash, c, -1)
			return true
		}
	}
	return false
}

// LinkDown implements netsim.LinkFaultPolicy: it reports whether the
// directed link from→to is inside any scheduled failure window at virtual
// time at. Pure function of its arguments — routing consults it from
// multiple LPs concurrently.
func (in *Injector) LinkDown(at time.Duration, from, to int) bool {
	for _, l := range in.plan.LinkDowns {
		if l.From == from && l.To == to && inWindow(at, l.Start, l.Duration) {
			return true
		}
	}
	return false
}

// HasLinkDowns reports whether the plan schedules any link failures; when
// false the network keeps its zero-overhead static routing path.
func (in *Injector) HasLinkDowns() bool { return len(in.plan.LinkDowns) > 0 }

var _ netsim.FaultPolicy = (*Injector)(nil)
