// Package faults builds deterministic wide-area fault injectors for the
// simulated network. A Plan declares what can go wrong — per-directed-pair
// drop/duplicate/reorder probabilities, scheduled link outages, WAN quality
// degradation windows, and gateway crash windows — and an Injector executes
// the plan as a netsim.FaultPolicy.
//
// Determinism is the point: the injector draws every probabilistic verdict
// from one splitmix64 stream seeded by Plan.Seed, and the engine consults it
// in its deterministic event order, so the same (seed, plan, workload) loses
// the exact same messages at the exact same virtual instants on every run.
// Scheduled faults (outages, degradations, crashes) are pure functions of
// virtual time and consume no randomness at all.
package faults

import (
	"fmt"
	"time"

	"albatross/internal/netsim"
	"albatross/internal/rng"
)

// PairProbs are per-message fault probabilities for one directed cluster
// pair. Each message entering the WAN draws one uniform variate; the three
// probabilities partition [0,1), so their sum must not exceed 1.
type PairProbs struct {
	Drop      float64 // message silently lost at the sending gateway
	Duplicate float64 // message transmitted twice
	Reorder   float64 // message delayed by Plan.ReorderDelay (overtaken by later traffic)
}

func (p PairProbs) sum() float64 { return p.Drop + p.Duplicate + p.Reorder }

// Outage is a full loss window on one directed WAN link: every message
// entering the pipe From→To within [Start, Start+Duration) is dropped.
// From or To may be Any to cover every link touching the other side
// (Any→Any is a total WAN blackout).
type Outage struct {
	From, To int
	Start    time.Duration
	Duration time.Duration
}

// Any is a wildcard cluster index for Outage endpoints.
const Any = -1

// Degradation scales WAN quality over [Start, Start+Duration): latency is
// multiplied by LatScale and bandwidth by BWScale. Overlapping windows
// compose multiplicatively.
type Degradation struct {
	Start    time.Duration
	Duration time.Duration
	LatScale float64 // must be >= 0
	BWScale  float64 // must be > 0
}

// GatewayCrash takes one cluster's gateway down for [Start, Start+Duration):
// every intercluster message that would traverse it — outbound or inbound —
// is lost. The gateway restarts (fault-free) at Start+Duration.
type GatewayCrash struct {
	Cluster  int
	Start    time.Duration
	Duration time.Duration
}

// Plan is a complete declarative fault schedule for one run.
type Plan struct {
	// Seed drives the probabilistic verdicts. Two runs with equal seeds,
	// plans and workloads observe identical fault sequences.
	Seed uint64

	// Default applies to every directed cluster pair without an explicit
	// entry in Pairs.
	Default PairProbs

	// Pairs overrides Default for specific directed pairs, keyed
	// [from cluster, to cluster].
	Pairs map[[2]int]PairProbs

	// ReorderDelay is the extra arrival delay a reordered message suffers.
	// Required (positive) when any Reorder probability is set.
	ReorderDelay time.Duration

	Outages      []Outage
	Degradations []Degradation
	Crashes      []GatewayCrash
}

// Validate rejects plans whose execution would be meaningless or corrupting:
// probabilities outside [0,1] or summing past 1, non-positive degradation
// scales, negative windows, or reordering without a delay.
func (pl Plan) Validate() error {
	check := func(what string, p PairProbs) error {
		for _, v := range []struct {
			name string
			p    float64
		}{{"drop", p.Drop}, {"duplicate", p.Duplicate}, {"reorder", p.Reorder}} {
			if !(v.p >= 0 && v.p <= 1) {
				return fmt.Errorf("faults: %s %s probability %g outside [0, 1]", what, v.name, v.p)
			}
		}
		if p.sum() > 1 {
			return fmt.Errorf("faults: %s probabilities sum to %g > 1", what, p.sum())
		}
		if p.Reorder > 0 && pl.ReorderDelay <= 0 {
			return fmt.Errorf("faults: %s has reorder probability %g but plan's ReorderDelay is %v", what, p.Reorder, pl.ReorderDelay)
		}
		return nil
	}
	if err := check("default", pl.Default); err != nil {
		return err
	}
	for pair, p := range pl.Pairs {
		if err := check(fmt.Sprintf("pair %d->%d", pair[0], pair[1]), p); err != nil {
			return err
		}
		if pair[0] < 0 || pair[1] < 0 {
			return fmt.Errorf("faults: pair %d->%d has a negative cluster index", pair[0], pair[1])
		}
	}
	for _, o := range pl.Outages {
		if o.Duration < 0 || o.Start < 0 {
			return fmt.Errorf("faults: outage %d->%d has negative window [%v, +%v]", o.From, o.To, o.Start, o.Duration)
		}
		if o.From < Any || o.To < Any {
			return fmt.Errorf("faults: outage %d->%d has an invalid cluster index", o.From, o.To)
		}
	}
	for _, d := range pl.Degradations {
		if d.Duration < 0 || d.Start < 0 {
			return fmt.Errorf("faults: degradation has negative window [%v, +%v]", d.Start, d.Duration)
		}
		if !(d.LatScale >= 0) || !(d.BWScale > 0) {
			return fmt.Errorf("faults: degradation scales (latency %g, bandwidth %g) invalid; latency must be >= 0 and bandwidth > 0", d.LatScale, d.BWScale)
		}
	}
	for _, c := range pl.Crashes {
		if c.Duration < 0 || c.Start < 0 {
			return fmt.Errorf("faults: gateway crash of cluster %d has negative window [%v, +%v]", c.Cluster, c.Start, c.Duration)
		}
		if c.Cluster < 0 {
			return fmt.Errorf("faults: gateway crash has negative cluster index %d", c.Cluster)
		}
	}
	return nil
}

// EventKind classifies an injected fault occurrence.
type EventKind uint8

const (
	// EventDrop is a probabilistic message loss.
	EventDrop EventKind = iota
	// EventDuplicate is a probabilistic message duplication.
	EventDuplicate
	// EventReorder is a probabilistic reorder delay.
	EventReorder
	// EventOutage is a loss to a scheduled link outage.
	EventOutage
	// EventCrash is a loss to a crashed gateway.
	EventCrash
	numEventKinds
)

var eventKindNames = [numEventKinds]string{"drop", "duplicate", "reorder", "outage", "crash"}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "invalid"
}

// Event records one injected fault, for tracing. From/To are cluster
// indices; To is -1 for gateway crashes (the loss is at one gateway).
type Event struct {
	At       time.Duration
	Kind     EventKind
	From, To int
}

// Counters tallies what the injector actually did over a run.
type Counters struct {
	Inspected   uint64 // WAN messages ruled on
	Drops       uint64 // probabilistic losses
	Duplicates  uint64
	Reorders    uint64
	OutageDrops uint64 // losses to scheduled link outages
	CrashDrops  uint64 // losses to crashed gateways (either side)
}

// Injector executes a Plan as a netsim.FaultPolicy.
type Injector struct {
	plan     Plan
	state    uint64 // splitmix64 decision stream
	counters Counters

	// onEvent, if set, observes every injected fault as it happens. It runs
	// on the simulation's send path and must be cheap and side-effect-pure
	// with respect to the simulation (tracing only).
	onEvent func(Event)
}

// NewInjector validates the plan and builds its injector.
func NewInjector(plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Injector{plan: plan, state: plan.Seed}, nil
}

// MustInjector is NewInjector for statically-known-good plans.
func MustInjector(plan Plan) *Injector {
	in, err := NewInjector(plan)
	if err != nil {
		panic(err)
	}
	return in
}

// OnEvent installs a fault observer (nil removes it).
func (in *Injector) OnEvent(fn func(Event)) { in.onEvent = fn }

// Counters returns the tallies so far.
func (in *Injector) Counters() Counters { return in.counters }

// roll draws the next uniform variate in [0, 1) from the decision stream.
func (in *Injector) roll() float64 {
	return float64(rng.SplitMix64(&in.state)>>11) / (1 << 53)
}

func (in *Injector) emit(at time.Duration, k EventKind, from, to int) {
	if in.onEvent != nil {
		in.onEvent(Event{At: at, Kind: k, From: from, To: to})
	}
}

func inWindow(at, start, dur time.Duration) bool {
	return at >= start && at < start+dur
}

// WANTransit implements netsim.FaultPolicy. Scheduled outages take
// precedence and consume no randomness; otherwise one variate partitions
// into drop / duplicate / reorder / deliver.
func (in *Injector) WANTransit(at time.Duration, cs, cd int, m netsim.Msg) (netsim.FaultAction, time.Duration) {
	in.counters.Inspected++
	for _, o := range in.plan.Outages {
		if (o.From == Any || o.From == cs) && (o.To == Any || o.To == cd) && inWindow(at, o.Start, o.Duration) {
			in.counters.OutageDrops++
			in.emit(at, EventOutage, cs, cd)
			return netsim.FaultDrop, 0
		}
	}
	p, ok := in.plan.Pairs[[2]int{cs, cd}]
	if !ok {
		p = in.plan.Default
	}
	if p.sum() == 0 {
		return netsim.FaultDeliver, 0
	}
	u := in.roll()
	switch {
	case u < p.Drop:
		in.counters.Drops++
		in.emit(at, EventDrop, cs, cd)
		return netsim.FaultDrop, 0
	case u < p.Drop+p.Duplicate:
		in.counters.Duplicates++
		in.emit(at, EventDuplicate, cs, cd)
		return netsim.FaultDuplicate, 0
	case u < p.Drop+p.Duplicate+p.Reorder:
		in.counters.Reorders++
		in.emit(at, EventReorder, cs, cd)
		return netsim.FaultDeliver, in.plan.ReorderDelay
	}
	return netsim.FaultDeliver, 0
}

// WANQuality implements netsim.FaultPolicy: active degradation windows
// compose multiplicatively.
func (in *Injector) WANQuality(at time.Duration) (float64, float64) {
	lat, bw := 1.0, 1.0
	for _, d := range in.plan.Degradations {
		if inWindow(at, d.Start, d.Duration) {
			lat *= d.LatScale
			bw *= d.BWScale
		}
	}
	return lat, bw
}

// GatewayDown implements netsim.FaultPolicy. Each true answer is one lost
// message, tallied as a crash drop.
func (in *Injector) GatewayDown(at time.Duration, c int, m netsim.Msg) bool {
	for _, cr := range in.plan.Crashes {
		if cr.Cluster == c && inWindow(at, cr.Start, cr.Duration) {
			in.counters.CrashDrops++
			in.emit(at, EventCrash, c, -1)
			return true
		}
	}
	return false
}

var _ netsim.FaultPolicy = (*Injector)(nil)
