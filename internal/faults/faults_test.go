package faults

import (
	"strings"
	"testing"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/netsim"
	"albatross/internal/sim"
)

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		want string // substring of the error, "" for valid
	}{
		{"empty", Plan{}, ""},
		{"good probs", Plan{Default: PairProbs{Drop: 0.1, Duplicate: 0.2, Reorder: 0.3}, ReorderDelay: time.Millisecond}, ""},
		{"negative prob", Plan{Default: PairProbs{Drop: -0.1}}, "outside [0, 1]"},
		{"prob over one", Plan{Default: PairProbs{Duplicate: 1.5}}, "outside [0, 1]"},
		{"sum over one", Plan{Default: PairProbs{Drop: 0.6, Duplicate: 0.6}}, "sum to"},
		{"reorder without delay", Plan{Default: PairProbs{Reorder: 0.1}}, "ReorderDelay"},
		{"bad pair", Plan{Pairs: map[[2]int]PairProbs{{0, 1}: {Drop: 2}}}, "pair 0->1"},
		{"negative pair index", Plan{Pairs: map[[2]int]PairProbs{{-2, 1}: {}}}, "negative cluster index"},
		{"negative outage", Plan{Outages: []Outage{{From: 0, To: 1, Start: -time.Second}}}, "negative window"},
		{"bad outage endpoint", Plan{Outages: []Outage{{From: -2, To: 1}}}, "invalid cluster index"},
		{"wildcard outage ok", Plan{Outages: []Outage{{From: Any, To: Any, Duration: time.Second}}}, ""},
		{"zero bw degradation", Plan{Degradations: []Degradation{{Duration: time.Second, LatScale: 1, BWScale: 0}}}, "degradation scales"},
		{"negative crash", Plan{Crashes: []GatewayCrash{{Cluster: 1, Duration: -time.Second}}}, "negative window"},
		{"negative crash cluster", Plan{Crashes: []GatewayCrash{{Cluster: -1, Duration: time.Second}}}, "negative cluster index"},
		{"good link-down", Plan{LinkDowns: []LinkDown{{From: 0, To: 1, Start: time.Second, Duration: time.Second}}}, ""},
		{"negative link-down window", Plan{LinkDowns: []LinkDown{{From: 0, To: 1, Duration: -time.Second}}}, "negative window"},
		{"self link-down", Plan{LinkDowns: []LinkDown{{From: 2, To: 2, Duration: time.Second}}}, "not a directed cluster pair"},
		{"negative link-down index", Plan{LinkDowns: []LinkDown{{From: -1, To: 1, Duration: time.Second}}}, "not a directed cluster pair"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("valid plan rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestVerdictStreamDeterminism(t *testing.T) {
	plan := Plan{
		Seed:         42,
		Default:      PairProbs{Drop: 0.2, Duplicate: 0.1, Reorder: 0.1},
		ReorderDelay: time.Millisecond,
	}
	sequence := func() []netsim.FaultAction {
		in := MustInjector(plan)
		var out []netsim.FaultAction
		for i := 0; i < 500; i++ {
			a, _ := in.WANTransit(time.Duration(i)*time.Millisecond, 0, 1, netsim.Msg{})
			out = append(out, a)
		}
		return out
	}
	a, b := sequence(), sequence()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d differs across identical injectors: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestProbabilisticRates(t *testing.T) {
	in := MustInjector(Plan{
		Seed:         7,
		Default:      PairProbs{Drop: 0.3, Duplicate: 0.1, Reorder: 0.05},
		ReorderDelay: time.Millisecond,
	})
	const n = 20000
	for i := 0; i < n; i++ {
		in.WANTransit(time.Duration(i), 0, 1, netsim.Msg{})
	}
	c := in.Counters()
	if c.Inspected != n {
		t.Fatalf("inspected %d, want %d", c.Inspected, n)
	}
	within := func(name string, got uint64, p float64) {
		t.Helper()
		f := float64(got) / n
		if f < p*0.85 || f > p*1.15 {
			t.Fatalf("%s rate %.4f, want ~%.2f", name, f, p)
		}
	}
	within("drop", c.Drops, 0.3)
	within("duplicate", c.Duplicates, 0.1)
	within("reorder", c.Reorders, 0.05)
}

func TestPairOverrides(t *testing.T) {
	in := MustInjector(Plan{
		Default: PairProbs{Drop: 1},
		Pairs:   map[[2]int]PairProbs{{1, 0}: {}}, // reverse direction perfect
	})
	if a, _ := in.WANTransit(0, 0, 1, netsim.Msg{}); a != netsim.FaultDrop {
		t.Fatalf("default pair verdict %v, want drop", a)
	}
	if a, _ := in.WANTransit(0, 1, 0, netsim.Msg{}); a != netsim.FaultDeliver {
		t.Fatalf("override pair verdict %v, want deliver", a)
	}
}

func TestOutageWindow(t *testing.T) {
	in := MustInjector(Plan{
		Outages: []Outage{{From: 0, To: 1, Start: time.Second, Duration: 2 * time.Second}},
	})
	verdict := func(at time.Duration, cs, cd int) netsim.FaultAction {
		a, _ := in.WANTransit(at, cs, cd, netsim.Msg{})
		return a
	}
	if verdict(999*time.Millisecond, 0, 1) != netsim.FaultDeliver {
		t.Fatal("dropped before the outage window")
	}
	if verdict(time.Second, 0, 1) != netsim.FaultDrop {
		t.Fatal("delivered at outage start")
	}
	if verdict(2999*time.Millisecond, 0, 1) != netsim.FaultDrop {
		t.Fatal("delivered just before outage end")
	}
	if verdict(3*time.Second, 0, 1) != netsim.FaultDeliver {
		t.Fatal("dropped at outage end (window is half-open)")
	}
	if verdict(2*time.Second, 1, 0) != netsim.FaultDeliver {
		t.Fatal("outage leaked to the reverse direction")
	}
	if got := in.Counters().OutageDrops; got != 2 {
		t.Fatalf("outage drops %d, want 2", got)
	}
}

func TestWildcardOutage(t *testing.T) {
	in := MustInjector(Plan{
		Outages: []Outage{{From: Any, To: 2, Duration: time.Second}},
	})
	if a, _ := in.WANTransit(0, 7, 2, netsim.Msg{}); a != netsim.FaultDrop {
		t.Fatal("wildcard From did not match")
	}
	if a, _ := in.WANTransit(0, 2, 7, netsim.Msg{}); a != netsim.FaultDeliver {
		t.Fatal("wildcard outage matched the wrong direction")
	}
}

func TestDegradationWindowsCompose(t *testing.T) {
	in := MustInjector(Plan{
		Degradations: []Degradation{
			{Start: 0, Duration: 10 * time.Second, LatScale: 2, BWScale: 0.5},
			{Start: 5 * time.Second, Duration: 10 * time.Second, LatScale: 3, BWScale: 0.5},
		},
	})
	if ls, bs := in.WANQuality(time.Second); ls != 2 || bs != 0.5 {
		t.Fatalf("first window scales (%g, %g)", ls, bs)
	}
	if ls, bs := in.WANQuality(7 * time.Second); ls != 6 || bs != 0.25 {
		t.Fatalf("overlap scales (%g, %g), want multiplicative (6, 0.25)", ls, bs)
	}
	if ls, bs := in.WANQuality(20 * time.Second); ls != 1 || bs != 1 {
		t.Fatalf("outside windows scales (%g, %g), want (1, 1)", ls, bs)
	}
}

func TestGatewayCrashWindow(t *testing.T) {
	in := MustInjector(Plan{
		Crashes: []GatewayCrash{{Cluster: 1, Start: time.Second, Duration: time.Second}},
	})
	if in.GatewayDown(0, 1, netsim.Msg{}) {
		t.Fatal("down before crash")
	}
	if !in.GatewayDown(1500*time.Millisecond, 1, netsim.Msg{}) {
		t.Fatal("up during crash")
	}
	if in.GatewayDown(1500*time.Millisecond, 0, netsim.Msg{}) {
		t.Fatal("crash leaked to another cluster")
	}
	if in.GatewayDown(2*time.Second, 1, netsim.Msg{}) {
		t.Fatal("down after restart")
	}
	if got := in.Counters().CrashDrops; got != 1 {
		t.Fatalf("crash drops %d, want 1", got)
	}
}

func TestEventsEmitted(t *testing.T) {
	in := MustInjector(Plan{
		Default: PairProbs{Drop: 1},
		Crashes: []GatewayCrash{{Cluster: 0, Start: 0, Duration: time.Second}},
	})
	var events []Event
	in.OnEvent(func(e Event) { events = append(events, e) })
	in.GatewayDown(time.Millisecond, 0, netsim.Msg{})
	in.WANTransit(2*time.Second, 0, 1, netsim.Msg{})
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[0].Kind != EventCrash || events[0].To != -1 || events[0].At != time.Millisecond {
		t.Fatalf("crash event %+v", events[0])
	}
	if events[1].Kind != EventDrop || events[1].From != 0 || events[1].To != 1 {
		t.Fatalf("drop event %+v", events[1])
	}
	if EventOutage.String() != "outage" || EventKind(99).String() != "invalid" {
		t.Fatal("EventKind.String broken")
	}
}

// TestNetworkRunDeterminism drives a real network under a lossy plan and
// checks three runs agree on elapsed virtual time, dispatched events, and
// fault tallies — the acceptance property for the whole fault subsystem.
func TestNetworkRunDeterminism(t *testing.T) {
	run := func() (time.Duration, uint64, Counters) {
		e := sim.NewEngine()
		n := netsim.New(e, cluster.Topology{Clusters: 3, NodesPerCluster: 3}, cluster.DASParams())
		in := MustInjector(Plan{
			Seed:         99,
			Default:      PairProbs{Drop: 0.1, Duplicate: 0.05, Reorder: 0.05},
			ReorderDelay: 5 * time.Millisecond,
			Crashes:      []GatewayCrash{{Cluster: 1, Start: 10 * time.Millisecond, Duration: 10 * time.Millisecond}},
		})
		n.SetFaultPolicy(in)
		for i := 0; i < 300; i++ {
			from := cluster.NodeID(i % 9)
			to := cluster.NodeID((i * 7) % 9)
			n.Send(netsim.Msg{From: from, To: to, Kind: netsim.KindData, Size: 100 + i})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		elapsed, dispatched := e.Now(), e.Dispatched()
		e.Shutdown()
		return elapsed, dispatched, in.Counters()
	}
	e1, d1, c1 := run()
	for i := 0; i < 2; i++ {
		e2, d2, c2 := run()
		if e1 != e2 || d1 != d2 || c1 != c2 {
			t.Fatalf("run %d diverged: (%v, %d, %+v) vs (%v, %d, %+v)", i+2, e1, d1, c1, e2, d2, c2)
		}
	}
	if c1.Drops == 0 || c1.Duplicates == 0 || c1.CrashDrops == 0 {
		t.Fatalf("plan injected nothing interesting: %+v", c1)
	}
}

// ringGraph builds a bare r-root ring backbone graph for the partition
// helpers.
func ringGraph(t *testing.T, r int) *cluster.Graph {
	t.Helper()
	b := cluster.NewBuilder()
	cl := b.Class("backbone", time.Millisecond, cluster.Mbit(100), 0)
	b.Roots(r, cluster.Ring, cl, 1)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo.WAN
}

func TestLinkDownWindowPredicate(t *testing.T) {
	in := MustInjector(Plan{LinkDowns: []LinkDown{
		{From: 0, To: 1, Start: time.Second, Duration: time.Second},
	}})
	if !in.HasLinkDowns() {
		t.Fatal("HasLinkDowns() = false with a scheduled cut")
	}
	cases := []struct {
		at       time.Duration
		from, to int
		want     bool
	}{
		{500 * time.Millisecond, 0, 1, false}, // before the window
		{time.Second, 0, 1, true},             // inclusive start
		{1500 * time.Millisecond, 0, 1, true},
		{2 * time.Second, 0, 1, false},         // exclusive end
		{1500 * time.Millisecond, 1, 0, false}, // reverse direction untouched
		{1500 * time.Millisecond, 0, 2, false}, // other pair untouched
	}
	for _, c := range cases {
		if got := in.LinkDown(c.at, c.from, c.to); got != c.want {
			t.Fatalf("LinkDown(%v, %d, %d) = %v, want %v", c.at, c.from, c.to, got, c.want)
		}
	}
	if MustInjector(Plan{}).HasLinkDowns() {
		t.Fatal("empty plan claims link downs")
	}
}

func TestCutRingSegment(t *testing.T) {
	g := ringGraph(t, 4)
	downs := CutRingSegment(g, 0, time.Second, time.Second)
	want := map[[2]int]bool{{0, 1}: true, {1, 0}: true}
	if len(downs) != 2 {
		t.Fatalf("segment cut produced %d windows, want 2 (both directions)", len(downs))
	}
	for _, d := range downs {
		if !want[[2]int{d.From, d.To}] {
			t.Fatalf("unexpected cut %d->%d", d.From, d.To)
		}
		if d.Start != time.Second || d.Duration != time.Second {
			t.Fatalf("cut window [%v, +%v], want [1s, +1s]", d.Start, d.Duration)
		}
	}
	// The last segment wraps around to root 0.
	downs = CutRingSegment(g, 3, 0, time.Second)
	if downs[0].From != 3 || downs[0].To != 0 {
		t.Fatalf("wrap segment cut %d->%d, want 3->0", downs[0].From, downs[0].To)
	}
}

func TestCutUplink(t *testing.T) {
	b := cluster.NewBuilder()
	trunk := b.Class("trunk", 20*time.Millisecond, cluster.Mbit(155), 0)
	leafc := b.Class("leaf", 5*time.Millisecond, cluster.Mbit(45), 0)
	roots := b.Roots(2, cluster.Mesh, trunk, 2)
	b.Tier(roots, 2, leafc, 2)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := topo.WAN
	// Cluster 1 is root 0's first leaf.
	downs := CutUplink(g, 1, 0, time.Second)
	if len(downs) != 2 || downs[0].From != 1 || downs[0].To != 0 || downs[1].From != 0 || downs[1].To != 1 {
		t.Fatalf("uplink cut = %+v, want both directions of 1-0", downs)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CutUplink on a root cluster did not panic")
		}
	}()
	CutUplink(g, 0, 0, time.Second)
}

func TestCutClass(t *testing.T) {
	b := cluster.NewBuilder()
	trunk := b.Class("trunk", 20*time.Millisecond, cluster.Mbit(155), 0)
	leafc := b.Class("leaf", 5*time.Millisecond, cluster.Mbit(45), 0)
	roots := b.Roots(3, cluster.Ring, trunk, 2)
	b.Tier(roots, 1, leafc, 2)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := topo.WAN
	downs := CutClass(g, "trunk", 0, time.Second)
	// 3 ring links, both directions each.
	if len(downs) != 6 {
		t.Fatalf("trunk cut produced %d windows, want 6", len(downs))
	}
	for _, d := range downs {
		// Every cut endpoint must be a root (trunk links only).
		if g.Parent(d.From) >= 0 || g.Parent(d.To) >= 0 {
			t.Fatalf("trunk class cut touched non-root link %d->%d", d.From, d.To)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CutClass with unknown name did not panic")
		}
	}()
	CutClass(g, "no-such-class", 0, time.Second)
}

// TestLinkDownRoutesAroundInNetwork is the faults-package end-to-end check:
// a plan-scheduled ring cut reroutes traffic the other way round without
// losing anything, and the Stats counters record the reroute.
func TestLinkDownRoutesAroundInNetwork(t *testing.T) {
	b := cluster.NewBuilder()
	cl := b.Class("backbone", time.Millisecond, cluster.Mbit(100), 0)
	b.Roots(4, cluster.Ring, cl, 2)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	plan := Plan{LinkDowns: CutRingSegment(topo.WAN, 0, 0, time.Hour)}
	e := sim.NewEngine()
	n := netsim.New(e, topo, cluster.DASParams())
	n.SetFaultPolicy(MustInjector(plan))
	n.Send(netsim.Msg{From: 0, To: 2, Kind: netsim.KindData, Size: 1000})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := n.Inbox(2).Len(); got != 1 {
		t.Fatalf("delivered %d, want 1 (rerouted)", got)
	}
	if n.Stats().Reroutes() == 0 {
		t.Fatal("ring cut produced no reroutes")
	}
}
