// Package coll provides collective communication operations (broadcast,
// reduce, allreduce, barrier, gather, allgather) over a simulated
// multilevel cluster, in two strategies:
//
//   - Flat: classic binomial trees over the global rank space, oblivious to
//     the cluster structure — edges cross the WAN haphazardly, so a single
//     collective pays many wide-area latencies;
//   - WideArea: the paper's cluster-aware restructuring generalized (the
//     direct ancestor of the MagPIe-style collectives that later entered
//     MPI libraries): each cluster has a local root; wide-area links carry
//     exactly one message per remote cluster per operation, and everything
//     else moves at LAN speed.
//
// Every operation is collective: all workers of the system must call it,
// in the same order. Each worker keeps its own call counter, so matching
// needs no central coordination.
package coll

import (
	"fmt"
	"sort"

	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/orca"
)

// Strategy selects the communication structure of the collectives.
type Strategy int

const (
	// Flat uses rank-space binomial trees, ignoring cluster boundaries.
	Flat Strategy = iota
	// WideArea uses cluster-local trees plus one WAN message per cluster.
	WideArea
)

func (s Strategy) String() string {
	if s == WideArea {
		return "wide-area"
	}
	return "flat"
}

// Comm is a communicator spanning all compute nodes of a system.
type Comm struct {
	sys      *core.System
	strategy Strategy
	name     string
	seq      []int                  // per-rank collective-call counter
	stash    map[[3]int]map[int]any // cluster roots' own AllToAll parts
}

// New creates a communicator. name must be unique per system.
func New(sys *core.System, name string, strategy Strategy) *Comm {
	return &Comm{
		sys:      sys,
		strategy: strategy,
		name:     name,
		seq:      make([]int, sys.Topo.Compute()),
	}
}

// Strategy returns the communicator's strategy.
func (c *Comm) Strategy() Strategy { return c.strategy }

// next returns this worker's collective-call sequence number.
func (c *Comm) next(w *core.Worker) int {
	s := c.seq[w.Rank()]
	c.seq[w.Rank()]++
	return s
}

func (c *Comm) tag(op string, seq, aux int) orca.Tag {
	return orca.Tag{Op: c.name + "/" + op + "/" + itoa(seq), A: aux}
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

// CombineFunc folds two values (used by Reduce/AllReduce); it must be
// associative. acc is nil for the first value.
type CombineFunc = core.CombineFunc

// Bcast distributes data of the given size from root to every worker. It
// returns the received value (root returns its own data).
func (c *Comm) Bcast(w *core.Worker, root int, size int, data any) any {
	seq := c.next(w)
	if c.strategy == Flat {
		return c.bcastTree(w, seq, root, size, data, c.allRanks(), "b")
	}
	topo := c.sys.Topo
	rootCluster := topo.ClusterOf(cluster.NodeID(root))
	myCluster := w.Cluster()
	local := c.clusterRanks(myCluster)
	clusterRoot := local[0]
	var v any
	switch {
	case w.Rank() == root:
		// Send once to each remote cluster's local root.
		for cl := 0; cl < topo.Clusters; cl++ {
			if cl == rootCluster {
				continue
			}
			w.Send(cluster.NodeID(c.clusterRanks(cl)[0]), c.tag("b", seq, cl), size, data)
		}
		v = data
	case w.Rank() == clusterRoot && myCluster != rootCluster:
		v = w.Recv(c.tag("b", seq, myCluster))
	}
	// Distribute within the cluster, rooted at the cluster root (or the
	// global root for its own cluster).
	lr := clusterRoot
	if myCluster == rootCluster {
		lr = root
	}
	if w.Rank() == lr {
		if v == nil {
			v = data
		}
		return c.bcastTree(w, seq, lr, size, v, local, "bl")
	}
	return c.bcastTree(w, seq, lr, size, nil, local, "bl")
}

// bcastTree runs the standard binomial broadcast over the given rank group:
// relative to the root, a node receives at its lowest set bit and forwards
// to every position below that bit.
func (c *Comm) bcastTree(w *core.Worker, seq, root, size int, data any, group []int, phase string) any {
	n := len(group)
	me := indexOf(group, w.Rank())
	if me < 0 {
		panic(fmt.Sprintf("coll: rank %d not in group", w.Rank()))
	}
	r := indexOf(group, root)
	if r < 0 {
		panic(fmt.Sprintf("coll: root %d not in group", root))
	}
	rel := (me - r + n) % n
	v := data
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			parent := group[(rel-mask+r)%n]
			v = w.Recv(c.tag(phase, seq, parent))
			break
		}
		mask <<= 1
	}
	for cm := mask >> 1; cm > 0; cm >>= 1 {
		if rel+cm < n {
			child := group[(rel+cm+r)%n]
			w.Send(cluster.NodeID(child), c.tag(phase, seq, w.Rank()), size, v)
		}
	}
	return v
}

// Reduce folds every worker's value with combine; the result arrives at
// root (others return nil).
func (c *Comm) Reduce(w *core.Worker, root int, size int, value any, combine CombineFunc) any {
	seq := c.next(w)
	if c.strategy == Flat {
		return c.reduceTree(w, seq, root, size, value, combine, c.allRanks(), "r")
	}
	topo := c.sys.Topo
	rootCluster := topo.ClusterOf(cluster.NodeID(root))
	myCluster := w.Cluster()
	local := c.clusterRanks(myCluster)
	lr := local[0]
	if myCluster == rootCluster {
		lr = root
	}
	partial := c.reduceTree(w, seq, lr, size, value, combine, local, "rl")
	if w.Rank() != lr {
		return nil
	}
	if myCluster != rootCluster {
		// Ship the cluster's partial to the global root: one WAN message.
		w.Send(cluster.NodeID(root), c.tag("r", seq, myCluster), size, partial)
		return nil
	}
	// Global root: fold in one partial per remote cluster.
	acc := partial
	for cl := 0; cl < topo.Clusters; cl++ {
		if cl == rootCluster {
			continue
		}
		acc = combine(acc, w.Recv(c.tag("r", seq, cl)))
	}
	return acc
}

// reduceTree runs the mirror-image binomial reduction over the group: a
// node folds in one child per zero bit below its lowest set bit, then sends
// the partial to its parent; the root folds everything.
func (c *Comm) reduceTree(w *core.Worker, seq, root, size int, value any, combine CombineFunc, group []int, phase string) any {
	n := len(group)
	me := indexOf(group, w.Rank())
	r := indexOf(group, root)
	rel := (me - r + n) % n
	acc := combine(nil, value)
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			parent := group[(rel-mask+r)%n]
			w.Send(cluster.NodeID(parent), c.tag(phase, seq, w.Rank()), size, acc)
			return nil
		}
		if rel+mask < n {
			child := group[(rel+mask+r)%n]
			acc = combine(acc, w.Recv(c.tag(phase, seq, child)))
		}
		mask <<= 1
	}
	return acc
}

// AllReduce folds every worker's value and returns the result everywhere.
func (c *Comm) AllReduce(w *core.Worker, size int, value any, combine CombineFunc) any {
	v := c.Reduce(w, 0, size, value, combine)
	return c.Bcast(w, 0, size, v)
}

// Barrier blocks until every worker has arrived (an empty allreduce).
func (c *Comm) Barrier(w *core.Worker) {
	c.AllReduce(w, 4, 0, func(acc, v any) any { return 0 })
}

// Gather collects every worker's value at root, indexed by rank; others
// return nil. size is the per-contribution wire size.
func (c *Comm) Gather(w *core.Worker, root int, size int, value any) []any {
	seq := c.next(w)
	p := c.sys.Topo.Compute()
	if c.strategy == Flat {
		if w.Rank() != root {
			w.Send(cluster.NodeID(root), c.tag("g", seq, w.Rank()), size, value)
			return nil
		}
		out := make([]any, p)
		out[root] = value
		for r := 0; r < p; r++ {
			if r == root {
				continue
			}
			out[r] = w.Recv(c.tag("g", seq, r))
		}
		return out
	}
	topo := c.sys.Topo
	rootCluster := topo.ClusterOf(cluster.NodeID(root))
	myCluster := w.Cluster()
	local := c.clusterRanks(myCluster)
	lr := local[0]
	if myCluster == rootCluster {
		lr = root
	}
	if w.Rank() != lr {
		w.Send(cluster.NodeID(lr), c.tag("gl", seq, w.Rank()), size, value)
		return nil
	}
	// Cluster root gathers its cluster...
	part := make(map[int]any, len(local))
	part[w.Rank()] = value
	for _, r := range local {
		if r == w.Rank() {
			continue
		}
		part[r] = w.Recv(c.tag("gl", seq, r))
	}
	if myCluster != rootCluster {
		// ... and ships one combined message across the WAN.
		w.Send(cluster.NodeID(root), c.tag("g", seq, myCluster), size*len(local), part)
		return nil
	}
	out := make([]any, p)
	for r, v := range part {
		out[r] = v
	}
	for cl := 0; cl < topo.Clusters; cl++ {
		if cl == rootCluster {
			continue
		}
		for r, v := range w.Recv(c.tag("g", seq, cl)).(map[int]any) {
			out[r] = v
		}
	}
	return out
}

// AllGather collects every worker's value everywhere.
func (c *Comm) AllGather(w *core.Worker, size int, value any) []any {
	all := c.Gather(w, 0, size, value)
	p := c.sys.Topo.Compute()
	v := c.Bcast(w, 0, size*p, all)
	return v.([]any)
}

// allRanks returns 0..p-1.
func (c *Comm) allRanks() []int {
	out := make([]int, c.sys.Topo.Compute())
	for i := range out {
		out[i] = i
	}
	return out
}

// clusterRanks returns the ranks of cluster cl in order.
func (c *Comm) clusterRanks(cl int) []int {
	nodes := c.sys.Topo.Nodes(cl)
	out := make([]int, len(nodes))
	for i, n := range nodes {
		out[i] = int(n)
	}
	return out
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

// Scatter distributes per-rank values from root: worker r receives
// values[r] (indexed by global rank; only root's values matter). size is
// the per-element wire size.
func (c *Comm) Scatter(w *core.Worker, root int, size int, values []any) any {
	seq := c.next(w)
	p := c.sys.Topo.Compute()
	if c.strategy == Flat {
		if w.Rank() == root {
			for r := 0; r < p; r++ {
				if r == root {
					continue
				}
				w.Send(cluster.NodeID(r), c.tag("s", seq, r), size, values[r])
			}
			return values[root]
		}
		return w.Recv(c.tag("s", seq, w.Rank()))
	}
	topo := c.sys.Topo
	rootCluster := topo.ClusterOf(cluster.NodeID(root))
	myCluster := w.Cluster()
	local := c.clusterRanks(myCluster)
	lr := local[0]
	if myCluster == rootCluster {
		lr = root
	}
	switch {
	case w.Rank() == root:
		// One combined message per remote cluster, to its local root.
		for cl := 0; cl < topo.Clusters; cl++ {
			if cl == rootCluster {
				continue
			}
			ranks := c.clusterRanks(cl)
			part := make(map[int]any, len(ranks))
			for _, r := range ranks {
				part[r] = values[r]
			}
			w.Send(cluster.NodeID(ranks[0]), c.tag("s", seq, cl), size*len(ranks), part)
		}
		// Own cluster directly.
		for _, r := range local {
			if r == root {
				continue
			}
			w.Send(cluster.NodeID(r), c.tag("sl", seq, r), size, values[r])
		}
		return values[root]
	case w.Rank() == lr && myCluster != rootCluster:
		part := w.Recv(c.tag("s", seq, myCluster)).(map[int]any)
		for _, r := range local {
			if r == lr {
				continue
			}
			w.Send(cluster.NodeID(r), c.tag("sl", seq, r), size, part[r])
		}
		return part[lr]
	default:
		return w.Recv(c.tag("sl", seq, w.Rank()))
	}
}

// AllToAll performs a personalized exchange: worker r sends values[q] to
// every worker q and receives a slice indexed by sender rank. The wide-area
// strategy routes all intercluster traffic through the cluster roots, which
// exchange one combined message per cluster pair (the paper's cluster-level
// message combining applied to a collective).
func (c *Comm) AllToAll(w *core.Worker, size int, values []any) []any {
	seq := c.next(w)
	topo := c.sys.Topo
	p := topo.Compute()
	out := make([]any, p)
	out[w.Rank()] = values[w.Rank()]
	if c.strategy == Flat {
		for q := 0; q < p; q++ {
			if q == w.Rank() {
				continue
			}
			w.Send(cluster.NodeID(q), c.tag("a", seq, w.Rank()), size, values[q])
		}
		for q := 0; q < p; q++ {
			if q == w.Rank() {
				continue
			}
			out[q] = w.Recv(c.tag("a", seq, q))
		}
		return out
	}
	myCluster := w.Cluster()
	local := c.clusterRanks(myCluster)
	lr := local[0]
	// Intra-cluster legs go direct; intercluster legs go through the
	// cluster roots as combined bundles.
	type bundle map[int]map[int]any // dest rank -> sender rank -> value
	for q := 0; q < p; q++ {
		if q == w.Rank() {
			continue
		}
		if topo.SameCluster(w.Node, cluster.NodeID(q)) {
			w.Send(cluster.NodeID(q), c.tag("a", seq, w.Rank()), size, values[q])
		}
	}
	// Hand our remote-bound values to the cluster root, per remote cluster.
	for cl := 0; cl < topo.Clusters; cl++ {
		if cl == myCluster {
			continue
		}
		ranks := c.clusterRanks(cl)
		part := make(map[int]any, len(ranks))
		for _, q := range ranks {
			part[q] = values[q]
		}
		if w.Rank() == lr {
			// Root keeps its own contribution for the bundle below.
			c.rootStash(seq, cl, w.Rank(), part)
			continue
		}
		w.Send(cluster.NodeID(lr), c.tag("ar", seq, cl*1000+w.Rank()), size*len(ranks), part)
	}
	if w.Rank() == lr {
		// Collect every member's per-cluster parts, bundle, exchange with
		// the other cluster roots, and scatter what comes back.
		for cl := 0; cl < topo.Clusters; cl++ {
			if cl == myCluster {
				continue
			}
			b := bundle{}
			addPart := func(sender int, part map[int]any) {
				for dest, v := range part {
					if b[dest] == nil {
						b[dest] = map[int]any{}
					}
					b[dest][sender] = v
				}
			}
			addPart(lr, c.rootUnstash(seq, cl, lr))
			for _, r := range local {
				if r == lr {
					continue
				}
				addPart(r, w.Recv(c.tag("ar", seq, cl*1000+r)).(map[int]any))
			}
			ranks := c.clusterRanks(cl)
			w.Send(cluster.NodeID(ranks[0]), c.tag("ab", seq, myCluster),
				size*len(local)*len(ranks), b)
		}
		// Receive the bundles from the other cluster roots and scatter.
		for cl := 0; cl < topo.Clusters; cl++ {
			if cl == myCluster {
				continue
			}
			b := w.Recv(c.tag("ab", seq, cl)).(bundle)
			// Scatter in rank order: map iteration order is randomized,
			// and the order sends enter the network changes contention and
			// therefore elapsed time — determinism requires a fixed order.
			dests := make([]int, 0, len(b))
			for dest := range b {
				dests = append(dests, dest)
			}
			sort.Ints(dests)
			for _, dest := range dests {
				senders := b[dest]
				if dest == lr {
					for s, v := range senders {
						out[s] = v
					}
					continue
				}
				w.Send(cluster.NodeID(dest), c.tag("as", seq, cl*1000+dest), size*len(senders), senders)
			}
		}
	} else {
		for cl := 0; cl < topo.Clusters; cl++ {
			if cl == myCluster {
				continue
			}
			for s, v := range w.Recv(c.tag("as", seq, cl*1000+w.Rank())).(map[int]any) {
				out[s] = v
			}
		}
	}
	// Finally the intra-cluster receives.
	for _, q := range local {
		if q == w.Rank() {
			continue
		}
		out[q] = w.Recv(c.tag("a", seq, q))
	}
	return out
}

// rootStash/rootUnstash pass the cluster root's own per-cluster parts from
// the member phase to the bundling phase without a self-message.
func (c *Comm) rootStash(seq, cl, rank int, part map[int]any) {
	if c.stash == nil {
		c.stash = map[[3]int]map[int]any{}
	}
	c.stash[[3]int{seq, cl, rank}] = part
}

func (c *Comm) rootUnstash(seq, cl, rank int) map[int]any {
	p := c.stash[[3]int{seq, cl, rank}]
	delete(c.stash, [3]int{seq, cl, rank})
	return p
}
