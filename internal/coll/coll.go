// Package coll provides collective communication operations (broadcast,
// reduce, allreduce, barrier, gather, allgather) over a simulated
// multilevel cluster, in two strategies:
//
//   - Flat: classic binomial trees over the global rank space, oblivious to
//     the cluster structure — edges cross the WAN haphazardly, so a single
//     collective pays many wide-area latencies;
//   - WideArea: the paper's cluster-aware restructuring generalized (the
//     direct ancestor of the MagPIe-style collectives that later entered
//     MPI libraries): each cluster has a local root; wide-area links carry
//     exactly one message per remote cluster per operation, and everything
//     else moves at LAN speed.
//
// Every operation is collective: all workers of the system must call it,
// in the same order. Matching relies on that call order plus the network's
// per-channel FIFO delivery: a tag identifies (communicator, phase, sender
// or cluster), not the individual call, so the interned-tag space is small
// and fixed and repeated collectives allocate no tag or mailbox state.
package coll

import (
	"fmt"

	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/orca"
)

// Strategy selects the communication structure of the collectives.
type Strategy int

const (
	// Flat uses rank-space binomial trees, ignoring cluster boundaries.
	Flat Strategy = iota
	// WideArea uses cluster-local trees plus one WAN message per cluster.
	WideArea
)

func (s Strategy) String() string {
	if s == WideArea {
		return "wide-area"
	}
	return "flat"
}

// phase distinguishes the message streams of the collective algorithms; a
// wire tag is (communicator name, phase, aux). Calls are matched purely by
// order, which is sound because every tag pins down a single sender: every
// worker issues the same collectives in the same order, each send in call k
// has exactly one matching receive in call k, and the network delivers each
// (sender, receiver) channel in FIFO order, so same-tag messages arrive in
// call order and a receive can never observe a later call's message first.
// Phases whose natural sender is the per-call root (broadcast and scatter
// legs) therefore encode the root into aux; all others use the sender rank
// or the sending cluster (whose root is fixed) directly.
type phase int

const (
	phB phase = iota // broadcast, global/WAN leg
	phBL             // broadcast, cluster-local tree
	phR              // reduce, global/WAN leg
	phRL             // reduce, cluster-local tree
	phG              // gather, global/WAN leg
	phGL             // gather, cluster-local leg
	phS              // scatter, global/WAN leg
	phSL             // scatter, cluster-local leg
	phA              // all-to-all, intra-cluster direct
	phAR             // all-to-all, member → cluster root
	phAB             // all-to-all, root → root bundle
	phAS             // all-to-all, root → member scatter
	numPhases
)

var phaseNames = [numPhases]string{"b", "bl", "r", "rl", "g", "gl", "s", "sl", "a", "ar", "ab", "as"}

// Comm is a communicator spanning all compute nodes of a system.
type Comm struct {
	sys      *core.System
	strategy Strategy
	name     string

	phNames [numPhases]string       // precomputed "name/phase" tag strings
	tids    [numPhases][]orca.TagID // interned tag per (phase, aux), stored +1

	all       []int   // ranks 0..p-1
	byCluster [][]int // per-cluster ranks, in order

	// AllToAll: each cluster root's own per-remote-cluster parts, indexed
	// [own cluster * Clusters + remote cluster] (every root stashes).
	stash [][]any

	// Free lists for the intermediate combined-message payloads of the
	// wide-area gather/scatter/all-to-all paths, indexed by cluster. On a
	// plain engine every cluster shares one instance (the simulation runs
	// one process at a time); on a sharded engine each cluster gets its
	// own, touched only from its LP thread.
	pools []*commPools
}

// commPools is one cluster's slice of the combined-payload free lists.
type commPools struct {
	partPool   [][]any
	bundlePool [][][]any
}

// New creates a communicator. name must be unique per system.
func New(sys *core.System, name string, strategy Strategy) *Comm {
	c := &Comm{sys: sys, strategy: strategy, name: name}
	for ph := phase(0); ph < numPhases; ph++ {
		c.phNames[ph] = name + "/" + phaseNames[ph]
	}
	topo := sys.Topo
	c.all = make([]int, topo.Compute())
	for i := range c.all {
		c.all[i] = i
	}
	c.byCluster = make([][]int, topo.Clusters)
	for cl := 0; cl < topo.Clusters; cl++ {
		nodes := topo.Nodes(cl)
		ranks := make([]int, len(nodes))
		for i, n := range nodes {
			ranks[i] = int(n)
		}
		c.byCluster[cl] = ranks
	}
	c.stash = make([][]any, topo.Clusters*topo.Clusters)
	c.pools = make([]*commPools, topo.Clusters)
	if sys.Sharded() {
		for cl := range c.pools {
			c.pools[cl] = &commPools{}
		}
	} else {
		one := &commPools{}
		for cl := range c.pools {
			c.pools[cl] = one
		}
	}
	c.preIntern()
	return c
}

// preIntern interns the tag set of the root-0 tree collectives (broadcast,
// reduce, and the allreduce/barrier built from them, in both strategies) at
// construction time. Interning mutates the communicator's dense tag tables,
// which several LPs of a sharded run would otherwise race on; with the set
// pre-interned, steady-state Barrier/AllReduce/Bcast/Reduce take the
// read-only cached path. Collectives outside this set (non-zero roots,
// gather/scatter/all-to-all) intern lazily and are therefore safe on the
// sequential engine only, unless first exercised during setup.
func (c *Comm) preIntern() {
	n := c.sys.Topo.Compute()
	if k := c.sys.Topo.Clusters; k > n {
		n = k
	}
	for _, ph := range []phase{phB, phBL, phR, phRL} {
		for aux := 0; aux < n; aux++ {
			c.tag(ph, aux)
		}
	}
}

// Strategy returns the communicator's strategy.
func (c *Comm) Strategy() Strategy { return c.strategy }

// tag returns the interned tag of (phase, aux), caching IDs in a dense
// table so steady-state collectives neither format names nor probe maps.
func (c *Comm) tag(ph phase, aux int) orca.TagID {
	t := c.tids[ph]
	if aux >= len(t) {
		t = append(t, make([]orca.TagID, aux+1-len(t))...)
		c.tids[ph] = t
	} else if id := t[aux]; id != 0 {
		return id - 1
	}
	id := c.sys.RTS.InternTag(orca.Tag{Op: c.phNames[ph], A: aux})
	c.tids[ph][aux] = id + 1
	return id
}

// getPart pops (or makes) an n-element payload slice from the free list.
func (pl *commPools) getPart(n int) []any {
	if k := len(pl.partPool); k > 0 {
		p := pl.partPool[k-1]
		pl.partPool = pl.partPool[:k-1]
		if cap(p) >= n {
			return p[:n]
		}
	}
	return make([]any, n)
}

// putPart recycles a consumed payload slice. A part may retire into a
// different cluster's pool than it came from (combined payloads cross the
// WAN); each pool is still touched only from its own cluster's LP.
func (pl *commPools) putPart(p []any) {
	for i := range p {
		p[i] = nil
	}
	pl.partPool = append(pl.partPool, p)
}

func (pl *commPools) getBundle(n int) [][]any {
	if k := len(pl.bundlePool); k > 0 {
		b := pl.bundlePool[k-1]
		pl.bundlePool = pl.bundlePool[:k-1]
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([][]any, n)
}

func (pl *commPools) putBundle(b [][]any) {
	for i := range b {
		b[i] = nil
	}
	pl.bundlePool = append(pl.bundlePool, b)
}

// CombineFunc folds two values (used by Reduce/AllReduce); it must be
// associative. acc is nil for the first value.
type CombineFunc = core.CombineFunc

// Bcast distributes data of the given size from root to every worker. It
// returns the received value (root returns its own data).
func (c *Comm) Bcast(w *core.Worker, root int, size int, data any) any {
	if c.strategy == Flat {
		return c.bcastTree(w, root, size, data, c.all, phB)
	}
	topo := c.sys.Topo
	rootCluster := topo.ClusterOf(cluster.NodeID(root))
	myCluster := w.Cluster()
	local := c.byCluster[myCluster]
	clusterRoot := local[0]
	var v any
	switch {
	case w.Rank() == root:
		// Send once to each remote cluster's local root. The tag encodes
		// (root, destination cluster): the root varies across calls, and
		// call-order matching needs one sender per tag.
		for cl := 0; cl < topo.Clusters; cl++ {
			if cl == rootCluster {
				continue
			}
			w.SendID(cluster.NodeID(c.byCluster[cl][0]), c.tag(phB, root*topo.Clusters+cl), size, data)
		}
		v = data
	case w.Rank() == clusterRoot && myCluster != rootCluster:
		v = w.RecvID(c.tag(phB, root*topo.Clusters+myCluster))
	}
	// Distribute within the cluster, rooted at the cluster root (or the
	// global root for its own cluster).
	lr := clusterRoot
	if myCluster == rootCluster {
		lr = root
	}
	if w.Rank() == lr {
		if v == nil {
			v = data
		}
		return c.bcastTree(w, lr, size, v, local, phBL)
	}
	return c.bcastTree(w, lr, size, nil, local, phBL)
}

// bcastTree runs the standard binomial broadcast over the given rank group:
// relative to the root, a node receives at its lowest set bit and forwards
// to every position below that bit.
func (c *Comm) bcastTree(w *core.Worker, root, size int, data any, group []int, ph phase) any {
	n := len(group)
	me := indexOf(group, w.Rank())
	if me < 0 {
		panic(fmt.Sprintf("coll: rank %d not in group", w.Rank()))
	}
	r := indexOf(group, root)
	if r < 0 {
		panic(fmt.Sprintf("coll: root %d not in group", root))
	}
	rel := (me - r + n) % n
	v := data
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			parent := group[(rel-mask+r)%n]
			v = w.RecvID(c.tag(ph, parent))
			break
		}
		mask <<= 1
	}
	for cm := mask >> 1; cm > 0; cm >>= 1 {
		if rel+cm < n {
			child := group[(rel+cm+r)%n]
			w.SendID(cluster.NodeID(child), c.tag(ph, w.Rank()), size, v)
		}
	}
	return v
}

// Reduce folds every worker's value with combine; the result arrives at
// root (others return nil).
func (c *Comm) Reduce(w *core.Worker, root int, size int, value any, combine CombineFunc) any {
	if c.strategy == Flat {
		return c.reduceTree(w, root, size, value, combine, c.all, phR)
	}
	topo := c.sys.Topo
	rootCluster := topo.ClusterOf(cluster.NodeID(root))
	myCluster := w.Cluster()
	local := c.byCluster[myCluster]
	lr := local[0]
	if myCluster == rootCluster {
		lr = root
	}
	partial := c.reduceTree(w, lr, size, value, combine, local, phRL)
	if w.Rank() != lr {
		return nil
	}
	if myCluster != rootCluster {
		// Ship the cluster's partial to the global root: one WAN message.
		w.SendID(cluster.NodeID(root), c.tag(phR, myCluster), size, partial)
		return nil
	}
	// Global root: fold in one partial per remote cluster.
	acc := partial
	for cl := 0; cl < topo.Clusters; cl++ {
		if cl == rootCluster {
			continue
		}
		acc = combine(acc, w.RecvID(c.tag(phR, cl)))
	}
	return acc
}

// reduceTree runs the mirror-image binomial reduction over the group: a
// node folds in one child per zero bit below its lowest set bit, then sends
// the partial to its parent; the root folds everything.
func (c *Comm) reduceTree(w *core.Worker, root, size int, value any, combine CombineFunc, group []int, ph phase) any {
	n := len(group)
	me := indexOf(group, w.Rank())
	r := indexOf(group, root)
	rel := (me - r + n) % n
	acc := combine(nil, value)
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			parent := group[(rel-mask+r)%n]
			w.SendID(cluster.NodeID(parent), c.tag(ph, w.Rank()), size, acc)
			return nil
		}
		if rel+mask < n {
			child := group[(rel+mask+r)%n]
			acc = combine(acc, w.RecvID(c.tag(ph, child)))
		}
		mask <<= 1
	}
	return acc
}

// AllReduce folds every worker's value and returns the result everywhere.
func (c *Comm) AllReduce(w *core.Worker, size int, value any, combine CombineFunc) any {
	v := c.Reduce(w, 0, size, value, combine)
	return c.Bcast(w, 0, size, v)
}

// barrierCombine is the do-nothing fold of Barrier, hoisted so repeated
// barriers allocate no closure.
func barrierCombine(acc, v any) any { return 0 }

// Barrier blocks until every worker has arrived (an empty allreduce).
func (c *Comm) Barrier(w *core.Worker) {
	c.AllReduce(w, 4, 0, barrierCombine)
}

// Gather collects every worker's value at root, indexed by rank; others
// return nil. size is the per-contribution wire size.
func (c *Comm) Gather(w *core.Worker, root int, size int, value any) []any {
	p := c.sys.Topo.Compute()
	if c.strategy == Flat {
		if w.Rank() != root {
			w.SendID(cluster.NodeID(root), c.tag(phG, w.Rank()), size, value)
			return nil
		}
		out := make([]any, p)
		out[root] = value
		for r := 0; r < p; r++ {
			if r == root {
				continue
			}
			out[r] = w.RecvID(c.tag(phG, r))
		}
		return out
	}
	topo := c.sys.Topo
	rootCluster := topo.ClusterOf(cluster.NodeID(root))
	myCluster := w.Cluster()
	local := c.byCluster[myCluster]
	lr := local[0]
	if myCluster == rootCluster {
		lr = root
	}
	if w.Rank() != lr {
		w.SendID(cluster.NodeID(lr), c.tag(phGL, w.Rank()), size, value)
		return nil
	}
	// Cluster root gathers its cluster into a positional slice (indexed
	// like local)...
	pl := c.pools[myCluster]
	part := pl.getPart(len(local))
	for i, r := range local {
		if r == w.Rank() {
			part[i] = value
			continue
		}
		part[i] = w.RecvID(c.tag(phGL, r))
	}
	if myCluster != rootCluster {
		// ... and ships one combined message across the WAN.
		w.SendID(cluster.NodeID(root), c.tag(phG, myCluster), size*len(local), part)
		return nil
	}
	out := make([]any, p)
	for i, r := range local {
		out[r] = part[i]
	}
	pl.putPart(part)
	for cl := 0; cl < topo.Clusters; cl++ {
		if cl == rootCluster {
			continue
		}
		rp := w.RecvID(c.tag(phG, cl)).([]any)
		for i, r := range c.byCluster[cl] {
			out[r] = rp[i]
		}
		pl.putPart(rp)
	}
	return out
}

// AllGather collects every worker's value everywhere.
func (c *Comm) AllGather(w *core.Worker, size int, value any) []any {
	all := c.Gather(w, 0, size, value)
	p := c.sys.Topo.Compute()
	v := c.Bcast(w, 0, size*p, all)
	return v.([]any)
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

// Scatter distributes per-rank values from root: worker r receives
// values[r] (indexed by global rank; only root's values matter). size is
// the per-element wire size.
func (c *Comm) Scatter(w *core.Worker, root int, size int, values []any) any {
	p := c.sys.Topo.Compute()
	if c.strategy == Flat {
		// Tags encode (root, destination): the root is the sender and
		// varies across calls.
		if w.Rank() == root {
			for r := 0; r < p; r++ {
				if r == root {
					continue
				}
				w.SendID(cluster.NodeID(r), c.tag(phS, root*p+r), size, values[r])
			}
			return values[root]
		}
		return w.RecvID(c.tag(phS, root*p+w.Rank()))
	}
	topo := c.sys.Topo
	rootCluster := topo.ClusterOf(cluster.NodeID(root))
	myCluster := w.Cluster()
	local := c.byCluster[myCluster]
	lr := local[0]
	if myCluster == rootCluster {
		lr = root
	}
	pl := c.pools[myCluster]
	switch {
	case w.Rank() == root:
		// One combined message per remote cluster, to its local root.
		for cl := 0; cl < topo.Clusters; cl++ {
			if cl == rootCluster {
				continue
			}
			ranks := c.byCluster[cl]
			part := pl.getPart(len(ranks))
			for i, r := range ranks {
				part[i] = values[r]
			}
			w.SendID(cluster.NodeID(ranks[0]), c.tag(phS, root*topo.Clusters+cl), size*len(ranks), part)
		}
		// Own cluster directly (root is this cluster's scatter sender).
		for _, r := range local {
			if r == root {
				continue
			}
			w.SendID(cluster.NodeID(r), c.tag(phSL, root*p+r), size, values[r])
		}
		return values[root]
	case w.Rank() == lr && myCluster != rootCluster:
		part := w.RecvID(c.tag(phS, root*topo.Clusters+myCluster)).([]any)
		var own any
		for i, r := range local {
			if r == lr {
				own = part[i]
				continue
			}
			w.SendID(cluster.NodeID(r), c.tag(phSL, lr*p+r), size, part[i])
		}
		pl.putPart(part)
		return own
	default:
		return w.RecvID(c.tag(phSL, lr*p+w.Rank()))
	}
}

// AllToAll performs a personalized exchange: worker r sends values[q] to
// every worker q and receives a slice indexed by sender rank. The wide-area
// strategy routes all intercluster traffic through the cluster roots, which
// exchange one combined message per cluster pair (the paper's cluster-level
// message combining applied to a collective). All combined payloads are
// positional slices: a per-cluster part is indexed like that cluster's rank
// list, and a root-to-root bundle is indexed [destination][sender].
func (c *Comm) AllToAll(w *core.Worker, size int, values []any) []any {
	topo := c.sys.Topo
	p := topo.Compute()
	out := make([]any, p)
	out[w.Rank()] = values[w.Rank()]
	if c.strategy == Flat {
		for q := 0; q < p; q++ {
			if q == w.Rank() {
				continue
			}
			w.SendID(cluster.NodeID(q), c.tag(phA, w.Rank()), size, values[q])
		}
		for q := 0; q < p; q++ {
			if q == w.Rank() {
				continue
			}
			out[q] = w.RecvID(c.tag(phA, q))
		}
		return out
	}
	myCluster := w.Cluster()
	local := c.byCluster[myCluster]
	lr := local[0]
	pl := c.pools[myCluster]
	// Intra-cluster legs go direct; intercluster legs go through the
	// cluster roots as combined bundles.
	for q := 0; q < p; q++ {
		if q == w.Rank() {
			continue
		}
		if topo.SameCluster(w.Node, cluster.NodeID(q)) {
			w.SendID(cluster.NodeID(q), c.tag(phA, w.Rank()), size, values[q])
		}
	}
	// Hand our remote-bound values to the cluster root, per remote cluster.
	for cl := 0; cl < topo.Clusters; cl++ {
		if cl == myCluster {
			continue
		}
		ranks := c.byCluster[cl]
		part := pl.getPart(len(ranks))
		for i, q := range ranks {
			part[i] = values[q]
		}
		if w.Rank() == lr {
			// Root keeps its own contribution for the bundle below.
			c.stash[myCluster*topo.Clusters+cl] = part
			continue
		}
		w.SendID(cluster.NodeID(lr), c.tag(phAR, cl*1000+w.Rank()), size*len(ranks), part)
	}
	if w.Rank() == lr {
		// Collect every member's per-cluster parts, bundle, exchange with
		// the other cluster roots, and scatter what comes back.
		for cl := 0; cl < topo.Clusters; cl++ {
			if cl == myCluster {
				continue
			}
			ranks := c.byCluster[cl]
			b := pl.getBundle(len(ranks))
			for di := range b {
				b[di] = pl.getPart(len(local))
			}
			addPart := func(si int, part []any) {
				for di, v := range part {
					b[di][si] = v
				}
			}
			for si, r := range local {
				if r == lr {
					st := myCluster*topo.Clusters + cl
					addPart(si, c.stash[st])
					pl.putPart(c.stash[st])
					c.stash[st] = nil
					continue
				}
				rp := w.RecvID(c.tag(phAR, cl*1000+r)).([]any)
				addPart(si, rp)
				pl.putPart(rp)
			}
			w.SendID(cluster.NodeID(ranks[0]), c.tag(phAB, myCluster),
				size*len(local)*len(ranks), b)
		}
		// Receive the bundles from the other cluster roots and scatter to
		// the local members, in rank order.
		for cl := 0; cl < topo.Clusters; cl++ {
			if cl == myCluster {
				continue
			}
			b := w.RecvID(c.tag(phAB, cl)).([][]any)
			srcRanks := c.byCluster[cl]
			for di, dest := range local {
				senders := b[di]
				if dest == lr {
					for si, v := range senders {
						out[srcRanks[si]] = v
					}
					pl.putPart(senders)
					continue
				}
				w.SendID(cluster.NodeID(dest), c.tag(phAS, cl*1000+dest), size*len(senders), senders)
			}
			pl.putBundle(b)
		}
	} else {
		for cl := 0; cl < topo.Clusters; cl++ {
			if cl == myCluster {
				continue
			}
			senders := w.RecvID(c.tag(phAS, cl*1000+w.Rank())).([]any)
			for si, v := range senders {
				out[c.byCluster[cl][si]] = v
			}
			pl.putPart(senders)
		}
	}
	// Finally the intra-cluster receives.
	for _, q := range local {
		if q == w.Rank() {
			continue
		}
		out[q] = w.RecvID(c.tag(phA, q))
	}
	return out
}
