package coll

import (
	"testing"
	"testing/quick"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/core"
)

func sumCombine(acc, v any) any {
	if acc == nil {
		return v
	}
	return acc.(int) + v.(int)
}

func shapes() []cluster.Topology {
	return []cluster.Topology{
		cluster.DAS(1, 1),
		cluster.DAS(1, 7),
		cluster.DAS(2, 4),
		cluster.DAS(4, 3),
		cluster.Irregular(5, 2, 3),
	}
}

func TestBcastCorrectAllShapesStrategiesRoots(t *testing.T) {
	for _, topo := range shapes() {
		for _, strat := range []Strategy{Flat, WideArea} {
			p := topo.Compute()
			for _, root := range []int{0, p / 2, p - 1} {
				var comm *Comm
				got := make([]any, p)
				sys := core.NewSystem(core.Config{Topology: topo, Params: cluster.DASParams()})
				comm = New(sys, "c", strat)
				sys.SpawnWorkers("w", func(w *core.Worker) {
					got[w.Rank()] = comm.Bcast(w, root, 64, "payload")
				})
				if _, err := sys.Run(); err != nil {
					t.Fatalf("%v %v root=%d: %v", topo, strat, root, err)
				}
				for r, v := range got {
					if v != "payload" {
						t.Fatalf("%v %v root=%d: rank %d got %v", topo, strat, root, r, v)
					}
				}
			}
		}
	}
}

func TestReduceCorrect(t *testing.T) {
	for _, topo := range shapes() {
		for _, strat := range []Strategy{Flat, WideArea} {
			p := topo.Compute()
			root := p - 1
			var result any
			sys := core.NewSystem(core.Config{Topology: topo, Params: cluster.DASParams()})
			comm := New(sys, "c", strat)
			sys.SpawnWorkers("w", func(w *core.Worker) {
				v := comm.Reduce(w, root, 8, w.Rank()+1, sumCombine)
				if w.Rank() == root {
					result = v
				} else if v != nil {
					t.Errorf("non-root got %v", v)
				}
			})
			if _, err := sys.Run(); err != nil {
				t.Fatalf("%v %v: %v", topo, strat, err)
			}
			want := p * (p + 1) / 2
			if result != want {
				t.Fatalf("%v %v: sum %v, want %d", topo, strat, result, want)
			}
		}
	}
}

func TestAllReduceAndBarrier(t *testing.T) {
	topo := cluster.DAS(3, 3)
	for _, strat := range []Strategy{Flat, WideArea} {
		p := topo.Compute()
		got := make([]any, p)
		sys := core.NewSystem(core.Config{Topology: topo, Params: cluster.DASParams()})
		comm := New(sys, "c", strat)
		after := make([]time.Duration, p)
		sys.SpawnWorkers("w", func(w *core.Worker) {
			w.Compute(time.Duration(w.Rank()) * time.Millisecond)
			got[w.Rank()] = comm.AllReduce(w, 8, 1, sumCombine)
			comm.Barrier(w)
			after[w.Rank()] = w.P.Now()
		})
		if _, err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		for r, v := range got {
			if v != p {
				t.Fatalf("%v: rank %d allreduce %v, want %d", strat, r, v, p)
			}
		}
	}
}

func TestGatherAndAllGather(t *testing.T) {
	topo := cluster.DAS(2, 3)
	for _, strat := range []Strategy{Flat, WideArea} {
		p := topo.Compute()
		var rootView []any
		views := make([][]any, p)
		sys := core.NewSystem(core.Config{Topology: topo, Params: cluster.DASParams()})
		comm := New(sys, "c", strat)
		sys.SpawnWorkers("w", func(w *core.Worker) {
			g := comm.Gather(w, 2, 16, 100+w.Rank())
			if w.Rank() == 2 {
				rootView = g
			}
			views[w.Rank()] = comm.AllGather(w, 16, 200+w.Rank())
		})
		if _, err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < p; r++ {
			if rootView[r] != 100+r {
				t.Fatalf("%v: gather[%d] = %v", strat, r, rootView[r])
			}
			for q := 0; q < p; q++ {
				if views[r][q] != 200+q {
					t.Fatalf("%v: allgather at %d, slot %d = %v", strat, r, q, views[r][q])
				}
			}
		}
	}
}

// TestWideAreaUsesOneWANMessagePerCluster is the structural guarantee the
// strategy exists for.
func TestWideAreaUsesOneWANMessagePerCluster(t *testing.T) {
	// Cluster size 6 is deliberately not a power of two: a rank-space
	// binomial tree then crosses cluster boundaries all over the place.
	topo := cluster.DAS(4, 6)
	countInter := func(strat Strategy, op func(c *Comm, w *core.Worker)) int64 {
		sys := core.NewSystem(core.Config{Topology: topo, Params: cluster.DASParams()})
		comm := New(sys, "c", strat)
		sys.SpawnWorkers("w", func(w *core.Worker) { op(comm, w) })
		m, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m.Net.TotalInter().Msgs
	}
	bcast := func(c *Comm, w *core.Worker) { c.Bcast(w, 0, 1024, "x") }
	reduce := func(c *Comm, w *core.Worker) { c.Reduce(w, 0, 8, 1, sumCombine) }
	if got := countInter(WideArea, bcast); got != 3 {
		t.Fatalf("wide-area bcast used %d WAN messages, want 3", got)
	}
	if got := countInter(WideArea, reduce); got != 3 {
		t.Fatalf("wide-area reduce used %d WAN messages, want 3", got)
	}
	if flat := countInter(Flat, bcast); flat <= 3 {
		t.Fatalf("flat bcast used only %d WAN messages; topology-oblivious tree should cross more", flat)
	}
}

func TestWideAreaFasterThanFlat(t *testing.T) {
	topo := cluster.DAS(4, 6)
	elapsed := func(strat Strategy) time.Duration {
		sys := core.NewSystem(core.Config{Topology: topo, Params: cluster.DASParams()})
		comm := New(sys, "c", strat)
		sys.SpawnWorkers("w", func(w *core.Worker) {
			for i := 0; i < 10; i++ {
				comm.Bcast(w, 0, 512, i)
				comm.Barrier(w)
			}
		})
		m, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m.Elapsed
	}
	flat := elapsed(Flat)
	wa := elapsed(WideArea)
	if float64(wa)*1.5 > float64(flat) {
		t.Fatalf("wide-area (%v) not clearly faster than flat (%v)", wa, flat)
	}
}

// TestCollectiveSequencesProperty: random sequences of collectives stay
// correct (matching is purely by per-worker call order).
func TestCollectiveSequencesProperty(t *testing.T) {
	prop := func(seedOps []uint8) bool {
		if len(seedOps) > 12 {
			seedOps = seedOps[:12]
		}
		topo := cluster.DAS(2, 3)
		p := topo.Compute()
		sys := core.NewSystem(core.Config{Topology: topo, Params: cluster.DASParams()})
		comm := New(sys, "c", WideArea)
		okAll := true
		sys.SpawnWorkers("w", func(w *core.Worker) {
			for i, op := range seedOps {
				switch op % 3 {
				case 0:
					if comm.Bcast(w, int(op)%p, 32, i) != i {
						okAll = false
					}
				case 1:
					v := comm.AllReduce(w, 8, 1, sumCombine)
					if v != p {
						okAll = false
					}
				case 2:
					comm.Barrier(w)
				}
			}
		})
		if _, err := sys.Run(); err != nil {
			return false
		}
		return okAll
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestScatterCorrect(t *testing.T) {
	for _, topo := range shapes() {
		for _, strat := range []Strategy{Flat, WideArea} {
			p := topo.Compute()
			for _, root := range []int{0, p - 1} {
				values := make([]any, p)
				for r := 0; r < p; r++ {
					values[r] = 1000 + r
				}
				got := make([]any, p)
				sys := core.NewSystem(core.Config{Topology: topo, Params: cluster.DASParams()})
				comm := New(sys, "c", strat)
				sys.SpawnWorkers("w", func(w *core.Worker) {
					in := values
					if w.Rank() != root {
						in = nil // only the root's values matter
					}
					got[w.Rank()] = comm.Scatter(w, root, 16, in)
				})
				if _, err := sys.Run(); err != nil {
					t.Fatalf("%v %v root=%d: %v", topo, strat, root, err)
				}
				for r := 0; r < p; r++ {
					if got[r] != 1000+r {
						t.Fatalf("%v %v root=%d: rank %d got %v", topo, strat, root, r, got[r])
					}
				}
			}
		}
	}
}

func TestAllToAllCorrect(t *testing.T) {
	for _, topo := range shapes() {
		for _, strat := range []Strategy{Flat, WideArea} {
			p := topo.Compute()
			got := make([][]any, p)
			sys := core.NewSystem(core.Config{Topology: topo, Params: cluster.DASParams()})
			comm := New(sys, "c", strat)
			sys.SpawnWorkers("w", func(w *core.Worker) {
				values := make([]any, p)
				for q := 0; q < p; q++ {
					values[q] = w.Rank()*1000 + q // value sender r sends to q
				}
				got[w.Rank()] = comm.AllToAll(w, 8, values)
			})
			if _, err := sys.Run(); err != nil {
				t.Fatalf("%v %v: %v", topo, strat, err)
			}
			for r := 0; r < p; r++ {
				for s := 0; s < p; s++ {
					if got[r][s] != s*1000+r {
						t.Fatalf("%v %v: rank %d slot %d = %v, want %d", topo, strat, r, s, got[r][s], s*1000+r)
					}
				}
			}
		}
	}
}

func TestAllToAllWANBundles(t *testing.T) {
	// Wide-area AllToAll exchanges exactly one bundle per ordered cluster
	// pair: C*(C-1) WAN messages, whatever the per-cluster membership.
	topo := cluster.DAS(4, 6)
	p := topo.Compute()
	sys := core.NewSystem(core.Config{Topology: topo, Params: cluster.DASParams()})
	comm := New(sys, "c", WideArea)
	sys.SpawnWorkers("w", func(w *core.Worker) {
		values := make([]any, p)
		for q := range values {
			values[q] = q
		}
		comm.AllToAll(w, 8, values)
	})
	m, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Net.TotalInter().Msgs; got != 12 {
		t.Fatalf("wide-area alltoall used %d WAN messages, want 12", got)
	}
}
