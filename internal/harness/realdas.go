package harness

import (
	"fmt"

	"albatross/internal/apps/asp"
	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/orca"
)

// RealDAS runs every application on the full, irregular DAS machine of the
// paper's Figure 17 — VU Amsterdam's 64 nodes plus three 24-node sites, 136
// compute nodes in total. The paper could not measure this configuration
// (only two sites were operational and the experimentation system used
// equal splits); the simulator can. A uniform 4x34 machine with the same
// node count is shown next to it: the difference isolates the effect of the
// uneven cluster sizes.
func RealDAS() (*Report, error) {
	t := &Table{
		ID:      "real-das",
		Title:   "Full DAS (64+24+24+24 nodes) vs uniform 4x34, speedups at 136 CPUs",
		Headers: []string{"App", "real orig", "real opt", "uniform orig", "uniform opt"},
	}
	real := cluster.DASReal()
	uniform := cluster.DAS(4, 34)
	topos := []cluster.Topology{real, uniform}
	// speedups[app][0..3]: real orig, real opt, uniform orig, uniform opt.
	speedups := make([][4]float64, len(Apps))
	var tasks []func() error
	for ai, app := range Apps {
		for ti, topo := range topos {
			for vi, optimized := range []bool{false, true} {
				ai, ti, vi, app, topo, optimized := ai, ti, vi, app, topo, optimized
				tasks = append(tasks, func() error {
					sp, err := speedupOnTopology(app, topo, optimized)
					if err != nil {
						return err
					}
					speedups[ai][2*ti+vi] = sp
					return nil
				})
			}
		}
	}
	if err := scheduler().Do(tasks...); err != nil {
		return nil, err
	}
	for ai, app := range Apps {
		row := []string{app.Name}
		for _, sp := range speedups[ai] {
			row = append(row, fmt.Sprintf("%.1f", sp))
		}
		t.Rows = append(t.Rows, row)
	}
	return &Report{ID: "real-das", Title: t.Title, Tables: []*Table{t},
		Notes: []string{"the paper's testbed could not run this shape; the calibrated simulator can"}}, nil
}

// speedupOnTopology measures one variant on an arbitrary topology, with the
// usual 1-CPU baseline.
func speedupOnTopology(app AppSpec, topo cluster.Topology, optimized bool) (float64, error) {
	t1, err := Run(app, 1, 1, optimized)
	if err != nil {
		return 0, err
	}
	var seqr orca.Sequencer
	if app.Sequencer != nil {
		seqr = app.Sequencer(optimized)
	}
	sys := core.NewSystem(core.Config{Topology: topo, Params: Params, Sequencer: seqr})
	verify := app.Build(sys, optimized)
	m, err := sys.Run()
	if err != nil {
		return 0, fmt.Errorf("%s on %v opt=%v: %w", app.Name, topo, optimized, err)
	}
	if err := verify(); err != nil {
		return 0, fmt.Errorf("%s on %v opt=%v: %w", app.Name, topo, optimized, err)
	}
	if m.Elapsed <= 0 {
		return 0, fmt.Errorf("%s on %v opt=%v: degenerate run with non-positive elapsed time %v",
			app.Name, topo, optimized, m.Elapsed)
	}
	return t1.Elapsed.Seconds() / m.Elapsed.Seconds(), nil
}

// aspSpeedupAtSize runs ASP with a non-default matrix size on 4x15 and on
// one CPU, returning the speedup.
func aspSpeedupAtSize(n int, optimized bool) (float64, error) {
	cfg := asp.Default()
	cfg.N = n
	run := func(topo cluster.Topology) (float64, error) {
		sys := core.NewSystem(core.Config{
			Topology:  topo,
			Params:    Params,
			Sequencer: asp.Sequencer(optimized),
		})
		verify := asp.Build(sys, cfg)
		m, err := sys.Run()
		if err != nil {
			return 0, err
		}
		if err := verify(); err != nil {
			return 0, err
		}
		return m.Elapsed.Seconds(), nil
	}
	t1, err := run(cluster.DAS(1, 1))
	if err != nil {
		return 0, err
	}
	tp, err := run(cluster.DAS(4, 15))
	if err != nil {
		return 0, err
	}
	if tp <= 0 {
		return 0, fmt.Errorf("asp n=%d opt=%v: degenerate run with non-positive elapsed time", n, optimized)
	}
	return t1 / tp, nil
}
