package harness

import (
	"fmt"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/netsim"
	"albatross/internal/orca"
	"albatross/internal/sim"
)

// FigureCPUs is the paper's x-axis: total CPU counts per speedup figure.
var FigureCPUs = []int{8, 16, 32, 60}

// FigureClusters are the cluster counts plotted as separate lines.
var FigureClusters = []int{1, 2, 4}

// SpeedupFigure measures one application variant over the paper's grid.
// The grid's runs execute concurrently through the scheduler; the series
// are then rendered sequentially from the memoized results.
func SpeedupFigure(id string, app AppSpec, optimized bool) (*Report, error) {
	variant := "original"
	if optimized {
		variant = "optimized"
	}
	cfgs := []RunConfig{{app, 1, 1, optimized}}
	for _, c := range FigureClusters {
		for _, cpus := range FigureCPUs {
			if cpus%c == 0 {
				cfgs = append(cfgs, RunConfig{app, c, cpus / c, optimized})
			}
		}
	}
	Prefetch(cfgs)
	fig := &Figure{ID: id, Title: fmt.Sprintf("Speedup of %s %s", variant, app.Name), MaxX: 64, MaxY: 64}
	for _, c := range FigureClusters {
		s := Series{Label: fmt.Sprintf("%d Cluster(s)", c)}
		if c == 1 {
			s.Points = append(s.Points, Point{CPUs: 1, Speedup: 1})
		}
		for _, cpus := range FigureCPUs {
			if cpus%c != 0 {
				continue
			}
			sp, err := Speedup(app, c, cpus/c, optimized)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{CPUs: cpus, Speedup: sp})
		}
		fig.Series = append(fig.Series, s)
	}
	return &Report{ID: id, Title: fig.Title, Figure: fig}, nil
}

// figSpec maps the paper's figure numbers onto app variants.
type figSpec struct {
	id        string
	app       string
	optimized bool
}

var speedupFigures = []figSpec{
	{"fig1", "Water", false}, {"fig2", "Water", true},
	{"fig3", "TSP", false}, {"fig4", "TSP", true},
	{"fig5", "ASP", false}, {"fig6", "ASP", true},
	{"fig7", "ATPG", false}, {"fig8", "ATPG", true},
	{"fig9", "RA", false}, {"fig10", "RA", true},
	{"fig11", "IDA*", false},
	{"fig12", "ACP", false},
	{"fig13", "SOR", false}, {"fig14", "SOR", true},
}

// Table1 reproduces the paper's low-level Orca primitive measurements:
// null-RPC and replicated-update latency plus stream bandwidth, over the
// LAN and over the WAN.
func Table1() (*Report, error) {
	t := &Table{
		ID:      "table1",
		Title:   "Application-to-application performance of the low-level primitives",
		Headers: []string{"Benchmark", "LAN latency", "WAN latency", "LAN bandwidth", "WAN bandwidth"},
	}
	// The six microbenchmarks are independent simulations; run them
	// concurrently and assemble the rows afterwards.
	var lanRPC, wanRPC, lanB, wanB time.Duration
	var lanBW, wanBW float64
	err := scheduler().Do(
		func() error { lanRPC = measureRPCLatency(1); return nil },
		func() error { wanRPC = measureRPCLatency(2); return nil },
		func() error { lanB = measureBcastLatency(1); return nil },
		func() error { wanB = measureBcastLatency(2); return nil },
		func() error { lanBW = measureBandwidth(1); return nil },
		func() error { wanBW = measureBandwidth(2); return nil },
	)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows,
		[]string{"RPC (non-replicated)", fmtUS(lanRPC), fmtUS(wanRPC), fmtMbit(lanBW), fmtMbit(wanBW)},
		[]string{"Broadcast (replicated)", fmtUS(lanB), fmtUS(wanB), fmtMbit(lanBW), fmtMbit(wanBW)},
	)
	return &Report{ID: "table1", Title: t.Title, Tables: []*Table{t},
		Notes: []string{"paper: RPC 40us/2.7ms, bcast 65us/3.0ms, 208/4.53 Mbit/s"}}, nil
}

func fmtUS(d time.Duration) string {
	if d >= time.Millisecond {
		return fmt.Sprintf("%.2f ms", float64(d)/float64(time.Millisecond))
	}
	return fmt.Sprintf("%.0f us", float64(d)/float64(time.Microsecond))
}

func fmtMbit(bps float64) string { return fmt.Sprintf("%.2f Mbit/s", bps*8/1e6) }

// measureRPCLatency times a null remote invocation; with two clusters the
// owner is in the other cluster, so the call crosses the WAN twice.
func measureRPCLatency(clusters int) time.Duration {
	sys := core.NewSystem(core.Config{Topology: cluster.DAS(clusters, 2), Params: Params})
	obj := sys.RTS.NewObject("null", 0, struct{}{})
	var rtt time.Duration
	caller := cluster.NodeID(1)
	if clusters == 2 {
		caller = 2
	}
	sys.SpawnAt(caller, "caller", func(w *core.Worker) {
		const reps = 10
		start := w.P.Now()
		for i := 0; i < reps; i++ {
			w.Invoke(obj, orca.Op{Name: "null", Apply: func(s any) any { return nil }})
		}
		rtt = (w.P.Now() - start) / reps
	})
	if _, err := sys.Run(); err != nil {
		panic(err)
	}
	return rtt
}

// measureBcastLatency times a null replicated update on a 60-replica object
// (paper Table 1's replicated-object benchmark).
func measureBcastLatency(clusters int) time.Duration {
	sys := core.NewSystem(core.Config{Topology: cluster.DAS(clusters, 60/clusters), Params: Params})
	obj := sys.RTS.NewReplicated("null", func(cluster.NodeID) any { return struct{}{} })
	var lat time.Duration
	writer := cluster.NodeID(1)
	sys.SpawnAt(writer, "writer", func(w *core.Worker) {
		const reps = 10
		start := w.P.Now()
		for i := 0; i < reps; i++ {
			w.Invoke(obj, orca.Op{Name: "null", Apply: func(s any) any { return nil }})
		}
		lat = (w.P.Now() - start) / reps
	})
	if _, err := sys.Run(); err != nil {
		panic(err)
	}
	return lat
}

// measureBandwidth streams 100 KB messages point-to-point (across the WAN
// when clusters == 2) and reports achieved bytes/second.
func measureBandwidth(clusters int) float64 {
	sys := core.NewSystem(core.Config{Topology: cluster.DAS(clusters, 2), Params: Params})
	dst := cluster.NodeID(1)
	if clusters == 2 {
		dst = 2
	}
	const chunk = 100 * 1024
	const nmsg = 20
	var elapsed time.Duration
	doneF := sim.NewFuture(sys.Engine, "bw-done")
	sys.SpawnAt(dst, "sink", func(w *core.Worker) {
		for i := 0; i < nmsg; i++ {
			w.Recv(orca.Tag{Op: "bw"})
		}
		doneF.Set(nil)
	})
	sys.SpawnAt(0, "src", func(w *core.Worker) {
		for i := 0; i < nmsg; i++ {
			w.Send(dst, orca.Tag{Op: "bw"}, chunk, nil)
		}
		doneF.Await(w.P)
		elapsed = w.P.Now()
	})
	if _, err := sys.Run(); err != nil {
		panic(err)
	}
	return float64(nmsg*chunk) / elapsed.Seconds()
}

// Table2 reproduces the application characteristics on 64 processors of a
// single cluster: point-to-point operations and broadcasts per second,
// their payload volume, and the 64-CPU speedup.
func Table2() (*Report, error) {
	t := &Table{
		ID:      "table2",
		Title:   "Application characteristics on 64 processors, one cluster",
		Headers: []string{"program", "# RPC/s", "kbytes/s", "# bcast/s", "kbytes/s", "speedup"},
	}
	var cfgs []RunConfig
	for _, app := range Apps {
		cfgs = append(cfgs, RunConfig{app, 1, 64, false}, RunConfig{app, 1, 1, false})
	}
	Prefetch(cfgs)
	for _, app := range Apps {
		m, err := Run(app, 1, 64, false)
		if err != nil {
			return nil, err
		}
		t1, err := Run(app, 1, 1, false)
		if err != nil {
			return nil, err
		}
		secs := m.Elapsed.Seconds()
		rpcs := m.Ops.RPCs + m.Ops.Requests + m.Ops.DataMsgs
		rpcKB := float64(m.Ops.RPCBytes+m.Ops.DataBytes) / 1024
		t.Rows = append(t.Rows, []string{
			app.Name,
			fmt.Sprintf("%.0f", float64(rpcs)/secs),
			fmt.Sprintf("%.0f", rpcKB/secs),
			fmt.Sprintf("%.0f", float64(m.Ops.Bcasts)/secs),
			fmt.Sprintf("%.0f", float64(m.Ops.BcastBytes)/1024/secs),
			fmt.Sprintf("%.1f", t1.Elapsed.Seconds()/secs),
		})
	}
	return &Report{ID: "table2", Title: t.Title, Tables: []*Table{t}}, nil
}

// trafficTable builds the paper's intercluster traffic accounting (Tables 4
// and 5): P=64 over C=4 clusters, per application.
func trafficTable(id string, optimized bool) (*Report, error) {
	when := "Before"
	if optimized {
		when = "After"
	}
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("Intercluster Traffic %s Optimization (P=64, C=4)", when),
		Headers: []string{"Application", "# RPC", "RPC kbyte", "# bcast", "bcast kbyte"},
	}
	var cfgs []RunConfig
	for _, app := range Apps {
		if optimized && app.Name == "ACP" {
			continue // mirrors the skip in the render loop below
		}
		cfgs = append(cfgs, RunConfig{app, 4, 16, optimized})
	}
	Prefetch(cfgs)
	for _, app := range Apps {
		if optimized && app.Name == "ACP" {
			// The paper implemented no ACP optimization; its Table 5 row
			// is empty. We still measure our async-broadcast extension in
			// the ablation benches, but mirror the paper here.
			t.Rows = append(t.Rows, []string{"ACP'", "-", "-", "-", "-"})
			continue
		}
		m, err := Run(app, 4, 16, optimized)
		if err != nil {
			return nil, err
		}
		rpc := m.Net.InterRPC()
		data := m.Net.InterData()
		bc := m.Net.InterBcast()
		ctl := m.Net.Inter(netsim.KindControl)
		name := app.Name
		if optimized {
			name += "'"
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", rpc.Msgs+data.Msgs),
			fmt.Sprintf("%.0f", rpc.KBytes()+data.KBytes()),
			fmt.Sprintf("%d", bc.Msgs+ctl.Msgs),
			fmt.Sprintf("%.0f", bc.KBytes()+ctl.KBytes()),
		})
	}
	return &Report{ID: id, Title: t.Title, Tables: []*Table{t}}, nil
}

// barTable runs the bar-chart summaries (Figures 15 and 16) as tables.
func barTable(id string, shapes []barShape) (*Report, error) {
	headers := []string{"App"}
	for _, s := range shapes {
		headers = append(headers, s.label)
	}
	t := &Table{ID: id, Title: barTitle(id), Headers: headers}
	var cfgs []RunConfig
	for _, app := range Apps {
		for _, s := range shapes {
			cfgs = append(cfgs, speedupConfigs(app, s.clusters, s.perCluster, s.optimized)...)
		}
	}
	Prefetch(cfgs)
	for _, app := range Apps {
		row := []string{app.Name}
		for _, s := range shapes {
			sp, err := Speedup(app, s.clusters, s.perCluster, s.optimized)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.1f", sp))
		}
		t.Rows = append(t.Rows, row)
	}
	return &Report{ID: id, Title: t.Title, Tables: []*Table{t}}, nil
}

type barShape struct {
	label      string
	clusters   int
	perCluster int
	optimized  bool
}

func barTitle(id string) string {
	if id == "fig15" {
		return "Four-Cluster Performance Improvements on 15 and 60 processors"
	}
	return "Two-Cluster Performance Improvements on 16 and 32 processors"
}

var fig15Shapes = []barShape{
	{"LowerBound 15/1 orig", 1, 15, false},
	{"Original 60/4", 4, 15, false},
	{"Optimized 60/4", 4, 15, true},
	{"UpperBound 60/1 opt", 1, 60, true},
}

var fig16Shapes = []barShape{
	{"Original 16/1", 1, 16, false},
	{"Original 32/2", 2, 16, false},
	{"Optimized 32/2", 2, 16, true},
	{"Optimized 32/1", 1, 32, true},
}

// Experiment is one runnable, named reproduction target.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*Report, error)
}

// Experiments enumerates every table and figure of the paper's evaluation.
func Experiments() []Experiment {
	var out []Experiment
	out = append(out, Experiment{"table1", "Low-level Orca primitive performance", Table1})
	out = append(out, Experiment{"table2", "Application characteristics (64 CPUs, 1 cluster)", Table2})
	for _, fs := range speedupFigures {
		fs := fs
		app, err := AppByName(fs.app)
		if err != nil {
			panic(err)
		}
		variant := "original"
		if fs.optimized {
			variant = "optimized"
		}
		out = append(out, Experiment{fs.id,
			fmt.Sprintf("Speedup of %s %s", variant, fs.app),
			func() (*Report, error) { return SpeedupFigure(fs.id, app, fs.optimized) }})
	}
	out = append(out, Experiment{"fig15", barTitle("fig15"),
		func() (*Report, error) { return barTable("fig15", fig15Shapes) }})
	out = append(out, Experiment{"fig16", barTitle("fig16"),
		func() (*Report, error) { return barTable("fig16", fig16Shapes) }})
	out = append(out, Experiment{"table4", "Intercluster traffic before optimization",
		func() (*Report, error) { return trafficTable("table4", false) }})
	out = append(out, Experiment{"table5", "Intercluster traffic after optimization",
		func() (*Report, error) { return trafficTable("table5", true) }})
	out = append(out, extendedExperiments()...)
	return out
}

// extendedExperiments are the ablation and sensitivity studies that go
// beyond the paper's published artifacts (its stated future work).
func extendedExperiments() []Experiment {
	exps := []Experiment{
		{"abl-water", "Ablation: Water cache vs reduction", AblationWater},
		{"abl-sor", "Ablation: SOR exchange skipping vs convergence", AblationSOR},
		{"abl-ra", "Ablation: RA combining levels", AblationRA},
		{"abl-ida", "Ablation: IDA* stealing policies", AblationIDA},
		{"abl-seq", "Ablation: sequencer protocols", AblationSequencer},
		{"abl-tsp", "Ablation: TSP job grain", AblationTSP},
		{"sens-atpg", "Sensitivity: ATPG on slow networks (paper 4.4)", SensitivityATPG},
		{"real-das", "Extension: the full irregular DAS of Figure 17", RealDAS},
		{"coll", "Extension: cluster-aware collective operations", Collectives},
		{"sens-clusters", "Sensitivity: cluster count at 48 CPUs", SensitivityClusters},
		{"sens-size", "Sensitivity: ASP problem size (grain)", SensitivitySize},
		{"sens-congestion", "Sensitivity: congestion waves and loaded gateways", SensitivityCongestion},
		{"transport", "Extension: gateway frame coalescing + striping (orig / app-opt / transport-opt)", TransportReport},
	}
	for _, name := range []string{"Water", "SOR", "RA"} {
		name := name
		exps = append(exps, Experiment{
			"sens-" + name,
			"Sensitivity: " + name + " vs WAN quality",
			func() (*Report, error) { return SensitivityWAN(name) },
		})
	}
	return exps
}

// ExperimentByID finds a registered experiment.
func ExperimentByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q", id)
}
