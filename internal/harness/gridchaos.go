package harness

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/faults"
	"albatross/internal/orca"
	"albatross/internal/sim"
)

// Grid-scale chaos: the classic chaos sweep (loss x outage) extended to
// declarative topologies and hard partitions. A partition cuts backbone
// segment 0 — the physical link between the first two backbone roots — in
// both directions; on a ring backbone the network reroutes the long way
// round, on a redundant mesh it detours, and where no alternate exists
// gateways hold traffic until the cut heals. The reliability layer recovers
// whatever the hold queues age out, so every application must still complete
// and verify — availability is lost only when a scenario never heals.

// chaosPlanTopo extends chaosPlan with the spec's partition window, derived
// from the topology's backbone graph (or, on the implicit full mesh, the
// directed pair 0-1 in both directions).
func chaosPlanTopo(spec ChaosSpec, topo cluster.Topology) faults.Plan {
	pl := chaosPlan(spec)
	if spec.PartitionDur <= 0 {
		return pl
	}
	if topo.WAN != nil {
		pl.LinkDowns = faults.CutRingSegment(topo.WAN, 0, spec.PartitionStart, spec.PartitionDur)
	} else {
		pl.LinkDowns = []faults.LinkDown{
			{From: 0, To: 1, Start: spec.PartitionStart, Duration: spec.PartitionDur},
			{From: 1, To: 0, Start: spec.PartitionStart, Duration: spec.PartitionDur},
		}
	}
	return pl
}

// chaosRelConfig sizes the ARQ retransmit timeout to the topology. The
// default 10ms RTO suits the flat DAS mesh, but a multi-hop backbone's
// round trip can exceed it many times over — every envelope would then time
// out before its ack returned, and the sweep would measure a spurious
// retransmission storm instead of fault recovery. The RTO floor is set to
// twice the worst-case routed round trip (pure link latency; serialization
// and queueing ride on the doubling).
func chaosRelConfig(topo cluster.Topology) orca.RelConfig {
	g := topo.WAN
	if g == nil {
		return orca.RelConfig{}
	}
	classOf := make(map[[2]int]int, 2*len(g.Links))
	for _, l := range g.Links {
		classOf[[2]int{l.A, l.B}] = l.Class
		classOf[[2]int{l.B, l.A}] = l.Class
	}
	var worst time.Duration
	for u := 0; u < topo.Clusters; u++ {
		for d := 0; d < topo.Clusters; d++ {
			if u == d {
				continue
			}
			var path time.Duration
			for cur := u; cur != d; {
				next := g.Next(cur, d)
				path += g.Classes[classOf[[2]int{cur, next}]].Latency
				cur = next
			}
			if path > worst {
				worst = path
			}
		}
	}
	return orca.RelConfig{RTO: 4 * worst} // 2x the round trip
}

// ChaosRunTopo executes one application under the fault scenario on an
// arbitrary topology — including partitions of its backbone graph — with an
// explicit engine shard count, and verifies the result. Failures carry the
// reliability layer's stalled-channel diagnosis in the error text.
func ChaosRunTopo(app AppSpec, topo cluster.Topology, optimized bool, spec ChaosSpec, shards int) (ChaosResult, error) {
	var res ChaosResult
	in, err := faults.NewInjector(chaosPlanTopo(spec, topo))
	if err != nil {
		return res, fmt.Errorf("chaos %s: %w", app.Name, err)
	}
	var seqr orca.Sequencer
	if app.Sequencer != nil {
		seqr = app.Sequencer(optimized)
	}
	if !app.Shardable {
		shards = 0
	}
	sys := core.NewSystem(core.Config{
		Topology:  topo,
		Params:    Params,
		Sequencer: seqr,
		Shards:    shards,
	})
	sys.Net.SetFaultPolicy(in)
	sys.RTS.EnableReliability(chaosRelConfig(topo))
	sys.Engine.SetDeadline(chaosDeadline)
	verify := app.Build(sys, optimized)
	wall := time.Now()
	m, err := sys.Run()
	ran := time.Since(wall)
	res.Metrics, res.Rel, res.Faults = m, sys.RTS.RelStats(), in.Counters()
	res.Stalled = sys.RTS.StalledChannels()
	tag := fmt.Sprintf("%s on %s opt=%v loss=%g outage=%v partition=[%v,+%v]",
		app.Name, topo, optimized, spec.Loss, spec.Outage, spec.PartitionStart, spec.PartitionDur)
	if err != nil {
		if len(res.Stalled) > 0 {
			return res, fmt.Errorf("chaos %s: %w; stalled channels: %s",
				tag, err, strings.Join(res.Stalled, ", "))
		}
		return res, fmt.Errorf("chaos %s: %w", tag, err)
	}
	if err := verify(); err != nil {
		return res, fmt.Errorf("chaos %s: %w", tag, err)
	}
	if st := sys.ShardStats(); st != nil {
		recordShardUsage(app.Name, st, m.Elapsed, ran)
	}
	return res, nil
}

// gridScenario is one row of the grid chaos sweep.
type gridScenario struct {
	name string
	spec ChaosSpec
}

// gridScenarios is the loss x outage x partition sweep. The partition
// window follows the acceptance scenario: backbone cut at t=1s, heal at
// t=3s.
func gridScenarios(quick bool) []gridScenario {
	partition := ChaosSpec{PartitionStart: time.Second, PartitionDur: 2 * time.Second}
	all := []gridScenario{
		{"baseline", ChaosSpec{}},
		{"loss 1%", ChaosSpec{Loss: 0.01}},
		{"loss 1% + 2s outage", ChaosSpec{Loss: 0.01, Outage: 2 * time.Second}},
		{"partition 1s..3s", partition},
		{"partition + loss 1%", ChaosSpec{Loss: 0.01, PartitionStart: partition.PartitionStart, PartitionDur: partition.PartitionDur}},
	}
	if quick {
		return []gridScenario{all[0], all[1], all[3]}
	}
	return all
}

// unavailable classifies the run errors that count against availability
// (the run could not complete before the chaos deadline, or stalled) as
// opposed to genuine harness failures (bad topology, verification mismatch).
func unavailable(err error) (string, bool) {
	var dl *sim.DeadlineError
	if errors.As(err, &dl) {
		return "deadline", true
	}
	var dk *sim.DeadlockError
	if errors.As(err, &dk) {
		return "deadlock", true
	}
	return "", false
}

// GridChaosReport sweeps loss x outage x backbone-partition scenarios over
// all eight applications (original variants) on the given topology and
// renders three tables: an SLO-style availability/completion table (elapsed
// time per app, or the structured reason it became unavailable), the
// recovery-machinery tallies per scenario (reroutes, held and dropped
// messages, retransmissions, duplicate suppressions, stalled channels), and
// SOR's per-link-class degradation across scenarios. The shard count follows
// the harness-wide SetShards setting.
func GridChaosReport(name string, topo cluster.Topology, quick bool) (*Report, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	scenarios := gridScenarios(quick)

	avail := &Table{
		ID:    "grid-avail",
		Title: "availability and completion time per application",
		Headers: append([]string{"scenario"}, func() []string {
			var hs []string
			for _, app := range Apps {
				hs = append(hs, app.Name)
			}
			return append(hs, "avail")
		}()...),
	}
	recovery := &Table{
		ID:    "grid-recovery",
		Title: "recovery machinery engaged (summed over applications)",
		Headers: []string{"scenario", "reroutes", "held", "hold-drops",
			"retransmits", "dup-dropped", "give-ups", "stalled"},
	}
	classes := &Table{
		ID:      "grid-classes",
		Title:   "per-link-class degradation (SOR original)",
		Headers: []string{"scenario", "class", "xmits", "busy", "mean-wait", "p99-wait"},
	}

	// Collect-then-render: all runs go through the scheduler, then rows are
	// formatted sequentially so output is identical at any parallelism.
	type cell struct {
		res    ChaosResult
		reason string // non-empty when the scenario made the app unavailable
	}
	results := make([][]cell, len(scenarios))
	var tasks []func() error
	for i, sc := range scenarios {
		results[i] = make([]cell, len(Apps))
		for j, app := range Apps {
			i, j, sc, app := i, j, sc, app
			tasks = append(tasks, func() error {
				res, err := ChaosRunTopo(app, topo, false, sc.spec, effectiveShards(app, topo.Clusters))
				if err != nil {
					reason, ok := unavailable(err)
					if !ok {
						return err
					}
					results[i][j] = cell{res, reason}
					return nil
				}
				results[i][j] = cell{res, ""}
				return nil
			})
		}
	}
	if err := scheduler().Do(tasks...); err != nil {
		return nil, err
	}

	sorCol := -1
	for j, app := range Apps {
		if app.Name == "SOR" {
			sorCol = j
		}
	}
	for i, sc := range scenarios {
		row := []string{sc.name}
		up := 0
		var reroutes, held, holdDrops int64
		var retransmits, dupDropped, giveUps uint64
		stalled := 0
		for j := range Apps {
			c := results[i][j]
			if c.reason != "" {
				row = append(row, "UNAVAIL ("+c.reason+")")
			} else {
				row = append(row, fmt.Sprintf("%.3fs", c.res.Metrics.Elapsed.Seconds()))
				up++
			}
			reroutes += c.res.Metrics.Net.Reroutes()
			held += c.res.Metrics.Net.HeldMsgs()
			holdDrops += c.res.Metrics.Net.HoldDrops()
			retransmits += c.res.Rel.Retransmits
			dupDropped += c.res.Rel.DupDropped
			giveUps += c.res.Rel.GiveUps
			stalled += len(c.res.Stalled)
		}
		row = append(row, fmt.Sprintf("%d/%d", up, len(Apps)))
		avail.Rows = append(avail.Rows, row)

		recovery.Rows = append(recovery.Rows, []string{
			sc.name,
			fmt.Sprintf("%d", reroutes),
			fmt.Sprintf("%d", held),
			fmt.Sprintf("%d", holdDrops),
			fmt.Sprintf("%d", retransmits),
			fmt.Sprintf("%d", dupDropped),
			fmt.Sprintf("%d", giveUps),
			fmt.Sprintf("%d", stalled),
		})

		if sorCol >= 0 && results[i][sorCol].reason == "" {
			for _, cr := range results[i][sorCol].res.Metrics.Classes {
				classes.Rows = append(classes.Rows, []string{
					sc.name, cr.Class,
					fmt.Sprintf("%d", cr.Xmits),
					roundDur(cr.Busy),
					roundDur(cr.MeanWait),
					roundDur(cr.P99Wait),
				})
			}
		}
	}

	return &Report{
		ID:     "grid-chaos",
		Title:  fmt.Sprintf("grid-scale fault tolerance on %s (%d clusters, %d compute nodes)", name, topo.Clusters, topo.Compute()),
		Tables: []*Table{avail, recovery, classes},
		Notes: []string{
			"partition cuts backbone segment 0 (first root pair) in both directions; ring backbones reroute the long way round, redundant meshes detour, and gateways hold what cannot be routed until the cut heals",
			fmt.Sprintf("fault seed %#x; outage crashes cluster 1's gateway at %v; all completed runs verified against sequential references", uint64(chaosSeed), chaosOutageStart),
		},
	}, nil
}
