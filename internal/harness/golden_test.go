package harness

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/orca"
)

// update rewrites the golden files from the current engine instead of
// comparing against them: go test ./internal/harness -run Golden -update.
// Only use it when a deliberate protocol change moves recorded timings (the
// LP-pinned sequencer rewrite did); the diff is the review surface.
var update = flag.Bool("update", false, "rewrite testdata golden files from the current engine")

// goldenOutput renders an experiment in the exact format stored under
// testdata: the human report, a separator, then the CSV data.
func goldenOutput(t *testing.T, id string) string {
	t.Helper()
	e, err := ExperimentByID(id)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return rep.Render() + "\n--- CSV ---\n" + rep.CSV()
}

// TestGoldenReports proves the engine rebuild changed no observable result:
// the fig5 (ASP, broadcast-heavy) and fig7 (ATPG, RPC-heavy) reports must be
// byte-identical to the testdata captured from the pre-rebuild engine, and
// identical whether the experiment's runs execute sequentially or on eight
// concurrent workers.
func TestGoldenReports(t *testing.T) {
	if testing.Short() {
		t.Skip("golden experiments are long in -short mode")
	}
	for _, id := range []string{"fig5", "fig7"} {
		path := filepath.Join("testdata", "golden_"+id+".txt")
		if *update {
			ResetCache()
			if err := os.WriteFile(path, []byte(goldenOutput(t, id)), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 8} {
			ResetCache()
			prev := SetParallelism(workers)
			got := goldenOutput(t, id)
			SetParallelism(prev)
			if got != string(want) {
				t.Errorf("%s at parallelism %d: output differs from golden file\n got:\n%s\nwant:\n%s",
					id, workers, got, want)
			}
		}
	}
	ResetCache()
}

// runFresh executes one configuration on a brand-new system (no run cache)
// and reports both the metrics and how many events the engine dispatched.
func runFresh(t *testing.T, appName string, clusters, perCluster int) (core.Metrics, uint64) {
	t.Helper()
	app, err := AppByName(appName)
	if err != nil {
		t.Fatal(err)
	}
	var seqr orca.Sequencer
	if app.Sequencer != nil {
		seqr = app.Sequencer(false)
	}
	sys := core.NewSystem(core.Config{
		Topology:  cluster.DAS(clusters, perCluster),
		Params:    Params,
		Sequencer: seqr,
	})
	verify := app.Build(sys, false)
	m, err := sys.Run()
	if err != nil {
		t.Fatalf("%s: %v", appName, err)
	}
	if err := verify(); err != nil {
		t.Fatalf("%s: %v", appName, err)
	}
	return m, sys.Engine.Dispatched()
}

// TestDeterministicMetrics runs the same seeded configuration three times on
// fresh systems and requires the virtual end time AND the dispatched-event
// count to match exactly: not just the same answer, the same event-by-event
// schedule.
func TestDeterministicMetrics(t *testing.T) {
	for _, appName := range []string{"ASP", "SOR", "TSP"} {
		var m0 core.Metrics
		var d0 uint64
		for i := 0; i < 3; i++ {
			m, d := runFresh(t, appName, 2, 4)
			if i == 0 {
				m0, d0 = m, d
				continue
			}
			if m.Elapsed != m0.Elapsed {
				t.Errorf("%s run %d: elapsed %v, want %v", appName, i, m.Elapsed, m0.Elapsed)
			}
			if d != d0 {
				t.Errorf("%s run %d: dispatched %d events, want %d", appName, i, d, d0)
			}
		}
	}
}
