package harness

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestTransportPackingAcceptance pins the headline claim of the gateway
// transport layer: running the ORIGINAL (unoptimized) RA program with the
// default coalescing configuration must shrink the intercluster wire traffic
// by at least 5x — the flood of small cache invalidations packs into frames.
func TestTransportPackingAcceptance(t *testing.T) {
	app, err := AppByName("RA")
	if err != nil {
		t.Fatal(err)
	}
	m, err := RunT(app, 2, 8, false, DefaultTransport)
	if err != nil {
		t.Fatal(err)
	}
	frames := m.Net.WANFrames()
	if frames.Msgs == 0 {
		t.Fatal("transport on but no frames on the wire")
	}
	if got := m.Net.PackingRatio(); got < 5 {
		t.Errorf("RA packing ratio %.1f, want >= 5 (frames %d carrying %d msgs)",
			got, frames.Msgs, m.Net.FramedMsgs())
	}
	// The same run without the transport layer must put every intercluster
	// message on the wire individually: frames count strictly below msgs/5
	// means >= 5x fewer WAN transmissions.
	off, err := RunT(app, 2, 8, false, Transport{})
	if err != nil {
		t.Fatal(err)
	}
	if off.Net.WANFrames().Msgs != 0 || off.Net.FramedMsgs() != 0 {
		t.Errorf("transport off but frame counters nonzero: %+v", off.Net.WANFrames())
	}
	wanMsgs := off.Net.InterRPC().Msgs + off.Net.InterData().Msgs + off.Net.InterBcast().Msgs
	if 5*frames.Msgs > wanMsgs {
		t.Errorf("wire transmissions %d not >=5x below the %d unframed WAN messages",
			frames.Msgs, wanMsgs)
	}
}

// TestTransportOffMatchesBaseline proves the zero-value transport is truly
// inert: a RunT with the zero Transport must reproduce the plain run's
// metrics byte-for-byte (same virtual end time, same stats rendering).
func TestTransportOffMatchesBaseline(t *testing.T) {
	for _, name := range []string{"RA", "ASP"} {
		app, err := AppByName(name)
		if err != nil {
			t.Fatal(err)
		}
		base, dispatched := runFresh(t, name, 2, 4)
		m, err := RunOneT(app, 2, 4, false, Transport{})
		if err != nil {
			t.Fatal(err)
		}
		if m.Elapsed != base.Elapsed {
			t.Errorf("%s: zero transport elapsed %v, baseline %v", name, m.Elapsed, base.Elapsed)
		}
		if got, want := m.Net.String(), base.Net.String(); got != want {
			t.Errorf("%s: zero transport stats differ from baseline\n got: %s\nwant: %s", name, got, want)
		}
		_ = dispatched
	}
}

// TestTransportCacheKeysDistinct guards the singleflight cache against
// aliasing runs with different transport settings: RA with coalescing on is a
// different simulation (different virtual end time) than with it off, and both
// must be served from their own cache slots.
func TestTransportCacheKeysDistinct(t *testing.T) {
	app, err := AppByName("RA")
	if err != nil {
		t.Fatal(err)
	}
	on, err := RunT(app, 2, 8, false, DefaultTransport)
	if err != nil {
		t.Fatal(err)
	}
	off, err := RunT(app, 2, 8, false, Transport{})
	if err != nil {
		t.Fatal(err)
	}
	if on.Elapsed == off.Elapsed && on.Net.String() == off.Net.String() {
		t.Error("transport on and off produced identical runs; cache keys may alias")
	}
	again, err := RunT(app, 2, 8, false, DefaultTransport)
	if err != nil {
		t.Fatal(err)
	}
	if again.Elapsed != on.Elapsed {
		t.Errorf("memoized transport run changed: %v then %v", on.Elapsed, again.Elapsed)
	}
}

// TestTransportTableRenders builds the three-variant table on a small shape
// and checks its structure: one row per application, parseable speedups, and
// a packing column that reflects real framing for the transport variant.
func TestTransportTableRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("full transport table is long in -short mode")
	}
	tr := Transport{MaxFrameBytes: 32 << 10, CoalesceWindow: 500 * time.Microsecond, WANStreams: 2}
	rep, err := transportTable("transport-test", 2, 4, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 1 {
		t.Fatalf("tables: %d", len(rep.Tables))
	}
	tab := rep.Tables[0]
	if len(tab.Rows) != len(Apps) {
		t.Fatalf("rows %d, want %d", len(tab.Rows), len(Apps))
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Headers) {
			t.Fatalf("%s: %d cells, want %d", row[0], len(row), len(tab.Headers))
		}
		for col := 1; col <= 3; col++ {
			sp, err := strconv.ParseFloat(row[col], 64)
			if err != nil || sp <= 0 {
				t.Errorf("%s: bad %s speedup %q", row[0], tab.Headers[col], row[col])
			}
		}
		frames, err := strconv.ParseInt(row[5], 10, 64)
		if err != nil {
			t.Errorf("%s: bad frame count %q", row[0], row[5])
		}
		packing, err := strconv.ParseFloat(row[6], 64)
		if err != nil {
			t.Errorf("%s: bad packing %q", row[0], row[6])
		}
		if frames > 0 && packing < 1 {
			t.Errorf("%s: packing %.1f below 1 with %d frames", row[0], packing, frames)
		}
	}
	out := rep.Render()
	if !strings.Contains(out, "transport-opt") {
		t.Errorf("rendered report missing transport-opt column:\n%s", out)
	}
}
