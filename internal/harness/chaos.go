package harness

import (
	"fmt"
	"strings"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/faults"
	"albatross/internal/netsim"
	"albatross/internal/orca"
	"albatross/internal/trace"
)

// The chaos experiments exercise the whole fault stack end-to-end: a seeded
// faults.Injector flips WAN messages at the netsim layer, the orca
// reliability layer retries and deduplicates until every application-level
// exchange completes, and the sim watchdog bounds runs that cannot recover.
// Every application must finish verified-correct under loss and outages —
// degradation shows up only as inflated virtual elapsed time.

// ChaosSpec describes one fault scenario of the chaos sweep.
type ChaosSpec struct {
	// Seed selects the injector's decision stream. Zero picks a fixed
	// default so unseeded runs stay reproducible.
	Seed uint64
	// Loss is the per-message WAN drop probability (applied to every
	// directed cluster pair).
	Loss float64
	// Outage, when positive, crashes cluster 1's gateway for this long
	// starting at chaosOutageStart; traffic into and out of the cluster
	// is black-holed until it restarts.
	Outage time.Duration
	// PartitionStart/PartitionDur, when PartitionDur is positive, cut
	// backbone segment 0 in both directions for the window — a hard link
	// failure the network routes around or holds traffic through (see
	// chaosPlanTopo; only ChaosRunTopo honors these fields, since the
	// partition is derived from the topology's WAN graph).
	PartitionStart time.Duration
	PartitionDur   time.Duration
}

// chaosSeed is the default fault seed of the chaos experiments.
const chaosSeed = 0xda5

// chaosOutageStart places the gateway crash early enough to hit every
// application's communication phase (the shortest 4x4 run lasts ~50ms, the
// typical one upwards of 400ms).
const chaosOutageStart = 100 * time.Millisecond

// chaosDeadline aborts chaos runs that fail to recover instead of letting
// them simulate unbounded retries. Fault-free 4x4 runs finish in under 4
// seconds of virtual time, so two minutes is pure backstop.
const chaosDeadline = 2 * time.Minute

// chaosPlan builds the fault plan of one scenario.
func chaosPlan(spec ChaosSpec) faults.Plan {
	seed := spec.Seed
	if seed == 0 {
		seed = chaosSeed
	}
	pl := faults.Plan{
		Seed:    seed,
		Default: faults.PairProbs{Drop: spec.Loss},
	}
	if spec.Outage > 0 {
		pl.Crashes = append(pl.Crashes, faults.GatewayCrash{
			Cluster: 1, Start: chaosOutageStart, Duration: spec.Outage,
		})
	}
	return pl
}

// ChaosResult is one chaos run's outcome: the usual metrics plus the fault
// and recovery tallies.
type ChaosResult struct {
	Metrics core.Metrics
	Rel     orca.RelStats
	Faults  faults.Counters
	// Stalled lists the reliable channels whose senders gave up, for
	// post-mortem diagnosis of unavailable runs (empty on success).
	Stalled []string
}

// ChaosRun executes one application under the fault scenario and verifies
// its result. The reliability layer is always enabled — including in the
// fault-free baseline — so elapsed-time ratios within a sweep isolate the
// cost of faults from the (constant) cost of reliable channels. Senders
// retry without bound; a scenario the protocol cannot survive is caught by
// the virtual-time deadline.
func ChaosRun(app AppSpec, clusters, perCluster int, optimized bool, spec ChaosSpec) (ChaosResult, error) {
	var res ChaosResult
	in, err := faults.NewInjector(chaosPlan(spec))
	if err != nil {
		return res, fmt.Errorf("chaos %s: %w", app.Name, err)
	}
	var seqr orca.Sequencer
	if app.Sequencer != nil {
		seqr = app.Sequencer(optimized)
	}
	sys := core.NewSystem(core.Config{
		Topology:  cluster.DAS(clusters, perCluster),
		Params:    Params,
		Sequencer: seqr,
	})
	sys.Net.SetFaultPolicy(in)
	sys.RTS.EnableReliability(orca.RelConfig{})
	sys.Engine.SetDeadline(chaosDeadline)
	verify := app.Build(sys, optimized)
	m, err := sys.Run()
	res.Metrics, res.Rel, res.Faults = m, sys.RTS.RelStats(), in.Counters()
	res.Stalled = sys.RTS.StalledChannels()
	tag := fmt.Sprintf("%s %dx%d opt=%v loss=%g outage=%v",
		app.Name, clusters, perCluster, optimized, spec.Loss, spec.Outage)
	if err != nil {
		if len(res.Stalled) > 0 {
			return res, fmt.Errorf("chaos %s: %w; stalled channels: %s",
				tag, err, strings.Join(res.Stalled, ", "))
		}
		return res, fmt.Errorf("chaos %s: %w", tag, err)
	}
	if err := verify(); err != nil {
		return res, fmt.Errorf("chaos %s: %w", tag, err)
	}
	return res, nil
}

// ChaosTimeline runs one application under the fault scenario with a
// message tap and fault-event hook attached, and returns the rendered
// timeline: traffic series in the standard glyph ramp, fault series (drops,
// outage/crash losses, duplicates) in the distinct fault ramp, so injected
// chaos is visually separable from the traffic it perturbs.
func ChaosTimeline(appName string, optimized bool, spec ChaosSpec, width int) (string, error) {
	app, err := AppByName(appName)
	if err != nil {
		return "", err
	}
	in, err := faults.NewInjector(chaosPlan(spec))
	if err != nil {
		return "", err
	}
	var seqr orca.Sequencer
	if app.Sequencer != nil {
		seqr = app.Sequencer(optimized)
	}
	sys := core.NewSystem(core.Config{
		Topology:  cluster.DAS(4, 4),
		Params:    Params,
		Sequencer: seqr,
	})
	tl := trace.New(time.Millisecond)
	sys.Net.SetTap(func(at time.Duration, m netsim.Msg, inter bool) {
		scope := "intra"
		if inter {
			scope = "inter"
		}
		tl.Add(at, scope+"/"+m.Kind.String(), 1)
	})
	in.OnEvent(func(ev faults.Event) {
		tl.Add(ev.At, trace.FaultSeriesPrefix+ev.Kind.String(), 1)
	})
	sys.Net.SetFaultPolicy(in)
	sys.RTS.EnableReliability(orca.RelConfig{})
	sys.Engine.SetDeadline(chaosDeadline)
	verify := app.Build(sys, optimized)
	m, err := sys.Run()
	if err != nil {
		return "", err
	}
	if err := verify(); err != nil {
		return "", err
	}
	variant := "original"
	if optimized {
		variant = "optimized"
	}
	return fmt.Sprintf("%s %s on 4x4, loss %.1f%%, %v outage (%.3fs virtual)\n%s",
		appName, variant, spec.Loss*100, spec.Outage, m.Seconds(), tl.Render(width)), nil
}

// chaosVariant is one column of the degradation table.
type chaosVariant struct {
	appName   string
	optimized bool
}

func (v chaosVariant) label() string {
	if v.optimized {
		return v.appName + " opt"
	}
	return v.appName + " orig"
}

// ChaosReport sweeps loss rate x outage duration for SOR and ASP (original
// and optimized) on the 4x4 platform and renders the degradation table:
// each cell is the run's virtual elapsed time and its slowdown over the
// fault-free baseline of the same column. quick trims the sweep to the
// smoke-test scenarios.
func ChaosReport(quick bool) (*Report, error) {
	losses := []float64{0, 0.005, 0.01, 0.02}
	outages := []time.Duration{0, 2 * time.Second}
	if quick {
		losses = []float64{0, 0.01}
	}
	variants := []chaosVariant{
		{"SOR", false}, {"SOR", true},
		{"ASP", false}, {"ASP", true},
	}

	type scenario struct {
		name string
		spec ChaosSpec
	}
	var scenarios []scenario
	for _, out := range outages {
		for _, loss := range losses {
			name := fmt.Sprintf("loss %.1f%%", loss*100)
			if out > 0 {
				name += fmt.Sprintf(" + %v outage", out)
			}
			scenarios = append(scenarios, scenario{name, ChaosSpec{Loss: loss, Outage: out}})
		}
	}

	headers := []string{"scenario"}
	for _, v := range variants {
		headers = append(headers, v.label())
	}
	t := &Table{
		ID:      "chaos",
		Title:   "Virtual elapsed time (and slowdown vs fault-free) on 4x4 under WAN faults",
		Headers: headers,
	}

	// Collect-then-render: all runs go through the scheduler, then rows
	// are formatted sequentially so output is identical at any parallelism.
	elapsed := make([][]time.Duration, len(scenarios))
	var retransmits, drops uint64
	var tasks []func() error
	for i, sc := range scenarios {
		elapsed[i] = make([]time.Duration, len(variants))
		for j, v := range variants {
			i, j, sc, v := i, j, sc, v
			tasks = append(tasks, func() error {
				app, err := AppByName(v.appName)
				if err != nil {
					return err
				}
				res, err := ChaosRun(app, 4, 4, v.optimized, sc.spec)
				if err != nil {
					return err
				}
				elapsed[i][j] = res.Metrics.Elapsed
				return nil
			})
		}
	}
	if err := scheduler().Do(tasks...); err != nil {
		return nil, err
	}
	// The totals rendered in the notes come from one representative rerun
	// of the harshest scenario (cheap: a single 4x4 run).
	worst := scenarios[len(scenarios)-1]
	var rel orca.RelStats
	var stalled []string
	if app, err := AppByName("SOR"); err == nil {
		if res, err := ChaosRun(app, 4, 4, false, worst.spec); err == nil {
			rel, stalled = res.Rel, res.Stalled
			retransmits, drops = res.Rel.Retransmits, res.Faults.Drops+res.Faults.CrashDrops
		}
	}
	for i, sc := range scenarios {
		row := []string{sc.name}
		for j := range variants {
			base := elapsed[0][j] // loss 0, no outage
			cell := fmt.Sprintf("%.3fs", elapsed[i][j].Seconds())
			if base > 0 {
				cell += fmt.Sprintf(" (x%.2f)", float64(elapsed[i][j])/float64(base))
			}
			row = append(row, cell)
		}
		t.Rows = append(t.Rows, row)
	}
	return &Report{
		ID:     "chaos",
		Title:  "Fault injection and recovery: degradation under WAN loss and gateway outages",
		Tables: []*Table{t},
		Notes: []string{
			fmt.Sprintf("fault seed %#x; outage crashes cluster 1's gateway at %v; all runs verified correct",
				uint64(chaosSeed), chaosOutageStart),
			fmt.Sprintf("harshest scenario (SOR orig, %s): %d WAN messages lost, %d envelope retransmissions",
				worst.name, drops, retransmits),
			fmt.Sprintf("reliability layer there: %d wrapped, %d acks, %d dup-dropped, %d reordered, %d give-ups; stalled channels: %s",
				rel.Wrapped, rel.Acks, rel.DupDropped, rel.OutOfOrder, rel.GiveUps, stalledOrNone(stalled)),
		},
	}, nil
}

// stalledOrNone renders a stalled-channel list for report notes.
func stalledOrNone(stalled []string) string {
	if len(stalled) == 0 {
		return "none"
	}
	return strings.Join(stalled, ", ")
}
