package harness

import (
	"strings"
	"testing"
	"time"
)

// TestChaosAllAppsComplete is the acceptance run: under 1% WAN message loss
// plus a 2-second gateway outage, every application completes and verifies
// correct, with the retry layer doing real work.
func TestChaosAllAppsComplete(t *testing.T) {
	spec := ChaosSpec{Loss: 0.01, Outage: 2 * time.Second}
	for _, app := range Apps {
		for _, opt := range []bool{false, true} {
			res, err := ChaosRun(app, 4, 4, opt, spec)
			if err != nil {
				t.Fatalf("%s opt=%v: %v", app.Name, opt, err)
			}
			if res.Metrics.Elapsed <= 0 {
				t.Fatalf("%s opt=%v: no virtual time elapsed", app.Name, opt)
			}
			if res.Faults.Drops == 0 && res.Faults.CrashDrops == 0 {
				t.Errorf("%s opt=%v: no faults injected (inspected %d)",
					app.Name, opt, res.Faults.Inspected)
			}
			if res.Rel.Retransmits == 0 {
				t.Errorf("%s opt=%v: faults injected but nothing retransmitted", app.Name, opt)
			}
		}
	}
}

// TestChaosDeterminism pins the acceptance criterion that the same fault
// seed and plan reproduce the identical run: equal virtual elapsed time,
// dispatched-event count, and fault/recovery tallies across three runs.
func TestChaosDeterminism(t *testing.T) {
	app, err := AppByName("SOR")
	if err != nil {
		t.Fatal(err)
	}
	spec := ChaosSpec{Loss: 0.02, Outage: 500 * time.Millisecond}
	var first ChaosResult
	for i := 0; i < 3; i++ {
		res, err := ChaosRun(app, 3, 3, false, spec)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res
			if res.Faults.Drops == 0 {
				t.Fatal("scenario injected no drops; determinism check is vacuous")
			}
			continue
		}
		if res.Metrics.Elapsed != first.Metrics.Elapsed {
			t.Fatalf("run %d elapsed %v, run 0 %v", i, res.Metrics.Elapsed, first.Metrics.Elapsed)
		}
		if res.Rel != first.Rel {
			t.Fatalf("run %d rel stats %+v, run 0 %+v", i, res.Rel, first.Rel)
		}
		if res.Faults != first.Faults {
			t.Fatalf("run %d fault counters %+v, run 0 %+v", i, res.Faults, first.Faults)
		}
	}
}

// TestChaosBaselineIsFaultFree checks the sweep's reference point: a zero
// spec installs the injector and reliability layer but injects nothing.
func TestChaosBaselineIsFaultFree(t *testing.T) {
	app, err := AppByName("SOR")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ChaosRun(app, 2, 2, false, ChaosSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Drops != 0 || res.Faults.Duplicates != 0 || res.Faults.Reorders != 0 ||
		res.Faults.OutageDrops != 0 || res.Faults.CrashDrops != 0 {
		t.Fatalf("fault-free baseline injected faults: %+v", res.Faults)
	}
	if res.Rel.Wrapped == 0 {
		t.Fatal("reliability layer not engaged in baseline run")
	}
	if res.Rel.Retransmits != 0 {
		t.Fatalf("baseline retransmitted %d envelopes without faults", res.Rel.Retransmits)
	}
}

// TestChaosReportQuick renders the smoke-test sweep end-to-end.
func TestChaosReportQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep in -short mode")
	}
	rep, err := ChaosReport(true)
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Render()
	for _, want := range []string{"SOR orig", "SOR opt", "ASP orig", "ASP opt",
		"loss 0.0%", "loss 1.0%", "2s outage", "x1.00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	if csv := rep.CSV(); !strings.Contains(csv, "scenario,SOR orig") {
		t.Fatalf("CSV header malformed:\n%s", csv)
	}
}
