package harness

import (
	"fmt"
	"strings"
)

// Point is one measurement of a speedup curve.
type Point struct {
	CPUs    int
	Speedup float64
}

// Series is one curve of a figure (e.g. "2 Clusters").
type Series struct {
	Label  string
	Points []Point
}

// Figure is a speedup chart in the paper's format: speedup vs total CPUs,
// one line per cluster count.
type Figure struct {
	ID     string
	Title  string
	MaxX   int
	MaxY   float64
	Series []Series
}

// Table is a rows-and-columns report.
type Table struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Headers)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// CSV renders a speedup figure as long-form rows: series,cpus,speedup.
func (f *Figure) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, []string{"series", "cpus", "speedup"})
	for _, s := range f.Series {
		for _, p := range s.Points {
			writeCSVRow(&b, []string{s.Label, fmt.Sprintf("%d", p.CPUs), fmt.Sprintf("%.4f", p.Speedup)})
		}
	}
	return b.String()
}

// CSV renders the whole report: the figure (if any) followed by each table,
// separated by blank lines.
func (r *Report) CSV() string {
	var parts []string
	if r.Figure != nil {
		parts = append(parts, r.Figure.CSV())
	}
	for _, t := range r.Tables {
		parts = append(parts, t.CSV())
	}
	return strings.Join(parts, "\n")
}

// Report is the outcome of one experiment.
type Report struct {
	ID     string
	Title  string
	Figure *Figure
	Tables []*Table
	Notes  []string
}

// Render formats the full report as text (figures via the plot package are
// rendered by the caller; here we emit the numeric series too).
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.Figure != nil {
		for _, s := range r.Figure.Series {
			fmt.Fprintf(&b, "%-12s", s.Label)
			for _, p := range s.Points {
				fmt.Fprintf(&b, " (%d cpus: %.1f)", p.CPUs, p.Speedup)
			}
			b.WriteByte('\n')
		}
	}
	for _, t := range r.Tables {
		b.WriteString(t.Render())
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
