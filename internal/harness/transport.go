package harness

import "fmt"

// TransportReport measures how much of the paper's application-optimization
// gap the transparent gateway transport layer (frame coalescing + multipath
// striping) closes with no application changes: per application, the
// wide-area speedup of the original program, of the hand-optimized program,
// and of the original program on the transport-optimized runtime, plus the
// transport run's wire-level packing statistics.
func TransportReport() (*Report, error) {
	return transportTable("transport", 4, 16, DefaultTransport)
}

// transportTable builds the three-variant table on one platform shape.
// The original and transport-opt variants share the original program's 1-CPU
// baseline (the transport layer is inert on a single cluster); the app-opt
// variant uses its own, as the paper computes speedups.
func transportTable(id string, clusters, perCluster int, tr Transport) (*Report, error) {
	t := &Table{
		ID: id,
		Title: fmt.Sprintf("Runtime transport optimization vs application rewrites (%dx%d, frames %dB/%v/%d streams)",
			clusters, perCluster, tr.MaxFrameBytes, tr.CoalesceWindow, tr.WANStreams),
		Headers: []string{"Application", "orig", "app-opt", "transport-opt", "WAN msgs", "WAN frames", "packing"},
	}
	off := Transport{}
	var tasks []func() error
	for _, app := range Apps {
		app := app
		for _, run := range []struct {
			c, p int
			opt  bool
			tr   Transport
		}{
			{1, 1, false, off},
			{1, 1, true, off},
			{clusters, perCluster, false, off},
			{clusters, perCluster, true, off},
			{clusters, perCluster, false, tr},
		} {
			run := run
			tasks = append(tasks, func() error {
				_, err := RunT(app, run.c, run.p, run.opt, run.tr)
				return err
			})
		}
	}
	// Prefetch concurrently; errors re-surface deterministically below.
	_ = scheduler().Do(tasks...)
	for _, app := range Apps {
		t1o, err := RunT(app, 1, 1, false, off)
		if err != nil {
			return nil, err
		}
		t1a, err := RunT(app, 1, 1, true, off)
		if err != nil {
			return nil, err
		}
		mo, err := RunT(app, clusters, perCluster, false, off)
		if err != nil {
			return nil, err
		}
		ma, err := RunT(app, clusters, perCluster, true, off)
		if err != nil {
			return nil, err
		}
		mt, err := RunT(app, clusters, perCluster, false, tr)
		if err != nil {
			return nil, err
		}
		spO, err := speedupRatio(app, clusters, perCluster, false, t1o, mo)
		if err != nil {
			return nil, err
		}
		spA, err := speedupRatio(app, clusters, perCluster, true, t1a, ma)
		if err != nil {
			return nil, err
		}
		spT, err := speedupRatio(app, clusters, perCluster, false, t1o, mt)
		if err != nil {
			return nil, err
		}
		frames := mt.Net.WANFrames()
		t.Rows = append(t.Rows, []string{
			app.Name,
			fmt.Sprintf("%.1f", spO),
			fmt.Sprintf("%.1f", spA),
			fmt.Sprintf("%.1f", spT),
			fmt.Sprintf("%d", mt.Net.FramedMsgs()),
			fmt.Sprintf("%d", frames.Msgs),
			fmt.Sprintf("%.1f", mt.Net.PackingRatio()),
		})
	}
	return &Report{ID: id, Title: t.Title, Tables: []*Table{t},
		Notes: []string{"transport-opt runs the ORIGINAL programs on the coalescing/striping runtime; packing = WAN msgs per wire frame"}}, nil
}
