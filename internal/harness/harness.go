// Package harness runs the paper's experiments: speedup curves for every
// application in original and optimized form (Figures 1-14), the summary
// bar charts (Figures 15-16), the microbenchmarks (Table 1), the
// application characteristics (Table 2) and the intercluster traffic tables
// (Tables 4-5).
package harness

import (
	"fmt"
	"sync"
	"time"

	"albatross/internal/apps/acp"
	"albatross/internal/apps/asp"
	"albatross/internal/apps/atpg"
	"albatross/internal/apps/ida"
	"albatross/internal/apps/ra"
	"albatross/internal/apps/sor"
	"albatross/internal/apps/tsp"
	"albatross/internal/apps/water"
	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/orca"
)

// AppSpec describes one benchmark application to the harness.
type AppSpec struct {
	Name string
	// HasOptimized reports whether a distinct optimized program exists
	// (ACP's proposed optimization is implemented here, so all do).
	HasOptimized bool
	// Sequencer selects the broadcast protocol for a variant; nil means
	// the platform default (central on one cluster, rotating on more).
	Sequencer func(optimized bool) orca.Sequencer
	// Build wires the application into a fresh system and returns its
	// result verifier.
	Build func(sys *core.System, optimized bool) func() error
	// Shardable reports that the application is safe on the cluster-sharded
	// parallel engine: it uses no cross-cluster shared mutable state outside
	// the runtime's message paths, no sequenced broadcasts, and no global
	// termination shortcuts (see DESIGN.md §5c for the audit). Non-shardable
	// applications silently fall back to the sequential engine, so every
	// configuration keeps producing byte-identical reports.
	Shardable bool
}

// Apps lists the paper's eight applications in its Table 2/3 order.
var Apps = []AppSpec{
	{
		// Shardable: owner-partitioned state; all cross-cluster exchange goes
		// through runtime messages (RPC push or cache/reduce services).
		Name: "Water", HasOptimized: true, Shardable: true,
		Build: func(sys *core.System, opt bool) func() error {
			return water.Build(sys, water.Default(), opt)
		},
	},
	{
		// Shardable: best-tour updates are sequenced broadcasts, which the
		// LP-pinned sequencer orders entirely through WAN messages; all
		// other exchange is owner-executed RPC (see DESIGN.md §5d).
		Name: "TSP", HasOptimized: true, Shardable: true,
		Build: func(sys *core.System, opt bool) func() error {
			return tsp.Build(sys, tsp.Default(), opt)
		},
	},
	{
		// Shardable: the pivot-row broadcasts run on the LP-pinned
		// sequencer; row buffers are unpooled on the sharded engine and
		// every other structure is per-node (see DESIGN.md §5d).
		Name: "ASP", HasOptimized: true, Shardable: true,
		Sequencer: func(opt bool) orca.Sequencer { return asp.Sequencer(opt) },
		Build: func(sys *core.System, opt bool) func() error {
			return asp.Build(sys, asp.Default())
		},
	},
	{
		// Shardable: faults are statically partitioned; the only shared
		// objects are invoked through RPCs that execute at their owners.
		Name: "ATPG", HasOptimized: true, Shardable: true,
		Build: func(sys *core.System, opt bool) func() error {
			return atpg.Build(sys, atpg.Default(), opt)
		},
	},
	{
		// Shardable: steals are owner-executed RPCs, phase termination is
		// decided from the replicated idle map (ordered broadcasts), and
		// iterations end in a collective allreduce — no shared counters.
		Name: "IDA*", HasOptimized: true, Shardable: true,
		Build: func(sys *core.System, opt bool) func() error {
			return ida.Build(sys, ida.Default(), opt)
		},
	},
	{
		// Shardable: updates travel as tagged messages (optionally through
		// the cluster combiner), batch pools are per cluster, and each
		// worker terminates locally once its own positions are determined.
		Name: "RA", HasOptimized: true, Shardable: true,
		Build: func(sys *core.System, opt bool) func() error {
			return ra.Build(sys, ra.Default(), opt)
		},
	},
	{
		// Shardable: prunings apply per node, worklists live at their own
		// node, and round termination is a collective allreduce over
		// sent/applied counts — no shared flags.
		Name: "ACP", HasOptimized: true, Shardable: true,
		Build: func(sys *core.System, opt bool) func() error {
			return acp.Build(sys, acp.Default(), opt)
		},
	},
	{
		// Shardable: rows are owner-written, ghost exchange is tagged
		// messages, and the convergence test is a collective allreduce
		// every worker folds identically — no shared scalars.
		Name: "SOR", HasOptimized: true, Shardable: true,
		Build: func(sys *core.System, opt bool) func() error {
			return sor.Build(sys, sor.Default(), opt)
		},
	},
}

// AppByName returns the spec with the given name.
func AppByName(name string) (AppSpec, error) {
	for _, a := range Apps {
		if a.Name == name {
			return a, nil
		}
	}
	return AppSpec{}, fmt.Errorf("harness: unknown application %q", name)
}

// Params is the network parameter set used by all experiments.
var Params = cluster.DASParams()

// Transport configures the gateway transport optimization layer (frame
// coalescing + multipath striping, netsim/transport.go) for harness runs.
// The zero value is off, which reproduces the paper's plain store-and-forward
// gateways byte-identically. Transport settings flow through SetTransport or
// the explicit RunT/RunOneT calls, never through Params directly.
type Transport struct {
	MaxFrameBytes  int
	CoalesceWindow time.Duration
	WANStreams     int
}

// Enabled reports whether any transport optimization is configured.
func (t Transport) Enabled() bool {
	return t.MaxFrameBytes > 0 || t.CoalesceWindow > 0 || t.WANStreams > 1
}

// DefaultTransport is the calibrated transport configuration used by the
// "transport" experiment and the -coalesce/-streams tool flags: frames of up
// to 32 kB sealed after at most 500us, striped over 4 parallel WAN streams.
// The window is a fraction of the 2.7ms WAN round trip, so latency-sensitive
// RPCs pay little while message floods (RA, ASP) pack densely.
var DefaultTransport = Transport{
	MaxFrameBytes:  32 << 10,
	CoalesceWindow: 500 * time.Microsecond,
	WANStreams:     4,
}

// transportCfg is the harness-wide transport setting used by Run/RunOne.
// Like SetParallelism and SetShards it is configured once before experiments
// run, not toggled mid-flight.
var transportCfg Transport

// SetTransport installs the transport configuration for subsequent Run and
// RunOne calls and returns the previous one. The run cache keys on the
// transport configuration, so runs with different settings never alias.
func SetTransport(t Transport) Transport {
	prev := transportCfg
	transportCfg = t
	return prev
}

// applyTransport folds a transport configuration into a parameter set.
func applyTransport(p cluster.Params, t Transport) cluster.Params {
	p.MaxFrameBytes = t.MaxFrameBytes
	p.CoalesceWindow = t.CoalesceWindow
	p.WANStreams = t.WANStreams
	return p
}

// shardCount is the harness-wide engine-shard setting (0 or 1 = the
// sequential engine). Like SetParallelism it is configured once before
// experiments run, not toggled mid-flight.
var shardCount int

// SetShards selects the cluster-sharded engine for subsequent runs: each
// run of a Shardable application partitions its simulation into
// min(n, clusters) logical processes. Non-shardable applications (and
// single-cluster shapes) keep the sequential engine; either way results are
// byte-identical to sequential execution, so the setting changes wall-clock
// behavior only. It returns the previous value. Call before running
// experiments.
func SetShards(n int) int {
	prev := shardCount
	shardCount = n
	return prev
}

// effectiveShards resolves the shard count one configuration actually runs
// with, which is also part of the run-cache key.
func effectiveShards(app AppSpec, clusters int) int {
	if !app.Shardable || shardCount < 2 || clusters < 2 {
		return 0
	}
	if shardCount < clusters {
		return shardCount
	}
	return clusters
}

// RunOne executes one application run on a clusters x perCluster platform
// with the harness-wide transport setting and returns its metrics.
func RunOne(app AppSpec, clusters, perCluster int, optimized bool) (core.Metrics, error) {
	return RunOneT(app, clusters, perCluster, optimized, transportCfg)
}

// RunOneT is RunOne with an explicit transport configuration. The parallel
// result is verified against the application's sequential reference; a
// verification failure is an error.
func RunOneT(app AppSpec, clusters, perCluster int, optimized bool, tr Transport) (core.Metrics, error) {
	var seqr orca.Sequencer
	if app.Sequencer != nil {
		seqr = app.Sequencer(optimized)
	}
	sys := core.NewSystem(core.Config{
		Topology:  cluster.DAS(clusters, perCluster),
		Params:    applyTransport(Params, tr),
		Sequencer: seqr,
		Shards:    effectiveShards(app, clusters),
	})
	verify := app.Build(sys, optimized)
	wall := time.Now()
	m, err := sys.Run()
	ran := time.Since(wall)
	if err != nil {
		return m, fmt.Errorf("%s %dx%d opt=%v: %w", app.Name, clusters, perCluster, optimized, err)
	}
	if err := verify(); err != nil {
		return m, fmt.Errorf("%s %dx%d opt=%v: %w", app.Name, clusters, perCluster, optimized, err)
	}
	if st := sys.ShardStats(); st != nil {
		recordShardUsage(app.Name, st, m.Elapsed, ran)
	}
	return m, nil
}

// runCache memoizes runs within one harness session: the summary figures
// and tables reuse many of the same configurations. It is singleflight:
// concurrent callers of one configuration share a single execution, the
// first caller running the simulation while the rest wait on its entry.
type runKey struct {
	app        string
	clusters   int
	perCluster int
	optimized  bool
	shards     int
	transport  Transport
}

// runEntry is one cache slot; done is closed once m/err are final.
type runEntry struct {
	done chan struct{}
	m    core.Metrics
	err  error
}

var (
	cacheMu  sync.Mutex
	runCache = map[runKey]*runEntry{}
)

// Run is RunOne with memoization. It is safe for concurrent use: duplicate
// configurations coalesce onto one execution (errors included, which a
// deterministic simulation reproduces anyway).
func Run(app AppSpec, clusters, perCluster int, optimized bool) (core.Metrics, error) {
	return RunT(app, clusters, perCluster, optimized, transportCfg)
}

// RunT is RunOneT with memoization, sharing Run's singleflight cache (the
// transport configuration is part of the key).
func RunT(app AppSpec, clusters, perCluster int, optimized bool, tr Transport) (core.Metrics, error) {
	k := runKey{app.Name, clusters, perCluster, optimized, effectiveShards(app, clusters), tr}
	cacheMu.Lock()
	e, ok := runCache[k]
	if ok {
		cacheMu.Unlock()
		<-e.done
		return e.m, e.err
	}
	e = &runEntry{done: make(chan struct{})}
	runCache[k] = e
	cacheMu.Unlock()
	e.m, e.err = RunOneT(app, clusters, perCluster, optimized, tr)
	close(e.done)
	return e.m, e.err
}

// ResetCache clears the memoized runs (tests use it for isolation). It must
// not race with in-flight Run calls.
func ResetCache() {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	runCache = map[runKey]*runEntry{}
}

// Speedup returns T(1 CPU)/T(clusters x perCluster) for the variant; the
// paper computes each variant's speedup relative to its own 1-CPU run.
func Speedup(app AppSpec, clusters, perCluster int, optimized bool) (float64, error) {
	t1, err := Run(app, 1, 1, optimized)
	if err != nil {
		return 0, err
	}
	tp, err := Run(app, clusters, perCluster, optimized)
	if err != nil {
		return 0, err
	}
	return speedupRatio(app, clusters, perCluster, optimized, t1, tp)
}

// speedupRatio guards the division: a degenerate zero-elapsed run must
// surface as an error, not as a silent +Inf in a report.
func speedupRatio(app AppSpec, clusters, perCluster int, optimized bool, t1, tp core.Metrics) (float64, error) {
	if tp.Elapsed <= 0 {
		return 0, fmt.Errorf("harness: %s %dx%d opt=%v: degenerate run with non-positive elapsed time %v",
			app.Name, clusters, perCluster, optimized, tp.Elapsed)
	}
	return t1.Elapsed.Seconds() / tp.Elapsed.Seconds(), nil
}
