package harness

import (
	"fmt"
	"runtime"
	"sync"
)

// Scheduler executes independent simulation runs concurrently on a bounded
// worker pool. Every run builds its own private sim.Engine/core.System, so
// runs share no simulation state; the only cross-run coordination is the
// singleflight run cache in Run. Experiments use the collect-then-render
// pattern: submit the full run set through the scheduler, then render rows
// and series sequentially in the exact order of the sequential baseline, so
// report output is byte-identical at any parallelism.
type Scheduler struct {
	workers int
}

// NewScheduler returns a scheduler executing at most workers tasks at once.
// A non-positive count selects GOMAXPROCS.
func NewScheduler(workers int) *Scheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Scheduler{workers: workers}
}

// Workers reports the scheduler's concurrency bound.
func (s *Scheduler) Workers() int { return s.workers }

// Do runs all tasks, at most Workers at a time, and waits for every one to
// finish. A task panic is converted into an error. The returned error is
// that of the earliest-indexed failing task — the same one a sequential
// loop stopping at the first failure would report.
func (s *Scheduler) Do(tasks ...func() error) error {
	if len(tasks) == 0 {
		return nil
	}
	errs := make([]error, len(tasks))
	run := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				errs[i] = fmt.Errorf("harness: task %d panicked: %v", i, r)
			}
		}()
		errs[i] = tasks[i]()
	}
	if s.workers == 1 || len(tasks) == 1 {
		for i := range tasks {
			run(i)
		}
	} else {
		sem := make(chan struct{}, s.workers)
		var wg sync.WaitGroup
		for i := range tasks {
			sem <- struct{}{}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				run(i)
			}(i)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// The package-level default scheduler backs every experiment. dasbench's
// -parallel flag configures it through SetParallelism.
var (
	schedMu      sync.Mutex
	defaultSched = NewScheduler(0)
)

// SetParallelism replaces the default scheduler's worker count (non-positive
// restores the GOMAXPROCS default) and returns the previous bound.
func SetParallelism(workers int) int {
	schedMu.Lock()
	defer schedMu.Unlock()
	prev := defaultSched.workers
	defaultSched = NewScheduler(workers)
	return prev
}

// Parallelism reports the default scheduler's worker count.
func Parallelism() int {
	schedMu.Lock()
	defer schedMu.Unlock()
	return defaultSched.workers
}

func scheduler() *Scheduler {
	schedMu.Lock()
	defer schedMu.Unlock()
	return defaultSched
}

// RunConfig identifies one memoizable harness execution.
type RunConfig struct {
	App        AppSpec
	Clusters   int
	PerCluster int
	Optimized  bool
}

// Prefetch warms the run cache for every configuration concurrently through
// the default scheduler. Failures are not reported here: they are memoized
// by the singleflight cache and deterministically re-surface, in sequential
// order, when the render pass calls Run/Speedup for the same configuration.
func Prefetch(cfgs []RunConfig) {
	tasks := make([]func() error, len(cfgs))
	for i, c := range cfgs {
		c := c
		tasks[i] = func() error {
			_, err := Run(c.App, c.Clusters, c.PerCluster, c.Optimized)
			return err
		}
	}
	_ = scheduler().Do(tasks...)
}

// speedupConfigs expands one speedup measurement into its run set: the
// variant's 1-CPU baseline plus the parallel configuration itself.
func speedupConfigs(app AppSpec, clusters, perCluster int, optimized bool) []RunConfig {
	return []RunConfig{
		{app, 1, 1, optimized},
		{app, clusters, perCluster, optimized},
	}
}
