package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"albatross/internal/cluster"
)

// topoGoldenOutput renders the asymmetric-platform report in the stored
// golden format (human report, separator, CSV).
func topoGoldenOutput(t *testing.T) string {
	t.Helper()
	apps := make([]AppSpec, 0, 2)
	for _, name := range []string{"ASP", "SOR"} {
		app, err := AppByName(name)
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, app)
	}
	rep, err := TopoReport(cluster.Irregular(8, 16, 32), apps, Transport{})
	if err != nil {
		t.Fatal(err)
	}
	return rep.Render() + "\n--- CSV ---\n" + rep.CSV()
}

// TestTopoGoldenIrregular pins the heterogeneous-Sizes end-to-end behavior:
// ASP and SOR on the asymmetric 3x[8,16,32] platform must render a report
// byte-identical to the stored golden file (regenerate deliberately with
// -update). This covers Topology.Sizes end to end — node numbering, gateway
// placement, WAN metering, and the per-link-class statistics table.
func TestTopoGoldenIrregular(t *testing.T) {
	if testing.Short() {
		t.Skip("golden experiments are long in -short mode")
	}
	path := filepath.Join("testdata", "golden_irregular.txt")
	if *update {
		if err := os.WriteFile(path, []byte(topoGoldenOutput(t)), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want := readGolden(t, "irregular")
	if got := topoGoldenOutput(t); got != want {
		t.Errorf("asymmetric topo report differs from golden file\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestTopoReportTieredClasses runs one application on a two-tier DSL topology
// and requires the report to carry a per-link-class statistics table with one
// populated row per declared class: trunk transmissions (including forwarded
// hops) and access-link transmissions metered separately.
func TestTopoReportTieredClasses(t *testing.T) {
	app, err := AppByName("SOR")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := TopoReport(identityTieredTopo(t), []AppSpec{app}, Transport{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 2 {
		t.Fatalf("report has %d tables, want 2", len(rep.Tables))
	}
	classes := rep.Tables[1]
	seen := map[string]bool{}
	for _, row := range classes.Rows {
		seen[row[2]] = true
		if row[3] == "0" {
			t.Errorf("class %s row has zero transmissions: %v", row[2], row)
		}
	}
	if !seen["trunk"] || !seen["access"] {
		t.Errorf("per-class table misses a declared class: got %v", seen)
	}
	if !strings.Contains(rep.Title, "grid[") {
		t.Errorf("report title should identify the DSL topology, got %q", rep.Title)
	}
}

// TestTopoReportTransportTiered proves the gateway transport layer composes
// with multi-hop routing end to end: with coalescing and striping on, the
// tiered run still verifies and the summary reports a packing ratio > 1.
func TestTopoReportTransportTiered(t *testing.T) {
	app, err := AppByName("RA")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := TopoReport(identityTieredTopo(t), []AppSpec{app}, DefaultTransport)
	if err != nil {
		t.Fatal(err)
	}
	summary := rep.Tables[0]
	for _, row := range summary.Rows {
		if row[5] == "0" {
			t.Errorf("%s %s: transport enabled but no frames: %v", row[0], row[1], row)
		}
	}
}

// TestTopoReportRejectsInvalid covers the error path the CLIs rely on: a
// topology that fails validation must surface as an error, not a panic.
func TestTopoReportRejectsInvalid(t *testing.T) {
	app, err := AppByName("SOR")
	if err != nil {
		t.Fatal(err)
	}
	bad := cluster.Topology{Clusters: 2, NodesPerCluster: 0}
	if _, err := TopoReport(bad, []AppSpec{app}, Transport{}); err == nil {
		t.Fatal("invalid topology accepted")
	}
}

// TestRunTopoShardedIdentity spot-checks that RunTopoOne under the
// harness-wide shard setting reproduces the sequential metrics on a DSL
// topology, the same invariant the full sweep in shard_test.go proves
// app-by-app.
func TestRunTopoShardedIdentity(t *testing.T) {
	app, err := AppByName("ASP")
	if err != nil {
		t.Fatal(err)
	}
	topo := identityTieredTopo(t)
	seq, err := RunTopoOne(app, topo, true, Transport{})
	if err != nil {
		t.Fatal(err)
	}
	prev := SetShards(4)
	defer SetShards(prev)
	sh, err := RunTopoOne(app, topo, true, Transport{})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Elapsed != sh.Elapsed {
		t.Errorf("sharded elapsed %v != sequential %v", sh.Elapsed, seq.Elapsed)
	}
	if seq.Elapsed <= 0 {
		t.Error("degenerate run")
	}
}
