package harness

import (
	"fmt"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/orca"
)

// The sensitivity experiments extend the paper's evaluation along the axis
// its conclusion names as future work: "Performance was found to be quite
// sensitive to problem size, number of processors, number of clusters, and
// latency and bandwidth... further sensitivity analysis is part of our
// future work." They also reproduce the paper's one explicit slow-network
// data point: ATPG's optimization only matters on a slower WAN
// (Section 4.4: "10 ms latency, 2 Mbit/s bandwidth").

// RunOnParams is RunOne with explicit network parameters (not memoized).
func RunOnParams(app AppSpec, clusters, perCluster int, optimized bool, par cluster.Params) (core.Metrics, error) {
	var seqr orca.Sequencer
	if app.Sequencer != nil {
		seqr = app.Sequencer(optimized)
	}
	sys := core.NewSystem(core.Config{
		Topology:  cluster.DAS(clusters, perCluster),
		Params:    par,
		Sequencer: seqr,
	})
	verify := app.Build(sys, optimized)
	m, err := sys.Run()
	if err != nil {
		return m, fmt.Errorf("%s %dx%d opt=%v: %w", app.Name, clusters, perCluster, optimized, err)
	}
	if err := verify(); err != nil {
		return m, fmt.Errorf("%s %dx%d opt=%v: %w", app.Name, clusters, perCluster, optimized, err)
	}
	return m, nil
}

// SpeedupOnParams computes a variant's speedup under explicit parameters.
func SpeedupOnParams(app AppSpec, clusters, perCluster int, optimized bool, par cluster.Params) (float64, error) {
	// The 1-CPU baseline does not touch the network, so the memoized
	// default-parameter run is reusable.
	t1, err := Run(app, 1, 1, optimized)
	if err != nil {
		return 0, err
	}
	tp, err := RunOnParams(app, clusters, perCluster, optimized, par)
	if err != nil {
		return 0, err
	}
	return speedupRatio(app, clusters, perCluster, optimized, t1, tp)
}

// wanScenario is one point of the network-quality sweep.
type wanScenario struct {
	name string
	par  cluster.Params
}

func wanScenarios() []wanScenario {
	das := cluster.DASParams()
	scale := func(latF, bwF float64) cluster.Params {
		p := das
		p.WANLatency = time.Duration(float64(p.WANLatency) * latF)
		p.WANBandwidth = p.WANBandwidth * bwF
		return p
	}
	return []wanScenario{
		{"LAN-only (WAN=LAN)", func() cluster.Params {
			p := das
			p.WANLatency = p.LANLatency
			p.WANBandwidth = p.LANBandwidth
			p.FELatency = p.LANLatency
			p.FEBandwidth = p.LANBandwidth
			return p
		}()},
		{"DAS ATM (2.7ms, 4.5Mb)", das},
		{"Internet Sunday (8ms, 1.8Mb)", cluster.InternetParams()},
		{"slow WAN (10ms, 2Mb)", cluster.SlowWANParams()},
		{"4x latency", scale(4, 1)},
		{"1/4 bandwidth", scale(1, 0.25)},
	}
}

// SensitivityWAN sweeps one application (original and optimized) across the
// WAN-quality scenarios on the 4x16 platform.
func SensitivityWAN(appName string) (*Report, error) {
	app, err := AppByName(appName)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "sens-" + appName,
		Title:   fmt.Sprintf("%s speedup on 4x16 vs wide-area link quality", appName),
		Headers: []string{"scenario", "original", "optimized", "gain"},
	}
	scenarios := wanScenarios()
	rows := make([][]string, len(scenarios))
	tasks := make([]func() error, len(scenarios))
	for i, sc := range scenarios {
		i, sc := i, sc
		tasks[i] = func() error {
			so, err := SpeedupOnParams(app, 4, 16, false, sc.par)
			if err != nil {
				return err
			}
			sp, err := SpeedupOnParams(app, 4, 16, true, sc.par)
			if err != nil {
				return err
			}
			rows[i] = []string{
				sc.name,
				fmt.Sprintf("%.1f", so),
				fmt.Sprintf("%.1f", sp),
				fmt.Sprintf("%.2fx", sp/so),
			}
			return nil
		}
	}
	if err := scheduler().Do(tasks...); err != nil {
		return nil, err
	}
	t.Rows = rows
	return &Report{ID: t.ID, Title: t.Title, Tables: []*Table{t}}, nil
}

// SensitivityATPG reproduces the paper's Section 4.4 observation: at DAS
// parameters ATPG's optimization changes little, but on the slower network
// the original program degrades significantly and the single-RPC-per-
// cluster reduction recovers it.
func SensitivityATPG() (*Report, error) {
	app, err := AppByName("ATPG")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "sens-atpg",
		Title:   "ATPG on 4x16: the optimization only matters on slow networks (paper 4.4)",
		Headers: []string{"network", "original", "optimized", "gain"},
	}
	scenarios := []wanScenario{
		{"DAS ATM", cluster.DASParams()},
		{"slow WAN (10ms, 2Mb)", cluster.SlowWANParams()},
	}
	rows := make([][]string, len(scenarios))
	tasks := make([]func() error, len(scenarios))
	for i, sc := range scenarios {
		i, sc := i, sc
		tasks[i] = func() error {
			so, err := SpeedupOnParams(app, 4, 16, false, sc.par)
			if err != nil {
				return err
			}
			sp, err := SpeedupOnParams(app, 4, 16, true, sc.par)
			if err != nil {
				return err
			}
			rows[i] = []string{sc.name,
				fmt.Sprintf("%.1f", so), fmt.Sprintf("%.1f", sp), fmt.Sprintf("%.2fx", sp/so)}
			return nil
		}
	}
	if err := scheduler().Do(tasks...); err != nil {
		return nil, err
	}
	t.Rows = rows
	return &Report{ID: "sens-atpg", Title: t.Title, Tables: []*Table{t},
		Notes: []string{"paper: at DAS parameters 'speedups were not significantly improved'; on the slower network the original is 'significantly worse'"}}, nil
}

// SensitivityClusters sweeps the cluster count at fixed total CPUs for all
// applications (original programs) — the "number of clusters" axis.
func SensitivityClusters() (*Report, error) {
	t := &Table{
		ID:      "sens-clusters",
		Title:   "Original-program speedup at 48 CPUs vs number of clusters",
		Headers: []string{"program", "1 cluster", "2 clusters", "4 clusters", "6 clusters"},
	}
	var cfgs []RunConfig
	for _, app := range Apps {
		for _, c := range []int{1, 2, 4, 6} {
			cfgs = append(cfgs, speedupConfigs(app, c, 48/c, false)...)
		}
	}
	Prefetch(cfgs)
	for _, app := range Apps {
		row := []string{app.Name}
		for _, c := range []int{1, 2, 4, 6} {
			sp, err := Speedup(app, c, 48/c, false)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.1f", sp))
		}
		t.Rows = append(t.Rows, row)
	}
	return &Report{ID: "sens-clusters", Title: t.Title, Tables: []*Table{t}}, nil
}

// SensitivitySize sweeps ASP's problem size on the 4x15 platform — the
// paper's Amdahl's-law discussion in Section 3: growing the problem makes
// the grain coarser and shrinks the relative WAN overhead, which is exactly
// why the paper deliberately did *not* grow its inputs.
func SensitivitySize() (*Report, error) {
	t := &Table{
		ID:      "sens-size",
		Title:   "ASP on 4x15: problem size vs speedup (grain grows with n)",
		Headers: []string{"matrix size", "original", "optimized"},
	}
	sizes := []int{96, 192, 384}
	speedups := make([][2]float64, len(sizes))
	var tasks []func() error
	for ni, n := range sizes {
		for vi, optimized := range []bool{false, true} {
			ni, vi, n, optimized := ni, vi, n, optimized
			tasks = append(tasks, func() error {
				sp, err := aspSpeedupAtSize(n, optimized)
				if err != nil {
					return err
				}
				speedups[ni][vi] = sp
				return nil
			})
		}
	}
	if err := scheduler().Do(tasks...); err != nil {
		return nil, err
	}
	for ni, n := range sizes {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", speedups[ni][0]),
			fmt.Sprintf("%.1f", speedups[ni][1])})
	}
	return &Report{ID: "sens-size", Title: t.Title, Tables: []*Table{t},
		Notes: []string{"paper §3: 'choosing a bigger problem size can reduce the relative impact of overheads such as communication latencies'"}}, nil
}

// SensitivityCongestion runs Water and SOR under a time-varying WAN — a
// deterministic square-wave congestion pattern (every 100 ms of virtual
// time, a 50 ms burst at 3x latency and quarter bandwidth) and a loaded
// gateway stack — conditions closer to the paper's "ordinary Internet"
// measurement than the dedicated ATM PVCs.
func SensitivityCongestion() (*Report, error) {
	t := &Table{
		ID:      "sens-congestion",
		Title:   "Time-varying WAN on 4x16: congestion waves + loaded gateways",
		Headers: []string{"app", "variant", "steady (s)", "congested (s)", "slowdown"},
	}
	congested := func(at time.Duration) (float64, float64) {
		if at%(100*time.Millisecond) < 50*time.Millisecond {
			return 3, 0.25
		}
		return 1, 1
	}
	type variantKey struct {
		name      string
		optimized bool
	}
	var variants []variantKey
	for _, name := range []string{"Water", "SOR"} {
		for _, optimized := range []bool{false, true} {
			variants = append(variants, variantKey{name, optimized})
		}
	}
	secs := make([][2]float64, len(variants))
	var tasks []func() error
	for vi, v := range variants {
		for pi, useProfile := range []bool{false, true} {
			vi, pi, v, useProfile := vi, pi, v, useProfile
			tasks = append(tasks, func() error {
				app, err := AppByName(v.name)
				if err != nil {
					return err
				}
				variant := "original"
				if v.optimized {
					variant = "optimized"
				}
				par := cluster.DASParams()
				if useProfile {
					par.GatewayCost = 40 * time.Microsecond
				}
				sys := core.NewSystem(core.Config{
					Topology: cluster.DAS(4, 16),
					Params:   par,
				})
				if useProfile {
					sys.Net.SetWANProfile(congested)
				}
				verify := app.Build(sys, v.optimized)
				m, err := sys.Run()
				if err != nil {
					return fmt.Errorf("sens-congestion %s %s: %w", v.name, variant, err)
				}
				if err := verify(); err != nil {
					return fmt.Errorf("sens-congestion %s %s: %w", v.name, variant, err)
				}
				secs[vi][pi] = m.Seconds()
				return nil
			})
		}
	}
	if err := scheduler().Do(tasks...); err != nil {
		return nil, err
	}
	for vi, v := range variants {
		variant := "original"
		if v.optimized {
			variant = "optimized"
		}
		t.Rows = append(t.Rows, []string{v.name, variant,
			fmt.Sprintf("%.3f", secs[vi][0]),
			fmt.Sprintf("%.3f", secs[vi][1]),
			fmt.Sprintf("%.2fx", secs[vi][1]/secs[vi][0])})
	}
	return &Report{ID: "sens-congestion", Title: t.Title, Tables: []*Table{t},
		Notes: []string{"optimized programs touch the WAN less, so congestion waves cost them proportionally less"}}, nil
}
