package harness

import (
	"fmt"
	"time"

	"albatross/internal/apps/ida"
	"albatross/internal/apps/ra"
	"albatross/internal/apps/sor"
	"albatross/internal/apps/tsp"
	"albatross/internal/apps/water"
	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/orca"
)

// The ablation experiments decompose each composite optimization into its
// parts, quantifying what each individual technique of the paper's Table 3
// contributes. They run on the 4x15 platform of Figure 15.

const ablClusters, ablPerCluster = 4, 15

func ablSystem(seqr orca.Sequencer) *core.System {
	return core.NewSystem(core.Config{
		Topology:  cluster.DAS(ablClusters, ablPerCluster),
		Params:    cluster.DASParams(),
		Sequencer: seqr,
	})
}

// AblationWater separates cluster caching (reads) from cluster reduction
// (write-backs) in the Water optimization.
func AblationWater() (*Report, error) {
	cfg := water.Default()
	t := &Table{
		ID:      "abl-water",
		Title:   "Water on 4x15: contribution of each optimization",
		Headers: []string{"variant", "time (s)", "inter msgs", "inter kbyte"},
	}
	for _, v := range []struct {
		name string
		opts water.Options
	}{
		{"original (direct push)", water.Options{}},
		{"cache only", water.Options{Cache: true}},
		{"reduce only", water.Options{Reduce: true}},
		{"cache + reduce (paper)", water.Options{Cache: true, Reduce: true}},
	} {
		sys := ablSystem(nil)
		verify := water.BuildVariant(sys, cfg, v.opts)
		m, err := sys.Run()
		if err != nil {
			return nil, fmt.Errorf("abl-water %s: %w", v.name, err)
		}
		if err := verify(); err != nil {
			return nil, fmt.Errorf("abl-water %s: %w", v.name, err)
		}
		inter := m.Net.TotalInter()
		t.Rows = append(t.Rows, []string{v.name,
			fmt.Sprintf("%.3f", m.Seconds()),
			fmt.Sprintf("%d", inter.Msgs),
			fmt.Sprintf("%.0f", inter.KBytes())})
	}
	return &Report{ID: "abl-water", Title: t.Title, Tables: []*Table{t}}, nil
}

// AblationSOR sweeps the chaotic-relaxation skip factor: the tradeoff
// between intercluster communication and convergence speed (Section 4.8).
func AblationSOR() (*Report, error) {
	cfg := sor.Default()
	t := &Table{
		ID:      "abl-sor",
		Title:   "SOR on 4x15: exchange skipping vs convergence",
		Headers: []string{"variant", "iterations", "time (s)", "inter msgs"},
	}
	run := func(name string, optimized bool, skipMod int) error {
		c := cfg
		c.SkipMod = skipMod
		sys := ablSystem(nil)
		verify, iters := sor.BuildWithStats(sys, c, optimized)
		m, err := sys.Run()
		if err != nil {
			return err
		}
		if err := verify(); err != nil {
			return err
		}
		t.Rows = append(t.Rows, []string{name,
			fmt.Sprintf("%d", *iters),
			fmt.Sprintf("%.3f", m.Seconds()),
			fmt.Sprintf("%d", m.Net.TotalInter().Msgs)})
		return nil
	}
	if err := run("lock-step (original)", false, 3); err != nil {
		return nil, err
	}
	for _, sm := range []int{1, 2, 3, 6} {
		if err := run(fmt.Sprintf("chaotic, exchange every %d", sm), true, sm); err != nil {
			return nil, err
		}
	}
	return &Report{ID: "abl-sor", Title: t.Title, Tables: []*Table{t},
		Notes: []string{"skipping more exchanges cuts WAN traffic but costs iterations; the paper picked 2 of 3 skipped"}}, nil
}

// AblationRA sweeps the two combining levels of RA: the sender-side batch
// factor and cluster-level combining.
func AblationRA() (*Report, error) {
	t := &Table{
		ID:      "abl-ra",
		Title:   "RA on 4x15: node-level batching x cluster-level combining",
		Headers: []string{"node batch", "cluster combining", "time (s)", "inter msgs", "inter kbyte"},
	}
	for _, batch := range []int{1, 4, 16, 64} {
		for _, comb := range []bool{false, true} {
			cfg := ra.Default()
			cfg.NodeBatch = batch
			sys := ablSystem(nil)
			verify := ra.Build(sys, cfg, comb)
			m, err := sys.Run()
			if err != nil {
				return nil, fmt.Errorf("abl-ra batch=%d comb=%v: %w", batch, comb, err)
			}
			if err := verify(); err != nil {
				return nil, fmt.Errorf("abl-ra batch=%d comb=%v: %w", batch, comb, err)
			}
			inter := m.Net.TotalInter()
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", batch),
				onOff(comb),
				fmt.Sprintf("%.3f", m.Seconds()),
				fmt.Sprintf("%d", inter.Msgs),
				fmt.Sprintf("%.0f", inter.KBytes())})
		}
	}
	return &Report{ID: "abl-ra", Title: t.Title, Tables: []*Table{t}}, nil
}

// AblationIDA separates the two stealing refinements.
func AblationIDA() (*Report, error) {
	cfg := ida.Default()
	t := &Table{
		ID:      "abl-ida",
		Title:   "IDA* on 4x15: stealing policy refinements",
		Headers: []string{"policy", "time (s)", "inter RPCs"},
	}
	for _, v := range []struct {
		name string
		pol  ida.Policy
	}{
		{"original (power-of-two order)", ida.Policy{}},
		{"local cluster first", ida.Policy{LocalFirst: true}},
		{"remember empty", ida.Policy{RememberIdle: true}},
		{"both (paper)", ida.Policy{LocalFirst: true, RememberIdle: true}},
	} {
		sys := ablSystem(nil)
		verify := ida.BuildPolicy(sys, cfg, v.pol)
		m, err := sys.Run()
		if err != nil {
			return nil, fmt.Errorf("abl-ida %s: %w", v.name, err)
		}
		if err := verify(); err != nil {
			return nil, fmt.Errorf("abl-ida %s: %w", v.name, err)
		}
		t.Rows = append(t.Rows, []string{v.name,
			fmt.Sprintf("%.3f", m.Seconds()),
			fmt.Sprintf("%d", m.Net.InterRPC().Msgs)})
	}
	return &Report{ID: "abl-ida", Title: t.Title, Tables: []*Table{t},
		Notes: []string{"paper: intercluster steal requests roughly halve while speedup hardly changes"}}, nil
}

// AblationSequencer compares the three ordering protocols on an ASP-like
// broadcast-burst workload (one sender at a time, bursts of row updates).
func AblationSequencer() (*Report, error) {
	t := &Table{
		ID:      "abl-seq",
		Title:   "Sequencer protocols on 4x15, ASP-like broadcast bursts",
		Headers: []string{"sequencer", "time (s)", "per bcast", "inter msgs"},
	}
	const bursts, burstLen, rowBytes = 8, 40, 1024
	for _, v := range []struct {
		name string
		mk   func() orca.Sequencer
	}{
		{"central", func() orca.Sequencer { return orca.NewCentralSequencer(0) }},
		{"rotating (paper default)", func() orca.Sequencer { return orca.NewRotatingSequencer() }},
		{"migrating (ASP opt)", func() orca.Sequencer { return orca.NewMigratingSequencer() }},
	} {
		sys := ablSystem(v.mk())
		obj := sys.RTS.NewReplicated("rows", func(cluster.NodeID) any { return new(int) })
		sys.SpawnWorkers("sender", func(w *core.Worker) {
			for burst := 0; burst < bursts; burst++ {
				// Spread the senders over the whole machine (and thus over
				// all clusters), like ASP's row ownership.
				if burst*w.NProcs()/bursts != w.Rank() {
					continue
				}
				for *(obj.Replica(w.Node).(*int)) < burst*burstLen {
					w.P.Sleep(100 * time.Microsecond)
				}
				for i := 0; i < burstLen; i++ {
					w.Invoke(obj, orca.Op{Name: "row", ArgBytes: rowBytes,
						Apply: func(s any) any { *(s.(*int))++; return nil }})
				}
			}
		})
		m, err := sys.Run()
		if err != nil {
			return nil, fmt.Errorf("abl-seq %s: %w", v.name, err)
		}
		for i := 0; i < sys.Topo.Compute(); i++ {
			if got := *(obj.Replica(cluster.NodeID(i)).(*int)); got != bursts*burstLen {
				return nil, fmt.Errorf("abl-seq %s: replica %d saw %d updates", v.name, i, got)
			}
		}
		per := m.Elapsed / (bursts * burstLen)
		t.Rows = append(t.Rows, []string{v.name,
			fmt.Sprintf("%.3f", m.Seconds()),
			per.Round(time.Microsecond).String(),
			fmt.Sprintf("%d", m.Net.TotalInter().Msgs)})
	}
	return &Report{ID: "abl-seq", Title: t.Title, Tables: []*Table{t}}, nil
}

// AblationTSP sweeps the job-generation depth: the grain-size tradeoff the
// paper discusses ("Too coarse a grain causes load imbalance"; too fine a
// grain raises queue traffic).
func AblationTSP() (*Report, error) {
	t := &Table{
		ID:      "abl-tsp",
		Title:   "TSP on 4x15: job grain (generation depth) x queue scheme",
		Headers: []string{"depth", "jobs", "central time (s)", "static time (s)"},
	}
	for _, depth := range []int{3, 4, 5} {
		cfg := tsp.Default()
		cfg.JobDepth = depth
		times := make([]float64, 2)
		var jobs int
		for vi, optimized := range []bool{false, true} {
			sys := ablSystem(nil)
			verify := tsp.Build(sys, cfg, optimized)
			m, err := sys.Run()
			if err != nil {
				return nil, fmt.Errorf("abl-tsp depth=%d: %w", depth, err)
			}
			if err := verify(); err != nil {
				return nil, fmt.Errorf("abl-tsp depth=%d: %w", depth, err)
			}
			times[vi] = m.Seconds()
			jobs = tsp.CountJobs(cfg)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", depth),
			fmt.Sprintf("%d", jobs),
			fmt.Sprintf("%.3f", times[0]),
			fmt.Sprintf("%.3f", times[1])})
	}
	return &Report{ID: "abl-tsp", Title: t.Title, Tables: []*Table{t}}, nil
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}
