package harness

import (
	"fmt"
	"time"

	"albatross/internal/apps/ida"
	"albatross/internal/apps/ra"
	"albatross/internal/apps/sor"
	"albatross/internal/apps/tsp"
	"albatross/internal/apps/water"
	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/orca"
)

// The ablation experiments decompose each composite optimization into its
// parts, quantifying what each individual technique of the paper's Table 3
// contributes. They run on the 4x15 platform of Figure 15.

const ablClusters, ablPerCluster = 4, 15

func ablSystem(seqr orca.Sequencer) *core.System {
	return core.NewSystem(core.Config{
		Topology:  cluster.DAS(ablClusters, ablPerCluster),
		Params:    cluster.DASParams(),
		Sequencer: seqr,
	})
}

// AblationWater separates cluster caching (reads) from cluster reduction
// (write-backs) in the Water optimization.
func AblationWater() (*Report, error) {
	cfg := water.Default()
	t := &Table{
		ID:      "abl-water",
		Title:   "Water on 4x15: contribution of each optimization",
		Headers: []string{"variant", "time (s)", "inter msgs", "inter kbyte"},
	}
	variants := []struct {
		name string
		opts water.Options
	}{
		{"original (direct push)", water.Options{}},
		{"cache only", water.Options{Cache: true}},
		{"reduce only", water.Options{Reduce: true}},
		{"cache + reduce (paper)", water.Options{Cache: true, Reduce: true}},
	}
	rows := make([][]string, len(variants))
	tasks := make([]func() error, len(variants))
	for i, v := range variants {
		i, v := i, v
		tasks[i] = func() error {
			sys := ablSystem(nil)
			verify := water.BuildVariant(sys, cfg, v.opts)
			m, err := sys.Run()
			if err != nil {
				return fmt.Errorf("abl-water %s: %w", v.name, err)
			}
			if err := verify(); err != nil {
				return fmt.Errorf("abl-water %s: %w", v.name, err)
			}
			inter := m.Net.TotalInter()
			rows[i] = []string{v.name,
				fmt.Sprintf("%.3f", m.Seconds()),
				fmt.Sprintf("%d", inter.Msgs),
				fmt.Sprintf("%.0f", inter.KBytes())}
			return nil
		}
	}
	if err := scheduler().Do(tasks...); err != nil {
		return nil, err
	}
	t.Rows = rows
	return &Report{ID: "abl-water", Title: t.Title, Tables: []*Table{t}}, nil
}

// AblationSOR sweeps the chaotic-relaxation skip factor: the tradeoff
// between intercluster communication and convergence speed (Section 4.8).
func AblationSOR() (*Report, error) {
	cfg := sor.Default()
	t := &Table{
		ID:      "abl-sor",
		Title:   "SOR on 4x15: exchange skipping vs convergence",
		Headers: []string{"variant", "iterations", "time (s)", "inter msgs"},
	}
	variants := []struct {
		name      string
		optimized bool
		skipMod   int
	}{
		{"lock-step (original)", false, 3},
	}
	for _, sm := range []int{1, 2, 3, 6} {
		variants = append(variants, struct {
			name      string
			optimized bool
			skipMod   int
		}{fmt.Sprintf("chaotic, exchange every %d", sm), true, sm})
	}
	rows := make([][]string, len(variants))
	tasks := make([]func() error, len(variants))
	for i, v := range variants {
		i, v := i, v
		tasks[i] = func() error {
			c := cfg
			c.SkipMod = v.skipMod
			sys := ablSystem(nil)
			verify, iters := sor.BuildWithStats(sys, c, v.optimized)
			m, err := sys.Run()
			if err != nil {
				return err
			}
			if err := verify(); err != nil {
				return err
			}
			rows[i] = []string{v.name,
				fmt.Sprintf("%d", *iters),
				fmt.Sprintf("%.3f", m.Seconds()),
				fmt.Sprintf("%d", m.Net.TotalInter().Msgs)}
			return nil
		}
	}
	if err := scheduler().Do(tasks...); err != nil {
		return nil, err
	}
	t.Rows = rows
	return &Report{ID: "abl-sor", Title: t.Title, Tables: []*Table{t},
		Notes: []string{"skipping more exchanges cuts WAN traffic but costs iterations; the paper picked 2 of 3 skipped"}}, nil
}

// AblationRA sweeps the two combining levels of RA: the sender-side batch
// factor and cluster-level combining.
func AblationRA() (*Report, error) {
	t := &Table{
		ID:      "abl-ra",
		Title:   "RA on 4x15: node-level batching x cluster-level combining",
		Headers: []string{"node batch", "cluster combining", "time (s)", "inter msgs", "inter kbyte"},
	}
	type combo struct {
		batch int
		comb  bool
	}
	var combos []combo
	for _, batch := range []int{1, 4, 16, 64} {
		for _, comb := range []bool{false, true} {
			combos = append(combos, combo{batch, comb})
		}
	}
	rows := make([][]string, len(combos))
	tasks := make([]func() error, len(combos))
	for i, c := range combos {
		i, c := i, c
		tasks[i] = func() error {
			cfg := ra.Default()
			cfg.NodeBatch = c.batch
			sys := ablSystem(nil)
			verify := ra.Build(sys, cfg, c.comb)
			m, err := sys.Run()
			if err != nil {
				return fmt.Errorf("abl-ra batch=%d comb=%v: %w", c.batch, c.comb, err)
			}
			if err := verify(); err != nil {
				return fmt.Errorf("abl-ra batch=%d comb=%v: %w", c.batch, c.comb, err)
			}
			inter := m.Net.TotalInter()
			rows[i] = []string{
				fmt.Sprintf("%d", c.batch),
				onOff(c.comb),
				fmt.Sprintf("%.3f", m.Seconds()),
				fmt.Sprintf("%d", inter.Msgs),
				fmt.Sprintf("%.0f", inter.KBytes())}
			return nil
		}
	}
	if err := scheduler().Do(tasks...); err != nil {
		return nil, err
	}
	t.Rows = rows
	return &Report{ID: "abl-ra", Title: t.Title, Tables: []*Table{t}}, nil
}

// AblationIDA separates the two stealing refinements.
func AblationIDA() (*Report, error) {
	cfg := ida.Default()
	t := &Table{
		ID:      "abl-ida",
		Title:   "IDA* on 4x15: stealing policy refinements",
		Headers: []string{"policy", "time (s)", "inter RPCs"},
	}
	variants := []struct {
		name string
		pol  ida.Policy
	}{
		{"original (power-of-two order)", ida.Policy{}},
		{"local cluster first", ida.Policy{LocalFirst: true}},
		{"remember empty", ida.Policy{RememberIdle: true}},
		{"both (paper)", ida.Policy{LocalFirst: true, RememberIdle: true}},
	}
	rows := make([][]string, len(variants))
	tasks := make([]func() error, len(variants))
	for i, v := range variants {
		i, v := i, v
		tasks[i] = func() error {
			sys := ablSystem(nil)
			verify := ida.BuildPolicy(sys, cfg, v.pol)
			m, err := sys.Run()
			if err != nil {
				return fmt.Errorf("abl-ida %s: %w", v.name, err)
			}
			if err := verify(); err != nil {
				return fmt.Errorf("abl-ida %s: %w", v.name, err)
			}
			rows[i] = []string{v.name,
				fmt.Sprintf("%.3f", m.Seconds()),
				fmt.Sprintf("%d", m.Net.InterRPC().Msgs)}
			return nil
		}
	}
	if err := scheduler().Do(tasks...); err != nil {
		return nil, err
	}
	t.Rows = rows
	return &Report{ID: "abl-ida", Title: t.Title, Tables: []*Table{t},
		Notes: []string{"paper: intercluster steal requests roughly halve while speedup hardly changes"}}, nil
}

// AblationSequencer compares the three ordering protocols on an ASP-like
// broadcast-burst workload (one sender at a time, bursts of row updates).
func AblationSequencer() (*Report, error) {
	t := &Table{
		ID:      "abl-seq",
		Title:   "Sequencer protocols on 4x15, ASP-like broadcast bursts",
		Headers: []string{"sequencer", "time (s)", "per bcast", "inter msgs"},
	}
	const bursts, burstLen, rowBytes = 8, 40, 1024
	variants := []struct {
		name string
		mk   func() orca.Sequencer
	}{
		{"central", func() orca.Sequencer { return orca.NewCentralSequencer(0) }},
		{"rotating (paper default)", func() orca.Sequencer { return orca.NewRotatingSequencer() }},
		{"migrating (ASP opt)", func() orca.Sequencer { return orca.NewMigratingSequencer() }},
	}
	rows := make([][]string, len(variants))
	tasks := make([]func() error, len(variants))
	for i, v := range variants {
		i, v := i, v
		tasks[i] = func() error {
			sys := ablSystem(v.mk())
			obj := sys.RTS.NewReplicated("rows", func(cluster.NodeID) any { return new(int) })
			sys.SpawnWorkers("sender", func(w *core.Worker) {
				for burst := 0; burst < bursts; burst++ {
					// Spread the senders over the whole machine (and thus over
					// all clusters), like ASP's row ownership.
					if burst*w.NProcs()/bursts != w.Rank() {
						continue
					}
					for *(obj.Replica(w.Node).(*int)) < burst*burstLen {
						w.P.Sleep(100 * time.Microsecond)
					}
					for i := 0; i < burstLen; i++ {
						w.Invoke(obj, orca.Op{Name: "row", ArgBytes: rowBytes,
							Apply: func(s any) any { *(s.(*int))++; return nil }})
					}
				}
			})
			m, err := sys.Run()
			if err != nil {
				return fmt.Errorf("abl-seq %s: %w", v.name, err)
			}
			for i := 0; i < sys.Topo.Compute(); i++ {
				if got := *(obj.Replica(cluster.NodeID(i)).(*int)); got != bursts*burstLen {
					return fmt.Errorf("abl-seq %s: replica %d saw %d updates", v.name, i, got)
				}
			}
			per := m.Elapsed / (bursts * burstLen)
			rows[i] = []string{v.name,
				fmt.Sprintf("%.3f", m.Seconds()),
				per.Round(time.Microsecond).String(),
				fmt.Sprintf("%d", m.Net.TotalInter().Msgs)}
			return nil
		}
	}
	if err := scheduler().Do(tasks...); err != nil {
		return nil, err
	}
	t.Rows = rows
	return &Report{ID: "abl-seq", Title: t.Title, Tables: []*Table{t}}, nil
}

// AblationTSP sweeps the job-generation depth: the grain-size tradeoff the
// paper discusses ("Too coarse a grain causes load imbalance"; too fine a
// grain raises queue traffic).
func AblationTSP() (*Report, error) {
	t := &Table{
		ID:      "abl-tsp",
		Title:   "TSP on 4x15: job grain (generation depth) x queue scheme",
		Headers: []string{"depth", "jobs", "central time (s)", "static time (s)"},
	}
	depths := []int{3, 4, 5}
	times := make([][2]float64, len(depths))
	var tasks []func() error
	for di, depth := range depths {
		for vi, optimized := range []bool{false, true} {
			di, vi, depth, optimized := di, vi, depth, optimized
			tasks = append(tasks, func() error {
				cfg := tsp.Default()
				cfg.JobDepth = depth
				sys := ablSystem(nil)
				verify := tsp.Build(sys, cfg, optimized)
				m, err := sys.Run()
				if err != nil {
					return fmt.Errorf("abl-tsp depth=%d: %w", depth, err)
				}
				if err := verify(); err != nil {
					return fmt.Errorf("abl-tsp depth=%d: %w", depth, err)
				}
				times[di][vi] = m.Seconds()
				return nil
			})
		}
	}
	if err := scheduler().Do(tasks...); err != nil {
		return nil, err
	}
	for di, depth := range depths {
		cfg := tsp.Default()
		cfg.JobDepth = depth
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", depth),
			fmt.Sprintf("%d", tsp.CountJobs(cfg)),
			fmt.Sprintf("%.3f", times[di][0]),
			fmt.Sprintf("%.3f", times[di][1])})
	}
	return &Report{ID: "abl-tsp", Title: t.Title, Tables: []*Table{t}}, nil
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}
