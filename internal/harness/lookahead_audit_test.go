package harness

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/faults"
	"albatross/internal/orca"
)

// lookaheadAuditor records every cross-LP scheduling delta the engine's
// audit hook reports and checks it against the pair's route-derived floor.
// The hook runs concurrently on LP runner threads, so all state is behind
// one mutex; violations are collected rather than fataled so a broken floor
// reports every offending pair, not just the first.
type lookaheadAuditor struct {
	mu         sync.Mutex
	seen       uint64
	minMargin  time.Duration // tightest observed delta - floor
	violations []string
}

func (a *lookaheadAuditor) hook(sys *core.System) func(src, dst int, delta time.Duration) {
	first := true
	return func(src, dst int, delta time.Duration) {
		floor := sys.Engine.LookaheadBetween(src, dst)
		a.mu.Lock()
		defer a.mu.Unlock()
		a.seen++
		if m := delta - floor; first || m < a.minMargin {
			a.minMargin, first = m, false
		}
		if delta < floor {
			if len(a.violations) < 8 { // enough to diagnose, bounded output
				a.violations = append(a.violations,
					fmt.Sprintf("%v < floor %v for LP pair %d->%d", delta, floor, src, dst))
			}
		}
	}
}

// auditOneRun executes one sharded configuration with the cross-LP audit
// hook installed and asserts the conservativeness property the per-route
// lookahead matrix rests on: every message an LP schedules on another LP
// lies at least the directed pair's closed route floor beyond the sender's
// clock. It returns the number of cross-LP schedules observed so callers
// can require the property was actually exercised.
func auditOneRun(t *testing.T, tag string, app AppSpec, topo cluster.Topology, tr Transport, plan *faults.Plan) uint64 {
	t.Helper()
	var seqr orca.Sequencer
	if app.Sequencer != nil {
		seqr = app.Sequencer(false)
	}
	sys := core.NewSystem(core.Config{
		Topology:  topo,
		Params:    applyTransport(Params, tr),
		Sequencer: seqr,
		Shards:    4,
	})
	if !sys.Sharded() {
		t.Fatalf("%s: expected a sharded system", tag)
	}
	aud := &lookaheadAuditor{}
	sys.Engine.SetCrossLPAudit(aud.hook(sys))
	if plan != nil {
		sys.Net.SetFaultPolicy(faults.MustInjector(*plan))
		sys.RTS.EnableReliability(orca.RelConfig{RTO: 100 * time.Millisecond})
		sys.Engine.SetDeadline(chaosDeadline)
	}
	verify := app.Build(sys, false)
	if _, err := sys.Run(); err != nil {
		t.Fatalf("%s: %v", tag, err)
	}
	if err := verify(); err != nil {
		t.Fatalf("%s: %v", tag, err)
	}
	aud.mu.Lock()
	defer aud.mu.Unlock()
	for _, v := range aud.violations {
		t.Errorf("%s: cross-LP delta below route floor: %s", tag, v)
	}
	if aud.seen > 0 {
		t.Logf("%s: %d cross-LP schedules audited, tightest margin over floor %v", tag, aud.seen, aud.minMargin)
	}
	return aud.seen
}

// TestCrossLPLookaheadConservative is the conservativeness audit of the
// per-route lookahead matrix: on a uniform mesh, a small tiered graph, the
// 9-cluster ring and the 64-cluster tiered grid — with and without the
// gateway transport layer, and under fault degradation (loss, a gateway
// crash, a hard link cut forcing reroutes and held traffic) — every cross-LP
// schedule the network issues must clear the directed pair's closed route
// floor. Degradations and reroutes may only RAISE a route's latency, so the
// matrix built from healthy routes must stay a conservative floor throughout;
// any delta below it would let an event land inside another LP's committed
// window and silently break byte identity.
func TestCrossLPLookaheadConservative(t *testing.T) {
	if testing.Short() {
		t.Skip("lookahead audit sweep is long in -short mode")
	}
	ring9, err := cluster.LoadTopology("../../examples/topologies/ring9.json")
	if err != nil {
		t.Fatal(err)
	}
	tiered64, err := cluster.LoadTopology("../../examples/topologies/tiered64.json")
	if err != nil {
		t.Fatal(err)
	}
	das, tiered := cluster.DAS(4, 2), identityTieredTopo(t)
	chaosPlan := func(topo cluster.Topology) *faults.Plan {
		pl := faults.Plan{
			Seed:    chaosSeed,
			Default: faults.PairProbs{Drop: 0.01},
			Crashes: []faults.GatewayCrash{{Cluster: 1, Start: 100 * time.Millisecond, Duration: 200 * time.Millisecond}},
		}
		if topo.WAN != nil {
			pl.LinkDowns = faults.CutRingSegment(topo.WAN, 0, 50*time.Millisecond, 100*time.Millisecond)
		} else {
			pl.LinkDowns = []faults.LinkDown{
				{From: 0, To: 1, Start: 50 * time.Millisecond, Duration: 100 * time.Millisecond},
				{From: 1, To: 0, Start: 50 * time.Millisecond, Duration: 100 * time.Millisecond},
			}
		}
		return &pl
	}
	platforms := []struct {
		name string
		topo cluster.Topology
		plan *faults.Plan
	}{
		{"das-4x2", das, nil},
		{"tiered", tiered, nil},
		{"ring9", ring9, nil},
		{"tiered64", tiered64, nil},
		{"das-4x2-chaos", das, chaosPlan(das)},
		{"tiered-chaos", tiered, chaosPlan(tiered)},
		{"ring9-chaos", ring9, chaosPlan(ring9)},
	}
	transports := []struct {
		name string
		tr   Transport
	}{
		{"plain", Transport{}},
		{"framed", DefaultTransport},
	}
	for _, pf := range platforms {
		for _, tr := range transports {
			var seen uint64
			for _, name := range []string{"ASP", "RA"} {
				app, err := AppByName(name)
				if err != nil {
					t.Fatal(err)
				}
				tag := pf.name + "/" + tr.name + "/" + name
				seen += auditOneRun(t, tag, app, pf.topo, tr.tr, pf.plan)
			}
			if seen == 0 {
				t.Errorf("%s/%s: no cross-LP schedules observed — audit exercised nothing", pf.name, tr.name)
			}
		}
	}
}
