package harness

import (
	"strings"
	"testing"
)

func TestRegistryCoversEveryPaperArtifact(t *testing.T) {
	paper := []string{
		"table1", "table2",
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15", "fig16",
		"table4", "table5",
	}
	extended := []string{
		"abl-water", "abl-sor", "abl-ra", "abl-ida", "abl-seq", "abl-tsp",
		"sens-atpg", "sens-clusters", "sens-Water", "sens-SOR", "sens-RA",
		"real-das", "coll", "sens-size", "sens-congestion", "transport",
	}
	got := Experiments()
	if len(got) != len(paper)+len(extended) {
		t.Fatalf("%d experiments registered, want %d", len(got), len(paper)+len(extended))
	}
	seen := map[string]bool{}
	for _, e := range got {
		if seen[e.ID] {
			t.Fatalf("experiment %s registered twice", e.ID)
		}
		seen[e.ID] = true
	}
	for _, id := range append(paper, extended...) {
		if !seen[id] {
			t.Fatalf("experiment %s not registered", id)
		}
	}
}

func TestAppByName(t *testing.T) {
	for _, name := range []string{"Water", "TSP", "ASP", "ATPG", "IDA*", "RA", "ACP", "SOR"} {
		if _, err := AppByName(name); err != nil {
			t.Fatalf("missing app %s: %v", name, err)
		}
	}
	if _, err := AppByName("Quake"); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestExperimentByID(t *testing.T) {
	if _, err := ExperimentByID("fig15"); err != nil {
		t.Fatal(err)
	}
	if _, err := ExperimentByID("fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTable1Shape(t *testing.T) {
	rep, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Render()
	for _, want := range []string{"RPC (non-replicated)", "Broadcast (replicated)", "Mbit/s", "ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestTableRenderAligns(t *testing.T) {
	tb := &Table{
		ID: "t", Title: "demo",
		Headers: []string{"a", "bbbb"},
		Rows:    [][]string{{"xxxxxx", "y"}, {"z", "wwww"}},
	}
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if len(lines[1]) != len(lines[2]) {
		t.Fatalf("header and separator misaligned:\n%s", out)
	}
}

func TestRunMemoization(t *testing.T) {
	ResetCache()
	app, err := AppByName("ACP")
	if err != nil {
		t.Fatal(err)
	}
	m1, err := Run(app, 1, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Run(app, 1, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Elapsed != m2.Elapsed {
		t.Fatal("memoized run differs")
	}
	ResetCache()
}

func TestSpeedupSanity(t *testing.T) {
	ResetCache()
	defer ResetCache()
	app, err := AppByName("ASP")
	if err != nil {
		t.Fatal(err)
	}
	sp, err := Speedup(app, 1, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if sp <= 1 || sp > 4 {
		t.Fatalf("4-CPU speedup %.2f outside (1, 4]", sp)
	}
}

func TestReportRender(t *testing.T) {
	rep := &Report{
		ID: "figX", Title: "demo",
		Figure: &Figure{Series: []Series{{Label: "1 Cluster", Points: []Point{{CPUs: 8, Speedup: 6.5}}}}},
		Notes:  []string{"hello"},
	}
	out := rep.Render()
	for _, want := range []string{"figX", "1 Cluster", "8 cpus: 6.5", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{
		Headers: []string{"a", "b"},
		Rows:    [][]string{{"1,5", `say "hi"`}, {"2", "3"}},
	}
	got := tb.CSV()
	want := "a,b\n\"1,5\",\"say \"\"hi\"\"\"\n2,3\n"
	if got != want {
		t.Fatalf("csv:\n%q\nwant\n%q", got, want)
	}
}

func TestFigureCSV(t *testing.T) {
	f := &Figure{Series: []Series{{Label: "1 Cluster", Points: []Point{{CPUs: 8, Speedup: 6.5}}}}}
	got := f.CSV()
	if !strings.Contains(got, "series,cpus,speedup") || !strings.Contains(got, "1 Cluster,8,6.5000") {
		t.Fatalf("figure csv:\n%s", got)
	}
}
