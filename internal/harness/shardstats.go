package harness

import (
	"sort"
	"sync"

	"albatross/internal/sim"
)

// ShardUsage aggregates the per-LP window counters of every sharded run one
// application executed in this harness session: windows and events are
// summed per LP index, fence waits accumulate wall-clock time. The counters
// are observability only (sim.LPStats is excluded from the byte-identity
// surface); dasbench renders them under -shards so the engine's
// synchronization overhead is observable rather than inferred.
type ShardUsage struct {
	App  string
	Runs int
	LPs  []sim.LPStats
}

var (
	shardUsageMu sync.Mutex
	shardUsage   = map[string]*ShardUsage{}
)

// recordShardUsage folds one sharded run's counters into the session
// aggregate. Runs may execute concurrently under SetParallelism.
func recordShardUsage(app string, st []sim.LPStats) {
	shardUsageMu.Lock()
	defer shardUsageMu.Unlock()
	u := shardUsage[app]
	if u == nil {
		u = &ShardUsage{App: app}
		shardUsage[app] = u
	}
	u.Runs++
	// Shapes with different cluster counts shard into different LP counts;
	// grow the aggregate to the widest run seen.
	for len(u.LPs) < len(st) {
		u.LPs = append(u.LPs, sim.LPStats{LP: len(u.LPs)})
	}
	for i, s := range st {
		u.LPs[i].Windows += s.Windows
		u.LPs[i].IdleWindows += s.IdleWindows
		u.LPs[i].Events += s.Events
		u.LPs[i].FenceWait += s.FenceWait
	}
}

// ShardUsageReport returns the aggregated counters of every application that
// ran sharded so far, sorted by name for stable output. It returns nil when
// nothing ran on the parallel engine.
func ShardUsageReport() []ShardUsage {
	shardUsageMu.Lock()
	defer shardUsageMu.Unlock()
	out := make([]ShardUsage, 0, len(shardUsage))
	for _, u := range shardUsage {
		cp := *u
		cp.LPs = append([]sim.LPStats(nil), u.LPs...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].App < out[j].App })
	if len(out) == 0 {
		return nil
	}
	return out
}

// ResetShardUsage clears the aggregate (tests use it for isolation).
func ResetShardUsage() {
	shardUsageMu.Lock()
	defer shardUsageMu.Unlock()
	shardUsage = map[string]*ShardUsage{}
}
