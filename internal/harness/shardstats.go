package harness

import (
	"sort"
	"sync"
	"time"

	"albatross/internal/sim"
)

// ShardUsage aggregates the per-LP window counters of every sharded run one
// application executed in this harness session: windows and events are
// summed per LP index, fence waits accumulate wall-clock time, and the
// run-level virtual and wall-clock durations are summed so derived rates
// (window width, windows per simulated second, fence-wait share) can be
// reported. The counters are observability only (sim.LPStats is excluded
// from the byte-identity surface); dasbench renders them under -shards so
// the engine's synchronization overhead is observable rather than inferred.
type ShardUsage struct {
	App     string
	Runs    int
	Virtual time.Duration // summed virtual elapsed time across runs
	Wall    time.Duration // summed wall-clock run time across runs
	LPs     []sim.LPStats
}

// AvgWindowWidth is the mean virtual-time span one window of the given LP
// advanced: summed virtual time over the LP's window count. Wider windows
// mean fewer fences per simulated second — the quantity the per-route
// lookahead matrix exists to maximize.
func (u ShardUsage) AvgWindowWidth(lp sim.LPStats) time.Duration {
	if lp.Windows == 0 {
		return 0
	}
	return time.Duration(int64(u.Virtual) / int64(lp.Windows))
}

// WindowsPerSimSec is the LP's window rate per simulated second.
func (u ShardUsage) WindowsPerSimSec(lp sim.LPStats) float64 {
	if u.Virtual <= 0 {
		return 0
	}
	return float64(lp.Windows) / u.Virtual.Seconds()
}

// FenceWaitShare is the fraction of the run's wall clock the LP spent
// blocked on the fence barrier (0 when wall time was not recorded).
func (u ShardUsage) FenceWaitShare(lp sim.LPStats) float64 {
	if u.Wall <= 0 {
		return 0
	}
	return float64(lp.FenceWait) / float64(u.Wall)
}

var (
	shardUsageMu sync.Mutex
	shardUsage   = map[string]*ShardUsage{}
)

// recordShardUsage folds one sharded run's counters into the session
// aggregate, along with the run's virtual elapsed time and wall-clock
// duration. Runs may execute concurrently under SetParallelism.
func recordShardUsage(app string, st []sim.LPStats, virtual, wall time.Duration) {
	shardUsageMu.Lock()
	defer shardUsageMu.Unlock()
	u := shardUsage[app]
	if u == nil {
		u = &ShardUsage{App: app}
		shardUsage[app] = u
	}
	u.Runs++
	u.Virtual += virtual
	u.Wall += wall
	// Shapes with different cluster counts shard into different LP counts;
	// grow the aggregate to the widest run seen.
	for len(u.LPs) < len(st) {
		u.LPs = append(u.LPs, sim.LPStats{LP: len(u.LPs)})
	}
	for i, s := range st {
		u.LPs[i].Windows += s.Windows
		u.LPs[i].IdleWindows += s.IdleWindows
		u.LPs[i].Chained += s.Chained
		u.LPs[i].Events += s.Events
		u.LPs[i].FenceWait += s.FenceWait
	}
}

// ShardUsageReport returns the aggregated counters of every application that
// ran sharded so far, sorted by name for stable output. It returns nil when
// nothing ran on the parallel engine.
func ShardUsageReport() []ShardUsage {
	shardUsageMu.Lock()
	defer shardUsageMu.Unlock()
	out := make([]ShardUsage, 0, len(shardUsage))
	for _, u := range shardUsage {
		cp := *u
		cp.LPs = append([]sim.LPStats(nil), u.LPs...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].App < out[j].App })
	if len(out) == 0 {
		return nil
	}
	return out
}

// ResetShardUsage clears the aggregate (tests use it for isolation).
func ResetShardUsage() {
	shardUsageMu.Lock()
	defer shardUsageMu.Unlock()
	shardUsage = map[string]*ShardUsage{}
}
