package harness

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"albatross/internal/core"
)

func TestNewSchedulerDefaultsToGOMAXPROCS(t *testing.T) {
	if got, want := NewScheduler(0).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("NewScheduler(0).Workers() = %d, want %d", got, want)
	}
	if got := NewScheduler(-3).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("NewScheduler(-3).Workers() = %d", got)
	}
	if got := NewScheduler(7).Workers(); got != 7 {
		t.Fatalf("NewScheduler(7).Workers() = %d", got)
	}
}

func TestSchedulerBoundsConcurrency(t *testing.T) {
	const workers, n = 3, 24
	s := NewScheduler(workers)
	var cur, peak, ran atomic.Int64
	tasks := make([]func() error, n)
	for i := range tasks {
		tasks[i] = func() error {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			ran.Add(1)
			return nil
		}
	}
	if err := s.Do(tasks...); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != n {
		t.Fatalf("%d of %d tasks ran", ran.Load(), n)
	}
	if peak.Load() > workers {
		t.Fatalf("observed %d concurrent tasks, bound is %d", peak.Load(), workers)
	}
}

func TestDoReturnsEarliestIndexedError(t *testing.T) {
	errA := errors.New("task 2 failed")
	errB := errors.New("task 5 failed")
	for _, workers := range []int{1, 4} {
		tasks := make([]func() error, 8)
		for i := range tasks {
			switch i {
			case 2:
				tasks[i] = func() error { return errA }
			case 5:
				tasks[i] = func() error { return errB }
			default:
				tasks[i] = func() error { return nil }
			}
		}
		if err := NewScheduler(workers).Do(tasks...); err != errA {
			t.Fatalf("workers=%d: got %v, want the earliest-indexed error %v", workers, err, errA)
		}
	}
}

func TestDoConvertsPanicsToErrors(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := NewScheduler(workers).Do(
			func() error { return nil },
			func() error { panic("boom") },
		)
		if err == nil || !strings.Contains(err.Error(), "boom") {
			t.Fatalf("workers=%d: panic not converted: %v", workers, err)
		}
	}
}

func TestSetParallelismRoundTrip(t *testing.T) {
	orig := Parallelism()
	defer SetParallelism(orig)
	if prev := SetParallelism(5); prev != orig {
		t.Fatalf("SetParallelism returned %d, want previous bound %d", prev, orig)
	}
	if got := Parallelism(); got != 5 {
		t.Fatalf("Parallelism() = %d after SetParallelism(5)", got)
	}
	SetParallelism(0)
	if got := Parallelism(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Parallelism() = %d after SetParallelism(0), want GOMAXPROCS", got)
	}
}

// countingApp is a cheap synthetic application whose Build counts how many
// times it actually executes — the singleflight tests assert each distinct
// configuration simulates exactly once no matter how many goroutines ask.
func countingApp(name string, builds *atomic.Int64) AppSpec {
	return AppSpec{
		Name: name,
		Build: func(sys *core.System, opt bool) func() error {
			builds.Add(1)
			sys.SpawnWorkers("w", func(w *core.Worker) {
				w.Compute(10 * time.Microsecond)
			})
			return func() error { return nil }
		},
	}
}

func TestRunSingleflightUnderContention(t *testing.T) {
	ResetCache()
	defer ResetCache()
	var builds atomic.Int64
	app := countingApp("synthetic", &builds)
	configs := []RunConfig{
		{app, 1, 1, false},
		{app, 1, 2, false},
		{app, 2, 2, false},
		{app, 1, 1, true},
		{app, 2, 4, true},
	}
	const goroutines = 16
	results := make([][]core.Metrics, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		results[g] = make([]core.Metrics, len(configs))
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each goroutine visits every config twice, rotated so that
			// different goroutines collide on different entries first.
			for rep := 0; rep < 2; rep++ {
				for i := range configs {
					c := configs[(i+g)%len(configs)]
					m, err := Run(c.App, c.Clusters, c.PerCluster, c.Optimized)
					if err != nil {
						t.Errorf("run %+v: %v", c, err)
						return
					}
					results[g][(i+g)%len(configs)] = m
				}
			}
		}()
	}
	wg.Wait()
	if got := builds.Load(); got != int64(len(configs)) {
		t.Fatalf("%d builds for %d distinct configs: singleflight failed", got, len(configs))
	}
	for g := 1; g < goroutines; g++ {
		for i := range configs {
			if results[g][i].Elapsed != results[0][i].Elapsed {
				t.Fatalf("goroutine %d saw different metrics for config %d", g, i)
			}
		}
	}
}

func TestPrefetchWarmsCache(t *testing.T) {
	ResetCache()
	defer ResetCache()
	var builds atomic.Int64
	app := countingApp("prefetched", &builds)
	cfgs := speedupConfigs(app, 2, 2, false)
	Prefetch(cfgs)
	if got := builds.Load(); got != int64(len(cfgs)) {
		t.Fatalf("%d builds after Prefetch of %d configs", got, len(cfgs))
	}
	if _, err := Speedup(app, 2, 2, false); err != nil {
		t.Fatal(err)
	}
	if got := builds.Load(); got != int64(len(cfgs)) {
		t.Fatalf("Speedup re-ran a prefetched config (%d builds)", got)
	}
}

func TestSpeedupRejectsZeroElapsed(t *testing.T) {
	ResetCache()
	defer ResetCache()
	app := AppSpec{Name: "degenerate"}
	seed := func(k runKey, m core.Metrics) {
		e := &runEntry{done: make(chan struct{}), m: m}
		close(e.done)
		cacheMu.Lock()
		runCache[k] = e
		cacheMu.Unlock()
	}
	seed(runKey{"degenerate", 1, 1, false, 0, Transport{}}, core.Metrics{Elapsed: time.Second})
	seed(runKey{"degenerate", 4, 16, false, 0, Transport{}}, core.Metrics{})
	sp, err := Speedup(app, 4, 16, false)
	if err == nil {
		t.Fatalf("zero-elapsed run produced speedup %v, want error", sp)
	}
	if !strings.Contains(err.Error(), "non-positive elapsed") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestParallelReportsByteIdentical is the tentpole's contract: the same
// experiment rendered at any parallelism must produce byte-identical output.
func TestParallelReportsByteIdentical(t *testing.T) {
	orig := Parallelism()
	defer SetParallelism(orig)
	experiments := []struct {
		name string
		run  func() (*Report, error)
	}{
		{"table1", Table1},
		{"coll", Collectives},
		{"sens-atpg", SensitivityATPG},
	}
	outputs := map[string][]string{}
	for _, workers := range []int{1, 8} {
		SetParallelism(workers)
		for _, e := range experiments {
			ResetCache()
			rep, err := e.run()
			if err != nil {
				t.Fatalf("%s at parallelism %d: %v", e.name, workers, err)
			}
			outputs[e.name] = append(outputs[e.name], rep.Render())
		}
	}
	for _, e := range experiments {
		got := outputs[e.name]
		if got[0] != got[1] {
			t.Fatalf("%s output differs between parallelism 1 and 8:\n--- sequential ---\n%s\n--- parallel ---\n%s",
				e.name, got[0], got[1])
		}
	}
}
