package harness

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/faults"
	"albatross/internal/orca"
	"albatross/internal/sim"
)

// ring9 loads the partition-demo topology: a single 9-root backbone ring
// with no redundant links, so any segment cut forces either a reroute the
// long way round or a hold at the gateway.
func ring9(t *testing.T) cluster.Topology {
	t.Helper()
	topo, err := cluster.LoadTopology("../../examples/topologies/ring9.json")
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestGridPartitionHealAllApps is the tentpole's acceptance scenario:
// backbone partition at t=1s, heal at t=3s, and all eight applications
// complete byte-deterministically — the sequential and 3-shard runs produce
// identical metrics, and the routing layer visibly worked around the cut.
func TestGridPartitionHealAllApps(t *testing.T) {
	if testing.Short() {
		t.Skip("grid partition sweep is long in -short mode")
	}
	topo := ring9(t)
	spec := ChaosSpec{PartitionStart: time.Second, PartitionDur: 2 * time.Second}
	var rerouted, held int64
	for _, app := range Apps {
		seq, err := ChaosRunTopo(app, topo, false, spec, 0)
		if err != nil {
			t.Fatalf("%s sequential: %v", app.Name, err)
		}
		if seq.Metrics.Elapsed <= time.Second {
			t.Errorf("%s finished at %v, before the partition even started", app.Name, seq.Metrics.Elapsed)
		}
		rerouted += seq.Metrics.Net.Reroutes()
		held += seq.Metrics.Net.HeldMsgs()
		sh, err := ChaosRunTopo(app, topo, false, spec, 3)
		if err != nil {
			t.Fatalf("%s sharded: %v", app.Name, err)
		}
		if got, want := fmt.Sprintf("%+v", sh.Metrics), fmt.Sprintf("%+v", seq.Metrics); got != want {
			t.Errorf("%s: sharded partition run differs from sequential\n got: %s\nwant: %s", app.Name, got, want)
		}
		if sh.Rel != seq.Rel {
			t.Errorf("%s: sharded rel stats %+v, sequential %+v", app.Name, sh.Rel, seq.Rel)
		}
	}
	if rerouted+held == 0 {
		t.Error("no traffic was rerouted or held across the 2s backbone cut; the partition never bit")
	}
}

// TestGridPartitionNeverHeals pins the failure mode of a permanent
// partition: with both ring segments around cluster 0 cut forever, its
// traffic is held, aged out with counted drops, retransmitted without end —
// and the run terminates with a structured DeadlineError instead of
// hanging.
func TestGridPartitionNeverHeals(t *testing.T) {
	topo := ring9(t)
	plan := faults.Plan{LinkDowns: append(
		faults.CutRingSegment(topo.WAN, 0, 0, time.Hour),
		faults.CutRingSegment(topo.WAN, len(topo.WAN.Roots())-1, 0, time.Hour)...,
	)}
	app, err := AppByName("SOR")
	if err != nil {
		t.Fatal(err)
	}
	sys := core.NewSystem(core.Config{Topology: topo, Params: Params})
	sys.Net.SetFaultPolicy(faults.MustInjector(plan))
	sys.RTS.EnableReliability(chaosRelConfig(topo))
	sys.Engine.SetDeadline(20 * time.Second)
	app.Build(sys, false)
	_, err = sys.Run()
	var dl *sim.DeadlineError
	if !errors.As(err, &dl) {
		t.Fatalf("run returned %v, want DeadlineError (isolated cluster must not hang)", err)
	}
	net := sys.Net.Stats()
	if net.HeldMsgs() == 0 || net.HoldDrops() == 0 {
		t.Fatalf("held=%d drops=%d; unroutable traffic should be held then dropped with a verdict",
			net.HeldMsgs(), net.HoldDrops())
	}
	if sys.RTS.RelStats().Retransmits == 0 {
		t.Fatal("ARQ never retransmitted across the permanent partition")
	}
}

// TestGridChaosReportQuick renders the grid sweep end-to-end on ring9.
func TestGridChaosReportQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("grid chaos sweep is long in -short mode")
	}
	rep, err := GridChaosReport("ring9", ring9(t), true)
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Render()
	for _, want := range []string{"baseline", "loss 1%", "partition 1s..3s",
		"8/8", "reroutes", "hold-drops", "backbone"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	if csv := rep.CSV(); !strings.Contains(csv, "scenario,Water") {
		t.Fatalf("CSV header malformed:\n%s", csv)
	}
}

// TestChaosRelConfigSizesRTO pins the timeout derivation: the worst routed
// path on ring9 is four 20ms hops each way, so the RTO floor must be twice
// that round trip; the implicit mesh keeps the default.
func TestChaosRelConfigSizesRTO(t *testing.T) {
	if got := chaosRelConfig(ring9(t)); got.RTO != 320*time.Millisecond {
		t.Fatalf("ring9 RTO = %v, want 320ms (2x the 4-hop round trip)", got.RTO)
	}
	if got := chaosRelConfig(cluster.DAS(4, 2)); got != (orca.RelConfig{}) {
		t.Fatalf("mesh config = %+v, want defaults", got)
	}
}
