package harness

import (
	"fmt"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/orca"
)

// RunTopoOne executes one application variant on an arbitrary topology —
// heterogeneous cluster sizes, tiered WAN graphs from the topology DSL, or
// both — with an explicit transport configuration. It honors the harness-wide
// shard setting exactly like RunOneT, and verifies the run against the
// application's sequential reference.
func RunTopoOne(app AppSpec, topo cluster.Topology, optimized bool, tr Transport) (core.Metrics, error) {
	var seqr orca.Sequencer
	if app.Sequencer != nil {
		seqr = app.Sequencer(optimized)
	}
	sys := core.NewSystem(core.Config{
		Topology:  topo,
		Params:    applyTransport(Params, tr),
		Sequencer: seqr,
		Shards:    effectiveShards(app, topo.Clusters),
	})
	verify := app.Build(sys, optimized)
	wall := time.Now()
	m, err := sys.Run()
	ran := time.Since(wall)
	if err != nil {
		return m, fmt.Errorf("%s on %s opt=%v: %w", app.Name, topo, optimized, err)
	}
	if err := verify(); err != nil {
		return m, fmt.Errorf("%s on %s opt=%v: %w", app.Name, topo, optimized, err)
	}
	if st := sys.ShardStats(); st != nil {
		recordShardUsage(app.Name, st, m.Elapsed, ran)
	}
	return m, nil
}

// TopoReport runs each listed application (both variants) on the topology and
// reports elapsed time, WAN traffic, and the per-link-class statistics the
// sparse network keeps: transmissions, queueing-delay distribution (mean and
// streaming P99), and link busy time per declared capacity class.
func TopoReport(topo cluster.Topology, apps []AppSpec, tr Transport) (*Report, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	summary := &Table{
		ID:      "topo-apps",
		Title:   "application runs",
		Headers: []string{"app", "variant", "elapsed", "WAN msgs", "WAN kB", "frames", "packing"},
	}
	classes := &Table{
		ID:    "topo-classes",
		Title: "per-link-class WAN statistics",
		Headers: []string{"app", "variant", "class", "xmits", "msgs", "kB",
			"busy", "mean-wait", "p99-wait", "max-wait"},
	}
	for _, app := range apps {
		for _, optimized := range []bool{false, true} {
			variant := "original"
			if optimized {
				variant = "optimized"
			}
			m, err := RunTopoOne(app, topo, optimized, tr)
			if err != nil {
				return nil, err
			}
			inter := m.Net.TotalInter()
			summary.Rows = append(summary.Rows, []string{
				app.Name, variant,
				fmt.Sprintf("%.3fs", m.Seconds()),
				fmt.Sprintf("%d", inter.Msgs),
				fmt.Sprintf("%.1f", inter.KBytes()),
				fmt.Sprintf("%d", m.Net.WANFrames().Msgs),
				fmt.Sprintf("%.1f", m.Net.PackingRatio()),
			})
			for _, cr := range m.Classes {
				classes.Rows = append(classes.Rows, []string{
					app.Name, variant, cr.Class,
					fmt.Sprintf("%d", cr.Xmits),
					fmt.Sprintf("%d", cr.Msgs),
					fmt.Sprintf("%.1f", float64(cr.Bytes)/1024),
					roundDur(cr.Busy),
					roundDur(cr.MeanWait),
					roundDur(cr.P99Wait),
					roundDur(cr.MaxWait),
				})
			}
		}
	}
	rep := &Report{
		ID:     "topo",
		Title:  fmt.Sprintf("applications on %s (%d clusters, %d compute nodes)", topo, topo.Clusters, topo.Compute()),
		Tables: []*Table{summary, classes},
		Notes: []string{
			"xmits are per-hop wire transmissions on links of that class; multi-hop routes count every hop",
			"waits are per-transmission queueing delays behind earlier traffic on the same physical link",
		},
	}
	return rep, nil
}

// roundDur renders a duration at microsecond precision so reports stay
// readable (and golden-stable) regardless of sub-microsecond arithmetic.
func roundDur(d time.Duration) string { return d.Round(time.Microsecond).String() }
