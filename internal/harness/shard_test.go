package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/faults"
	"albatross/internal/orca"
)

// readGolden loads a stored golden report from testdata.
func readGolden(t *testing.T, id string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", "golden_"+id+".txt"))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// runFreshSharded executes one configuration on a brand-new system with the
// given engine-shard count (0 = sequential), returning the metrics and the
// dispatched-event count. Non-shardable applications get shards forced to 0,
// exactly as the harness's Shardable fallback does. A non-nil fault plan
// installs a seeded injector plus the reliability layer, so the identity
// sweep also covers runs under chaos.
func runFreshSharded(t *testing.T, app AppSpec, topo cluster.Topology, optimized bool, shards int, plan *faults.Plan) (core.Metrics, uint64) {
	t.Helper()
	if !app.Shardable {
		shards = 0
	}
	var seqr orca.Sequencer
	if app.Sequencer != nil {
		seqr = app.Sequencer(optimized)
	}
	sys := core.NewSystem(core.Config{
		Topology:  topo,
		Params:    Params,
		Sequencer: seqr,
		Shards:    shards,
	})
	if plan != nil {
		sys.Net.SetFaultPolicy(faults.MustInjector(*plan))
		sys.RTS.EnableReliability(orca.RelConfig{RTO: 100 * time.Millisecond})
		sys.Engine.SetDeadline(chaosDeadline)
	}
	verify := app.Build(sys, optimized)
	m, err := sys.Run()
	if err != nil {
		t.Fatalf("%s opt=%v shards=%d: %v", app.Name, optimized, shards, err)
	}
	if err := verify(); err != nil {
		t.Fatalf("%s opt=%v shards=%d: %v", app.Name, optimized, shards, err)
	}
	return m, sys.Engine.Dispatched()
}

// identityTieredTopo is the non-uniform multi-tier platform of the identity
// sweep: two backbone clusters joined by a trunk link, each with one regional
// child on a slower access link, and heterogeneous cluster sizes (2,2,2,3).
// Leaf-to-leaf traffic crosses three physical links, so the sweep exercises
// multi-hop store-and-forward routing, per-class metering, and route-derived
// lookahead under sharding.
func identityTieredTopo(t *testing.T) cluster.Topology {
	t.Helper()
	b := cluster.NewBuilder()
	trunk := b.Class("trunk", 10*time.Millisecond, cluster.Mbit(6), 0)
	access := b.Class("access", 2*time.Millisecond, cluster.Mbit(20), 0)
	roots := b.Roots(2, cluster.Mesh, trunk, 2)
	b.Tier(roots, 1, access, 2, 3)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestShardedIdentityAllApps is the tentpole's acceptance test: for every
// application and variant, three repeated runs on the 4-shard engine must
// reproduce the sequential run exactly — the same virtual elapsed time, the
// same dispatched-event count, and byte-identical metrics (the material all
// reports are rendered from). Shardable apps really exercise the parallel
// engine here; the rest prove the fallback changes nothing. The sweep runs
// both on the uniform DAS mesh and on a non-uniform two-tier topology where
// cross-cluster traffic takes multi-hop routes through intermediate LPs.
func TestShardedIdentityAllApps(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite identity sweep is long in -short mode")
	}
	// chaosIdentityPlan builds the fault schedule of the chaos platforms:
	// 1% probabilistic loss, a gateway crash, and a hard trunk cut at
	// [50ms, 150ms) — so the sweep exercises the per-pair verdict streams,
	// the crash windows, and the reroute/hold machinery under sharding.
	chaosIdentityPlan := func(topo cluster.Topology) *faults.Plan {
		pl := faults.Plan{
			Seed:    chaosSeed,
			Default: faults.PairProbs{Drop: 0.01},
			Crashes: []faults.GatewayCrash{{Cluster: 1, Start: 100 * time.Millisecond, Duration: 200 * time.Millisecond}},
		}
		if topo.WAN != nil {
			pl.LinkDowns = faults.CutRingSegment(topo.WAN, 0, 50*time.Millisecond, 100*time.Millisecond)
		} else {
			pl.LinkDowns = []faults.LinkDown{
				{From: 0, To: 1, Start: 50 * time.Millisecond, Duration: 100 * time.Millisecond},
				{From: 1, To: 0, Start: 50 * time.Millisecond, Duration: 100 * time.Millisecond},
			}
		}
		return &pl
	}
	das, tiered := cluster.DAS(4, 2), identityTieredTopo(t)
	platforms := []struct {
		name string
		topo cluster.Topology
		plan *faults.Plan
		reps int
	}{
		{"das-4x2", das, nil, 3},
		{"tiered", tiered, nil, 3},
		// On the DAS mesh the cut pair detours through a third cluster;
		// on the two-root tiered trunk no alternate exists, so gateways
		// hold traffic until the heal at 150ms.
		{"das-4x2-chaos", das, chaosIdentityPlan(das), 2},
		{"tiered-chaos", tiered, chaosIdentityPlan(tiered), 2},
	}
	for _, pf := range platforms {
		for _, app := range Apps {
			for _, opt := range []bool{false, true} {
				seqM, seqD := runFreshSharded(t, app, pf.topo, opt, 0, pf.plan)
				seqDump := fmt.Sprintf("%+v", seqM)
				for rep := 0; rep < pf.reps; rep++ {
					m, d := runFreshSharded(t, app, pf.topo, opt, 4, pf.plan)
					if m.Elapsed != seqM.Elapsed {
						t.Errorf("%s %s opt=%v rep %d: elapsed %v, want %v", pf.name, app.Name, opt, rep, m.Elapsed, seqM.Elapsed)
					}
					if d != seqD {
						t.Errorf("%s %s opt=%v rep %d: dispatched %d, want %d", pf.name, app.Name, opt, rep, d, seqD)
					}
					if dump := fmt.Sprintf("%+v", m); dump != seqDump {
						t.Errorf("%s %s opt=%v rep %d: metrics differ from sequential\n got: %s\nwant: %s",
							pf.name, app.Name, opt, rep, dump, seqDump)
					}
				}
			}
		}
	}
}

// runFreshSeqr is runFreshSharded with an explicit sequencer protocol
// instead of the application's own choice.
func runFreshSeqr(t *testing.T, app AppSpec, seqr orca.Sequencer, clusters, perCluster int, optimized bool, shards int) (core.Metrics, uint64) {
	t.Helper()
	sys := core.NewSystem(core.Config{
		Topology:  cluster.DAS(clusters, perCluster),
		Params:    Params,
		Sequencer: seqr,
		Shards:    shards,
	})
	verify := app.Build(sys, optimized)
	m, err := sys.Run()
	if err != nil {
		t.Fatalf("%s seqr=%s opt=%v shards=%d: %v", app.Name, seqr.Name(), optimized, shards, err)
	}
	if err := verify(); err != nil {
		t.Fatalf("%s seqr=%s opt=%v shards=%d: %v", app.Name, seqr.Name(), optimized, shards, err)
	}
	return m, sys.Engine.Dispatched()
}

// TestShardedSequencerIdentity crosses the newly shardable applications with
// all three sequencer protocols: whatever protocol orders the broadcasts —
// central, rotating token, or migrating — a 4-LP run must reproduce the
// sequential run exactly. The protocol choice only matters to the apps that
// broadcast (TSP, ASP, IDA*, ACP), but RA and SOR run the matrix too and
// prove an installed-but-idle sequencer perturbs nothing. CI repeats this
// under the race detector to vary the LP thread schedules.
func TestShardedSequencerIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("sequencer identity matrix is long in -short mode")
	}
	protocols := []func() orca.Sequencer{
		func() orca.Sequencer { return orca.NewCentralSequencer(0) },
		func() orca.Sequencer { return orca.NewRotatingSequencer() },
		func() orca.Sequencer { return orca.NewMigratingSequencer() },
	}
	for _, name := range []string{"TSP", "ASP", "IDA*", "RA", "ACP", "SOR"} {
		app, err := AppByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, mk := range protocols {
			for _, opt := range []bool{false, true} {
				seqM, seqD := runFreshSeqr(t, app, mk(), 4, 2, opt, 0)
				m, d := runFreshSeqr(t, app, mk(), 4, 2, opt, 4)
				if m.Elapsed != seqM.Elapsed || d != seqD {
					t.Errorf("%s seqr=%s opt=%v: sharded (%v, %d events) != sequential (%v, %d events)",
						name, mk().Name(), opt, m.Elapsed, d, seqM.Elapsed, seqD)
				}
				if got, want := fmt.Sprintf("%+v", m), fmt.Sprintf("%+v", seqM); got != want {
					t.Errorf("%s seqr=%s opt=%v: metrics differ from sequential\n got: %s\nwant: %s",
						name, mk().Name(), opt, got, want)
				}
			}
		}
	}
}

// TestShardedGoldenReport reruns the ATPG golden experiment (fig7) with the
// 4-shard engine enabled harness-wide and requires the rendered report to
// stay byte-identical to the sequential golden file: the shard setting may
// change wall-clock behavior only, never results.
func TestShardedGoldenReport(t *testing.T) {
	if testing.Short() {
		t.Skip("golden experiments are long in -short mode")
	}
	want := readGolden(t, "fig7")
	ResetCache()
	prevShards := SetShards(4)
	got := goldenOutput(t, "fig7")
	SetShards(prevShards)
	ResetCache()
	if got != want {
		t.Errorf("fig7 with shards=4: output differs from sequential golden file\n got:\n%s\nwant:\n%s", got, want)
	}
}
