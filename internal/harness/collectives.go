package harness

import (
	"fmt"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/coll"
	"albatross/internal/core"
)

// Collectives measures the latency of each collective operation on the
// 4x15 platform under the topology-oblivious and the cluster-aware
// strategy — the generalization of the paper's techniques that later MPI
// libraries (MagPIe, Open MPI) adopted.
func Collectives() (*Report, error) {
	t := &Table{
		ID:      "coll",
		Title:   "Collective operations on 4x15: flat binomial vs cluster-aware",
		Headers: []string{"operation", "payload", "flat", "wide-area", "speedup"},
	}
	type op struct {
		name string
		size int
		run  func(c *coll.Comm, w *core.Worker, size int)
	}
	sum := func(acc, v any) any {
		if acc == nil {
			return v
		}
		return acc.(int) + v.(int)
	}
	ops := []op{
		{"broadcast", 1024, func(c *coll.Comm, w *core.Worker, size int) { c.Bcast(w, 0, size, "x") }},
		{"broadcast", 64 * 1024, func(c *coll.Comm, w *core.Worker, size int) { c.Bcast(w, 0, size, "x") }},
		{"reduce", 1024, func(c *coll.Comm, w *core.Worker, size int) { c.Reduce(w, 0, size, 1, sum) }},
		{"allreduce", 1024, func(c *coll.Comm, w *core.Worker, size int) { c.AllReduce(w, size, 1, sum) }},
		{"barrier", 0, func(c *coll.Comm, w *core.Worker, size int) { c.Barrier(w) }},
		{"allgather", 256, func(c *coll.Comm, w *core.Worker, size int) { c.AllGather(w, size, w.Rank()) }},
		{"scatter", 256, func(c *coll.Comm, w *core.Worker, size int) {
			var vals []any
			if w.Rank() == 0 {
				vals = make([]any, w.NProcs())
				for i := range vals {
					vals[i] = i
				}
			}
			c.Scatter(w, 0, size, vals)
		}},
		{"alltoall", 128, func(c *coll.Comm, w *core.Worker, size int) {
			vals := make([]any, w.NProcs())
			for i := range vals {
				vals[i] = w.Rank()
			}
			c.AllToAll(w, size, vals)
		}},
	}
	const reps = 5
	lats := make([][2]time.Duration, len(ops))
	var tasks []func() error
	for oi, o := range ops {
		for si, strat := range []coll.Strategy{coll.Flat, coll.WideArea} {
			oi, si, o, strat := oi, si, o, strat
			tasks = append(tasks, func() error {
				sys := core.NewSystem(core.Config{Topology: cluster.DAS(4, 15), Params: Params})
				comm := coll.New(sys, "bench", strat)
				sys.SpawnWorkers("w", func(w *core.Worker) {
					for i := 0; i < reps; i++ {
						o.run(comm, w, o.size)
						comm.Barrier(w)
					}
				})
				m, err := sys.Run()
				if err != nil {
					return fmt.Errorf("coll %s %v: %w", o.name, strat, err)
				}
				lats[oi][si] = m.Elapsed / reps
				return nil
			})
		}
	}
	if err := scheduler().Do(tasks...); err != nil {
		return nil, err
	}
	for oi, o := range ops {
		lat := lats[oi]
		t.Rows = append(t.Rows, []string{
			o.name,
			fmt.Sprintf("%d B", o.size),
			lat[0].Round(time.Microsecond).String(),
			lat[1].Round(time.Microsecond).String(),
			fmt.Sprintf("%.2fx", float64(lat[0])/float64(lat[1]))})
	}
	return &Report{ID: "coll", Title: t.Title, Tables: []*Table{t},
		Notes: []string{
			"latency includes one closing barrier per repetition; the wide-area strategy crosses each WAN link once per operation",
			"alltoall is bandwidth-bound (all data must cross regardless), so bundling through cluster roots roughly breaks even — combining pays off when per-message overhead dominates, as in RA",
		}}, nil
}
