// Package rng provides small, fast, deterministic pseudo-random number
// generators for reproducible workload generation. The generators are
// self-contained (no global state, no locking) so every simulated process
// can own an independent, seed-derived stream.
package rng

// SplitMix64 advances the given state and returns the next 64-bit value of
// the splitmix64 sequence. It is used both directly for cheap hashing and to
// seed Rand streams.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash64 deterministically mixes x into a well-distributed 64-bit value.
func Hash64(x uint64) uint64 {
	s := x
	return SplitMix64(&s)
}

// Rand is a xoshiro256** generator. The zero value is invalid; obtain
// instances with New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64, as recommended by
// the xoshiro authors. Distinct seeds give independent-looking streams.
func New(seed uint64) *Rand {
	var r Rand
	r.Seed(seed)
	return &r
}

// Seed re-initializes the generator in place to the exact stream New(seed)
// would produce, so hot loops can reseed one reused generator per item
// instead of allocating a fresh one.
func (r *Rand) Seed(seed uint64) {
	st := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&st)
	}
}

// Derive returns a new generator whose stream is a deterministic function of
// this generator's seed material and the given stream index; the parent's
// state is not consumed. Use it to give each process its own stream.
func (r *Rand) Derive(stream uint64) *Rand {
	return New(r.s[0] ^ Hash64(stream+0x1234_5678_9abc_def0))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value of the stream.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a deterministic pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders the first n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
