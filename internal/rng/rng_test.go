package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestDeriveIndependent(t *testing.T) {
	parent := New(7)
	d1 := parent.Derive(1)
	d2 := parent.Derive(2)
	d1again := parent.Derive(1)
	if d1.Uint64() != d1again.Uint64() {
		t.Fatal("Derive not deterministic")
	}
	if d1.Uint64() == d2.Uint64() {
		t.Fatal("different streams collide immediately")
	}
	// Deriving must not consume parent state.
	p2 := New(7)
	if parent.Uint64() != p2.Uint64() {
		t.Fatal("Derive consumed parent state")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	if err := quick.Check(func(n uint8) bool {
		m := int(n%100) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	prop := func(seed uint64, n8 uint8) bool {
		n := int(n8%50) + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == n
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(5)
	xs := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 21 {
		t.Fatalf("elements changed: %v", xs)
	}
}

func TestHash64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	for bit := 0; bit < 64; bit += 7 {
		a := Hash64(12345)
		b := Hash64(12345 ^ (1 << bit))
		diff := a ^ b
		n := 0
		for diff != 0 {
			n += int(diff & 1)
			diff >>= 1
		}
		if n < 10 || n > 54 {
			t.Fatalf("bit %d: only %d output bits flipped", bit, n)
		}
	}
}
