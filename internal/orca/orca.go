// Package orca implements an Orca-style object-based parallel runtime on top
// of the netsim network, following the system described in the paper:
// processes communicate through shared objects; invocations on
// non-replicated objects are remote procedure calls to the owner; objects
// with a high read/write ratio are replicated on all machines, reads execute
// locally, and writes are function-shipped via a totally-ordered broadcast
// (write-update protocol), with the writer blocking until its own delivery.
//
// Total order is produced by a pluggable Sequencer: the paper's centralized
// LAN sequencer, its distributed per-cluster rotating sequencer for WANs,
// and the migrating sequencer used to optimize ASP. The package also exposes
// the lower-level primitives the paper's optimized C programs use: raw
// tagged point-to-point messages and application-level request/reply
// services.
package orca

import (
	"fmt"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/netsim"
	"albatross/internal/sim"
)

// HeaderBytes is the protocol header added to every message's payload size.
const HeaderBytes = 32

// RTS is the runtime system for one simulated parallel machine. One instance
// serves all compute nodes; per-node state is kept internally.
type RTS struct {
	e    *sim.Engine
	net  *netsim.Network
	topo cluster.Topology

	nodes   []*nodeRTS
	objects []*Object
	seqr    Sequencer

	// seqBusy is each sequencer node's ordering-work horizon.
	seqBusy map[cluster.NodeID]time.Duration

	// callNames caches the "call <service>" future names so the blocking
	// Call path formats nothing per request.
	callNames map[string]string

	ops OpStats
}

// nodeRTS is the per-compute-node runtime state.
type nodeRTS struct {
	id       cluster.NodeID
	calls    map[uint64]*sim.Future // outstanding RPC/request replies
	nextCall uint64
	services map[string]*sim.Mailbox   // registered application services
	handlers map[string]func(*Request) // event-context service handlers
	data     map[Tag]*sim.Mailbox      // raw tagged message queues

	// Totally-ordered delivery state: updates apply in global sequence
	// order (one order across all replicated objects, as in Orca's single
	// logical sequencer); out-of-order arrivals are buffered.
	nextSeq  uint64
	heldBack map[uint64]*pendingBcast
}

// OpStats counts logical runtime operations (as opposed to the physical
// messages metered by netsim.Stats).
type OpStats struct {
	RPCs       int64 // remote invocations on non-replicated objects
	RPCBytes   int64 // argument + result payload bytes of those RPCs
	Bcasts     int64 // totally-ordered broadcasts (replicated writes)
	BcastBytes int64 // argument payload bytes of those broadcasts
	LocalOps   int64 // local reads/owner-local invocations
	Requests   int64 // application-level service requests
	DataMsgs   int64 // raw tagged messages
	DataBytes  int64
}

// New creates a runtime bound to the given network, using seqr for
// totally-ordered broadcast. If seqr is nil, DefaultSequencer is used.
func New(net *netsim.Network, seqr Sequencer) *RTS {
	topo := net.Topology()
	r := &RTS{
		e:    net.Engine(),
		net:  net,
		topo: topo,
	}
	r.nodes = make([]*nodeRTS, topo.Compute())
	for i := range r.nodes {
		id := cluster.NodeID(i)
		r.nodes[i] = &nodeRTS{
			id:       id,
			calls:    make(map[uint64]*sim.Future),
			services: make(map[string]*sim.Mailbox),
			handlers: make(map[string]func(*Request)),
			data:     make(map[Tag]*sim.Mailbox),
			heldBack: make(map[uint64]*pendingBcast),
		}
		net.SetHandler(id, r.dispatchFor(id))
	}
	if topo.Clusters > 1 {
		for c := 0; c < topo.Clusters; c++ {
			gw := topo.Gateway(c)
			net.SetHandler(gw, r.gatewayDispatch)
		}
	}
	if seqr == nil {
		seqr = DefaultSequencer(topo)
	}
	r.seqr = seqr
	seqr.attach(r)
	return r
}

// DefaultSequencer returns the sequencer the paper's system uses by default:
// a centralized sequencer on a single cluster, the distributed per-cluster
// rotating sequencer on a wide-area system.
func DefaultSequencer(topo cluster.Topology) Sequencer {
	if topo.Clusters > 1 {
		return NewRotatingSequencer()
	}
	return NewCentralSequencer(0)
}

// Engine returns the underlying simulation engine.
func (r *RTS) Engine() *sim.Engine { return r.e }

// Network returns the underlying network.
func (r *RTS) Network() *netsim.Network { return r.net }

// Topology returns the platform topology.
func (r *RTS) Topology() cluster.Topology { return r.topo }

// Ops returns the logical operation counters accumulated so far.
func (r *RTS) Ops() OpStats { return r.ops }

// Sequencer returns the totally-ordered broadcast protocol in use.
func (r *RTS) Sequencer() Sequencer { return r.seqr }

// message payloads (internal protocol)

type rpcReq struct {
	callID uint64
	objID  int
	op     Op
}

type rpcRep struct {
	callID uint64
	result any
}

type bcastDeliver struct {
	seq uint64
	b   *pendingBcast
}

// relayBcast asks a remote gateway to re-broadcast an ordered update into
// its own cluster.
type relayBcast struct {
	seq  uint64
	b    *pendingBcast
	size int
}

type serviceReq struct {
	callID  uint64
	from    cluster.NodeID
	service string
	payload any
}

type dataMsg struct {
	tag     Tag
	payload any
}

// dispatchFor returns the network delivery handler of a compute node.
func (r *RTS) dispatchFor(id cluster.NodeID) netsim.Handler {
	nd := r.nodes[id]
	return func(m netsim.Msg) {
		switch pl := m.Payload.(type) {
		case *rpcReq:
			obj := r.objects[pl.objID]
			res := pl.op.Apply(obj.state)
			r.net.Send(netsim.Msg{
				From: id, To: m.From, Kind: netsim.KindRPCRep,
				Size:    pl.op.ResBytes + HeaderBytes,
				Payload: &rpcRep{callID: pl.callID, result: res},
			})
		case *rpcRep:
			f, ok := nd.calls[pl.callID]
			if !ok {
				panic(fmt.Sprintf("orca: stray reply %d at node %d", pl.callID, id))
			}
			delete(nd.calls, pl.callID)
			f.Set(pl.result)
		case *bcastDeliver:
			r.applyOrdered(id, pl.seq, pl.b)
		case *asyncDeliver:
			res := pl.op.Apply(pl.obj.replicas[id])
			if pl.obj.applied != nil {
				pl.obj.applied(id, pl.op, res)
			}
		case *serviceReq:
			req := &Request{rts: r, ID: pl.callID, From: pl.from, To: id, Payload: pl.payload}
			if fn, ok := nd.handlers[pl.service]; ok {
				fn(req)
			} else if mb, ok := nd.services[pl.service]; ok {
				mb.Put(req)
			} else {
				panic(fmt.Sprintf("orca: no service %q at node %d", pl.service, id))
			}
		case *dataMsg:
			nd.mailbox(r.e, pl.tag).Put(pl.payload)
		case seqProtoMsg:
			pl.deliver(r)
		default:
			panic(fmt.Sprintf("orca: unknown payload %T at node %d", m.Payload, id))
		}
	}
}

// gatewayDispatch handles protocol traffic addressed to gateways: broadcast
// relays and sequencer control messages.
func (r *RTS) gatewayDispatch(m netsim.Msg) {
	switch pl := m.Payload.(type) {
	case *relayBcast:
		// Re-broadcast into the local cluster using hardware multicast.
		r.net.BcastLocal(m.To, netsim.KindBcast, pl.size, &bcastDeliver{seq: pl.seq, b: pl.b})
	case *relayAsync:
		r.net.BcastLocal(m.To, netsim.KindBcast, pl.size, &asyncDeliver{obj: pl.obj, op: pl.op})
	case seqProtoMsg:
		pl.deliver(r)
	default:
		panic(fmt.Sprintf("orca: unknown gateway payload %T", m.Payload))
	}
}

// seqProtoMsg is implemented by sequencer-internal control messages.
type seqProtoMsg interface{ deliver(r *RTS) }

// distribute sends an ordered broadcast to every compute node: hardware
// multicast in the orderer's cluster, one WAN message per remote cluster
// relayed through its gateway. orderer must be a compute node.
//
// Ordering work serializes on the orderer (Params.OrderCost per message), so
// a single central sequencer caps broadcast throughput system-wide; the
// per-cluster distributed sequencer spreads that work over the clusters.
func (r *RTS) distribute(orderer cluster.NodeID, seq uint64, b *pendingBcast) {
	if r.seqBusy == nil {
		r.seqBusy = make(map[cluster.NodeID]time.Duration)
	}
	start := r.e.Now()
	if busy := r.seqBusy[orderer]; busy > start {
		start = busy
	}
	start += r.net.Params().OrderCost
	r.seqBusy[orderer] = start
	r.e.At(start, func() { r.distributeNow(orderer, seq, b) })
}

func (r *RTS) distributeNow(orderer cluster.NodeID, seq uint64, b *pendingBcast) {
	size := b.op.ArgBytes + HeaderBytes
	r.net.BcastLocal(orderer, netsim.KindBcast, size, &bcastDeliver{seq: seq, b: b})
	oc := r.topo.ClusterOf(orderer)
	for c := 0; c < r.topo.Clusters; c++ {
		if c == oc {
			continue
		}
		r.net.Send(netsim.Msg{
			From: orderer, To: r.topo.Gateway(c), Kind: netsim.KindBcast,
			Size:    size,
			Payload: &relayBcast{seq: seq, b: b, size: size},
		})
	}
}

// applyOrdered applies ordered update seq at node id, buffering
// out-of-order arrivals so every node applies the same total order.
func (r *RTS) applyOrdered(id cluster.NodeID, seq uint64, b *pendingBcast) {
	nd := r.nodes[id]
	nd.heldBack[seq] = b
	for {
		nb, ok := nd.heldBack[nd.nextSeq]
		if !ok {
			return
		}
		delete(nd.heldBack, nd.nextSeq)
		nd.nextSeq++
		res := nb.op.Apply(nb.obj.replicas[id])
		if nb.obj.applied != nil {
			nb.obj.applied(id, nb.op, res)
		}
		if nb.from == id {
			// Writer semantics: the invocation returns (and unblocks)
			// when the writer's own copy has been updated.
			nb.done.Set(res)
		}
	}
}
