// Package orca implements an Orca-style object-based parallel runtime on top
// of the netsim network, following the system described in the paper:
// processes communicate through shared objects; invocations on
// non-replicated objects are remote procedure calls to the owner; objects
// with a high read/write ratio are replicated on all machines, reads execute
// locally, and writes are function-shipped via a totally-ordered broadcast
// (write-update protocol), with the writer blocking until its own delivery.
//
// Total order is produced by a pluggable Sequencer: the paper's centralized
// LAN sequencer, its distributed per-cluster rotating sequencer for WANs,
// and the migrating sequencer used to optimize ASP. The package also exposes
// the lower-level primitives the paper's optimized C programs use: raw
// tagged point-to-point messages and application-level request/reply
// services.
//
// The data path is flattened for steady-state zero allocation: tags are
// interned to dense IDs, every protocol record (dataMsg, pendingBcast,
// submit, RPC request/reply, service request, async update) lives on a free
// list and is recycled at delivery, and reply futures are pooled. See
// DESIGN.md §5b for why recycling at delivery is safe under the engine's
// deterministic (time, seq) dispatch order.
package orca

import (
	"fmt"
	"sync"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/netsim"
	"albatross/internal/sim"
)

// HeaderBytes is the protocol header added to every message's payload size.
const HeaderBytes = 32

// RTS is the runtime system for one simulated parallel machine. One instance
// serves all compute nodes; per-node state is kept internally.
type RTS struct {
	e    *sim.Engine
	net  *netsim.Network
	topo cluster.Topology

	nodes   []*nodeRTS
	objects []*Object
	seqr    Sequencer

	// rel, when non-nil, interposes sequenced retransmitting channels on
	// intercluster sends (see rel.go). Nil in the default perfect-network
	// configuration: the data path then pays one nil check per send.
	rel *relLayer

	// seqBusy is each sequencer node's ordering-work horizon, indexed by
	// node ID (only compute nodes ever order, but Total() is small).
	seqBusy []time.Duration

	// Tag interning: every distinct Tag gets a dense TagID; per-node
	// mailbox lookup is then a slice index instead of a map probe.
	tagIDs map[Tag]TagID
	tags   []Tag // TagID → Tag, for debug naming

	// debugNames controls whether data mailboxes get per-tag names (useful
	// in deadlock reports and traces, costly to format on every miss).
	debugNames bool

	// sharded mirrors the engine's mode; sh maps each cluster to its slice
	// of the hot mutable state (one shared slice on a plain engine).
	sharded bool
	sh      []*rtsShard

	// tagMu guards the tag-interning tables: the only RTS maps a sharded
	// run may touch mid-run (sharded apps should still intern at setup so
	// TagIDs stay deterministic; the lock makes a stray mid-run intern a
	// race-free nondeterminism bug instead of memory corruption).
	tagMu sync.Mutex

	// Free list for the ordered-broadcast records of the sequential engine.
	// On a sharded engine broadcast records are not pooled at all: their
	// references drop on several LPs, so Invoke allocates a fresh record per
	// write and leaves reclamation to the garbage collector (see
	// releaseBcast).
	bcastPool []*pendingBcast
}

// rtsShard is the per-cluster slice of the runtime's mutable hot state: the
// protocol-record free lists, pooled reply futures, cached call names and
// the logical-operation counters. On a plain engine every cluster references
// one shared rtsShard, so the sequential data path is unchanged; on a
// sharded engine each cluster gets its own, touched only from its LP thread
// (records acquired on one LP and recycled on another simply migrate between
// per-cluster free lists), and Ops() merges the counters deterministically.
type rtsShard struct {
	e *sim.Engine

	// callNames caches the "call <service>" future names so the blocking
	// Call path formats nothing per request.
	callNames map[string]string

	// Free lists for the protocol records of the steady-state data path.
	// Records are recycled at delivery, so sustained messaging allocates
	// nothing.
	dataPool   []*dataMsg
	reqPool    []*rpcReq
	repPool    []*rpcRep
	svcPool    []*serviceReq
	asyncPool  []*asyncDeliver
	submitPool []*submitMsg
	futPool    []*sim.Future

	ops OpStats
}

// nodeRTS is the per-compute-node runtime state.
type nodeRTS struct {
	id        cluster.NodeID
	sh        *rtsShard                 // the cluster's slice of the hot runtime state
	calls     []*sim.Future             // outstanding RPC/request replies, by slot
	freeCalls []uint64                  // recycled call slots (call IDs are slot indices)
	services  map[string]*sim.Mailbox   // registered application services
	handlers  map[string]func(*Request) // event-context service handlers
	data      []*sim.Mailbox            // raw tagged message queues, by TagID

	// Totally-ordered delivery state: updates apply in global sequence
	// order (one order across all replicated objects, as in Orca's single
	// logical sequencer); out-of-order arrivals are buffered in a small
	// reorder window. held[i] holds the update with sequence nextSeq+1+i
	// (seq == nextSeq applies immediately and is never stored).
	nextSeq uint64
	held    []*pendingBcast
}

// newCall allocates a call slot for an outstanding reply, recycling slot
// indices so the table stays dense however many calls a run makes.
func (nd *nodeRTS) newCall(f *sim.Future) uint64 {
	if k := len(nd.freeCalls); k > 0 {
		id := nd.freeCalls[k-1]
		nd.freeCalls = nd.freeCalls[:k-1]
		nd.calls[id] = f
		return id
	}
	nd.calls = append(nd.calls, f)
	return uint64(len(nd.calls) - 1)
}

// takeCall resolves a call slot back to its future and frees the slot.
func (nd *nodeRTS) takeCall(id uint64) *sim.Future {
	if id >= uint64(len(nd.calls)) || nd.calls[id] == nil {
		panic(fmt.Sprintf("orca: stray reply %d at node %d", id, nd.id))
	}
	f := nd.calls[id]
	nd.calls[id] = nil
	nd.freeCalls = append(nd.freeCalls, id)
	return f
}

// OpStats counts logical runtime operations (as opposed to the physical
// messages metered by netsim.Stats).
type OpStats struct {
	RPCs       int64 // remote invocations on non-replicated objects
	RPCBytes   int64 // argument + result payload bytes of those RPCs
	Bcasts     int64 // totally-ordered broadcasts (replicated writes)
	BcastBytes int64 // argument payload bytes of those broadcasts
	LocalOps   int64 // local reads/owner-local invocations
	Requests   int64 // application-level service requests
	DataMsgs   int64 // raw tagged messages
	DataBytes  int64
}

// New creates a runtime bound to the given network, using seqr for
// totally-ordered broadcast. If seqr is nil, DefaultSequencer is used.
func New(net *netsim.Network, seqr Sequencer) *RTS {
	topo := net.Topology()
	r := &RTS{
		e:       net.Engine(),
		net:     net,
		topo:    topo,
		seqBusy: make([]time.Duration, topo.Total()),
		tagIDs:  make(map[Tag]TagID),
	}
	// One rtsShard per cluster on a sharded engine, one shared by all
	// clusters otherwise (see the type comment).
	r.sh = make([]*rtsShard, topo.Clusters)
	if len(r.e.Shards()) > 0 {
		r.sharded = true
		for c := range r.sh {
			r.sh[c] = &rtsShard{e: net.EngineFor(c), callNames: make(map[string]string)}
		}
	} else {
		one := &rtsShard{e: r.e, callNames: make(map[string]string)}
		for c := range r.sh {
			r.sh[c] = one
		}
	}
	r.nodes = make([]*nodeRTS, topo.Compute())
	for i := range r.nodes {
		id := cluster.NodeID(i)
		r.nodes[i] = &nodeRTS{
			id:       id,
			sh:       r.sh[topo.ClusterOf(id)],
			services: make(map[string]*sim.Mailbox),
			handlers: make(map[string]func(*Request)),
		}
		net.SetHandler(id, r.dispatchFor(id))
	}
	if topo.Clusters > 1 {
		for c := 0; c < topo.Clusters; c++ {
			gw := topo.Gateway(c)
			net.SetHandler(gw, r.gatewayDispatch)
		}
	}
	if seqr == nil {
		seqr = DefaultSequencer(topo)
	}
	r.seqr = seqr
	seqr.attach(r)
	return r
}

// DefaultSequencer returns the sequencer the paper's system uses by default:
// a centralized sequencer on a single cluster, the distributed per-cluster
// rotating sequencer on a wide-area system.
func DefaultSequencer(topo cluster.Topology) Sequencer {
	if topo.Clusters > 1 {
		return NewRotatingSequencer()
	}
	return NewCentralSequencer(0)
}

// Engine returns the underlying simulation engine.
func (r *RTS) Engine() *sim.Engine { return r.e }

// Network returns the underlying network.
func (r *RTS) Network() *netsim.Network { return r.net }

// Topology returns the platform topology.
func (r *RTS) Topology() cluster.Topology { return r.topo }

// Ops returns the logical operation counters accumulated so far. On a
// sharded engine the per-cluster counters are summed; integer sums are
// order-independent, so the merge is deterministic.
func (r *RTS) Ops() OpStats {
	if !r.sharded {
		return r.sh[0].ops
	}
	var t OpStats
	for _, sh := range r.sh {
		o := &sh.ops
		t.RPCs += o.RPCs
		t.RPCBytes += o.RPCBytes
		t.Bcasts += o.Bcasts
		t.BcastBytes += o.BcastBytes
		t.LocalOps += o.LocalOps
		t.Requests += o.Requests
		t.DataMsgs += o.DataMsgs
		t.DataBytes += o.DataBytes
	}
	return t
}

// Sequencer returns the totally-ordered broadcast protocol in use.
func (r *RTS) Sequencer() Sequencer { return r.seqr }

// SetDebugNames enables per-tag data-mailbox naming ("data {sor 0 3}@5"
// instead of "data"), for readable deadlock reports and traces. Off by
// default: the name is formatted on every mailbox miss, which is pure
// overhead when nothing reads it. Enable before the run starts.
func (r *RTS) SetDebugNames(on bool) { r.debugNames = on }

// message payloads (internal protocol)

type rpcReq struct {
	callID uint64
	objID  int
	op     Op
}

type rpcRep struct {
	callID uint64
	result any
}

type serviceReq struct {
	callID  uint64
	from    cluster.NodeID
	service string
	payload any
}

type dataMsg struct {
	id      TagID
	payload any
}

// record free-list accessors: pop a recycled record or allocate the first
// few. Every get* has a matching recycle site in the dispatch path. The
// receiver is the shard of the cluster whose LP is executing, so each free
// list is touched by one thread only.

func (sh *rtsShard) getDataMsg() *dataMsg {
	if k := len(sh.dataPool); k > 0 {
		d := sh.dataPool[k-1]
		sh.dataPool = sh.dataPool[:k-1]
		return d
	}
	return new(dataMsg)
}

func (sh *rtsShard) getReq() *rpcReq {
	if k := len(sh.reqPool); k > 0 {
		q := sh.reqPool[k-1]
		sh.reqPool = sh.reqPool[:k-1]
		return q
	}
	return new(rpcReq)
}

func (sh *rtsShard) getRep() *rpcRep {
	if k := len(sh.repPool); k > 0 {
		q := sh.repPool[k-1]
		sh.repPool = sh.repPool[:k-1]
		return q
	}
	return new(rpcRep)
}

func (sh *rtsShard) getSvc() *serviceReq {
	if k := len(sh.svcPool); k > 0 {
		q := sh.svcPool[k-1]
		sh.svcPool = sh.svcPool[:k-1]
		return q
	}
	return new(serviceReq)
}

func (sh *rtsShard) getAsync() *asyncDeliver {
	if k := len(sh.asyncPool); k > 0 {
		a := sh.asyncPool[k-1]
		sh.asyncPool = sh.asyncPool[:k-1]
		return a
	}
	return new(asyncDeliver)
}

// getFuture pools the one-shot reply futures of RPCs and blocking calls:
// the caller must return the future with putFuture once Await has consumed
// the value.
func (sh *rtsShard) getFuture(name string) *sim.Future {
	if k := len(sh.futPool); k > 0 {
		f := sh.futPool[k-1]
		sh.futPool = sh.futPool[:k-1]
		f.Reset(name)
		return f
	}
	return sim.NewFuture(sh.e, name)
}

func (sh *rtsShard) putFuture(f *sim.Future) { sh.futPool = append(sh.futPool, f) }

// dispatchFor returns the network delivery handler of a compute node.
func (r *RTS) dispatchFor(id cluster.NodeID) netsim.Handler {
	nd := r.nodes[id]
	return func(m netsim.Msg) { r.dispatchPayload(id, nd, m) }
}

// dispatchPayload consumes one delivered message at a compute node. It is
// called by the node's network handler and, for messages that travelled in a
// reliable envelope, by the reliability layer after unwrapping.
func (r *RTS) dispatchPayload(id cluster.NodeID, nd *nodeRTS, m netsim.Msg) {
	switch pl := m.Payload.(type) {
	case *rpcReq:
		obj := r.objects[pl.objID]
		res := pl.op.Apply(obj.state)
		size := pl.op.ResBytes + HeaderBytes
		callID := pl.callID
		pl.op = Op{} // drop the closure reference while pooled
		nd.sh.reqPool = append(nd.sh.reqPool, pl)
		rep := nd.sh.getRep()
		rep.callID, rep.result = callID, res
		r.send(netsim.Msg{
			From: id, To: m.From, Kind: netsim.KindRPCRep,
			Size:    size,
			Payload: rep,
		})
	case *rpcRep:
		f := nd.takeCall(pl.callID)
		res := pl.result
		pl.result = nil
		nd.sh.repPool = append(nd.sh.repPool, pl)
		f.Set(res)
	case *pendingBcast:
		r.applyOrdered(id, pl)
	case *asyncDeliver:
		res := pl.op.Apply(pl.obj.replicas[id])
		if pl.obj.applied != nil {
			pl.obj.applied(id, pl.op, res)
		}
		if pl.refs--; pl.refs == 0 {
			pl.obj = nil
			pl.op = Op{}
			nd.sh.asyncPool = append(nd.sh.asyncPool, pl)
		}
	case *serviceReq:
		req := &Request{rts: r, ID: pl.callID, From: pl.from, To: id, Payload: pl.payload}
		svc := pl.service
		pl.payload = nil
		pl.service = ""
		nd.sh.svcPool = append(nd.sh.svcPool, pl)
		if fn, ok := nd.handlers[svc]; ok {
			fn(req)
		} else if mb, ok := nd.services[svc]; ok {
			mb.Put(req)
		} else {
			panic(fmt.Sprintf("orca: no service %q at node %d", svc, id))
		}
	case *dataMsg:
		tid, payload := pl.id, pl.payload
		pl.payload = nil
		nd.sh.dataPool = append(nd.sh.dataPool, pl)
		r.dataMailbox(nd, tid).Put(payload)
	case *relEnvelope:
		r.rel.onEnvelope(pl)
	case *relAck:
		r.rel.onAck(pl)
	case seqProtoMsg:
		pl.deliver(r)
	default:
		panic(fmt.Sprintf("orca: unknown payload %T at node %d", m.Payload, id))
	}
}

// gatewayDispatch handles protocol traffic addressed to gateways: broadcast
// relays and sequencer control messages. Ordered and unordered updates
// travel as their own records (no relay wrapper): the gateway re-broadcasts
// the very record it received into its cluster.
func (r *RTS) gatewayDispatch(m netsim.Msg) {
	switch pl := m.Payload.(type) {
	case *pendingBcast:
		// Re-broadcast into the local cluster using hardware multicast.
		r.net.BcastLocal(m.To, netsim.KindBcast, m.Size, pl)
	case *asyncDeliver:
		r.net.BcastLocal(m.To, netsim.KindBcast, m.Size, pl)
	case *relEnvelope:
		r.rel.onEnvelope(pl)
	case *relAck:
		r.rel.onAck(pl)
	case seqProtoMsg:
		pl.deliver(r)
	default:
		panic(fmt.Sprintf("orca: unknown gateway payload %T", m.Payload))
	}
}

// seqProtoMsg is implemented by sequencer-internal control messages.
type seqProtoMsg interface{ deliver(r *RTS) }

// distribute sends an ordered broadcast to every compute node: hardware
// multicast in the orderer's cluster, one WAN message per remote cluster
// relayed through its gateway. orderer must be a compute node.
//
// Ordering work serializes on the orderer (Params.OrderCost per message), so
// a single central sequencer caps broadcast throughput system-wide; the
// per-cluster distributed sequencer spreads that work over the clusters.
func (r *RTS) distribute(orderer cluster.NodeID, seq uint64, b *pendingBcast) {
	// Every call site executes at the orderer's own node (the sequencer
	// protocols route each submission there first), so on a sharded engine
	// this is the LP-pinned sequencer mode of DESIGN.md §5d: the ordering
	// horizon (seqBusy[orderer]) and the delivery schedule are state of the
	// orderer's LP, touched only from its thread, and the fan-out in b.fn
	// rides hardware multicast locally plus ≥lookahead WAN hops remotely.
	e := r.sh[r.topo.ClusterOf(orderer)].e
	start := e.Now()
	if busy := r.seqBusy[orderer]; busy > start {
		start = busy
	}
	start += r.net.Params().OrderCost
	r.seqBusy[orderer] = start
	b.orderer, b.seq = orderer, seq
	e.At(start, b.fn)
}

func (r *RTS) distributeNow(b *pendingBcast) {
	r.net.BcastLocal(b.orderer, netsim.KindBcast, b.size, b)
	oc := r.topo.ClusterOf(b.orderer)
	for c := 0; c < r.topo.Clusters; c++ {
		if c == oc {
			continue
		}
		r.send(netsim.Msg{
			From: b.orderer, To: r.topo.Gateway(c), Kind: netsim.KindBcast,
			Size:    b.size,
			Payload: b,
		})
	}
}

// applyOrdered applies ordered update b at node id, buffering out-of-order
// arrivals in the node's reorder window so every node applies the same
// total order.
func (r *RTS) applyOrdered(id cluster.NodeID, b *pendingBcast) {
	nd := r.nodes[id]
	if off := int(b.seq - nd.nextSeq); off > 0 {
		for len(nd.held) < off {
			nd.held = append(nd.held, nil)
		}
		nd.held[off-1] = b
		return
	}
	nb := b
	for {
		r.applyNow(id, nd, nb)
		// applyNow advanced nextSeq, so the whole window shifts down one
		// slot — even when the head slot is an unfilled gap.
		if len(nd.held) == 0 {
			return
		}
		nb = nd.held[0]
		k := copy(nd.held, nd.held[1:])
		nd.held[k] = nil
		nd.held = nd.held[:k]
		if nb == nil {
			return
		}
	}
}

// applyNow applies one in-order update at a node and drops the node's
// reference to it.
func (r *RTS) applyNow(id cluster.NodeID, nd *nodeRTS, nb *pendingBcast) {
	nd.nextSeq++
	res := nb.op.Apply(nb.obj.replicas[id])
	if nb.obj.applied != nil {
		nb.obj.applied(id, nb.op, res)
	}
	if nb.from == id {
		// Writer semantics: the invocation returns (and unblocks)
		// when the writer's own copy has been updated.
		nb.done.Set(res)
	}
	r.releaseBcast(nb)
}
