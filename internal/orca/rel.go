package orca

import (
	"fmt"
	"sort"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/netsim"
	"albatross/internal/sim"
)

// Reliability layer: sequenced, retransmitting channels over the lossy WAN.
//
// With a fault policy installed the network may drop, duplicate or reorder
// intercluster messages. EnableReliability interposes a per-directed-node-pair
// reliable channel on every intercluster protocol send: messages travel in
// sequence-numbered envelopes, the receiver suppresses duplicates and restores
// send order, and the sender keeps a bounded window on the wire — new
// envelopes transmit ack-clocked as cumulative acknowledgements slide the
// window, and a virtual-time timer with exponential backoff retransmits the
// window when acknowledgements stop.
//
// This one mechanism yields all the recovery guarantees the runtime needs:
//
//   - RPC timeout/retry: requests and replies are wrapped like everything
//     else, so a lost request or reply is retransmitted until acknowledged.
//   - At-most-once execution: the receiver's duplicate suppression is a
//     generalized reply cache — a retransmitted request whose original was
//     executed is recognized by sequence number and never re-dispatched, so
//     non-idempotent operations execute exactly once.
//   - Sequencer token-loss recovery: token and migration-request control
//     messages cross the WAN through the same channels, so a lost token is
//     detected by its sender's timer and retransmitted (bounded by
//     MaxAttempts when set).
//
// Record pooling stays sound under retransmission because recycling happens
// only when a record is dispatched, and the channel dispatches each
// envelope's inner record at most once: a retransmitted copy whose original
// was delivered is dropped by sequence number before its (possibly recycled
// and reused) inner record is ever touched.
//
// Intracluster traffic is never faulted and bypasses the layer entirely.
// With reliability off (the default), every send costs one extra nil check.

// relHeaderBytes is the wire overhead of a reliable envelope (sequence
// number), added to the wrapped message's size.
const relHeaderBytes = 8

// relAckBytes is the wire size of a cumulative acknowledgement.
const relAckBytes = 8 + HeaderBytes

// relWindow is the channel's transmission window: at most this many
// unacknowledged envelopes are ever on the wire. Later envelopes wait in the
// queue and are transmitted ack-clocked, as acknowledgements slide the
// window. The window is what makes recovery stable: a sender that dumped its
// whole backlog on every timeout would flood the WAN pipe faster than it
// drains, delivery latency would diverge, and no acknowledgement would ever
// return in time to stop the retransmissions (congestion collapse — observed
// with RA's fire-hose of asynchronous batches after a gateway outage). With
// the window, a channel's worst-case timeout load is window × envelope size
// per backed-off RTO, safely under the paper's WAN bandwidth, while healthy
// channels transmit at wire speed paced by their own acks.
const relWindow = 16

// RelConfig parameterizes the reliability layer.
type RelConfig struct {
	// RTO is the initial retransmit timeout. Zero means 10ms of virtual
	// time (several WAN round trips on the paper's platform).
	RTO time.Duration
	// MaxRTO caps the exponential backoff. Zero means 32×RTO.
	MaxRTO time.Duration
	// MaxAttempts bounds transmissions per envelope (first send plus
	// retransmits). Zero means retry forever. When a sender exhausts its
	// attempts it gives up: the run then stalls and the engine's watchdog
	// reports the parked processes.
	MaxAttempts int
}

func (c RelConfig) withDefaults() RelConfig {
	if c.RTO <= 0 {
		c.RTO = 10 * time.Millisecond
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = 32 * c.RTO
	}
	return c
}

// RelStats tallies the reliability layer's work over a run.
type RelStats struct {
	Wrapped     uint64 // intercluster messages sent through reliable channels
	Retransmits uint64 // envelopes retransmitted by timers
	DupDropped  uint64 // received envelopes suppressed as duplicates
	OutOfOrder  uint64 // received envelopes buffered to restore send order
	Acks        uint64 // acknowledgements received
	GiveUps     uint64 // senders that exhausted MaxAttempts
}

// pairKey identifies one directed reliable channel.
type pairKey struct {
	from, to cluster.NodeID
}

// relEnvelope is the wire wrapper of one reliable message. Envelopes are
// never pooled: a fault-duplicated copy may surface long after delivery, and
// it must still carry its original sequence number to be recognized and
// dropped.
type relEnvelope struct {
	from, to cluster.NodeID
	seq      uint64
	kind     netsim.Kind
	size     int // inner wire size, without the envelope header
	inner    any
}

// relAck is a cumulative acknowledgement: every envelope of channel
// (from, to) with seq < upTo has been received. Acks travel raw (not
// reliable themselves): a lost ack is recovered when the retransmitted
// envelope provokes a fresh one.
type relAck struct {
	from, to cluster.NodeID // the data direction being acknowledged
	upTo     uint64
}

// relShard is the per-cluster slice of the reliability layer's mutable
// state: the engine that executes the cluster's events plus the channel
// maps and tallies its LP touches. Channel state is partitioned by the
// endpoint that owns it — a sender (keyed from→to) lives in from's
// cluster's shard because sendReliable, onAck and the retransmit timer all
// execute on from's LP; a receiver lives in to's cluster's shard because
// envelopes are delivered on to's LP. On a plain engine every cluster
// references one shared relShard, so the sequential layer is exactly what
// it was.
type relShard struct {
	e     *sim.Engine
	stats RelStats
	send  map[pairKey]*relSender
	recv  map[pairKey]*relReceiver
}

// relLayer is the runtime's reliability state: one sender per outgoing and
// one receiver per incoming directed channel, created on first use in the
// owning endpoint's shard.
type relLayer struct {
	r   *RTS
	cfg RelConfig
	sh  []*relShard // cluster → shard (all one shard when unsharded)
}

// shardOf returns the shard owning node id's channel state.
func (l *relLayer) shardOf(id cluster.NodeID) *relShard {
	return l.sh[l.r.topo.ClusterOf(id)]
}

// EnableReliability interposes reliable channels on all intercluster
// protocol traffic. Call it once, before the run starts: channels number
// messages from the first send, so enabling mid-run would present unknown
// sequence numbers to the receivers.
func (r *RTS) EnableReliability(cfg RelConfig) {
	if r.rel != nil {
		panic("orca: EnableReliability called twice")
	}
	if r.e.Now() != 0 {
		panic("orca: EnableReliability after the run started")
	}
	l := &relLayer{r: r, cfg: cfg.withDefaults()}
	l.sh = make([]*relShard, r.topo.Clusters)
	if r.sharded {
		for c := range l.sh {
			l.sh[c] = &relShard{
				e:    r.net.EngineFor(c),
				send: make(map[pairKey]*relSender),
				recv: make(map[pairKey]*relReceiver),
			}
		}
	} else {
		one := &relShard{
			e:    r.e,
			send: make(map[pairKey]*relSender),
			recv: make(map[pairKey]*relReceiver),
		}
		for c := range l.sh {
			l.sh[c] = one
		}
	}
	r.rel = l
}

// RelStats returns the reliability tallies so far (zero value when
// reliability is disabled). On a sharded engine it sums the per-cluster
// tallies — integer sums are order-independent, so the merge is
// deterministic; call it only while the simulation is stopped.
func (r *RTS) RelStats() RelStats {
	if r.rel == nil {
		return RelStats{}
	}
	if !r.sharded {
		return r.rel.sh[0].stats
	}
	var tot RelStats
	for _, sh := range r.rel.sh {
		tot.Wrapped += sh.stats.Wrapped
		tot.Retransmits += sh.stats.Retransmits
		tot.DupDropped += sh.stats.DupDropped
		tot.OutOfOrder += sh.stats.OutOfOrder
		tot.Acks += sh.stats.Acks
		tot.GiveUps += sh.stats.GiveUps
	}
	return tot
}

// send routes one protocol message: intercluster sends go through the
// reliability layer when it is enabled, everything else straight to the
// network.
func (r *RTS) send(m netsim.Msg) {
	if r.rel != nil && r.topo.ClusterOf(m.From) != r.topo.ClusterOf(m.To) {
		r.rel.sendReliable(m)
		return
	}
	r.net.Send(m)
}

// relSender is the sending end of one directed channel. It lives in the
// sending cluster's shard: creation, ack handling and the retransmit timer
// all execute on that cluster's LP.
type relSender struct {
	l       *relLayer
	sh      *relShard // owning (sending cluster's) shard
	key     pairKey
	nextSeq uint64
	queue   []*relEnvelope // sent but unacknowledged, in sequence order

	rto      time.Duration // current backoff value
	deadline time.Duration // virtual instant the current wait expires
	pending  bool          // a timer event is scheduled
	attempts int           // retransmit rounds since the last ack progress
	gaveUp   bool
	timerFn  func() // bound once to onTimer
}

func (l *relLayer) sender(sh *relShard, key pairKey) *relSender {
	s := sh.send[key]
	if s == nil {
		s = &relSender{l: l, sh: sh, key: key, rto: l.cfg.RTO}
		s.timerFn = s.onTimer
		sh.send[key] = s
	}
	return s
}

func (l *relLayer) sendReliable(m netsim.Msg) {
	sh := l.shardOf(m.From)
	s := l.sender(sh, pairKey{m.From, m.To})
	env := &relEnvelope{
		from: m.From, to: m.To,
		seq:  s.nextSeq,
		kind: m.Kind, size: m.Size,
		inner: m.Payload,
	}
	s.nextSeq++
	sh.stats.Wrapped++
	if s.gaveUp {
		// The channel is dead; queue for the post-mortem but send nothing.
		s.queue = append(s.queue, env)
		return
	}
	s.queue = append(s.queue, env)
	if len(s.queue) <= relWindow {
		l.transmit(env)
	}
	if len(s.queue) == 1 {
		s.arm()
	}
}

// transmit puts one envelope on the wire.
func (l *relLayer) transmit(env *relEnvelope) {
	l.r.net.Send(netsim.Msg{
		From: env.from, To: env.to, Kind: env.kind,
		Size:    env.size + relHeaderBytes,
		Payload: env,
	})
}

// arm starts (or extends) the retransmit wait. At most one timer event is
// outstanding per sender; a timer firing before the current deadline
// reschedules itself lazily.
func (s *relSender) arm() {
	now := s.sh.e.Now()
	s.deadline = now + s.rto
	if !s.pending {
		s.pending = true
		s.sh.e.At(s.deadline, s.timerFn)
	}
}

func (s *relSender) onTimer() {
	s.pending = false
	if len(s.queue) == 0 || s.gaveUp {
		// Nothing outstanding: do not rearm, so an idle channel's timer
		// lapses and inflates the run's virtual end time by at most one
		// backoff interval past the last traffic.
		return
	}
	now := s.sh.e.Now()
	if now < s.deadline {
		// Ack progress pushed the deadline out while this event was in
		// flight; sleep again until the real deadline.
		s.pending = true
		s.sh.e.At(s.deadline, s.timerFn)
		return
	}
	// Timeout. The first one after progress usually means one lost
	// envelope: the receiver holds everything behind the gap, so resending
	// the head alone restores the whole window (the cumulative ack jumps).
	// A repeat timeout means the damage is wider — an outage swallowed the
	// window — so resend all of it.
	cfg := s.l.cfg
	s.attempts++
	if cfg.MaxAttempts > 0 && s.attempts >= cfg.MaxAttempts {
		s.gaveUp = true
		s.sh.stats.GiveUps++
		return
	}
	n := 1
	if s.attempts > 1 {
		n = len(s.queue)
		if n > relWindow {
			n = relWindow
		}
	}
	for _, env := range s.queue[:n] {
		s.sh.stats.Retransmits++
		s.l.transmit(env)
	}
	if s.rto *= 2; s.rto > cfg.MaxRTO {
		s.rto = cfg.MaxRTO
	}
	s.arm()
}

// onAck handles a cumulative acknowledgement at the sending node (the
// sending cluster's LP, where the channel's shard lives).
func (l *relLayer) onAck(a *relAck) {
	sh := l.shardOf(a.from)
	sh.stats.Acks++
	s := sh.send[pairKey{a.from, a.to}]
	if s == nil {
		return // ack for a channel we never opened (cannot happen in practice)
	}
	drop := 0
	for drop < len(s.queue) && s.queue[drop].seq < a.upTo {
		s.queue[drop] = nil
		drop++
	}
	if drop == 0 {
		return // stale duplicate ack, no progress
	}
	k := copy(s.queue, s.queue[drop:])
	for i := k; i < len(s.queue); i++ {
		s.queue[i] = nil
	}
	s.queue = s.queue[:k]
	// Ack-clocked transmission: the ack slid the window forward by drop
	// positions, so the envelopes newly inside it go on the wire now (their
	// first transmission — everything at an index below relWindow has
	// already been sent).
	lo, hi := relWindow-drop, len(s.queue)
	if lo < 0 {
		lo = 0
	}
	if hi > relWindow {
		hi = relWindow
	}
	for i := lo; i < hi; i++ {
		l.transmit(s.queue[i])
	}
	// Progress halves the backoff rather than resetting it: under heavy
	// load the gap between progress acks is queueing delay, not loss, and
	// an RTO snapped back to its floor would fire spuriously every
	// interval, resending a window the receiver already has. Halving lets
	// the timeout float near the observed ack gap and decay to the floor
	// only as the congestion does.
	if s.rto /= 2; s.rto < l.cfg.RTO {
		s.rto = l.cfg.RTO
	}
	s.attempts = 0
	if len(s.queue) > 0 {
		s.arm()
	}
}

// relReceiver is the receiving end of one directed channel. It lives in the
// receiving cluster's shard: envelopes are delivered on that cluster's LP.
type relReceiver struct {
	l    *relLayer
	sh   *relShard // owning (receiving cluster's) shard
	key  pairKey
	next uint64         // lowest sequence number not yet delivered
	held []*relEnvelope // out-of-order buffer, sorted by seq, no duplicates
}

func (l *relLayer) receiver(sh *relShard, key pairKey) *relReceiver {
	rc := sh.recv[key]
	if rc == nil {
		rc = &relReceiver{l: l, sh: sh, key: key}
		sh.recv[key] = rc
	}
	return rc
}

// onEnvelope handles one arriving envelope at the receiving node.
func (l *relLayer) onEnvelope(env *relEnvelope) {
	rc := l.receiver(l.shardOf(env.to), pairKey{env.from, env.to})
	switch {
	case env.seq < rc.next:
		// Duplicate (retransmit or fault duplication) of a delivered
		// envelope. Re-ack so the sender stops retransmitting even when the
		// original ack was lost.
		rc.sh.stats.DupDropped++
		rc.sendAck()
		return
	case env.seq > rc.next:
		// Early arrival: hold it to restore send order. FIFO channels only
		// reach here under fault reordering or a retransmit racing a held
		// predecessor, so the buffer stays tiny.
		if !rc.hold(env) {
			rc.sh.stats.DupDropped++
			return // duplicate of an already-held envelope
		}
		rc.sh.stats.OutOfOrder++
		rc.sendAck()
		return
	}
	// In order: deliver, then drain any held successors.
	rc.next++
	l.deliverInner(env)
	for len(rc.held) > 0 && rc.held[0].seq == rc.next {
		h := rc.held[0]
		k := copy(rc.held, rc.held[1:])
		rc.held[k] = nil
		rc.held = rc.held[:k]
		rc.next++
		l.deliverInner(h)
	}
	rc.sendAck()
}

// hold inserts env into the sorted out-of-order buffer; false if a copy of
// this sequence number is already held.
func (rc *relReceiver) hold(env *relEnvelope) bool {
	i := 0
	for i < len(rc.held) && rc.held[i].seq < env.seq {
		i++
	}
	if i < len(rc.held) && rc.held[i].seq == env.seq {
		return false
	}
	rc.held = append(rc.held, nil)
	copy(rc.held[i+1:], rc.held[i:])
	rc.held[i] = env
	return true
}

// sendAck reports cumulative progress back to the sender, raw (unreliable):
// a lost ack is recovered by the retransmit → re-ack cycle.
func (rc *relReceiver) sendAck() {
	a := &relAck{from: rc.key.from, to: rc.key.to, upTo: rc.next}
	rc.l.r.net.Send(netsim.Msg{
		From: rc.key.to, To: rc.key.from, Kind: netsim.KindControl,
		Size:    relAckBytes,
		Payload: a,
	})
}

// deliverInner dispatches a delivered envelope's wrapped message exactly as
// the network would have delivered the unwrapped original.
func (l *relLayer) deliverInner(env *relEnvelope) {
	r := l.r
	m := netsim.Msg{From: env.from, To: env.to, Kind: env.kind, Size: env.size, Payload: env.inner}
	if int(env.to) >= len(r.nodes) {
		// Gateways sit above the compute-node range; their traffic routes
		// through the relay dispatcher.
		r.gatewayDispatch(m)
		return
	}
	r.dispatchPayload(env.to, r.nodes[env.to], m)
}

// StalledChannels describes the channels whose senders have given up, for
// post-mortem diagnosis after a DeadlockError or DeadlineError. Sorted, so
// the rendering is deterministic in both engine modes.
func (r *RTS) StalledChannels() []string {
	if r.rel == nil {
		return nil
	}
	var out []string
	gather := func(sh *relShard) {
		for key, s := range sh.send {
			if s.gaveUp {
				out = append(out, fmt.Sprintf("%d->%d (%d unacked)", key.from, key.to, len(s.queue)))
			}
		}
	}
	if !r.sharded {
		gather(r.rel.sh[0])
	} else {
		for _, sh := range r.rel.sh {
			gather(sh)
		}
	}
	sort.Strings(out)
	return out
}
