package orca

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/faults"
	"albatross/internal/netsim"
	"albatross/internal/sim"
)

// buildFaulty builds a multi-cluster runtime with a seeded fault injector
// and the reliability layer enabled.
func buildFaulty(t *testing.T, clusters, npc int, seqr Sequencer, plan faults.Plan, cfg RelConfig) (*sim.Engine, *netsim.Network, *RTS, *faults.Injector) {
	t.Helper()
	e, net, rts := build(clusters, npc, seqr)
	in, err := faults.NewInjector(plan)
	if err != nil {
		t.Fatal(err)
	}
	net.SetFaultPolicy(in)
	rts.EnableReliability(cfg)
	return e, net, rts, in
}

func TestRPCAtMostOnceUnderDrop(t *testing.T) {
	// Cross-cluster RPCs over a 20% lossy WAN: every call must return the
	// right answer, and every operation must execute exactly once even
	// though requests and replies are retransmitted.
	plan := faults.Plan{Seed: 11, Default: faults.PairProbs{Drop: 0.2}}
	e, _, rts, in := buildFaulty(t, 2, 2, nil, plan, RelConfig{})
	executions := 0
	countingInc := Op{Name: "inc", ArgBytes: 8, ResBytes: 8,
		Apply: func(s any) any { c := s.(*counter); executions++; c.n++; return c.n }}
	obj := rts.NewObject("c", 0, &counter{})
	const calls = 60
	var results []int
	e.Go("caller", func(p *sim.Proc) {
		for i := 0; i < calls; i++ {
			// Node 2 lives in cluster 1; the object's owner in cluster 0.
			results = append(results, obj.Invoke(p, 2, countingInc).(int))
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if executions != calls {
		t.Fatalf("operation executed %d times for %d calls (at-most-once violated)", executions, calls)
	}
	for i, res := range results {
		if res != i+1 {
			t.Fatalf("call %d returned %d, want %d", i, res, i+1)
		}
	}
	if c := in.Counters(); c.Drops == 0 {
		t.Fatal("plan injected no drops; test proved nothing")
	}
	if s := rts.RelStats(); s.Retransmits == 0 || s.DupDropped == 0 {
		t.Fatalf("expected retransmits and duplicate suppressions, got %+v", s)
	}
}

func TestDataInOrderUnderReorderAndDuplication(t *testing.T) {
	// Tagged data across the WAN under reordering and duplication: the
	// receiver must see exactly the sent stream, in send order.
	plan := faults.Plan{
		Seed:         5,
		Default:      faults.PairProbs{Duplicate: 0.15, Reorder: 0.15},
		ReorderDelay: 20 * time.Millisecond,
	}
	e, _, rts, in := buildFaulty(t, 2, 2, nil, plan, RelConfig{})
	tag := Tag{Op: "stream"}
	const k = 80
	for i := 0; i < k; i++ {
		rts.SendData(0, 3, tag, 64, i)
	}
	var got []int
	e.Go("recv", func(p *sim.Proc) {
		for i := 0; i < k; i++ {
			got = append(got, rts.RecvData(p, 3, tag).(int))
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("message %d carried payload %d: order or integrity lost", i, v)
		}
	}
	c := in.Counters()
	if c.Duplicates == 0 || c.Reorders == 0 {
		t.Fatalf("plan injected nothing: %+v", c)
	}
	if s := rts.RelStats(); s.DupDropped == 0 {
		t.Fatalf("no duplicates suppressed: %+v", s)
	}
}

func TestReplicatedWritesSurviveTokenLoss(t *testing.T) {
	// The rotating sequencer's token crosses the WAN as a control message;
	// under loss the reliability layer must detect and retransmit it, or the
	// whole broadcast protocol wedges.
	plan := faults.Plan{Seed: 23, Default: faults.PairProbs{Drop: 0.25}}
	e, _, rts, _ := buildFaulty(t, 3, 2, NewRotatingSequencer(), plan, RelConfig{})
	obj := rts.NewReplicated("c", func(cluster.NodeID) any { return &counter{} })
	const writes = 5
	for c := 0; c < 3; c++ {
		node := cluster.NodeID(c * 2)
		e.Go("writer", func(p *sim.Proc) {
			for i := 0; i < writes; i++ {
				obj.Invoke(p, node, incOp(1))
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Every replica must have applied all 15 writes in the same total order.
	for id := 0; id < 6; id++ {
		if n := obj.Replica(cluster.NodeID(id)).(*counter).n; n != 3*writes {
			t.Fatalf("replica %d has %d, want %d", id, n, 3*writes)
		}
	}
}

func TestGiveUpStallsWithDiagnosis(t *testing.T) {
	// A channel that exhausts MaxAttempts on a fully dead link stops
	// retransmitting; the run stalls and the engine names the parked proc,
	// while StalledChannels identifies the dead channel.
	plan := faults.Plan{Default: faults.PairProbs{Drop: 1}}
	e, _, rts, _ := buildFaulty(t, 2, 2, nil, plan, RelConfig{MaxAttempts: 3})
	obj := rts.NewObject("c", 0, &counter{})
	e.Go("caller", func(p *sim.Proc) {
		obj.Invoke(p, 2, incOp(1))
	})
	err := e.Run()
	var dl *sim.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("run returned %v, want DeadlockError", err)
	}
	if len(dl.Parked) != 1 || !strings.Contains(dl.Parked[0], "caller") {
		t.Fatalf("deadlock report %q does not name the stuck caller", dl.Parked)
	}
	if s := rts.RelStats(); s.GiveUps == 0 {
		t.Fatalf("no give-up recorded: %+v", s)
	}
	stalled := rts.StalledChannels()
	if len(stalled) != 1 || !strings.Contains(stalled[0], "2->0") {
		t.Fatalf("stalled channels %v, want the 2->0 request channel", stalled)
	}
}

func TestStallWithoutReliability(t *testing.T) {
	// The acceptance scenario: drops with retries disabled yield a
	// DeadlockError naming the parked procs instead of a hang.
	e, net, rts := build(2, 2, nil)
	net.SetFaultPolicy(faults.MustInjector(faults.Plan{Default: faults.PairProbs{Drop: 1}}))
	obj := rts.NewObject("c", 0, &counter{})
	e.Go("victim", func(p *sim.Proc) {
		obj.Invoke(p, 2, incOp(1))
	})
	err := e.Run()
	var dl *sim.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("run returned %v, want DeadlockError", err)
	}
	if len(dl.Parked) != 1 || !strings.Contains(dl.Parked[0], "victim") {
		t.Fatalf("deadlock report %q does not name the victim", dl.Parked)
	}
}

func TestFutureReuseUnderRetry(t *testing.T) {
	// Pooled reply futures are Reset and reused across calls; under heavy
	// retransmission each future must still fire exactly once per call.
	// Sequential blocking calls force the pool to recycle one future while
	// retransmits of earlier (already-answered) requests are still in
	// flight.
	plan := faults.Plan{Seed: 31, Default: faults.PairProbs{Drop: 0.3, Duplicate: 0.1}}
	e, _, rts, _ := buildFaulty(t, 2, 2, nil, plan, RelConfig{RTO: 5 * time.Millisecond})
	rts.HandleService(0, "echo", func(q *Request) {
		q.Reply(8, q.Payload)
	})
	const calls = 50
	e.Go("caller", func(p *sim.Proc) {
		for i := 0; i < calls; i++ {
			if got := rts.Call(p, 2, 0, "echo", 8, i); got.(int) != i {
				t.Errorf("call %d echoed %v", i, got)
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestChannelDeterminism(t *testing.T) {
	// Same plan, same seed, same workload: three runs must agree exactly on
	// virtual elapsed time, dispatched events and reliability tallies.
	run := func() (time.Duration, uint64, RelStats) {
		plan := faults.Plan{
			Seed:         77,
			Default:      faults.PairProbs{Drop: 0.15, Duplicate: 0.05, Reorder: 0.05},
			ReorderDelay: 10 * time.Millisecond,
		}
		e, _, rts, _ := buildFaulty(t, 2, 2, nil, plan, RelConfig{})
		obj := rts.NewObject("c", 0, &counter{})
		e.Go("caller", func(p *sim.Proc) {
			for i := 0; i < 30; i++ {
				obj.Invoke(p, 2, incOp(1))
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		elapsed, dispatched, stats := e.Now(), e.Dispatched(), rts.RelStats()
		e.Shutdown()
		return elapsed, dispatched, stats
	}
	e1, d1, s1 := run()
	for i := 0; i < 2; i++ {
		e2, d2, s2 := run()
		if e1 != e2 || d1 != d2 || s1 != s2 {
			t.Fatalf("diverged: (%v, %d, %+v) vs (%v, %d, %+v)", e1, d1, s1, e2, d2, s2)
		}
	}
}

func TestEnableReliabilityGuards(t *testing.T) {
	_, _, rts := build(2, 2, nil)
	rts.EnableReliability(RelConfig{})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("double EnableReliability not rejected")
			}
		}()
		rts.EnableReliability(RelConfig{})
	}()
	if s := rts.RelStats(); s != (RelStats{}) {
		t.Fatalf("fresh layer has non-zero stats %+v", s)
	}
	// A disabled runtime reports zero stats and no stalled channels.
	_, _, bare := build(2, 2, nil)
	if bare.RelStats() != (RelStats{}) || bare.StalledChannels() != nil {
		t.Fatal("disabled reliability reports state")
	}
}

// TestStopShutdownDuringFaultedDelivery stops engines mid-run while
// fault-injected deliveries, retransmit timers and reorder delays are still
// in flight, with several such systems running on concurrent goroutines the
// way the harness scheduler runs them. Under -race this checks the teardown
// path against the reliability layer's timer events; without it, that every
// proc is released and no goroutine leaks.
func TestStopShutdownDuringFaultedDelivery(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				plan := faults.Plan{
					Seed:         seed + uint64(i),
					Default:      faults.PairProbs{Drop: 0.3, Duplicate: 0.1, Reorder: 0.1},
					ReorderDelay: 50 * time.Millisecond,
				}
				e, _, rts, _ := buildFaulty(t, 2, 2, nil, plan, RelConfig{RTO: 5 * time.Millisecond})
				obj := rts.NewObject("c", 0, &counter{})
				e.Go("caller", func(p *sim.Proc) {
					for k := 0; k < 50; k++ {
						obj.Invoke(p, 2, incOp(1))
					}
				})
				// Stop mid-run: unacked envelopes, armed timers and delayed
				// duplicates are all still pending at this instant.
				e.After(30*time.Millisecond, func() { e.Stop() })
				if err := e.Run(); err != nil {
					t.Error(err)
					return
				}
				e.Shutdown()
				if e.Live() != 0 {
					t.Errorf("%d procs live after Shutdown", e.Live())
					return
				}
			}
		}(uint64(g) * 1000)
	}
	wg.Wait()
}

func TestObjectMisusePanics(t *testing.T) {
	_, _, rts := build(1, 2, nil)
	plain := rts.NewObject("plain", 0, &counter{})
	repl := rts.NewReplicated("repl", func(cluster.NodeID) any { return &counter{} })
	cases := []struct {
		name string
		fn   func()
		want string
	}{
		{"OnApplied", func() { plain.OnApplied(nil) }, `orca: OnApplied on non-replicated object "plain"`},
		{"Owner", func() { repl.Owner() }, `orca: Owner on replicated object "repl"`},
		{"State", func() { repl.State() }, `orca: State on replicated object "repl"; use Replica`},
		{"Replica", func() { plain.Replica(0) }, `orca: Replica on non-replicated object "plain"; use State`},
		{"AsyncUpdate", func() { plain.AsyncUpdate(0, incOp(1)) }, `orca: AsyncUpdate on non-replicated object "plain"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("misuse not rejected")
				}
				if msg, ok := r.(string); !ok || msg != tc.want {
					t.Fatalf("panic %v, want %q", r, tc.want)
				}
			}()
			tc.fn()
		})
	}
}

// TestBackoffPlateauUnderPermanentPartition pins the ARQ backoff contract on
// a link that never heals: retransmit intervals double from RTO and then
// plateau at MaxRTO — the sender keeps probing at a bounded rate instead of
// backing off forever or spinning.
func TestBackoffPlateauUnderPermanentPartition(t *testing.T) {
	plan := faults.Plan{LinkDowns: []faults.LinkDown{
		{From: 0, To: 1, Duration: time.Hour},
		{From: 1, To: 0, Duration: time.Hour},
	}}
	cfg := RelConfig{} // defaults: RTO 10ms, MaxRTO 320ms, retry forever
	e, net, rts, _ := buildFaulty(t, 2, 2, nil, plan, cfg)
	var sends []time.Duration
	net.SetTap(func(at time.Duration, m netsim.Msg, inter bool) {
		if inter && m.From == 2 && m.To == 0 {
			sends = append(sends, at)
		}
	})
	obj := rts.NewObject("c", 0, &counter{})
	e.Go("caller", func(p *sim.Proc) {
		obj.Invoke(p, 2, incOp(1))
	})
	e.SetDeadline(5 * time.Second)
	err := e.Run()
	var dl *sim.DeadlineError
	if !errors.As(err, &dl) {
		t.Fatalf("run returned %v, want DeadlineError (sender must keep probing)", err)
	}
	if len(sends) < 10 {
		t.Fatalf("only %d transmissions in 5s, backoff stopped probing", len(sends))
	}
	const rto, maxRTO = 10 * time.Millisecond, 320 * time.Millisecond
	want := rto
	for i := 1; i < len(sends); i++ {
		gap := sends[i] - sends[i-1]
		if gap != want {
			t.Fatalf("retransmit %d after %v, want %v (doubling capped at %v)", i, gap, want, maxRTO)
		}
		if want *= 2; want > maxRTO {
			want = maxRTO
		}
	}
	// The tail of the run must sit on the plateau.
	if last := sends[len(sends)-1] - sends[len(sends)-2]; last != maxRTO {
		t.Fatalf("final interval %v, want the %v plateau", last, maxRTO)
	}
	if rts.RelStats().Retransmits == 0 {
		t.Fatal("no retransmits counted")
	}
}

// TestDeadlineNamesStalledChannelUnderPartition is the structured-diagnosis
// half of the partition contract: when the sender exhausts MaxAttempts
// across a permanent cut, SetDeadline aborts the run with a DeadlineError
// (reachable via errors.As) and StalledChannels names the dead channel.
func TestDeadlineNamesStalledChannelUnderPartition(t *testing.T) {
	plan := faults.Plan{LinkDowns: []faults.LinkDown{
		{From: 0, To: 1, Duration: time.Hour},
		{From: 1, To: 0, Duration: time.Hour},
	}}
	e, net, rts, _ := buildFaulty(t, 2, 2, nil, plan, RelConfig{MaxAttempts: 3})
	obj := rts.NewObject("c", 0, &counter{})
	e.Go("caller", func(p *sim.Proc) {
		obj.Invoke(p, 2, incOp(1))
	})
	e.SetDeadline(time.Second)
	err := e.Run()
	var dl *sim.DeadlineError
	if !errors.As(err, &dl) {
		t.Fatalf("run returned %v, want DeadlineError", err)
	}
	if len(dl.Parked) != 1 || !strings.Contains(dl.Parked[0], "caller") {
		t.Fatalf("deadline report %q does not name the stuck caller", dl.Parked)
	}
	if s := rts.RelStats(); s.GiveUps == 0 {
		t.Fatalf("no give-up recorded: %+v", s)
	}
	stalled := rts.StalledChannels()
	if len(stalled) != 1 || !strings.Contains(stalled[0], "2->0") {
		t.Fatalf("stalled channels %v, want the 2->0 request channel", stalled)
	}
	// Network-side evidence: the attempts parked at the cut gateway (the
	// 2s hold timeout lies beyond this run's deadline, so they are held,
	// not yet dropped — ageing-out is pinned by the netsim suite).
	if net.Stats().HeldMsgs() == 0 {
		t.Fatal("no traffic was held at the partitioned gateway")
	}
}
