package orca

import (
	"albatross/internal/cluster"
	"albatross/internal/netsim"
	"albatross/internal/sim"
)

// Op is one shared-object operation, function-shipped to wherever the state
// lives. Apply must be deterministic: for replicated objects it executes
// once against every replica, so all replicas stay identical.
//
// ArgBytes/ResBytes declare the simulated wire size of the operation's
// arguments and result; they determine transfer times and traffic accounting
// but the actual values travel by reference inside the simulator.
type Op struct {
	Name     string
	ArgBytes int
	ResBytes int
	ReadOnly bool
	Apply    func(state any) any
}

// Object is a shared object. Non-replicated objects have a single state copy
// at the owner node; replicated objects have one copy per compute node.
type Object struct {
	rts        *RTS
	id         int
	name       string
	futName    string // precomputed future name: invocations are the hot path
	replicated bool
	owner      cluster.NodeID
	state      any   // non-replicated state
	replicas   []any // per-compute-node state when replicated

	// applied, if non-nil, observes every ordered update as it is applied
	// at a node (used by applications that react to replicated writes).
	applied func(at cluster.NodeID, op Op, result any)
}

// pendingBcast is a replicated write travelling through the sequencer.
type pendingBcast struct {
	obj  *Object
	op   Op
	from cluster.NodeID
	done *sim.Future
}

// NewObject creates a non-replicated shared object stored at owner, with
// initial state init.
func (r *RTS) NewObject(name string, owner cluster.NodeID, init any) *Object {
	o := &Object{rts: r, id: len(r.objects), name: name, futName: "rpc " + name, owner: owner, state: init}
	r.objects = append(r.objects, o)
	return o
}

// NewReplicated creates a replicated shared object; init is called once per
// compute node to build that node's copy (copies must start identical in the
// observable sense but may be distinct Go values).
func (r *RTS) NewReplicated(name string, init func(node cluster.NodeID) any) *Object {
	o := &Object{rts: r, id: len(r.objects), name: name, futName: "bcast " + name, replicated: true}
	o.replicas = make([]any, r.topo.Compute())
	for i := range o.replicas {
		o.replicas[i] = init(cluster.NodeID(i))
	}
	r.objects = append(r.objects, o)
	return o
}

// OnApplied registers a callback observing every ordered update applied at
// any node. Replicated objects only.
func (o *Object) OnApplied(fn func(at cluster.NodeID, op Op, result any)) {
	if !o.replicated {
		panic("orca: OnApplied on non-replicated object " + o.name)
	}
	o.applied = fn
}

// Name returns the object's name.
func (o *Object) Name() string { return o.name }

// Owner returns the owner node of a non-replicated object.
func (o *Object) Owner() cluster.NodeID {
	if o.replicated {
		panic("orca: Owner of replicated object " + o.name)
	}
	return o.owner
}

// State returns a non-replicated object's state, for post-run inspection
// and owner-local reads the application accounts for itself.
func (o *Object) State() any {
	if o.replicated {
		panic("orca: State of replicated object " + o.name + "; use Replica")
	}
	return o.state
}

// Replica returns node id's copy of a replicated object's state, for
// local reads that the application accounts for itself.
func (o *Object) Replica(id cluster.NodeID) any {
	if !o.replicated {
		panic("orca: Replica of non-replicated object " + o.name)
	}
	return o.replicas[id]
}

// Invoke executes op on the object on behalf of process p running at node
// from, blocking p in virtual time for the full cost of the invocation:
//
//   - non-replicated, from == owner: applied immediately (local operation);
//   - non-replicated, remote: an RPC to the owner;
//   - replicated, read-only: applied to the local replica;
//   - replicated, write: a totally-ordered broadcast through the sequencer;
//     p resumes when its own node has applied the update.
func (o *Object) Invoke(p *sim.Proc, from cluster.NodeID, op Op) any {
	r := o.rts
	if !o.replicated {
		if from == o.owner {
			r.ops.LocalOps++
			return op.Apply(o.state)
		}
		return r.rpc(p, from, o, op)
	}
	if op.ReadOnly {
		r.ops.LocalOps++
		return op.Apply(o.replicas[from])
	}
	r.ops.Bcasts++
	r.ops.BcastBytes += int64(op.ArgBytes)
	b := &pendingBcast{
		obj: o, op: op, from: from,
		done: sim.NewFuture(r.e, o.futName),
	}
	r.seqr.Submit(r, from, b)
	return b.done.Await(p)
}

// rpc performs a blocking remote invocation on a non-replicated object.
func (r *RTS) rpc(p *sim.Proc, from cluster.NodeID, o *Object, op Op) any {
	r.ops.RPCs++
	r.ops.RPCBytes += int64(op.ArgBytes + op.ResBytes)
	nd := r.nodes[from]
	id := nd.nextCall
	nd.nextCall++
	f := sim.NewFuture(r.e, o.futName)
	nd.calls[id] = f
	r.net.Send(netsim.Msg{
		From: from, To: o.owner, Kind: netsim.KindRPCReq,
		Size:    op.ArgBytes + HeaderBytes,
		Payload: &rpcReq{callID: id, objID: o.id, op: op},
	})
	return f.Await(p)
}

// asyncDeliver is an unordered replicated update in flight (the asynchronous
// broadcast of Section 4.7's proposed ACP optimization).
type asyncDeliver struct {
	obj *Object
	op  Op
}

// AsyncUpdate applies a write to a replicated object using asynchronous,
// unordered broadcast: the sender's replica updates immediately and the
// sender continues without waiting; remote replicas update when the message
// arrives. Delivery is FIFO per sender but there is no global total order,
// so this is only safe for commutative, idempotent updates (like ACP's
// domain pruning) — exactly the condition the paper states.
func (o *Object) AsyncUpdate(from cluster.NodeID, op Op) any {
	if !o.replicated {
		panic("orca: AsyncUpdate on non-replicated object " + o.name)
	}
	r := o.rts
	r.ops.Bcasts++
	r.ops.BcastBytes += int64(op.ArgBytes)
	size := op.ArgBytes + HeaderBytes
	// Local cluster: hardware multicast (includes the sender's own copy,
	// applied on delivery like any other member's).
	r.net.BcastLocal(from, netsim.KindBcast, size, &asyncDeliver{obj: o, op: op})
	// Remote clusters: one WAN message per cluster, relayed by gateways.
	fc := r.topo.ClusterOf(from)
	for c := 0; c < r.topo.Clusters; c++ {
		if c == fc {
			continue
		}
		r.net.Send(netsim.Msg{
			From: from, To: r.topo.Gateway(c), Kind: netsim.KindBcast,
			Size:    size,
			Payload: &relayAsync{obj: o, op: op, size: size},
		})
	}
	return nil
}

// relayAsync asks a gateway to re-broadcast an unordered update locally.
type relayAsync struct {
	obj  *Object
	op   Op
	size int
}
