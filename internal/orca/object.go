package orca

import (
	"fmt"

	"albatross/internal/cluster"
	"albatross/internal/netsim"
	"albatross/internal/sim"
)

// Op is one shared-object operation, function-shipped to wherever the state
// lives. Apply must be deterministic: for replicated objects it executes
// once against every replica, so all replicas stay identical.
//
// ArgBytes/ResBytes declare the simulated wire size of the operation's
// arguments and result; they determine transfer times and traffic accounting
// but the actual values travel by reference inside the simulator.
type Op struct {
	Name     string
	ArgBytes int
	ResBytes int
	ReadOnly bool
	Apply    func(state any) any
}

// Object is a shared object. Non-replicated objects have a single state copy
// at the owner node; replicated objects have one copy per compute node.
type Object struct {
	rts        *RTS
	id         int
	name       string
	futName    string // precomputed future name: invocations are the hot path
	replicated bool
	owner      cluster.NodeID
	state      any   // non-replicated state
	replicas   []any // per-compute-node state when replicated

	// applied, if non-nil, observes every ordered update as it is applied
	// at a node (used by applications that react to replicated writes).
	applied func(at cluster.NodeID, op Op, result any)
}

// pendingBcast is a replicated write travelling through the sequencer. It is
// the wire record for its whole lifecycle — submit, ordering, distribution
// and per-node delivery — and is reference-counted: one reference per
// compute node's apply plus one for the writer consuming the result, so the
// record (and its pooled done future) recycles exactly when the last node
// has applied it and the writer has resumed.
type pendingBcast struct {
	obj     *Object
	op      Op
	from    cluster.NodeID
	orderer cluster.NodeID
	seq     uint64
	size    int // op.ArgBytes + HeaderBytes, the wire size everywhere
	refs    int32
	done    *sim.Future
	fn      func() // bound once: runs distributeNow for this record
}

// getBcast pops (or creates) a broadcast record with its done future armed.
func (r *RTS) getBcast(futName string) *pendingBcast {
	if k := len(r.bcastPool); k > 0 {
		b := r.bcastPool[k-1]
		r.bcastPool = r.bcastPool[:k-1]
		b.done.Reset(futName)
		return b
	}
	b := &pendingBcast{done: sim.NewFuture(r.e, futName)}
	b.fn = func() { r.distributeNow(b) }
	return b
}

// releaseBcast drops one reference, recycling the record at zero. On a
// sharded engine the references drop on several LPs inside one window, so
// neither the counter nor a shared free list is touchable: the record is
// simply left to the garbage collector (Invoke allocates it fresh there).
func (r *RTS) releaseBcast(b *pendingBcast) {
	if r.sharded {
		return
	}
	if b.refs--; b.refs > 0 {
		return
	}
	b.obj = nil
	b.op = Op{} // drop the closure reference while pooled
	r.bcastPool = append(r.bcastPool, b)
}

// NewObject creates a non-replicated shared object stored at owner, with
// initial state init.
func (r *RTS) NewObject(name string, owner cluster.NodeID, init any) *Object {
	o := &Object{rts: r, id: len(r.objects), name: name, futName: "rpc " + name, owner: owner, state: init}
	r.objects = append(r.objects, o)
	return o
}

// NewReplicated creates a replicated shared object; init is called once per
// compute node to build that node's copy (copies must start identical in the
// observable sense but may be distinct Go values).
func (r *RTS) NewReplicated(name string, init func(node cluster.NodeID) any) *Object {
	o := &Object{rts: r, id: len(r.objects), name: name, futName: "bcast " + name, replicated: true}
	o.replicas = make([]any, r.topo.Compute())
	for i := range o.replicas {
		o.replicas[i] = init(cluster.NodeID(i))
	}
	r.objects = append(r.objects, o)
	return o
}

// misuse panics with a consistent message for API calls that do not apply to
// the object's kind, naming the right call when there is an equivalent.
func (o *Object) misuse(op, hint string) {
	kind := "non-replicated"
	if o.replicated {
		kind = "replicated"
	}
	msg := fmt.Sprintf("orca: %s on %s object %q", op, kind, o.name)
	if hint != "" {
		msg += "; use " + hint
	}
	panic(msg)
}

// OnApplied registers a callback observing every ordered update applied at
// any node. Replicated objects only.
func (o *Object) OnApplied(fn func(at cluster.NodeID, op Op, result any)) {
	if !o.replicated {
		o.misuse("OnApplied", "")
	}
	o.applied = fn
}

// Name returns the object's name.
func (o *Object) Name() string { return o.name }

// Owner returns the owner node of a non-replicated object.
func (o *Object) Owner() cluster.NodeID {
	if o.replicated {
		o.misuse("Owner", "")
	}
	return o.owner
}

// State returns a non-replicated object's state, for post-run inspection
// and owner-local reads the application accounts for itself.
func (o *Object) State() any {
	if o.replicated {
		o.misuse("State", "Replica")
	}
	return o.state
}

// Replica returns node id's copy of a replicated object's state, for
// local reads that the application accounts for itself.
func (o *Object) Replica(id cluster.NodeID) any {
	if !o.replicated {
		o.misuse("Replica", "State")
	}
	return o.replicas[id]
}

// Invoke executes op on the object on behalf of process p running at node
// from, blocking p in virtual time for the full cost of the invocation:
//
//   - non-replicated, from == owner: applied immediately (local operation);
//   - non-replicated, remote: an RPC to the owner;
//   - replicated, read-only: applied to the local replica;
//   - replicated, write: a totally-ordered broadcast through the sequencer;
//     p resumes when its own node has applied the update.
func (o *Object) Invoke(p *sim.Proc, from cluster.NodeID, op Op) any {
	r := o.rts
	if !o.replicated {
		if from == o.owner {
			r.nodes[from].sh.ops.LocalOps++
			return op.Apply(o.state)
		}
		return r.rpc(p, from, o, op)
	}
	if op.ReadOnly {
		r.nodes[from].sh.ops.LocalOps++
		return op.Apply(o.replicas[from])
	}
	sh := r.nodes[from].sh
	sh.ops.Bcasts++
	sh.ops.BcastBytes += int64(op.ArgBytes)
	var b *pendingBcast
	if r.sharded {
		// Fresh record per write: its fields are written on the writer's and
		// orderer's LPs and read on every delivering LP, each hop ordered by
		// a ≥lookahead message (see DESIGN.md §5d), but its references drop
		// concurrently across LPs — so no refcount, no free list, and the
		// done future lives on the writer's LP where the writer awaits it.
		nb := &pendingBcast{done: sim.NewFuture(sh.e, o.futName)}
		nb.fn = func() { r.distributeNow(nb) }
		b = nb
	} else {
		b = r.getBcast(o.futName)
		b.refs = int32(r.topo.Compute()) + 1
	}
	b.obj, b.op, b.from = o, op, from
	b.size = op.ArgBytes + HeaderBytes
	r.seqr.Submit(r, from, b)
	res := b.done.Await(p)
	r.releaseBcast(b) // the writer's own reference, after consuming res
	return res
}

// rpc performs a blocking remote invocation on a non-replicated object.
func (r *RTS) rpc(p *sim.Proc, from cluster.NodeID, o *Object, op Op) any {
	nd := r.nodes[from]
	sh := nd.sh
	sh.ops.RPCs++
	sh.ops.RPCBytes += int64(op.ArgBytes + op.ResBytes)
	f := sh.getFuture(o.futName)
	id := nd.newCall(f)
	q := sh.getReq()
	q.callID, q.objID, q.op = id, o.id, op
	r.send(netsim.Msg{
		From: from, To: o.owner, Kind: netsim.KindRPCReq,
		Size:    op.ArgBytes + HeaderBytes,
		Payload: q,
	})
	res := f.Await(p)
	sh.putFuture(f)
	return res
}

// asyncDeliver is an unordered replicated update in flight (the asynchronous
// broadcast of Section 4.7's proposed ACP optimization). One record serves
// one cluster's delivery fan-out (refs = cluster size); the gateway relays
// the record itself, so no separate relay wrapper exists.
type asyncDeliver struct {
	obj  *Object
	op   Op
	refs int32
}

// AsyncUpdate applies a write to a replicated object using asynchronous,
// unordered broadcast: the sender's replica updates immediately and the
// sender continues without waiting; remote replicas update when the message
// arrives. Delivery is FIFO per sender but there is no global total order,
// so this is only safe for commutative, idempotent updates (like ACP's
// domain pruning) — exactly the condition the paper states.
func (o *Object) AsyncUpdate(from cluster.NodeID, op Op) any {
	if !o.replicated {
		o.misuse("AsyncUpdate", "")
	}
	r := o.rts
	sh := r.nodes[from].sh
	sh.ops.Bcasts++
	sh.ops.BcastBytes += int64(op.ArgBytes)
	size := op.ArgBytes + HeaderBytes
	// Local cluster: hardware multicast (includes the sender's own copy,
	// applied on delivery like any other member's).
	fc := r.topo.ClusterOf(from)
	local := sh.getAsync()
	local.obj, local.op = o, op
	local.refs = int32(r.topo.Size(fc))
	r.net.BcastLocal(from, netsim.KindBcast, size, local)
	// Remote clusters: one WAN message per cluster; the gateway re-broadcasts
	// the record into its cluster.
	for c := 0; c < r.topo.Clusters; c++ {
		if c == fc {
			continue
		}
		a := sh.getAsync()
		a.obj, a.op = o, op
		a.refs = int32(r.topo.Size(c))
		r.send(netsim.Msg{
			From: from, To: r.topo.Gateway(c), Kind: netsim.KindBcast,
			Size:    size,
			Payload: a,
		})
	}
	return nil
}
