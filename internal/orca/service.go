package orca

import (
	"fmt"

	"albatross/internal/cluster"
	"albatross/internal/netsim"
	"albatross/internal/sim"
)

// Request is an application-level request delivered to a registered service.
// The serving process must answer every request exactly once via Reply.
type Request struct {
	rts     *RTS
	ID      uint64
	From    cluster.NodeID
	To      cluster.NodeID
	Payload any
}

// NeedsReply reports whether the request came from a blocking Call (true)
// or a one-way Cast (false, and Reply must not be called).
func (q *Request) NeedsReply() bool { return q.ID != noReply }

// Reply sends the response back to the requester, unblocking it when the
// reply message arrives. resBytes is the simulated payload size.
func (q *Request) Reply(resBytes int, result any) {
	if q.ID == noReply {
		panic("orca: Reply to a Cast request")
	}
	r := q.rts
	rep := r.nodes[q.To].sh.getRep() // executing at the serving node's LP
	rep.callID, rep.result = q.ID, result
	r.send(netsim.Msg{
		From: q.To, To: q.From, Kind: netsim.KindRPCRep,
		Size:    resBytes + HeaderBytes,
		Payload: rep,
	})
}

// RegisterService creates (or returns) the request mailbox for a named
// service at a node. A server process consumes it with NextRequest.
func (r *RTS) RegisterService(at cluster.NodeID, name string) *sim.Mailbox {
	nd := r.nodes[at]
	if _, taken := nd.handlers[name]; taken {
		panic(fmt.Sprintf("orca: service %q at node %d already has a handler", name, at))
	}
	mb, ok := nd.services[name]
	if !ok {
		mb = sim.NewMailbox(r.e, fmt.Sprintf("service %s@%d", name, at))
		nd.services[name] = mb
	}
	return mb
}

// HandleService registers an event-context handler for a named service at a
// node: fn runs at message arrival time and must not block, but it may send
// messages, schedule events and reply. Use this for protocol agents (like
// message combiners) that need no process of their own.
func (r *RTS) HandleService(at cluster.NodeID, name string, fn func(*Request)) {
	nd := r.nodes[at]
	if _, taken := nd.services[name]; taken {
		panic(fmt.Sprintf("orca: service %q at node %d already has a mailbox", name, at))
	}
	if _, taken := nd.handlers[name]; taken {
		panic(fmt.Sprintf("orca: service %q at node %d registered twice", name, at))
	}
	nd.handlers[name] = fn
}

// Cast sends a one-way, non-blocking request to a service: the sender
// continues immediately and no reply is expected.
func (r *RTS) Cast(from, to cluster.NodeID, name string, argBytes int, payload any) {
	sh := r.nodes[from].sh
	sh.ops.Requests++
	q := sh.getSvc()
	q.callID, q.from, q.service, q.payload = noReply, from, name, payload
	r.send(netsim.Msg{
		From: from, To: to, Kind: netsim.KindData,
		Size:    argBytes + HeaderBytes,
		Payload: q,
	})
}

// noReply marks a cast request (Reply on it is a bug).
const noReply = ^uint64(0)

// NextRequest blocks the serving process until a request arrives.
func NextRequest(p *sim.Proc, mb *sim.Mailbox) *Request {
	return mb.Get(p).(*Request)
}

// callFutName returns the cached future name for blocking calls to a
// service, building it on first use. The cache is per shard so concurrent
// first calls on different LPs never share a map.
func (sh *rtsShard) callFutName(name string) string {
	s, ok := sh.callNames[name]
	if !ok {
		s = "call " + name
		sh.callNames[name] = s
	}
	return s
}

// Call performs a blocking application-level request to service name at node
// to: the calling process is suspended until the server replies.
func (r *RTS) Call(p *sim.Proc, from, to cluster.NodeID, name string, argBytes int, payload any) any {
	nd := r.nodes[from]
	sh := nd.sh
	sh.ops.Requests++
	f := sh.getFuture(sh.callFutName(name))
	id := nd.newCall(f)
	q := sh.getSvc()
	q.callID, q.from, q.service, q.payload = id, from, name, payload
	r.send(netsim.Msg{
		From: from, To: to, Kind: netsim.KindRPCReq,
		Size:    argBytes + HeaderBytes,
		Payload: q,
	})
	res := f.Await(p)
	sh.putFuture(f)
	return res
}
