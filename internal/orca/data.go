package orca

import (
	"fmt"

	"albatross/internal/cluster"
	"albatross/internal/netsim"
	"albatross/internal/sim"
)

// Tag names a point-to-point message stream between application processes,
// like a (communicator, tag) pair in message-passing systems. A and B are
// free application fields (e.g. phase number, sender rank).
type Tag struct {
	Op   string
	A, B int
}

// TagID is the dense interned identifier of a Tag. Hot paths intern a tag
// once (InternTag) and then send/receive by ID: per-node mailbox lookup is
// a slice index, with no map probe or name formatting per message.
type TagID int32

// InternTag returns the dense ID for tag, assigning the next one on first
// use. The ID is valid for the lifetime of the runtime. The tables are the
// only runtime maps shared across clusters, so interning takes a lock; on a
// sharded engine apps should intern at setup anyway, both to keep TagID
// assignment deterministic and to keep the lock off the steady-state path.
func (r *RTS) InternTag(t Tag) TagID {
	r.tagMu.Lock()
	id, ok := r.tagIDs[t]
	if !ok {
		id = TagID(len(r.tags))
		r.tagIDs[t] = id
		r.tags = append(r.tags, t)
	}
	r.tagMu.Unlock()
	return id
}

// dataMailbox returns (creating on demand) the queue for an interned tag at
// a node. Mailboxes share the static name "data" unless SetDebugNames
// enabled per-tag naming.
func (r *RTS) dataMailbox(nd *nodeRTS, id TagID) *sim.Mailbox {
	if int(id) >= len(nd.data) {
		nd.data = append(nd.data, make([]*sim.Mailbox, int(id)+1-len(nd.data))...)
	}
	mb := nd.data[id]
	if mb == nil {
		name := "data"
		if r.debugNames {
			name = fmt.Sprintf("data %v@%d", r.tags[id], nd.id)
		}
		mb = sim.NewMailbox(nd.sh.e, name)
		nd.data[id] = mb
	}
	return mb
}

// SendData transmits an asynchronous tagged message of the given simulated
// size from one node to another. The sender does not block (the paper's
// low-level Orca RTS send primitive, used by the C re-implementations of
// SOR and by RA's message combining).
func (r *RTS) SendData(from, to cluster.NodeID, tag Tag, size int, payload any) {
	r.SendDataID(from, to, r.InternTag(tag), size, payload)
}

// SendDataID is SendData for a pre-interned tag: the zero-allocation fast
// path for per-iteration exchanges.
func (r *RTS) SendDataID(from, to cluster.NodeID, id TagID, size int, payload any) {
	sh := r.nodes[from].sh
	sh.ops.DataMsgs++
	sh.ops.DataBytes += int64(size)
	d := sh.getDataMsg()
	d.id, d.payload = id, payload
	r.send(netsim.Msg{
		From: from, To: to, Kind: netsim.KindData,
		Size:    size + HeaderBytes,
		Payload: d,
	})
}

// RecvData blocks process p (running at node at) until a message with the
// given tag arrives, and returns its payload.
func (r *RTS) RecvData(p *sim.Proc, at cluster.NodeID, tag Tag) any {
	return r.RecvDataID(p, at, r.InternTag(tag))
}

// RecvDataID is RecvData for a pre-interned tag.
func (r *RTS) RecvDataID(p *sim.Proc, at cluster.NodeID, id TagID) any {
	return r.dataMailbox(r.nodes[at], id).Get(p)
}

// TryRecvData returns the oldest queued payload for tag without blocking;
// ok is false if none is queued.
func (r *RTS) TryRecvData(at cluster.NodeID, tag Tag) (payload any, ok bool) {
	return r.TryRecvDataID(at, r.InternTag(tag))
}

// TryRecvDataID is TryRecvData for a pre-interned tag.
func (r *RTS) TryRecvDataID(at cluster.NodeID, id TagID) (payload any, ok bool) {
	return r.dataMailbox(r.nodes[at], id).TryGet()
}

// PendingData reports how many messages are queued for tag at the node.
func (r *RTS) PendingData(at cluster.NodeID, tag Tag) int {
	return r.dataMailbox(r.nodes[at], r.InternTag(tag)).Len()
}
