package orca

import (
	"fmt"

	"albatross/internal/cluster"
	"albatross/internal/netsim"
	"albatross/internal/sim"
)

// Tag names a point-to-point message stream between application processes,
// like a (communicator, tag) pair in message-passing systems. A and B are
// free application fields (e.g. iteration number, sender rank).
type Tag struct {
	Op   string
	A, B int
}

// mailbox returns (creating on demand) the queue for tag at this node.
func (nd *nodeRTS) mailbox(e *sim.Engine, t Tag) *sim.Mailbox {
	mb, ok := nd.data[t]
	if !ok {
		mb = sim.NewMailbox(e, fmt.Sprintf("data %v@%d", t, nd.id))
		nd.data[t] = mb
	}
	return mb
}

// SendData transmits an asynchronous tagged message of the given simulated
// size from one node to another. The sender does not block (the paper's
// low-level Orca RTS send primitive, used by the C re-implementations of
// SOR and by RA's message combining).
func (r *RTS) SendData(from, to cluster.NodeID, tag Tag, size int, payload any) {
	r.ops.DataMsgs++
	r.ops.DataBytes += int64(size)
	r.net.Send(netsim.Msg{
		From: from, To: to, Kind: netsim.KindData,
		Size:    size + HeaderBytes,
		Payload: &dataMsg{tag: tag, payload: payload},
	})
}

// RecvData blocks process p (running at node at) until a message with the
// given tag arrives, and returns its payload.
func (r *RTS) RecvData(p *sim.Proc, at cluster.NodeID, tag Tag) any {
	return r.nodes[at].mailbox(r.e, tag).Get(p)
}

// TryRecvData returns the oldest queued payload for tag without blocking;
// ok is false if none is queued.
func (r *RTS) TryRecvData(at cluster.NodeID, tag Tag) (payload any, ok bool) {
	return r.nodes[at].mailbox(r.e, tag).TryGet()
}

// PendingData reports how many messages are queued for tag at the node.
func (r *RTS) PendingData(at cluster.NodeID, tag Tag) int {
	return r.nodes[at].mailbox(r.e, tag).Len()
}
