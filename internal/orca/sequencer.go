package orca

import (
	"albatross/internal/cluster"
	"albatross/internal/netsim"
)

// Sequencer produces the global total order of replicated-object updates.
// Submit is called at the writer's node; the implementation must eventually
// assign the update a globally unique, gap-free sequence number and
// distribute it to all compute nodes (via RTS.distribute).
//
// Three protocols from the paper are provided:
//
//   - CentralSequencer: one sequencer machine orders everything. Efficient
//     on a single LAN cluster, a bottleneck across a WAN.
//   - RotatingSequencer: one sequencer per cluster; a token circulates and
//     each cluster broadcasts in turn (the paper's wide-area default).
//   - MigratingSequencer: a single sequencer that migrates to the cluster
//     that is sending, pipelining bursts from one sender (the ASP
//     optimization of Section 4.3).
type Sequencer interface {
	// Name identifies the protocol in reports.
	Name() string
	// Submit hands an update to the protocol at the writer's node.
	Submit(r *RTS, from cluster.NodeID, b *pendingBcast)
	// arrive handles a submission that has reached cluster c's sequencer
	// node (the receive side of Submit's forwarding message). Having it on
	// the interface lets one pooled submit record serve every protocol.
	arrive(r *RTS, c int, b *pendingBcast)
	// attach binds the protocol to a runtime at construction time.
	attach(r *RTS)
}

// seqNode returns the sequencer machine of cluster c: its first compute
// node, as in the paper's default configuration.
func seqNode(topo cluster.Topology, c int) cluster.NodeID { return topo.Node(c, 0) }

// tokenHopBytes is the wire size of sequencer control messages.
const tokenHopBytes = 16 + HeaderBytes

// submitMsg forwards an update to cluster c's sequencer node. Records are
// pooled per cluster shard: acquired from the sender's free list, recycled
// into the destination cluster's at delivery (on a sharded engine records
// simply migrate between per-LP lists; see rtsShard).
type submitMsg struct {
	s Sequencer
	c int // destination cluster (the sequencer node's cluster)
	b *pendingBcast
}

func (m *submitMsg) deliver(r *RTS) {
	s, c, b := m.s, m.c, m.b
	m.s, m.b = nil, nil
	sh := r.sh[c]
	sh.submitPool = append(sh.submitPool, m)
	s.arrive(r, c, b)
}

// sendSubmit ships b from the writer's node to cluster c's sequencer node.
func (r *RTS) sendSubmit(s Sequencer, from, to cluster.NodeID, c int, b *pendingBcast) {
	sh := r.nodes[from].sh
	var m *submitMsg
	if k := len(sh.submitPool); k > 0 {
		m = sh.submitPool[k-1]
		sh.submitPool = sh.submitPool[:k-1]
	} else {
		m = new(submitMsg)
	}
	m.s, m.c, m.b = s, c, b
	r.send(netsim.Msg{
		From: from, To: to, Kind: netsim.KindBcast,
		Size:    b.size,
		Payload: m,
	})
}

// drainQueue orders and distributes every queued update of cluster c,
// keeping the queue's capacity for the next burst.
func drainQueue(r *RTS, queues [][]*pendingBcast, c int, next *uint64) {
	q := queues[c]
	if len(q) == 0 {
		return
	}
	// distribute only schedules events; nothing re-enters the queue while
	// this loop runs, so reusing the backing array is safe.
	queues[c] = q[:0]
	orderer := seqNode(r.topo, c)
	for i, b := range q {
		seq := *next
		*next++
		r.distribute(orderer, seq, b)
		q[i] = nil
	}
}

// CentralSequencer

// CentralSequencer orders all updates at one fixed node.
type CentralSequencer struct {
	node cluster.NodeID
	next uint64
}

// NewCentralSequencer creates a central sequencer at the given compute node.
func NewCentralSequencer(node cluster.NodeID) *CentralSequencer {
	return &CentralSequencer{node: node}
}

func (s *CentralSequencer) Name() string  { return "central" }
func (s *CentralSequencer) attach(r *RTS) {}

// Submit routes the update to the sequencer node, which assigns the next
// sequence number and distributes.
func (s *CentralSequencer) Submit(r *RTS, from cluster.NodeID, b *pendingBcast) {
	if from == s.node {
		s.order(r, b)
		return
	}
	r.sendSubmit(s, from, s.node, r.topo.ClusterOf(s.node), b)
}

func (s *CentralSequencer) arrive(r *RTS, c int, b *pendingBcast) { s.order(r, b) }

func (s *CentralSequencer) order(r *RTS, b *pendingBcast) {
	seq := s.next
	s.next++
	r.distribute(s.node, seq, b)
}

// RotatingSequencer

// RotatingSequencer implements the paper's distributed sequencer: every
// cluster has a sequencer node holding a queue of local update requests,
// and an ordering token rotates round-robin over the clusters. A cluster's
// queue is drained only while it holds the token, so each cluster
// "broadcasts in turn"; a sender therefore waits WAN hops (up to a full
// token rotation) before its update is ordered — the behaviour the paper
// identifies as the major wide-area broadcast problem.
//
// The protocol is LP-pinned (DESIGN.md §5d): when idle the token parks at
// its home, cluster 0's sequencer node. A remote sequencer node with a
// non-empty queue sends one WAKE control message to the home node; the home
// node launches the token on a full rotation 0 → 1 → … → K-1 → 0, each stop
// draining that cluster's queue. Back home the token drains the home queue,
// starts another rotation if WAKEs arrived while it was out, and parks
// otherwise. Every piece of protocol state is owned by one cluster's
// sequencer node — the queues and wake flags by their own cluster, the
// parked flag and wake count by home — and the global sequence counter
// travels with the token, so every transition rides a real WAN message and
// the protocol runs unchanged (and byte-identically) on the sharded engine.
type RotatingSequencer struct {
	// next is the global sequence counter. It logically travels inside the
	// token: only the cluster currently holding (or hosting the parked)
	// token touches it, and possession transfers via the token message.
	next uint64

	// Per-cluster state, each slot touched only at its own sequencer node.
	queues   [][]*pendingBcast
	wakeSent []bool // a WAKE is in flight / the token will visit us

	// Home-cluster state, touched only at cluster 0's sequencer node.
	parked  bool // the token is parked at home
	wakeReq int  // WAKEs received while the token was rotating

	tok   *rotatingToken // the single token record (one token in flight)
	wakes []rotatingWake // per-cluster WAKE records (≤1 in flight each)
}

// NewRotatingSequencer creates the distributed per-cluster sequencer.
func NewRotatingSequencer() *RotatingSequencer { return &RotatingSequencer{} }

func (s *RotatingSequencer) Name() string { return "rotating" }

func (s *RotatingSequencer) attach(r *RTS) {
	s.queues = make([][]*pendingBcast, r.topo.Clusters)
	s.wakeSent = make([]bool, r.topo.Clusters)
	s.parked = true
	s.tok = &rotatingToken{s: s}
	s.wakes = make([]rotatingWake, r.topo.Clusters)
	for c := range s.wakes {
		s.wakes[c] = rotatingWake{s: s}
	}
}

// Submit sends the update to the sender's cluster sequencer, which queues it
// until the token arrives.
func (s *RotatingSequencer) Submit(r *RTS, from cluster.NodeID, b *pendingBcast) {
	c := r.topo.ClusterOf(from)
	sn := seqNode(r.topo, c)
	if from == sn {
		s.arrive(r, c, b)
		return
	}
	r.sendSubmit(s, from, sn, c, b)
}

func (s *RotatingSequencer) arrive(r *RTS, c int, b *pendingBcast) {
	s.queues[c] = append(s.queues[c], b)
	if c == 0 {
		// Home cluster: the token ends every rotation here, so a rotating
		// token drains this queue on return; a parked token drains it now.
		if s.parked {
			s.drain(r, 0)
		}
		return
	}
	if !s.wakeSent[c] {
		// First update since the token last visited: one WAKE to home. Any
		// token visit strictly after this instant drains us, so one WAKE
		// covers every update queued until that visit clears the flag.
		s.wakeSent[c] = true
		r.send(netsim.Msg{
			From: seqNode(r.topo, c), To: seqNode(r.topo, 0),
			Kind: netsim.KindControl, Size: tokenHopBytes,
			Payload: &s.wakes[c],
		})
	}
}

// drain orders and distributes every queued update of cluster c.
func (s *RotatingSequencer) drain(r *RTS, c int) { drainQueue(r, s.queues, c, &s.next) }

// launch sends the token from home on a full rotation (first hop 0 → 1).
func (s *RotatingSequencer) launch(r *RTS) {
	s.parked = false
	s.wakeReq = 0 // one full rotation visits (and drains) every cluster
	s.hop(r, 0)
}

// hop forwards the token from cluster c to the next cluster on the ring.
func (s *RotatingSequencer) hop(r *RTS, c int) {
	nextC := (c + 1) % r.topo.Clusters
	s.tok.c = nextC
	r.send(netsim.Msg{
		From: seqNode(r.topo, c), To: seqNode(r.topo, nextC),
		Kind: netsim.KindControl, Size: tokenHopBytes,
		Payload: s.tok,
	})
}

// rotatingWake asks the home cluster to launch the parked token.
type rotatingWake struct{ s *RotatingSequencer }

func (m *rotatingWake) deliver(r *RTS) {
	s := m.s
	if s.parked {
		s.launch(r)
		return
	}
	// Token already rotating: remember the wake — the requesting cluster may
	// have been visited (and its flag cleared) before its updates arrived, so
	// one more full rotation is needed after the current one returns. A wake
	// whose cluster was in fact served costs one empty rotation, nothing more.
	s.wakeReq++
}

type rotatingToken struct {
	s *RotatingSequencer
	c int
}

func (m *rotatingToken) deliver(r *RTS) {
	s := m.s
	c := m.c
	if c != 0 {
		s.wakeSent[c] = false
		s.drain(r, c)
		s.hop(r, c)
		return
	}
	// Back home: drain the home queue, then re-launch or park.
	s.drain(r, 0)
	if s.wakeReq > 0 {
		s.launch(r)
		return
	}
	s.parked = true
}

// MigratingSequencer

// MigratingSequencer keeps a single logical sequencer but migrates it to the
// cluster that wants to broadcast: a burst of updates from one cluster pays
// the WAN migration once (a request hop plus a hand-over hop) and is then
// ordered at LAN speed, pipelining computation and communication — the
// paper's ASP optimization.
//
// The protocol is LP-pinned (DESIGN.md §5d) through forwarding pointers:
// each cluster's sequencer node remembers the last cluster it handed the
// token to (lastKnown) and forwards migration requests along that chain. The
// WAN pipes are FIFO per directed cluster pair, and each forwarding hop
// x → y reuses the very edge the token itself travelled when x handed over
// to y, so a chasing request always arrives behind the token and catches it
// once it rests. Every piece of state is owned by one cluster's sequencer
// node and the sequence counter travels with the token.
type MigratingSequencer struct {
	// next is the global sequence counter; only the cluster currently
	// holding the token touches it, and possession transfers via the token
	// message.
	next uint64

	// Per-cluster state, each slot touched only at its own sequencer node.
	holds     []bool // the token rests here
	lastKnown []int  // last cluster we handed the token to (forwarding pointer)
	requested []bool // our migration request is outstanding
	queues    [][]*pendingBcast

	reqMsgs []migratingRequest // per-cluster request records (≤1 in flight each)
	tok     *migratingToken    // the single hand-over record
}

// NewMigratingSequencer creates a migrating sequencer, initially hosted by
// cluster 0.
func NewMigratingSequencer() *MigratingSequencer { return &MigratingSequencer{} }

func (s *MigratingSequencer) Name() string { return "migrating" }

func (s *MigratingSequencer) attach(r *RTS) {
	k := r.topo.Clusters
	s.holds = make([]bool, k)
	s.holds[0] = true
	s.lastKnown = make([]int, k) // everyone's first guess: cluster 0
	s.requested = make([]bool, k)
	s.queues = make([][]*pendingBcast, k)
	s.reqMsgs = make([]migratingRequest, k)
	for c := range s.reqMsgs {
		s.reqMsgs[c] = migratingRequest{s: s, c: c}
	}
	s.tok = &migratingToken{s: s}
}

// Submit sends the update to the sender's cluster sequencer node; if the
// sequencer is hosted there it orders immediately, otherwise the cluster
// requests a migration.
func (s *MigratingSequencer) Submit(r *RTS, from cluster.NodeID, b *pendingBcast) {
	c := r.topo.ClusterOf(from)
	sn := seqNode(r.topo, c)
	if from == sn {
		s.arrive(r, c, b)
		return
	}
	r.sendSubmit(s, from, sn, c, b)
}

// arrive handles an update that has reached its cluster sequencer node.
func (s *MigratingSequencer) arrive(r *RTS, c int, b *pendingBcast) {
	if s.holds[c] {
		seq := s.next
		s.next++
		r.distribute(seqNode(r.topo, c), seq, b)
		return
	}
	s.queues[c] = append(s.queues[c], b)
	if !s.requested[c] {
		// One migration request towards where we last knew the token to be;
		// holders along the chain forward it. While it is in flight the
		// token can only be heading here because of it, so one request
		// covers every update queued until the token arrives.
		s.requested[c] = true
		s.sendRequest(r, c, c, s.lastKnown[c])
	}
}

// sendRequest ships cluster c's migration request from cluster at to
// cluster to (the requester's first hop, or a forwarding hop).
func (s *MigratingSequencer) sendRequest(r *RTS, c, at, to int) {
	m := &s.reqMsgs[c]
	m.at = to
	r.send(netsim.Msg{
		From: seqNode(r.topo, at), To: seqNode(r.topo, to),
		Kind: netsim.KindControl, Size: tokenHopBytes,
		Payload: m,
	})
}

// migratingRequest asks whoever holds the sequencer to hand it over to
// cluster c. at is the cluster the request is currently addressed to,
// rewritten at every forwarding hop (the record is owned by the in-flight
// message, so each hop's handler may rewrite it for the next).
type migratingRequest struct {
	s *MigratingSequencer
	c  int
	at int
}

func (m *migratingRequest) deliver(r *RTS) {
	s, c, x := m.s, m.c, m.at
	if !s.holds[x] {
		// The token moved on; chase it. FIFO pipes order this hop behind the
		// hand-over that set lastKnown[x], so the chase stays behind the
		// token and terminates when the token rests.
		s.sendRequest(r, c, x, s.lastKnown[x])
		return
	}
	// Hand over: we stop holding, remember the new host, ship the token.
	// The token never travels towards a cluster whose own request is still
	// in flight, so x != c here and the hop below is a real WAN message.
	s.holds[x] = false
	s.lastKnown[x] = c
	s.tok.c = c
	r.send(netsim.Msg{
		From: seqNode(r.topo, x), To: seqNode(r.topo, c),
		Kind: netsim.KindControl, Size: tokenHopBytes,
		Payload: s.tok,
	})
}

type migratingToken struct {
	s *MigratingSequencer
	c int
}

func (m *migratingToken) deliver(r *RTS) {
	s := m.s
	s.holds[m.c] = true
	s.requested[m.c] = false
	s.drain(r, m.c)
}

func (s *MigratingSequencer) drain(r *RTS, c int) { drainQueue(r, s.queues, c, &s.next) }
