package orca

import (
	"albatross/internal/cluster"
	"albatross/internal/netsim"
)

// Sequencer produces the global total order of replicated-object updates.
// Submit is called at the writer's node; the implementation must eventually
// assign the update a globally unique, gap-free sequence number and
// distribute it to all compute nodes (via RTS.distribute).
//
// Three protocols from the paper are provided:
//
//   - CentralSequencer: one sequencer machine orders everything. Efficient
//     on a single LAN cluster, a bottleneck across a WAN.
//   - RotatingSequencer: one sequencer per cluster; a token circulates and
//     each cluster broadcasts in turn (the paper's wide-area default).
//   - MigratingSequencer: a single sequencer that migrates to the cluster
//     that is sending, pipelining bursts from one sender (the ASP
//     optimization of Section 4.3).
type Sequencer interface {
	// Name identifies the protocol in reports.
	Name() string
	// Submit hands an update to the protocol at the writer's node.
	Submit(r *RTS, from cluster.NodeID, b *pendingBcast)
	// arrive handles a submission that has reached cluster c's sequencer
	// node (the receive side of Submit's forwarding message). Having it on
	// the interface lets one pooled submit record serve every protocol.
	arrive(r *RTS, c int, b *pendingBcast)
	// attach binds the protocol to a runtime at construction time.
	attach(r *RTS)
}

// seqNode returns the sequencer machine of cluster c: its first compute
// node, as in the paper's default configuration.
func seqNode(topo cluster.Topology, c int) cluster.NodeID { return topo.Node(c, 0) }

// tokenHopBytes is the wire size of sequencer control messages.
const tokenHopBytes = 16 + HeaderBytes

// submitMsg forwards an update to its cluster's sequencer node. Records are
// pooled on the RTS and recycled at delivery.
type submitMsg struct {
	s Sequencer
	c int
	b *pendingBcast
}

func (m *submitMsg) deliver(r *RTS) {
	s, c, b := m.s, m.c, m.b
	m.s, m.b = nil, nil
	r.submitPool = append(r.submitPool, m)
	s.arrive(r, c, b)
}

// sendSubmit ships b from the writer's node to cluster c's sequencer node.
func (r *RTS) sendSubmit(s Sequencer, from, to cluster.NodeID, c int, b *pendingBcast) {
	var m *submitMsg
	if k := len(r.submitPool); k > 0 {
		m = r.submitPool[k-1]
		r.submitPool = r.submitPool[:k-1]
	} else {
		m = new(submitMsg)
	}
	m.s, m.c, m.b = s, c, b
	r.send(netsim.Msg{
		From: from, To: to, Kind: netsim.KindBcast,
		Size:    b.size,
		Payload: m,
	})
}

// drainQueue orders and distributes every queued update of cluster c,
// keeping the queue's capacity for the next burst.
func drainQueue(r *RTS, queues [][]*pendingBcast, c int, next *uint64) {
	q := queues[c]
	if len(q) == 0 {
		return
	}
	// distribute only schedules events; nothing re-enters the queue while
	// this loop runs, so reusing the backing array is safe.
	queues[c] = q[:0]
	orderer := seqNode(r.topo, c)
	for i, b := range q {
		seq := *next
		*next++
		r.distribute(orderer, seq, b)
		q[i] = nil
	}
}

// CentralSequencer

// CentralSequencer orders all updates at one fixed node.
type CentralSequencer struct {
	node cluster.NodeID
	next uint64
}

// NewCentralSequencer creates a central sequencer at the given compute node.
func NewCentralSequencer(node cluster.NodeID) *CentralSequencer {
	return &CentralSequencer{node: node}
}

func (s *CentralSequencer) Name() string  { return "central" }
func (s *CentralSequencer) attach(r *RTS) {}

// Submit routes the update to the sequencer node, which assigns the next
// sequence number and distributes.
func (s *CentralSequencer) Submit(r *RTS, from cluster.NodeID, b *pendingBcast) {
	if from == s.node {
		s.order(r, b)
		return
	}
	r.sendSubmit(s, from, s.node, 0, b)
}

func (s *CentralSequencer) arrive(r *RTS, c int, b *pendingBcast) { s.order(r, b) }

func (s *CentralSequencer) order(r *RTS, b *pendingBcast) {
	seq := s.next
	s.next++
	r.distribute(s.node, seq, b)
}

// RotatingSequencer

// RotatingSequencer implements the paper's distributed sequencer: every
// cluster has a sequencer node holding a queue of local update requests,
// and an ordering token rotates round-robin over the clusters. A cluster's
// queue is drained only while it holds the token, so each cluster
// "broadcasts in turn"; a sender therefore waits up to a full token rotation
// (several WAN hops) before its update is ordered — the behaviour the paper
// identifies as the major wide-area broadcast problem.
type RotatingSequencer struct {
	next     uint64
	holder   int  // cluster where the token currently sits
	moving   bool // token is in flight
	turnUsed bool // the holder has already broadcast during this visit
	queues   [][]*pendingBcast
	tok      *rotatingToken // the single token record (one token in flight)
}

// NewRotatingSequencer creates the distributed per-cluster sequencer.
func NewRotatingSequencer() *RotatingSequencer { return &RotatingSequencer{} }

func (s *RotatingSequencer) Name() string { return "rotating" }

func (s *RotatingSequencer) attach(r *RTS) {
	s.queues = make([][]*pendingBcast, r.topo.Clusters)
	s.tok = &rotatingToken{s: s}
}

// Submit sends the update to the sender's cluster sequencer, which queues it
// until the token arrives.
func (s *RotatingSequencer) Submit(r *RTS, from cluster.NodeID, b *pendingBcast) {
	c := r.topo.ClusterOf(from)
	sn := seqNode(r.topo, c)
	if from == sn {
		s.arrive(r, c, b)
		return
	}
	r.sendSubmit(s, from, sn, c, b)
}

func (s *RotatingSequencer) arrive(r *RTS, c int, b *pendingBcast) {
	s.queues[c] = append(s.queues[c], b)
	if s.moving {
		return // the token will reach this cluster on its rotation
	}
	if s.holder == c && !s.turnUsed {
		// The token is parked here and this visit's turn is still unused.
		s.turnUsed = true
		s.drain(r, c)
		return
	}
	// Wake the parked token and let it rotate towards us — a full rotation
	// when we are the holder but already used our turn.
	s.advance(r)
}

// drain orders and distributes every queued update of cluster c.
func (s *RotatingSequencer) drain(r *RTS, c int) { drainQueue(r, s.queues, c, &s.next) }

func (s *RotatingSequencer) anyPending() bool {
	for _, q := range s.queues {
		if len(q) > 0 {
			return true
		}
	}
	return false
}

// advance moves the token one hop to the next cluster, or parks it when the
// whole system is idle.
func (s *RotatingSequencer) advance(r *RTS) {
	if !s.anyPending() {
		s.moving = false
		return
	}
	s.moving = true
	nextC := (s.holder + 1) % r.topo.Clusters
	if r.topo.Clusters == 1 {
		// Degenerate single-cluster case: no WAN hop to pay.
		s.moving = false
		s.turnUsed = true
		s.drain(r, nextC)
		return
	}
	s.tok.c = nextC
	r.send(netsim.Msg{
		From: seqNode(r.topo, s.holder), To: seqNode(r.topo, nextC),
		Kind: netsim.KindControl, Size: tokenHopBytes,
		Payload: s.tok,
	})
}

type rotatingToken struct {
	s *RotatingSequencer
	c int
}

func (m *rotatingToken) deliver(r *RTS) {
	s := m.s
	s.holder = m.c
	s.moving = false
	s.turnUsed = len(s.queues[m.c]) > 0
	s.drain(r, m.c)
	s.advance(r)
}

// MigratingSequencer

// MigratingSequencer keeps a single logical sequencer but migrates it to the
// cluster that wants to broadcast: a burst of updates from one cluster pays
// the WAN migration once (a request hop plus a hand-over hop) and is then
// ordered at LAN speed, pipelining computation and communication — the
// paper's ASP optimization.
type MigratingSequencer struct {
	next      uint64
	holder    int // cluster currently hosting the sequencer
	inFlight  bool
	requests  []int  // FIFO of clusters waiting for the sequencer
	requested []bool // per-cluster: migration already requested
	queues    [][]*pendingBcast
	reqMsgs   []migratingRequest // per-cluster request records (≤1 in flight each)
	tok       *migratingToken    // the single hand-over record
}

// NewMigratingSequencer creates a migrating sequencer, initially hosted by
// cluster 0.
func NewMigratingSequencer() *MigratingSequencer { return &MigratingSequencer{} }

func (s *MigratingSequencer) Name() string { return "migrating" }

func (s *MigratingSequencer) attach(r *RTS) {
	s.queues = make([][]*pendingBcast, r.topo.Clusters)
	s.requested = make([]bool, r.topo.Clusters)
	s.reqMsgs = make([]migratingRequest, r.topo.Clusters)
	for c := range s.reqMsgs {
		s.reqMsgs[c] = migratingRequest{s: s, c: c}
	}
	s.tok = &migratingToken{s: s}
}

// Submit sends the update to the sender's cluster sequencer node; if the
// sequencer is hosted there it orders immediately, otherwise the cluster
// requests a migration.
func (s *MigratingSequencer) Submit(r *RTS, from cluster.NodeID, b *pendingBcast) {
	c := r.topo.ClusterOf(from)
	sn := seqNode(r.topo, c)
	if from == sn {
		s.arrive(r, c, b)
		return
	}
	r.sendSubmit(s, from, sn, c, b)
}

// arrive handles an update that has reached its cluster sequencer node.
func (s *MigratingSequencer) arrive(r *RTS, c int, b *pendingBcast) {
	if s.holder == c && !s.inFlight {
		seq := s.next
		s.next++
		r.distribute(seqNode(r.topo, c), seq, b)
		return
	}
	s.queues[c] = append(s.queues[c], b)
	if !s.requested[c] {
		// Send a migration request from our sequencer node to the
		// current holder's sequencer node (one WAN hop).
		s.requested[c] = true
		r.send(netsim.Msg{
			From: seqNode(r.topo, c), To: seqNode(r.topo, s.holder),
			Kind: netsim.KindControl, Size: tokenHopBytes,
			Payload: &s.reqMsgs[c],
		})
	}
}

// migratingRequest asks the holder to hand the sequencer over to cluster c.
type migratingRequest struct {
	s *MigratingSequencer
	c int
}

func (m *migratingRequest) deliver(r *RTS) { m.s.handleRequest(r, m.c) }

func (s *MigratingSequencer) handleRequest(r *RTS, c int) {
	if s.inFlight {
		s.requests = append(s.requests, c)
		return
	}
	if s.holder == c {
		// The sequencer migrated back here while the request was in
		// flight; order the queued updates directly.
		s.requested[c] = false
		s.drain(r, c)
		return
	}
	s.sendToken(r, c)
}

// sendToken hands the sequencer from the current holder to cluster c.
func (s *MigratingSequencer) sendToken(r *RTS, c int) {
	s.inFlight = true
	s.tok.c = c
	r.send(netsim.Msg{
		From: seqNode(r.topo, s.holder), To: seqNode(r.topo, c),
		Kind: netsim.KindControl, Size: tokenHopBytes,
		Payload: s.tok,
	})
}

type migratingToken struct {
	s *MigratingSequencer
	c int
}

func (m *migratingToken) deliver(r *RTS) {
	s := m.s
	s.holder = m.c
	s.inFlight = false
	s.requested[m.c] = false
	s.drain(r, m.c)
	// Serve waiting clusters: drain any whose request is already satisfied
	// by the token being here, then hand the token to the first remote one.
	for len(s.requests) > 0 {
		next := s.requests[0]
		k := copy(s.requests, s.requests[1:])
		s.requests = s.requests[:k]
		if next == s.holder {
			s.requested[next] = false
			s.drain(r, next)
			continue
		}
		s.sendToken(r, next)
		return
	}
}

func (s *MigratingSequencer) drain(r *RTS, c int) { drainQueue(r, s.queues, c, &s.next) }
