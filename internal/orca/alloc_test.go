//go:build !race

// Alloc-regression tests for the flattened data path: the steady-state cost
// of the core messaging operations, in allocations per operation, measured
// with testing.AllocsPerRun and pinned to zero. A change that reintroduces
// per-message allocation (tag construction, record churn, payload boxing)
// fails here long before it shows up in the benchmarks.
//
// The file is excluded under the race detector: instrumentation inflates
// allocation counts and these budgets are meaningless there.
package orca

import (
	"testing"

	"albatross/internal/cluster"
	"albatross/internal/sim"
)

// drive builds a one-operation-per-kick harness: body runs in a daemon
// process, performing one operation each time the returned step function is
// called. Each step enqueues one kick and drains the engine, so everything
// the operation schedules (transits, deliveries, acknowledgements, token
// hops) is charged to that step.
func drive(e *sim.Engine, name string, body func(p *sim.Proc)) (step func()) {
	kick := sim.NewMailbox(e, name)
	e.Go(name, func(p *sim.Proc) {
		p.SetDaemon(true)
		for {
			kick.Get(p)
			body(p)
		}
	})
	var tok any = "kick"
	return func() {
		kick.Put(tok)
		if err := e.Run(); err != nil {
			panic(err)
		}
	}
}

// allocBudget runs step under AllocsPerRun after warming every free list and
// checks the steady-state allocation count against the budget.
func allocBudget(t *testing.T, name string, step func(), budget float64) {
	t.Helper()
	for i := 0; i < 16; i++ {
		step() // warm pools, mailbox rings, and goroutine stacks
	}
	if got := testing.AllocsPerRun(100, step); got > budget {
		t.Errorf("%s: %.1f allocs/op, budget %.0f", name, got, budget)
	}
}

// TestAllocSendRecvData pins the tagged point-to-point path at zero: an
// interned tag, a pooled message record recycled at delivery, and a
// pre-boxed payload make SendData/RecvData allocation-free.
func TestAllocSendRecvData(t *testing.T) {
	e, _, rts := build(1, 2, nil)
	id := rts.InternTag(Tag{Op: "alloc-p2p"})
	var payload any = "payload"
	rx := drive(e, "alloc-rx", func(p *sim.Proc) {
		if got := rts.RecvDataID(p, 1, id); got != payload {
			t.Fatal("wrong payload")
		}
	})
	step := func() {
		rts.SendDataID(0, 1, id, 64, payload)
		rx()
	}
	allocBudget(t, "SendData/RecvData", step, 0)
}

// TestAllocRPCRoundTrip pins a full remote invocation — request, dispatch,
// reply, caller wake — at zero steady-state allocations.
func TestAllocRPCRoundTrip(t *testing.T) {
	e, _, rts := build(1, 2, nil)
	obj := rts.NewObject("c", 0, &counter{})
	op := Op{Name: "inc", ArgBytes: 8, ResBytes: 8,
		Apply: func(s any) any { c := s.(*counter); c.n++; return nil }}
	step := drive(e, "alloc-rpc", func(p *sim.Proc) {
		obj.Invoke(p, 1, op)
	})
	allocBudget(t, "RPC round trip", step, 0)
}

// TestAllocBroadcast pins one totally-ordered replicated update at zero for
// each sequencer protocol: the pendingBcast record is the wire payload end
// to end, submit/grant/token records come from free lists, and the ordering
// queues reuse their capacity.
func TestAllocBroadcast(t *testing.T) {
	cases := []struct {
		name string
		mk   func() Sequencer
	}{
		{"central", func() Sequencer { return NewCentralSequencer(0) }},
		{"rotating", func() Sequencer { return NewRotatingSequencer() }},
		{"migrating", func() Sequencer { return NewMigratingSequencer() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, _, rts := build(2, 2, tc.mk())
			obj := rts.NewReplicated("c", func(n cluster.NodeID) any { return &counter{} })
			op := Op{Name: "inc", ArgBytes: 8, ResBytes: 8,
				Apply: func(s any) any { c := s.(*counter); c.n++; return nil }}
			step := drive(e, "alloc-bcast", func(p *sim.Proc) {
				obj.Invoke(p, 1, op)
			})
			allocBudget(t, tc.name+" broadcast", step, 0)
		})
	}
}
