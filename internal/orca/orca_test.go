package orca

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/netsim"
	"albatross/internal/rng"
	"albatross/internal/sim"
)

func build(clusters, npc int, seqr Sequencer) (*sim.Engine, *netsim.Network, *RTS) {
	e := sim.NewEngine()
	topo := cluster.Topology{Clusters: clusters, NodesPerCluster: npc}
	net := netsim.New(e, topo, cluster.DASParams())
	rts := New(net, seqr)
	return e, net, rts
}

// counter state for shared-object tests.
type counter struct{ n int }

func incOp(by int) Op {
	return Op{Name: "inc", ArgBytes: 8, ResBytes: 8,
		Apply: func(s any) any { c := s.(*counter); c.n += by; return c.n }}
}

var readOp = Op{Name: "read", ArgBytes: 4, ResBytes: 8, ReadOnly: true,
	Apply: func(s any) any { return s.(*counter).n }}

func TestLocalInvoke(t *testing.T) {
	e, _, rts := build(1, 4, nil)
	obj := rts.NewObject("c", 0, &counter{})
	var got any
	e.Go("w", func(p *sim.Proc) {
		obj.Invoke(p, 0, incOp(5))
		got = obj.Invoke(p, 0, readOp)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got.(int) != 5 {
		t.Fatalf("got %v", got)
	}
	if e.Now() != 0 {
		t.Fatalf("local ops took %v", e.Now())
	}
	if rts.Ops().RPCs != 0 || rts.Ops().LocalOps != 2 {
		t.Fatalf("ops %+v", rts.Ops())
	}
}

func TestRemoteRPC(t *testing.T) {
	e, net, rts := build(1, 4, nil)
	obj := rts.NewObject("c", 0, &counter{})
	var got any
	e.Go("w", func(p *sim.Proc) {
		got = obj.Invoke(p, 2, incOp(7))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got.(int) != 7 {
		t.Fatalf("got %v", got)
	}
	if rts.Ops().RPCs != 1 {
		t.Fatalf("ops %+v", rts.Ops())
	}
	s := net.Stats()
	if s.Intra(netsim.KindRPCReq).Msgs != 1 || s.Intra(netsim.KindRPCRep).Msgs != 1 {
		t.Fatalf("stats %v", s)
	}
}

// TestTable1LANRPCLatency checks the null-RPC calibration against the
// paper's Table 1: 40 us application-to-application on Myrinet.
func TestTable1LANRPCLatency(t *testing.T) {
	e, _, rts := build(1, 2, nil)
	obj := rts.NewObject("c", 0, &counter{})
	var rtt time.Duration
	e.Go("w", func(p *sim.Proc) {
		start := p.Now()
		obj.Invoke(p, 1, Op{Name: "null", Apply: func(s any) any { return nil }})
		rtt = p.Now() - start
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if rtt < 30*time.Microsecond || rtt > 50*time.Microsecond {
		t.Fatalf("LAN null RPC %v, want ~40us", rtt)
	}
}

// TestTable1LANBcastLatency checks the replicated-update calibration:
// ~65 us on one cluster.
func TestTable1LANBcastLatency(t *testing.T) {
	e, _, rts := build(1, 60, nil)
	obj := rts.NewReplicated("c", func(cluster.NodeID) any { return &counter{} })
	var lat time.Duration
	e.Go("w", func(p *sim.Proc) {
		start := p.Now()
		obj.Invoke(p, 5, Op{Name: "null", Apply: func(s any) any { return nil }})
		lat = p.Now() - start
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if lat < 45*time.Microsecond || lat > 90*time.Microsecond {
		t.Fatalf("LAN replicated update %v, want ~65us", lat)
	}
}

// TestTable1WANRPCLatency checks the WAN null-RPC calibration: ~2.7 ms
// round trip.
func TestTable1WANRPCLatency(t *testing.T) {
	e, _, rts := build(2, 2, nil)
	obj := rts.NewObject("c", 0, &counter{})
	var rtt time.Duration
	e.Go("w", func(p *sim.Proc) {
		// Node 2 lives in cluster 1: the call crosses the WAN twice.
		start := p.Now()
		obj.Invoke(p, 2, Op{Name: "null", Apply: func(s any) any { return nil }})
		rtt = p.Now() - start
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if rtt < 2300*time.Microsecond || rtt > 3100*time.Microsecond {
		t.Fatalf("WAN null RPC %v, want ~2.7ms", rtt)
	}
}

// TestTable1Bandwidth checks that a 100 KB stream achieves roughly the
// configured link bandwidths at application level.
func TestTable1Bandwidth(t *testing.T) {
	for _, tc := range []struct {
		name     string
		clusters int
		to       cluster.NodeID
		minMbit  float64
		maxMbit  float64
	}{
		{"LAN", 1, 1, 150, 230},
		{"WAN", 2, 2, 3.8, 5.0},
	} {
		e, _, rts := build(tc.clusters, 2, nil)
		const chunk = 100 * 1024
		const nmsg = 10
		var elapsed time.Duration
		done := sim.NewFuture(e, "done")
		e.Go("recv", func(p *sim.Proc) {
			for i := 0; i < nmsg; i++ {
				rts.RecvData(p, tc.to, Tag{Op: "bw"})
			}
			done.Set(nil)
		})
		e.Go("send", func(p *sim.Proc) {
			for i := 0; i < nmsg; i++ {
				rts.SendData(0, tc.to, Tag{Op: "bw"}, chunk, nil)
			}
			done.Await(p)
			elapsed = p.Now()
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		mbit := float64(nmsg*chunk) * 8 / 1e6 / elapsed.Seconds()
		if mbit < tc.minMbit || mbit > tc.maxMbit {
			t.Fatalf("%s bandwidth %.2f Mbit/s, want [%v,%v]", tc.name, mbit, tc.minMbit, tc.maxMbit)
		}
	}
}

func TestReplicatedReadIsLocalAndFree(t *testing.T) {
	e, net, rts := build(2, 4, nil)
	obj := rts.NewReplicated("c", func(cluster.NodeID) any { return &counter{n: 9} })
	var got any
	e.Go("w", func(p *sim.Proc) { got = obj.Invoke(p, 6, readOp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got.(int) != 9 {
		t.Fatalf("got %v", got)
	}
	if net.Stats().TotalIntra().Msgs+net.Stats().TotalInter().Msgs != 0 {
		t.Fatal("replicated read generated traffic")
	}
}

func TestReplicatedWriteUpdatesAllReplicas(t *testing.T) {
	for _, seqr := range []Sequencer{NewCentralSequencer(0), NewRotatingSequencer(), NewMigratingSequencer()} {
		e, _, rts := build(2, 3, seqr)
		obj := rts.NewReplicated("c", func(cluster.NodeID) any { return &counter{} })
		e.Go("w", func(p *sim.Proc) {
			obj.Invoke(p, 4, incOp(3))
		})
		if err := e.Run(); err != nil {
			t.Fatalf("%s: %v", seqr.Name(), err)
		}
		for i := 0; i < 6; i++ {
			if obj.Replica(cluster.NodeID(i)).(*counter).n != 3 {
				t.Fatalf("%s: replica %d not updated", seqr.Name(), i)
			}
		}
	}
}

// TestTotalOrderProperty is the central correctness property of the
// broadcast layer: whatever the sequencer protocol, cluster shape and write
// schedule, every node applies exactly the same sequence of updates.
func TestTotalOrderProperty(t *testing.T) {
	protocols := []func() Sequencer{
		func() Sequencer { return NewCentralSequencer(0) },
		func() Sequencer { return NewRotatingSequencer() },
		func() Sequencer { return NewMigratingSequencer() },
	}
	prop := func(seed uint64, pidx uint8, cl8, npc8 uint8) bool {
		clusters := int(cl8%3) + 1
		npc := int(npc8%4) + 1
		seqr := protocols[int(pidx)%len(protocols)]()
		e, _, rts := build(clusters, npc, seqr)
		obj := rts.NewReplicated("c", func(cluster.NodeID) any { return &counter{} })

		n := clusters * npc
		applied := make([][]int, n) // per node: sequence of op IDs
		obj.OnApplied(func(at cluster.NodeID, op Op, result any) {
			applied[at] = append(applied[at], op.ArgBytes) // op ID smuggled in ArgBytes
		})
		r := rng.New(seed)
		writers := 1 + r.Intn(n)
		totalWrites := 0
		for wi := 0; wi < writers; wi++ {
			node := cluster.NodeID(r.Intn(n))
			k := 1 + r.Intn(4)
			totalWrites += k
			wr := r.Derive(uint64(wi))
			base := wi * 100
			e.Go("writer", func(p *sim.Proc) {
				for j := 0; j < k; j++ {
					p.Compute(time.Duration(wr.Intn(2000)) * time.Microsecond)
					id := base + j
					obj.Invoke(p, node, Op{Name: "w", ArgBytes: id,
						Apply: func(s any) any { s.(*counter).n++; return nil }})
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if len(applied[i]) != totalWrites {
				return false
			}
			for j := range applied[i] {
				if applied[i][j] != applied[0][j] {
					return false
				}
			}
			if obj.Replica(cluster.NodeID(i)).(*counter).n != totalWrites {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestWriterBlocksUntilOwnDelivery: the invocation must not return before
// the writer's own replica has the new value.
func TestWriterBlocksUntilOwnDelivery(t *testing.T) {
	e, _, rts := build(2, 2, nil)
	obj := rts.NewReplicated("c", func(cluster.NodeID) any { return &counter{} })
	e.Go("w", func(p *sim.Proc) {
		obj.Invoke(p, 3, incOp(1))
		if got := obj.Invoke(p, 3, readOp).(int); got != 1 {
			t.Errorf("own replica stale after write returned: %d", got)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestMigratingFasterThanRotatingForBursts reproduces the ASP reasoning:
// a burst of broadcasts from one node should be much faster under the
// migrating sequencer than under the rotating one.
func TestMigratingFasterThanRotatingForBursts(t *testing.T) {
	burst := func(seqr Sequencer) time.Duration {
		e, _, rts := build(4, 4, seqr)
		obj := rts.NewReplicated("c", func(cluster.NodeID) any { return &counter{} })
		e.Go("w", func(p *sim.Proc) {
			for i := 0; i < 50; i++ {
				obj.Invoke(p, 5, incOp(1)) // node 5 is in cluster 1
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}
	rot := burst(NewRotatingSequencer())
	mig := burst(NewMigratingSequencer())
	if mig*3 > rot {
		t.Fatalf("migrating (%v) not clearly faster than rotating (%v)", mig, rot)
	}
}

func TestAsyncUpdateEventuallyEverywhere(t *testing.T) {
	e, _, rts := build(3, 2, nil)
	obj := rts.NewReplicated("c", func(cluster.NodeID) any { return &counter{} })
	e.Go("w", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			obj.AsyncUpdate(1, incOp(1))
		}
		// Sender continues immediately: no virtual time may have passed.
		if p.Now() != 0 {
			t.Errorf("async update blocked the sender until %v", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if got := obj.Replica(cluster.NodeID(i)).(*counter).n; got != 5 {
			t.Fatalf("replica %d has %d, want 5", i, got)
		}
	}
}

func TestServiceRequestReply(t *testing.T) {
	e, _, rts := build(2, 2, nil)
	mb := rts.RegisterService(3, "adder")
	e.Go("server", func(p *sim.Proc) {
		p.SetDaemon(true)
		for {
			req := NextRequest(p, mb)
			req.Reply(8, req.Payload.(int)+1)
		}
	})
	var got any
	e.Go("client", func(p *sim.Proc) {
		got = rts.Call(p, 0, 3, "adder", 8, 41)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got.(int) != 42 {
		t.Fatalf("got %v", got)
	}
}

func TestCastAndHandleService(t *testing.T) {
	e, _, rts := build(1, 2, nil)
	sum := 0
	rts.HandleService(1, "acc", func(req *Request) { sum += req.Payload.(int) })
	e.Go("client", func(p *sim.Proc) {
		rts.Cast(0, 1, "acc", 8, 4)
		rts.Cast(0, 1, "acc", 8, 38)
		if p.Now() != 0 {
			t.Error("Cast blocked the sender")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sum != 42 {
		t.Fatalf("sum %d", sum)
	}
}

func TestDataTagsIsolateStreams(t *testing.T) {
	e, _, rts := build(1, 2, nil)
	tagA, tagB := Tag{Op: "a"}, Tag{Op: "b", A: 1}
	var gotA, gotB any
	e.Go("recv", func(p *sim.Proc) {
		gotB = rts.RecvData(p, 1, tagB)
		gotA = rts.RecvData(p, 1, tagA)
	})
	e.Go("send", func(p *sim.Proc) {
		rts.SendData(0, 1, tagA, 10, "A")
		rts.SendData(0, 1, tagB, 10, "B")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if gotA != "A" || gotB != "B" {
		t.Fatalf("got %v %v", gotA, gotB)
	}
}

func TestAsyncFIFOPerSender(t *testing.T) {
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		e, _, rts := build(2, 2, nil)
		obj := rts.NewReplicated("log", func(cluster.NodeID) any { return &[]int{} })
		logs := make([][]int, 4)
		obj.OnApplied(func(at cluster.NodeID, op Op, _ any) {
			logs[at] = append(logs[at], op.ArgBytes)
		})
		const k = 15
		e.Go("w", func(p *sim.Proc) {
			for i := 0; i < k; i++ {
				obj.AsyncUpdate(0, Op{Name: "w", ArgBytes: i, Apply: func(s any) any { return nil }})
				p.Compute(time.Duration(r.Intn(300)) * time.Microsecond)
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		for n := 0; n < 4; n++ {
			if len(logs[n]) != k {
				return false
			}
			for i := 0; i < k; i++ {
				if logs[n][i] != i {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestOpsCounting(t *testing.T) {
	e, _, rts := build(2, 2, nil)
	nonrep := rts.NewObject("n", 0, &counter{})
	rep := rts.NewReplicated("r", func(cluster.NodeID) any { return &counter{} })
	e.Go("w", func(p *sim.Proc) {
		nonrep.Invoke(p, 1, incOp(1)) // RPC
		nonrep.Invoke(p, 0, incOp(1)) // local (owner invocation via node 0 context)
		rep.Invoke(p, 1, readOp)      // local read
		rep.Invoke(p, 1, incOp(1))    // broadcast
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	ops := rts.Ops()
	if ops.RPCs != 1 || ops.LocalOps != 2 || ops.Bcasts != 1 {
		t.Fatalf("ops %+v", ops)
	}
}

func TestManyObjectsInterleavedWrites(t *testing.T) {
	// Two replicated objects sharing the global order must not wedge.
	e, _, rts := build(2, 2, nil)
	a := rts.NewReplicated("a", func(cluster.NodeID) any { return &counter{} })
	b := rts.NewReplicated("b", func(cluster.NodeID) any { return &counter{} })
	for i := 0; i < 4; i++ {
		node := cluster.NodeID(i)
		e.Go(fmt.Sprintf("w%d", i), func(p *sim.Proc) {
			for j := 0; j < 5; j++ {
				a.Invoke(p, node, incOp(1))
				b.Invoke(p, node, incOp(2))
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if a.Replica(cluster.NodeID(i)).(*counter).n != 20 {
			t.Fatalf("a replica %d wrong", i)
		}
		if b.Replica(cluster.NodeID(i)).(*counter).n != 40 {
			t.Fatalf("b replica %d wrong", i)
		}
	}
}

// TestTotalOrderOnIrregularTopology repeats the core total-order property on
// the paper's real, unequal-cluster DAS shape.
func TestTotalOrderOnIrregularTopology(t *testing.T) {
	for _, mk := range []func() Sequencer{
		func() Sequencer { return NewCentralSequencer(0) },
		func() Sequencer { return NewRotatingSequencer() },
		func() Sequencer { return NewMigratingSequencer() },
	} {
		e := sim.NewEngine()
		topo := cluster.Irregular(5, 2, 3)
		net := netsim.New(e, topo, cluster.DASParams())
		rts := New(net, mk())
		obj := rts.NewReplicated("c", func(cluster.NodeID) any { return &counter{} })
		n := topo.Compute()
		applied := make([][]int, n)
		obj.OnApplied(func(at cluster.NodeID, op Op, _ any) {
			applied[at] = append(applied[at], op.ArgBytes)
		})
		const writers = 6
		for wi := 0; wi < writers; wi++ {
			node := cluster.NodeID(wi % n)
			id := wi
			e.Go("writer", func(p *sim.Proc) {
				p.Compute(time.Duration(id*150) * time.Microsecond)
				obj.Invoke(p, node, Op{Name: "w", ArgBytes: id,
					Apply: func(s any) any { s.(*counter).n++; return nil }})
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if len(applied[i]) != writers {
				t.Fatalf("node %d applied %d of %d", i, len(applied[i]), writers)
			}
			for j := range applied[i] {
				if applied[i][j] != applied[0][j] {
					t.Fatalf("order differs at node %d: %v vs %v", i, applied[i], applied[0])
				}
			}
		}
	}
}

// TestChaosMix stress-tests the runtime with every primitive interleaved:
// random RPCs, ordered and async replicated writes, service calls and raw
// data messages, across a random topology — everything must stay conserved
// and consistent.
func TestChaosMix(t *testing.T) {
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		clusters := 1 + r.Intn(3)
		npc := 2 + r.Intn(3)
		e, _, rts := build(clusters, npc, nil)
		n := clusters * npc

		counterObj := rts.NewObject("counter", 0, &counter{})
		repObj := rts.NewReplicated("rep", func(cluster.NodeID) any { return &counter{} })
		echoes := 0
		for i := 0; i < n; i++ {
			id := cluster.NodeID(i)
			rts.HandleService(id, "echo", func(req *Request) {
				echoes++
				if req.NeedsReply() {
					req.Reply(8, req.Payload)
				}
			})
		}

		var wantRPC, wantOrdered, wantAsync, wantData, wantCalls int
		dataGot := 0
		for i := 0; i < n; i++ {
			node := cluster.NodeID(i)
			pr := r.Derive(uint64(i))
			steps := 5 + pr.Intn(10)
			e.Go(fmt.Sprintf("w%d", i), func(p *sim.Proc) {
				for s := 0; s < steps; s++ {
					p.Compute(time.Duration(pr.Intn(500)) * time.Microsecond)
					switch pr.Intn(5) {
					case 0:
						counterObj.Invoke(p, node, incOp(1))
						wantRPC++
					case 1:
						repObj.Invoke(p, node, incOp(1))
						wantOrdered++
					case 2:
						repObj.AsyncUpdate(node, incOp(1))
						wantAsync++
					case 3:
						dst := cluster.NodeID(pr.Intn(n))
						if rts.Call(p, node, dst, "echo", 8, s) != s {
							panic("echo mismatch")
						}
						wantCalls++
					case 4:
						dst := cluster.NodeID(pr.Intn(n))
						rts.SendData(node, dst, Tag{Op: "chaos", A: int(dst)}, 16, s)
						wantData++
					}
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		if counterObj.State().(*counter).n != wantRPC {
			return false
		}
		for i := 0; i < n; i++ {
			if repObj.Replica(cluster.NodeID(i)).(*counter).n != wantOrdered+wantAsync {
				return false
			}
			for {
				if _, ok := rts.TryRecvData(cluster.NodeID(i), Tag{Op: "chaos", A: i}); !ok {
					break
				}
				dataGot++
			}
		}
		return dataGot == wantData && echoes == wantCalls
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
