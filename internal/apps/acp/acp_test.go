package acp

import (
	"testing"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/core"
)

func testCfg() Config {
	return Config{Vars: 60, Domain: 12, Degree: 6, Tightness: 65, Seed: 13,
		CheckCost: 50 * time.Nanosecond}
}

func run(t *testing.T, clusters, npc int, optimized bool, cfg Config) core.Metrics {
	t.Helper()
	sys := core.NewSystem(core.Config{
		Topology: cluster.DAS(clusters, npc),
		Params:   cluster.DASParams(),
	})
	verify := Build(sys, cfg, optimized)
	m, err := sys.Run()
	if err != nil {
		t.Fatalf("run %dx%d opt=%v: %v", clusters, npc, optimized, err)
	}
	if err := verify(); err != nil {
		t.Fatalf("verify %dx%d opt=%v: %v", clusters, npc, optimized, err)
	}
	return m
}

func TestSequentialIsFixpoint(t *testing.T) {
	cfg := testCfg()
	pr := NewProblem(cfg)
	dom := Sequential(cfg)
	pruned := 0
	for v := 0; v < cfg.Vars; v++ {
		if dom[v] != fullMask(cfg.Domain) {
			pruned++
		}
		for _, u := range pr.neighbors[v] {
			nv, _ := pr.revise(v, int(u), dom[v], dom[u])
			if nv != dom[v] {
				t.Fatalf("not a fixpoint: revise(%d,%d) still prunes", v, u)
			}
		}
	}
	if pruned == 0 {
		t.Fatal("no domain pruned at all; instance trivial, tighten the constraints")
	}
}

func TestAllowedSymmetric(t *testing.T) {
	pr := NewProblem(testCfg())
	for i := 0; i < 10; i++ {
		for j := 11; j < 20; j++ {
			for a := 0; a < 4; a++ {
				for b := 0; b < 4; b++ {
					if pr.allowed(i, j, a, b) != pr.allowed(j, i, b, a) {
						t.Fatalf("asymmetric constraint (%d,%d,%d,%d)", i, j, a, b)
					}
				}
			}
		}
	}
}

func TestCorrectAcrossShapes(t *testing.T) {
	cfg := testCfg()
	for _, sh := range [][2]int{{1, 1}, {1, 4}, {2, 2}, {2, 3}, {4, 2}} {
		for _, opt := range []bool{false, true} {
			run(t, sh[0], sh[1], opt, cfg)
		}
	}
}

func TestAsyncDoesNotBlockSenders(t *testing.T) {
	cfg := testCfg()
	orig := run(t, 4, 3, false, cfg)
	opt := run(t, 4, 3, true, cfg)
	if opt.Elapsed >= orig.Elapsed {
		t.Fatalf("async broadcasts (%v) not faster than ordered (%v)", opt.Elapsed, orig.Elapsed)
	}
}

func TestBroadcastHeavy(t *testing.T) {
	cfg := testCfg()
	m := run(t, 2, 2, false, cfg)
	if m.Ops.Bcasts == 0 {
		t.Fatal("no broadcasts; ACP should be broadcast-dominated")
	}
	if m.Ops.RPCs > m.Ops.Bcasts {
		t.Fatalf("RPC-dominated (%d RPCs vs %d bcasts)", m.Ops.RPCs, m.Ops.Bcasts)
	}
}
