// Package acp implements the Arc Consistency Problem application of the
// paper (Section 4.7): the first step of constraint solving — repeatedly
// removing values from variable domains that no value of a constraining
// neighbour supports, until a fixpoint. Variables are statically partitioned
// over the processors; domains live in a replicated object so reads are
// local, and every domain pruning is broadcast to all processors.
//
// Original program: prunings are totally-ordered broadcasts; the writer
// blocks until its own delivery, and on a wide-area system the many small
// broadcasts hammer the sequencer and the gateways.
//
// Optimized program (proposed but not implemented in the paper; we implement
// it): asynchronous broadcasts. Domain pruning is a commutative, idempotent
// bitmask AND, so no total order is needed; senders continue immediately and
// the same fixpoint is reached.
package acp

import (
	"fmt"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/coll"
	"albatross/internal/core"
	"albatross/internal/orca"
	"albatross/internal/rng"
)

// Config describes one binary CSP instance.
type Config struct {
	Vars      int // number of variables
	Domain    int // values per domain (max 32)
	Degree    int // average constraints per variable
	Tightness int // percent of value pairs disallowed by a constraint
	Seed      uint64
	CheckCost time.Duration // virtual CPU time per support check
}

// Default returns the scaled-down stand-in for the paper's 1500-variable
// input.
func Default() Config {
	return Config{Vars: 320, Domain: 16, Degree: 6, Tightness: 75, Seed: 13,
		CheckCost: 2 * time.Microsecond}
}

// Problem is one generated CSP.
type Problem struct {
	cfg       Config
	neighbors [][]int32 // adjacency lists (symmetric)
}

// allowed reports whether (a from D(i), b from D(j)) satisfies the
// constraint between i and j. It is symmetric by canonicalization.
func (pr *Problem) allowed(i, j int, a, b int) bool {
	if i > j {
		i, j, a, b = j, i, b, a
	}
	h := rng.Hash64(pr.cfg.Seed ^ rng.Hash64(uint64(i)<<40|uint64(j)<<20|uint64(a)<<8|uint64(b)))
	return int(h%100) >= pr.cfg.Tightness
}

// NewProblem generates the deterministic constraint graph for cfg.
func NewProblem(cfg Config) *Problem {
	if cfg.Domain > 32 {
		panic("acp: domain must fit a 32-bit mask")
	}
	r := rng.New(cfg.Seed)
	pr := &Problem{cfg: cfg, neighbors: make([][]int32, cfg.Vars)}
	edges := cfg.Vars * cfg.Degree / 2
	seen := make(map[[2]int32]bool)
	for e := 0; e < edges; e++ {
		i := int32(r.Intn(cfg.Vars))
		j := int32(r.Intn(cfg.Vars))
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		if seen[[2]int32{i, j}] {
			continue
		}
		seen[[2]int32{i, j}] = true
		pr.neighbors[i] = append(pr.neighbors[i], j)
		pr.neighbors[j] = append(pr.neighbors[j], i)
	}
	return pr
}

func fullMask(d int) uint32 {
	if d == 32 {
		return ^uint32(0)
	}
	return (1 << d) - 1
}

// revise recomputes D(v) against one neighbour u: values of v without any
// support in D(u) are removed. It returns the new mask and the number of
// support checks performed.
func (pr *Problem) revise(v, u int, dv, du uint32) (uint32, int) {
	checks := 0
	out := dv
	for a := 0; a < pr.cfg.Domain; a++ {
		if dv&(1<<a) == 0 {
			continue
		}
		supported := false
		for b := 0; b < pr.cfg.Domain; b++ {
			if du&(1<<b) == 0 {
				continue
			}
			checks++
			if pr.allowed(v, u, a, b) {
				supported = true
				break
			}
		}
		if !supported {
			out &^= 1 << a
		}
	}
	return out, checks
}

// Sequential computes the AC fixpoint with an AC-3 style worklist. The
// fixpoint is unique, so it verifies any execution order.
func Sequential(cfg Config) []uint32 {
	pr := NewProblem(cfg)
	dom := make([]uint32, cfg.Vars)
	for i := range dom {
		dom[i] = fullMask(cfg.Domain)
	}
	work := make([]int32, 0, cfg.Vars)
	inWork := make([]bool, cfg.Vars)
	for i := 0; i < cfg.Vars; i++ {
		work = append(work, int32(i))
		inWork[i] = true
	}
	for len(work) > 0 {
		v := int(work[0])
		work = work[1:]
		inWork[v] = false
		nv := dom[v]
		for _, u := range pr.neighbors[v] {
			nv2, _ := pr.revise(v, int(u), nv, dom[u])
			nv = nv2
		}
		if nv != dom[v] {
			dom[v] = nv
			for _, u := range pr.neighbors[v] {
				if !inWork[u] {
					inWork[u] = true
					work = append(work, u)
				}
			}
		}
	}
	return dom
}

// domState is each node's replica of the domains object.
type domState struct {
	node cluster.NodeID
	dom  []uint32
}

// Build sets up the parallel ACP run; optimized selects asynchronous
// broadcast. The verifier compares every replica against the sequential
// fixpoint.
func Build(sys *core.System, cfg Config, optimized bool) func() error {
	pr := NewProblem(cfg)
	p := sys.Topo.Compute()
	topo := sys.Topo

	domains := sys.RTS.NewReplicated("domains", func(node cluster.NodeID) any {
		dom := make([]uint32, cfg.Vars)
		for i := range dom {
			dom[i] = fullMask(cfg.Domain)
		}
		return &domState{node: node, dom: dom}
	})

	// dirty[r] is worker r's local worklist. Every access happens at node
	// r — the worker reads it there and prunings mark it from their Apply
	// at node r — so each map belongs to one LP when sharded.
	dirty := make([]map[int]bool, p)
	for r := range dirty {
		dirty[r] = map[int]bool{}
		for v := r; v < cfg.Vars; v += p {
			dirty[r][v] = true
		}
	}
	// sent[r] counts prunings issued by worker r; applied[n] counts prune
	// applications performed at node n. Each slot is touched only at its
	// own node, and the per-round termination allreduce sums them all.
	sent := make([]int64, p)
	applied := make([]int64, p)

	// markDirty: when a pruning of v lands on a node, the variables
	// constrained by v that live on that node become dirty.
	markDirty := func(at cluster.NodeID, v int) {
		for _, u := range pr.neighbors[v] {
			if int(u)%p == int(at) {
				dirty[at][int(u)] = true
			}
		}
	}

	// pruneOp ANDs the new mask into every replica's domain of v.
	pruneOp := func(v int, mask uint32) orca.Op {
		return orca.Op{Name: "Prune", ArgBytes: 8, ResBytes: 4,
			Apply: func(s any) any {
				st := s.(*domState)
				old := st.dom[v]
				st.dom[v] &= mask
				applied[st.node]++
				if st.dom[v] != old {
					markDirty(st.node, v)
				}
				return nil
			}}
	}

	// Round termination runs as a real wide-area allreduce summing every
	// worker's (worklist size, prunings sent, prunings applied here). The
	// fixpoint is reached when no worklist holds a variable and every
	// issued pruning has been applied at every node: applied == p * sent
	// at the cut also proves no update is still in flight, because no
	// worker sends while all are inside the allreduce.
	term := coll.New(sys, "acp-term", coll.WideArea)
	_ = topo

	sys.SpawnWorkers("acp", func(w *core.Worker) {
		r := w.Rank()
		st := domains.Replica(w.Node).(*domState)
		for {
			work := make([]int, 0, len(dirty[r]))
			for v := range dirty[r] {
				work = append(work, v)
			}
			// Deterministic order.
			sortInts(work)
			dirty[r] = map[int]bool{}
			if len(work) == 0 {
				w.P.Sleep(100 * time.Microsecond)
			}
			for _, v := range work {
				nv := st.dom[v]
				checks := 0
				for _, u := range pr.neighbors[v] {
					nv2, c := pr.revise(v, int(u), nv, st.dom[int(u)])
					nv = nv2
					checks += c
				}
				w.Compute(time.Duration(checks) * cfg.CheckCost)
				if nv != st.dom[v] {
					sent[r]++
					op := pruneOp(v, nv)
					if optimized {
						domains.AsyncUpdate(w.Node, op)
					} else {
						w.Invoke(domains, op)
					}
				}
			}
			tot := term.AllReduce(w, 24,
				acpTotals{dirty: int64(len(dirty[r])), sent: sent[r], applied: applied[r]},
				sumTotals).(acpTotals)
			if tot.dirty == 0 && tot.applied == int64(p)*tot.sent {
				return
			}
		}
	})

	return func() error {
		want := Sequential(cfg)
		for n := 0; n < p; n++ {
			st := domains.Replica(cluster.NodeID(n)).(*domState)
			for v := range want {
				if st.dom[v] != want[v] {
					return fmt.Errorf("acp: node %d domain[%d] = %x, want %x", n, v, st.dom[v], want[v])
				}
			}
		}
		return nil
	}
}

// acpTotals is one worker's contribution to the termination allreduce.
type acpTotals struct {
	dirty   int64 // variables still on the worker's worklist
	sent    int64 // prunings the worker has issued so far
	applied int64 // prunings applied at the worker's node so far
}

// sumTotals folds the termination contributions elementwise.
func sumTotals(acc, v any) any {
	t := v.(acpTotals)
	if acc == nil {
		return t
	}
	a := acc.(acpTotals)
	a.dirty += t.dirty
	a.sent += t.sent
	a.applied += t.applied
	return a
}

// sortInts sorts a small int slice (insertion sort; worklists are short).
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
