package ida

import (
	"testing"
	"testing/quick"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/core"
)

func testCfg() Config {
	return Config{Walk: 18, Seed: 4, Jobs: 48, ExpandCost: time.Microsecond}
}

func run(t *testing.T, clusters, npc int, optimized bool, cfg Config) core.Metrics {
	t.Helper()
	sys := core.NewSystem(core.Config{
		Topology: cluster.DAS(clusters, npc),
		Params:   cluster.DASParams(),
	})
	verify := Build(sys, cfg, optimized)
	m, err := sys.Run()
	if err != nil {
		t.Fatalf("run %dx%d opt=%v: %v", clusters, npc, optimized, err)
	}
	if err := verify(); err != nil {
		t.Fatalf("verify %dx%d opt=%v: %v", clusters, npc, optimized, err)
	}
	return m
}

func TestManhattanZeroOnlyAtGoal(t *testing.T) {
	g := Goal()
	if manhattan(&g) != 0 || !g.IsGoal() {
		t.Fatal("goal heuristic broken")
	}
	b := Scramble(10, 1)
	if b.IsGoal() {
		t.Fatal("scramble(10) returned the goal")
	}
	if manhattan(&b) == 0 {
		t.Fatal("manhattan 0 on non-goal board")
	}
}

func TestIncrementalHeuristicMatchesFull(t *testing.T) {
	prop := func(seed uint64, steps uint8) bool {
		b := Scramble(int(steps%40), seed)
		h := manhattan(&b)
		for d := int8(0); d < 4; d++ {
			if !canMove(b.blank, d) {
				continue
			}
			dh := b.apply(d)
			if h+dh != manhattan(&b) {
				return false
			}
			b.apply(reverse[d])
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScrambleSolvableWithinWalk(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		cfg := Config{Walk: 14, Seed: seed, Jobs: 16, ExpandCost: time.Microsecond}
		res := Sequential(cfg)
		if res.Optimal < 0 {
			t.Fatalf("seed %d: no solution found", seed)
		}
		if res.Optimal > 14 {
			t.Fatalf("seed %d: optimal %d exceeds walk length", seed, res.Optimal)
		}
		if res.Optimal%2 != 14%2 && res.Optimal%2 != 0 {
			// Parity of solution length matches walk parity for the
			// 15-puzzle; just sanity-check it is consistent.
			t.Logf("seed %d: optimal %d (walk 14)", seed, res.Optimal)
		}
	}
}

func TestFrontierDeterministicAndSized(t *testing.T) {
	cfg := testCfg()
	a, _ := frontier(cfg)
	b, _ := frontier(cfg)
	if len(a) != len(b) || len(a) < cfg.Jobs {
		t.Fatalf("frontier sizes %d vs %d (want >= %d)", len(a), len(b), cfg.Jobs)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("frontier not deterministic")
		}
	}
}

func TestCorrectAcrossShapes(t *testing.T) {
	cfg := testCfg()
	for _, sh := range [][2]int{{1, 1}, {1, 4}, {2, 2}, {4, 2}} {
		for _, opt := range []bool{false, true} {
			run(t, sh[0], sh[1], opt, cfg)
		}
	}
}

func TestOptimizedReducesInterclusterSteals(t *testing.T) {
	cfg := Config{Walk: 26, Seed: 4, Jobs: 64, ExpandCost: time.Microsecond}
	orig := run(t, 4, 3, false, cfg)
	opt := run(t, 4, 3, true, cfg)
	if opt.Net.InterRPC().Msgs >= orig.Net.InterRPC().Msgs {
		t.Fatalf("intercluster RPCs: opt %d vs orig %d, no reduction",
			opt.Net.InterRPC().Msgs, orig.Net.InterRPC().Msgs)
	}
}

func TestSpeedupSingleCluster(t *testing.T) {
	// Walk-50/seed-2 is a 1.5M-expansion instance with well-spread jobs.
	cfg := Config{Walk: 50, Seed: 2, Jobs: 2048, ExpandCost: 2 * time.Microsecond}
	t1 := run(t, 1, 1, false, cfg).Elapsed
	t8 := run(t, 1, 8, false, cfg).Elapsed
	if sp := float64(t1) / float64(t8); sp < 5 {
		t.Fatalf("8-proc speedup %.2f too low", sp)
	}
}

func TestPolicyMatrixAllCorrect(t *testing.T) {
	cfg := testCfg()
	for _, pol := range []Policy{
		{}, {LocalFirst: true}, {RememberIdle: true}, {LocalFirst: true, RememberIdle: true},
	} {
		sys := core.NewSystem(core.Config{
			Topology: cluster.DAS(2, 3),
			Params:   cluster.DASParams(),
		})
		verify := BuildPolicy(sys, cfg, pol)
		if _, err := sys.Run(); err != nil {
			t.Fatalf("%+v: %v", pol, err)
		}
		if err := verify(); err != nil {
			t.Fatalf("%+v: %v", pol, err)
		}
	}
}

func TestIrregularClusters(t *testing.T) {
	cfg := testCfg()
	sys := core.NewSystem(core.Config{
		Topology: cluster.Irregular(3, 2, 4),
		Params:   cluster.DASParams(),
	})
	verify := Build(sys, cfg, true)
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if err := verify(); err != nil {
		t.Fatal(err)
	}
}
