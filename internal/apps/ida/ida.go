package ida

import (
	"fmt"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/coll"
	"albatross/internal/core"
	"albatross/internal/orca"
)

// Config describes one IDA* run.
type Config struct {
	Walk       int           // scramble walk length (bounds the optimal depth)
	Seed       uint64        // instance seed
	Jobs       int           // size of the fixed initial job frontier
	ExpandCost time.Duration // virtual CPU time per node expansion
}

// Default returns the scaled-down stand-in for the paper's random
// 15-puzzle instances.
func Default() Config {
	return Config{Walk: 60, Seed: 4, Jobs: 2048, ExpandCost: time.Microsecond}
}

// job is one frontier node searched as a unit.
type job struct {
	b  Board
	g  int
	h  int
	lm int8
}

const jobBytes = 24

// frontier expands the instance root breadth-first (without undoing the
// previous move, no duplicate detection — plain IDA* semantics) until at
// least cfg.Jobs nodes exist. The expansion is deterministic and
// independent of the processor count, so job sets are identical across all
// configurations. It also returns the number of expansions spent.
func frontier(cfg Config) ([]job, int64) {
	root := Scramble(cfg.Walk, cfg.Seed)
	cur := []job{{b: root, g: 0, h: manhattan(&root), lm: -1}}
	var exp int64
	for len(cur) < cfg.Jobs {
		var next []job
		for _, j := range cur {
			if j.h == 0 && j.b.IsGoal() {
				// Trivial instance: keep the goal node as a job; the
				// searches will find the solution immediately.
				next = append(next, j)
				continue
			}
			for d := int8(0); d < 4; d++ {
				if j.lm >= 0 && d == reverse[j.lm] {
					continue
				}
				if !canMove(j.b.blank, d) {
					continue
				}
				nb := j.b
				dh := nb.apply(d)
				exp++
				next = append(next, job{b: nb, g: j.g + 1, h: j.h + dh, lm: d})
			}
		}
		if len(next) == len(cur) {
			break // cannot grow further (degenerate)
		}
		cur = next
	}
	return cur, exp
}

// Result summarizes one run.
type Result struct {
	Optimal    int   // solution length found
	Solutions  int64 // number of solutions at that threshold
	Expansions int64 // total bounded-DFS expansions over all iterations
}

// Sequential runs the reference computation: the same frontier and the same
// per-job bounded searches, iterating thresholds, on one processor.
func Sequential(cfg Config) Result {
	jobs, _ := frontier(cfg)
	root := Scramble(cfg.Walk, cfg.Seed)
	threshold := manhattan(&root)
	var total int64
	for {
		var sols int64
		next := infThreshold
		for _, j := range jobs {
			res := searchResult{next: infThreshold}
			if f := j.g + j.h; f > threshold {
				if f < next {
					next = f
				}
				continue
			}
			b := j.b
			boundedDFS(&b, j.g, j.h, j.lm, threshold, &res)
			total += res.expansions
			sols += res.solutions
			if res.next < next {
				next = res.next
			}
		}
		if sols > 0 {
			return Result{Optimal: threshold, Solutions: sols, Expansions: total}
		}
		if next >= infThreshold {
			return Result{Optimal: -1, Expansions: total}
		}
		threshold = next
	}
}

// queueState is one worker's local job queue (a shared object owned by that
// worker's node, so remote steals are RPCs and local pops are free).
type queueState struct{ jobs []job }

func popLocalOp() orca.Op {
	return orca.Op{Name: "PopLocal", ArgBytes: 4, ResBytes: jobBytes,
		Apply: func(s any) any {
			q := s.(*queueState)
			if len(q.jobs) == 0 {
				return nil
			}
			j := q.jobs[len(q.jobs)-1]
			q.jobs = q.jobs[:len(q.jobs)-1]
			return j
		}}
}

func stealOp() orca.Op {
	return orca.Op{Name: "Steal", ArgBytes: 8, ResBytes: jobBytes,
		Apply: func(s any) any {
			q := s.(*queueState)
			if len(q.jobs) == 0 {
				return nil
			}
			j := q.jobs[0]
			q.jobs = q.jobs[1:]
			return j
		}}
}

func pushOp(j job) orca.Op {
	return orca.Op{Name: "Push", ArgBytes: jobBytes, ResBytes: 4,
		Apply: func(s any) any {
			q := s.(*queueState)
			q.jobs = append(q.jobs, j)
			return nil
		}}
}

// idleState is each node's replica of the idle map (fed by the termination
// detection broadcasts the paper describes).
type idleState struct{ m *core.IdleMap }

func setIdleOp(rank int, idle bool) orca.Op {
	return orca.Op{Name: "SetIdle", ArgBytes: 8, ResBytes: 4,
		Apply: func(s any) any {
			s.(*idleState).m.Set(rank, idle)
			return nil
		}}
}

// Policy selects the work-stealing refinements independently, for the
// ablation study; the paper's optimized program enables both.
type Policy struct {
	LocalFirst   bool // steal inside the own cluster first
	RememberIdle bool // skip victims the idle map marks empty
}

// Build sets up the parallel IDA* run; optimized selects the local-first
// steal order and the "remember empty" heuristic. The verifier checks the
// solution length, solution count and the exact expansion-count invariant.
func Build(sys *core.System, cfg Config, optimized bool) func() error {
	if optimized {
		return BuildPolicy(sys, cfg, Policy{LocalFirst: true, RememberIdle: true})
	}
	return BuildPolicy(sys, cfg, Policy{})
}

// BuildPolicy sets up the run with an explicit stealing policy.
func BuildPolicy(sys *core.System, cfg Config, pol Policy) func() error {
	p := sys.Topo.Compute()
	topo := sys.Topo

	jobs, _ := frontier(cfg)
	root := Scramble(cfg.Walk, cfg.Seed)

	queues := make([]*orca.Object, p)
	for r := 0; r < p; r++ {
		queues[r] = sys.RTS.NewObject(fmt.Sprintf("ida-queue-%d", r), cluster.NodeID(r), &queueState{})
	}
	idleObj := sys.RTS.NewReplicated("ida-idle", func(cluster.NodeID) any {
		return &idleState{m: core.NewIdleMap(p)}
	})

	stealOrder := make([][]cluster.NodeID, p)
	for r := 0; r < p; r++ {
		if pol.LocalFirst {
			stealOrder[r] = core.StealOrderLocalFirst(topo, cluster.NodeID(r))
		} else {
			stealOrder[r] = core.StealOrderOriginal(topo, cluster.NodeID(r))
		}
	}

	// Per-worker tallies (each slot written only by its own worker) and the
	// iteration allreduce deciding continuation. No shared counters remain:
	// the work phase ends when the replicated idle map shows every worker
	// idle (see the loop below for why that is sound), and the iteration
	// decision comes from an allreduce folding every worker's
	// (min next-threshold, solutions found).
	workerExp := make([]int64, p)
	workerSols := make([]int64, p)
	foundOptimal := -1 // written by rank 0 only, read after the run
	iter := coll.New(sys, "ida-iter", coll.WideArea)

	sys.SpawnWorkers("ida", func(w *core.Worker) {
		r := w.Rank()
		myIdle := false
		threshold := manhattan(&root) // evolves identically on every worker
		for iteration := 0; ; iteration++ {
			myNext := infThreshold
			var mySols int64
			if myIdle {
				// Termination-detection broadcast: active again (the paper's
				// workers announce both transitions).
				myIdle = false
				w.Invoke(idleObj, setIdleOp(r, false))
			}
			// Refill the own queue with the static share of the frontier
			// (deterministic, generated locally — no distribution traffic).
			for i := r; i < len(jobs); i += p {
				w.Invoke(queues[r], pushOp(jobs[i]))
			}

			runJob := func(j job) {
				res := searchResult{next: infThreshold}
				if f := j.g + j.h; f > threshold {
					res.next = f
				} else {
					b := j.b
					boundedDFS(&b, j.g, j.h, j.lm, threshold, &res)
				}
				w.Compute(time.Duration(res.expansions) * cfg.ExpandCost)
				workerExp[r] += res.expansions
				mySols += res.solutions
				if res.next < myNext {
					myNext = res.next
				}
			}

			for {
				if v := w.Invoke(queues[r], popLocalOp()); v != nil {
					if myIdle {
						myIdle = false
						w.Invoke(idleObj, setIdleOp(r, false))
					}
					runJob(v.(job))
					continue
				}
				// Own queue empty: one sweep over the victims.
				stole := false
				for _, victim := range stealOrder[r] {
					if pol.RememberIdle && idleObj.Replica(w.Node).(*idleState).m.Idle(int(victim)) {
						continue // "remember empty": skip known-idle victims
					}
					if v := w.Invoke(queues[int(victim)], stealOp()); v != nil {
						if myIdle {
							myIdle = false
							w.Invoke(idleObj, setIdleOp(r, false))
						}
						runJob(v.(job))
						stole = true
						break
					}
				}
				if stole {
					continue
				}
				if !myIdle {
					// Termination-detection broadcast: we are out of work.
					myIdle = true
					w.Invoke(idleObj, setIdleOp(r, true))
				}
				// The idle map itself decides the phase end, as the paper's
				// program does: every idle broadcast was sent by a worker
				// whose queue was empty, queues only shrink during the work
				// phase (refills are the only pushes), and broadcasts are
				// totally ordered — so a replica showing all workers idle
				// proves every queue has drained for good.
				if idleObj.Replica(w.Node).(*idleState).m.AllIdle() {
					break
				}
				w.P.Sleep(300 * time.Microsecond)
			}

			workerSols[r] += mySols
			tot := iter.AllReduce(w, 16, iterStats{next: myNext, sols: mySols}, foldIter).(iterStats)
			if tot.sols > 0 {
				if r == 0 {
					foundOptimal = threshold
				}
				return
			}
			if tot.next >= infThreshold {
				return // unsolvable: foundOptimal stays -1, like Sequential
			}
			threshold = tot.next
		}
	})

	return func() error {
		want := Sequential(cfg)
		var totalExp, totalSols int64
		for r := 0; r < p; r++ {
			totalExp += workerExp[r]
			totalSols += workerSols[r]
		}
		if foundOptimal != want.Optimal {
			return fmt.Errorf("ida: optimal %d, want %d", foundOptimal, want.Optimal)
		}
		if totalSols != want.Solutions {
			return fmt.Errorf("ida: %d solutions, want %d", totalSols, want.Solutions)
		}
		if totalExp != want.Expansions {
			return fmt.Errorf("ida: %d expansions, want %d", totalExp, want.Expansions)
		}
		return nil
	}
}

// iterStats is one worker's contribution to the iteration allreduce.
type iterStats struct {
	next int   // smallest next-threshold candidate seen by this worker
	sols int64 // solutions found by this worker at the current threshold
}

// foldIter combines iteration contributions: minimum next, summed solutions.
func foldIter(acc, v any) any {
	t := v.(iterStats)
	if acc == nil {
		return t
	}
	a := acc.(iterStats)
	if t.next < a.next {
		a.next = t.next
	}
	a.sols += t.sols
	return a
}
