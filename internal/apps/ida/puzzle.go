// Package ida implements the Iterative Deepening A* application of the
// paper (Section 4.6): solving 15-puzzle instances with a distributed job
// queue and work stealing — the paper's example of an advanced dynamic
// load-balancing scheme.
//
// Original program: a fixed steal order (power-of-two offsets from the own
// rank) that makes the highest-numbered process of a cluster steal from
// remote clusters first, and steal requests that keep going to processors
// already known to be idle.
//
// Optimized program: steal inside the own cluster first, and use the idle
// map (maintained for free from the termination-detection broadcasts every
// worker already sends) to skip known-idle victims. As in the paper, the
// intercluster steal traffic roughly halves while the speedup barely moves
// at DAS network parameters, because the load balance is already good.
package ida

import (
	"albatross/internal/rng"
)

// Board is a 15-puzzle position: board[i] is the tile at cell i, 0 is the
// blank. The goal has tile i+1 at cell i and the blank at cell 15.
type Board struct {
	cells [16]int8
	blank int8
}

// Goal returns the solved position.
func Goal() Board {
	var b Board
	for i := 0; i < 15; i++ {
		b.cells[i] = int8(i + 1)
	}
	b.cells[15] = 0
	b.blank = 15
	return b
}

// IsGoal reports whether the board is solved.
func (b *Board) IsGoal() bool {
	for i := 0; i < 15; i++ {
		if b.cells[i] != int8(i+1) {
			return false
		}
	}
	return true
}

// moves: 0=up 1=down 2=left 3=right (movement of the blank).
var moveDelta = [4]int8{-4, 4, -1, 1}

// canMove reports whether the blank at position pos can move in direction d.
func canMove(pos, d int8) bool {
	switch d {
	case 0:
		return pos >= 4
	case 1:
		return pos < 12
	case 2:
		return pos%4 != 0
	case 3:
		return pos%4 != 3
	}
	return false
}

// reverse maps each move to its inverse.
var reverse = [4]int8{1, 0, 3, 2}

// goalCell[t] is the cell tile t belongs in.
var goalCell [16]int8

func init() {
	for i := 0; i < 15; i++ {
		goalCell[i+1] = int8(i)
	}
}

// manhattan computes the Manhattan-distance heuristic.
func manhattan(b *Board) int {
	h := 0
	for cell := int8(0); cell < 16; cell++ {
		t := b.cells[cell]
		if t == 0 {
			continue
		}
		g := goalCell[t]
		dr := int(cell/4 - g/4)
		if dr < 0 {
			dr = -dr
		}
		dc := int(cell%4 - g%4)
		if dc < 0 {
			dc = -dc
		}
		h += dr + dc
	}
	return h
}

// apply moves the blank in direction d and returns the heuristic delta.
func (b *Board) apply(d int8) int {
	from := b.blank
	to := from + moveDelta[d]
	t := b.cells[to]
	// Heuristic contribution of the moved tile before and after.
	g := goalCell[t]
	before := absInt(int(to/4-g/4)) + absInt(int(to%4-g%4))
	after := absInt(int(from/4-g/4)) + absInt(int(from%4-g%4))
	b.cells[from] = t
	b.cells[to] = 0
	b.blank = to
	return after - before
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Scramble returns the board reached by a deterministic pseudo-random walk
// of length steps from the goal (never undoing the previous move), a
// standard way to generate instances with bounded optimal depth.
func Scramble(steps int, seed uint64) Board {
	r := rng.New(seed)
	b := Goal()
	last := int8(-1)
	for k := 0; k < steps; k++ {
		for {
			d := int8(r.Intn(4))
			if last >= 0 && d == reverse[last] {
				continue
			}
			if !canMove(b.blank, d) {
				continue
			}
			b.apply(d)
			last = d
			break
		}
	}
	return b
}

// searchResult accumulates one bounded DFS.
type searchResult struct {
	expansions int64
	solutions  int64
	next       int // smallest f that exceeded the threshold
}

const infThreshold = 1 << 30

// boundedDFS searches all extensions of b (reached with cost g, heuristic h,
// last move lm) up to the f-threshold, counting expansions and solutions.
func boundedDFS(b *Board, g, h int, lm int8, threshold int, res *searchResult) {
	if h == 0 && b.IsGoal() {
		res.solutions++
		return
	}
	for d := int8(0); d < 4; d++ {
		if lm >= 0 && d == reverse[lm] {
			continue
		}
		if !canMove(b.blank, d) {
			continue
		}
		dh := b.apply(d)
		res.expansions++
		f := g + 1 + h + dh
		if f <= threshold {
			boundedDFS(b, g+1, h+dh, d, threshold, res)
		} else if f < res.next {
			res.next = f
		}
		b.apply(reverse[d]) // undo
	}
}
