// Package ra implements the Retrograde Analysis application of the paper
// (Section 4.5): bottom-up enumeration of a game database. Starting from
// terminal positions with known game-theoretic values, values propagate
// backwards to predecessors; the resulting communication is an enormous
// number of tiny, highly irregular, asynchronous messages — the hardest
// pattern in the paper's suite (the original program's four-cluster speedup
// is below one).
//
// The paper computes a 12-stone Awari end-game database. We substitute a
// synthetic deterministic game DAG (hash-generated forward edges, terminal
// positions of known value) — the communication pattern, which is what the
// experiment studies, is identical: every determined position sends one
// small update per predecessor to the predecessor's owner, in an
// unpredictable order. See DESIGN.md for the substitution argument.
//
// Original program: sender-side per-destination message combining (the
// paper's base program already has this node-level combining [Bal&Allis
// '95]). Optimized program: message combining at the *cluster* level
// (core.Combiner) — all traffic for a remote cluster leaves through one
// designated machine in large combined messages.
package ra

import (
	"fmt"
	"sync"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/orca"
	"albatross/internal/rng"
)

// Value is a game-theoretic position value for the player to move.
type Value uint8

const (
	Undetermined Value = iota
	Win
	Loss
)

// Config describes one synthetic end-game database.
type Config struct {
	N         int           // positions
	Succ      int           // successors per non-terminal position
	Span      int           // successors lie within (v, v+Span]
	TermPct   int           // percent of positions that are terminal (plus the tail)
	Seed      uint64        //
	ApplyCost time.Duration // virtual CPU time per update processed
	SendCost  time.Duration // virtual CPU time per message sent (protocol overhead)
	NodeBatch int           // sender-side per-destination combining factor
	FlushEach time.Duration // combiner/batch straggler flush interval
}

// Default returns the scaled-down stand-in for the paper's 12-stone Awari
// database.
func Default() Config {
	return Config{N: 150_000, Succ: 3, Span: 20_000, TermPct: 5, Seed: 21,
		ApplyCost: 2 * time.Microsecond, SendCost: 25 * time.Microsecond,
		NodeBatch: 16, FlushEach: 500 * time.Microsecond}
}

// Game is the generated DAG, defined implicitly by hashing.
type Game struct{ cfg Config }

// NewGame builds the deterministic game for cfg.
func NewGame(cfg Config) *Game { return &Game{cfg: cfg} }

// Terminal reports whether v is a terminal (immediately lost) position.
func (g *Game) Terminal(v int) bool {
	if v >= g.cfg.N-g.cfg.Span/2-1 {
		return true // the tail is terminal so successors always exist
	}
	return rng.Hash64(g.cfg.Seed^uint64(v)*0x9e37)%100 < uint64(g.cfg.TermPct)
}

// Successors returns v's successor positions (deduplicated, ascending ids).
func (g *Game) Successors(v int) []int32 { return g.AppendSuccessors(nil, v) }

// AppendSuccessors appends v's successors to buf and returns the extended
// slice, so sweeps over many positions reuse one buffer instead of
// allocating per position.
func (g *Game) AppendSuccessors(buf []int32, v int) []int32 {
	if g.Terminal(v) {
		return buf
	}
	span := g.cfg.Span
	if v+span >= g.cfg.N {
		span = g.cfg.N - 1 - v
	}
	start := len(buf)
	h := g.cfg.Seed ^ uint64(v)*0x517c_c1b7_2722_0a95
	for k := 0; k < g.cfg.Succ; k++ {
		s := int32(v + 1 + int(rng.SplitMix64(&h)%uint64(span)))
		dup := false
		for _, o := range buf[start:] {
			if o == s {
				dup = true
			}
		}
		if !dup {
			buf = append(buf, s)
		}
	}
	return buf
}

// Sequential computes every position's value by memoized backward induction.
func Sequential(cfg Config) []Value {
	g := NewGame(cfg)
	vals := make([]Value, cfg.N)
	// Positions only point forward, so a reverse sweep is a topological
	// order.
	scratch := make([]int32, 0, cfg.Succ)
	for v := cfg.N - 1; v >= 0; v-- {
		succ := g.AppendSuccessors(scratch[:0], v)
		if len(succ) == 0 {
			vals[v] = Loss
			continue
		}
		val := Loss // if all successors are wins for the opponent
		for _, s := range succ {
			if vals[s] == Loss {
				val = Win
				break
			}
		}
		vals[v] = val
	}
	return vals
}

// seqCache memoizes Sequential per Config: verifiers share one read-only
// reference instead of re-running the backward induction on every run.
var seqCache sync.Map // Config -> []Value

func sequentialCached(cfg Config) []Value {
	if v, ok := seqCache.Load(cfg); ok {
		return v.([]Value)
	}
	v, _ := seqCache.LoadOrStore(cfg, Sequential(cfg))
	return v.([]Value)
}

// update is one retrograde notification: position target has a successor
// whose value is val.
type update struct {
	target int32
	val    Value
}

const updateBytes = 6

// batch is a combined group of updates in flight to one node. Batches are
// pooled (the receiver recycles them after processing) and travel as a
// pointer, so the steady-state send path allocates nothing.
type batch struct {
	items []update
}

// batchPool is one cluster's free list of batch records. A batch retires
// into the pool of the cluster that consumed it, which may differ from
// where it was filled, but each pool is only touched from its own cluster's
// LP thread, keeping the send path shard-safe.
type batchPool struct{ free []*batch }

func (pl *batchPool) get() *batch {
	if m := len(pl.free); m > 0 {
		b := pl.free[m-1]
		pl.free = pl.free[:m-1]
		return b
	}
	return new(batch)
}

func (pl *batchPool) put(b *batch) {
	b.items = b.items[:0]
	pl.free = append(pl.free, b)
}

// Build sets up the parallel RA run; optimized selects cluster-level message
// combining on top of the sender-side batching both variants use.
func Build(sys *core.System, cfg Config, optimized bool) func() error {
	g := NewGame(cfg)
	p := sys.Topo.Compute()
	topo := sys.Topo
	owner := func(v int32) int { return int(v) % p }

	vals := make([]Value, cfg.N)
	undet := make([]int32, cfg.N) // undetermined-successor counts
	preds := make([][]int32, cfg.N)
	// Setup (the paper measures the core algorithm, excluding startup):
	// reverse edges for positions we own; initial counters. Two passes over
	// a reused successor buffer size the predecessor lists exactly, so the
	// whole reverse graph lives in one backing array instead of N growing
	// slices — setup used to dominate the run's allocation count.
	scratch := make([]int32, 0, cfg.Succ)
	predCnt := make([]int32, cfg.N)
	total := 0
	for v := 0; v < cfg.N; v++ {
		scratch = g.AppendSuccessors(scratch[:0], v)
		undet[v] = int32(len(scratch))
		total += len(scratch)
		for _, s := range scratch {
			predCnt[s]++
		}
	}
	backing := make([]int32, total)
	off := 0
	for v := range preds {
		n := int(predCnt[v])
		preds[v] = backing[off : off : off+n]
		off += n
	}
	for v := 0; v < cfg.N; v++ {
		scratch = g.AppendSuccessors(scratch[:0], v)
		for _, s := range scratch {
			preds[s] = append(preds[s], int32(v))
		}
	}

	var combiner *core.Combiner
	if optimized {
		combiner = core.NewCombiner(sys, "ra", 8192, cfg.FlushEach)
	}

	// One interned tag per destination rank, shared by all workers, and
	// per-cluster batch free lists (every cluster shares one instance on
	// the sequential engine).
	tags := make([]orca.TagID, p)
	for r := 0; r < p; r++ {
		tags[r] = sys.RTS.InternTag(orca.Tag{Op: "ra", A: r})
	}
	pools := make([]*batchPool, topo.Clusters)
	if sys.Sharded() {
		for c := range pools {
			pools[c] = &batchPool{}
		}
	} else {
		one := &batchPool{}
		for c := range pools {
			pools[c] = one
		}
	}

	// determined[r] counts positions worker r has determined; each worker
	// only ever determines its own positions, so the slot stays on r's LP
	// and the verifier sums the array after the run. Workers terminate
	// locally: once all own positions are determined no incoming update
	// can generate work here (process drops determined targets), so after
	// a final flush the worker simply exits — no global counter needed.
	determined := make([]int, p)

	sys.SpawnWorkers("ra", func(w *core.Worker) {
		r := w.Rank()
		bp := pools[w.Cluster()]

		// Sender-side per-destination batches (node-level combining).
		batches := make([]*batch, p)
		flush := func(dst int) {
			b := batches[dst]
			if b == nil || len(b.items) == 0 {
				return
			}
			batches[dst] = nil
			w.Compute(cfg.SendCost)
			size := updateBytes * len(b.items)
			to := cluster.NodeID(dst)
			if optimized && !topo.SameCluster(w.Node, to) {
				combiner.SendID(w, to, tags[dst], size, b)
				return
			}
			w.SendID(to, tags[dst], size, b)
		}
		flushAll := func() {
			for d := 0; d < p; d++ {
				flush(d)
			}
		}

		// Newly determined own positions whose predecessors still need to
		// be notified (explicit stack: propagation chains can be long).
		type detTask struct {
			v   int32
			val Value
		}
		var stack []detTask

		setValue := func(v int32, val Value) {
			vals[v] = val
			determined[r]++
			stack = append(stack, detTask{v, val})
		}
		// process handles one notification "u has a successor of value
		// sval" for a position we own.
		process := func(u int32, sval Value) {
			if vals[u] != Undetermined {
				return
			}
			if sval == Loss {
				setValue(u, Win) // we can move to a lost-for-them position
				return
			}
			undet[u]--
			if undet[u] == 0 {
				setValue(u, Loss) // every move leads to a winning opponent
			}
		}
		// drain empties the propagation stack, notifying predecessors:
		// local ones are processed immediately, remote ones are batched.
		drain := func() {
			for len(stack) > 0 {
				t := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, u := range preds[t.v] {
					d := owner(u)
					if d == r {
						w.Compute(cfg.ApplyCost)
						process(u, t.val)
						continue
					}
					b := batches[d]
					if b == nil {
						b = bp.get()
						batches[d] = b
					}
					b.items = append(b.items, update{target: u, val: t.val})
					if len(b.items) >= cfg.NodeBatch {
						flush(d)
					}
				}
			}
		}

		// Seed the computation with our own terminal positions.
		own := 0
		for v := r; v < cfg.N; v += p {
			own++
			if g.Terminal(v) {
				w.Compute(cfg.ApplyCost)
				setValue(int32(v), Loss)
			}
		}
		drain()
		flushAll()

		for determined[r] < own {
			got, ok := w.TryRecvID(tags[r])
			if !ok {
				flushAll()
				w.P.Sleep(200 * time.Microsecond)
				continue
			}
			b := got.(*batch)
			for _, up := range b.items {
				w.Compute(cfg.ApplyCost)
				process(up.target, up.val)
			}
			bp.put(b)
			drain()
			// Partial batches are flushed only when we run out of input
			// (the idle branch above), so batches fill to NodeBatch during
			// busy periods — the point of the node-level combining.
		}
		// The last own determination may have left batched notifications
		// for other nodes' predecessors; ship them before exiting.
		flushAll()
	})

	return func() error {
		want := sequentialCached(cfg)
		det := 0
		for _, d := range determined {
			det += d
		}
		if det != cfg.N {
			return fmt.Errorf("ra: only %d of %d positions determined", det, cfg.N)
		}
		for v := range want {
			if vals[v] != want[v] {
				return fmt.Errorf("ra: position %d = %v, want %v", v, vals[v], want[v])
			}
		}
		return nil
	}
}
