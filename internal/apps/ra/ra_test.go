package ra

import (
	"testing"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/core"
)

func testCfg() Config {
	return Config{N: 4000, Succ: 3, Span: 200, TermPct: 5, Seed: 21,
		ApplyCost: time.Microsecond, SendCost: 10 * time.Microsecond,
		NodeBatch: 8, FlushEach: 300 * time.Microsecond}
}

func run(t *testing.T, clusters, npc int, optimized bool, cfg Config) core.Metrics {
	t.Helper()
	sys := core.NewSystem(core.Config{
		Topology: cluster.DAS(clusters, npc),
		Params:   cluster.DASParams(),
	})
	verify := Build(sys, cfg, optimized)
	m, err := sys.Run()
	if err != nil {
		t.Fatalf("run %dx%d opt=%v: %v", clusters, npc, optimized, err)
	}
	if err := verify(); err != nil {
		t.Fatalf("verify %dx%d opt=%v: %v", clusters, npc, optimized, err)
	}
	return m
}

func TestGameIsDAG(t *testing.T) {
	g := NewGame(testCfg())
	for v := 0; v < testCfg().N; v++ {
		for _, s := range g.Successors(v) {
			if int(s) <= v || int(s) >= testCfg().N {
				t.Fatalf("successor %d of %d out of range", s, v)
			}
		}
	}
}

func TestSequentialValuesConsistent(t *testing.T) {
	cfg := testCfg()
	g := NewGame(cfg)
	vals := Sequential(cfg)
	wins, losses := 0, 0
	for v := 0; v < cfg.N; v++ {
		succ := g.Successors(v)
		switch vals[v] {
		case Loss:
			losses++
			for _, s := range succ {
				if vals[s] != Win {
					t.Fatalf("loss position %d has non-win successor %d", v, s)
				}
			}
		case Win:
			wins++
			found := false
			for _, s := range succ {
				if vals[s] == Loss {
					found = true
				}
			}
			if !found {
				t.Fatalf("win position %d has no loss successor", v)
			}
		default:
			t.Fatalf("position %d undetermined", v)
		}
	}
	if wins == 0 || losses == 0 {
		t.Fatalf("degenerate game: %d wins, %d losses", wins, losses)
	}
}

func TestCorrectAcrossShapes(t *testing.T) {
	cfg := testCfg()
	for _, sh := range [][2]int{{1, 1}, {1, 4}, {2, 2}, {4, 2}} {
		for _, opt := range []bool{false, true} {
			run(t, sh[0], sh[1], opt, cfg)
		}
	}
}

func TestCombiningReducesInterclusterMessages(t *testing.T) {
	cfg := testCfg()
	orig := run(t, 4, 3, false, cfg)
	opt := run(t, 4, 3, true, cfg)
	if float64(opt.Net.TotalInter().Msgs) > 0.6*float64(orig.Net.TotalInter().Msgs) {
		t.Fatalf("intercluster msgs: opt %d vs orig %d", opt.Net.TotalInter().Msgs, orig.Net.TotalInter().Msgs)
	}
}

func TestMultiClusterMuchSlowerThanSingle(t *testing.T) {
	// The paper's headline RA result: heavy irregular traffic makes the
	// wide-area runs slower than a single cluster of the same size.
	cfg := testCfg()
	single := run(t, 1, 8, false, cfg)
	multi := run(t, 4, 2, false, cfg)
	if multi.Elapsed <= single.Elapsed {
		t.Fatalf("4x2 (%v) not slower than 1x8 (%v)", multi.Elapsed, single.Elapsed)
	}
}
