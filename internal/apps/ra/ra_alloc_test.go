//go:build !race

package ra

import (
	"testing"

	"albatross/internal/cluster"
	"albatross/internal/core"
)

// TestAllocsPerRunRegression pins the allocation count of one full RA run
// (system assembly + setup + the whole retrograde sweep). The reverse graph
// is built in one backing array and batches/updates travel through pools,
// so the count is dominated by fixed per-run structures and scales with
// processors, not with positions or messages. The budget has ~50% headroom
// over the measured count; reintroducing per-position or per-message
// allocation blows through it immediately.
//
// Excluded under the race detector: instrumentation inflates allocation
// counts and the budget is meaningless there.
func TestAllocsPerRunRegression(t *testing.T) {
	cfg := testCfg()
	sequentialCached(cfg) // warm the shared memoized reference
	for _, opt := range []bool{false, true} {
		got := testing.AllocsPerRun(3, func() {
			sys := core.NewSystem(core.Config{
				Topology: cluster.DAS(4, 2),
				Params:   cluster.DASParams(),
			})
			verify := Build(sys, cfg, opt)
			if _, err := sys.Run(); err != nil {
				t.Fatalf("run opt=%v: %v", opt, err)
			}
			if err := verify(); err != nil {
				t.Fatalf("verify opt=%v: %v", opt, err)
			}
		})
		budget := 8_000.0 // measured ~2.7k
		if opt {
			budget = 30_000 // measured ~16.5k (combiner flush timers dominate)
		}
		if got > budget {
			t.Errorf("opt=%v: %.0f allocs/run, budget %.0f", opt, got, budget)
		}
		t.Logf("opt=%v: %.0f allocs/run", opt, got)
	}
}
