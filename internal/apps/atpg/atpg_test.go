package atpg

import (
	"testing"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/core"
)

func testCfg() Config {
	return Config{Inputs: 12, Gates: 80, Tries: 10, Seed: 7, GateCost: 100 * time.Nanosecond}
}

func run(t *testing.T, clusters, npc int, optimized bool, cfg Config) core.Metrics {
	t.Helper()
	sys := core.NewSystem(core.Config{
		Topology: cluster.DAS(clusters, npc),
		Params:   cluster.DASParams(),
	})
	verify := Build(sys, cfg, optimized)
	m, err := sys.Run()
	if err != nil {
		t.Fatalf("run %dx%d opt=%v: %v", clusters, npc, optimized, err)
	}
	if err := verify(); err != nil {
		t.Fatalf("verify %dx%d opt=%v: %v", clusters, npc, optimized, err)
	}
	return m
}

func TestCircuitDeterministic(t *testing.T) {
	cfg := testCfg()
	a, b := NewCircuit(cfg), NewCircuit(cfg)
	for pat := uint64(0); pat < 64; pat += 7 {
		if a.eval(pat, -1, 0) != b.eval(pat, -1, 0) {
			t.Fatal("circuit generation not deterministic")
		}
	}
}

func TestFaultDetectionMeansOutputsDiffer(t *testing.T) {
	cfg := testCfg()
	c := NewCircuit(cfg)
	found := 0
	for _, f := range c.Faults() {
		pat, ok, _ := c.TestFault(f)
		if !ok {
			continue
		}
		found++
		if c.eval(pat, -1, 0) == c.eval(pat, f.Gate, f.StuckAt) {
			t.Fatalf("pattern %x does not actually detect fault %+v", pat, f)
		}
	}
	if found == 0 {
		t.Fatal("no fault detected at all; circuit degenerate")
	}
}

func TestSequentialCoversSomeNotAll(t *testing.T) {
	res := Sequential(testCfg())
	total := 2 * testCfg().Gates
	if res.Covered == 0 || res.Covered >= total {
		t.Fatalf("coverage %d of %d implausible", res.Covered, total)
	}
}

func TestCorrectAcrossShapes(t *testing.T) {
	cfg := testCfg()
	for _, sh := range [][2]int{{1, 1}, {1, 4}, {2, 2}, {4, 2}} {
		for _, opt := range []bool{false, true} {
			run(t, sh[0], sh[1], opt, cfg)
		}
	}
}

func TestOptimizedOneRPCPerCluster(t *testing.T) {
	cfg := testCfg()
	opt := run(t, 4, 3, true, cfg)
	// Intercluster RPCs: the three non-owner clusters ship one total each.
	if got := opt.Net.InterRPC().Msgs; got != 3 {
		t.Fatalf("intercluster RPCs %d, want 3 (one per remote cluster)", got)
	}
	orig := run(t, 4, 3, false, cfg)
	if orig.Net.InterRPC().Msgs <= 3 {
		t.Fatalf("original made only %d intercluster RPCs; test circuit too small", orig.Net.InterRPC().Msgs)
	}
}

func TestHighEfficiencyEvenUnoptimized(t *testing.T) {
	// The paper: ATPG barely degrades on multiple clusters at DAS speeds.
	cfg := Config{Inputs: 16, Gates: 200, Tries: 16, Seed: 7, GateCost: 800 * time.Nanosecond}
	t1 := run(t, 1, 1, false, cfg).Elapsed
	t4x2 := run(t, 4, 2, false, cfg).Elapsed
	eff := float64(t1) / float64(t4x2) / 8
	if eff < 0.5 {
		t.Fatalf("4x2 efficiency %.2f too low for a barely-communicating program", eff)
	}
}
