// Package atpg implements the Automatic Test Pattern Generation application
// of the paper (Section 4.4): computing a set of test patterns for a
// combinational circuit that together detect (most of) its single stuck-at
// faults. The gates' faults are statically partitioned over the processors,
// so the program computes almost independently; the only communication is
// the bookkeeping of how many test patterns were generated and how many
// faults they cover.
//
// Original program: every processor updates the shared statistics object
// with an RPC each time it generates a new pattern.
//
// Optimized program (the paper's all-to-one cluster reduction): each
// processor accumulates its counts locally, the processors of one cluster
// combine their totals, and a single RPC per cluster delivers the sum —
// intercluster communication drops to one message per cluster.
package atpg

import (
	"fmt"
	"time"

	"albatross/internal/core"
	"albatross/internal/orca"
	"albatross/internal/rng"
)

// Config describes one ATPG problem.
type Config struct {
	Inputs   int           // primary inputs of the circuit
	Gates    int           // internal gates
	Tries    int           // random patterns tried per fault before giving up
	Seed     uint64        // circuit + pattern seed
	GateCost time.Duration // virtual CPU time per gate evaluation
}

// Default returns the scaled-down benchmark circuit.
func Default() Config {
	return Config{Inputs: 24, Gates: 600, Tries: 24, Seed: 7, GateCost: 250 * time.Nanosecond}
}

// gate kinds
const (
	gAnd = iota
	gOr
	gNand
	gNor
	gXor
	gNot
	numKinds
)

// gate reads one or two earlier signals. Signals 0..Inputs-1 are the primary
// inputs; signal Inputs+i is gate i's output.
type gate struct {
	kind byte
	a, b int32
}

// Circuit is a random combinational circuit.
type Circuit struct {
	cfg   Config
	gates []gate
}

// NewCircuit generates the deterministic random circuit for cfg.
func NewCircuit(cfg Config) *Circuit {
	r := rng.New(cfg.Seed)
	gs := make([]gate, cfg.Gates)
	for i := range gs {
		avail := cfg.Inputs + i
		gs[i] = gate{
			kind: byte(r.Intn(numKinds)),
			a:    int32(r.Intn(avail)),
			b:    int32(r.Intn(avail)),
		}
	}
	return &Circuit{cfg: cfg, gates: gs}
}

// Fault is a single stuck-at fault on a gate output.
type Fault struct {
	Gate    int
	StuckAt byte // 0 or 1
}

// Faults enumerates all 2*Gates faults.
func (c *Circuit) Faults() []Fault {
	fs := make([]Fault, 0, 2*len(c.gates))
	for g := range c.gates {
		fs = append(fs, Fault{Gate: g, StuckAt: 0}, Fault{Gate: g, StuckAt: 1})
	}
	return fs
}

// Outputs reports how many of the last gate signals are primary outputs.
func (c *Circuit) Outputs() int {
	o := len(c.gates) / 10
	if o < 8 {
		o = 8
	}
	if o > len(c.gates) {
		o = len(c.gates)
	}
	return o
}

// Scratch holds one evaluator's reusable state: the signal buffer filled by
// every simulation and the per-fault pattern generator. Reusing one Scratch
// across a worker's whole fault partition removes the dominant allocation of
// the run (one signal vector per gate-level simulation). A Scratch belongs
// to a single simulated process and must not be shared.
type Scratch struct {
	vals []byte
	r    *rng.Rand
}

// NewScratch returns scratch buffers sized for this circuit.
func (c *Circuit) NewScratch() *Scratch {
	return &Scratch{vals: make([]byte, c.cfg.Inputs+len(c.gates)), r: rng.New(0)}
}

// eval simulates the circuit on the input pattern; if faultGate >= 0, that
// gate's output is stuck at stuckAt. It returns a hash of the primary
// outputs (the last Outputs gate signals). The convenience form allocates;
// hot loops pass a reused Scratch to evalScratch.
func (c *Circuit) eval(pattern uint64, faultGate int, stuckAt byte) uint64 {
	return c.evalScratch(c.NewScratch(), pattern, faultGate, stuckAt)
}

// evalScratch is eval against caller-owned scratch buffers. Every signal
// slot is overwritten before it is read, so no clearing is needed between
// calls.
func (c *Circuit) evalScratch(s *Scratch, pattern uint64, faultGate int, stuckAt byte) uint64 {
	n := c.cfg.Inputs + len(c.gates)
	vals := s.vals
	for i := 0; i < c.cfg.Inputs; i++ {
		vals[i] = byte((pattern >> i) & 1)
	}
	for i, g := range c.gates {
		a, b := vals[g.a], vals[g.b]
		var v byte
		switch g.kind {
		case gAnd:
			v = a & b
		case gOr:
			v = a | b
		case gNand:
			v = 1 - a&b
		case gNor:
			v = 1 - a | b
		case gXor:
			v = a ^ b
		case gNot:
			v = 1 - a
		}
		if i == faultGate {
			v = stuckAt
		}
		vals[c.cfg.Inputs+i] = v
	}
	var sig uint64
	for i := n - c.Outputs(); i < n; i++ {
		sig = sig<<1 | uint64(vals[i])
		if i%53 == 0 {
			sig *= 0x9e3779b97f4a7c15 // fold long output vectors
		}
	}
	return sig
}

// TestFault searches for a pattern detecting f, trying cfg.Tries
// deterministic pseudo-random patterns. It returns the pattern, whether one
// was found, and the number of gate evaluations spent. The convenience form
// allocates fresh scratch; hot loops use TestFaultScratch.
func (c *Circuit) TestFault(f Fault) (pattern uint64, found bool, evals int64) {
	return c.TestFaultScratch(c.NewScratch(), f)
}

// TestFaultScratch is TestFault against caller-owned scratch buffers.
func (c *Circuit) TestFaultScratch(s *Scratch, f Fault) (pattern uint64, found bool, evals int64) {
	s.r.Seed(c.cfg.Seed ^ rng.Hash64(uint64(f.Gate)*2+uint64(f.StuckAt)))
	for t := 0; t < c.cfg.Tries; t++ {
		pat := s.r.Uint64()
		good := c.evalScratch(s, pat, -1, 0)
		bad := c.evalScratch(s, pat, f.Gate, f.StuckAt)
		evals += int64(2 * len(c.gates))
		if good != bad {
			return pat, true, evals
		}
	}
	return 0, false, evals
}

// Result is the statistic the program reports.
type Result struct {
	Patterns int // test patterns generated
	Covered  int // faults covered by them
}

// Sequential runs the reference computation.
func Sequential(cfg Config) Result {
	c := NewCircuit(cfg)
	s := c.NewScratch()
	var res Result
	for _, f := range c.Faults() {
		if _, ok, _ := c.TestFaultScratch(s, f); ok {
			res.Patterns++
			res.Covered++
		}
	}
	return res
}

// statsState is the shared statistics object.
type statsState struct{ patterns, covered int }

func addOp(dp, dc int) orca.Op {
	return orca.Op{Name: "AddStats", ArgBytes: 16, ResBytes: 4,
		Apply: func(s any) any {
			st := s.(*statsState)
			st.patterns += dp
			st.covered += dc
			return nil
		}}
}

// Build sets up the parallel ATPG run. optimized selects local accumulation
// with per-cluster reduction instead of one RPC per generated pattern.
func Build(sys *core.System, cfg Config, optimized bool) func() error {
	c := NewCircuit(cfg)
	faults := c.Faults()
	p := sys.Topo.Compute()
	topo := sys.Topo

	stats := sys.RTS.NewObject("atpg-stats", 0, &statsState{})
	final := &statsState{}

	// clusterAgg collects each cluster's totals at the cluster's first node
	// before one RPC ships them to the statistics owner (optimized mode).
	type aggState struct {
		patterns, covered, seen int
	}
	aggs := make([]*aggState, topo.Clusters)
	for i := range aggs {
		aggs[i] = &aggState{}
	}
	aggObjs := make([]*orca.Object, topo.Clusters)
	if optimized {
		for cl := 0; cl < topo.Clusters; cl++ {
			aggObjs[cl] = sys.RTS.NewObject(fmt.Sprintf("atpg-agg-%d", cl), topo.Node(cl, 0), aggs[cl])
		}
	}

	sys.SpawnWorkers("atpg", func(w *core.Worker) {
		i := w.Rank()
		scratch := c.NewScratch()
		myPatterns, myCovered := 0, 0
		for fi := i; fi < len(faults); fi += p {
			_, ok, evals := c.TestFaultScratch(scratch, faults[fi])
			w.Compute(time.Duration(evals) * cfg.GateCost)
			if !ok {
				continue
			}
			myCovered++
			myPatterns++
			if !optimized {
				// One RPC to the shared object per generated pattern.
				w.Invoke(stats, addOp(1, 1))
			}
		}
		if optimized {
			// First reduce within the cluster, then one RPC per cluster.
			done := w.Invoke(aggObjs[w.Cluster()], orca.Op{
				Name: "ClusterAdd", ArgBytes: 16, ResBytes: 4,
				Apply: func(s any) any {
					st := s.(*aggState)
					st.patterns += myPatterns
					st.covered += myCovered
					st.seen++
					return st.seen == topo.Size(w.Cluster())
				}})
			if done.(bool) {
				// The last contributor of the cluster ships the total.
				ag := aggs[w.Cluster()]
				w.Invoke(stats, addOp(ag.patterns, ag.covered))
			}
		}
	})

	return func() error {
		want := Sequential(cfg)
		*final = *stats.State().(*statsState)
		if final.patterns != want.Patterns || final.covered != want.Covered {
			return fmt.Errorf("atpg: got %d/%d, want %d/%d",
				final.patterns, final.covered, want.Patterns, want.Covered)
		}
		return nil
	}
}
