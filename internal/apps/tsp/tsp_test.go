package tsp

import (
	"testing"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/core"
)

func testCfg() Config {
	return Config{NCities: 10, Seed: 5, JobDepth: 2, NodeCost: 2 * time.Microsecond}
}

func run(t *testing.T, clusters, npc int, optimized bool, cfg Config) core.Metrics {
	t.Helper()
	sys := core.NewSystem(core.Config{
		Topology: cluster.DAS(clusters, npc),
		Params:   cluster.DASParams(),
	})
	verify := Build(sys, cfg, optimized)
	m, err := sys.Run()
	if err != nil {
		t.Fatalf("run %dx%d opt=%v: %v", clusters, npc, optimized, err)
	}
	if err := verify(); err != nil {
		t.Fatalf("verify %dx%d opt=%v: %v", clusters, npc, optimized, err)
	}
	return m
}

func TestOptimalBruteForceSmall(t *testing.T) {
	// Cross-check Optimal against explicit enumeration on 8 cities.
	cfg := Config{NCities: 8, Seed: 9}
	d := Generate(cfg)
	best := inf
	perm := []int{1, 2, 3, 4, 5, 6, 7}
	var rec func(k int)
	rec = func(k int) {
		if k == len(perm) {
			l := d[0][perm[0]]
			for i := 1; i < len(perm); i++ {
				l += d[perm[i-1]][perm[i]]
			}
			l += d[perm[len(perm)-1]][0]
			if l < best {
				best = l
			}
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	if got := Optimal(cfg); got != best {
		t.Fatalf("Optimal %d, want %d", got, best)
	}
}

func TestSequentialFindsOptimal(t *testing.T) {
	cfg := testCfg()
	r := Sequential(cfg)
	if r.Best != Optimal(cfg) {
		t.Fatalf("sequential best %d, optimal %d", r.Best, Optimal(cfg))
	}
	if r.Expansions <= 0 {
		t.Fatal("no expansions counted")
	}
}

func TestCorrectAcrossShapes(t *testing.T) {
	cfg := testCfg()
	for _, sh := range [][2]int{{1, 1}, {1, 4}, {2, 2}, {4, 2}} {
		for _, opt := range []bool{false, true} {
			run(t, sh[0], sh[1], opt, cfg)
		}
	}
}

func TestOptimizedCutsInterclusterRPCs(t *testing.T) {
	cfg := Config{NCities: 11, Seed: 5, JobDepth: 3, NodeCost: time.Microsecond}
	orig := run(t, 4, 3, false, cfg)
	opt := run(t, 4, 3, true, cfg)
	if opt.Net.InterRPC().Msgs*5 > orig.Net.InterRPC().Msgs {
		t.Fatalf("optimized inter RPCs %d vs original %d: no reduction",
			opt.Net.InterRPC().Msgs, orig.Net.InterRPC().Msgs)
	}
	if float64(opt.Elapsed)*1.1 > float64(orig.Elapsed) {
		t.Fatalf("optimized (%v) not faster than original (%v)", opt.Elapsed, orig.Elapsed)
	}
}

func TestSpeedupSingleCluster(t *testing.T) {
	cfg := Config{NCities: 11, Seed: 5, JobDepth: 3, NodeCost: 2 * time.Microsecond}
	t1 := run(t, 1, 1, false, cfg).Elapsed
	t8 := run(t, 1, 8, false, cfg).Elapsed
	if sp := float64(t1) / float64(t8); sp < 4 {
		t.Fatalf("8-proc speedup %.2f too low", sp)
	}
}

func TestDeterministicExpansions(t *testing.T) {
	cfg := testCfg()
	a := run(t, 2, 2, false, cfg)
	b := run(t, 2, 2, false, cfg)
	if a.Elapsed != b.Elapsed {
		t.Fatalf("nondeterministic run times %v vs %v", a.Elapsed, b.Elapsed)
	}
}
