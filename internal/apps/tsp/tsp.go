// Package tsp implements the Traveling Salesman application of the paper
// (Section 4.2): branch-and-bound search with master/worker parallelism and
// a dynamic load-balancing scheme built on a job queue in a shared object.
//
// As in the paper's experiments, the global pruning bound is fixed in
// advance (to the optimal tour length) to keep the search deterministic:
// the amount of work is then independent of execution order, which makes
// "total nodes expanded" an exact cross-variant invariant.
//
// Original program: one central FIFO job queue on the master's machine, so
// with four clusters about 75% of the job fetches cross the WAN. Optimized
// program: one queue per cluster with the jobs divided statically — each
// cluster's queue owner generates its own share locally, so almost no
// intercluster traffic remains.
package tsp

import (
	"fmt"
	"time"

	"albatross/internal/core"
	"albatross/internal/orca"
	"albatross/internal/rng"

	"albatross/internal/cluster"
)

// Config describes one TSP instance.
type Config struct {
	NCities  int           // cities; city 0 is the fixed start
	Seed     uint64        // workload seed
	JobDepth int           // master generates jobs of this prefix length
	NodeCost time.Duration // virtual CPU time per search-tree node expansion
}

// Default returns the scaled-down stand-in for the paper's 17-city run.
func Default() Config {
	return Config{NCities: 14, Seed: 17, JobDepth: 5, NodeCost: time.Microsecond}
}

// Generate builds a symmetric random distance matrix with weights 1..100.
func Generate(cfg Config) [][]int32 {
	r := rng.New(cfg.Seed)
	n := cfg.NCities
	d := make([][]int32, n)
	for i := range d {
		d[i] = make([]int32, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			w := int32(1 + r.Intn(100))
			d[i][j], d[j][i] = w, w
		}
	}
	return d
}

// Result summarizes one search.
type Result struct {
	Best       int32 // shortest complete tour length found
	Expansions int64 // search-tree nodes generated under the fixed bound
}

// dfs explores all completions of the partial path whose last city is last,
// with used the bitmask of visited cities and plen the partial length.
// Nodes with plen exceeding bound are pruned. It returns the number of
// nodes generated and the best complete-tour length found (or Inf).
func dfs(d [][]int32, n int, last int, used uint32, plen int32, depth int, bound int32) (int64, int32) {
	if depth == n {
		total := plen + d[last][0]
		if total <= bound {
			return 0, total
		}
		return 0, inf
	}
	var exp int64
	best := inf
	for next := 1; next < n; next++ {
		if used&(1<<next) != 0 {
			continue
		}
		exp++
		nl := plen + d[last][next]
		if nl > bound {
			continue
		}
		e, b := dfs(d, n, next, used|1<<next, nl, depth+1, bound)
		exp += e
		if b < best {
			best = b
		}
	}
	return exp, best
}

const inf int32 = 1 << 30

// Optimal computes the optimal tour length by unbounded branch-and-bound.
func Optimal(cfg Config) int32 {
	d := Generate(cfg)
	best := inf
	var solve func(last int, used uint32, plen int32, depth int)
	solve = func(last int, used uint32, plen int32, depth int) {
		if plen >= best {
			return
		}
		if depth == cfg.NCities {
			if t := plen + d[last][0]; t < best {
				best = t
			}
			return
		}
		for next := 1; next < cfg.NCities; next++ {
			if used&(1<<next) == 0 {
				solve(next, used|1<<next, plen+d[last][next], depth+1)
			}
		}
	}
	solve(0, 1, 0, 1)
	return best
}

// Sequential runs the fixed-bound search on one processor and returns the
// reference result.
func Sequential(cfg Config) Result {
	d := Generate(cfg)
	bound := Optimal(cfg)
	exp, best := dfs(d, cfg.NCities, 0, 1, 0, 1, bound)
	return Result{Best: best, Expansions: exp}
}

// job is one unit of work: a path prefix.
type job struct {
	path []int8
	used uint32
	plen int32
}

func jobBytes(cfg Config) int { return cfg.JobDepth + 12 }

// genJobs enumerates the depth-JobDepth prefixes under the fixed bound,
// counting the master's own expansions. visit is called for each job in a
// deterministic order with its sequence number.
func genJobs(d [][]int32, cfg Config, bound int32, visit func(i int, j job)) int64 {
	var exp int64
	i := 0
	var gen func(path []int8, used uint32, plen int32)
	gen = func(path []int8, used uint32, plen int32) {
		if len(path) == cfg.JobDepth {
			visit(i, job{path: append([]int8(nil), path...), used: used, plen: plen})
			i++
			return
		}
		last := int(path[len(path)-1])
		for next := 1; next < cfg.NCities; next++ {
			if used&(1<<next) != 0 {
				continue
			}
			exp++
			nl := plen + d[last][int(next)]
			if nl > bound {
				continue
			}
			gen(append(path, int8(next)), used|1<<next, nl)
		}
	}
	gen([]int8{0}, 1, 0)
	return exp
}

// CountJobs reports how many jobs the masters generate at cfg.JobDepth
// under the fixed bound.
func CountJobs(cfg Config) int {
	d := Generate(cfg)
	bound := Optimal(cfg)
	n := 0
	genJobs(d, cfg, bound, func(i int, j job) { n++ })
	return n
}

// minState is each node's replica of the "current best tour" object.
type minState struct{ best int32 }

// Build sets up the parallel TSP run. optimized selects the per-cluster
// static queues instead of the central queue. The returned verifier checks
// the tour length and the exact expansion-count invariant.
func Build(sys *core.System, cfg Config, optimized bool) func() error {
	d := Generate(cfg)
	bound := Optimal(cfg)
	topo := sys.Topo

	minObj := sys.RTS.NewReplicated("global-min", func(cluster.NodeID) any {
		return &minState{best: inf}
	})
	updateMin := func(v int32) orca.Op {
		return orca.Op{Name: "UpdateMin", ArgBytes: 8, ResBytes: 4,
			Apply: func(s any) any {
				st := s.(*minState)
				if v < st.best {
					st.best = v
				}
				return nil
			}}
	}

	workerExp := make([]int64, topo.Compute())
	workerBest := make([]int32, topo.Compute())
	var masterExp int64

	// runJob executes one job on worker w, charging its search time.
	runJob := func(w *core.Worker, j job) {
		exp, best := dfs(d, cfg.NCities, int(j.path[len(j.path)-1]), j.used, j.plen, len(j.path), bound)
		workerExp[w.Rank()] += exp
		w.Compute(time.Duration(exp) * cfg.NodeCost)
		if best < workerBest[w.Rank()] {
			workerBest[w.Rank()] = best
		}
		// Publish strictly better tours to the replicated minimum, like
		// the paper's program (reads of the minimum are local and free).
		if cur := minObj.Replica(w.Node).(*minState).best; best < cur {
			w.Invoke(minObj, updateMin(best))
		}
	}

	workerLoop := func(w *core.Worker, pop func() (any, bool, bool)) {
		workerBest[w.Rank()] = inf
		for {
			jv, ok, closed := pop()
			if ok {
				runJob(w, jv.(job))
				continue
			}
			if closed {
				return
			}
			w.P.Sleep(200 * time.Microsecond)
		}
	}

	if !optimized {
		q := core.NewCentralQueue(sys, 0)
		sys.SpawnAt(0, "tsp-master", func(w *core.Worker) {
			masterExp = genJobs(d, cfg, bound, func(i int, j job) {
				q.Push(w, jobBytes(cfg), j)
			})
			w.Compute(time.Duration(masterExp) * cfg.NodeCost)
			q.Close(w)
		})
		sys.SpawnWorkers("tsp", func(w *core.Worker) {
			workerLoop(w, func() (any, bool, bool) { return q.Pop(w, jobBytes(cfg)) })
		})
	} else {
		q := core.NewClusterQueues(sys)
		// Static division: each cluster's queue owner enumerates the same
		// deterministic job list and keeps every C'th job, so no job ever
		// crosses the WAN during distribution.
		for c := 0; c < topo.Clusters; c++ {
			c := c
			sys.SpawnAt(topo.Node(c, 0), fmt.Sprintf("tsp-master-%d", c), func(w *core.Worker) {
				exp := genJobs(d, cfg, bound, func(i int, j job) {
					if i%topo.Clusters == c {
						q.PushTo(w, c, jobBytes(cfg), j)
					}
				})
				w.Compute(time.Duration(exp) * cfg.NodeCost)
				if c == 0 {
					masterExp = exp
				}
				q.Close(w, c) // each master closes only its own queue
			})
		}
		sys.SpawnWorkers("tsp", func(w *core.Worker) {
			workerLoop(w, func() (any, bool, bool) { return q.Pop(w, jobBytes(cfg)) })
		})
	}

	return func() error {
		want := Sequential(cfg)
		var exp int64
		best := inf
		for r := range workerExp {
			exp += workerExp[r]
			if workerBest[r] < best {
				best = workerBest[r]
			}
		}
		exp += masterExp
		if best != want.Best {
			return fmt.Errorf("tsp: best %d, want %d", best, want.Best)
		}
		if exp != want.Expansions {
			return fmt.Errorf("tsp: expansions %d, want %d", exp, want.Expansions)
		}
		for i := 0; i < topo.Compute(); i++ {
			if got := minObj.Replica(cluster.NodeID(i)).(*minState).best; got != want.Best {
				return fmt.Errorf("tsp: replica %d min %d, want %d", i, got, want.Best)
			}
		}
		return nil
	}
}
