package asp

import (
	"testing"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/core"
)

func testCfg() Config {
	return Config{N: 48, Seed: 7, OpCost: 500 * time.Nanosecond}
}

func run(t *testing.T, clusters, npc int, optimized bool, cfg Config) core.Metrics {
	t.Helper()
	sys := core.NewSystem(core.Config{
		Topology:  cluster.DAS(clusters, npc),
		Params:    cluster.DASParams(),
		Sequencer: Sequencer(optimized),
	})
	verify := Build(sys, cfg)
	m, err := sys.Run()
	if err != nil {
		t.Fatalf("run %dx%d opt=%v: %v", clusters, npc, optimized, err)
	}
	if err := verify(); err != nil {
		t.Fatalf("verify %dx%d opt=%v: %v", clusters, npc, optimized, err)
	}
	return m
}

func TestCorrectAcrossShapes(t *testing.T) {
	cfg := testCfg()
	for _, sh := range [][2]int{{1, 1}, {1, 4}, {2, 2}, {2, 3}, {4, 2}} {
		for _, opt := range []bool{false, true} {
			run(t, sh[0], sh[1], opt, cfg)
		}
	}
}

func TestRaggedRowDistribution(t *testing.T) {
	// N=50 over 6 procs exercises uneven blocks.
	cfg := Config{N: 50, Seed: 3, OpCost: 200 * time.Nanosecond}
	run(t, 2, 3, false, cfg)
}

func TestRowRangeCoversAllRows(t *testing.T) {
	for _, n := range []int{1, 7, 50, 256} {
		for _, p := range []int{1, 3, 8, 60} {
			covered := 0
			prevHi := 0
			for r := 0; r < p; r++ {
				lo, hi := rowRange(n, p, r)
				if lo != prevHi {
					t.Fatalf("gap at rank %d (n=%d p=%d)", r, n, p)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != n {
				t.Fatalf("covered %d of %d rows (p=%d)", covered, n, p)
			}
		}
	}
}

func TestSpeedupSingleCluster(t *testing.T) {
	cfg := Config{N: 64, Seed: 7, OpCost: 2 * time.Microsecond}
	t1 := run(t, 1, 1, false, cfg).Elapsed
	t8 := run(t, 1, 8, false, cfg).Elapsed
	sp := float64(t1) / float64(t8)
	if sp < 4 {
		t.Fatalf("8-proc speedup %.2f too low", sp)
	}
}

func TestOptimizedBeatsOriginalOnFourClusters(t *testing.T) {
	cfg := testCfg()
	orig := run(t, 4, 4, false, cfg).Elapsed
	opt := run(t, 4, 4, true, cfg).Elapsed
	if float64(opt)*1.5 > float64(orig) {
		t.Fatalf("optimized (%v) not clearly faster than original (%v)", opt, orig)
	}
}

func TestBroadcastCountIsN(t *testing.T) {
	cfg := testCfg()
	m := run(t, 2, 2, false, cfg)
	if m.Ops.Bcasts != int64(cfg.N) {
		t.Fatalf("bcasts %d, want %d", m.Ops.Bcasts, cfg.N)
	}
}

func TestSequentialSelfConsistent(t *testing.T) {
	cfg := testCfg()
	d := Sequential(cfg)
	n := cfg.N
	// Triangle inequality must hold at the fixpoint.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k += 7 {
				if d[i][k] < Inf && d[k][j] < Inf && d[i][j] > d[i][k]+d[k][j] {
					t.Fatalf("triangle violated at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}
