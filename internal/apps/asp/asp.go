// Package asp implements the All-pairs Shortest Paths application of the
// paper (Section 4.3): a parallel Floyd-Warshall with the distance matrix
// divided row-wise over the processors. At iteration k the owner of row k
// broadcasts it (a replicated-object write); all processors then relax their
// own rows against it.
//
// The original program runs on the system's default sequencer (the
// distributed rotating sequencer on a wide-area system), where every
// broadcast waits for the ordering token to come around over the WAN. The
// optimized program uses the migrating sequencer, which follows the
// broadcasting cluster and lets consecutive row broadcasts pipeline.
package asp

import (
	"fmt"
	"sync"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/orca"
	"albatross/internal/rng"
	"albatross/internal/sim"
)

// Inf is the "no edge" distance. It is large enough that Inf+weight never
// overflows int32.
const Inf int32 = 1 << 28

// Config describes one ASP problem instance.
type Config struct {
	N      int           // number of graph nodes
	Seed   uint64        // workload seed
	OpCost time.Duration // virtual CPU time per inner-loop relaxation
}

// Default returns the scaled-down stand-in for the paper's 3000-node input:
// the per-relaxation cost is raised so the compute-to-row-size ratio (the
// communication grain) matches the original problem on a 200 MHz CPU.
func Default() Config {
	return Config{N: 256, Seed: 42, OpCost: 2 * time.Microsecond}
}

// Generate builds the dense distance matrix of a pseudo-random directed
// graph: ~25% of the edges are present with weights 1..100.
func Generate(cfg Config) [][]int32 {
	r := rng.New(cfg.Seed)
	d := make([][]int32, cfg.N)
	for i := range d {
		d[i] = make([]int32, cfg.N)
		for j := range d[i] {
			switch {
			case i == j:
				d[i][j] = 0
			case r.Intn(4) == 0:
				d[i][j] = int32(1 + r.Intn(100))
			default:
				d[i][j] = Inf
			}
		}
	}
	return d
}

// Sequential computes all-pairs shortest paths with Floyd-Warshall.
func Sequential(cfg Config) [][]int32 {
	d := Generate(cfg)
	n := cfg.N
	for k := 0; k < n; k++ {
		rk := d[k]
		for i := 0; i < n; i++ {
			ri := d[i]
			dik := ri[k]
			if dik >= Inf {
				continue
			}
			for j := 0; j < n; j++ {
				if v := dik + rk[j]; v < ri[j] {
					ri[j] = v
				}
			}
		}
	}
	return d
}

// generateCached memoizes the pristine input matrix per Config; Build and
// Sequential copy from the shared master instead of re-running the
// generator. Masters are read-only once stored.
var genCache sync.Map // Config -> [][]int32

func generateCached(cfg Config) [][]int32 {
	if v, ok := genCache.Load(cfg); ok {
		return v.([][]int32)
	}
	v, _ := genCache.LoadOrStore(cfg, Generate(cfg))
	return v.([][]int32)
}

func copyMatrix(src [][]int32) [][]int32 {
	d := make([][]int32, len(src))
	for i, row := range src {
		d[i] = append([]int32(nil), row...)
	}
	return d
}

// seqCache memoizes the solved matrix per Config: verifiers share one
// read-only reference solution instead of re-running Floyd-Warshall (which
// dominated verification CPU) on every run.
var seqCache sync.Map // Config -> [][]int32

func sequentialCached(cfg Config) [][]int32 {
	if v, ok := seqCache.Load(cfg); ok {
		return v.([][]int32)
	}
	v, _ := seqCache.LoadOrStore(cfg, Sequential(cfg))
	return v.([][]int32)
}

// pivotRow carries one pivot-row buffer. Rows travel through replicas and
// futures as *pivotRow: the pointer boxes into an interface without
// allocating, where a bare []int32 would allocate a header per replica per
// row (the dominant allocation of the whole run before this record existed).
type pivotRow struct {
	row []int32
}

// pivotState is each node's replica of the pivot-row object: the rows
// received so far plus futures for processes waiting on a row, both dense
// by iteration. The wait future is pooled: each node has one worker, so at
// most one wait is outstanding per node at a time.
type pivotState struct {
	node    cluster.NodeID
	rows    []*pivotRow
	wait    []*sim.Future
	futPool []*sim.Future
}

// rowRange returns the row block [lo, hi) owned by rank r of p.
func rowRange(n, p, r int) (lo, hi int) {
	base, rem := n/p, n%p
	lo = r*base + min(r, rem)
	hi = lo + base
	if r < rem {
		hi++
	}
	return lo, hi
}

// Build sets up the parallel ASP run on the system and returns a verifier
// that compares the parallel result against the sequential reference.
// The original and optimized programs differ only in the system's sequencer
// (see Sequencer); the application code is identical.
func Build(sys *core.System, cfg Config) func() error {
	n := cfg.N
	p := sys.Topo.Compute()
	d := copyMatrix(generateCached(cfg))

	pivot := sys.RTS.NewReplicated("pivot-rows", func(node cluster.NodeID) any {
		return &pivotState{node: node, rows: make([]*pivotRow, n), wait: make([]*sim.Future, n)}
	})

	// Pivot-row buffers are refcounted and recycled: the owner snapshots
	// into a pooled buffer, every worker releases the row after its relax
	// sweep, and the last release returns the buffer for a later pivot. The
	// live row set stays proportional to the broadcast pipeline depth
	// instead of the full matrix. On the sharded engine the releases land on
	// several LPs inside one window, so neither the refcounts nor the shared
	// pool are touchable: rows are allocated fresh and left to the garbage
	// collector, exactly like the runtime's own broadcast records.
	sharded := sys.Sharded()
	var rowPool []*pivotRow
	rowRefs := make([]int32, n)
	getRow := func() *pivotRow {
		if m := len(rowPool); m > 0 {
			pr := rowPool[m-1]
			rowPool = rowPool[:m-1]
			return pr
		}
		return &pivotRow{row: make([]int32, n)}
	}
	releaseRow := func(st *pivotState, k int, pr *pivotRow) {
		st.rows[k] = nil
		if sharded {
			return
		}
		if rowRefs[k]--; rowRefs[k] == 0 {
			rowPool = append(rowPool, pr)
		}
	}

	setRow := func(k int, pr *pivotRow) orca.Op {
		return orca.Op{
			Name: "SetRow", ArgBytes: 4 * len(pr.row), ResBytes: 4,
			Apply: func(s any) any {
				st := s.(*pivotState)
				st.rows[k] = pr
				if f := st.wait[k]; f != nil {
					st.wait[k] = nil
					f.Set(pr)
				}
				return nil
			},
		}
	}

	waitRow := func(w *core.Worker, st *pivotState, k int) *pivotRow {
		if pr := st.rows[k]; pr != nil {
			return pr
		}
		var f *sim.Future
		if m := len(st.futPool); m > 0 {
			f = st.futPool[m-1]
			st.futPool = st.futPool[:m-1]
			f.Reset("asp-row")
		} else {
			// The future belongs to this node's worker: create it on the
			// node's own engine so it lives entirely on one LP when sharded.
			f = sim.NewFuture(sys.EngineFor(st.node), "asp-row")
		}
		st.wait[k] = f
		pr := f.Await(w.P).(*pivotRow)
		// Apply cleared st.wait[k] before Set, so the future is idle again.
		st.futPool = append(st.futPool, f)
		return pr
	}

	owner := func(k int) int {
		base, rem := n/p, n%p
		if k < (base+1)*rem {
			return k / (base + 1)
		}
		return rem + (k-(base+1)*rem)/base
	}

	sys.SpawnWorkers("asp", func(w *core.Worker) {
		lo, hi := rowRange(n, p, w.Rank())
		own := hi - lo
		st := pivot.Replica(w.Node).(*pivotState)
		for k := 0; k < n; k++ {
			var pr *pivotRow
			if owner(k) == w.Rank() {
				// Snapshot the row: it already reflects iterations < k.
				pr = getRow()
				copy(pr.row, d[k])
				rowRefs[k] = int32(p)
				w.Invoke(pivot, setRow(k, pr))
			} else {
				pr = waitRow(w, st, k)
			}
			rk := pr.row
			for i := lo; i < hi; i++ {
				ri := d[i]
				dik := ri[k]
				if dik >= Inf {
					continue
				}
				for j := 0; j < n; j++ {
					if v := dik + rk[j]; v < ri[j] {
						ri[j] = v
					}
				}
			}
			releaseRow(st, k, pr)
			w.Compute(time.Duration(own*n) * cfg.OpCost)
		}
	})

	return func() error {
		want := sequentialCached(cfg)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d[i][j] != want[i][j] {
					return fmt.Errorf("asp: d[%d][%d] = %d, want %d", i, j, d[i][j], want[i][j])
				}
			}
		}
		return nil
	}
}

// Sequencer returns the broadcast sequencer the variant runs on: the system
// default for the original program, the migrating sequencer for the
// optimized one (the paper's ASP optimization is entirely in the runtime).
func Sequencer(optimized bool) orca.Sequencer {
	if optimized {
		return orca.NewMigratingSequencer()
	}
	return nil
}
