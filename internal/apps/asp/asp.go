// Package asp implements the All-pairs Shortest Paths application of the
// paper (Section 4.3): a parallel Floyd-Warshall with the distance matrix
// divided row-wise over the processors. At iteration k the owner of row k
// broadcasts it (a replicated-object write); all processors then relax their
// own rows against it.
//
// The original program runs on the system's default sequencer (the
// distributed rotating sequencer on a wide-area system), where every
// broadcast waits for the ordering token to come around over the WAN. The
// optimized program uses the migrating sequencer, which follows the
// broadcasting cluster and lets consecutive row broadcasts pipeline.
package asp

import (
	"fmt"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/orca"
	"albatross/internal/rng"
	"albatross/internal/sim"
)

// Inf is the "no edge" distance. It is large enough that Inf+weight never
// overflows int32.
const Inf int32 = 1 << 28

// Config describes one ASP problem instance.
type Config struct {
	N      int           // number of graph nodes
	Seed   uint64        // workload seed
	OpCost time.Duration // virtual CPU time per inner-loop relaxation
}

// Default returns the scaled-down stand-in for the paper's 3000-node input:
// the per-relaxation cost is raised so the compute-to-row-size ratio (the
// communication grain) matches the original problem on a 200 MHz CPU.
func Default() Config {
	return Config{N: 256, Seed: 42, OpCost: 2 * time.Microsecond}
}

// Generate builds the dense distance matrix of a pseudo-random directed
// graph: ~25% of the edges are present with weights 1..100.
func Generate(cfg Config) [][]int32 {
	r := rng.New(cfg.Seed)
	d := make([][]int32, cfg.N)
	for i := range d {
		d[i] = make([]int32, cfg.N)
		for j := range d[i] {
			switch {
			case i == j:
				d[i][j] = 0
			case r.Intn(4) == 0:
				d[i][j] = int32(1 + r.Intn(100))
			default:
				d[i][j] = Inf
			}
		}
	}
	return d
}

// Sequential computes all-pairs shortest paths with Floyd-Warshall.
func Sequential(cfg Config) [][]int32 {
	d := Generate(cfg)
	n := cfg.N
	for k := 0; k < n; k++ {
		rk := d[k]
		for i := 0; i < n; i++ {
			ri := d[i]
			dik := ri[k]
			if dik >= Inf {
				continue
			}
			for j := 0; j < n; j++ {
				if v := dik + rk[j]; v < ri[j] {
					ri[j] = v
				}
			}
		}
	}
	return d
}

// pivotState is each node's replica of the pivot-row object: the rows
// received so far plus futures for processes waiting on a row.
type pivotState struct {
	node cluster.NodeID
	rows map[int][]int32
	wait map[int]*sim.Future
}

// rowRange returns the row block [lo, hi) owned by rank r of p.
func rowRange(n, p, r int) (lo, hi int) {
	base, rem := n/p, n%p
	lo = r*base + min(r, rem)
	hi = lo + base
	if r < rem {
		hi++
	}
	return lo, hi
}

// Build sets up the parallel ASP run on the system and returns a verifier
// that compares the parallel result against the sequential reference.
// The original and optimized programs differ only in the system's sequencer
// (see Sequencer); the application code is identical.
func Build(sys *core.System, cfg Config) func() error {
	n := cfg.N
	p := sys.Topo.Compute()
	d := Generate(cfg)
	e := sys.Engine

	pivot := sys.RTS.NewReplicated("pivot-rows", func(node cluster.NodeID) any {
		return &pivotState{node: node, rows: make(map[int][]int32), wait: make(map[int]*sim.Future)}
	})

	setRow := func(k int, row []int32) orca.Op {
		return orca.Op{
			Name: "SetRow", ArgBytes: 4 * len(row), ResBytes: 4,
			Apply: func(s any) any {
				st := s.(*pivotState)
				st.rows[k] = row
				if f, ok := st.wait[k]; ok {
					delete(st.wait, k)
					f.Set(row)
				}
				return nil
			},
		}
	}

	waitRow := func(w *core.Worker, k int) []int32 {
		st := pivot.Replica(w.Node).(*pivotState)
		if row, ok := st.rows[k]; ok {
			return row
		}
		f, ok := st.wait[k]
		if !ok {
			f = sim.NewFuture(e, fmt.Sprintf("asp-row-%d@%d", k, w.Node))
			st.wait[k] = f
		}
		return f.Await(w.P).([]int32)
	}

	owner := func(k int) int {
		base, rem := n/p, n%p
		if k < (base+1)*rem {
			return k / (base + 1)
		}
		return rem + (k-(base+1)*rem)/base
	}

	sys.SpawnWorkers("asp", func(w *core.Worker) {
		lo, hi := rowRange(n, p, w.Rank())
		own := hi - lo
		for k := 0; k < n; k++ {
			var rk []int32
			if owner(k) == w.Rank() {
				// Snapshot the row: it already reflects iterations < k.
				row := make([]int32, n)
				copy(row, d[k])
				w.Invoke(pivot, setRow(k, row))
				rk = row
			} else {
				rk = waitRow(w, k)
			}
			for i := lo; i < hi; i++ {
				ri := d[i]
				dik := ri[k]
				if dik >= Inf {
					continue
				}
				for j := 0; j < n; j++ {
					if v := dik + rk[j]; v < ri[j] {
						ri[j] = v
					}
				}
			}
			w.Compute(time.Duration(own*n) * cfg.OpCost)
		}
	})

	return func() error {
		want := Sequential(cfg)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d[i][j] != want[i][j] {
					return fmt.Errorf("asp: d[%d][%d] = %d, want %d", i, j, d[i][j], want[i][j])
				}
			}
		}
		return nil
	}
}

// Sequencer returns the broadcast sequencer the variant runs on: the system
// default for the original program, the migrating sequencer for the
// optimized one (the paper's ASP optimization is entirely in the runtime).
func Sequencer(optimized bool) orca.Sequencer {
	if optimized {
		return orca.NewMigratingSequencer()
	}
	return nil
}
