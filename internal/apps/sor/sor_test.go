package sor

import (
	"testing"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/core"
)

func testCfg() Config {
	return Config{NX: 32, NY: 24, Omega: 1.8, Eps: 1e-4, MaxIters: 2000,
		CellCost: 500 * time.Nanosecond, SkipMod: 3}
}

func run(t *testing.T, clusters, npc int, optimized bool, cfg Config) (core.Metrics, int) {
	t.Helper()
	sys := core.NewSystem(core.Config{
		Topology: cluster.DAS(clusters, npc),
		Params:   cluster.DASParams(),
	})
	verify, iters := BuildWithStats(sys, cfg, optimized)
	m, err := sys.Run()
	if err != nil {
		t.Fatalf("run %dx%d opt=%v: %v", clusters, npc, optimized, err)
	}
	if err := verify(); err != nil {
		t.Fatalf("verify %dx%d opt=%v: %v", clusters, npc, optimized, err)
	}
	return m, *iters
}

func TestSequentialConverges(t *testing.T) {
	cfg := testCfg()
	g, iters := Sequential(cfg)
	if iters >= cfg.MaxIters {
		t.Fatalf("no convergence in %d iterations", iters)
	}
	if res := Residual(cfg, g); res > cfg.Eps {
		t.Fatalf("converged residual %g > eps", res)
	}
	// Maximum principle: interior values between the boundary extremes.
	for i := 1; i <= cfg.NX; i++ {
		for j := 1; j <= cfg.NY; j++ {
			if g[i][j] < 0 || g[i][j] > 1 {
				t.Fatalf("g[%d][%d]=%g violates maximum principle", i, j, g[i][j])
			}
		}
	}
}

func TestOriginalBitwiseAcrossShapes(t *testing.T) {
	cfg := testCfg()
	for _, sh := range [][2]int{{1, 1}, {1, 4}, {2, 2}, {2, 4}, {4, 2}} {
		run(t, sh[0], sh[1], false, cfg) // verifier enforces bitwise equality
	}
}

func TestOptimizedConvergesAcrossShapes(t *testing.T) {
	cfg := testCfg()
	for _, sh := range [][2]int{{1, 4}, {2, 2}, {2, 4}, {4, 2}} {
		run(t, sh[0], sh[1], true, cfg)
	}
}

func TestChaoticUsesSlightlyMoreIterations(t *testing.T) {
	cfg := Config{NX: 64, NY: 48, Omega: 1.8, Eps: 1e-4, MaxIters: 5000,
		CellCost: 500 * time.Nanosecond, SkipMod: 3}
	_, origIters := run(t, 4, 4, false, cfg)
	_, chaoIters := run(t, 4, 4, true, cfg)
	if chaoIters < origIters {
		t.Fatalf("chaotic used fewer iterations (%d) than lock-step (%d)", chaoIters, origIters)
	}
	// The paper reports a 5-10% increase on its 3500-row grid; this test
	// grid is 55x smaller, so cluster boundaries cut much deeper — accept
	// anything short of a convergence collapse.
	if float64(chaoIters) > 3.0*float64(origIters) {
		t.Fatalf("chaotic used %d iterations vs %d: convergence destroyed", chaoIters, origIters)
	}
}

func TestOptimizedReducesInterclusterTraffic(t *testing.T) {
	cfg := testCfg()
	orig, origIters := run(t, 2, 4, false, cfg)
	opt, optIters := run(t, 2, 4, true, cfg)
	// Two of three intercluster exchanges are skipped, so the invariant is
	// per-iteration: the chaotic run may need more iterations overall.
	perOrig := float64(orig.Net.TotalInter().Msgs) / float64(origIters)
	perOpt := float64(opt.Net.TotalInter().Msgs) / float64(optIters)
	if perOpt > 0.5*perOrig {
		t.Fatalf("intercluster msgs/iter: opt %.2f vs orig %.2f", perOpt, perOrig)
	}
}

func TestOptimizedFasterOnMultipleClusters(t *testing.T) {
	cfg := Config{NX: 64, NY: 48, Omega: 1.8, Eps: 1e-4, MaxIters: 5000,
		CellCost: 2 * time.Microsecond, SkipMod: 3}
	orig, _ := run(t, 4, 4, false, cfg)
	opt, _ := run(t, 4, 4, true, cfg)
	if opt.Elapsed >= orig.Elapsed {
		t.Fatalf("optimized (%v) not faster than original (%v)", opt.Elapsed, orig.Elapsed)
	}
}

func TestRowRangePartition(t *testing.T) {
	for _, n := range []int{8, 31, 192} {
		for _, p := range []int{1, 3, 8} {
			prev := 0
			for r := 0; r < p; r++ {
				lo, hi := rowRange(n, p, r)
				if lo != prev+1 {
					t.Fatalf("rank %d lo=%d, want %d (n=%d p=%d)", r, lo, prev+1, n, p)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("partition covers %d of %d rows (p=%d)", prev, n, p)
			}
		}
	}
}

func TestTooManyProcsPanics(t *testing.T) {
	sys := core.NewDAS(1, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for p > NX")
		}
	}()
	Build(sys, Config{NX: 4, NY: 4, Omega: 1.5, Eps: 1e-3, MaxIters: 10, CellCost: time.Microsecond, SkipMod: 3}, false)
}

func TestSkipModSweepConverges(t *testing.T) {
	for _, skipMod := range []int{1, 2, 4, 8} {
		cfg := testCfg()
		cfg.SkipMod = skipMod
		cfg.MaxIters = 20000
		sys := core.NewSystem(core.Config{
			Topology: cluster.DAS(2, 4),
			Params:   cluster.DASParams(),
		})
		verify, _ := BuildWithStats(sys, cfg, true)
		if _, err := sys.Run(); err != nil {
			t.Fatalf("skipMod=%d: %v", skipMod, err)
		}
		if err := verify(); err != nil {
			t.Fatalf("skipMod=%d: %v", skipMod, err)
		}
	}
}

func TestIrregularClusters(t *testing.T) {
	cfg := testCfg()
	sys := core.NewSystem(core.Config{
		Topology: cluster.Irregular(3, 2, 3),
		Params:   cluster.DASParams(),
	})
	verify := Build(sys, cfg, true)
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if err := verify(); err != nil {
		t.Fatal(err)
	}
}
