// Package sor implements the Successive Overrelaxation application of the
// paper (Section 4.8): red/black SOR solving a discretized Laplace equation
// on a grid distributed row-wise, the paper's example of nearest-neighbour
// parallelization.
//
// Original program: after each colour phase every processor synchronously
// exchanges its boundary rows with both neighbours; on cluster boundaries
// this blocks on an intercluster round trip at the start of every iteration,
// stalling the whole synchronous algorithm.
//
// Optimized program ("chaotic relaxation" after Chazan & Miranker, plus
// split-phase overlap): two out of three intercluster row exchanges are
// skipped — those iterations reuse stale ghost rows — and the remaining
// communication is overlapped with the interior computation. Convergence
// slows a little (the paper reports 5–10% more iterations) but intercluster
// traffic drops by two thirds.
package sor

import (
	"fmt"
	"math"
	"sync"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/coll"
	"albatross/internal/core"
	"albatross/internal/orca"
)

// Config describes one SOR problem.
type Config struct {
	NX, NY   int           // interior grid size (rows x columns)
	Omega    float64       // overrelaxation factor
	Eps      float64       // termination precision (max update magnitude)
	MaxIters int           // safety cap
	CellCost time.Duration // virtual CPU time per cell update
	SkipMod  int           // chaotic: intercluster exchanges happen every SkipMod'th iteration
}

// Default returns the scaled-down stand-in for the paper's 3500x900 grid
// with termination precision 0.0002 (the paper's run took 52 iterations).
func Default() Config {
	return Config{NX: 384, NY: 96, Omega: 1.94, Eps: 2e-4, MaxIters: 4000,
		CellCost: 2 * time.Microsecond, SkipMod: 3}
}

// newGrid allocates the (NX+2)x(NY+2) grid with the fixed boundary: the top
// edge is held at 1, the other edges at 0.
func newGrid(cfg Config) [][]float64 {
	g := make([][]float64, cfg.NX+2)
	for i := range g {
		g[i] = make([]float64, cfg.NY+2)
	}
	for j := 0; j < cfg.NY+2; j++ {
		g[0][j] = 1
	}
	return g
}

// relaxRow applies one colour phase to row i given its up/down neighbour
// rows, returning the largest update magnitude.
func relaxRow(row, up, down []float64, i, color int, omega float64) float64 {
	maxD := 0.0
	ny := len(row) - 2
	for j := 1; j <= ny; j++ {
		if (i+j)%2 != color {
			continue
		}
		d := omega / 4 * (up[j] + down[j] + row[j-1] + row[j+1] - 4*row[j])
		row[j] += d
		if d < 0 {
			d = -d
		}
		if d > maxD {
			maxD = d
		}
	}
	return maxD
}

// Sequential solves the system on one processor and reports the field and
// the number of iterations used.
func Sequential(cfg Config) ([][]float64, int) {
	g := newGrid(cfg)
	for iter := 1; iter <= cfg.MaxIters; iter++ {
		maxD := 0.0
		for color := 0; color <= 1; color++ {
			for i := 1; i <= cfg.NX; i++ {
				if d := relaxRow(g[i], g[i-1], g[i+1], i, color, cfg.Omega); d > maxD {
					maxD = d
				}
			}
		}
		if maxD < cfg.Eps {
			return g, iter
		}
	}
	return g, cfg.MaxIters
}

// seqCache memoizes Sequential per Config: verifiers run it once per
// distinct problem instead of once per run (it dominated verification CPU),
// and readers only ever inspect the shared grid.
var seqCache sync.Map // Config -> *seqResult

type seqResult struct {
	g     [][]float64
	iters int
}

func sequentialCached(cfg Config) ([][]float64, int) {
	if v, ok := seqCache.Load(cfg); ok {
		res := v.(*seqResult)
		return res.g, res.iters
	}
	g, iters := Sequential(cfg)
	v, _ := seqCache.LoadOrStore(cfg, &seqResult{g: g, iters: iters})
	res := v.(*seqResult)
	return res.g, res.iters
}

// Residual recomputes the largest single-update magnitude of a field — the
// quantity the termination test bounds. A correctly converged result has
// Residual < Eps/ (1 - something); we check it directly against Eps scaled
// by omega stability (see verifier).
func Residual(cfg Config, g [][]float64) float64 {
	maxD := 0.0
	for i := 1; i <= cfg.NX; i++ {
		for j := 1; j <= cfg.NY; j++ {
			d := (g[i-1][j] + g[i+1][j] + g[i][j-1] + g[i][j+1] - 4*g[i][j]) / 4
			if d < 0 {
				d = -d
			}
			if d > maxD {
				maxD = d
			}
		}
	}
	return maxD
}

// maxCombine folds the per-worker maximum deltas of the convergence
// allreduce (hoisted so repeated iterations allocate no closure).
func maxCombine(acc, v any) any {
	m := v.(float64)
	if acc != nil && acc.(float64) > m {
		return acc
	}
	return m
}

func rowRange(n, p, r int) (lo, hi int) {
	base, rem := n/p, n%p
	lo = r*base + min(r, rem) + 1 // interior rows are 1-based
	hi = lo + base - 1
	if r < rem {
		hi++
	}
	return lo, hi
}

// Build sets up the parallel SOR run. optimized enables chaotic relaxation
// and split-phase overlap. The verifier checks convergence and agreement
// with the sequential solution (bitwise for the original variant).
func Build(sys *core.System, cfg Config, optimized bool) func() error {
	verify, _ := BuildWithStats(sys, cfg, optimized)
	return verify
}

// BuildWithStats additionally exposes the iteration count the run used
// (valid after System.Run), for the convergence-cost measurements of the
// chaotic-relaxation ablation.
func BuildWithStats(sys *core.System, cfg Config, optimized bool) (verify func() error, iterations *int) {
	p := sys.Topo.Compute()
	if p > cfg.NX {
		panic(fmt.Sprintf("sor: %d processors need at least one row each (NX=%d)", p, cfg.NX))
	}
	g := newGrid(cfg)
	topo := sys.Topo

	// iters and converged are written by rank 0 only and read after the run.
	iters := 0
	converged := false
	// The per-iteration convergence test is a real wide-area allreduce
	// (cluster-local trees plus one WAN message per cluster), so every
	// worker learns the global maximum delta and decides termination
	// identically from it — no shared flags, which also makes the test
	// shard-safe (each hop is an ordinary runtime message).
	conv := coll.New(sys, "sor-conv", coll.WideArea)

	rowBytes := 8 * (cfg.NY + 2)

	sys.SpawnWorkers("sor", func(w *core.Worker) {
		r := w.Rank()
		lo, hi := rowRange(cfg.NX, p, r)
		ownRows := hi - lo + 1
		// Ghost copies of the neighbours' boundary rows, starting at the
		// initial-grid value. Interior rows start all-zero and the nonzero
		// row 0 is a global boundary served by upRow directly, so the
		// ghosts simply start zeroed. They must NOT be copied from the live
		// grid here: under the sharded engine a neighbour on another LP may
		// already be relaxing its rows, and spawn-time reads of them race.
		ghostUp := make([]float64, cfg.NY+2)
		ghostDown := make([]float64, cfg.NY+2)
		hasUp, hasDown := r > 0, r < p-1

		// A message stream is identified by the sender's rank alone: the
		// per-neighbour send/recv sequences pair strictly (both sides
		// evaluate the same exchange schedule) and the network is FIFO per
		// channel, so no per-iteration tag is needed and the interned-tag
		// space stays fixed.
		rts := sys.RTS
		tagSelf := rts.InternTag(orca.Tag{Op: "sor", A: r})
		var tagUp, tagDown orca.TagID
		upWAN, downWAN := false, false
		if hasUp {
			tagUp = rts.InternTag(orca.Tag{Op: "sor", A: r - 1})
			upWAN = !topo.SameCluster(w.Node, cluster.NodeID(r-1))
		}
		if hasDown {
			tagDown = rts.InternTag(orca.Tag{Op: "sor", A: r + 1})
			downWAN = !topo.SameCluster(w.Node, cluster.NodeID(r+1))
		}

		// Boundary rows travel in per-direction double buffers, pre-boxed
		// so the steady-state send allocates nothing. Reusing buffer k at
		// send k+2 is safe: the receiver copies each payload out on
		// receipt, and the end-of-iteration allreduce means send k+2
		// cannot start before the receiver finished every receive of the
		// iteration containing send k.
		var upBufs, downBufs [2][]float64
		var upBoxed, downBoxed [2]any
		for k := 0; k < 2; k++ {
			upBufs[k] = make([]float64, cfg.NY+2)
			upBoxed[k] = upBufs[k]
			downBufs[k] = make([]float64, cfg.NY+2)
			downBoxed[k] = downBufs[k]
		}
		upSends, downSends := 0, 0

		// exchangeNow reports whether this phase exchanges with a
		// neighbour over the given link kind. The lock-step original
		// always exchanges. The chaotic optimized program exchanges freely
		// inside a cluster but crosses the WAN at most once per iteration
		// (before the red phase) and only on every SkipMod'th iteration.
		exchangeNow := func(iter, color int, wan bool) bool {
			if !optimized || !wan {
				return true
			}
			return color == 0 && iter%cfg.SkipMod == 0
		}

		upRow := func() []float64 {
			if lo == 1 {
				return g[0] // true global boundary
			}
			return ghostUp
		}
		downRow := func() []float64 {
			if hi == cfg.NX {
				return g[cfg.NX+1]
			}
			return ghostDown
		}

		var sendUp, sendDown bool
		recvGhosts := func() {
			if sendUp {
				copy(ghostUp, w.RecvID(tagUp).([]float64))
			}
			if sendDown {
				copy(ghostDown, w.RecvID(tagDown).([]float64))
			}
		}

		for iter := 1; ; iter++ {
			maxD := 0.0
			for color := 0; color <= 1; color++ {
				sendUp = hasUp && exchangeNow(iter, color, upWAN)
				sendDown = hasDown && exchangeNow(iter, color, downWAN)
				// Send our boundary rows first (asynchronously), so the
				// transfer overlaps with the computation below.
				if sendUp {
					k := upSends & 1
					upSends++
					copy(upBufs[k], g[lo])
					w.SendID(cluster.NodeID(r-1), tagSelf, rowBytes, upBoxed[k])
				}
				if sendDown {
					k := downSends & 1
					downSends++
					copy(downBufs[k], g[hi])
					w.SendID(cluster.NodeID(r+1), tagSelf, rowBytes, downBoxed[k])
				}
				// Chaotic mode relaxes cluster-edge rows with omega = 1
				// (plain Gauss-Seidel): overrelaxing repeatedly against a
				// stale ghost extrapolates old data and oscillates, while
				// the damped update is a contraction whatever the ghost's
				// age (Chazan & Miranker's stability condition).
				topOmega, bottomOmega := cfg.Omega, cfg.Omega
				if optimized && hasUp && !topo.SameCluster(w.Node, cluster.NodeID(r-1)) {
					topOmega = 1.0
				}
				if optimized && hasDown && !topo.SameCluster(w.Node, cluster.NodeID(r+1)) {
					bottomOmega = 1.0
				}

				if optimized && ownRows > 2 {
					// Split-phase: interior rows do not need the ghosts.
					for i := lo + 1; i <= hi-1; i++ {
						if d := relaxRow(g[i], g[i-1], g[i+1], i, color, cfg.Omega); d > maxD {
							maxD = d
						}
					}
					recvGhosts()
					if d := relaxRow(g[lo], upRow(), g[lo+1], lo, color, topOmega); d > maxD {
						maxD = d
					}
					if hi != lo {
						if d := relaxRow(g[hi], g[hi-1], downRow(), hi, color, bottomOmega); d > maxD {
							maxD = d
						}
					}
				} else {
					recvGhosts()
					for i := lo; i <= hi; i++ {
						om := cfg.Omega
						if i == lo {
							om = topOmega
						}
						if i == hi && bottomOmega < om {
							om = bottomOmega
						}
						up := g[i-1]
						if i == lo {
							up = upRow()
						}
						down := g[i+1]
						if i == hi {
							down = downRow()
						}
						if d := relaxRow(g[i], up, down, i, color, om); d > maxD {
							maxD = d
						}
					}
				}
				w.Compute(time.Duration(ownRows*(cfg.NY/2)) * cfg.CellCost)
			}

			// Global convergence test: a real allreduce of the maximum
			// delta, whose result every worker folds identically. The
			// lock-step original runs it every iteration, like the paper's
			// synchronous program. Chaotic mode runs it only on exchange
			// iterations — between exchanges the cluster-edge rows are
			// frozen and contribute no delta, so a quiet iteration in
			// between proves nothing about them, and skipping the test is
			// exactly the removal of global synchronization that chaotic
			// relaxation is about (clusters drift up to SkipMod iterations
			// before the next exchange resynchronizes them).
			if r == 0 {
				iters = iter
			}
			if fullSweep := !optimized || iter%cfg.SkipMod == 0; fullSweep {
				all := conv.AllReduce(w, 8, maxD, maxCombine).(float64)
				if all < cfg.Eps {
					if r == 0 {
						converged = true
					}
					return
				}
			}
			if iter >= cfg.MaxIters {
				return
			}
		}
	})

	verifyFn := func() error {
		if !converged {
			return fmt.Errorf("sor: no convergence in %d iterations", iters)
		}
		want, wantIters := sequentialCached(cfg)
		if !optimized {
			// Lock-step exchange: the parallel computation is the exact
			// sequential computation, so the match must be bitwise.
			if iters != wantIters {
				return fmt.Errorf("sor: %d iterations, sequential used %d", iters, wantIters)
			}
			for i := range want {
				for j := range want[i] {
					if g[i][j] != want[i][j] {
						return fmt.Errorf("sor: g[%d][%d]=%g, want %g", i, j, g[i][j], want[i][j])
					}
				}
			}
			return nil
		}
		// Chaotic relaxation: same fixpoint, different path. Check the
		// residual directly and the distance to the sequential solution.
		if res := Residual(cfg, g); res > 5*cfg.Eps {
			return fmt.Errorf("sor: residual %g too large", res)
		}
		maxDiff := 0.0
		for i := range want {
			for j := range want[i] {
				if d := math.Abs(g[i][j] - want[i][j]); d > maxDiff {
					maxDiff = d
				}
			}
		}
		if maxDiff > 0.05 {
			return fmt.Errorf("sor: max deviation from sequential %g", maxDiff)
		}
		return nil
	}
	return verifyFn, &iters
}
