package water

import (
	"math"
	"testing"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/core"
)

func testCfg() Config {
	return Config{N: 48, Iters: 2, Seed: 3, PairCost: 2 * time.Microsecond, DT: 1e-4}
}

func run(t *testing.T, clusters, npc int, optimized bool, cfg Config) core.Metrics {
	t.Helper()
	sys := core.NewSystem(core.Config{
		Topology: cluster.DAS(clusters, npc),
		Params:   cluster.DASParams(),
	})
	verify := Build(sys, cfg, optimized)
	m, err := sys.Run()
	if err != nil {
		t.Fatalf("run %dx%d opt=%v: %v", clusters, npc, optimized, err)
	}
	if err := verify(); err != nil {
		t.Fatalf("verify %dx%d opt=%v: %v", clusters, npc, optimized, err)
	}
	return m
}

func TestHalfShellCoversEveryPairOnce(t *testing.T) {
	for _, p := range []int{2, 3, 4, 5, 8, 9, 16} {
		seen := make(map[[2]int]int)
		for i := 0; i < p; i++ {
			for _, q := range targets(p, i) {
				a, b := i, q
				if a > b {
					a, b = b, a
				}
				seen[[2]int{a, b}]++
			}
		}
		want := p * (p - 1) / 2
		if len(seen) != want {
			t.Fatalf("p=%d: %d block pairs covered, want %d", p, len(seen), want)
		}
		for pair, n := range seen {
			if n != 1 {
				t.Fatalf("p=%d: pair %v covered %d times", p, pair, n)
			}
		}
	}
}

func TestSendersInverseOfTargets(t *testing.T) {
	for _, p := range []int{2, 4, 7, 12} {
		for i := 0; i < p; i++ {
			for _, j := range senders(p, i) {
				found := false
				for _, q := range targets(p, j) {
					if q == i {
						found = true
					}
				}
				if !found {
					t.Fatalf("p=%d: %d in senders(%d) but %d not in targets(%d)", p, j, i, i, j)
				}
			}
		}
	}
}

func TestMomentumConservation(t *testing.T) {
	// Newton's third law: total force is zero, so total momentum stays 0.
	cfg := testCfg()
	pos := initMolecules(cfg)
	f := make([]Vec, cfg.N)
	internalStep(pos, 0, cfg.N, f)
	var sum Vec
	for i := range f {
		for k := 0; k < 3; k++ {
			sum[k] += f[i][k]
		}
	}
	for k := 0; k < 3; k++ {
		if math.Abs(sum[k]) > 1e-9 {
			t.Fatalf("net force component %d = %g", k, sum[k])
		}
	}
}

func TestCorrectAcrossShapes(t *testing.T) {
	cfg := testCfg()
	for _, sh := range [][2]int{{1, 1}, {1, 4}, {1, 5}, {2, 2}, {2, 3}, {4, 2}} {
		for _, opt := range []bool{false, true} {
			run(t, sh[0], sh[1], opt, cfg)
		}
	}
}

func TestOptimizedCutsInterclusterTraffic(t *testing.T) {
	cfg := Config{N: 96, Iters: 2, Seed: 3, PairCost: 2 * time.Microsecond, DT: 1e-4}
	orig := run(t, 4, 4, false, cfg)
	opt := run(t, 4, 4, true, cfg)
	ob := orig.Net.TotalInter().Bytes
	nb := opt.Net.TotalInter().Bytes
	if float64(nb) > 0.7*float64(ob) {
		t.Fatalf("intercluster bytes: opt %d vs orig %d, no clear reduction", nb, ob)
	}
	if opt.Elapsed >= orig.Elapsed {
		t.Fatalf("optimized (%v) not faster than original (%v)", opt.Elapsed, orig.Elapsed)
	}
}

func TestSpeedupSingleCluster(t *testing.T) {
	cfg := Config{N: 128, Iters: 2, Seed: 3, PairCost: 4 * time.Microsecond, DT: 1e-4}
	t1 := run(t, 1, 1, false, cfg).Elapsed
	t8 := run(t, 1, 8, false, cfg).Elapsed
	if sp := float64(t1) / float64(t8); sp < 4 {
		t.Fatalf("8-proc speedup %.2f too low", sp)
	}
}

func TestOptionMatrixAllCorrect(t *testing.T) {
	cfg := testCfg()
	for _, opts := range []Options{
		{}, {Cache: true}, {Reduce: true}, {Cache: true, Reduce: true},
	} {
		sys := core.NewSystem(core.Config{
			Topology: cluster.DAS(2, 3),
			Params:   cluster.DASParams(),
		})
		verify := BuildVariant(sys, cfg, opts)
		if _, err := sys.Run(); err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if err := verify(); err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
	}
}

func TestEachOptionReducesInterclusterBytes(t *testing.T) {
	cfg := Config{N: 96, Iters: 2, Seed: 3, PairCost: 2 * time.Microsecond, DT: 1e-4}
	bytes := func(opts Options) int64 {
		sys := core.NewSystem(core.Config{
			Topology: cluster.DAS(4, 4),
			Params:   cluster.DASParams(),
		})
		verify := BuildVariant(sys, cfg, opts)
		m, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		if err := verify(); err != nil {
			t.Fatal(err)
		}
		return m.Net.TotalInter().Bytes
	}
	orig := bytes(Options{})
	cacheOnly := bytes(Options{Cache: true})
	reduceOnly := bytes(Options{Reduce: true})
	both := bytes(Options{Cache: true, Reduce: true})
	if cacheOnly >= orig || reduceOnly >= orig {
		t.Fatalf("individual options did not reduce traffic: orig=%d cache=%d reduce=%d", orig, cacheOnly, reduceOnly)
	}
	if both >= cacheOnly || both >= reduceOnly {
		t.Fatalf("combined options (%d) not better than individual (%d, %d)", both, cacheOnly, reduceOnly)
	}
}

func TestIrregularClusters(t *testing.T) {
	cfg := testCfg()
	sys := core.NewSystem(core.Config{
		Topology: cluster.Irregular(4, 2, 3),
		Params:   cluster.DASParams(),
	})
	verify := Build(sys, cfg, true)
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if err := verify(); err != nil {
		t.Fatal(err)
	}
}
