package water

import (
	"fmt"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/orca"
	"albatross/internal/sim"
)

// buildOriginal is the unmodified program: every processor pushes its
// positions to, and its force contributions across, the raw network — on a
// multicluster, the same block crosses the same WAN link once per consumer.
//
// Steady-state exchange allocates nothing: position snapshots live in
// two parity buffers per sender (the buffer of iteration t is reused at
// t+2, by which time every consumer has finished t+1 and no longer reads
// the t snapshot), force slices cycle through a shared pool, and iteration
// state lives in procState's parity ring.
func buildOriginal(sys *core.System, cfg Config, pos, vel []Vec, tgt, snd [][]int, blockLen func(int) int) {
	p := sys.Topo.Compute()
	states := make([]*procState, p)
	objs := make([]*orca.Object, p)
	for r := 0; r < p; r++ {
		states[r] = newProcState(r, p, len(tgt[r]), len(snd[r]), blockLen(r))
		objs[r] = sys.RTS.NewObject(fmt.Sprintf("water-mbox-%d", r), cluster.NodeID(r), states[r])
	}
	vps := vecPools(sys, blockLen(0))

	putPos := func(t, from int, data []Vec) orca.Op {
		return orca.Op{Name: "PutPos", ArgBytes: molBytes * len(data), ResBytes: 4,
			Apply: func(s any) any {
				st := s.(*procState).at(t)
				st.pos[from] = data
				st.posGot++
				if st.posFut != nil && st.posGot == st.posNeed {
					st.posFut.Set(nil)
				}
				return nil
			}}
	}
	putFrc := func(t, q int, data []Vec) orca.Op {
		// Apply executes at the owner q's node, so the freed buffer joins
		// the owner's cluster pool.
		vp := vps[sys.Topo.ClusterOf(cluster.NodeID(q))]
		return orca.Op{Name: "PutFrc", ArgBytes: molBytes * len(data), ResBytes: 4,
			Apply: func(s any) any {
				st := s.(*procState).at(t)
				addInto(st.frcAgg, data)
				vp.put(data)
				st.frcGot++
				if st.frcFut != nil && st.frcGot == st.frcNeed {
					st.frcFut.Set(nil)
				}
				return nil
			}}
	}

	sys.SpawnWorkers("water", func(w *core.Worker) {
		i := w.Rank()
		ps := states[i]
		vp := vps[w.Cluster()]
		lo, hi := blockRange(cfg.N, p, i)
		var mine [2][]Vec
		for k := range mine {
			mine[k] = make([]Vec, hi-lo)
		}
		fOwn := make([]Vec, hi-lo)
		frem := make([][]Vec, len(tgt[i]))
		for t := 0; t < cfg.Iters; t++ {
			// Push our positions to everyone that interacts with our block.
			mb := mine[t&1]
			copy(mb, pos[lo:hi])
			for _, j := range snd[i] {
				w.Invoke(objs[j], putPos(t, i, mb))
			}
			// Wait for the positions of the blocks we interact with.
			st := ps.at(t)
			if st.posGot < st.posNeed {
				st.posFut = ps.futFor(w.P.Engine())
				st.posFut.Await(w.P)
				st.posFut = nil
			}
			// Compute: internal pairs plus the half-shell cross blocks.
			for k := range fOwn {
				fOwn[k] = Vec{}
			}
			pairs := internalStep(pos, lo, hi, fOwn)
			for idx, q := range tgt[i] {
				fq := vp.get(len(st.pos[q]))
				pairs += pairStepBlocks(pos[lo:hi], st.pos[q], fOwn, fq)
				frem[idx] = fq
			}
			w.Compute(time.Duration(pairs) * cfg.PairCost)
			// Send the computed forces back to their owners to be summed.
			for idx, q := range tgt[i] {
				w.Invoke(objs[q], putFrc(t, q, frem[idx]))
				frem[idx] = nil
			}
			// Wait for contributions to our own block.
			if st.frcGot < st.frcNeed {
				st.frcFut = ps.futFor(w.P.Engine())
				st.frcFut.Await(w.P)
				st.frcFut = nil
			}
			addInto(fOwn, st.frcAgg)
			integrate(cfg, pos, vel, lo, hi, fOwn)
		}
	})
}

// pairStepBlocks computes interactions between an owned block (backed by
// the live position array) and a received remote snapshot.
func pairStepBlocks(own []Vec, remote []Vec, fOwn, fRemote []Vec) int {
	pairs := 0
	for i := range own {
		for j := range remote {
			f := force(own[i], remote[j])
			for k := 0; k < 3; k++ {
				fOwn[i][k] += f[k]
				fRemote[j][k] -= f[k]
			}
			pairs++
		}
	}
	return pairs
}

// posStore is the per-processor published-positions service used by the
// optimized program: requests for an iteration not yet published wait until
// the owner publishes it.
//
// Publications and waiters live in parity slots. A request can be at most
// two iterations ahead of the publisher (a consumer at t+3 would have needed
// positions the owner only publishes at t+2), so the two parities never hold
// more than one pending iteration each; and by the time iteration t is
// published, everyone who needed t-2 has long fetched it, so its buffer is
// reused in place. The cluster cache may retain a stale alias of the buffer,
// but cache keys include the iteration and old keys are never read again.
type posStore struct {
	bufs      [2][]Vec
	published [2][]Vec
	pubT      [2]int
	waiting   [2][]*orca.Request
	waitT     [2]int
	bytes     int
}

func (s *posStore) publish(t int, src []Vec) {
	k := t & 1
	copy(s.bufs[k], src)
	s.published[k], s.pubT[k] = s.bufs[k], t
	if s.waitT[k] == t {
		w := s.waiting[k]
		for i, req := range w {
			req.Reply(s.bytes, s.bufs[k])
			w[i] = nil
		}
		s.waiting[k], s.waitT[k] = w[:0], -1
	}
}

// buildOptimized applies the paper's Water optimizations per opts: position
// reads go through a per-cluster coordinator cache (Cache), and force
// write-backs are reduced inside each cluster before one aggregate crosses
// the WAN (Reduce). A disabled option falls back to the direct pull/push
// path, so the ablation isolates each technique's contribution.
func buildOptimized(sys *core.System, cfg Config, pos, vel []Vec, tgt, snd [][]int, blockLen func(int) int, opts Options) {
	p := sys.Topo.Compute()
	topo := sys.Topo
	rts := sys.RTS
	vps := vecPools(sys, blockLen(0))

	stores := make([]*posStore, p)
	for r := 0; r < p; r++ {
		st := &posStore{
			pubT:  [2]int{-1, -1},
			waitT: [2]int{-1, -1},
			bytes: molBytes * blockLen(r),
		}
		for k := range st.bufs {
			st.bufs[k] = make([]Vec, blockLen(r))
		}
		stores[r] = st
		rts.HandleService(cluster.NodeID(r), "water-pos", func(req *orca.Request) {
			t := req.Payload.(int)
			if k := t & 1; st.pubT[k] == t {
				req.Reply(st.bytes, st.published[k])
			} else {
				st.waitT[k] = t
				st.waiting[k] = append(st.waiting[k], req)
			}
		})
	}

	var cache *core.ClusterCache
	if opts.Cache {
		cache = core.NewClusterCache(sys, "water", func(pp *sim.Proc, at, source cluster.NodeID, key any) (any, int) {
			v := rts.Call(pp, at, source, "water-pos", 8, key)
			return v, stores[int(source)].bytes
		})
	}
	var reducer *core.ClusterReducer
	if opts.Reduce {
		// Contributions and aggregates both come from, and return to, the
		// buffer pools: the first contribution of a round is copied into a
		// pooled accumulator, later ones are folded and recycled. Each
		// cluster's fold runs at that cluster's coordinators and its
		// contributions come from that cluster's workers, so it closes over
		// the cluster's own pool.
		reducer = core.NewClusterReducerPer(sys, "water", func(c int) core.CombineFunc {
			vp := vps[c]
			return func(acc, v any) any {
				contrib := v.([]Vec)
				if acc == nil {
					a := vp.get(len(contrib))
					copy(a, contrib)
					vp.put(contrib)
					return a
				}
				a := acc.([]Vec)
				addInto(a, contrib)
				vp.put(contrib)
				return a
			}
		})
	}

	// Force messages are tagged by (destination, iteration parity): only
	// iterations t and t+1 can be in flight toward a collector still in t
	// (a t+2 sender implies the collector finished t), so parity alone
	// disambiguates and the tag space stays bounded.
	frcTags := [2][]orca.TagID{make([]orca.TagID, p), make([]orca.TagID, p)}
	for par := 0; par < 2; par++ {
		for q := 0; q < p; q++ {
			frcTags[par][q] = rts.InternTag(orca.Tag{Op: "water-frc", A: q, B: par})
		}
	}

	// expectLocal[q][c] = number of contributors to block q in cluster c.
	expectLocal := make([][]int, p)
	for q := 0; q < p; q++ {
		expectLocal[q] = make([]int, topo.Clusters)
		for _, j := range snd[q] {
			expectLocal[q][topo.ClusterOf(cluster.NodeID(j))]++
		}
	}
	// nAggs[q] = messages block q's owner receives per iteration: one per
	// contributor when forces go direct, pre-reduced per cluster otherwise.
	nAggs := make([]int, p)
	for q := 0; q < p; q++ {
		if reducer == nil {
			nAggs[q] = len(snd[q])
			continue
		}
		contributors := make([]cluster.NodeID, len(snd[q]))
		for k, j := range snd[q] {
			contributors[k] = cluster.NodeID(j)
		}
		nAggs[q] = reducer.ExpectedMessages(cluster.NodeID(q), contributors)
	}

	sys.SpawnWorkers("water", func(w *core.Worker) {
		i := w.Rank()
		vp := vps[w.Cluster()]
		lo, hi := blockRange(cfg.N, p, i)
		got := make([][]Vec, len(tgt[i]))
		fOwn := make([]Vec, hi-lo)
		for t := 0; t < cfg.Iters; t++ {
			stores[i].publish(t, pos[lo:hi])
			// Pull the blocks we interact with. With the cluster cache we
			// first warm it for every remote block (the coordinators know
			// the access pattern in advance), so by the time the blocking
			// reads arrive the WAN fetches are underway or done. Without
			// it every processor pulls across the WAN itself.
			if cache != nil {
				for _, q := range tgt[i] {
					cache.Prefetch(w, cluster.NodeID(q), t)
				}
			}
			for idx, q := range tgt[i] {
				if cache != nil {
					got[idx] = cache.Get(w, cluster.NodeID(q), t).([]Vec)
				} else {
					got[idx] = rts.Call(w.P, w.Node, cluster.NodeID(q), "water-pos", 8, t).([]Vec)
				}
			}
			for k := range fOwn {
				fOwn[k] = Vec{}
			}
			pairs := internalStep(pos, lo, hi, fOwn)
			for idx, q := range tgt[i] {
				fq := vp.get(len(got[idx]))
				pairs += pairStepBlocks(pos[lo:hi], got[idx], fOwn, fq)
				got[idx] = nil
				if reducer != nil {
					tag := orca.Tag{Op: "water-frc", A: q, B: t & 1}
					reducer.Put(w, cluster.NodeID(q), tag, molBytes*len(fq), fq, expectLocal[q][w.Cluster()])
				} else {
					w.SendID(cluster.NodeID(q), frcTags[t&1][q], molBytes*len(fq), fq)
				}
			}
			w.Compute(time.Duration(pairs) * cfg.PairCost)
			// Collect the (partially pre-reduced) contributions to our block.
			myID := frcTags[t&1][i]
			for k := 0; k < nAggs[i]; k++ {
				fa := w.RecvID(myID).([]Vec)
				addInto(fOwn, fa)
				vp.put(fa)
			}
			integrate(cfg, pos, vel, lo, hi, fOwn)
		}
	})
}
