package water

import (
	"fmt"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/orca"
	"albatross/internal/sim"
)

// buildOriginal is the unmodified program: every processor pushes its
// positions to, and its force contributions across, the raw network — on a
// multicluster, the same block crosses the same WAN link once per consumer.
func buildOriginal(sys *core.System, cfg Config, pos, vel []Vec, tgt, snd [][]int, blockLen func(int) int) {
	p := sys.Topo.Compute()
	e := sys.Engine
	states := make([]*procState, p)
	objs := make([]*orca.Object, p)
	for r := 0; r < p; r++ {
		states[r] = &procState{rank: r, iters: make(map[int]*iterState)}
		objs[r] = sys.RTS.NewObject(fmt.Sprintf("water-mbox-%d", r), cluster.NodeID(r), states[r])
	}
	stateAt := func(ps *procState, t int) *iterState {
		return ps.at(t, len(tgt[ps.rank]), len(snd[ps.rank]), blockLen(ps.rank))
	}

	putPos := func(t, from int, data []Vec) orca.Op {
		return orca.Op{Name: "PutPos", ArgBytes: molBytes * len(data), ResBytes: 4,
			Apply: func(s any) any {
				ps := s.(*procState)
				st := stateAt(ps, t)
				st.pos[from] = data
				if st.posFut != nil && len(st.pos) == st.posNeed {
					st.posFut.Set(nil)
				}
				return nil
			}}
	}
	putFrc := func(t int, data []Vec) orca.Op {
		return orca.Op{Name: "PutFrc", ArgBytes: molBytes * len(data), ResBytes: 4,
			Apply: func(s any) any {
				ps := s.(*procState)
				st := stateAt(ps, t)
				addInto(st.frcAgg, data)
				st.frcGot++
				if st.frcFut != nil && st.frcGot == st.frcNeed {
					st.frcFut.Set(nil)
				}
				return nil
			}}
	}

	sys.SpawnWorkers("water", func(w *core.Worker) {
		i := w.Rank()
		ps := states[i]
		lo, hi := blockRange(cfg.N, p, i)
		for t := 0; t < cfg.Iters; t++ {
			// Push our positions to everyone that interacts with our block.
			mine := snapshotBlock(pos, lo, hi)
			for _, j := range snd[i] {
				w.Invoke(objs[j], putPos(t, i, mine))
			}
			// Wait for the positions of the blocks we interact with.
			st := stateAt(ps, t)
			if len(st.pos) < st.posNeed {
				st.posFut = sim.NewFuture(e, fmt.Sprintf("water-pos-%d@%d", t, i))
				st.posFut.Await(w.P)
			}
			// Compute: internal pairs plus the half-shell cross blocks.
			fOwn := make([]Vec, hi-lo)
			pairs := internalStep(pos, lo, hi, fOwn)
			fRemote := make(map[int][]Vec, len(tgt[i]))
			for _, q := range tgt[i] {
				fq := make([]Vec, len(st.pos[q]))
				pairs += pairStepBlocks(pos[lo:hi], st.pos[q], fOwn, fq)
				fRemote[q] = fq
			}
			w.Compute(time.Duration(pairs) * cfg.PairCost)
			// Send the computed forces back to their owners to be summed.
			for _, q := range tgt[i] {
				w.Invoke(objs[q], putFrc(t, fRemote[q]))
			}
			// Wait for contributions to our own block.
			if st.frcGot < st.frcNeed {
				st.frcFut = sim.NewFuture(e, fmt.Sprintf("water-frc-%d@%d", t, i))
				st.frcFut.Await(w.P)
			}
			addInto(fOwn, st.frcAgg)
			integrate(cfg, pos, vel, lo, hi, fOwn)
			delete(ps.iters, t)
		}
	})
}

// pairStepBlocks computes interactions between an owned block (backed by
// the live position array) and a received remote snapshot.
func pairStepBlocks(own []Vec, remote []Vec, fOwn, fRemote []Vec) int {
	pairs := 0
	for i := range own {
		for j := range remote {
			f := force(own[i], remote[j])
			for k := 0; k < 3; k++ {
				fOwn[i][k] += f[k]
				fRemote[j][k] -= f[k]
			}
			pairs++
		}
	}
	return pairs
}

// posStore is the per-processor published-positions service used by the
// optimized program: requests for an iteration not yet published wait until
// the owner publishes it.
type posStore struct {
	published map[int][]Vec
	waiting   map[int][]*orca.Request
	bytes     int
}

func (s *posStore) publish(t int, data []Vec) {
	s.published[t] = data
	for _, req := range s.waiting[t] {
		req.Reply(s.bytes, data)
	}
	delete(s.waiting, t)
}

// buildOptimized applies the paper's Water optimizations per opts: position
// reads go through a per-cluster coordinator cache (Cache), and force
// write-backs are reduced inside each cluster before one aggregate crosses
// the WAN (Reduce). A disabled option falls back to the direct pull/push
// path, so the ablation isolates each technique's contribution.
func buildOptimized(sys *core.System, cfg Config, pos, vel []Vec, tgt, snd [][]int, blockLen func(int) int, opts Options) {
	p := sys.Topo.Compute()
	topo := sys.Topo
	rts := sys.RTS

	stores := make([]*posStore, p)
	for r := 0; r < p; r++ {
		st := &posStore{
			published: make(map[int][]Vec),
			waiting:   make(map[int][]*orca.Request),
			bytes:     molBytes * blockLen(r),
		}
		stores[r] = st
		rts.HandleService(cluster.NodeID(r), "water-pos", func(req *orca.Request) {
			t := req.Payload.(int)
			if data, ok := st.published[t]; ok {
				req.Reply(st.bytes, data)
				return
			}
			st.waiting[t] = append(st.waiting[t], req)
		})
	}

	var cache *core.ClusterCache
	if opts.Cache {
		cache = core.NewClusterCache(sys, "water", func(pp *sim.Proc, at, source cluster.NodeID, key any) (any, int) {
			v := rts.Call(pp, at, source, "water-pos", 8, key)
			return v, stores[int(source)].bytes
		})
	}
	var reducer *core.ClusterReducer
	if opts.Reduce {
		reducer = core.NewClusterReducer(sys, "water", func(acc, v any) any {
			contrib := v.([]Vec)
			if acc == nil {
				return append([]Vec(nil), contrib...)
			}
			a := acc.([]Vec)
			addInto(a, contrib)
			return a
		})
	}

	// expectLocal[q][c] = number of contributors to block q in cluster c.
	expectLocal := make([][]int, p)
	for q := 0; q < p; q++ {
		expectLocal[q] = make([]int, topo.Clusters)
		for _, j := range snd[q] {
			expectLocal[q][topo.ClusterOf(cluster.NodeID(j))]++
		}
	}
	// nAggs[q] = messages block q's owner receives per iteration: one per
	// contributor when forces go direct, pre-reduced per cluster otherwise.
	nAggs := make([]int, p)
	for q := 0; q < p; q++ {
		if reducer == nil {
			nAggs[q] = len(snd[q])
			continue
		}
		contributors := make([]cluster.NodeID, len(snd[q]))
		for k, j := range snd[q] {
			contributors[k] = cluster.NodeID(j)
		}
		nAggs[q] = reducer.ExpectedMessages(cluster.NodeID(q), contributors)
	}

	sys.SpawnWorkers("water", func(w *core.Worker) {
		i := w.Rank()
		lo, hi := blockRange(cfg.N, p, i)
		for t := 0; t < cfg.Iters; t++ {
			stores[i].publish(t, snapshotBlock(pos, lo, hi))
			// Pull the blocks we interact with. With the cluster cache we
			// first warm it for every remote block (the coordinators know
			// the access pattern in advance), so by the time the blocking
			// reads arrive the WAN fetches are underway or done. Without
			// it every processor pulls across the WAN itself.
			if cache != nil {
				for _, q := range tgt[i] {
					cache.Prefetch(w, cluster.NodeID(q), t)
				}
			}
			got := make(map[int][]Vec, len(tgt[i]))
			for _, q := range tgt[i] {
				if cache != nil {
					got[q] = cache.Get(w, cluster.NodeID(q), t).([]Vec)
				} else {
					got[q] = rts.Call(w.P, w.Node, cluster.NodeID(q), "water-pos", 8, t).([]Vec)
				}
			}
			fOwn := make([]Vec, hi-lo)
			pairs := internalStep(pos, lo, hi, fOwn)
			for _, q := range tgt[i] {
				fq := make([]Vec, len(got[q]))
				pairs += pairStepBlocks(pos[lo:hi], got[q], fOwn, fq)
				tag := orca.Tag{Op: "water-frc", A: t, B: q}
				if reducer != nil {
					reducer.Put(w, cluster.NodeID(q), tag, molBytes*len(fq), fq, expectLocal[q][w.Cluster()])
				} else {
					w.Send(cluster.NodeID(q), tag, molBytes*len(fq), fq)
				}
			}
			w.Compute(time.Duration(pairs) * cfg.PairCost)
			// Collect the (partially pre-reduced) contributions to our block.
			myTag := orca.Tag{Op: "water-frc", A: t, B: i}
			for k := 0; k < nAggs[i]; k++ {
				addInto(fOwn, w.Recv(myTag).([]Vec))
			}
			integrate(cfg, pos, vel, lo, hi, fOwn)
			delete(stores[i].published, t)
		}
	})
}
