// Package water implements the Water application of the paper (Section
// 4.1), modelled on the "n-squared" Water code from the SPLASH suite: an
// n-body simulation in which every iteration exchanges molecule data in a
// personalized all-to-all pattern — each processor gets the positions of the
// molecules of the next p/2 processors, computes pairwise interactions, and
// sends the computed forces back to be summed by their owners.
//
// Original program: every consumer pulls/pushes across the WAN itself, so
// the same molecule block crosses the same WAN link many times.
//
// Optimized program (the paper's cluster caching): one processor per cluster
// is the local coordinator for each remote processor P; position reads go
// through the coordinator's cache (core.ClusterCache) so P's block crosses
// each WAN link once per iteration, and force write-backs are first reduced
// inside the cluster (core.ClusterReducer) so only one combined contribution
// per cluster travels back.
package water

import (
	"fmt"
	"math"
	"sync"
	"time"

	"albatross/internal/core"
	"albatross/internal/rng"
	"albatross/internal/sim"
)

// Vec is a 3-vector.
type Vec [3]float64

// Config describes one Water problem.
type Config struct {
	N        int           // number of molecules
	Iters    int           // simulation time steps
	Seed     uint64        // workload seed
	PairCost time.Duration // virtual CPU time per pairwise interaction
	DT       float64       // integration step
}

// Default returns the scaled-down stand-in for the paper's 4096-molecule,
// two-time-step input.
func Default() Config {
	return Config{N: 512, Iters: 2, Seed: 99, PairCost: 16 * time.Microsecond, DT: 1e-4}
}

const molBytes = 24 // one 3-vector on the wire

// initMolecules places molecules pseudo-randomly in the unit box.
func initMolecules(cfg Config) []Vec {
	r := rng.New(cfg.Seed)
	pos := make([]Vec, cfg.N)
	for i := range pos {
		for d := 0; d < 3; d++ {
			pos[i][d] = r.Float64()
		}
	}
	return pos
}

// force computes the pair interaction (softened inverse-square attraction)
// acting on a from b.
func force(a, b Vec) Vec {
	var d Vec
	r2 := 1e-2 // softening keeps forces bounded for verification stability
	for k := 0; k < 3; k++ {
		d[k] = b[k] - a[k]
		r2 += d[k] * d[k]
	}
	inv := 1 / (r2 * math.Sqrt(r2))
	for k := 0; k < 3; k++ {
		d[k] *= inv
	}
	return d
}

// blockRange returns molecule block [lo, hi) of rank r out of p.
func blockRange(n, p, r int) (lo, hi int) {
	base, rem := n/p, n%p
	lo = r*base + min(r, rem)
	hi = lo + base
	if r < rem {
		hi++
	}
	return lo, hi
}

// targets returns the ranks whose blocks rank i interacts with (the paper's
// "next p/2 processors" half-shell rule; for even p the diameter pair is
// computed by the lower rank only).
func targets(p, i int) []int {
	if p == 1 {
		return nil
	}
	h := p / 2
	var out []int
	for d := 1; d <= h; d++ {
		j := (i + d) % p
		if d == h && p%2 == 0 && i >= j {
			continue
		}
		out = append(out, j)
	}
	return out
}

// senders returns the ranks that interact with rank i's block (the inverse
// of targets).
func senders(p, i int) []int {
	var out []int
	for j := 0; j < p; j++ {
		for _, t := range targets(p, j) {
			if t == i {
				out = append(out, j)
			}
		}
	}
	return out
}

// internalStep computes the pairs inside one block.
func internalStep(pos []Vec, lo, hi int, f []Vec) int {
	pairs := 0
	for i := lo; i < hi; i++ {
		for j := i + 1; j < hi; j++ {
			fv := force(pos[i], pos[j])
			for k := 0; k < 3; k++ {
				f[i-lo][k] += fv[k]
				f[j-lo][k] -= fv[k]
			}
			pairs++
		}
	}
	return pairs
}

// Sequential runs the reference simulation on one processor.
func Sequential(cfg Config) []Vec {
	pos := initMolecules(cfg)
	vel := make([]Vec, cfg.N)
	for t := 0; t < cfg.Iters; t++ {
		f := make([]Vec, cfg.N)
		internalStep(pos, 0, cfg.N, f)
		for i := range pos {
			for k := 0; k < 3; k++ {
				vel[i][k] += f[i][k] * cfg.DT
				pos[i][k] += vel[i][k] * cfg.DT
			}
		}
	}
	return pos
}

// seqCache memoizes the sequential reference per Config: verifiers share one
// read-only result instead of re-running the n² reference on every run.
var seqCache sync.Map // Config -> []Vec

func sequentialCached(cfg Config) []Vec {
	if v, ok := seqCache.Load(cfg); ok {
		return v.([]Vec)
	}
	v, _ := seqCache.LoadOrStore(cfg, Sequential(cfg))
	return v.([]Vec)
}

// iterState is the per-processor exchange bookkeeping of one iteration.
//
// States live in a two-slot parity ring instead of a per-iteration map: a
// message for iteration t arrives only once its sender has reached t, and a
// sender reaches t only after every one of its interaction partners — in
// particular this processor — has finished t-2 and stopped touching that
// slot. So the slot of iteration t-2 is always reclaimable when t begins.
type iterState struct {
	t       int
	pos     [][]Vec // sender rank -> their positions (this iteration)
	posGot  int
	posFut  *sim.Future
	frcAgg  []Vec // summed force contributions received
	frcGot  int
	frcFut  *sim.Future
	posNeed int
	frcNeed int
}

// procState is one processor's mailbox-object state in the original program.
type procState struct {
	rank  int
	fut   *sim.Future // pooled wait future: at most one wait pending per proc
	slots [2]*iterState
}

func newProcState(rank, p, posNeed, frcNeed, blockLen int) *procState {
	ps := &procState{rank: rank}
	for k := range ps.slots {
		ps.slots[k] = &iterState{t: -1, pos: make([][]Vec, p),
			frcAgg: make([]Vec, blockLen), posNeed: posNeed, frcNeed: frcNeed}
	}
	return ps
}

// at returns iteration t's state, reclaiming the parity slot last used by
// iteration t-2 (see iterState).
func (ps *procState) at(t int) *iterState {
	st := ps.slots[t&1]
	if st.t != t {
		st.t = t
		st.posGot, st.frcGot = 0, 0
		for i := range st.pos {
			st.pos[i] = nil
		}
		for i := range st.frcAgg {
			st.frcAgg[i] = Vec{}
		}
	}
	return st
}

// futFor returns the processor's reusable wait future. The exchange loop
// waits at most once at a time (positions, then forces), and every wait is
// always completed, so a single rearmed future per processor suffices.
func (ps *procState) futFor(e *sim.Engine) *sim.Future {
	if ps.fut == nil {
		ps.fut = sim.NewFuture(e, "water-wait")
	} else {
		ps.fut.Reset("water-wait")
	}
	return ps.fut
}

// vecPool recycles force-contribution buffers. Every receiver folds a
// contribution into its accumulator the moment it arrives and never retains
// the slice, so buffers cycle sender -> receiver -> pool. Pools are per
// cluster (see vecPools): a buffer is always recycled into the pool of the
// cluster that finished reading it, so each free list is touched by one
// logical process on a sharded engine.
type vecPool struct {
	bufs [][]Vec
	max  int // largest block length; every pooled buffer has this capacity
}

func (vp *vecPool) get(n int) []Vec {
	if m := len(vp.bufs); m > 0 {
		v := vp.bufs[m-1][:n]
		vp.bufs = vp.bufs[:m-1]
		for i := range v {
			v[i] = Vec{}
		}
		return v
	}
	return make([]Vec, n, vp.max)
}

func (vp *vecPool) put(v []Vec) { vp.bufs = append(vp.bufs, v[:0]) }

// vecPools builds the per-cluster force-buffer pools: one pool per cluster
// on a sharded system (each touched only by its cluster's logical process;
// buffers migrate between pools with the messages that carry them), and a
// single pool shared by every slot sequentially, preserving the original
// allocation behavior exactly.
func vecPools(sys *core.System, max int) []*vecPool {
	vps := make([]*vecPool, sys.Topo.Clusters)
	if sys.Sharded() {
		for c := range vps {
			vps[c] = &vecPool{max: max}
		}
		return vps
	}
	shared := &vecPool{max: max}
	for c := range vps {
		vps[c] = shared
	}
	return vps
}

// Options selects which of the paper's two Water optimizations to apply —
// both in the paper's optimized program, individually in the ablation.
type Options struct {
	Cache  bool // cluster-level caching of position reads
	Reduce bool // cluster-level reduction of force write-backs
}

// Build sets up the parallel Water run; optimized selects cluster caching
// and cluster-level reduction. The verifier compares final positions with
// the sequential reference.
func Build(sys *core.System, cfg Config, optimized bool) func() error {
	if optimized {
		return BuildVariant(sys, cfg, Options{Cache: true, Reduce: true})
	}
	return BuildVariant(sys, cfg, Options{})
}

// BuildVariant sets up the run with an explicit optimization selection.
// The zero Options value is the original (RPC push) program.
func BuildVariant(sys *core.System, cfg Config, opts Options) func() error {
	p := sys.Topo.Compute()
	if p > cfg.N {
		panic(fmt.Sprintf("water: %d processors need at least one molecule each (N=%d)", p, cfg.N))
	}
	pos := initMolecules(cfg)
	vel := make([]Vec, cfg.N)

	tgt := make([][]int, p)
	snd := make([][]int, p)
	for i := 0; i < p; i++ {
		tgt[i] = targets(p, i)
		snd[i] = senders(p, i)
	}
	blockLen := func(r int) int { lo, hi := blockRange(cfg.N, p, r); return hi - lo }

	if opts.Cache || opts.Reduce {
		buildOptimized(sys, cfg, pos, vel, tgt, snd, blockLen, opts)
	} else {
		buildOriginal(sys, cfg, pos, vel, tgt, snd, blockLen)
	}

	return func() error {
		want := sequentialCached(cfg)
		for i := range want {
			for k := 0; k < 3; k++ {
				if math.Abs(pos[i][k]-want[i][k]) > 1e-9 {
					return fmt.Errorf("water: molecule %d coord %d = %v, want %v", i, k, pos[i][k], want[i][k])
				}
			}
		}
		return nil
	}
}

// integrate advances the owner's block after all force contributions are in.
func integrate(cfg Config, pos, vel []Vec, lo, hi int, f []Vec) {
	for i := lo; i < hi; i++ {
		for k := 0; k < 3; k++ {
			vel[i][k] += f[i-lo][k] * cfg.DT
			pos[i][k] += vel[i][k] * cfg.DT
		}
	}
}

// addInto sums a force contribution into an accumulator.
func addInto(acc []Vec, contrib []Vec) {
	for i := range contrib {
		for k := 0; k < 3; k++ {
			acc[i][k] += contrib[i][k]
		}
	}
}
