// Package netsim emulates the paper's two-level communication substrate on
// top of the sim engine: a fast local-area network inside each cluster
// (Myrinet in the paper) and slow wide-area links between cluster gateways
// (ATM PVCs in the paper).
//
// A message between nodes of one cluster pays sender-NIC serialization plus
// LAN latency. A message between clusters travels: node → local gateway over
// Fast Ethernet, gateway → gateway over a per-directed-cluster-pair WAN pipe
// (a FIFO resource, so concurrent traffic queues and the link can saturate,
// like the paper's 6 Mbit/s PVCs), then gateway → node over Fast Ethernet.
//
// All traffic is metered by a Stats collector, split intracluster vs
// intercluster and by message kind — the raw material for the paper's
// Tables 2, 4 and 5.
package netsim

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/sim"
)

// Kind classifies a message for accounting and dispatch.
type Kind uint8

const (
	// KindRPCReq is a remote-invocation request.
	KindRPCReq Kind = iota
	// KindRPCRep is a remote-invocation reply.
	KindRPCRep
	// KindBcast is broadcast data (a replicated-object update).
	KindBcast
	// KindData is bulk application data sent point-to-point.
	KindData
	// KindControl is protocol-internal control traffic (sequencer tokens,
	// migration requests, acknowledgements).
	KindControl
	// KindFrame is a gateway-coalesced transport frame: several application
	// messages packed into one WAN transmission (transport.go). It appears
	// only in the synthetic wire-unit Msg handed to fault policies; framed
	// traffic is metered by Stats' frame counters, not the per-kind tables.
	KindFrame
	numKinds
)

// NumKinds is the number of distinct message kinds.
const NumKinds = int(numKinds)

// kindNames is indexed by Kind; String is a plain array lookup so taps and
// trace labels pay no switch or fmt cost.
var kindNames = [NumKinds]string{"rpc-req", "rpc-rep", "bcast", "data", "control", "frame"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "invalid"
}

// Msg is a simulated network message. Size is the application-level payload
// size in bytes; Payload carries the simulated content by reference.
type Msg struct {
	From, To cluster.NodeID
	Kind     Kind
	Size     int
	Payload  any
}

// String renders the message compactly ("data 0>17 128B") without fmt, so
// taps and trace sinks can label messages cheaply.
func (m Msg) String() string {
	b := make([]byte, 0, 32)
	b = append(b, m.Kind.String()...)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(m.From), 10)
	b = append(b, '>')
	b = strconv.AppendInt(b, int64(m.To), 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(m.Size), 10)
	b = append(b, 'B')
	return string(b)
}

// Handler consumes a delivered message. Handlers run in event context: they
// must not block, but they may wake processes and send further messages.
type Handler func(Msg)

// node is the per-machine network endpoint state.
type node struct {
	id      cluster.NodeID
	nicFree time.Duration // sender-side serialization horizon
	gwFree  time.Duration // gateway forwarding horizon (gateways only)
	handler Handler
	inbox   *sim.Mailbox // default delivery target when no handler is set
}

// pipe is a directed WAN link between two cluster gateways (one of several
// parallel streams per directed pair when striping is on).
type pipe struct {
	free   time.Duration // transmission horizon (FIFO resource)
	arrive time.Duration // last scheduled arrival: the pipe is a physical FIFO
	// link, so a latency drop between two transmissions (a WANProfile wave
	// edge, a fault clearing) must not let later traffic overtake earlier
	// traffic. Arrivals are clamped to be non-decreasing per pipe; the fault
	// injector's deliberate reorder delay is applied after the clamp so chaos
	// reordering still works.

	busy    time.Duration // cumulative transmission time
	bytes   int64
	msgs    int64         // application messages carried
	frames  int64         // coalesced frames transmitted (0 when transport is off)
	maxWait time.Duration // worst queueing delay behind earlier traffic
}

// delivery is a recyclable deliver-callback record. The closure is bound
// once per record and records are pooled, so a steady stream of messages
// schedules delivery events without allocating a fresh closure per message.
// Each record belongs to one netShard's free list and never migrates, so
// under a sharded engine every record is touched by a single LP thread.
type delivery struct {
	n  *Network
	sh *netShard
	m  Msg
	fn func() // bound to (*delivery).run once, at record creation
}

func (d *delivery) run() {
	n, m := d.n, d.m
	d.m = Msg{} // drop the payload reference while pooled
	d.sh.pool = append(d.sh.pool, d)
	n.deliver(m)
}

// netShard is the per-cluster slice of the network's mutable hot state: the
// engine that executes the cluster's events plus the free lists and traffic
// counters that the send/deliver path touches on every message. On a plain
// engine every cluster references one shared netShard (so the sequential
// data path is exactly what it was); on a sharded engine each cluster gets
// its own, touched only from the cluster's LP thread, and reads merge them.
type netShard struct {
	e         *sim.Engine
	stats     Stats
	pool      []*delivery   // free list of delivery records
	wanPool   []*wanTransit // free list of two-stage WAN forwarding records
	framePool []*frame      // free list of coalesced-frame records
}

// linkClass is a resolved wide-area link class: the declared parameters with
// the stream count defaulted from Params. The implicit full mesh has a single
// synthetic class carrying Params' uniform WAN figures, so the classic DAS
// arithmetic is byte-for-byte what it always was.
type linkClass struct {
	name    string
	lat     time.Duration
	bw      float64
	streams int
}

// adjLink is one directed WAN link in a cluster's sorted adjacency list. All
// mutable state lives behind the pipes slice header, so sorted insertion
// (which shifts entries when the mesh materializes a link lazily) never moves
// it and pointers into the pipes stay valid.
type adjLink struct {
	to    int32 // destination cluster
	class int32 // index into Network.classes
	pipes []pipe
}

// Network is the two-level network for one simulated system.
type Network struct {
	e     *sim.Engine
	topo  cluster.Topology
	par   cluster.Params
	nodes []*node

	// Sparse wide-area state. adj[c] lists cluster c's outgoing links sorted
	// by destination; on the implicit full mesh (graph == nil) links
	// materialize lazily on first use, so memory is proportional to links
	// that actually carry traffic, not to C². agg[c][k] accumulates cluster
	// c's transmissions on class k as O(1) streaming aggregates. Both are
	// per-source-cluster state: under a sharded engine each top-level slot
	// is touched only by its owner LP.
	graph     *cluster.Graph // nil = implicit full mesh at par's uniform WAN link
	classes   []linkClass
	adj       [][]adjLink
	agg       [][]classAgg
	nclusters int
	xp        *xport // gateway transport layer (nil = off = plain per-message path)
	sharded   bool
	sh        []*netShard // cluster → shard (all one shard when unsharded)
	merged    Stats       // scratch for Stats() snapshots when sharded
	tap       Tap
	tapMu     sync.Mutex // serializes tap calls across LP threads when sharded

	// All-pairs routed latency floor between clusters (cluster a → cluster
	// b: min over paths of Σ per-hop class latency + software overhead +
	// gateway cost). Computed once when sharded (it derives the engine's
	// lookahead matrix) or when a link-fault policy installs (loss
	// tombstones travel at the floor); nil otherwise. Read-only once built.
	routeFloor [][]time.Duration

	// Link fault domains (routefault.go). linkFault is non-nil only when the
	// installed policy schedules hard link failures; hold[c] maps a final
	// destination cluster to the bounded queue of wire units parked at c's
	// gateway while no route exists. Both nil on the fault-free fast path.
	linkFault LinkFaultPolicy
	hold      []map[int32]*holdQ

	// Flattened topology tables: the send path answers "which cluster",
	// "is it a gateway" and "who are the local members" with one array
	// index instead of Topology's arithmetic (or, for Nodes, a fresh
	// slice allocation) per message.
	clusterOf []int              // node → cluster index
	isGW      []bool             // node → gateway flag
	gateways  []cluster.NodeID   // cluster → gateway node (multi-cluster only)
	members   [][]cluster.NodeID // cluster → compute nodes, in ID order

	// Precomputed per-message latency sums (exact Duration additions, so
	// arrival times are bit-identical to summing the parts on every send).
	lanDelay      time.Duration // LANLatency + 2*SoftwareOverhead
	lanBcastDelay time.Duration // LANBcastLatency + 2*SoftwareOverhead
	feDelay       time.Duration // FELatency + SoftwareOverhead
	wanDelay      time.Duration // SoftwareOverhead after WAN transit

	// wanProfile, if set, scales WAN latency and bandwidth over virtual
	// time (e.g. to model congestion waves). It must be a pure function of
	// its argument so runs stay deterministic.
	wanProfile WANProfile

	// fault, if set, injects wide-area faults (drops, duplicates, reorder
	// delays, outages, gateway crashes, quality degradation). The hooks
	// cost one nil check when no policy is installed.
	fault FaultPolicy
}

// FaultAction is a FaultPolicy's verdict on one WAN transmission.
type FaultAction uint8

const (
	// FaultDeliver lets the message pass unharmed.
	FaultDeliver FaultAction = iota
	// FaultDrop loses the message at the sending gateway.
	FaultDrop
	// FaultDuplicate transmits the message twice. Both copies pay for pipe
	// bandwidth; the duplicate copy is exempt from further verdicts (so
	// duplication cannot cascade) but still subject to gateway crashes.
	FaultDuplicate
)

// FaultPolicy injects deterministic wide-area faults into the network. The
// network consults it only on the intercluster path; intracluster (LAN)
// traffic is never faulted, matching the paper's premise that the wide-area
// links are the unreliable resource. Implementations must be pure functions
// of virtual time plus their own deterministic state: the engine calls them
// in its deterministic event order, so a seeded policy reproduces the exact
// same fault sequence on every run.
type FaultPolicy interface {
	// WANTransit rules on one message entering the WAN pipe cs→cd at
	// virtual time at. delay (used only when the verdict delivers) is
	// added to the message's arrival at the remote gateway, modelling
	// reordering against traffic that departs later.
	WANTransit(at time.Duration, cs, cd int, m Msg) (a FaultAction, delay time.Duration)
	// WANQuality returns multiplicative (latency, bandwidth) scales in
	// effect at time at. The latency scale must be non-negative and the
	// bandwidth scale positive; the scales compose with any WANProfile.
	WANQuality(at time.Duration) (latScale, bwScale float64)
	// GatewayDown reports whether cluster c's gateway is crashed at time
	// at. m is the message about to traverse the gateway, so the policy
	// can account for the drop it induces by answering true.
	GatewayDown(at time.Duration, c int, m Msg) bool
}

// LinkFaultPolicy extends FaultPolicy with per-link fault domains: scheduled
// hard failures of individual directed WAN links, visible to routing. Like
// every policy hook, LinkDown must be a pure function of its arguments —
// the router consults it from several LP threads concurrently.
type LinkFaultPolicy interface {
	FaultPolicy
	// LinkDown reports whether the directed link from→to carries nothing
	// at virtual time at.
	LinkDown(at time.Duration, from, to int) bool
	// HasLinkDowns reports whether any link failure is scheduled at all;
	// when false the network keeps its static zero-overhead routing path.
	HasLinkDowns() bool
}

// ClusterBinder is implemented by fault policies that partition their
// mutable state by cluster (faults.Injector does). SetFaultPolicy calls
// Bind with the cluster count so the policy can pre-size its per-cluster
// slots before concurrent LPs start indexing them.
type ClusterBinder interface {
	Bind(nclusters int)
}

// SetFaultPolicy installs the fault injector (nil removes it, restoring the
// perfect network). Install it before the run starts: switching policies
// mid-run leaves in-flight messages ruled by the old policy.
//
// Shard safety is the policy's contract, not the network's gate: the
// network consults WANTransit on the source cluster's LP, GatewayDown on
// the named cluster's LP, and WANQuality/LinkDown wherever traffic is in
// flight, so a policy whose verdicts depend only on (virtual time, directed
// pair, that pair's own history) — as faults.Injector's per-pair streams do
// — produces byte-identical fault sequences sequentially and sharded.
// Policies implementing ClusterBinder are bound to the cluster count here.
// On a sharded engine WANQuality must not return a latency scale below 1
// (checked per sample): shrinking WAN latency would undercut the lookahead
// the window fences are built on.
func (n *Network) SetFaultPolicy(p FaultPolicy) {
	n.fault = p
	n.linkFault = nil
	if b, ok := p.(ClusterBinder); ok {
		b.Bind(n.nclusters)
	}
	if lp, ok := p.(LinkFaultPolicy); ok && lp.HasLinkDowns() {
		n.linkFault = lp
		if n.hold == nil {
			n.hold = make([]map[int32]*holdQ, n.nclusters)
		}
		// Loss tombstones (loseFrameSeq) travel at the routed latency
		// floor; build the table now, on the setup thread — the drop paths
		// run on LP threads and must only read it.
		n.routeFloors()
	}
}

// routeFloors returns (building on first use) the all-pairs minimum routed
// latency between clusters: per hop, the link class latency plus the
// receive-side software overhead plus the gateway forwarding cost, minimized
// over every path through the physical links. No message can cross from one
// cluster to another in less virtual time, however it is routed, rerouted or
// held. Call during setup only; concurrent LPs may read the result.
func (n *Network) routeFloors() [][]time.Duration {
	if n.routeFloor != nil {
		return n.routeFloor
	}
	hopExtra := n.par.SoftwareOverhead + n.par.GatewayCost
	if n.graph == nil {
		// Implicit full mesh: every pair one uniform WAN hop apart (any
		// detour costs at least two).
		d := n.par.WANLatency + hopExtra
		flat := make([]time.Duration, n.nclusters*n.nclusters)
		rows := make([][]time.Duration, n.nclusters)
		for c := range rows {
			rows[c] = flat[c*n.nclusters : (c+1)*n.nclusters]
			for o := range rows[c] {
				if o != c {
					rows[c][o] = d
				}
			}
		}
		n.routeFloor = rows
		return rows
	}
	n.routeFloor = n.graph.AllPairsCost(n.nclusters, func(class int) time.Duration {
		return n.graph.Classes[class].Latency + hopExtra
	})
	return n.routeFloor
}

// RouteFloor reports the minimum routed latency from cluster cs to cluster
// cd (see routeFloors). Observability/testing.
func (n *Network) RouteFloor(cs, cd int) time.Duration {
	return n.routeFloors()[cs][cd]
}

// WANProfile maps a virtual instant to multiplicative (latency, bandwidth)
// scales for the wide-area links. Both scales must be positive.
type WANProfile func(at time.Duration) (latScale, bwScale float64)

// SetWANProfile installs a time-varying WAN quality model (nil removes it).
// On a sharded engine the profile must not return a latency scale below 1
// (checked per sample): shrinking WAN latency would undercut the lookahead
// the window fences are built on.
func (n *Network) SetWANProfile(p WANProfile) {
	n.wanProfile = p
}

// Tap observes every message at send time (for tracing/timelines). It runs
// synchronously on the send path and must be cheap. On a sharded engine
// taps are serialized by an internal mutex — observation order across LPs
// is nondeterministic (wall-clock interleaving), so use sharded taps for
// aggregate tracing, not ordered timelines.
type Tap func(at time.Duration, m Msg, intercluster bool)

// SetTap installs the message observer (nil removes it).
func (n *Network) SetTap(tap Tap) {
	n.tap = tap
}

// callTap invokes the installed tap, serializing when LP threads run
// concurrently. Callers must have checked n.tap != nil (one branch on the
// hot path, as before).
func (n *Network) callTap(at time.Duration, m Msg, inter bool) {
	if n.sharded {
		n.tapMu.Lock()
		defer n.tapMu.Unlock()
	}
	n.tap(at, m, inter)
}

// New creates a network for the given topology and parameters.
func New(e *sim.Engine, topo cluster.Topology, par cluster.Params) *Network {
	if err := topo.Validate(); err != nil {
		panic(err)
	}
	transport := par.TransportEnabled() && topo.Clusters > 1
	defStreams := 1
	if transport && par.WANStreams > 1 {
		defStreams = par.WANStreams
	}
	n := &Network{
		e:         e,
		topo:      topo,
		par:       par,
		nodes:     make([]*node, topo.Total()),
		graph:     topo.WAN,
		nclusters: topo.Clusters,

		lanDelay:      par.LANLatency + 2*par.SoftwareOverhead,
		lanBcastDelay: par.LANBcastLatency + 2*par.SoftwareOverhead,
		feDelay:       par.FELatency + par.SoftwareOverhead,
		wanDelay:      par.SoftwareOverhead,
	}
	if n.graph == nil {
		n.classes = []linkClass{{name: "wan", lat: par.WANLatency, bw: par.WANBandwidth, streams: defStreams}}
	} else {
		n.classes = make([]linkClass, len(n.graph.Classes))
		for i, c := range n.graph.Classes {
			s := c.Streams
			if s <= 0 {
				s = defStreams
			}
			n.classes[i] = linkClass{name: c.Name, lat: c.Latency, bw: c.Bandwidth, streams: s}
		}
	}
	n.adj = make([][]adjLink, topo.Clusters)
	if n.graph != nil {
		// Declared graphs materialize eagerly: memory is linear in physical
		// links, and routing never takes the lazy-insert path.
		for _, l := range n.graph.Links {
			n.addLink(l.A, l.B, l.Class)
			n.addLink(l.B, l.A, l.Class)
		}
	}
	// agg rows materialize on a cluster's first WAN transmission (aggFor):
	// clusters that never source wide-area traffic cost one nil slot.
	n.agg = make([][]classAgg, topo.Clusters)
	n.clusterOf = make([]int, topo.Total())
	n.isGW = make([]bool, topo.Total())
	for i := range n.clusterOf {
		n.clusterOf[i] = topo.ClusterOf(cluster.NodeID(i))
		n.isGW[i] = topo.IsGateway(cluster.NodeID(i))
	}
	// One netShard per cluster under a sharded engine (block-contiguous
	// cluster → LP assignment, so shards of clusters beyond the LP count
	// share an LP thread but keep separate free lists and counters); one
	// shard shared by every cluster on a plain engine, which keeps the
	// sequential data path identical.
	n.sh = make([]*netShard, topo.Clusters)
	if lps := e.Shards(); len(lps) > 0 {
		n.sharded = true
		// Contiguous ID blocks, not round-robin: the topology DSL numbers
		// clusters depth-first, so a block keeps whole subtrees on one LP
		// and the routed distance BETWEEN LPs stays as large as the
		// topology allows. Round-robin would scatter siblings across every
		// LP and collapse each pairwise floor to the fastest access link.
		k := len(lps)
		lpOf := make([]int, topo.Clusters)
		base, rem := topo.Clusters/k, topo.Clusters%k
		for i, c := 0, 0; i < k && c < topo.Clusters; i++ {
			sz := base
			if i < rem {
				sz++
			}
			for j := 0; j < sz; j++ {
				lpOf[c] = i
				c++
			}
		}
		for c := range n.sh {
			n.sh[c] = &netShard{e: lps[lpOf[c]]}
		}
		// Per-directed-LP-pair lookahead: the minimum routed latency floor
		// between any cluster on one LP and any cluster on the other. Every
		// cross-LP event is one WAN hop of some route (multi-hop routes
		// re-enter the schedule at each intermediate gateway), and a single
		// hop costs at least its class latency + software overhead +
		// gateway cost ≥ the end-to-end floor between its endpoint clusters
		// ≥ the LP-pair minimum. Degradations, reroutes and holds may only
		// raise a route's latency (checkWANScales rejects scales below 1),
		// so the matrix stays a conservative floor under faults. LPs left
		// without clusters (more LPs than clusters) never schedule; their
		// entries just need to be positive.
		floors := n.routeFloors()
		var maxF time.Duration
		for _, row := range floors {
			for _, v := range row {
				if v > maxF {
					maxF = v
				}
			}
		}
		if maxF == 0 {
			// Degenerate single-cluster shard: no cluster pairs exist, so
			// any positive figure serves the empty LPs.
			maxF = par.WANLatency + par.SoftwareOverhead + par.GatewayCost
		}
		m := make([][]time.Duration, k)
		for i := range m {
			m[i] = make([]time.Duration, k)
			for j := range m[i] {
				if i != j {
					m[i][j] = maxF
				}
			}
		}
		for a := 0; a < topo.Clusters; a++ {
			for b := 0; b < topo.Clusters; b++ {
				la, lb := lpOf[a], lpOf[b]
				if la != lb && floors[a][b] < m[la][lb] {
					m[la][lb] = floors[a][b]
				}
			}
		}
		e.SetLookaheadMatrix(m)
	} else {
		one := &netShard{e: e}
		for c := range n.sh {
			n.sh[c] = one
		}
	}
	for i := range n.nodes {
		id := cluster.NodeID(i)
		n.nodes[i] = &node{
			id:    id,
			inbox: sim.NewMailbox(n.sh[n.clusterOf[i]].e, fmt.Sprintf("inbox-%d", i)),
		}
	}
	n.members = make([][]cluster.NodeID, topo.Clusters)
	for c := range n.members {
		n.members[c] = topo.Nodes(c)
	}
	if topo.Clusters > 1 {
		n.gateways = make([]cluster.NodeID, topo.Clusters)
		for c := range n.gateways {
			n.gateways[c] = topo.Gateway(c)
		}
	}
	if transport {
		n.xp = newXport(n)
	}
	return n
}

// addLink inserts the directed link a→b into a's adjacency list (construction
// time only; duplicates are rejected by Graph.Validate upstream).
func (n *Network) addLink(a, b, class int) {
	links := n.adj[a]
	lo := searchAdj(links, b)
	links = append(links, adjLink{})
	copy(links[lo+1:], links[lo:])
	links[lo] = adjLink{to: int32(b), class: int32(class), pipes: make([]pipe, n.classes[class].streams)}
	n.adj[a] = links
}

// searchAdj returns the insertion index of destination b in a sorted
// adjacency list (the index of the entry if present).
func searchAdj(links []adjLink, b int) int {
	lo, hi := 0, len(links)
	for lo < hi {
		mid := (lo + hi) >> 1
		if int(links[mid].to) < b {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// linkFor returns the directed WAN link cur→next. On the implicit full mesh
// links materialize on first use — a DAS-sized run touches a handful, a
// 256-cluster platform only the pairs that actually talk. The adjacency slot
// is per-source-cluster state owned by cur's LP, so lazy insertion is safe
// under a sharded engine. The returned pointer is valid for the current
// event only (a later insertion may shift entries); the pipes it carries are
// stable.
func (n *Network) linkFor(cur, next int) *adjLink {
	links := n.adj[cur]
	lo := searchAdj(links, next)
	if lo < len(links) && int(links[lo].to) == next {
		return &links[lo]
	}
	if n.graph != nil {
		panic(fmt.Sprintf("netsim: route hop %d->%d has no declared link", cur, next))
	}
	n.addLink(cur, next, 0)
	return &n.adj[cur][lo]
}

// aggFor returns cluster c's streaming aggregate for one link class, lazily
// materializing the cluster's row (per-source-cluster state owned by c's LP,
// like the adjacency list).
func (n *Network) aggFor(c, class int) *classAgg {
	a := n.agg[c]
	if a == nil {
		a = make([]classAgg, len(n.classes))
		n.agg[c] = a
	}
	return &a[class]
}

// nextHop returns the next cluster on the route cur→cd: the destination
// itself on the implicit full mesh, otherwise the link graph's next hop.
func (n *Network) nextHop(cur, cd int) int {
	if n.graph == nil {
		return cd
	}
	return n.graph.Next(cur, cd)
}

// Engine returns the underlying simulation engine (the root when sharded).
func (n *Network) Engine() *sim.Engine { return n.e }

// EngineFor returns the engine that executes cluster c's events: the LP
// owning the cluster when sharded, otherwise the lone engine. Processes and
// timers belonging to a cluster's nodes must be scheduled on this engine.
func (n *Network) EngineFor(c int) *sim.Engine { return n.sh[c].e }

// Topology returns the network's topology.
func (n *Network) Topology() cluster.Topology { return n.topo }

// Params returns the network's performance parameters.
func (n *Network) Params() cluster.Params { return n.par }

// Stats returns the traffic statistics collected so far. On a sharded
// engine it returns a merged snapshot (clusters meter traffic separately;
// counter sums are order-independent, so the merge is deterministic) — call
// it again after more traffic rather than holding the pointer, and use
// ResetStats (not Stats().Reset()) to zero the counters: resetting the
// merged snapshot would leave the per-shard counters intact.
func (n *Network) Stats() *Stats {
	if !n.sharded {
		return &n.sh[0].stats
	}
	n.merged = Stats{}
	for _, sh := range n.sh {
		for scope := 0; scope < 2; scope++ {
			for k := 0; k < NumKinds; k++ {
				n.merged.counts[scope][k].Add(sh.stats.counts[scope][k])
			}
		}
		n.merged.frames.Add(sh.stats.frames)
		n.merged.framedMsgs += sh.stats.framedMsgs
		n.merged.reroutes += sh.stats.reroutes
		n.merged.heldMsgs += sh.stats.heldMsgs
		n.merged.holdDrops += sh.stats.holdDrops
	}
	return &n.merged
}

// ResetStats zeroes the network's traffic counters (used to exclude warm-up
// or setup traffic), reaching the per-shard counters that a sharded Stats()
// snapshot merely merges.
func (n *Network) ResetStats() {
	for _, sh := range n.sh {
		sh.stats = Stats{}
	}
	for c := range n.agg {
		for k := range n.agg[c] {
			n.agg[c][k] = classAgg{}
		}
	}
	n.merged = Stats{}
}

// SetHandler installs the delivery callback for a node, replacing inbox
// delivery. Pass nil to restore inbox delivery.
func (n *Network) SetHandler(id cluster.NodeID, h Handler) {
	n.nodes[id].handler = h
}

// Inbox returns the default delivery mailbox of a node (used when no
// handler is installed).
func (n *Network) Inbox(id cluster.NodeID) *sim.Mailbox { return n.nodes[id].inbox }

// deliver hands msg to its destination at the current virtual time.
func (n *Network) deliver(m Msg) {
	dst := n.nodes[m.To]
	if dst.handler != nil {
		dst.handler(m)
		return
	}
	dst.inbox.Put(m)
}

// deliverAt schedules delivery of m at absolute virtual time at, reusing a
// pooled delivery record instead of allocating a per-message closure. Every
// caller already executes on the destination cluster's LP (local traffic
// stays on one LP; WAN traffic crossed over in remoteGW), so the schedule
// is a local At and the record cycles through a single shard's free list.
func (n *Network) deliverAt(at time.Duration, m Msg) {
	sh := n.sh[n.clusterOf[m.To]]
	var d *delivery
	if k := len(sh.pool); k > 0 {
		d = sh.pool[k-1]
		sh.pool = sh.pool[:k-1]
	} else {
		d = &delivery{n: n, sh: sh}
		d.fn = d.run
	}
	d.m = m
	sh.e.At(at, d.fn)
}

// serialize reserves the sender-side NIC for size bytes at rate bw starting
// no earlier than now, returning the serialization finish time.
func serialize(free *time.Duration, now time.Duration, size int, bw float64) time.Duration {
	start := now
	if *free > start {
		start = *free
	}
	end := start + bwTime(size, bw)
	*free = end
	return end
}

// bwTime converts a byte count and a bytes/second rate to a duration.
func bwTime(size int, bw float64) time.Duration {
	return time.Duration(float64(size) / bw * float64(time.Second))
}

// Send transmits m asynchronously; delivery happens at the simulated arrival
// time. It never blocks and is callable from process or event context.
func (n *Network) Send(m Msg) {
	src := n.sh[n.clusterOf[m.From]]
	if m.From == m.To {
		if n.tap != nil {
			n.callTap(src.e.Now(), m, false)
		}
		// Loopback: modelled as pure software overhead.
		src.stats.count(scopeIntra, m.Kind, m.Size)
		n.deliverAt(src.e.Now()+n.par.SoftwareOverhead, m)
		return
	}
	inter := n.clusterOf[m.From] != n.clusterOf[m.To]
	if n.tap != nil {
		n.callTap(src.e.Now(), m, inter)
	}
	if !inter {
		n.sendLAN(m)
		return
	}
	n.sendWAN(m)
}

// sendLAN delivers an intracluster message over the fast local network.
func (n *Network) sendLAN(m Msg) {
	sh := n.sh[n.clusterOf[m.From]]
	sh.stats.count(scopeIntra, m.Kind, m.Size)
	now := sh.e.Now()
	src := n.nodes[m.From]
	end := serialize(&src.nicFree, now, m.Size, n.par.LANBandwidth)
	n.deliverAt(end+n.lanDelay, m)
}

// wanTransit is a recyclable WAN forwarding record. Like the delivery
// record, its stage closures are bound once when the record is created and
// records are pooled, so steady intercluster traffic schedules its gateway
// hops without allocating per message. On a multi-hop route the same record
// re-enters stage fn1 at every intermediate gateway, advancing cur.
type wanTransit struct {
	n      *Network
	m      Msg
	cs, cd int
	cur    int           // cluster whose gateway forwards next (route position)
	extra  time.Duration // fault-injected reorder delay, added to arrival
	dup    bool          // this transit is an injected duplicate copy
	fn1    func()        // bound to (*wanTransit).forward once
	fn2    func()        // bound to (*wanTransit).remoteGW once
	fn3    func()        // bound to (*wanTransit).enqueue once (transport layer)
}

// releaseTo returns the record to sh's pool with its fault state cleared.
// The shard is the one whose LP is executing the release (the source cluster
// in faulted, the destination cluster in remoteGW), so records migrate
// between cluster pools but each pool is touched by a single LP thread.
func (t *wanTransit) releaseTo(sh *netShard) {
	t.m = Msg{} // drop the payload reference while pooled
	t.extra = 0
	t.dup = false
	sh.wanPool = append(sh.wanPool, t)
}

// faulted applies the installed fault policy at the local gateway. It
// reports true when the message was consumed (lost to a crashed gateway or
// dropped by the policy), in which case the record has been released.
func (t *wanTransit) faulted(now time.Duration) bool {
	n := t.n
	sh := n.sh[t.cs]
	if n.fault.GatewayDown(now, t.cs, t.m) {
		// The local gateway is crashed: the message never reaches the WAN.
		t.releaseTo(sh)
		return true
	}
	act, delay := n.fault.WANTransit(now, t.cs, t.cd, t.m)
	switch act {
	case FaultDrop:
		t.releaseTo(sh)
		return true
	case FaultDuplicate:
		// Schedule a second transit of the same message. It enters the
		// pipe right behind this copy and is marked dup so the policy is
		// not consulted again (no duplicate cascades).
		d := n.getTransit(sh)
		d.m, d.cs, d.cd, d.cur, d.dup = t.m, t.cs, t.cd, t.cs, true
		sh.e.At(now, d.fn1)
	}
	t.extra = delay
	return false
}

// forward is stage 2 of a WAN send: a gateway's forwarding stage, then the
// next WAN link on the route (a FIFO resource per directed link). On the
// implicit full mesh this runs exactly once, at the source cluster's gateway
// (the classic localGW stage); on a declared link graph the record hops
// store-and-forward through every intermediate gateway, re-entering this
// stage on each owning cluster's LP.
func (t *wanTransit) forward() {
	n := t.n
	sh := n.sh[t.cur]
	now := sh.e.Now()
	if n.fault != nil {
		if t.cur != t.cs || t.dup {
			// Intermediate gateways (and duplicate copies at the source)
			// consult only gateway liveness: drop/duplicate verdicts apply
			// once, where the message enters the WAN, so faults cannot
			// cascade along a route.
			if n.fault.GatewayDown(now, t.cur, t.m) {
				t.releaseTo(sh)
				return
			}
		} else if t.faulted(now) {
			return
		}
	}
	if n.linkFault != nil {
		next, ok := n.routeOrHold(sh, now, t.cur, t.cd, holdItem{t: t, at: now})
		if !ok {
			return // parked in a hold queue (or dropped on overflow)
		}
		t.transmitOn(sh, now, next)
		return
	}
	t.transmitOn(sh, now, n.nextHop(t.cur, t.cd))
}

// transmitOn runs the gateway forwarding stage and puts the message on the
// pipe toward next (the caller's routing choice), then schedules the
// cross-LP hop.
func (t *wanTransit) transmitOn(sh *netShard, now time.Duration, next int) {
	n := t.n
	if n.par.GatewayCost > 0 {
		// The gateway's protocol stack forwards one message at a time.
		gw := n.nodes[n.gateways[t.cur]]
		if gw.gwFree < now {
			gw.gwFree = now
		}
		gw.gwFree += n.par.GatewayCost
		now = gw.gwFree
	}
	// Plain (unframed) messages always use stream 0: orca's ordering and ARQ
	// layers rely on FIFO per directed channel, which striping would break.
	l := n.linkFor(t.cur, next)
	p := &l.pipes[0]
	wait := p.free - now
	if wait < 0 {
		wait = 0
	}
	if wait > p.maxWait {
		p.maxWait = wait
	}
	start := now + wait
	// Sample WAN quality at the instant transmission actually begins:
	// a message queued behind earlier traffic departs at p.free, and a
	// time-varying profile (congestion wave) must apply there, not at
	// the instant the message joined the queue.
	lat, bw := n.wanQuality(start, &n.classes[l.class])
	xmit := bwTime(t.m.Size, bw)
	depart := start + xmit
	p.free = depart
	p.busy += xmit
	p.bytes += int64(t.m.Size)
	p.msgs++
	n.aggFor(t.cur, int(l.class)).observe(wait, xmit, int64(t.m.Size), 1, false)
	// The cross-LP hop: arrival is depart+lat+wanDelay with depart >= now and
	// lat at least the link's class latency (sharded profiles and policies
	// may only stretch it — latency scales below 1 are rejected per sample),
	// so the delta is always >= the lookahead — the min class latency plus
	// software overhead — and the schedule is legal in any window. On a
	// plain engine AtShard is exactly At.
	at := depart + lat + n.wanDelay
	if at < p.arrive {
		at = p.arrive
	}
	p.arrive = at
	if next == t.cd {
		sh.e.AtShard(n.sh[t.cd].e, at+t.extra, t.fn2)
		return
	}
	t.cur = next
	sh.e.AtShard(n.sh[next].e, at, t.fn1)
}

// remoteGW is stage 3: remote gateway forwarding, then Fast Ethernet to the
// destination node (skipped when the destination is the gateway). The record
// recycles itself here; delivery continues through a pooled delivery record.
func (t *wanTransit) remoteGW() {
	n, m, cd := t.n, t.m, t.cd
	sh := n.sh[cd]
	t.releaseTo(sh)
	if n.fault != nil && n.fault.GatewayDown(sh.e.Now(), cd, m) {
		// The remote gateway is crashed: the message crossed the WAN but is
		// lost at the receiving side. Duplicates are subject to this too.
		return
	}
	if n.isGW[m.To] {
		n.deliver(m)
		return
	}
	now := sh.e.Now()
	gwRemote := n.nodes[n.gateways[cd]]
	if n.par.GatewayCost > 0 {
		if gwRemote.gwFree < now {
			gwRemote.gwFree = now
		}
		gwRemote.gwFree += n.par.GatewayCost
		now = gwRemote.gwFree
	}
	end := serialize(&gwRemote.nicFree, now, m.Size, n.par.FEBandwidth)
	n.deliverAt(end+n.feDelay, m)
}

// sendWAN routes an intercluster message through both gateways and the WAN
// pipe for the directed cluster pair.
func (n *Network) sendWAN(m Msg) {
	sh := n.sh[n.clusterOf[m.From]]
	sh.stats.count(scopeInter, m.Kind, m.Size)
	now := sh.e.Now()

	// Leg 1: node → local gateway over Fast Ethernet (skipped when the
	// sender is the gateway itself, e.g. forwarded protocol traffic).
	var atLocalGW time.Duration
	if n.isGW[m.From] {
		atLocalGW = now
	} else {
		src := n.nodes[m.From]
		end := serialize(&src.nicFree, now, m.Size, n.par.FEBandwidth)
		atLocalGW = end + n.feDelay
	}

	t := n.getTransit(sh)
	t.m = m
	t.cs, t.cd = n.clusterOf[m.From], n.clusterOf[m.To]
	t.cur = t.cs
	if n.xp != nil {
		// Transport layer on: the message joins its directed pair's egress
		// queue at the local gateway instead of transmitting on its own.
		sh.e.At(atLocalGW, t.fn3)
		return
	}
	sh.e.At(atLocalGW, t.fn1) // same cluster: sender and its gateway share an LP
}

// getTransit pops a pooled wanTransit record from sh (or creates one with
// its stage closures bound). Fault state is cleared at release, so a pooled
// record is ready to reuse as-is.
func (n *Network) getTransit(sh *netShard) *wanTransit {
	if k := len(sh.wanPool); k > 0 {
		t := sh.wanPool[k-1]
		sh.wanPool = sh.wanPool[:k-1]
		return t
	}
	t := &wanTransit{n: n}
	t.fn1 = t.forward
	t.fn2 = t.remoteGW
	t.fn3 = t.enqueue
	return t
}

// wanQuality evaluates the latency and bandwidth of one link class in effect
// at time at, composing the class parameters with the installed WANProfile
// and fault policy. Samples are validated: a negative latency scale or
// non-positive bandwidth scale would silently corrupt serialize's arithmetic
// (negative or infinite transmission times), so bad samples panic with the
// source named.
func (n *Network) wanQuality(at time.Duration, cl *linkClass) (time.Duration, float64) {
	lat, bw := cl.lat, cl.bw
	if n.wanProfile != nil {
		ls, bs := n.wanProfile(at)
		checkWANScales("WANProfile", n.sharded, at, ls, bs)
		lat, bw = time.Duration(float64(lat)*ls), bw*bs
	}
	if n.fault != nil {
		ls, bs := n.fault.WANQuality(at)
		checkWANScales("FaultPolicy", n.sharded, at, ls, bs)
		lat, bw = time.Duration(float64(lat)*ls), bw*bs
	}
	return lat, bw
}

// checkWANScales rejects WAN quality samples that would corrupt transmission
// arithmetic. NaN fails both comparisons' complements, so it is caught too.
// On a sharded engine a latency scale below 1 is also rejected: it would
// shrink effective WAN latency under the lookahead the window fences are
// built on (bandwidth scales only move the departure instant, so any
// positive value is safe).
func checkWANScales(src string, sharded bool, at time.Duration, ls, bs float64) {
	if !(ls >= 0) || !(bs > 0) {
		panic(fmt.Sprintf("netsim: %s returned invalid WAN scales (latency %g, bandwidth %g) at %v; latency scale must be >= 0 and bandwidth scale > 0", src, ls, bs, at))
	}
	if sharded && !(ls >= 1) {
		panic(fmt.Sprintf("netsim: %s returned latency scale %g at %v; scales below 1 would undercut the sharded engine's WAN lookahead", src, ls, at))
	}
}

// PipeReport describes the load on one directed WAN link over a run. When
// the transport layer stripes a pair over parallel pipes, each stream gets
// its own report; Stream is 0 otherwise.
type PipeReport struct {
	From, To    int           // cluster indices
	Stream      int           // stream index within the directed pair
	Msgs        int64         // application messages carried
	Frames      int64         // coalesced frames transmitted (0 when transport is off)
	Bytes       int64         // payload bytes transmitted
	Busy        time.Duration // cumulative transmission time
	MaxQueueing time.Duration // worst delay a transmission spent queued behind others
}

// Utilization reports the link's duty cycle over the elapsed virtual time.
func (r PipeReport) Utilization(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(r.Busy) / float64(elapsed)
}

// Packing reports the link's average messages per frame (0 when the
// transport layer was off).
func (r PipeReport) Packing() float64 {
	if r.Frames == 0 {
		return 0
	}
	return float64(r.Msgs) / float64(r.Frames)
}

// PipeReports returns per-directed-WAN-link load reports, ordered by
// (from, to, stream). Links that carried no traffic are omitted. On a
// multi-hop platform each physical link reports the traffic it forwarded,
// so one end-to-end message appears on every link of its route.
func (n *Network) PipeReports() []PipeReport {
	var out []PipeReport
	for cs := range n.adj {
		for i := range n.adj[cs] {
			l := &n.adj[cs][i]
			for k := range l.pipes {
				p := &l.pipes[k]
				if p.msgs == 0 {
					continue
				}
				out = append(out, PipeReport{
					From: cs, To: int(l.to), Stream: k,
					Msgs: p.msgs, Frames: p.frames, Bytes: p.bytes,
					Busy: p.busy, MaxQueueing: p.maxWait,
				})
			}
		}
	}
	return out
}

// BcastLocal physically broadcasts m.Payload to every compute node of the
// sender's cluster (including the sender) using the LAN's hardware multicast:
// the sender serializes once, all members receive after the broadcast
// latency. Gateways do not receive local broadcasts.
func (n *Network) BcastLocal(from cluster.NodeID, kind Kind, size int, payload any) {
	sh := n.sh[n.clusterOf[from]]
	if n.tap != nil {
		n.callTap(sh.e.Now(), Msg{From: from, To: from, Kind: kind, Size: size}, false)
	}
	sh.stats.count(scopeIntra, kind, size)
	now := sh.e.Now()
	src := n.nodes[from]
	end := serialize(&src.nicFree, now, size, n.par.LANBandwidth)
	arrive := end + n.lanBcastDelay
	for _, id := range n.members[n.clusterOf[from]] {
		n.deliverAt(arrive, Msg{From: from, To: id, Kind: kind, Size: size, Payload: payload})
	}
}
