package netsim

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/rng"
	"albatross/internal/sim"
)

// transportParams enables coalescing and striping on top of the round-number
// test parameters.
func transportParams() cluster.Params {
	p := testParams()
	p.MaxFrameBytes = 4000
	p.CoalesceWindow = 200 * time.Microsecond
	p.WANStreams = 2
	return p
}

func buildWith(clusters, npc int, par cluster.Params) (*sim.Engine, *Network) {
	e := sim.NewEngine()
	n := New(e, cluster.Topology{Clusters: clusters, NodesPerCluster: npc}, par)
	return e, n
}

// TestCoalescedSingleMessageDelivery pins the exact timing of a lone framed
// message: it waits the full CoalesceWindow for companions that never come,
// then pays the usual WAN path as a one-message frame.
func TestCoalescedSingleMessageDelivery(t *testing.T) {
	par := testParams()
	par.CoalesceWindow = 200 * time.Microsecond
	e, n := buildWith(2, 2, par)
	if !n.TransportActive() {
		t.Fatal("transport layer not active")
	}
	// FE: 100us ser + 50us lat + 1us ovh = 151us to the local gateway.
	// Coalescing: +200us window before the frame flushes.
	// WAN: 1000us ser + 1000us lat + 1us ovh = 2001us to the remote gateway.
	// FE: 100us ser + 50us lat + 1us ovh = 151us to the node.
	n.Send(Msg{From: 0, To: 2, Kind: KindData, Size: 1000})
	got := recvTime(t, e, n, 2)
	want := 151*time.Microsecond + 200*time.Microsecond + 2001*time.Microsecond + 151*time.Microsecond
	if got != want {
		t.Fatalf("coalesced delivery at %v, want %v", got, want)
	}
	s := n.Stats()
	if s.WANFrames().Msgs != 1 || s.WANFrames().Bytes != 1000 || s.FramedMsgs() != 1 {
		t.Fatalf("frame stats %+v / %d framed", s.WANFrames(), s.FramedMsgs())
	}
}

// TestCoalescingPacksBurst: a burst of small messages from several senders
// leaves as one frame — one WAN transmission instead of eight.
func TestCoalescingPacksBurst(t *testing.T) {
	par := testParams()
	par.CoalesceWindow = time.Millisecond
	e, n := buildWith(2, 4, par)
	for i := 0; i < 4; i++ {
		for j := 0; j < 2; j++ {
			n.Send(Msg{From: cluster.NodeID(i), To: cluster.NodeID(4 + i), Kind: KindData, Size: 100})
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 4; i < 8; i++ {
		if got := n.Inbox(cluster.NodeID(i)).Len(); got != 2 {
			t.Fatalf("node %d got %d messages, want 2", i, got)
		}
	}
	s := n.Stats()
	if s.WANFrames().Msgs != 1 || s.FramedMsgs() != 8 {
		t.Fatalf("got %d frames / %d framed msgs, want 1 / 8", s.WANFrames().Msgs, s.FramedMsgs())
	}
	if pr := s.PackingRatio(); pr != 8 {
		t.Fatalf("packing ratio %v, want 8", pr)
	}
	reps := n.PipeReports()
	if len(reps) != 1 || reps[0].Frames != 1 || reps[0].Msgs != 8 || reps[0].Bytes != 800 {
		t.Fatalf("pipe reports %+v, want one pipe with 1 frame / 8 msgs / 800 bytes", reps)
	}
	if p := reps[0].Packing(); p != 8 {
		t.Fatalf("pipe packing %v, want 8", p)
	}
	if !strings.Contains(s.String(), "frames: 1/") {
		t.Fatalf("Stats.String does not report frames: %q", s.String())
	}
}

// TestMaxFrameBytesFlushesEarly: the size bound seals a frame before the
// window expires; the remainder leaves in a second, timer-flushed frame.
func TestMaxFrameBytesFlushesEarly(t *testing.T) {
	par := testParams()
	par.CoalesceWindow = 10 * time.Millisecond
	par.MaxFrameBytes = 1000
	e, n := buildWith(2, 4, par)
	// Four 400-byte messages reach the gateway at the same instant; the
	// third crosses the 1000-byte bound and seals a three-message frame,
	// the fourth starts a new frame that only the window timer flushes.
	for i := 0; i < 4; i++ {
		n.Send(Msg{From: cluster.NodeID(i), To: 4, Kind: KindData, Size: 400})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := n.Inbox(4).Len(); got != 4 {
		t.Fatalf("delivered %d messages, want 4", got)
	}
	s := n.Stats()
	if s.WANFrames().Msgs != 2 || s.FramedMsgs() != 4 || s.WANFrames().Bytes != 1600 {
		t.Fatalf("got %d frames / %d msgs / %d bytes, want 2 / 4 / 1600",
			s.WANFrames().Msgs, s.FramedMsgs(), s.WANFrames().Bytes)
	}
}

// TestStripingHoldsEarlyFrames pins in-order reassembly: a small frame on
// stream 1 overtakes a large frame on stream 0 across the WAN but must not
// overtake it at delivery.
func TestStripingHoldsEarlyFrames(t *testing.T) {
	par := testParams()
	par.WANStreams = 2 // striping only: frames coalesce per instant
	e, n := buildWith(2, 2, par)
	// Sends originate at the gateway (node 4) so enqueue times are exact.
	e.At(0, func() {
		n.Send(Msg{From: 4, To: 2, Kind: KindData, Size: 10000, Payload: "a"})
	})
	e.At(time.Microsecond, func() {
		n.Send(Msg{From: 4, To: 2, Kind: KindData, Size: 100, Payload: "b"})
	})
	var order []string
	var arrivals []time.Duration
	e.Go("r", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			order = append(order, n.Inbox(2).Get(p).(Msg).Payload.(string))
			arrivals = append(arrivals, p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != "a" || order[1] != "b" {
		t.Fatalf("striping reordered delivery: %v", order)
	}
	// Frame a: flush 0, 10000us xmit + 1001us -> remote 11001us, FE 1000us
	// ser + 51us -> 12052us. Frame b crossed by 1102us but is held; it
	// unpacks when a's gap fills, serializing behind a on the gateway NIC:
	// 12011us + 51us = 12062us.
	wantA, wantB := 12052*time.Microsecond, 12062*time.Microsecond
	if arrivals[0] != wantA || arrivals[1] != wantB {
		t.Fatalf("arrivals %v, want [%v %v]", arrivals, wantA, wantB)
	}
	reps := n.PipeReports()
	if len(reps) != 2 || reps[0].Stream != 0 || reps[1].Stream != 1 {
		t.Fatalf("pipe reports %+v, want streams 0 and 1", reps)
	}
	if reps[0].Bytes != 10000 || reps[1].Bytes != 100 {
		t.Fatalf("stream loads %+v", reps)
	}
}

// TestStripingRoundRobin: consecutive frames cycle deterministically over
// the configured streams.
func TestStripingRoundRobin(t *testing.T) {
	par := testParams()
	par.WANStreams = 3
	e, n := buildWith(2, 2, par)
	for i := 0; i < 6; i++ {
		at := time.Duration(i) * 5 * time.Millisecond // far apart: one frame each
		e.At(at, func() {
			n.Send(Msg{From: 4, To: 2, Kind: KindData, Size: 100})
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	reps := n.PipeReports()
	if len(reps) != 3 {
		t.Fatalf("got %d stream reports, want 3: %+v", len(reps), reps)
	}
	for k, r := range reps {
		if r.Stream != k || r.Frames != 2 || r.Msgs != 2 {
			t.Fatalf("stream %d report %+v, want 2 frames / 2 msgs", k, r)
		}
	}
}

// transportWorkload drives a deterministic mixed burst through a network and
// returns everything observable: elapsed, dispatched, stats and pipe loads.
func transportWorkload(t *testing.T, shards int) (time.Duration, uint64, string, []PipeReport) {
	t.Helper()
	root := sim.NewEngine()
	if shards > 0 {
		root.Shard(shards)
	}
	n := New(root, cluster.Topology{Clusters: 2, NodesPerCluster: 3}, transportParams())
	for c := 0; c < 2; c++ {
		c := c
		for i := 0; i < 3; i++ {
			src := cluster.NodeID(c*3 + i)
			dst := cluster.NodeID(((c*3+i)+3) % 6) // cross-cluster partner
			for k := 0; k < 5; k++ {
				size := 100 + 37*int(src) + 211*k
				at := time.Duration(k) * 300 * time.Microsecond
				n.EngineFor(c).At(at, func() {
					n.Send(Msg{From: src, To: dst, Kind: KindData, Size: size})
				})
			}
		}
	}
	if err := root.Run(); err != nil {
		t.Fatal(err)
	}
	elapsed, dispatched := root.Now(), root.Dispatched()
	stats := n.Stats().String()
	reps := n.PipeReports()
	root.Shutdown()
	return elapsed, dispatched, stats, reps
}

// TestTransportDeterminism: three identical runs with coalescing + striping
// must report byte-identical results.
func TestTransportDeterminism(t *testing.T) {
	e1, d1, s1, r1 := transportWorkload(t, 0)
	for rep := 0; rep < 2; rep++ {
		e2, d2, s2, r2 := transportWorkload(t, 0)
		if e1 != e2 || d1 != d2 || s1 != s2 || !reflect.DeepEqual(r1, r2) {
			t.Fatalf("rep %d differs: %v/%d/%q vs %v/%d/%q", rep, e1, d1, s1, e2, d2, s2)
		}
	}
}

// TestTransportShardedMatchesSequential: the transport layer keeps all its
// state per-LP, so a sharded run must be byte-identical to the sequential
// one — same elapsed time, event count, merged stats and pipe loads.
func TestTransportShardedMatchesSequential(t *testing.T) {
	e1, d1, s1, r1 := transportWorkload(t, 0)
	e2, d2, s2, r2 := transportWorkload(t, 2)
	if e1 != e2 || d1 != d2 || s1 != s2 || !reflect.DeepEqual(r1, r2) {
		t.Fatalf("sharded transport diverges:\nsequential %v/%d/%q %+v\nsharded    %v/%d/%q %+v",
			e1, d1, s1, r1, e2, d2, s2, r2)
	}
}

// TestTransportShardedLookaheadGate: if an operator raises the lookahead
// beyond what the WAN paths guarantee, SetLookahead must refuse immediately,
// naming the LP pair whose route-derived floor would be overrun — not let
// the run start and fail at some later fence.
func TestTransportShardedLookaheadGate(t *testing.T) {
	root := sim.NewEngine()
	root.Shard(2)
	n := New(root, cluster.Topology{Clusters: 2, NodesPerCluster: 2}, transportParams())
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected a route-floor panic from SetLookahead")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "route-derived lookahead floor") || !strings.Contains(msg, "LP pair") {
			t.Fatalf("unexpected panic %v", r)
		}
		root.Shutdown()
	}()
	root.SetLookahead(5 * time.Millisecond) // undercut by ~1ms WAN route floors
	_ = n                                   // unreachable
}

// TestFrameFaultsRuleOnWireUnits: fault policies see one KindFrame message
// per coalesced transmission, not the packed application messages.
func TestFrameFaultsRuleOnWireUnits(t *testing.T) {
	par := testParams()
	par.CoalesceWindow = time.Millisecond
	e, n := buildWith(2, 2, par)
	var wire []Msg
	n.SetFaultPolicy(&testPolicy{
		transit: func(_ time.Duration, _, _ int, m Msg) (FaultAction, time.Duration) {
			wire = append(wire, m)
			return FaultDeliver, 0
		},
	})
	n.Send(Msg{From: 0, To: 2, Kind: KindData, Size: 300})
	n.Send(Msg{From: 1, To: 2, Kind: KindData, Size: 500})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(wire) != 1 {
		t.Fatalf("policy consulted %d times, want once per frame", len(wire))
	}
	if wire[0].Kind != KindFrame || wire[0].Size != 800 {
		t.Fatalf("wire unit %v, want frame of 800 bytes", wire[0])
	}
	if wire[0].From != 4 || wire[0].To != 5 {
		t.Fatalf("wire unit endpoints %v, want gateway 4 > gateway 5", wire[0])
	}
}

// TestFrameDropLosesWholeFrameWithoutWedging: a dropped frame consumes no
// sequence number, so later frames still deliver.
func TestFrameDropLosesWholeFrameWithoutWedging(t *testing.T) {
	par := testParams()
	par.CoalesceWindow = 100 * time.Microsecond
	e, n := buildWith(2, 2, par)
	first := true
	n.SetFaultPolicy(&testPolicy{
		transit: func(time.Duration, int, int, Msg) (FaultAction, time.Duration) {
			if first {
				first = false
				return FaultDrop, 0
			}
			return FaultDeliver, 0
		},
	})
	n.Send(Msg{From: 0, To: 2, Kind: KindData, Size: 100, Payload: "lost"})
	e.At(10*time.Millisecond, func() {
		n.Send(Msg{From: 0, To: 2, Kind: KindData, Size: 100, Payload: "ok"})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := n.Inbox(2).Len(); got != 1 {
		t.Fatalf("%d messages delivered, want only the post-drop one", got)
	}
}

// TestFrameDuplicateDeliversOnce: both frame copies pay for bandwidth, but
// reassembly discards the second by sequence number — framing gives the
// duplicate-suppression the per-message path lacks.
func TestFrameDuplicateDeliversOnce(t *testing.T) {
	par := testParams()
	par.CoalesceWindow = 100 * time.Microsecond
	e, n := buildWith(2, 2, par)
	n.SetFaultPolicy(&testPolicy{
		transit: func(time.Duration, int, int, Msg) (FaultAction, time.Duration) {
			return FaultDuplicate, 0
		},
	})
	n.Send(Msg{From: 0, To: 2, Kind: KindData, Size: 300})
	n.Send(Msg{From: 1, To: 2, Kind: KindData, Size: 300})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := n.Inbox(2).Len(); got != 2 {
		t.Fatalf("%d deliveries, want 2 (one per app message)", got)
	}
	s := n.Stats()
	if s.WANFrames().Msgs != 2 || s.WANFrames().Bytes != 1200 {
		t.Fatalf("frame stats %+v, want both copies metered", s.WANFrames())
	}
}

// TestFrameRemoteCrashResyncsSequence: a frame lost to a crashed remote
// gateway loses its payload but still consumes its sequence number, so the
// stream does not wedge behind the loss.
func TestFrameRemoteCrashResyncsSequence(t *testing.T) {
	par := testParams()
	par.CoalesceWindow = 100 * time.Microsecond
	e, n := buildWith(2, 2, par)
	n.SetFaultPolicy(&testPolicy{
		gwDown: func(at time.Duration, c int, _ Msg) bool {
			return c == 1 && at < 5*time.Millisecond
		},
	})
	n.Send(Msg{From: 0, To: 2, Kind: KindData, Size: 100, Payload: "lost"})
	e.At(10*time.Millisecond, func() {
		n.Send(Msg{From: 0, To: 2, Kind: KindData, Size: 100, Payload: "ok"})
	})
	var got []string
	e.Go("r", func(p *sim.Proc) {
		got = append(got, n.Inbox(2).Get(p).(Msg).Payload.(string))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "ok" {
		t.Fatalf("deliveries %v, want just the post-crash message", got)
	}
}

// TestFrameLocalCrashLosesFrame: a crashed local gateway consumes the frame
// before the WAN; nothing crosses and later traffic is unaffected.
func TestFrameLocalCrashLosesFrame(t *testing.T) {
	par := testParams()
	par.CoalesceWindow = 100 * time.Microsecond
	e, n := buildWith(2, 2, par)
	n.SetFaultPolicy(&testPolicy{
		gwDown: func(at time.Duration, c int, _ Msg) bool {
			return c == 0 && at < 5*time.Millisecond
		},
	})
	n.Send(Msg{From: 0, To: 2, Kind: KindData, Size: 100})
	e.At(10*time.Millisecond, func() {
		n.Send(Msg{From: 0, To: 2, Kind: KindData, Size: 100})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := n.Inbox(2).Len(); got != 1 {
		t.Fatalf("%d deliveries, want 1", got)
	}
	s := n.Stats()
	if s.WANFrames().Msgs != 1 {
		t.Fatalf("%d frames crossed the WAN, want 1 (the crash consumed the other)", s.WANFrames().Msgs)
	}
}

// TestFIFOPerPathTransport: the per-path FIFO guarantee survives coalescing
// and striping, whatever the message sizes.
func TestFIFOPerPathTransport(t *testing.T) {
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		par := transportParams()
		e, n := buildWith(2, 2, par)
		var dst cluster.NodeID = 3
		const k = 20
		for i := 0; i < k; i++ {
			n.Send(Msg{From: 0, To: dst, Kind: KindData, Size: 1 + r.Intn(5000), Payload: i})
		}
		ok := true
		e.Go("r", func(p *sim.Proc) {
			for i := 0; i < k; i++ {
				m := n.Inbox(dst).Get(p).(Msg)
				if m.Payload.(int) != i {
					ok = false
				}
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestConservationTransport: coalescing loses and duplicates nothing under
// random traffic (every armed frame eventually flushes).
func TestConservationTransport(t *testing.T) {
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		par := transportParams()
		e, n := buildWith(3, 3, par)
		total := 50
		sent := make(map[int]int)
		for i := 0; i < total; i++ {
			from := cluster.NodeID(r.Intn(9))
			to := cluster.NodeID(r.Intn(9))
			n.Send(Msg{From: from, To: to, Kind: KindData, Size: 1 + r.Intn(1000)})
			sent[int(to)]++
		}
		if err := e.Run(); err != nil {
			return false
		}
		for id, want := range sent {
			if n.Inbox(cluster.NodeID(id)).Len() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestMaxQueueingExactBurst pins pipe.maxWait arithmetic: k same-size
// messages entering an idle pipe together queue for exactly (k-1)
// transmission times at the worst.
func TestMaxQueueingExactBurst(t *testing.T) {
	e, n := build(2, 2)
	// Sends originate at the gateway (node 4), so all three hit the pipe at
	// t=0; each 1000-byte transmission takes 1ms.
	for i := 0; i < 3; i++ {
		n.Send(Msg{From: 4, To: 2, Kind: KindData, Size: 1000})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	reps := n.PipeReports()
	if len(reps) != 1 {
		t.Fatalf("got %d pipe reports, want 1", len(reps))
	}
	if want := 2 * time.Millisecond; reps[0].MaxQueueing != want {
		t.Fatalf("max queueing %v, want exactly %v", reps[0].MaxQueueing, want)
	}
	if reps[0].Busy != 3*time.Millisecond {
		t.Fatalf("busy %v, want 3ms", reps[0].Busy)
	}
}

// TestGatewayCostForwardingHorizonExact pins the gwFree serialization
// arithmetic at both gateways: three zero-byte messages arriving together
// are forwarded 500us apart by each gateway in turn.
func TestGatewayCostForwardingHorizonExact(t *testing.T) {
	e := sim.NewEngine()
	par := testParams()
	par.GatewayCost = 500 * time.Microsecond
	n := New(e, cluster.Topology{Clusters: 2, NodesPerCluster: 3}, par)
	// Zero-size messages: no serialization anywhere, only latencies and the
	// forwarding cost. Each reaches the local gateway at 51us.
	for i := 0; i < 3; i++ {
		n.Send(Msg{From: cluster.NodeID(i), To: 3, Kind: KindData, Size: 0})
	}
	var arrivals []time.Duration
	e.Go("r", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			n.Inbox(3).Get(p)
			arrivals = append(arrivals, p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Message i leaves the local gateway at 51us + (i+1)*500us, crosses the
	// WAN (+1001us), then queues on the remote gateway's horizon: the first
	// arrival sets gwFree to 2052us, each later message lands exactly when
	// the previous forwarding slot ends, +51us Fast Ethernet to the node.
	want := []time.Duration{2103 * time.Microsecond, 2603 * time.Microsecond, 3103 * time.Microsecond}
	if !reflect.DeepEqual(arrivals, want) {
		t.Fatalf("arrivals %v, want %v", arrivals, want)
	}
}

// TestResetStatsSharded: Stats() on a sharded engine returns a merged
// snapshot, so resetting the snapshot must not be the API — ResetStats has
// to reach the per-shard counters.
func TestResetStatsSharded(t *testing.T) {
	root := sim.NewEngine()
	root.Shard(2)
	n := New(root, cluster.Topology{Clusters: 2, NodesPerCluster: 2}, testParams())
	n.EngineFor(0).At(0, func() {
		n.Send(Msg{From: 0, To: 2, Kind: KindData, Size: 100})
	})
	n.EngineFor(1).At(0, func() {
		n.Send(Msg{From: 2, To: 0, Kind: KindData, Size: 100})
	})
	if err := root.Run(); err != nil {
		t.Fatal(err)
	}
	defer root.Shutdown()
	if got := n.Stats().TotalInter().Msgs; got != 2 {
		t.Fatalf("inter msgs %d, want 2", got)
	}
	// Resetting the merged snapshot only clears scratch — the trap that
	// motivates ResetStats.
	n.Stats().Reset()
	if got := n.Stats().TotalInter().Msgs; got != 2 {
		t.Fatalf("snapshot reset unexpectedly reached shard counters (inter msgs %d)", got)
	}
	n.ResetStats()
	if got := n.Stats().TotalInter(); got.Msgs != 0 || got.Bytes != 0 {
		t.Fatalf("ResetStats left counters %+v", got)
	}
}

// TestResetStatsUnsharded: the same call is the reset API on a plain engine.
func TestResetStatsUnsharded(t *testing.T) {
	e, n := build(2, 2)
	n.Send(Msg{From: 0, To: 2, Kind: KindData, Size: 100})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Stats().TotalInter().Msgs != 1 {
		t.Fatal("traffic not metered")
	}
	n.ResetStats()
	if got := n.Stats().TotalInter(); got.Msgs != 0 {
		t.Fatalf("ResetStats left counters %+v", got)
	}
}
