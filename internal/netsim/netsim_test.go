package netsim

import (
	"testing"
	"testing/quick"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/rng"
	"albatross/internal/sim"
)

// testParams uses round numbers so expected delivery times are exact.
func testParams() cluster.Params {
	return cluster.Params{
		LANLatency:       10 * time.Microsecond,
		LANBandwidth:     1e8, // 100 MB/s -> 10 ns/byte
		LANBcastLatency:  20 * time.Microsecond,
		FELatency:        50 * time.Microsecond,
		FEBandwidth:      1e7,
		WANLatency:       1000 * time.Microsecond,
		WANBandwidth:     1e6, // 1 MB/s -> 1 us/byte
		SoftwareOverhead: 1 * time.Microsecond,
	}
}

func build(clusters, npc int) (*sim.Engine, *Network) {
	e := sim.NewEngine()
	n := New(e, cluster.Topology{Clusters: clusters, NodesPerCluster: npc}, testParams())
	return e, n
}

func recvTime(t *testing.T, e *sim.Engine, n *Network, to cluster.NodeID) time.Duration {
	t.Helper()
	var at time.Duration = -1
	e.Go("recv", func(p *sim.Proc) {
		n.Inbox(to).Get(p)
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at < 0 {
		t.Fatal("message not delivered")
	}
	return at
}

func TestLANDeliveryTime(t *testing.T) {
	e, n := build(1, 4)
	// 1000 bytes at 100 MB/s = 10 us serialization, + 10 us latency + 2 us overhead.
	n.Send(Msg{From: 0, To: 1, Kind: KindData, Size: 1000})
	got := recvTime(t, e, n, 1)
	want := 10*time.Microsecond + 10*time.Microsecond + 2*time.Microsecond
	if got != want {
		t.Fatalf("LAN delivery at %v, want %v", got, want)
	}
}

func TestLoopbackDelivery(t *testing.T) {
	e, n := build(1, 2)
	n.Send(Msg{From: 0, To: 0, Kind: KindData, Size: 500})
	got := recvTime(t, e, n, 0)
	if got != time.Microsecond {
		t.Fatalf("loopback at %v, want 1us overhead", got)
	}
	if n.Stats().TotalInter().Msgs != 0 {
		t.Fatal("loopback counted as intercluster")
	}
}

func TestWANDeliveryTime(t *testing.T) {
	e, n := build(2, 2)
	// Node 0 (cluster 0) -> node 2 (cluster 1), 1000 bytes.
	// FE: 100us ser + 50us lat + 1us ovh = 151us to local gateway.
	// WAN: 1000us ser + 1000us lat + 1us ovh = 2001us to remote gateway.
	// FE: 100us ser + 50us lat + 1us ovh = 151us to node.
	n.Send(Msg{From: 0, To: 2, Kind: KindData, Size: 1000})
	got := recvTime(t, e, n, 2)
	want := 151*time.Microsecond + 2001*time.Microsecond + 151*time.Microsecond
	if got != want {
		t.Fatalf("WAN delivery at %v, want %v", got, want)
	}
}

func TestWANPipeSaturation(t *testing.T) {
	// Two large messages sent together must serialize on the WAN pipe.
	e, n := build(2, 2)
	n.Send(Msg{From: 0, To: 2, Kind: KindData, Size: 10000})
	n.Send(Msg{From: 1, To: 2, Kind: KindData, Size: 10000})
	var arrivals []time.Duration
	e.Go("recv", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			n.Inbox(2).Get(p)
			arrivals = append(arrivals, p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	gap := arrivals[1] - arrivals[0]
	// Second message waits a full 10 ms WAN serialization behind the first.
	if gap < 9*time.Millisecond {
		t.Fatalf("no pipe saturation: gap %v", gap)
	}
}

func TestSenderNICSerialization(t *testing.T) {
	// Two LAN messages from one sender serialize on its NIC.
	e, n := build(1, 3)
	n.Send(Msg{From: 0, To: 1, Kind: KindData, Size: 100000}) // 1 ms serialization
	n.Send(Msg{From: 0, To: 2, Kind: KindData, Size: 1000})
	got := recvTime(t, e, n, 2)
	// Second message starts serializing at 1 ms.
	want := time.Millisecond + 10*time.Microsecond + 12*time.Microsecond
	if got != want {
		t.Fatalf("second send at %v, want %v", got, want)
	}
}

func TestIndependentSendersDoNotSerialize(t *testing.T) {
	e, n := build(1, 3)
	n.Send(Msg{From: 0, To: 2, Kind: KindData, Size: 100000})
	n.Send(Msg{From: 1, To: 2, Kind: KindData, Size: 100000})
	var arrivals []time.Duration
	e.Go("recv", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			n.Inbox(2).Get(p)
			arrivals = append(arrivals, p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if arrivals[0] != arrivals[1] {
		t.Fatalf("independent senders serialized: %v", arrivals)
	}
}

func TestBcastLocalReachesWholeClusterOnly(t *testing.T) {
	e, n := build(2, 3)
	n.BcastLocal(0, KindBcast, 100, "hi")
	got := make(map[cluster.NodeID]time.Duration)
	for _, id := range []cluster.NodeID{0, 1, 2} {
		id := id
		e.Go("recv", func(p *sim.Proc) {
			n.Inbox(id).Get(p)
			got[id] = p.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("deliveries %v", got)
	}
	if got[0] != got[1] || got[1] != got[2] {
		t.Fatalf("broadcast skew: %v", got)
	}
	for _, id := range []cluster.NodeID{3, 4, 5} {
		if n.Inbox(id).Len() != 0 {
			t.Fatalf("broadcast leaked to other cluster (node %d)", id)
		}
	}
}

func TestStatsSplitIntraInter(t *testing.T) {
	e, n := build(2, 2)
	n.Send(Msg{From: 0, To: 1, Kind: KindRPCReq, Size: 100}) // intra
	n.Send(Msg{From: 0, To: 3, Kind: KindRPCReq, Size: 200}) // inter
	n.Send(Msg{From: 3, To: 0, Kind: KindRPCRep, Size: 50})  // inter
	drain := func(id cluster.NodeID, k int) {
		e.Go("r", func(p *sim.Proc) {
			for i := 0; i < k; i++ {
				n.Inbox(id).Get(p)
			}
		})
	}
	drain(1, 1)
	drain(3, 1)
	drain(0, 1)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	s := n.Stats()
	if s.Intra(KindRPCReq).Msgs != 1 || s.Intra(KindRPCReq).Bytes != 100 {
		t.Fatalf("intra rpc %+v", s.Intra(KindRPCReq))
	}
	if s.Inter(KindRPCReq).Msgs != 1 || s.Inter(KindRPCReq).Bytes != 200 {
		t.Fatalf("inter rpc %+v", s.Inter(KindRPCReq))
	}
	rpc := s.InterRPC()
	if rpc.Msgs != 1 || rpc.Bytes != 250 {
		t.Fatalf("InterRPC %+v", rpc)
	}
}

func TestStatsDiff(t *testing.T) {
	e, n := build(1, 2)
	n.Send(Msg{From: 0, To: 1, Kind: KindData, Size: 10})
	snap := n.Stats().Clone()
	n.Send(Msg{From: 0, To: 1, Kind: KindData, Size: 20})
	e.Go("r", func(p *sim.Proc) {
		n.Inbox(1).Get(p)
		n.Inbox(1).Get(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	d := n.Stats().Diff(snap)
	if d.Intra(KindData).Msgs != 1 || d.Intra(KindData).Bytes != 20 {
		t.Fatalf("diff %+v", d.Intra(KindData))
	}
}

// TestFIFOPerPath checks the end-to-end FIFO property: messages from one
// sender to one receiver arrive in send order, whatever their sizes, both
// within a cluster and across the WAN.
func TestFIFOPerPath(t *testing.T) {
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		e, n := build(2, 2)
		var dst cluster.NodeID = 1
		if r.Intn(2) == 0 {
			dst = 3 // cross-cluster path
		}
		const k = 20
		for i := 0; i < k; i++ {
			n.Send(Msg{From: 0, To: dst, Kind: KindData, Size: 1 + r.Intn(5000), Payload: i})
		}
		ok := true
		e.Go("r", func(p *sim.Proc) {
			for i := 0; i < k; i++ {
				m := n.Inbox(dst).Get(p).(Msg)
				if m.Payload.(int) != i {
					ok = false
				}
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestConservation checks no message is lost or duplicated under random
// traffic between random nodes.
func TestConservation(t *testing.T) {
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		e, n := build(3, 3)
		total := 50
		sent := make(map[int]int) // per destination
		for i := 0; i < total; i++ {
			from := cluster.NodeID(r.Intn(9))
			to := cluster.NodeID(r.Intn(9))
			n.Send(Msg{From: from, To: to, Kind: KindData, Size: 1 + r.Intn(1000)})
			sent[int(to)]++
		}
		if err := e.Run(); err != nil {
			return false
		}
		for id, want := range sent {
			if n.Inbox(cluster.NodeID(id)).Len() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHandlerDelivery(t *testing.T) {
	e, n := build(1, 2)
	got := 0
	n.SetHandler(1, func(m Msg) { got = m.Size })
	n.Send(Msg{From: 0, To: 1, Kind: KindData, Size: 77})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 77 {
		t.Fatalf("handler got %d", got)
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindRPCReq: "rpc-req", KindRPCRep: "rpc-rep",
		KindBcast: "bcast", KindData: "data", KindControl: "control",
		KindFrame: "frame",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%d -> %q", k, k.String())
		}
	}
}

func TestPipeReports(t *testing.T) {
	e, n := build(2, 2)
	n.Send(Msg{From: 0, To: 2, Kind: KindData, Size: 10000})
	n.Send(Msg{From: 1, To: 3, Kind: KindData, Size: 10000})
	n.Send(Msg{From: 2, To: 0, Kind: KindData, Size: 500})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	reps := n.PipeReports()
	if len(reps) != 2 {
		t.Fatalf("got %d pipe reports, want 2", len(reps))
	}
	fwd := reps[0] // 0 -> 1
	if fwd.From != 0 || fwd.To != 1 || fwd.Msgs != 2 || fwd.Bytes != 20000 {
		t.Fatalf("forward pipe report %+v", fwd)
	}
	// Two 10 ms transmissions, the second queued behind the first.
	if fwd.Busy != 20*time.Millisecond {
		t.Fatalf("busy %v, want 20ms", fwd.Busy)
	}
	if fwd.MaxQueueing < 9*time.Millisecond {
		t.Fatalf("max queueing %v, want ~10ms", fwd.MaxQueueing)
	}
	back := reps[1]
	if back.From != 1 || back.To != 0 || back.Msgs != 1 {
		t.Fatalf("backward pipe report %+v", back)
	}
	if u := fwd.Utilization(100 * time.Millisecond); u < 0.19 || u > 0.21 {
		t.Fatalf("utilization %v, want 0.2", u)
	}
}

func TestGatewayCostSerializesForwarding(t *testing.T) {
	e := sim.NewEngine()
	par := testParams()
	par.GatewayCost = 500 * time.Microsecond
	n := New(e, cluster.Topology{Clusters: 2, NodesPerCluster: 3}, par)
	// Three tiny messages from distinct senders arrive at the gateway
	// together; the gateway forwards them one at a time.
	for i := 0; i < 3; i++ {
		n.Send(Msg{From: cluster.NodeID(i), To: 3, Kind: KindData, Size: 1})
	}
	var arrivals []time.Duration
	e.Go("r", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			n.Inbox(3).Get(p)
			arrivals = append(arrivals, p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if gap := arrivals[2] - arrivals[0]; gap < 900*time.Microsecond {
		t.Fatalf("gateway did not serialize: gap %v", gap)
	}
}

func TestWANProfileScalesDelivery(t *testing.T) {
	delivery := func(profile WANProfile) time.Duration {
		e := sim.NewEngine()
		n := New(e, cluster.Topology{Clusters: 2, NodesPerCluster: 2}, testParams())
		n.SetWANProfile(profile)
		n.Send(Msg{From: 0, To: 2, Kind: KindData, Size: 1000})
		var at time.Duration
		e.Go("r", func(p *sim.Proc) {
			n.Inbox(2).Get(p)
			at = p.Now()
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return at
	}
	base := delivery(nil)
	slow := delivery(func(time.Duration) (float64, float64) { return 3, 0.5 })
	fast := delivery(func(time.Duration) (float64, float64) { return 0.5, 4 })
	if slow <= base || fast >= base {
		t.Fatalf("profile not applied: base=%v slow=%v fast=%v", base, slow, fast)
	}
	// Exact check: 3x latency adds 2ms, halved bandwidth adds 1ms serialization.
	want := base + 2*time.Millisecond + time.Millisecond
	if slow != want {
		t.Fatalf("slow delivery %v, want %v", slow, want)
	}
}

// TestWANProfileSampledAtTransmissionStart pins the instant a time-varying
// profile is evaluated: a message queued behind earlier pipe traffic starts
// transmitting at the pipe's free time, so a step-function profile that
// flips between queueing and transmission must apply its post-step quality.
func TestWANProfileSampledAtTransmissionStart(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, cluster.Topology{Clusters: 2, NodesPerCluster: 2}, testParams())
	// Before 500us: nominal quality. From 500us: 3x latency, half bandwidth.
	n.SetWANProfile(func(at time.Duration) (float64, float64) {
		if at < 500*time.Microsecond {
			return 1, 1
		}
		return 3, 0.5
	})
	// Both messages are sent at t=0. Msg A (1000 B) reaches the local
	// gateway at 151us and transmits at nominal quality, holding the pipe
	// until 1151us. Msg B (500 B) joins the queue at 201us — before the
	// step — but its transmission starts at 1151us, after it.
	n.Send(Msg{From: 0, To: 2, Kind: KindData, Size: 1000})
	n.Send(Msg{From: 0, To: 2, Kind: KindData, Size: 500})
	var arrivals []time.Duration
	e.Go("r", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			n.Inbox(2).Get(p)
			arrivals = append(arrivals, p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// A: FE 151us + WAN (1000us xmit + 1000us lat + 1us) + FE 151us.
	wantA := 2303 * time.Microsecond
	// B: starts at 1151us under the degraded profile: 500 B at 0.5 MB/s =
	// 1000us xmit, 3000us latency -> remote gateway at 5152us, FE leg
	// (50us ser + 50us lat + 1us) -> 5253us. Sampling at queue time (the
	// old bug) would deliver at 2753us instead.
	wantB := 5253 * time.Microsecond
	if len(arrivals) != 2 || arrivals[0] != wantA || arrivals[1] != wantB {
		t.Fatalf("arrivals %v, want [%v %v]", arrivals, wantA, wantB)
	}
}
