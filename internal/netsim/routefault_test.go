package netsim

import (
	"testing"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/sim"
)

// ringTestNet builds a 4-root ring backbone (one class, 1000us / 1 MB/s),
// two compute nodes per cluster. Nodes 2c and 2c+1 belong to cluster c;
// gateways are 8+c.
func ringTestNet(t testing.TB) (*sim.Engine, *Network) {
	t.Helper()
	b := cluster.NewBuilder()
	bb := b.Class("backbone", 1000*time.Microsecond, 1e6, 0)
	b.Roots(4, cluster.Ring, bb, 2)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	return e, New(e, topo, testParams())
}

// downPair returns a LinkDown closure failing one directed pair for
// [start, start+dur).
func downPair(from, to int, start, dur time.Duration) func(time.Duration, int, int) bool {
	return func(at time.Duration, f, tt int) bool {
		return f == from && tt == to && at >= start && at < start+dur
	}
}

// TestRingRerouteSecondDirection: with the forward ring link 0→1 cut, a
// message from cluster 0 to cluster 1 goes the other way round (0→3→2→1)
// instead of blackholing — and the path scan turns the route around at the
// source, so no hop ever bounces back toward the cut.
func TestRingRerouteSecondDirection(t *testing.T) {
	e, n := ringTestNet(t)
	n.SetFaultPolicy(&testPolicy{linkDown: downPair(0, 1, 0, time.Hour)})
	n.Send(Msg{From: 0, To: 2, Kind: KindData, Size: 1000})
	at := recvTime(t, e, n, 2)
	// FE 151us + three backbone hops (0→3, 3→2, 2→1) at 2001us each + FE
	// 151us: the long way round, each hop 1000us serialization + 1000us
	// latency + 1us overhead.
	want := (151 + 3*2001 + 151) * time.Microsecond
	if at != want {
		t.Fatalf("rerouted delivery at %v, want %v", at, want)
	}
	// 0 detours (Next says 1, route takes 3) and 3 detours (Next's
	// tie-forward says 0, the scan sees the cut and goes 2); the final hop
	// 2→1 is the static choice.
	if got := n.Stats().Reroutes(); got != 2 {
		t.Fatalf("reroutes = %d, want 2", got)
	}
	if got := n.Stats().HeldMsgs(); got != 0 {
		t.Fatalf("held = %d, want 0 (an alternate existed)", got)
	}
}

// TestMeshDetourOneIntermediate: on the implicit full mesh a cut direct
// link detours through the lowest-index third cluster, turning the
// single-hop mesh route into a store-and-forward two-hop route.
func TestMeshDetourOneIntermediate(t *testing.T) {
	e, n := build(3, 2)
	n.SetFaultPolicy(&testPolicy{linkDown: downPair(0, 1, 0, time.Hour)})
	n.Send(Msg{From: 0, To: 2, Kind: KindData, Size: 1000})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := n.Inbox(2).Len(); got != 1 {
		t.Fatalf("delivered %d, want 1", got)
	}
	if got := n.Stats().Reroutes(); got != 1 {
		t.Fatalf("reroutes = %d, want 1", got)
	}
	// The traffic crossed 0→2 and 2→1, never 0→1.
	for _, r := range n.PipeReports() {
		if r.From == 0 && r.To == 1 {
			t.Fatalf("detoured message still crossed the cut link: %+v", r)
		}
	}
}

// TestHoldQueueDrainsFIFOOnHeal: a two-root backbone has no alternate
// path, so traffic parks at the gateway during the cut and drains in send
// order once the link heals.
func TestHoldQueueDrainsFIFOOnHeal(t *testing.T) {
	b := cluster.NewBuilder()
	bb := b.Class("backbone", 1000*time.Microsecond, 1e6, 0)
	b.Roots(2, cluster.Mesh, bb, 2)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	n := New(e, topo, testParams())
	n.SetFaultPolicy(&testPolicy{linkDown: downPair(0, 1, 0, 5*time.Millisecond)})
	var order []int
	var last time.Duration
	n.SetHandler(2, func(m Msg) {
		order = append(order, m.Payload.(int))
		last = e.Now()
	})
	n.Send(Msg{From: 0, To: 2, Kind: KindData, Size: 1000, Payload: 1})
	n.Send(Msg{From: 1, To: 2, Kind: KindData, Size: 1000, Payload: 2})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("deliveries %v, want [1 2] (FIFO drain)", order)
	}
	if last < 5*time.Millisecond {
		t.Fatalf("delivery at %v, before the link healed", last)
	}
	s := n.Stats()
	if s.HeldMsgs() != 2 || s.HoldDrops() != 0 {
		t.Fatalf("held=%d drops=%d, want 2 held, 0 dropped", s.HeldMsgs(), s.HoldDrops())
	}
}

// TestHoldTimeoutDropsUnderPermanentPartition: when the cut never heals,
// held traffic is dropped after the hold timeout with a counted verdict —
// the network gives up so ARQ owns recovery, and the run terminates instead
// of retrying forever.
func TestHoldTimeoutDropsUnderPermanentPartition(t *testing.T) {
	b := cluster.NewBuilder()
	bb := b.Class("backbone", 1000*time.Microsecond, 1e6, 0)
	b.Roots(2, cluster.Mesh, bb, 2)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	n := New(e, topo, testParams())
	n.SetFaultPolicy(&testPolicy{linkDown: func(at time.Duration, f, tt int) bool {
		return f == 0 && tt == 1
	}})
	n.Send(Msg{From: 0, To: 2, Kind: KindData, Size: 1000})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := n.Inbox(2).Len(); got != 0 {
		t.Fatalf("delivered %d across a permanent partition", got)
	}
	s := n.Stats()
	if s.HeldMsgs() != 1 || s.HoldDrops() != 1 {
		t.Fatalf("held=%d drops=%d, want 1 held then 1 dropped", s.HeldMsgs(), s.HoldDrops())
	}
	if now := e.Now(); now < holdTimeout || now > holdTimeout+time.Second {
		t.Fatalf("run ended at %v, want shortly after the %v hold timeout", now, holdTimeout)
	}
}

// TestUplinkCutHoldsSubtreeTraffic: a tree uplink has no alternate, so
// cutting it parks the subtree's outbound traffic until heal.
func TestUplinkCutHoldsSubtreeTraffic(t *testing.T) {
	e, n := tieredTestNet(t, testParams(), 0)
	// Cluster 1 hangs under root 0; cut its uplink both ways for 5ms.
	cut := func(at time.Duration, f, tt int) bool {
		up := (f == 1 && tt == 0) || (f == 0 && tt == 1)
		return up && at < 5*time.Millisecond
	}
	n.SetFaultPolicy(&testPolicy{linkDown: cut})
	n.Send(Msg{From: 2, To: 6, Kind: KindData, Size: 1000}) // leaf 1 → leaf 3
	at := recvTime(t, e, n, 6)
	if at < 5*time.Millisecond {
		t.Fatalf("delivery at %v, before the uplink healed", at)
	}
	s := n.Stats()
	if s.HeldMsgs() != 1 {
		t.Fatalf("held=%d, want 1", s.HeldMsgs())
	}
	if s.Reroutes() != 0 {
		t.Fatalf("reroutes=%d, want 0 (tree edges have no alternates)", s.Reroutes())
	}
}

// TestFramesHeldAndReassembledAfterHeal: coalesced frames park in the hold
// queue like plain messages and reassemble in sequence order after heal.
func TestFramesHeldAndReassembledAfterHeal(t *testing.T) {
	par := testParams()
	par.CoalesceWindow = 100 * time.Microsecond
	par.MaxFrameBytes = 1000
	e, n := buildWith(2, 2, par)
	n.SetFaultPolicy(&testPolicy{linkDown: downPair(0, 1, 0, 5*time.Millisecond)})
	var got []int
	n.SetHandler(2, func(m Msg) { got = append(got, m.Payload.(int)) })
	for i := 0; i < 4; i++ {
		n.Send(Msg{From: 0, To: 2, Kind: KindData, Size: 600, Payload: i})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("delivered %d messages, want 4", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("deliveries %v, want in-order 0..3", got)
		}
	}
	s := n.Stats()
	if s.HeldMsgs() == 0 {
		t.Fatalf("no frames were held across the cut (held=%d)", s.HeldMsgs())
	}
}

// TestDuplicateNotReinspectedOnMultiHopRoute is the regression test for the
// duplicate contract on store-and-forward routes: the duplicated copy must
// be exempt from further WANTransit verdicts at every intermediate gateway,
// not just at the source (the single-hop mesh test cannot see the
// difference). An always-duplicate policy on a 4-hop tiered route must
// yield exactly two delivered copies and exactly one WANTransit
// consultation — any re-inspection would cascade duplicates 2^hops.
func TestDuplicateNotReinspectedOnMultiHopRoute(t *testing.T) {
	e, n := tieredTestNet(t, testParams(), 0)
	inspections := 0
	n.SetFaultPolicy(&testPolicy{
		transit: func(time.Duration, int, int, Msg) (FaultAction, time.Duration) {
			inspections++
			return FaultDuplicate, 0
		},
	})
	n.Send(Msg{From: 2, To: 6, Kind: KindData, Size: 1000}) // route 1→0→2→3
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if inspections != 1 {
		t.Fatalf("WANTransit consulted %d times on a multi-hop route, want 1 (source only)", inspections)
	}
	if got := n.Inbox(6).Len(); got != 2 {
		t.Fatalf("delivered %d copies, want exactly 2", got)
	}
}
