// Gateway transport optimization layer: MPWide-style frame coalescing and
// multipath striping on the wide-area path.
//
// When enabled (any of cluster.Params.MaxFrameBytes, CoalesceWindow or
// WANStreams > 1 is set, and the topology has more than one cluster), WAN
// messages no longer cross the wide-area pipe one at a time. Instead each
// directed cluster pair keeps an egress queue at the local gateway: messages
// bound for the same destination cluster accumulate into a frame, which is
// flushed when its payload reaches MaxFrameBytes or when a CoalesceWindow
// virtual-time timer (armed when the first message arrives) fires. The frame
// pays one WAN serialization and one receive-side software overhead, however
// many messages it carries — the transparent runtime-level counterpart of the
// paper's application-level message combining.
//
// Frames are striped round-robin over WANStreams parallel pipes per directed
// pair (each with the full WANLatency/WANBandwidth) and carry a sequence
// number; the remote gateway reassembles them in order, holding early frames
// until the gap fills. Zero-valued parameters disable the whole layer, and
// the plain per-message path (localGW/remoteGW in netsim.go) is untouched,
// so disabled runs are byte-identical to a build without this file.
package netsim

import "time"

// xport holds the transport layer's per-directed-cluster-pair state,
// sparsely: queues materialize on first use, keyed by the far cluster, so a
// grid-scale platform pays for the pairs that talk, never C². egress[cs] is
// touched only from cluster cs's LP and ingress[cd] only from cluster cd's
// LP, so the layer needs no locks under a sharded engine.
type xport struct {
	egress  []map[int32]*egressQ // source cluster → destination → queue
	ingress []map[int32]*ingressQ
}

func newXport(n *Network) *xport {
	return &xport{
		egress:  make([]map[int32]*egressQ, n.nclusters),
		ingress: make([]map[int32]*ingressQ, n.nclusters),
	}
}

// egressFor returns cluster cs's coalescing queue toward cd, creating it on
// first use (on cs's LP).
func (n *Network) egressFor(cs, cd int) *egressQ {
	m := n.xp.egress[cs]
	if m == nil {
		m = make(map[int32]*egressQ, 4)
		n.xp.egress[cs] = m
	}
	eg := m[int32(cd)]
	if eg == nil {
		eg = &egressQ{n: n, cs: cs, cd: cd}
		eg.flushFn = eg.timerFlush // bound once; the timer never allocates
		// Frames stripe over the first link of the route: its stream count
		// is the round-robin modulus for the whole directed pair.
		eg.mod = len(n.linkFor(cs, n.nextHop(cs, cd)).pipes)
		m[int32(cd)] = eg
	}
	return eg
}

// ingressFor returns cluster cd's reassembly queue for frames from cs,
// creating it on first use (always on cd's LP: frame arrivals run there,
// and mid-route loss tombstones are scheduled onto it via loseFrameSeq).
func (n *Network) ingressFor(cs, cd int) *ingressQ {
	m := n.xp.ingress[cd]
	if m == nil {
		m = make(map[int32]*ingressQ, 4)
		n.xp.ingress[cd] = m
	}
	iq := m[int32(cs)]
	if iq == nil {
		iq = &ingressQ{}
		m[int32(cs)] = iq
	}
	return iq
}

// egressQ is the coalescing queue of one directed cluster pair, living at the
// source cluster's gateway.
type egressQ struct {
	n        *Network
	cs, cd   int
	msgs     []Msg
	bytes    int
	deadline time.Duration // flush instant of the frame being built
	seq      int64         // next frame sequence number
	stream   int           // next round-robin stream index
	mod      int           // stream count of the pair's first route link
	flushFn  func()
}

// add appends one message to the frame under construction, arming the flush
// timer when the frame is fresh and flushing early when the size bound is
// hit. A zero CoalesceWindow arms the timer at the current instant, so the
// layer still batches messages that reach the gateway at the same virtual
// time (the timer runs after every already-scheduled event of that instant).
func (eg *egressQ) add(now time.Duration, m Msg) {
	n := eg.n
	if len(eg.msgs) == 0 {
		eg.deadline = now + n.par.CoalesceWindow
		n.sh[eg.cs].e.At(eg.deadline, eg.flushFn)
	}
	eg.msgs = append(eg.msgs, m)
	eg.bytes += m.Size
	if n.par.MaxFrameBytes > 0 && eg.bytes >= n.par.MaxFrameBytes {
		eg.flush(now)
	}
}

// timerFlush fires at the deadline armed by the frame's first message. When
// the frame was already flushed by the size bound, the queue is either empty
// or holds a younger frame with a later deadline; both make the timer stale.
func (eg *egressQ) timerFlush() {
	now := eg.n.sh[eg.cs].e.Now()
	if len(eg.msgs) == 0 || now < eg.deadline {
		return
	}
	eg.flush(now)
}

// flush seals the accumulated messages into a frame and transmits it. The
// fault verdict comes first — sequence numbers are assigned only to frames
// that actually enter a pipe, so a frame lost at the local gateway leaves no
// gap for the remote reassembler to wait on.
func (eg *egressQ) flush(now time.Duration) {
	n := eg.n
	sh := n.sh[eg.cs]
	f := n.getFrame(sh)
	f.cs, f.cd = eg.cs, eg.cd
	f.cur = eg.cs
	f.msgs, eg.msgs = eg.msgs, f.msgs
	f.bytes, eg.bytes = eg.bytes, 0

	var dup *frame
	if n.fault != nil {
		wire := f.wireMsg()
		if n.fault.GatewayDown(now, f.cs, wire) {
			// The local gateway is crashed: the whole frame is lost.
			f.release(sh)
			return
		}
		act, delay := n.fault.WANTransit(now, f.cs, f.cd, wire)
		switch act {
		case FaultDrop:
			f.release(sh)
			return
		case FaultDuplicate:
			// The duplicate copy shares the original's sequence number and
			// stream, entering the pipe right behind it; reassembly later
			// discards whichever copy arrives second.
			dup = n.getFrame(sh)
			dup.cs, dup.cd = f.cs, f.cd
			dup.cur = f.cs
			dup.msgs = append(dup.msgs, f.msgs...)
			dup.bytes = f.bytes
		}
		f.extra = delay
	}
	f.seq = eg.seq
	eg.seq++
	f.stream = eg.stream
	eg.stream++
	if eg.stream >= eg.mod {
		eg.stream = 0
	}
	n.transmit(f, now)
	if dup != nil {
		dup.seq, dup.stream = f.seq, f.stream
		n.transmit(dup, now)
	}
}

// transmit sends one frame over the next link of its route: gateway
// forwarding cost, FIFO pipe serialization, then the cross-LP hop — to the
// destination cluster on a mesh, to the next intermediate gateway on a
// multi-hop platform. The schedule delta is depart+lat+wanDelay >= the min
// class latency + SoftwareOverhead (profiles and faults are rejected when
// sharded), i.e. exactly the lookahead New configures — coalescing delays
// when a frame departs, never how far ahead its arrival is scheduled.
// Frame/message counters in Stats are charged once, at the source hop; the
// per-pipe and per-class aggregates meter every hop (wire-level accounting).
func (n *Network) transmit(f *frame, now time.Duration) {
	sh := n.sh[f.cur]
	if n.linkFault != nil {
		next, ok := n.routeOrHold(sh, now, f.cur, f.cd, holdItem{f: f, at: now})
		if !ok {
			return // parked in a hold queue (or dropped on overflow)
		}
		n.transmitFrame(f, now, next)
		return
	}
	n.transmitFrame(f, now, n.nextHop(f.cur, f.cd))
}

// transmitFrame runs the gateway forwarding stage and puts the frame on the
// pipe toward next (the caller's routing choice), then schedules the
// cross-LP hop.
func (n *Network) transmitFrame(f *frame, now time.Duration, next int) {
	sh := n.sh[f.cur]
	if n.par.GatewayCost > 0 {
		// One forwarding slot per frame, not per packed message: packing
		// relieves the gateway's protocol stack along with the WAN link.
		gw := n.nodes[n.gateways[f.cur]]
		if gw.gwFree < now {
			gw.gwFree = now
		}
		gw.gwFree += n.par.GatewayCost
		now = gw.gwFree
	}
	l := n.linkFor(f.cur, next)
	p := &l.pipes[f.stream%len(l.pipes)]
	wait := p.free - now
	if wait < 0 {
		wait = 0
	}
	if wait > p.maxWait {
		p.maxWait = wait
	}
	start := now + wait
	lat, bw := n.wanQuality(start, &n.classes[l.class])
	xmit := bwTime(f.bytes, bw)
	depart := start + xmit
	p.free = depart
	p.busy += xmit
	p.bytes += int64(f.bytes)
	p.msgs += int64(len(f.msgs))
	p.frames++
	if f.cur == f.cs {
		sh.stats.frames.Msgs++
		sh.stats.frames.Bytes += int64(f.bytes)
		sh.stats.framedMsgs += int64(len(f.msgs))
	}
	n.aggFor(f.cur, int(l.class)).observe(wait, xmit, int64(f.bytes), int64(len(f.msgs)), true)
	// FIFO clamp: a latency drop mid-profile must not let this frame overtake
	// earlier traffic on the same stream (fault reorder delay stays outside).
	at := depart + lat + n.wanDelay
	if at < p.arrive {
		at = p.arrive
	}
	p.arrive = at
	if next == f.cd {
		sh.e.AtShard(n.sh[f.cd].e, at+f.extra, f.fnArrive)
		return
	}
	f.cur = next
	sh.e.AtShard(n.sh[next].e, at, f.fnHop)
}

// frame is a recyclable coalesced WAN transmission unit. Like the delivery
// and wanTransit records, its arrival closure is bound once and records are
// pooled per netShard, so steady framed traffic allocates nothing. The frame
// format is the concatenation of its messages' payloads: header cost is
// modelled by the per-frame software overhead, not extra bytes.
type frame struct {
	n        *Network
	cs, cd   int
	cur      int // cluster whose gateway transmits next (route position)
	seq      int64
	stream   int
	bytes    int
	extra    time.Duration // fault-injected reorder delay, added to arrival
	msgs     []Msg
	fnArrive func() // bound to (*frame).arrive once
	fnHop    func() // bound to (*frame).hop once
}

// wireMsg synthesizes the gateway-to-gateway message handed to fault
// policies: the frame is the wire unit, so faults rule on whole frames.
func (f *frame) wireMsg() Msg {
	return Msg{
		From: f.n.gateways[f.cs],
		To:   f.n.gateways[f.cd],
		Kind: KindFrame,
		Size: f.bytes,
	}
}

// release returns the frame to sh's pool. Message slots are zeroed so pooled
// frames hold no payload references.
func (f *frame) release(sh *netShard) {
	for i := range f.msgs {
		f.msgs[i] = Msg{}
	}
	f.msgs = f.msgs[:0]
	f.bytes = 0
	f.extra = 0
	sh.framePool = append(sh.framePool, f)
}

// getFrame pops a pooled frame record from sh (or creates one with its
// arrival closure bound). Like wanTransit records, frames are released on the
// destination cluster's shard and so migrate between pools, but each pool is
// touched by a single LP thread.
func (n *Network) getFrame(sh *netShard) *frame {
	if k := len(sh.framePool); k > 0 {
		f := sh.framePool[k-1]
		sh.framePool = sh.framePool[:k-1]
		return f
	}
	f := &frame{n: n}
	f.fnArrive = f.arrive
	f.fnHop = f.hop
	return f
}

// hop retransmits a multi-hop frame from an intermediate gateway (on that
// cluster's LP). Only gateway liveness is consulted mid-route — drop and
// duplicate verdicts applied once at the source — and a frame lost here
// schedules its sequence tombstone at the destination's reassembler
// (loseFrameSeq: one link latency later, on cd's own LP, so the resync is
// shard-safe) so reassembly never wedges behind the loss.
func (f *frame) hop() {
	n := f.n
	sh := n.sh[f.cur]
	now := sh.e.Now()
	if n.fault != nil && n.fault.GatewayDown(now, f.cur, f.wireMsg()) {
		n.loseFrameSeq(sh, now, f)
		return
	}
	n.transmit(f, now)
}

// arrive runs on the destination cluster's LP when a frame crosses the WAN.
// Frames are consumed strictly in sequence order: the next expected frame is
// unpacked immediately (plus any consecutive frames held behind it), an
// early frame is held, and a stale sequence number is a duplicate copy to
// discard. A crashed remote gateway loses the frame's payload but still
// consumes its sequence number, so reassembly never wedges behind a loss.
func (f *frame) arrive() {
	n := f.n
	sh := n.sh[f.cd]
	now := sh.e.Now()
	iq := n.ingressFor(f.cs, f.cd)
	if n.fault != nil && n.fault.GatewayDown(now, f.cd, f.wireMsg()) {
		iq.consumeLost(now, f.seq)
		f.release(sh)
		return
	}
	switch {
	case f.seq < iq.next:
		f.release(sh) // duplicate of an already-consumed frame
	case f.seq == iq.next:
		iq.next++
		f.unpack(now)
		f.release(sh)
		iq.drain(now)
	default:
		if _, dup := iq.held[f.seq]; dup {
			f.release(sh) // duplicate of a frame already waiting in the gap
			return
		}
		if iq.held == nil {
			iq.held = make(map[int64]*frame)
		}
		iq.held[f.seq] = f
	}
}

// unpack forwards the frame's messages onward: one gateway forwarding slot
// for the whole frame, then per-message Fast Ethernet serialization to each
// destination node (gateway-destined messages deliver directly, as on the
// per-message path).
func (f *frame) unpack(now time.Duration) {
	n := f.n
	gw := n.nodes[n.gateways[f.cd]]
	if n.par.GatewayCost > 0 {
		if gw.gwFree < now {
			gw.gwFree = now
		}
		gw.gwFree += n.par.GatewayCost
		now = gw.gwFree
	}
	for _, m := range f.msgs {
		if n.isGW[m.To] {
			n.deliver(m)
			continue
		}
		end := serialize(&gw.nicFree, now, m.Size, n.par.FEBandwidth)
		n.deliverAt(end+n.feDelay, m)
	}
}

// ingressQ reassembles one directed pair's frames in sequence order at the
// destination gateway. held maps sequence number → early frame; a nil entry
// is the tombstone of a frame lost to a remote gateway crash (payload gone,
// sequence number still consumed).
type ingressQ struct {
	next int64
	held map[int64]*frame
}

// consumeLost advances the sequence past a frame whose payload was lost
// (remote gateway crash, mid-route loss, hold-queue drop), so later frames
// are not held forever behind the loss. now is the resync instant: frames
// held behind the gap unpack then.
func (iq *ingressQ) consumeLost(now time.Duration, seq int64) {
	switch {
	case seq < iq.next:
		// Duplicate of a consumed frame; nothing to resync.
	case seq == iq.next:
		iq.next++
		iq.drain(now)
	default:
		if _, dup := iq.held[seq]; dup {
			return
		}
		if iq.held == nil {
			iq.held = make(map[int64]*frame)
		}
		iq.held[seq] = nil
	}
}

// drain consumes consecutively-sequenced frames waiting behind a filled gap.
// Held frames unpack at the drain instant (they arrived earlier but must not
// overtake the gap filler); tombstones just advance the sequence.
func (iq *ingressQ) drain(now time.Duration) {
	for {
		f, ok := iq.held[iq.next]
		if !ok {
			return
		}
		delete(iq.held, iq.next)
		iq.next++
		if f != nil {
			f.unpack(now)
			f.release(f.n.sh[f.cd])
		}
	}
}

// enqueue is the transport-layer stage 2 of a WAN send (replacing localGW):
// the message has crossed Fast Ethernet to its local gateway and joins the
// egress queue of its directed cluster pair.
func (t *wanTransit) enqueue() {
	n := t.n
	sh := n.sh[t.cs]
	m, cs, cd := t.m, t.cs, t.cd
	t.releaseTo(sh)
	n.egressFor(cs, cd).add(sh.e.Now(), m)
}

// TransportActive reports whether the gateway transport optimization layer
// (frame coalescing / striping) is running in this network.
func (n *Network) TransportActive() bool { return n.xp != nil }
