package netsim

import (
	"testing"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/sim"
)

// tieredTestNet builds a two-tier platform with round-number link classes:
// clusters 0,2 are backbone roots (trunk: 1000us, 1 MB/s), clusters 1,3 hang
// one each under a root (leaf: 200us, 2 MB/s). Two compute nodes per cluster,
// so node 2 is cluster 1's first node and node 6 cluster 3's; gateways are
// 8+c. LAN/FE figures come from testParams.
func tieredTestNet(t testing.TB, par cluster.Params, classStreams int) (*sim.Engine, *Network) {
	t.Helper()
	b := cluster.NewBuilder()
	trunk := b.Class("trunk", 1000*time.Microsecond, 1e6, classStreams)
	leaf := b.Class("leaf", 200*time.Microsecond, 2e6, 0)
	roots := b.Roots(2, cluster.Mesh, trunk, 2)
	b.Tier(roots, 1, leaf, 2)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	return e, New(e, topo, par)
}

func TestTieredDeliveryTime(t *testing.T) {
	// Leaf-to-leaf across the backbone: node 2 (cluster 1) → node 6
	// (cluster 3), 1000 bytes, route 1→0→2→3.
	// FE:          100us ser + 50us lat + 1us ovh            = 151us
	// leaf 1→0:    500us ser (2 MB/s) + 200us lat + 1us ovh  = 701us
	// trunk 0→2:   1000us ser (1 MB/s) + 1000us lat + 1us    = 2001us
	// leaf 2→3:                                              = 701us
	// FE:                                                    = 151us
	e, n := tieredTestNet(t, testParams(), 0)
	n.Send(Msg{From: 2, To: 6, Kind: KindData, Size: 1000})
	got := recvTime(t, e, n, 6)
	want := (151 + 701 + 2001 + 701 + 151) * time.Microsecond
	if got != want {
		t.Fatalf("tiered delivery at %v, want %v", got, want)
	}
}

func TestTieredGatewayToGateway(t *testing.T) {
	// Gateway-to-gateway traffic (protocol forwarding) skips both FE legs.
	e, n := tieredTestNet(t, testParams(), 0)
	gw1, gw3 := cluster.NodeID(8+1), cluster.NodeID(8+3)
	n.Send(Msg{From: gw1, To: gw3, Kind: KindControl, Size: 1000})
	got := recvTime(t, e, n, gw3)
	want := (701 + 2001 + 701) * time.Microsecond
	if got != want {
		t.Fatalf("gw-gw delivery at %v, want %v", got, want)
	}
}

func TestTieredOneHop(t *testing.T) {
	// Leaf to its own root is a single leaf-class hop.
	e, n := tieredTestNet(t, testParams(), 0)
	n.Send(Msg{From: 2, To: 0, Kind: KindData, Size: 1000})
	got := recvTime(t, e, n, 0)
	want := (151 + 701 + 151) * time.Microsecond
	if got != want {
		t.Fatalf("one-hop delivery at %v, want %v", got, want)
	}
}

// countDeliveries installs counting handlers on every compute node.
func countDeliveries(n *Network) *int {
	count := new(int)
	topo := n.Topology()
	for c := 0; c < topo.Clusters; c++ {
		for _, id := range topo.Nodes(c) {
			n.SetHandler(id, func(Msg) { *count++ })
		}
	}
	return count
}

func TestTieredConservation(t *testing.T) {
	// Every message sent between every ordered pair of compute nodes must be
	// delivered exactly once, whatever the route length.
	e, n := tieredTestNet(t, testParams(), 0)
	count := countDeliveries(n)
	topo := n.Topology()
	sent := 0
	for from := 0; from < topo.Compute(); from++ {
		for to := 0; to < topo.Compute(); to++ {
			if from == to {
				continue
			}
			n.Send(Msg{From: cluster.NodeID(from), To: cluster.NodeID(to), Kind: KindData, Size: 64})
			sent++
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if *count != sent {
		t.Fatalf("delivered %d of %d messages", *count, sent)
	}
}

func TestTieredSharedLinkCongestion(t *testing.T) {
	// Two messages from different source clusters cross the same trunk link
	// 0→2; the second serializes behind the first, which per-link congestion
	// modelling must record on that physical link only.
	e, n := tieredTestNet(t, testParams(), 0)
	count := countDeliveries(n)
	n.Send(Msg{From: 2, To: 6, Kind: KindData, Size: 10000}) // cluster 1 → 3
	n.Send(Msg{From: 0, To: 7, Kind: KindData, Size: 10000}) // cluster 0 → 3
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if *count != 2 {
		t.Fatalf("delivered %d of 2", *count)
	}
	reports := n.PipeReports()
	byLink := map[[2]int]PipeReport{}
	for _, r := range reports {
		byLink[[2]int{r.From, r.To}] = r
	}
	trunk, ok := byLink[[2]int{0, 2}]
	if !ok || trunk.Msgs != 2 {
		t.Fatalf("trunk link 0→2 report %+v (all %+v)", trunk, reports)
	}
	if trunk.MaxQueueing <= 0 {
		t.Fatal("second trunk transmission did not queue")
	}
	if leaf, ok := byLink[[2]int{1, 0}]; !ok || leaf.Msgs != 1 || leaf.MaxQueueing != 0 {
		t.Fatalf("leaf link 1→0 report %+v", leaf)
	}
	if last, ok := byLink[[2]int{2, 3}]; !ok || last.Msgs != 2 {
		t.Fatalf("leaf link 2→3 report %+v", last)
	}
	if _, ok := byLink[[2]int{1, 2}]; ok {
		t.Fatal("nonexistent link 1→2 carried traffic")
	}
}

func TestClassReports(t *testing.T) {
	e, n := tieredTestNet(t, testParams(), 0)
	count := countDeliveries(n)
	n.Send(Msg{From: 2, To: 6, Kind: KindData, Size: 10000}) // leaf, trunk, leaf
	n.Send(Msg{From: 0, To: 7, Kind: KindData, Size: 10000}) // trunk, leaf
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if *count != 2 {
		t.Fatalf("delivered %d of 2", *count)
	}
	reports := n.ClassReports()
	if len(reports) != 2 {
		t.Fatalf("class reports: %+v", reports)
	}
	trunk, leaf := reports[0], reports[1]
	if trunk.Class != "trunk" || leaf.Class != "leaf" {
		t.Fatalf("class order: %+v", reports)
	}
	if trunk.Xmits != 2 || trunk.Msgs != 2 || trunk.Bytes != 20000 {
		t.Fatalf("trunk report %+v", trunk)
	}
	if leaf.Xmits != 3 || leaf.Bytes != 30000 {
		t.Fatalf("leaf report %+v", leaf)
	}
	// 10000 B at 1 MB/s = 10ms serialization per trunk transmission. The
	// cluster-0 message enters the trunk at 1051us (FE leg) and holds it
	// until 11051us; the cluster-1 message arrives at 6252us (FE + leaf hop)
	// and waits exactly 11051-6252 = 4799us behind it.
	if trunk.Busy != 20*time.Millisecond {
		t.Fatalf("trunk busy %v", trunk.Busy)
	}
	if trunk.MaxWait != 4799*time.Microsecond || trunk.MinWait != 0 {
		t.Fatalf("trunk waits %+v", trunk)
	}
	if trunk.MeanWait != 4799*time.Microsecond/2 {
		t.Fatalf("trunk mean wait %v", trunk.MeanWait)
	}
	if trunk.P99Wait <= 0 || trunk.P99Wait > trunk.MaxWait {
		t.Fatalf("trunk p99 %v", trunk.P99Wait)
	}
	n.ResetStats()
	if got := n.ClassReports(); len(got) != 0 {
		t.Fatalf("class reports after reset: %+v", got)
	}
}

func TestP2Quantile(t *testing.T) {
	// Against a known distribution: 0..9999 in order, p99 ≈ 9900.
	var q p2Quantile
	for i := 0; i < 10000; i++ {
		q.observe(0.99, float64(i))
	}
	got := q.estimate()
	if got < 9700 || got > 9999 {
		t.Fatalf("p99 estimate %v of 0..9999", got)
	}
	// Small samples are exact nearest-rank.
	var s p2Quantile
	for _, x := range []float64{5, 1, 3} {
		s.observe(0.5, x)
	}
	if got := s.estimate(); got != 3 {
		t.Fatalf("small-sample median %v", got)
	}
	var z p2Quantile
	if got := z.estimate(); got != 0 {
		t.Fatalf("empty estimate %v", got)
	}
}

func TestMeshLazyMaterialization(t *testing.T) {
	// On the implicit full mesh only pairs that talk materialize a link.
	e, n := build(16, 2)
	n.Send(Msg{From: 0, To: 2, Kind: KindData, Size: 100}) // cluster 0 → 1
	n.Send(Msg{From: 0, To: 4, Kind: KindData, Size: 100}) // cluster 0 → 2
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	live := 0
	for c := range n.adj {
		live += len(n.adj[c])
	}
	if live != 2 {
		t.Fatalf("%d links materialized, want 2", live)
	}
	if got := len(n.PipeReports()); got != 2 {
		t.Fatalf("%d pipe reports, want 2", got)
	}
	// The synthetic mesh class aggregates all WAN traffic.
	cr := n.ClassReports()
	if len(cr) != 1 || cr[0].Class != "wan" || cr[0].Xmits != 2 {
		t.Fatalf("mesh class reports %+v", cr)
	}
}

func TestTieredTransport(t *testing.T) {
	// Frame coalescing over a multi-hop route: messages from cluster 1 to
	// cluster 3 coalesce at gateway 1, and the frames hop store-and-forward
	// across the trunk with in-order reassembly at gateway 3.
	par := testParams()
	par.MaxFrameBytes = 4096
	par.CoalesceWindow = 100 * time.Microsecond
	e, n := tieredTestNet(t, par, 2)
	if !n.TransportActive() {
		t.Fatal("transport off")
	}
	var got []int
	n.SetHandler(6, func(m Msg) { got = append(got, m.Payload.(int)) })
	for i := 0; i < 20; i++ {
		n.Send(Msg{From: 2, To: 6, Kind: KindData, Size: 300, Payload: i})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("delivered %d of 20", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
	st := n.Stats()
	if st.WANFrames().Msgs == 0 || st.FramedMsgs() != 20 {
		t.Fatalf("frame stats %v", st)
	}
	if st.WANFrames().Msgs >= 20 {
		t.Fatalf("no coalescing: %d frames for 20 msgs", st.WANFrames().Msgs)
	}
	// End-to-end frames are charged once in Stats but traverse two physical
	// links (leaf 1→0, trunk 0→2, leaf 2→3): per-hop wire accounting shows
	// the route's extra transmissions in the class reports.
	cr := n.ClassReports()
	var total int64
	for _, r := range cr {
		total += r.Frames
	}
	if want := 3 * st.WANFrames().Msgs; total != want {
		t.Fatalf("per-hop frames %d, want %d (%+v)", total, want, cr)
	}
}

func TestRouteWithoutLinkPanics(t *testing.T) {
	// A declared graph must never take the lazy mesh path: a hop without a
	// physical link is a routing bug and panics loudly.
	_, n := tieredTestNet(t, testParams(), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for undeclared link")
		}
	}()
	n.linkFor(1, 3)
}
