// Route health and adaptive failover for link fault domains.
//
// When the installed fault policy schedules hard link failures
// (LinkFaultPolicy with HasLinkDowns), every WAN transmission first asks
// routeOrHold for a live next hop. The preferred (static) hop is used when
// its link is up; otherwise the topology's redundancy is exploited — the
// second direction of a ring backbone, a one-intermediate detour on a mesh
// (cluster.Graph.NextAvoiding) — and the detour is counted as a reroute.
// When no route exists at all, the wire unit (plain message or coalesced
// frame) parks in a bounded per-destination hold queue at the gateway,
// retried on a virtual-time timer with exponential backoff and drained in
// FIFO order once a route heals. Units held past holdTimeout, or arriving
// at a full queue, are dropped and counted (HoldDrops): end-to-end recovery
// is ARQ's job, the network only bridges transient outages.
//
// Everything here is per-source-cluster state touched only on the owning
// cluster's LP, and every verdict is a pure function of virtual time, so
// sharded runs stay byte-identical to sequential ones. Without a link
// failure plan (n.linkFault == nil) none of this code runs and the static
// routing path is untouched.
package netsim

import "time"

const (
	holdRetryBase = 10 * time.Millisecond  // first retry delay after parking
	holdRetryMax  = 160 * time.Millisecond // backoff cap while the route is down
	holdTimeout   = 2 * time.Second        // parked longer than this → dropped
	holdQueueCap  = 512                    // wire units per (gateway, destination)
)

// routeOrHold picks the next hop for a wire unit leaving cluster cur toward
// cd, or parks it. A non-empty hold queue for the destination means earlier
// traffic is still parked, so the unit queues behind it even if the route
// just healed (FIFO per channel is the ordering contract the upper layers
// rely on); the healed queue drains wholesale at the next retry tick.
func (n *Network) routeOrHold(sh *netShard, now time.Duration, cur, cd int, it holdItem) (next int, ok bool) {
	if q := n.hold[cur][int32(cd)]; q != nil && len(q.items) > 0 {
		q.push(now, it)
		return 0, false
	}
	next, ok = n.routeNext(sh, now, cur, cd)
	if !ok {
		n.holdFor(cur, cd).push(now, it)
		return 0, false
	}
	return next, true
}

// routeNext computes a live next hop from cur toward cd, counting a reroute
// when the hop differs from the static route. ok is false when every
// candidate path's first link is down.
func (n *Network) routeNext(sh *netShard, now time.Duration, cur, cd int) (int, bool) {
	lf := n.linkFault
	if n.graph == nil {
		// Implicit full mesh: direct link, else a one-intermediate detour
		// (lowest cluster index with both legs up, so the choice is
		// deterministic).
		if !lf.LinkDown(now, cur, cd) {
			return cd, true
		}
		for w := 0; w < n.nclusters; w++ {
			if w == cur || w == cd {
				continue
			}
			if !lf.LinkDown(now, cur, w) && !lf.LinkDown(now, w, cd) {
				sh.stats.reroutes++
				return w, true
			}
		}
		return 0, false
	}
	next, ok := n.graph.NextAvoiding(cur, cd, func(a, b int) bool { return lf.LinkDown(now, a, b) })
	if !ok {
		return 0, false
	}
	if next != n.graph.Next(cur, cd) {
		sh.stats.reroutes++
	}
	return next, true
}

// holdItem is one parked wire unit: exactly one of t (plain message transit)
// or f (coalesced frame) is set. at is the parking instant, for the timeout.
type holdItem struct {
	t  *wanTransit
	f  *frame
	at time.Duration
}

// holdQ is the bounded queue of wire units parked at cluster cur's gateway
// because no route toward cd exists. It lives in cur's per-cluster hold map
// and is touched only on cur's LP. Invariant: the retry timer is pending
// iff items is non-empty, so at most one timer per queue is ever in flight.
type holdQ struct {
	n       *Network
	cur, cd int
	items   []holdItem
	backoff time.Duration
	pending bool
	retryFn func() // bound to (*holdQ).retry once
}

// holdFor returns the hold queue for (cur → cd), creating it on first use
// (on cur's LP).
func (n *Network) holdFor(cur, cd int) *holdQ {
	m := n.hold[cur]
	if m == nil {
		m = make(map[int32]*holdQ, 2)
		n.hold[cur] = m
	}
	q := m[int32(cd)]
	if q == nil {
		q = &holdQ{n: n, cur: cur, cd: cd}
		q.retryFn = q.retry
		m[int32(cd)] = q
	}
	return q
}

// push parks one wire unit, arming the retry timer when the queue was idle.
// A full queue drops the newcomer immediately — bounding gateway memory
// beats preserving traffic the sender will retransmit anyway.
func (q *holdQ) push(now time.Duration, it holdItem) {
	sh := q.n.sh[q.cur]
	if len(q.items) >= holdQueueCap {
		q.n.dropHeld(sh, now, it)
		return
	}
	sh.stats.heldMsgs++
	q.items = append(q.items, it)
	if !q.pending {
		q.pending = true
		q.backoff = holdRetryBase
		sh.e.At(now+q.backoff, q.retryFn)
	}
}

// retry fires on the backoff timer: age out units held past the timeout,
// then either drain the queue over a healed route or double the backoff and
// rearm. Draining transmits in arrival order at the retry instant — the
// pipe's FIFO serialization then spaces the burst out like any other queue.
func (q *holdQ) retry() {
	sh := q.n.sh[q.cur]
	now := sh.e.Now()
	aged := 0
	for aged < len(q.items) && now-q.items[aged].at >= holdTimeout {
		q.n.dropHeld(sh, now, q.items[aged])
		aged++
	}
	if aged > 0 {
		kept := copy(q.items, q.items[aged:])
		for i := kept; i < len(q.items); i++ {
			q.items[i] = holdItem{} // drop stale references past the new tail
		}
		q.items = q.items[:kept]
	}
	if len(q.items) == 0 {
		q.pending = false
		return
	}
	if q.drain(sh, now) {
		q.pending = false
		return
	}
	q.backoff *= 2
	if q.backoff > holdRetryMax {
		q.backoff = holdRetryMax
	}
	sh.e.At(now+q.backoff, q.retryFn)
}

// drain transmits parked units in FIFO order while a route exists,
// reporting whether the queue emptied. Each unit routes individually so
// reroute accounting stays per transmission.
func (q *holdQ) drain(sh *netShard, now time.Duration) bool {
	for i := range q.items {
		next, ok := q.n.routeNext(sh, now, q.cur, q.cd)
		if !ok {
			kept := copy(q.items, q.items[i:])
			for j := kept; j < len(q.items); j++ {
				q.items[j] = holdItem{}
			}
			q.items = q.items[:kept]
			return false
		}
		it := q.items[i]
		q.items[i] = holdItem{}
		if it.t != nil {
			it.t.transmitOn(sh, now, next)
		} else {
			q.n.transmitFrame(it.f, now, next)
		}
	}
	q.items = q.items[:0]
	return true
}

// dropHeld gives up on one wire unit: plain transits are released silently
// (the loss is ARQ's to detect), frames additionally deliver a sequence
// tombstone so the remote reassembler never wedges behind the gap.
func (n *Network) dropHeld(sh *netShard, now time.Duration, it holdItem) {
	sh.stats.holdDrops++
	if it.f != nil {
		n.loseFrameSeq(sh, now, it.f)
		return
	}
	it.t.releaseTo(sh)
}

// loseFrameSeq releases a frame whose payload is lost mid-route and
// schedules its sequence tombstone at the destination's reassembler, the
// routed latency floor from the loss site to the destination away — the
// earliest a loss could become known remotely, and by construction ≥ the
// LP pair's lookahead floor, so the cross-LP schedule is legal in any
// window. (A single link's latency would undercut the end-to-end floor on
// multi-hop routes.) Without the tombstone, frames arriving over an
// alternate path (or after heal) would wait forever on the lost sequence
// number. routeFloor is non-nil whenever link faults are installed
// (SetFaultPolicy builds it).
func (n *Network) loseFrameSeq(sh *netShard, now time.Duration, f *frame) {
	cs, cd, seq := f.cs, f.cd, f.seq
	at := now + n.routeFloor[f.cur][cd]
	dst := n.sh[cd]
	sh.e.AtShard(dst.e, at, func() {
		n.ingressFor(cs, cd).consumeLost(dst.e.Now(), seq)
	})
	f.release(sh)
}
