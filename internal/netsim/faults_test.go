package netsim

import (
	"strings"
	"testing"
	"time"

	"albatross/internal/sim"
)

// testPolicy is a FaultPolicy built from optional closures; nil fields
// behave like the perfect network. A non-nil linkDown makes it a
// LinkFaultPolicy with scheduled link failures.
type testPolicy struct {
	transit  func(at time.Duration, cs, cd int, m Msg) (FaultAction, time.Duration)
	quality  func(at time.Duration) (float64, float64)
	gwDown   func(at time.Duration, c int, m Msg) bool
	linkDown func(at time.Duration, from, to int) bool
}

func (p *testPolicy) WANTransit(at time.Duration, cs, cd int, m Msg) (FaultAction, time.Duration) {
	if p.transit == nil {
		return FaultDeliver, 0
	}
	return p.transit(at, cs, cd, m)
}

func (p *testPolicy) WANQuality(at time.Duration) (float64, float64) {
	if p.quality == nil {
		return 1, 1
	}
	return p.quality(at)
}

func (p *testPolicy) GatewayDown(at time.Duration, c int, m Msg) bool {
	if p.gwDown == nil {
		return false
	}
	return p.gwDown(at, c, m)
}

func (p *testPolicy) LinkDown(at time.Duration, from, to int) bool {
	if p.linkDown == nil {
		return false
	}
	return p.linkDown(at, from, to)
}

func (p *testPolicy) HasLinkDowns() bool { return p.linkDown != nil }

var _ LinkFaultPolicy = (*testPolicy)(nil)

func TestFaultDropLosesMessage(t *testing.T) {
	e, n := build(2, 2)
	n.SetFaultPolicy(&testPolicy{
		transit: func(time.Duration, int, int, Msg) (FaultAction, time.Duration) {
			return FaultDrop, 0
		},
	})
	n.Send(Msg{From: 0, To: 2, Kind: KindData, Size: 1000})
	n.Send(Msg{From: 0, To: 1, Kind: KindData, Size: 1000}) // LAN: never faulted
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := n.Inbox(2).Len(); got != 0 {
		t.Fatalf("dropped WAN message delivered (%d in inbox)", got)
	}
	if got := n.Inbox(1).Len(); got != 1 {
		t.Fatalf("LAN message faulted (%d in inbox, want 1)", got)
	}
}

func TestFaultDuplicateDeliversTwice(t *testing.T) {
	// An always-duplicate policy must deliver exactly two copies: the
	// duplicate is exempt from further verdicts, so it cannot cascade.
	e, n := build(2, 2)
	n.SetFaultPolicy(&testPolicy{
		transit: func(time.Duration, int, int, Msg) (FaultAction, time.Duration) {
			return FaultDuplicate, 0
		},
	})
	n.Send(Msg{From: 0, To: 2, Kind: KindData, Size: 1000})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := n.Inbox(2).Len(); got != 2 {
		t.Fatalf("duplicated message delivered %d times, want 2", got)
	}
	// Both copies paid for pipe bandwidth.
	reps := n.PipeReports()
	if len(reps) != 1 || reps[0].Msgs != 2 || reps[0].Bytes != 2000 {
		t.Fatalf("pipe reports %+v, want one pipe with 2 msgs / 2000 bytes", reps)
	}
}

// TestFaultDuplicateRespectsLocalGatewayCrash is the regression test for the
// duplicate/crash interaction: a duplicate copy skips further drop/duplicate
// verdicts, but the FaultDuplicate contract keeps it subject to gateway
// crashes. The policy duplicates the message, then crashes the local gateway
// for the duplicate's own forwarding (its second consultation) — so exactly
// one copy may cross the WAN. Before the fix, the duplicate bypassed the
// GatewayDown check entirely and two copies arrived.
func TestFaultDuplicateRespectsLocalGatewayCrash(t *testing.T) {
	e, n := build(2, 2)
	localChecks := 0
	n.SetFaultPolicy(&testPolicy{
		transit: func(time.Duration, int, int, Msg) (FaultAction, time.Duration) {
			return FaultDuplicate, 0
		},
		gwDown: func(_ time.Duration, c int, _ Msg) bool {
			if c != 0 {
				return false // remote gateway stays up
			}
			localChecks++
			return localChecks == 2 // up for the original, down for the duplicate
		},
	})
	n.Send(Msg{From: 0, To: 2, Kind: KindData, Size: 1000})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if localChecks < 2 {
		t.Fatalf("duplicate skipped the local GatewayDown check (%d checks)", localChecks)
	}
	if got := n.Inbox(2).Len(); got != 1 {
		t.Fatalf("delivered %d copies, want 1 (duplicate lost to crashed gateway)", got)
	}
	reps := n.PipeReports()
	if len(reps) != 1 || reps[0].Msgs != 1 {
		t.Fatalf("pipe carried %+v, want the single surviving copy", reps)
	}
}

func TestFaultGatewayCrashDropsBothSides(t *testing.T) {
	// A crashed local gateway loses the message before the WAN; a crashed
	// remote gateway loses it after the WAN transit.
	for _, down := range []int{0, 1} {
		e, n := build(2, 2)
		n.SetFaultPolicy(&testPolicy{
			gwDown: func(_ time.Duration, c int, _ Msg) bool { return c == down },
		})
		n.Send(Msg{From: 0, To: 2, Kind: KindData, Size: 1000})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if got := n.Inbox(2).Len(); got != 0 {
			t.Fatalf("message survived crashed gateway of cluster %d", down)
		}
		reps := n.PipeReports()
		if down == 0 && len(reps) != 0 {
			t.Fatalf("local-gateway crash still used the WAN pipe: %+v", reps)
		}
		if down == 1 && (len(reps) != 1 || reps[0].Msgs != 1) {
			t.Fatalf("remote-gateway crash should lose after transit: %+v", reps)
		}
	}
}

func TestFaultReorderDelay(t *testing.T) {
	// Delaying the first message past the second's arrival reorders them.
	e, n := build(2, 2)
	first := true
	n.SetFaultPolicy(&testPolicy{
		transit: func(time.Duration, int, int, Msg) (FaultAction, time.Duration) {
			if first {
				first = false
				return FaultDeliver, 50 * time.Millisecond
			}
			return FaultDeliver, 0
		},
	})
	n.Send(Msg{From: 0, To: 2, Kind: KindData, Size: 100, Payload: "a"})
	n.Send(Msg{From: 1, To: 2, Kind: KindData, Size: 100, Payload: "b"})
	var order []string
	e.Go("r", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			order = append(order, n.Inbox(2).Get(p).(Msg).Payload.(string))
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != "b" || order[1] != "a" {
		t.Fatalf("reorder delay did not reorder: %v", order)
	}
}

func TestFaultQualityComposesWithProfile(t *testing.T) {
	deliver := func(configure func(*Network)) time.Duration {
		e, n := build(2, 2)
		configure(n)
		n.Send(Msg{From: 0, To: 2, Kind: KindData, Size: 1000})
		var at time.Duration
		e.Go("r", func(p *sim.Proc) {
			n.Inbox(2).Get(p)
			at = p.Now()
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return at
	}
	base := deliver(func(*Network) {})
	// 3x latency, half bandwidth via the fault policy alone: +2ms latency,
	// +1ms serialization (same arithmetic as the WANProfile test).
	faultOnly := deliver(func(n *Network) {
		n.SetFaultPolicy(&testPolicy{
			quality: func(time.Duration) (float64, float64) { return 3, 0.5 },
		})
	})
	if want := base + 3*time.Millisecond; faultOnly != want {
		t.Fatalf("fault quality: %v, want %v", faultOnly, want)
	}
	// Profile 2x latency composed with fault 1.5x latency = 3x total.
	composed := deliver(func(n *Network) {
		n.SetWANProfile(func(time.Duration) (float64, float64) { return 2, 1 })
		n.SetFaultPolicy(&testPolicy{
			quality: func(time.Duration) (float64, float64) { return 1.5, 0.5 },
		})
	})
	if composed != faultOnly {
		t.Fatalf("composed quality %v, want %v", composed, faultOnly)
	}
}

// TestNoopFaultPolicyIsTransparent pins the guarantee that a policy ruling
// FaultDeliver with nominal quality gives bit-identical timing to no policy.
func TestNoopFaultPolicyIsTransparent(t *testing.T) {
	run := func(install bool) (time.Duration, uint64) {
		e, n := build(2, 2)
		if install {
			n.SetFaultPolicy(&testPolicy{})
		}
		n.Send(Msg{From: 0, To: 2, Kind: KindData, Size: 1000})
		n.Send(Msg{From: 1, To: 3, Kind: KindData, Size: 500})
		var last time.Duration
		e.Go("r", func(p *sim.Proc) {
			n.Inbox(2).Get(p)
			last = p.Now()
		})
		e.Go("r2", func(p *sim.Proc) {
			n.Inbox(3).Get(p)
			if p.Now() > last {
				last = p.Now()
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return last, e.Dispatched()
	}
	bareAt, bareEvents := run(false)
	noopAt, noopEvents := run(true)
	if bareAt != noopAt || bareEvents != noopEvents {
		t.Fatalf("no-op policy changed the run: %v/%d events vs %v/%d",
			bareAt, bareEvents, noopAt, noopEvents)
	}
}

func TestWANQualityValidation(t *testing.T) {
	cases := []struct {
		name    string
		install func(*Network)
		source  string
	}{
		{"profile negative latency", func(n *Network) {
			n.SetWANProfile(func(time.Duration) (float64, float64) { return -1, 1 })
		}, "WANProfile"},
		{"profile zero bandwidth", func(n *Network) {
			n.SetWANProfile(func(time.Duration) (float64, float64) { return 1, 0 })
		}, "WANProfile"},
		{"profile NaN", func(n *Network) {
			nan := 0.0
			nan /= nan
			bad := nan // silence constant-folding; NaN must be rejected
			n.SetWANProfile(func(time.Duration) (float64, float64) { return bad, 1 })
		}, "WANProfile"},
		{"policy negative bandwidth", func(n *Network) {
			n.SetFaultPolicy(&testPolicy{
				quality: func(time.Duration) (float64, float64) { return 1, -2 },
			})
		}, "FaultPolicy"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, n := build(2, 2)
			tc.install(n)
			n.Send(Msg{From: 0, To: 2, Kind: KindData, Size: 1000})
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("invalid WAN quality sample not rejected")
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, tc.source) || !strings.Contains(msg, "invalid WAN scales") {
					t.Fatalf("panic %v does not name the source %q", r, tc.source)
				}
			}()
			_ = e.Run()
		})
	}
}
