package netsim

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/sim"
)

// constructSizes are the platform scales the scaling benchmark sweeps. The
// acceptance bar is at 256: sparse construction must undercut the dense
// per-pair representation by >=10x in bytes/op.
var constructSizes = []int{4, 64, 256}

// constructTopo builds a tiered platform with the given total cluster count:
// 4 ring roots, then fan-outs of 3 and 4 (4·(1+3)+… per tier), two compute
// nodes per cluster — the same node count as the dense baseline's DAS(c, 2).
func constructTopo(tb testing.TB, clusters int) cluster.Topology {
	fanouts := map[int][]int{4: {}, 64: {3, 4}, 256: {3, 4, 4}}[clusters]
	if fanouts == nil {
		tb.Fatalf("no tier chain for %d clusters", clusters)
	}
	b := cluster.NewBuilder()
	trunk := b.Class("trunk", 20*time.Millisecond, cluster.Mbit(155), 2)
	leaf := b.Class("leaf", 5*time.Millisecond, cluster.Mbit(45), 0)
	tier := b.Roots(4, cluster.Ring, trunk, 2)
	for _, fanout := range fanouts {
		tier = b.Tier(tier, fanout, leaf, 2)
	}
	topo, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	if topo.Clusters != clusters {
		tb.Fatalf("tiered platform has %d clusters, want %d", topo.Clusters, clusters)
	}
	return topo
}

// BenchmarkNetworkConstruct measures building the network for a tiered
// platform: near-linear in physical links, however many clusters.
func BenchmarkNetworkConstruct(b *testing.B) {
	par := cluster.DASParams()
	for _, c := range constructSizes {
		topo := constructTopo(b, c)
		b.Run(fmt.Sprintf("c=%d", c), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := sim.NewEngine()
				n := New(e, topo, par)
				runtime.KeepAlive(n)
			}
		})
	}
}

// BenchmarkNetworkConstructDense is the memory baseline: it reproduces the
// representation this package used before the sparse refactor — one pipe
// per (src, dst) cluster pair plus the flattened per-node tables, allocated
// up front — on a full mesh with the same node count (DAS(c, 2)).
func BenchmarkNetworkConstructDense(b *testing.B) {
	for _, c := range constructSizes {
		topo := cluster.DAS(c, 2)
		b.Run(fmt.Sprintf("c=%d", c), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := sim.NewEngine()
				runtime.KeepAlive(denseConstruct(e, topo))
			}
		})
	}
}

// denseNet mirrors the pre-refactor Network layout's allocation profile.
type denseNet struct {
	nodes     []*node
	pipes     []pipe
	clusterOf []int
	isGW      []bool
	gateways  []cluster.NodeID
	members   [][]cluster.NodeID
}

func denseConstruct(e *sim.Engine, topo cluster.Topology) *denseNet {
	d := &denseNet{
		nodes:     make([]*node, topo.Total()),
		pipes:     make([]pipe, topo.Clusters*topo.Clusters),
		clusterOf: make([]int, topo.Total()),
		isGW:      make([]bool, topo.Total()),
	}
	for i := range d.clusterOf {
		d.clusterOf[i] = topo.ClusterOf(cluster.NodeID(i))
		d.isGW[i] = topo.IsGateway(cluster.NodeID(i))
	}
	for i := range d.nodes {
		id := cluster.NodeID(i)
		d.nodes[i] = &node{id: id, inbox: sim.NewMailbox(e, fmt.Sprintf("inbox-%d", i))}
	}
	d.members = make([][]cluster.NodeID, topo.Clusters)
	for c := range d.members {
		d.members[c] = topo.Nodes(c)
	}
	if topo.Clusters > 1 {
		d.gateways = make([]cluster.NodeID, topo.Clusters)
		for c := range d.gateways {
			d.gateways[c] = topo.Gateway(c)
		}
	}
	return d
}
