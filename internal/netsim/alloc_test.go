//go:build !race

// Alloc-regression tests for the sparse WAN data path: once the pools and
// the lazily-materialized links are warm, steady-state sends — LAN, mesh
// WAN, multi-hop tiered WAN, and framed transport WAN — must not allocate.
// A change that reintroduces per-message allocation (per-pair tables, map
// churn on the pipe index, unpooled hop records) fails here long before it
// shows up in the benchmarks.
//
// Excluded under the race detector: instrumentation inflates allocation
// counts and these budgets are meaningless there.
package netsim

import (
	"testing"
	"time"

	"albatross/internal/cluster"
	"albatross/internal/sim"
)

// netStep returns a function that sends one message and drains the engine,
// so everything the send schedules (gateway hops, pipe transits, deliveries)
// is charged to that step.
func netStep(e *sim.Engine, n *Network, from, to cluster.NodeID, size int) func() {
	n.SetHandler(to, func(Msg) {})
	m := Msg{From: from, To: to, Kind: KindData, Size: size}
	return func() {
		n.Send(m)
		if err := e.Run(); err != nil {
			panic(err)
		}
	}
}

func allocBudget(t *testing.T, name string, step func(), budget float64) {
	t.Helper()
	for i := 0; i < 16; i++ {
		step() // warm pools, lazy links, egress queues and event free lists
	}
	if got := testing.AllocsPerRun(100, step); got > budget {
		t.Fatalf("%s: %.1f allocs/op, budget %.1f", name, got, budget)
	}
}

func TestAllocLANSend(t *testing.T) {
	e, n := build(1, 4)
	allocBudget(t, "lan send", netStep(e, n, 0, 1, 1000), 0)
}

func TestAllocWANSendMesh(t *testing.T) {
	// The DAS fast path: one WAN hop on a lazily-materialized mesh link.
	e, n := build(4, 4)
	allocBudget(t, "mesh wan send", netStep(e, n, 0, 13, 1000), 0)
}

func TestAllocWANSendTiered(t *testing.T) {
	// Three hops (leaf, trunk, leaf) through two intermediate gateways: the
	// pooled transit record must carry the message the whole way without
	// allocating per hop.
	e, n := tieredTestNet(t, testParams(), 0)
	allocBudget(t, "tiered wan send", netStep(e, n, 2, 6, 1000), 0)
}

func TestAllocWANSendTransport(t *testing.T) {
	// Framed path on the mesh: egress coalescing, frame transmit, reassembly.
	par := testParams()
	par.MaxFrameBytes = 32 << 10
	par.CoalesceWindow = 100 * time.Microsecond
	par.WANStreams = 4
	e := sim.NewEngine()
	n := New(e, cluster.DAS(4, 4), par)
	allocBudget(t, "transport wan send", netStep(e, n, 0, 13, 1000), 0)
}

func TestAllocWANSendTransportTiered(t *testing.T) {
	par := testParams()
	par.MaxFrameBytes = 32 << 10
	par.CoalesceWindow = 100 * time.Microsecond
	e, n := tieredTestNet(t, par, 2)
	allocBudget(t, "tiered transport send", netStep(e, n, 2, 6, 1000), 0)
}
