package netsim

import (
	"fmt"
	"strings"
)

// Counter accumulates message count and byte volume.
type Counter struct {
	Msgs  int64
	Bytes int64
}

func (c *Counter) add(size int) {
	c.Msgs++
	c.Bytes += int64(size)
}

// Add merges another counter into c.
func (c *Counter) Add(o Counter) {
	c.Msgs += o.Msgs
	c.Bytes += o.Bytes
}

// KBytes reports the byte volume in kilobytes (paper units: 1 kB = 1024 B).
func (c Counter) KBytes() float64 { return float64(c.Bytes) / 1024 }

// Stats meters all traffic of a Network, split by locality and kind.
// It is the data source for the paper's traffic tables.
type Stats struct {
	Intra [NumKinds]Counter // traffic that stayed inside a cluster
	Inter [NumKinds]Counter // traffic that crossed a WAN link
}

func (s *Stats) init() {}

func (s *Stats) count(inter bool, k Kind, size int) {
	if inter {
		s.Inter[k].add(size)
	} else {
		s.Intra[k].add(size)
	}
}

// Reset zeroes all counters (used to exclude warm-up or setup traffic).
func (s *Stats) Reset() { *s = Stats{} }

// Clone returns a copy of the current counters.
func (s *Stats) Clone() Stats { return *s }

// Diff returns the traffic accumulated since the earlier snapshot.
func (s *Stats) Diff(earlier Stats) Stats {
	var d Stats
	for k := 0; k < NumKinds; k++ {
		d.Intra[k] = Counter{s.Intra[k].Msgs - earlier.Intra[k].Msgs, s.Intra[k].Bytes - earlier.Intra[k].Bytes}
		d.Inter[k] = Counter{s.Inter[k].Msgs - earlier.Inter[k].Msgs, s.Inter[k].Bytes - earlier.Inter[k].Bytes}
	}
	return d
}

// TotalIntra sums all intracluster traffic.
func (s *Stats) TotalIntra() Counter {
	var t Counter
	for k := 0; k < NumKinds; k++ {
		t.Add(s.Intra[k])
	}
	return t
}

// TotalInter sums all intercluster traffic.
func (s *Stats) TotalInter() Counter {
	var t Counter
	for k := 0; k < NumKinds; k++ {
		t.Add(s.Inter[k])
	}
	return t
}

// InterRPC reports intercluster RPC traffic (requests + replies), in the
// paper's Table 4/5 convention: the count is the number of requests that
// crossed a WAN link and the volume includes both directions.
func (s *Stats) InterRPC() Counter {
	return Counter{
		Msgs:  s.Inter[KindRPCReq].Msgs,
		Bytes: s.Inter[KindRPCReq].Bytes + s.Inter[KindRPCRep].Bytes,
	}
}

// InterBcast reports intercluster broadcast traffic.
func (s *Stats) InterBcast() Counter { return s.Inter[KindBcast] }

// InterData reports intercluster bulk-data traffic.
func (s *Stats) InterData() Counter { return s.Inter[KindData] }

func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "intra: ")
	for k := 0; k < NumKinds; k++ {
		if s.Intra[k].Msgs > 0 {
			fmt.Fprintf(&b, "%s=%d/%.0fkB ", Kind(k), s.Intra[k].Msgs, s.Intra[k].KBytes())
		}
	}
	fmt.Fprintf(&b, "| inter: ")
	for k := 0; k < NumKinds; k++ {
		if s.Inter[k].Msgs > 0 {
			fmt.Fprintf(&b, "%s=%d/%.0fkB ", Kind(k), s.Inter[k].Msgs, s.Inter[k].KBytes())
		}
	}
	return strings.TrimSpace(b.String())
}
