package netsim

import (
	"fmt"
	"strings"
	"time"
)

// Counter accumulates message count and byte volume.
type Counter struct {
	Msgs  int64
	Bytes int64
}

// Add merges another counter into c.
func (c *Counter) Add(o Counter) {
	c.Msgs += o.Msgs
	c.Bytes += o.Bytes
}

// KBytes reports the byte volume in kilobytes (paper units: 1 kB = 1024 B).
func (c Counter) KBytes() float64 { return float64(c.Bytes) / 1024 }

// Scope indices into Stats.counts: the send path passes them as constants,
// so metering a message is a branch-free array index.
const (
	scopeIntra = 0 // traffic that stayed inside a cluster
	scopeInter = 1 // traffic that crossed a WAN link
)

// Stats meters all traffic of a Network, split by locality and kind.
// It is the data source for the paper's traffic tables.
type Stats struct {
	counts [2][NumKinds]Counter // [scopeIntra|scopeInter][kind]

	// Gateway transport layer (transport.go): frames counts coalesced WAN
	// transmissions (Bytes = framed payload volume) and framedMsgs the
	// application messages packed inside them. Both stay zero when the
	// layer is off; the per-kind tables above always meter application
	// messages, framed or not.
	frames     Counter
	framedMsgs int64

	// Route-health accounting (link fault domains): reroutes counts
	// transmissions that took an alternate next hop because the preferred
	// link was down, heldMsgs the wire units (messages or frames) parked in
	// a gateway hold queue because no route existed, and holdDrops the held
	// units eventually dropped (hold timeout or queue overflow) — the
	// network's end of the contract that ARQ owns recovery. All stay zero
	// without a link-failure plan.
	reroutes  int64
	heldMsgs  int64
	holdDrops int64
}

func (s *Stats) count(scope int, k Kind, size int) {
	c := &s.counts[scope][k]
	c.Msgs++
	c.Bytes += int64(size)
}

// Intra reports the intracluster traffic of one message kind.
func (s *Stats) Intra(k Kind) Counter { return s.counts[scopeIntra][k] }

// Inter reports the intercluster traffic of one message kind.
func (s *Stats) Inter(k Kind) Counter { return s.counts[scopeInter][k] }

// Reset zeroes all counters (used to exclude warm-up or setup traffic).
func (s *Stats) Reset() { *s = Stats{} }

// Clone returns a copy of the current counters.
func (s *Stats) Clone() Stats { return *s }

// Diff returns the traffic accumulated since the earlier snapshot.
func (s *Stats) Diff(earlier Stats) Stats {
	var d Stats
	for scope := 0; scope < 2; scope++ {
		for k := 0; k < NumKinds; k++ {
			d.counts[scope][k] = Counter{
				s.counts[scope][k].Msgs - earlier.counts[scope][k].Msgs,
				s.counts[scope][k].Bytes - earlier.counts[scope][k].Bytes,
			}
		}
	}
	d.frames = Counter{s.frames.Msgs - earlier.frames.Msgs, s.frames.Bytes - earlier.frames.Bytes}
	d.framedMsgs = s.framedMsgs - earlier.framedMsgs
	d.reroutes = s.reroutes - earlier.reroutes
	d.heldMsgs = s.heldMsgs - earlier.heldMsgs
	d.holdDrops = s.holdDrops - earlier.holdDrops
	return d
}

// Reroutes reports transmissions that detoured around a down link.
func (s *Stats) Reroutes() int64 { return s.reroutes }

// HeldMsgs reports wire units parked in gateway hold queues while no route
// to their destination existed.
func (s *Stats) HeldMsgs() int64 { return s.heldMsgs }

// HoldDrops reports held wire units the network eventually gave up on
// (hold timeout or hold-queue overflow).
func (s *Stats) HoldDrops() int64 { return s.holdDrops }

// WANFrames reports the coalesced transport frames that crossed WAN links:
// Msgs is the wire-level transmission count, Bytes the framed payload volume.
// Zero when the gateway transport layer is off.
func (s *Stats) WANFrames() Counter { return s.frames }

// FramedMsgs reports how many application messages those frames carried.
func (s *Stats) FramedMsgs() int64 { return s.framedMsgs }

// PackingRatio reports the average application messages per WAN frame — the
// transport layer's packing efficiency (0 when no frames were sent).
func (s *Stats) PackingRatio() float64 {
	if s.frames.Msgs == 0 {
		return 0
	}
	return float64(s.framedMsgs) / float64(s.frames.Msgs)
}

// TotalIntra sums all intracluster traffic.
func (s *Stats) TotalIntra() Counter {
	var t Counter
	for k := 0; k < NumKinds; k++ {
		t.Add(s.counts[scopeIntra][k])
	}
	return t
}

// TotalInter sums all intercluster traffic.
func (s *Stats) TotalInter() Counter {
	var t Counter
	for k := 0; k < NumKinds; k++ {
		t.Add(s.counts[scopeInter][k])
	}
	return t
}

// InterRPC reports intercluster RPC traffic (requests + replies), in the
// paper's Table 4/5 convention: the count is the number of requests that
// crossed a WAN link and the volume includes both directions.
func (s *Stats) InterRPC() Counter {
	return Counter{
		Msgs:  s.counts[scopeInter][KindRPCReq].Msgs,
		Bytes: s.counts[scopeInter][KindRPCReq].Bytes + s.counts[scopeInter][KindRPCRep].Bytes,
	}
}

// InterBcast reports intercluster broadcast traffic.
func (s *Stats) InterBcast() Counter { return s.counts[scopeInter][KindBcast] }

// InterData reports intercluster bulk-data traffic.
func (s *Stats) InterData() Counter { return s.counts[scopeInter][KindData] }

func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "intra: ")
	for k := 0; k < NumKinds; k++ {
		if c := s.counts[scopeIntra][k]; c.Msgs > 0 {
			fmt.Fprintf(&b, "%s=%d/%.0fkB ", Kind(k), c.Msgs, c.KBytes())
		}
	}
	fmt.Fprintf(&b, "| inter: ")
	for k := 0; k < NumKinds; k++ {
		if c := s.counts[scopeInter][k]; c.Msgs > 0 {
			fmt.Fprintf(&b, "%s=%d/%.0fkB ", Kind(k), c.Msgs, c.KBytes())
		}
	}
	if s.frames.Msgs > 0 {
		fmt.Fprintf(&b, "| frames: %d/%.0fkB packing=%.1f ",
			s.frames.Msgs, s.frames.KBytes(), s.PackingRatio())
	}
	if s.reroutes > 0 || s.heldMsgs > 0 || s.holdDrops > 0 {
		fmt.Fprintf(&b, "| routes: reroutes=%d held=%d holddrops=%d ",
			s.reroutes, s.heldMsgs, s.holdDrops)
	}
	return strings.TrimSpace(b.String())
}

// p2Quantile is the P² streaming quantile estimator (Jain & Chlamtac, CACM
// 1985): five markers track the running min, p/2, p, (1+p)/2 quantiles and
// max, adjusted by piecewise-parabolic interpolation on every observation.
// Memory is O(1) and an observation costs a handful of comparisons — the
// per-link-class queueing-delay tails stay cheap however many transmissions
// a grid-scale run makes. Below five samples the raw values are kept and the
// estimate is exact.
type p2Quantile struct {
	p   float64 // target quantile, set by the first observation
	n   int64
	q   [5]float64 // marker heights
	pos [5]float64 // actual marker positions (1-based)
	des [5]float64 // desired marker positions
	inc [5]float64 // desired-position increments per observation
}

func (s *p2Quantile) observe(p, x float64) {
	if s.n < 5 {
		s.p = p
		s.q[s.n] = x
		s.n++
		if s.n == 5 {
			// Switch to marker mode: sort the first five samples and lay
			// the desired positions out for quantile p.
			for i := 1; i < 5; i++ {
				for j := i; j > 0 && s.q[j] < s.q[j-1]; j-- {
					s.q[j], s.q[j-1] = s.q[j-1], s.q[j]
				}
			}
			s.pos = [5]float64{1, 2, 3, 4, 5}
			s.des = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
			s.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
		}
		return
	}
	var k int
	switch {
	case x < s.q[0]:
		s.q[0] = x
		k = 0
	case x >= s.q[4]:
		s.q[4] = x
		k = 3
	default:
		for x >= s.q[k+1] {
			k++
		}
	}
	for i := k + 1; i < 5; i++ {
		s.pos[i]++
	}
	for i := range s.des {
		s.des[i] += s.inc[i]
	}
	s.n++
	for i := 1; i <= 3; i++ {
		d := s.des[i] - s.pos[i]
		if (d >= 1 && s.pos[i+1]-s.pos[i] > 1) || (d <= -1 && s.pos[i-1]-s.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			// Parabolic prediction, falling back to linear when it would
			// break marker monotonicity.
			q := s.parabolic(i, sign)
			if !(s.q[i-1] < q && q < s.q[i+1]) {
				q = s.linear(i, sign)
			}
			s.q[i] = q
			s.pos[i] += sign
		}
	}
}

func (s *p2Quantile) parabolic(i int, d float64) float64 {
	return s.q[i] + d/(s.pos[i+1]-s.pos[i-1])*
		((s.pos[i]-s.pos[i-1]+d)*(s.q[i+1]-s.q[i])/(s.pos[i+1]-s.pos[i])+
			(s.pos[i+1]-s.pos[i]-d)*(s.q[i]-s.q[i-1])/(s.pos[i]-s.pos[i-1]))
}

func (s *p2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return s.q[i] + d*(s.q[j]-s.q[i])/(s.pos[j]-s.pos[i])
}

// estimate returns the current quantile estimate: the middle marker in
// marker mode, the exact nearest-rank quantile below five samples.
func (s *p2Quantile) estimate() float64 {
	if s.n == 0 {
		return 0
	}
	if s.n < 5 {
		var sorted [5]float64
		copy(sorted[:], s.q[:s.n])
		for i := 1; i < int(s.n); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		rank := int(s.p*float64(s.n)+0.5) - 1
		if rank < 0 {
			rank = 0
		}
		if rank >= int(s.n) {
			rank = int(s.n) - 1
		}
		return sorted[rank]
	}
	return s.q[2]
}

// classAgg accumulates one cluster's transmissions on one link class as
// streaming O(1) aggregates — nothing is kept per pair or per sample, so
// grid-scale platforms pay constant stats memory per (cluster, class). Each
// instance is per-source-cluster state: under a sharded engine it is touched
// only by the owning cluster's LP, and because every LP executes its
// cluster's transmissions in the same relative order as the sequential
// engine, even the order-sensitive P² estimator converges to bit-identical
// state in both modes.
type classAgg struct {
	xmits   int64 // wire transmissions (a coalesced frame counts once)
	msgs    int64 // application messages carried
	frames  int64 // coalesced frames among the transmissions
	bytes   int64
	busy    time.Duration // cumulative transmission (serialization) time
	sumWait time.Duration // queueing delay behind earlier traffic
	minWait time.Duration
	maxWait time.Duration
	p99     p2Quantile // streaming tail estimate of the queueing delay
}

func (a *classAgg) observe(wait, xmit time.Duration, bytes, msgs int64, isFrame bool) {
	if a.xmits == 0 || wait < a.minWait {
		a.minWait = wait
	}
	if wait > a.maxWait {
		a.maxWait = wait
	}
	a.xmits++
	a.msgs += msgs
	if isFrame {
		a.frames++
	}
	a.bytes += bytes
	a.busy += xmit
	a.sumWait += wait
	a.p99.observe(0.99, float64(wait))
}

// ClassReport aggregates a run's wide-area traffic over one link class:
// wire-level (per-hop) transmission counts, volumes, link occupancy and the
// distribution of the queueing delay transmissions spent waiting behind
// earlier traffic on their pipe.
type ClassReport struct {
	Class    string
	Xmits    int64 // wire transmissions (a coalesced frame counts once per hop)
	Msgs     int64 // application messages carried (counted again on every hop)
	Frames   int64
	Bytes    int64
	Busy     time.Duration // cumulative serialization time across the class's pipes
	MinWait  time.Duration
	MeanWait time.Duration
	MaxWait  time.Duration
	P99Wait  time.Duration // P² streaming estimate
}

// Packing reports the class's average messages per frame (0 when no frames).
func (r ClassReport) Packing() float64 {
	if r.Frames == 0 {
		return 0
	}
	return float64(r.Msgs) / float64(r.Frames)
}

// ClassReports merges the per-cluster streaming aggregates into one report
// per link class, ordered by class, omitting classes that carried nothing.
// Counts, volumes and min/max merge exactly; the p99 is the count-weighted
// mean of the per-cluster P² estimates. The merge is a pure function of the
// per-cluster states folded in fixed cluster order, so sequential and
// sharded runs of the same workload render identical reports.
func (n *Network) ClassReports() []ClassReport {
	var out []ClassReport
	for ci := range n.classes {
		r := ClassReport{Class: n.classes[ci].name}
		var sumWait time.Duration
		var wp99 float64
		first := true
		for c := range n.agg {
			row := n.agg[c]
			if row == nil {
				continue
			}
			a := &row[ci]
			if a.xmits == 0 {
				continue
			}
			if first || a.minWait < r.MinWait {
				r.MinWait = a.minWait
			}
			if a.maxWait > r.MaxWait {
				r.MaxWait = a.maxWait
			}
			first = false
			r.Xmits += a.xmits
			r.Msgs += a.msgs
			r.Frames += a.frames
			r.Bytes += a.bytes
			r.Busy += a.busy
			sumWait += a.sumWait
			wp99 += float64(a.xmits) * a.p99.estimate()
		}
		if r.Xmits == 0 {
			continue
		}
		r.MeanWait = sumWait / time.Duration(r.Xmits)
		r.P99Wait = time.Duration(wp99 / float64(r.Xmits))
		out = append(out, r)
	}
	return out
}
