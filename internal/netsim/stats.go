package netsim

import (
	"fmt"
	"strings"
)

// Counter accumulates message count and byte volume.
type Counter struct {
	Msgs  int64
	Bytes int64
}

// Add merges another counter into c.
func (c *Counter) Add(o Counter) {
	c.Msgs += o.Msgs
	c.Bytes += o.Bytes
}

// KBytes reports the byte volume in kilobytes (paper units: 1 kB = 1024 B).
func (c Counter) KBytes() float64 { return float64(c.Bytes) / 1024 }

// Scope indices into Stats.counts: the send path passes them as constants,
// so metering a message is a branch-free array index.
const (
	scopeIntra = 0 // traffic that stayed inside a cluster
	scopeInter = 1 // traffic that crossed a WAN link
)

// Stats meters all traffic of a Network, split by locality and kind.
// It is the data source for the paper's traffic tables.
type Stats struct {
	counts [2][NumKinds]Counter // [scopeIntra|scopeInter][kind]

	// Gateway transport layer (transport.go): frames counts coalesced WAN
	// transmissions (Bytes = framed payload volume) and framedMsgs the
	// application messages packed inside them. Both stay zero when the
	// layer is off; the per-kind tables above always meter application
	// messages, framed or not.
	frames     Counter
	framedMsgs int64
}

func (s *Stats) count(scope int, k Kind, size int) {
	c := &s.counts[scope][k]
	c.Msgs++
	c.Bytes += int64(size)
}

// Intra reports the intracluster traffic of one message kind.
func (s *Stats) Intra(k Kind) Counter { return s.counts[scopeIntra][k] }

// Inter reports the intercluster traffic of one message kind.
func (s *Stats) Inter(k Kind) Counter { return s.counts[scopeInter][k] }

// Reset zeroes all counters (used to exclude warm-up or setup traffic).
func (s *Stats) Reset() { *s = Stats{} }

// Clone returns a copy of the current counters.
func (s *Stats) Clone() Stats { return *s }

// Diff returns the traffic accumulated since the earlier snapshot.
func (s *Stats) Diff(earlier Stats) Stats {
	var d Stats
	for scope := 0; scope < 2; scope++ {
		for k := 0; k < NumKinds; k++ {
			d.counts[scope][k] = Counter{
				s.counts[scope][k].Msgs - earlier.counts[scope][k].Msgs,
				s.counts[scope][k].Bytes - earlier.counts[scope][k].Bytes,
			}
		}
	}
	d.frames = Counter{s.frames.Msgs - earlier.frames.Msgs, s.frames.Bytes - earlier.frames.Bytes}
	d.framedMsgs = s.framedMsgs - earlier.framedMsgs
	return d
}

// WANFrames reports the coalesced transport frames that crossed WAN links:
// Msgs is the wire-level transmission count, Bytes the framed payload volume.
// Zero when the gateway transport layer is off.
func (s *Stats) WANFrames() Counter { return s.frames }

// FramedMsgs reports how many application messages those frames carried.
func (s *Stats) FramedMsgs() int64 { return s.framedMsgs }

// PackingRatio reports the average application messages per WAN frame — the
// transport layer's packing efficiency (0 when no frames were sent).
func (s *Stats) PackingRatio() float64 {
	if s.frames.Msgs == 0 {
		return 0
	}
	return float64(s.framedMsgs) / float64(s.frames.Msgs)
}

// TotalIntra sums all intracluster traffic.
func (s *Stats) TotalIntra() Counter {
	var t Counter
	for k := 0; k < NumKinds; k++ {
		t.Add(s.counts[scopeIntra][k])
	}
	return t
}

// TotalInter sums all intercluster traffic.
func (s *Stats) TotalInter() Counter {
	var t Counter
	for k := 0; k < NumKinds; k++ {
		t.Add(s.counts[scopeInter][k])
	}
	return t
}

// InterRPC reports intercluster RPC traffic (requests + replies), in the
// paper's Table 4/5 convention: the count is the number of requests that
// crossed a WAN link and the volume includes both directions.
func (s *Stats) InterRPC() Counter {
	return Counter{
		Msgs:  s.counts[scopeInter][KindRPCReq].Msgs,
		Bytes: s.counts[scopeInter][KindRPCReq].Bytes + s.counts[scopeInter][KindRPCRep].Bytes,
	}
}

// InterBcast reports intercluster broadcast traffic.
func (s *Stats) InterBcast() Counter { return s.counts[scopeInter][KindBcast] }

// InterData reports intercluster bulk-data traffic.
func (s *Stats) InterData() Counter { return s.counts[scopeInter][KindData] }

func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "intra: ")
	for k := 0; k < NumKinds; k++ {
		if c := s.counts[scopeIntra][k]; c.Msgs > 0 {
			fmt.Fprintf(&b, "%s=%d/%.0fkB ", Kind(k), c.Msgs, c.KBytes())
		}
	}
	fmt.Fprintf(&b, "| inter: ")
	for k := 0; k < NumKinds; k++ {
		if c := s.counts[scopeInter][k]; c.Msgs > 0 {
			fmt.Fprintf(&b, "%s=%d/%.0fkB ", Kind(k), c.Msgs, c.KBytes())
		}
	}
	if s.frames.Msgs > 0 {
		fmt.Fprintf(&b, "| frames: %d/%.0fkB packing=%.1f ",
			s.frames.Msgs, s.frames.KBytes(), s.PackingRatio())
	}
	return strings.TrimSpace(b.String())
}
