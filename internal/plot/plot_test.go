package plot

import (
	"strings"
	"testing"

	"albatross/internal/harness"
)

func demoFigure() *harness.Figure {
	return &harness.Figure{
		ID: "demo", Title: "Demo", MaxX: 64, MaxY: 64,
		Series: []harness.Series{
			{Label: "1 Cluster", Points: []harness.Point{{CPUs: 1, Speedup: 1}, {CPUs: 32, Speedup: 28}, {CPUs: 60, Speedup: 45}}},
			{Label: "4 Clusters", Points: []harness.Point{{CPUs: 8, Speedup: 4}, {CPUs: 60, Speedup: 9}}},
		},
	}
}

func TestRenderContainsGlyphsAndLegend(t *testing.T) {
	out := Render(demoFigure(), 60, 20)
	for _, want := range []string{"Demo", "o 1 Cluster", "+ 4 Clusters", "."} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "o") || !strings.Contains(out, "+") {
		t.Fatalf("series glyphs not drawn:\n%s", out)
	}
}

func TestRenderDimensions(t *testing.T) {
	out := Render(demoFigure(), 40, 12)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 12 rows + axis + legend
	if len(lines) != 15 {
		t.Fatalf("rendered %d lines, want 15", len(lines))
	}
	for _, l := range lines[1:13] {
		if len(l) != 41 { // "|" + width
			t.Fatalf("row width %d, want 41: %q", len(l), l)
		}
	}
}

func TestRenderClampsTinyCanvas(t *testing.T) {
	out := Render(demoFigure(), 1, 1)
	if len(out) == 0 {
		t.Fatal("empty render")
	}
}

func TestOutOfRangePointsDoNotPanic(t *testing.T) {
	fig := demoFigure()
	fig.Series[0].Points = append(fig.Series[0].Points, harness.Point{CPUs: 200, Speedup: 500})
	_ = Render(fig, 30, 10)
}
