// Package plot renders speedup figures as ASCII charts in the style of the
// paper's gnuplot figures: speedup on the y-axis, total CPUs on the x-axis,
// the linear-speedup diagonal for reference, and one glyph per cluster
// count.
package plot

import (
	"fmt"
	"strings"

	"albatross/internal/harness"
)

// glyphs per series, in order (1 cluster, 2 clusters, 4 clusters, ...).
var glyphs = []byte{'o', '+', 'x', '*', '#'}

// Render draws the figure on a width x height character canvas.
func Render(fig *harness.Figure, width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 10 {
		height = 10
	}
	maxX := float64(fig.MaxX)
	maxY := fig.MaxY
	if maxX == 0 {
		maxX = 64
	}
	if maxY == 0 {
		maxY = 64
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	px := func(x float64) int { return int(x / maxX * float64(width-1)) }
	py := func(y float64) int { return height - 1 - int(y/maxY*float64(height-1)) }
	set := func(x, y int, c byte) {
		if x >= 0 && x < width && y >= 0 && y < height {
			grid[y][x] = c
		}
	}
	// Linear-speedup diagonal.
	for x := 0.0; x <= maxX; x += maxX / float64(width*2) {
		set(px(x), py(x*maxY/maxX), '.')
	}
	for si, s := range fig.Series {
		g := glyphs[si%len(glyphs)]
		var prev *harness.Point
		for i := range s.Points {
			p := s.Points[i]
			if prev != nil {
				// Sparse line interpolation between consecutive points.
				steps := 8
				for k := 1; k < steps; k++ {
					fx := float64(prev.CPUs) + float64(p.CPUs-prev.CPUs)*float64(k)/float64(steps)
					fy := prev.Speedup + (p.Speedup-prev.Speedup)*float64(k)/float64(steps)
					set(px(fx), py(fy), '-')
				}
			}
			set(px(float64(p.CPUs)), py(p.Speedup), g)
			prev = &s.Points[i]
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (y: speedup 0..%.0f, x: CPUs 0..%.0f, '.': linear)\n", fig.Title, maxY, maxX)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n")
	legend := make([]string, 0, len(fig.Series))
	for si, s := range fig.Series {
		legend = append(legend, fmt.Sprintf("%c %s", glyphs[si%len(glyphs)], s.Label))
	}
	b.WriteString("  " + strings.Join(legend, "   ") + "\n")
	return b.String()
}
