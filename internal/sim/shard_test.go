package sim

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// shardWorld is a synthetic multi-cluster workload that can run on one plain
// engine or on a sharded root, with identical logical behaviour: nodes
// compute in lockstep and exchange messages around a cross-cluster ring,
// plus an all-to-one hot spot that lands many same-instant deliveries on one
// LP — the tie-break case the replay merge must order exactly like the
// sequential engine.
type shardWorld struct {
	root  *Engine
	engs  []*Engine // per cluster (all the same engine when unsharded)
	L     time.Duration
	perC  int
	boxes []*Mailbox
	logs  [][][2]int64 // per node: (virtual ns, payload) at delivery, in order
	procs []*Proc
}

const worldLookahead = 500 * time.Microsecond

func buildWorld(t testing.TB, clusters, perC, iters int, sharded bool) *shardWorld {
	t.Helper()
	w := &shardWorld{L: worldLookahead, perC: perC}
	if sharded {
		w.root = NewEngine()
		w.engs = w.root.Shard(clusters)
		w.root.SetLookahead(w.L)
	} else {
		e := NewEngine()
		w.root = e
		w.engs = make([]*Engine, clusters)
		for c := range w.engs {
			w.engs[c] = e
		}
	}
	n := clusters * perC
	w.boxes = make([]*Mailbox, n)
	w.logs = make([][][2]int64, n)
	w.procs = make([]*Proc, n)
	for i := 0; i < n; i++ {
		w.boxes[i] = NewMailbox(w.engs[i/perC], fmt.Sprintf("box-%d", i))
	}
	for i := 0; i < n; i++ {
		i := i
		eng := w.engs[i/perC]
		recv := iters // from the ring predecessor
		if i == 0 {
			recv += n * iters // hot-spot deliveries
		}
		w.procs[i] = eng.Go(fmt.Sprintf("node-%d", i), func(p *Proc) {
			for k := 0; k < iters; k++ {
				p.Compute(200 * time.Microsecond)
				at := p.Now() + w.L
				// Cross-cluster ring successor.
				dst := (i + perC) % n
				w.post(eng, i/perC, dst, at, int64(i)<<32|int64(k))
				// Hot spot: everyone also hits node 0 at the same instant.
				w.post(eng, i/perC, 0, at, int64(i)<<32|int64(k)|1<<62)
			}
			for k := 0; k < recv; k++ {
				w.boxes[i].Get(p)
			}
		})
	}
	return w
}

// post delivers payload into dst's box at time at, logging the delivery.
// Same-cluster sends schedule locally; cross-cluster sends go through
// AtShard, which on a plain engine is exactly At.
func (w *shardWorld) post(src *Engine, srcC, dst int, at time.Duration, payload int64) {
	dstEng := w.engs[dst/w.perC]
	fn := func() {
		w.logs[dst] = append(w.logs[dst], [2]int64{int64(dstEng.Now()), payload})
		w.boxes[dst].Put(payload)
	}
	if dstEng == src || dst/w.perC == srcC {
		dstEng.At(at, fn)
		return
	}
	src.AtShard(dstEng, at, fn)
}

type worldResult struct {
	err        error
	elapsed    time.Duration
	dispatched uint64
	busy       []time.Duration
	logs       [][][2]int64
}

func (w *shardWorld) run() worldResult {
	err := w.root.Run()
	res := worldResult{
		err:        err,
		elapsed:    w.root.Now(),
		dispatched: w.root.Dispatched(),
		logs:       w.logs,
	}
	for _, p := range w.procs {
		res.busy = append(res.busy, p.BusyTime())
	}
	w.root.Shutdown()
	return res
}

// TestShardedMatchesSequential is the core equivalence check: the sharded
// engine must produce the identical elapsed time, dispatched-event count,
// per-proc busy time and per-node delivery order as the sequential engine.
func TestShardedMatchesSequential(t *testing.T) {
	seq := buildWorld(t, 4, 3, 40, false).run()
	shd := buildWorld(t, 4, 3, 40, true).run()
	if seq.err != nil || shd.err != nil {
		t.Fatalf("run errors: seq=%v shd=%v", seq.err, shd.err)
	}
	if seq.elapsed != shd.elapsed {
		t.Errorf("elapsed: sequential %v, sharded %v", seq.elapsed, shd.elapsed)
	}
	if seq.dispatched != shd.dispatched {
		t.Errorf("dispatched: sequential %d, sharded %d", seq.dispatched, shd.dispatched)
	}
	if !reflect.DeepEqual(seq.busy, shd.busy) {
		t.Errorf("per-proc busy times differ")
	}
	for i := range seq.logs {
		if !reflect.DeepEqual(seq.logs[i], shd.logs[i]) {
			t.Fatalf("node %d delivery log differs:\nsequential %v\nsharded    %v",
				i, seq.logs[i], shd.logs[i])
		}
	}
}

// TestShardedDeterminism reruns the sharded world and demands identical
// results every time, whatever the OS thread interleaving did.
func TestShardedDeterminism(t *testing.T) {
	first := buildWorld(t, 3, 2, 25, true).run()
	if first.err != nil {
		t.Fatal(first.err)
	}
	for rep := 1; rep < 3; rep++ {
		again := buildWorld(t, 3, 2, 25, true).run()
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("rep %d differs from first run", rep)
		}
	}
}

// TestShardedDeadlockParity: a workload that stalls must report the same
// deadlock (time, parked procs, dispatched count) from both engines.
func deadlockWorld(t *testing.T, sharded bool) *shardWorld {
	w := buildWorld(t, 2, 2, 3, sharded)
	// One extra proc that waits forever on a box nobody fills.
	orphan := NewMailbox(w.engs[1], "orphan")
	w.engs[1].Go("stuck", func(p *Proc) {
		orphan.Get(p)
	})
	return w
}

func TestShardedDeadlockParity(t *testing.T) {
	seq := deadlockWorld(t, false).run()
	shd := deadlockWorld(t, true).run()
	var de1, de2 *DeadlockError
	if !errors.As(seq.err, &de1) || !errors.As(shd.err, &de2) {
		t.Fatalf("expected deadlocks, got seq=%v shd=%v", seq.err, shd.err)
	}
	if de1.Time != de2.Time || de1.Dispatched != de2.Dispatched || de1.Live != de2.Live ||
		!reflect.DeepEqual(de1.Parked, de2.Parked) {
		t.Fatalf("deadlock reports differ:\nsequential %v\nsharded    %v", de1, de2)
	}
}

// TestShardedDeadlineParity: aborting at a virtual deadline must report the
// same next-event time and dispatched count as the sequential engine.
func TestShardedDeadlineParity(t *testing.T) {
	const dl = 3 * time.Millisecond
	seqW := buildWorld(t, 2, 2, 50, false)
	seqW.root.SetDeadline(dl)
	shdW := buildWorld(t, 2, 2, 50, true)
	shdW.root.SetDeadline(dl)
	seq := seqW.run()
	shd := shdW.run()
	var de1, de2 *DeadlineError
	if !errors.As(seq.err, &de1) || !errors.As(shd.err, &de2) {
		t.Fatalf("expected deadline errors, got seq=%v shd=%v", seq.err, shd.err)
	}
	if de1.Next != de2.Next || de1.Dispatched != de2.Dispatched || de1.Live != de2.Live ||
		!reflect.DeepEqual(de1.Parked, de2.Parked) {
		t.Fatalf("deadline reports differ:\nsequential %v\nsharded    %v", de1, de2)
	}
}

// TestShardedLookaheadViolation: a cross-LP event inside the current window
// must be caught at the fence, not silently corrupt the order.
func TestShardedLookaheadViolation(t *testing.T) {
	root := NewEngine()
	sh := root.Shard(2)
	root.SetLookahead(time.Millisecond)
	sh[0].At(0, func() {
		sh[0].AtShard(sh[1], 10*time.Microsecond, func() {}) // far below lookahead
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected lookahead-violation panic")
		}
	}()
	_ = root.Run()
}

// TestShardedStopAndShutdownLeak mirrors the sequential leak tests: stopping
// or abandoning a sharded run must release every goroutine (procs and runner
// threads).
func TestShardedStopAndShutdownLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	w := buildWorld(t, 3, 2, 1000, true)
	stopAt := NewMailbox(w.engs[0], "stop-driver")
	_ = stopAt
	w.engs[0].At(2*time.Millisecond, func() { w.root.Stop() })
	if err := w.root.Run(); err != nil {
		t.Fatalf("stopped run returned %v", err)
	}
	w.root.Shutdown() // idempotent; Run's stop path already shut down
	deadlineW := deadlockWorld(t, true)
	_ = deadlineW.run() // deadlock path + Shutdown inside run()
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", base, runtime.NumGoroutine())
}

// TestShardMisuse checks the loud failure modes of the sharding API.
func TestShardMisuse(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	root := NewEngine()
	root.Shard(2)
	mustPanic("root At", func() { root.At(0, func() {}) })
	mustPanic("root Go", func() { root.Go("x", func(*Proc) {}) })
	mustPanic("double shard", func() { root.Shard(2) })
	mustPanic("run without lookahead", func() { _ = root.Run() })
	used := NewEngine()
	used.At(0, func() {})
	mustPanic("shard after scheduling", func() { used.Shard(2) })
}
