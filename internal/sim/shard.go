package sim

import (
	"fmt"
	"runtime"
	"time"
)

// Sharded (conservative parallel) execution.
//
// Shard splits an engine into K logical processes (LPs). Each LP is itself an
// Engine — its own 4-ary heap, ready ring and baton-passing control channel —
// driven by a dedicated OS thread. The root engine becomes a coordinator: Run
// executes bounded time windows [W, F) where W is the earliest pending event
// anywhere and F = W + lookahead. Within a window the LPs run concurrently and
// independently; correctness rests on the scheduling contract that an LP may
// place work on another LP only via AtShard, at least `lookahead` beyond its
// own clock (asserted at every fence). Cross-LP events are collected in
// per-LP outboxes during the window and merged into the destination heaps at
// the fence, so no LP ever receives an event in its own past.
//
// Determinism — the part that makes parallel execution byte-identical to the
// sequential engine — is a replay of the sequential seq counter. The
// sequential engine orders same-instant events by a single global counter
// bumped once per At/wake call. During a window an LP cannot observe the
// other LPs, so each LP's local execution order equals the sequential order
// restricted to that LP; only the global counter values are unknown. LPs
// therefore stamp events scheduled mid-window with provisional seqs (bit 63
// set, window-local assignment order) and keep two logs: execs — the events
// that scheduled something, in execution order — and calls, one entry per
// At/wake. At the fence the coordinator K-way-merges the exec logs by
// (time, canonical seq), which reconstructs exactly the interleaving the
// sequential engine would have executed, and replays the counter: each logged
// call receives the next canonical seq. Provisional seqs still sitting in LP
// heaps are rewritten in place (the rewrite is order-preserving, so the heap
// invariant survives), outbox events are routed with their canonical seqs,
// and the next window starts from a state the sequential engine could have
// produced. Same configuration, same schedule, same counts — on any number
// of threads.
const provBase = uint64(1) << 63

// winState is the per-LP scheduling log of the current window.
type winState struct {
	active  bool         // this LP's window loop is executing (on its runner thread)
	provCnt int          // provisional seqs handed out this window
	calls   []bool       // one entry per At/wake call: false = local, true = cross-LP
	execs   []execRec    // events that made at least one call, in execution order
	outbox  []crossEvent // cross-LP events awaiting canonical seqs and routing

	canonTab []uint64 // provisional index → canonical seq, filled by the merge
}

// execRec records one executed event that scheduled further work: its time,
// its own (canonical or provisional) seq, and how many calls it made.
type execRec struct {
	at  time.Duration
	key uint64
	n   int32
}

// crossEvent is an event bound for another LP, parked until the fence.
type crossEvent struct {
	dst *Engine
	at  time.Duration
	seq uint64
	fn  func()
}

// shardCrew is the root's set of persistent runner threads, one per LP.
type shardCrew struct {
	start []chan time.Duration // fence per window; closed to retire the runner
	done  chan int             // LP index, sent when its window completes
	pans  []any                // recovered window panics, by LP index
}

// Shard splits the engine into n logical processes for conservative parallel
// execution and returns them. It must be called on a fresh engine, before
// anything is scheduled or spawned. After sharding, all scheduling and
// spawning must target the shard engines (the root rejects At and Go); the
// root's Run coordinates the LPs and its Now/Dispatched/Live aggregate them.
// SetLookahead must be called before Run.
func (e *Engine) Shard(n int) []*Engine {
	if n < 2 {
		panic("sim: Shard needs at least 2 LPs")
	}
	if e.root != nil {
		panic("sim: Shard on a shard engine")
	}
	if e.shards != nil {
		panic("sim: Shard called twice")
	}
	if e.seq != 0 || len(e.procs) != 0 {
		panic("sim: Shard on an engine that already scheduled work")
	}
	e.shards = make([]*Engine, n)
	for i := range e.shards {
		s := NewEngine()
		s.root = e
		s.lpIdx = i
		e.shards[i] = s
	}
	return e.shards
}

// Shards returns the LP engines of a sharded root (nil on a plain engine).
func (e *Engine) Shards() []*Engine { return e.shards }

// SetLookahead declares the minimum cross-LP scheduling distance: every
// AtShard to a different LP must target a time at least d beyond the calling
// LP's clock. The window width of the sharded run is exactly d.
func (e *Engine) SetLookahead(d time.Duration) {
	if e.shards == nil {
		panic("sim: SetLookahead on an unsharded engine")
	}
	if d <= 0 {
		panic("sim: lookahead must be positive")
	}
	e.lookahead = d
}

// Lookahead reports the configured cross-LP scheduling distance.
func (e *Engine) Lookahead() time.Duration { return e.lookahead }

// AtShard schedules fn at absolute virtual time t on the dst engine. On a
// plain engine (or when dst is the caller) it is exactly dst.At. Across LPs
// of a sharded run it is the only legal scheduling path, and t must lie at
// least the configured lookahead beyond the calling LP's clock — the fence
// panics on violations.
func (e *Engine) AtShard(dst *Engine, t time.Duration, fn func()) {
	w := e.win
	if dst == e || w == nil {
		dst.At(t, fn)
		return
	}
	if !w.active {
		panic("sim: AtShard from outside the calling LP's window")
	}
	w.calls = append(w.calls, true)
	w.outbox = append(w.outbox, crossEvent{dst: dst, at: t, fn: fn})
}

// winAt is At during a window: stamp a provisional seq and log the call.
func (e *Engine) winAt(w *winState, t time.Duration, fn func()) {
	if !w.active {
		// Another thread is scheduling on this LP mid-window: that is the
		// zero-lookahead coupling sharded execution cannot order. (Legal
		// cross-LP scheduling goes through AtShard.)
		panic(fmt.Sprintf("sim: cross-LP At on LP %d without lookahead — a timer or direct At "+
			"shared across clusters; route it through AtShard / a WAN message, or schedule it on "+
			"the owning cluster's engine (see DESIGN.md §5c)", e.lpIdx))
	}
	seq := provBase | uint64(w.provCnt)
	w.provCnt++
	w.calls = append(w.calls, false)
	if t <= e.now {
		e.ready.push(seq, fn)
		return
	}
	e.heapPush(event{at: t, seq: seq, fn: fn})
}

// winWake is wake during a window: identical bookkeeping for the pre-bound
// resume thunk.
func (e *Engine) winWake(w *winState, p *Proc) {
	if !w.active {
		panic(fmt.Sprintf("sim: cross-LP wake of %q on LP %d — a Future/Mailbox/Barrier bound to "+
			"one cluster signalled from another without lookahead (typically a sequenced broadcast, "+
			"shared barrier, or global counter in the application; see DESIGN.md §5c/§5d)",
			p.waitReport(), e.lpIdx))
	}
	seq := provBase | uint64(w.provCnt)
	w.provCnt++
	w.calls = append(w.calls, false)
	e.ready.push(seq, p.runFn)
}

// rootSeq draws the next canonical seq from the root's global counter: the
// setup-phase scheduling path of shard engines (single-threaded, so shared
// counter access is safe, and cross-LP t=0 ties order exactly as the
// sequential engine would order them).
func (e *Engine) rootSeq() uint64 {
	e.root.seq++
	return e.root.seq
}

// runWindow executes this LP's events with at < fence, in the LP-local
// (time, seq) order, logging every event that schedules further work.
func (e *Engine) runWindow(fence time.Duration) {
	w := e.win
	w.active = true
	d0 := e.dispatched
	for {
		if e.ready.n > 0 {
			if len(e.heap) > 0 && e.heap[0].at <= e.now && e.heap[0].seq < e.ready.headSeq() {
				ev := e.heapPop()
				e.execOne(w, ev.at, ev.seq, ev.fn)
				continue
			}
			seq := e.ready.headSeq()
			fn := e.ready.pop()
			e.execOne(w, e.now, seq, fn)
			continue
		}
		if len(e.heap) == 0 || e.heap[0].at >= fence {
			break
		}
		ev := e.heapPop()
		if ev.at > e.now {
			e.now = ev.at
		}
		e.execOne(w, ev.at, ev.seq, ev.fn)
	}
	w.active = false
	e.winWindows++
	if e.dispatched == d0 {
		e.winIdle++
	}
}

// execOne dispatches one event and appends an exec record if it scheduled
// anything.
func (e *Engine) execOne(w *winState, at time.Duration, key uint64, fn func()) {
	base := len(w.calls)
	e.dispatched++
	fn()
	if n := len(w.calls) - base; n > 0 {
		w.execs = append(w.execs, execRec{at: at, key: key, n: int32(n)})
	}
}

// runSharded is Run for a sharded root: window loop, fence barrier, replay
// merge. See the package comment at the top of this file.
func (e *Engine) runSharded() error {
	if e.lookahead <= 0 {
		panic("sim: sharded Run without SetLookahead")
	}
	if e.ready.n != 0 || len(e.heap) != 0 {
		panic("sim: events scheduled on the sharded root engine")
	}
	for _, s := range e.shards {
		s.win = &s.winBuf
	}
	crew := e.startCrew()
	defer func() {
		for _, ch := range crew.start {
			close(ch)
		}
		e.crew = nil
		for _, s := range e.shards {
			s.win = nil
		}
	}()

	for !e.winStop.Load() {
		// W = earliest pending event across all LPs. A non-empty ready ring
		// holds events due at that LP's current instant.
		minNext := time.Duration(-1)
		for _, s := range e.shards {
			var next time.Duration
			switch {
			case s.ready.n > 0:
				next = s.now
			case len(s.heap) > 0:
				next = s.heap[0].at
			default:
				continue
			}
			if minNext < 0 || next < minNext {
				minNext = next
			}
		}
		if minNext < 0 {
			break // every LP drained
		}
		if e.deadline > 0 && minNext > e.deadline {
			return &DeadlineError{
				Deadline:   e.deadline,
				Next:       minNext,
				Parked:     e.parkedReport(),
				Dispatched: e.Dispatched(),
				Live:       e.Live(),
			}
		}
		fence := minNext + e.lookahead
		if e.deadline > 0 && fence > e.deadline+1 {
			// Nothing beyond the deadline may execute; events at exactly the
			// deadline still do, matching the sequential abort point.
			fence = e.deadline + 1
		}
		for _, ch := range crew.start {
			ch <- fence
		}
		for range crew.start {
			<-crew.done
		}
		for i, p := range crew.pans {
			if p != nil {
				panic(fmt.Sprintf("sim: LP %d window panic: %v", i, p))
			}
		}
		e.mergeWindow(fence)
	}
	if e.winStop.Load() {
		// Mirror the sequential stop path: a stopped engine is dead, so
		// release every process goroutine before returning.
		e.stopped = true
		e.running = false
		e.Shutdown()
		return nil
	}
	if parked := e.parkedReport(); len(parked) > 0 {
		return &DeadlockError{
			Time:       e.Now(),
			Parked:     parked,
			Dispatched: e.Dispatched(),
			Live:       e.Live(),
		}
	}
	return nil
}

// startCrew launches one locked-thread runner per LP.
func (e *Engine) startCrew() *shardCrew {
	crew := &shardCrew{
		start: make([]chan time.Duration, len(e.shards)),
		done:  make(chan int, len(e.shards)),
		pans:  make([]any, len(e.shards)),
	}
	e.crew = crew
	for i, s := range e.shards {
		ch := make(chan time.Duration)
		crew.start[i] = ch
		go func(i int, s *Engine) {
			runtime.LockOSThread()
			defer runtime.UnlockOSThread()
			// waitStart brackets the idle gap between finishing one window
			// (the done send below) and receiving the next fence: the
			// wall-clock cost of the fence barrier, per LP.
			var waitStart time.Time
			for fence := range ch {
				if !waitStart.IsZero() {
					s.fenceWait += time.Since(waitStart)
				}
				func() {
					defer func() {
						crew.pans[i] = recover()
						crew.done <- i
					}()
					s.runWindow(fence)
				}()
				waitStart = time.Now()
			}
		}(i, s)
	}
	return crew
}

// mergeWindow replays the window's scheduling calls in sequential order and
// routes the cross-LP events. Runs on the coordinator thread with every
// runner quiescent (the fence barrier provides the happens-before edges).
func (e *Engine) mergeWindow(fence time.Duration) {
	type cursor struct{ exec, call, prov, out int }
	cur := make([]cursor, len(e.shards))
	for _, E := range e.shards {
		w := E.win
		if E.ready.n != 0 {
			panic("sim: LP ready ring not drained at fence")
		}
		if cap(w.canonTab) < w.provCnt {
			w.canonTab = make([]uint64, w.provCnt)
		}
		w.canonTab = w.canonTab[:w.provCnt]
		for i := range w.canonTab {
			w.canonTab[i] = 0
		}
	}
	// K-way merge of the exec logs by (time, canonical seq): the order the
	// sequential engine would have executed these events in. A provisional
	// head key always translates: the event's creator ran earlier on the
	// same LP, so its calls were already replayed.
	for {
		best := -1
		var bAt time.Duration
		var bKey uint64
		for s, E := range e.shards {
			w := E.win
			if cur[s].exec >= len(w.execs) {
				continue
			}
			r := w.execs[cur[s].exec]
			k := r.key
			if k >= provBase {
				k = w.canonTab[k&^provBase]
				if k == 0 {
					panic("sim: window merge saw an event before its creator")
				}
			}
			if best < 0 || r.at < bAt || (r.at == bAt && k < bKey) {
				best, bAt, bKey = s, r.at, k
			}
		}
		if best < 0 {
			break
		}
		w := e.shards[best].win
		r := w.execs[cur[best].exec]
		cur[best].exec++
		for i := int32(0); i < r.n; i++ {
			e.seq++
			if w.calls[cur[best].call] {
				w.outbox[cur[best].out].seq = e.seq
				cur[best].out++
			} else {
				w.canonTab[cur[best].prov] = e.seq
				cur[best].prov++
			}
			cur[best].call++
		}
	}
	for s, E := range e.shards {
		w := E.win
		if cur[s].call != len(w.calls) || cur[s].prov != w.provCnt || cur[s].out != len(w.outbox) {
			panic("sim: window merge left unreplayed scheduling calls")
		}
		// Rewrite provisional seqs still in the heap. Canonical seqs are
		// assigned in each LP's call order and all exceed the pre-window
		// counter, so the rewrite preserves the relative order of every
		// pair of events — the heap invariant survives untouched.
		for i := range E.heap {
			if E.heap[i].seq >= provBase {
				E.heap[i].seq = w.canonTab[E.heap[i].seq&^provBase]
			}
		}
	}
	// Route the outboxes. Every cross-LP event must land at or beyond the
	// fence — that is the lookahead contract that lets windows run without
	// peeking at each other.
	for s, E := range e.shards {
		w := E.win
		for i := range w.outbox {
			c := &w.outbox[i]
			if c.at < fence {
				panic(fmt.Sprintf("sim: lookahead violation: LP %d scheduled a cross-LP event at %v "+
					"inside the window ending %v — AtShard targets must lie at least the lookahead "+
					"beyond the sender's clock (see DESIGN.md §5c)", s, c.at, fence))
			}
			c.dst.heapPush(event{at: c.at, seq: c.seq, fn: c.fn})
			w.outbox[i] = crossEvent{}
		}
		w.outbox = w.outbox[:0]
		w.execs = w.execs[:0]
		w.calls = w.calls[:0]
		w.provCnt = 0
	}
}

// sharded-mode aggregate accessors (root engine)

// LPStats reports one LP's window-synchronization counters from a sharded
// run: how many bounded windows it executed, how many of those dispatched no
// event on this LP (pure synchronization overhead), how many events it
// dispatched in total, and the wall-clock time its runner thread spent
// waiting at window fences. The counters are observability only — they never
// influence the simulation and are excluded from the byte-identity surface.
type LPStats struct {
	LP          int
	Windows     uint64        // windows executed (same for every LP of a run)
	IdleWindows uint64        // windows with zero events on this LP
	Events      uint64        // events dispatched by this LP
	FenceWait   time.Duration // wall-clock fence-barrier wait
}

// ShardStats returns the per-LP window counters of a sharded root engine,
// accumulated across its runs so far. It returns nil on an unsharded engine.
// Call it after Run (or between runs); it must not race a live window.
func (e *Engine) ShardStats() []LPStats {
	if e.shards == nil {
		return nil
	}
	out := make([]LPStats, len(e.shards))
	for i, s := range e.shards {
		out[i] = LPStats{
			LP:          i,
			Windows:     s.winWindows,
			IdleWindows: s.winIdle,
			Events:      s.dispatched,
			FenceWait:   s.fenceWait,
		}
	}
	return out
}

// shardedNow reports the furthest LP clock: the virtual instant the run has
// reached, equal to the sequential engine's clock at the same point.
func (e *Engine) shardedNow() time.Duration {
	now := e.now
	for _, s := range e.shards {
		if s.now > now {
			now = s.now
		}
	}
	return now
}
