package sim

import (
	"fmt"
	"math"
	"runtime"
	"sync/atomic"
	"time"
)

// Sharded (conservative parallel) execution.
//
// Shard splits an engine into K logical processes (LPs). Each LP is itself an
// Engine — its own 4-ary heap, ready ring and baton-passing control channel —
// driven by a dedicated OS thread. The root engine becomes a coordinator: Run
// executes rounds of bounded time windows. Correctness rests on the
// scheduling contract that an LP may place work on another LP only via
// AtShard, at least the per-directed-pair lookahead L[src][dst] beyond its
// own clock (asserted at every call). Cross-LP events are collected in
// per-LP outboxes during a window and merged into the destination heaps
// between rounds, so no LP ever receives an event in its own past.
//
// Fences are per-LP and distance-based (Chandy–Misra with link distances):
// with P_j the earliest instant LP j could still act at — its next pending
// event, or an in-flight cross event addressed to it — LP i may safely run
// to
//
//	F_i = min over j≠i of (P_j + L[j][i])
//
// where L is the lookahead matrix closed under relaying (an event can reach
// i through a chain of LPs, paying at least the closed distance; see
// SetLookaheadMatrix). Two refinements complete the bound. In-flight cross
// events addressed to i fence it directly at their arrival time. And an LP's
// own emissions can come back to it: once a window makes its first cross-LP
// call at clock t, the window's fence drops to t + bounce_i, where bounce_i
// is the cheapest round trip back to i via any other LP — windows that never
// emit keep their full width. LPs whose next event lies beyond their fence
// skip the round entirely (no wakeup, no idle window); when exactly one LP
// is runnable the coordinator runs its window inline, chaining windows
// without any fence round-trip; otherwise runnable LPs are released through
// an atomic epoch barrier.
//
// Determinism — the part that makes parallel execution byte-identical to the
// sequential engine — is a replay of the sequential seq counter. The
// sequential engine orders same-instant events by a single global counter
// bumped once per At/wake call. During a window an LP cannot observe the
// other LPs, so each LP's local execution order equals the sequential order
// restricted to that LP; only the global counter values are unknown. LPs
// therefore stamp events scheduled mid-window with provisional seqs (bit 63
// set, local assignment order) and keep two logs: execs — the events that
// scheduled something, in execution order — and calls, one entry per
// At/wake. Between rounds the coordinator K-way-merges the exec logs by
// (time, canonical seq) up to the round floor B = the minimum fence — every
// event below B has executed on its LP, so the merged prefix is exactly the
// sequential execution prefix — and replays the counter: each logged call
// receives the next canonical seq. Records at or beyond B (an LP that ran
// ahead of a lagging peer) are carried to a later merge, with the resolved
// prefix compacted away. Provisional seqs still in LP heaps are rewritten in
// place (the rewrite is order-preserving, so the heap invariant survives),
// outbox events whose creator merged are routed with their canonical seqs,
// and the next round starts from a state the sequential engine could have
// produced. Same configuration, same schedule, same counts — on any number
// of threads.
const provBase = uint64(1) << 63

// infFuture is the "no pending event" sentinel: far enough beyond any real
// virtual time, small enough that adding a lookahead distance cannot
// overflow.
const infFuture = time.Duration(math.MaxInt64 / 4)

// winState is the per-LP scheduling log of the current window run.
type winState struct {
	active  bool         // this LP's window loop is executing
	provCnt int          // provisional seqs outstanding (assigned, not yet resolved)
	calls   []bool       // one entry per At/wake call: false = local, true = cross-LP
	execs   []execRec    // events that made at least one call, in execution order
	outbox  []crossEvent // cross-LP events awaiting canonical seqs and routing

	crossT time.Duration // clock of the window's first cross-LP call (-1: none yet)
	ranTo  time.Duration // effective fence the last window ran to

	canonTab []uint64 // provisional index → canonical seq, filled by the merge
}

// execRec records one executed event that scheduled further work: its time,
// its own (canonical or provisional) seq, and how many calls it made.
type execRec struct {
	at  time.Duration
	key uint64
	n   int32
}

// crossEvent is an event bound for another LP, parked until its creator's
// exec record merges.
type crossEvent struct {
	dst *Engine
	at  time.Duration
	seq uint64
	fn  func()
}

// mergeCursor tracks one LP's consumed log prefixes during a merge.
type mergeCursor struct{ exec, call, prov, out int }

// Fence-slot sentinels for the epoch barrier.
const (
	fenceSkip   = int64(0)  // not this LP's round
	fenceRetire = int64(-1) // run is over, runner exits
)

// shardCrew is the root's set of persistent runner threads, one per LP,
// coordinated by an atomic epoch barrier: the coordinator publishes per-LP
// fences, bumps the epoch and kicks only the parked runners it needs; the
// last finisher of a round signals done. Runners spin briefly on the epoch
// before parking, so back-to-back busy rounds cost no channel operations.
type shardCrew struct {
	epoch  atomic.Uint64
	fences []atomic.Int64  // per LP: fence in ns, fenceSkip or fenceRetire
	parked []atomic.Bool   // per LP: runner is (about to be) blocked on wake
	wake   []chan struct{} // per LP: capacity-1 unpark kick
	active atomic.Int32    // runners still executing the current round
	done   chan struct{}   // capacity 1; the round's last finisher signals
	pans   []any           // recovered window panics, by LP index
}

// Shard splits the engine into n logical processes for conservative parallel
// execution and returns them. It must be called on a fresh engine, before
// anything is scheduled or spawned. After sharding, all scheduling and
// spawning must target the shard engines (the root rejects At and Go); the
// root's Run coordinates the LPs and its Now/Dispatched/Live aggregate them.
// SetLookahead or SetLookaheadMatrix must be called before Run.
func (e *Engine) Shard(n int) []*Engine {
	if n < 2 {
		panic("sim: Shard needs at least 2 LPs")
	}
	if e.root != nil {
		panic("sim: Shard on a shard engine")
	}
	if e.shards != nil {
		panic("sim: Shard called twice")
	}
	if e.seq != 0 || len(e.procs) != 0 {
		panic("sim: Shard on an engine that already scheduled work")
	}
	e.shards = make([]*Engine, n)
	for i := range e.shards {
		s := NewEngine()
		s.root = e
		s.lpIdx = i
		e.shards[i] = s
	}
	return e.shards
}

// Shards returns the LP engines of a sharded root (nil on a plain engine).
func (e *Engine) Shards() []*Engine { return e.shards }

// SetLookaheadMatrix declares the per-directed-LP-pair scheduling distance:
// every AtShard from LP i to LP j must target a time at least m[i][j] beyond
// the calling LP's clock. Entries off the diagonal must be positive; the
// diagonal is ignored (within-LP scheduling is unrestricted). The matrix is
// closed under relaying before use — an event can influence LP j by way of
// any chain of intermediate LPs, local scheduling inside a relay LP being
// free, so the effective floor for a pair is the shortest path through the
// declared entries. Fences are computed from the closed matrix, which is
// what makes per-LP fencing safe even when the declared entries violate the
// triangle inequality (an LP that hosts clusters near both endpoints of a
// long route collapses that route's floor).
func (e *Engine) SetLookaheadMatrix(m [][]time.Duration) {
	if e.shards == nil {
		panic("sim: SetLookaheadMatrix on an unsharded engine")
	}
	k := len(e.shards)
	if len(m) != k {
		panic(fmt.Sprintf("sim: lookahead matrix has %d rows for %d LPs", len(m), k))
	}
	d := make([]time.Duration, k*k)
	for i, row := range m {
		if len(row) != k {
			panic(fmt.Sprintf("sim: lookahead matrix row %d has %d entries for %d LPs", i, len(row), k))
		}
		for j, v := range row {
			if i == j {
				continue
			}
			if v <= 0 {
				panic(fmt.Sprintf("sim: lookahead matrix entry [%d][%d] = %v, want positive", i, j, v))
			}
			d[i*k+j] = v
		}
	}
	// Floyd–Warshall with a free diagonal: close the declared floors under
	// relaying through intermediate LPs.
	for mid := 0; mid < k; mid++ {
		for i := 0; i < k; i++ {
			if i == mid {
				continue
			}
			dim := d[i*k+mid]
			for j := 0; j < k; j++ {
				if j == i || j == mid {
					continue
				}
				if v := dim + d[mid*k+j]; v < d[i*k+j] {
					d[i*k+j] = v
				}
			}
		}
	}
	e.installMatrix(d, true)
}

// SetLookahead declares a uniform cross-LP scheduling distance: every AtShard
// to a different LP must target a time at least d beyond the calling LP's
// clock. When a route-derived matrix is already installed (netsim.New
// installs one computed from the topology's routed paths), d must not exceed
// any pair's floor: a larger scalar would claim scheduling slack some route
// does not have, so the call panics naming the offending pair instead of
// silently overriding the matrix. A smaller d tightens every pair — always
// safe, only slower.
func (e *Engine) SetLookahead(d time.Duration) {
	if e.shards == nil {
		panic("sim: SetLookahead on an unsharded engine")
	}
	if d <= 0 {
		panic("sim: lookahead must be positive")
	}
	k := len(e.shards)
	if e.laD != nil && e.laRouted {
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				if i != j && d > e.laD[i*k+j] {
					panic(fmt.Sprintf("sim: SetLookahead(%v) exceeds the route-derived lookahead floor %v "+
						"for LP pair %d→%d — the routed paths between those LPs cannot guarantee that much "+
						"scheduling slack; use SetLookaheadMatrix or a value within every pair's floor (see DESIGN.md §5c)",
						d, e.laD[i*k+j], i, j))
				}
			}
		}
	}
	m := make([]time.Duration, k*k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i != j {
				m[i*k+j] = d
			}
		}
	}
	e.installMatrix(m, e.laRouted)
}

// installMatrix stores a closed matrix and derives the per-LP bounce floors
// and the scalar minimum.
func (e *Engine) installMatrix(d []time.Duration, routed bool) {
	k := len(e.shards)
	e.laD = d
	e.laRouted = routed
	lo := time.Duration(0)
	for i := 0; i < k; i++ {
		rt := infFuture
		for j := 0; j < k; j++ {
			if i == j {
				continue
			}
			if v := d[i*k+j] + d[j*k+i]; v < rt {
				rt = v
			}
			if lo == 0 || d[i*k+j] < lo {
				lo = d[i*k+j]
			}
		}
		e.shards[i].bounce = rt
	}
	e.lookahead = lo
}

// Lookahead reports the minimum cross-LP scheduling distance over all pairs.
func (e *Engine) Lookahead() time.Duration { return e.lookahead }

// LookaheadBetween reports the closed lookahead floor for the directed LP
// pair src→dst (zero if src == dst or no matrix is installed). Callable on
// the root or any LP.
func (e *Engine) LookaheadBetween(src, dst int) time.Duration {
	root := e
	if e.root != nil {
		root = e.root
	}
	if root.laD == nil || src == dst {
		return 0
	}
	return root.laD[src*len(root.shards)+dst]
}

// SetCrossLPAudit installs a hook invoked on every cross-LP AtShard with the
// source LP, destination LP and scheduling delta (target minus the sender's
// clock). The hook runs on LP runner threads, concurrently; it must be safe
// for concurrent use and must not touch engine state. Observability/testing
// only; nil uninstalls.
func (e *Engine) SetCrossLPAudit(fn func(src, dst int, delta time.Duration)) {
	if e.shards == nil {
		panic("sim: SetCrossLPAudit on an unsharded engine")
	}
	e.crossAudit = fn
}

// AtShard schedules fn at absolute virtual time t on the dst engine. On a
// plain engine (or when dst is the caller) it is exactly dst.At. Across LPs
// of a sharded run it is the only legal scheduling path, and t must lie at
// least the pair's lookahead floor beyond the calling LP's clock — the call
// panics on violations.
func (e *Engine) AtShard(dst *Engine, t time.Duration, fn func()) {
	w := e.win
	if dst == e || w == nil {
		dst.At(t, fn)
		return
	}
	if !w.active {
		panic("sim: AtShard from outside the calling LP's window")
	}
	root := e.root
	if floor := root.laD[e.lpIdx*len(root.shards)+dst.lpIdx]; t < e.now+floor {
		panic(fmt.Sprintf("sim: lookahead violation: LP %d scheduled a cross-LP event on LP %d at %v, "+
			"only %v beyond its clock %v — AtShard targets must lie at least the pair's lookahead "+
			"floor (%v) beyond the sender's clock (see DESIGN.md §5c)",
			e.lpIdx, dst.lpIdx, t, t-e.now, e.now, floor))
	}
	if root.crossAudit != nil {
		root.crossAudit(e.lpIdx, dst.lpIdx, t-e.now)
	}
	if w.crossT < 0 {
		w.crossT = e.now
	}
	w.calls = append(w.calls, true)
	w.outbox = append(w.outbox, crossEvent{dst: dst, at: t, fn: fn})
}

// winAt is At during a window: stamp a provisional seq and log the call.
func (e *Engine) winAt(w *winState, t time.Duration, fn func()) {
	if !w.active {
		// Another thread is scheduling on this LP mid-window: that is the
		// zero-lookahead coupling sharded execution cannot order. (Legal
		// cross-LP scheduling goes through AtShard.)
		panic(fmt.Sprintf("sim: cross-LP At on LP %d without lookahead — a timer or direct At "+
			"shared across clusters; route it through AtShard / a WAN message, or schedule it on "+
			"the owning cluster's engine (see DESIGN.md §5c)", e.lpIdx))
	}
	seq := provBase | uint64(w.provCnt)
	w.provCnt++
	w.calls = append(w.calls, false)
	if t <= e.now {
		e.ready.push(seq, fn)
		return
	}
	e.heapPush(event{at: t, seq: seq, fn: fn})
}

// winWake is wake during a window: identical bookkeeping for the pre-bound
// resume thunk.
func (e *Engine) winWake(w *winState, p *Proc) {
	if !w.active {
		panic(fmt.Sprintf("sim: cross-LP wake of %q on LP %d — a Future/Mailbox/Barrier bound to "+
			"one cluster signalled from another without lookahead (typically a sequenced broadcast, "+
			"shared barrier, or global counter in the application; see DESIGN.md §5c/§5d)",
			p.waitReport(), e.lpIdx))
	}
	seq := provBase | uint64(w.provCnt)
	w.provCnt++
	w.calls = append(w.calls, false)
	e.ready.push(seq, p.runFn)
}

// rootSeq draws the next canonical seq from the root's global counter: the
// setup-phase scheduling path of shard engines (single-threaded, so shared
// counter access is safe, and cross-LP t=0 ties order exactly as the
// sequential engine would order them).
func (e *Engine) rootSeq() uint64 {
	e.root.seq++
	return e.root.seq
}

// runWindow executes this LP's events with at < fence, in the LP-local
// (time, seq) order, logging every event that schedules further work. The
// first cross-LP call at clock t lowers the fence to t + bounce: beyond that
// point the emission could already have come back to this LP through another
// LP, so the window must not outrun its own output. Events execute in
// non-decreasing time order, so nothing past the lowered fence has run when
// the clamp lands.
func (e *Engine) runWindow(fence time.Duration) {
	w := e.win
	w.active = true
	w.crossT = -1
	d0 := e.dispatched
	for {
		if w.crossT >= 0 {
			if f := w.crossT + e.bounce; f < fence {
				fence = f
			}
		}
		if e.ready.n > 0 {
			if len(e.heap) > 0 && e.heap[0].at <= e.now && e.heap[0].seq < e.ready.headSeq() {
				ev := e.heapPop()
				e.execOne(w, ev.at, ev.seq, ev.fn)
				continue
			}
			seq := e.ready.headSeq()
			fn := e.ready.pop()
			e.execOne(w, e.now, seq, fn)
			continue
		}
		if len(e.heap) == 0 || e.heap[0].at >= fence {
			break
		}
		ev := e.heapPop()
		if ev.at > e.now {
			e.now = ev.at
		}
		e.execOne(w, ev.at, ev.seq, ev.fn)
	}
	w.active = false
	w.ranTo = fence
	e.winWindows++
	if e.dispatched == d0 {
		e.winIdle++
	}
}

// execOne dispatches one event and appends an exec record if it scheduled
// anything.
func (e *Engine) execOne(w *winState, at time.Duration, key uint64, fn func()) {
	base := len(w.calls)
	e.dispatched++
	fn()
	if n := len(w.calls) - base; n > 0 {
		w.execs = append(w.execs, execRec{at: at, key: key, n: int32(n)})
	}
}

// runSharded is Run for a sharded root: fence rounds, window execution,
// replay merge. See the package comment at the top of this file.
func (e *Engine) runSharded() error {
	if e.laD == nil {
		panic("sim: sharded Run without SetLookahead")
	}
	if e.ready.n != 0 || len(e.heap) != 0 {
		panic("sim: events scheduled on the sharded root engine")
	}
	k := len(e.shards)
	if e.laP == nil {
		e.laP = make([]time.Duration, k)
		e.laIn = make([]time.Duration, k)
		e.laF = make([]time.Duration, k)
		e.mergeCur = make([]mergeCursor, k)
	}
	for _, s := range e.shards {
		s.win = &s.winBuf
	}
	crew := e.startCrew()
	defer func() {
		for i := range crew.fences {
			crew.fences[i].Store(fenceRetire)
		}
		crew.epoch.Add(1)
		for i := range crew.parked {
			if crew.parked[i].Load() {
				select {
				case crew.wake[i] <- struct{}{}:
				default:
				}
			}
		}
		e.crew = nil
		for _, s := range e.shards {
			s.win = nil
		}
	}()

	for !e.winStop.Load() {
		// P_j: the earliest instant LP j could still act at of its own
		// accord. A non-empty ready ring holds events due at the LP's
		// current instant.
		anyPending := false
		for i, s := range e.shards {
			switch {
			case s.ready.n > 0:
				e.laP[i] = s.now
			case len(s.heap) > 0:
				e.laP[i] = s.heap[0].at
			default:
				e.laP[i] = infFuture
			}
			if e.laP[i] < infFuture {
				anyPending = true
			}
			e.laIn[i] = infFuture
		}
		// In-flight floors: cross events whose creator's exec record has not
		// merged yet sit unrouted in their sender's outbox. Each fences its
		// destination directly at its arrival time (it will land in the
		// destination heap at a future merge), and contributes to minNext
		// exactly as the pending event it is in the sequential engine.
		minOut := infFuture
		for _, s := range e.shards {
			w := &s.winBuf
			for idx := range w.outbox {
				c := &w.outbox[idx]
				if d := c.dst.lpIdx; c.at < e.laIn[d] {
					e.laIn[d] = c.at
				}
				if c.at < minOut {
					minOut = c.at
				}
			}
		}
		if !anyPending && minOut == infFuture {
			// Every queue drained. Flush carried exec records so each
			// remaining scheduling call gets its canonical seq, and leave.
			e.mergeWindow(infFuture)
			break
		}
		minNext := minOut
		for i := range e.laP {
			if e.laP[i] < minNext {
				minNext = e.laP[i]
			}
		}
		if e.deadline > 0 && minNext > e.deadline {
			return &DeadlineError{
				Deadline:   e.deadline,
				Next:       minNext,
				Parked:     e.parkedReport(),
				Dispatched: e.Dispatched(),
				Live:       e.Live(),
			}
		}
		// Distance fences. An LP skips the round when its next event lies at
		// or beyond its fence; with exactly one runnable LP the coordinator
		// runs the window inline — no barrier, no runner thread.
		nAct, soleAct := 0, -1
		for i := range e.shards {
			f := infFuture
			for j := range e.shards {
				if j == i {
					continue
				}
				b := e.laP[j]
				if e.laIn[j] < b {
					b = e.laIn[j]
				}
				if b >= infFuture {
					continue
				}
				if v := b + e.laD[j*k+i]; v < f {
					f = v
				}
			}
			if e.laIn[i] < f {
				f = e.laIn[i]
			}
			if e.deadline > 0 && f > e.deadline+1 {
				// Nothing beyond the deadline may execute; events at exactly
				// the deadline still do, matching the sequential abort point.
				f = e.deadline + 1
			}
			e.laF[i] = f
			if e.laP[i] < f {
				nAct++
				soleAct = i
			}
		}
		switch {
		case nAct == 0:
			// Nothing runnable this round: the floor is held down by an
			// in-flight cross event. Its creator's record lies below the
			// floor, so the merge below routes it and the next round makes
			// progress.
		case nAct == 1:
			s := e.shards[soleAct]
			func() {
				defer func() {
					if r := recover(); r != nil {
						panic(fmt.Sprintf("sim: LP %d window panic: %v", soleAct, r))
					}
				}()
				s.runWindow(e.laF[soleAct])
			}()
			s.winChained++
		default:
			crew.active.Store(int32(nAct))
			for i := range e.shards {
				if e.laP[i] < e.laF[i] {
					crew.fences[i].Store(int64(e.laF[i]))
				} else {
					crew.fences[i].Store(fenceSkip)
				}
			}
			crew.epoch.Add(1)
			for i := range e.shards {
				if e.laP[i] < e.laF[i] && crew.parked[i].Load() {
					select {
					case crew.wake[i] <- struct{}{}:
					default:
					}
				}
			}
			<-crew.done
			for i, p := range crew.pans {
				if p != nil {
					panic(fmt.Sprintf("sim: LP %d window panic: %v", i, p))
				}
			}
		}
		// Round floor: every event below B has executed on its LP (runnable
		// LPs ran at least to their effective fence; skipped LPs had nothing
		// below theirs), so the merged prefix is exactly the sequential one.
		B := infFuture
		for i, s := range e.shards {
			f := e.laF[i]
			if e.laP[i] < e.laF[i] {
				f = s.winBuf.ranTo
			}
			if f < B {
				B = f
			}
		}
		e.mergeWindow(B)
	}
	if e.winStop.Load() {
		// Mirror the sequential stop path: a stopped engine is dead, so
		// release every process goroutine before returning.
		e.stopped = true
		e.running = false
		e.Shutdown()
		return nil
	}
	if parked := e.parkedReport(); len(parked) > 0 {
		return &DeadlockError{
			Time:       e.Now(),
			Parked:     parked,
			Dispatched: e.Dispatched(),
			Live:       e.Live(),
		}
	}
	return nil
}

// startCrew launches one locked-thread runner per LP, parked on the epoch
// barrier.
func (e *Engine) startCrew() *shardCrew {
	crew := &shardCrew{
		fences: make([]atomic.Int64, len(e.shards)),
		parked: make([]atomic.Bool, len(e.shards)),
		wake:   make([]chan struct{}, len(e.shards)),
		done:   make(chan struct{}, 1),
		pans:   make([]any, len(e.shards)),
	}
	for i := range crew.wake {
		crew.wake[i] = make(chan struct{}, 1)
	}
	e.crew = crew
	for i, s := range e.shards {
		go crew.runner(i, s)
	}
	return crew
}

// runner executes one LP's windows: spin briefly on the epoch, park on the
// wake channel when the coordinator has nothing for this LP, run the window
// when a fence is published, and let the round's last finisher signal done.
func (c *shardCrew) runner(i int, s *Engine) {
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	var seen uint64
	// waitStart brackets the idle gap between finishing one window and
	// starting the next one this LP participates in: the wall-clock cost of
	// fence synchronization, per LP.
	var waitStart time.Time
	for {
		spins := 0
		for c.epoch.Load() == seen {
			if spins++; spins > 128 {
				c.parked[i].Store(true)
				if c.epoch.Load() == seen {
					<-c.wake[i]
				}
				c.parked[i].Store(false)
				spins = 0
			}
		}
		seen = c.epoch.Load()
		f := c.fences[i].Load()
		switch f {
		case fenceRetire:
			return
		case fenceSkip:
			continue
		}
		if !waitStart.IsZero() {
			s.fenceWait += time.Since(waitStart)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					c.pans[i] = r
				}
				if c.active.Add(-1) == 0 {
					c.done <- struct{}{}
				}
			}()
			s.runWindow(time.Duration(f))
		}()
		waitStart = time.Now()
	}
}

// mergeWindow replays the scheduling calls of every exec record below the
// round floor in sequential order and routes their cross-LP events. Records
// at or beyond the floor — an LP that ran ahead of a lagging peer — are
// carried: their resolved provisional prefix is compacted away and their
// remaining keys reindexed, so the logs stay small and the next merge picks
// up where this one stopped. Runs on the coordinator thread with every
// runner quiescent (the epoch barrier provides the happens-before edges).
func (e *Engine) mergeWindow(limit time.Duration) {
	cur := e.mergeCur
	for i := range cur {
		cur[i] = mergeCursor{}
	}
	for _, E := range e.shards {
		w := E.win
		if E.ready.n != 0 {
			panic("sim: LP ready ring not drained at fence")
		}
		if cap(w.canonTab) < w.provCnt {
			w.canonTab = make([]uint64, w.provCnt)
		}
		w.canonTab = w.canonTab[:w.provCnt]
		for i := range w.canonTab {
			w.canonTab[i] = 0
		}
	}
	// K-way merge of the exec-log prefixes below the floor by (time,
	// canonical seq): the order the sequential engine would have executed
	// these events in. A provisional head key always translates: the event's
	// creator ran earlier on the same LP (records are logged in execution
	// order, times non-decreasing), so its calls were already replayed.
	for {
		best := -1
		var bAt time.Duration
		var bKey uint64
		for s, E := range e.shards {
			w := E.win
			if cur[s].exec >= len(w.execs) {
				continue
			}
			r := w.execs[cur[s].exec]
			if r.at >= limit {
				continue
			}
			k := r.key
			if k >= provBase {
				k = w.canonTab[k&^provBase]
				if k == 0 {
					panic("sim: window merge saw an event before its creator")
				}
			}
			if best < 0 || r.at < bAt || (r.at == bAt && k < bKey) {
				best, bAt, bKey = s, r.at, k
			}
		}
		if best < 0 {
			break
		}
		w := e.shards[best].win
		r := w.execs[cur[best].exec]
		cur[best].exec++
		for i := int32(0); i < r.n; i++ {
			e.seq++
			if w.calls[cur[best].call] {
				w.outbox[cur[best].out].seq = e.seq
				cur[best].out++
			} else {
				w.canonTab[cur[best].prov] = e.seq
				cur[best].prov++
			}
			cur[best].call++
		}
	}
	// Rewrite provisional seqs: resolved indexes (the replayed prefix) get
	// their canonical values, carried ones shift down by the resolved count.
	// Canonical seqs are assigned in each LP's call order and all exceed the
	// pre-merge counter, so the rewrite preserves the relative order of
	// every pair of events — the heap invariant survives untouched. This
	// pass must complete before any outbox routing below: a routed event's
	// canonical seq orders against the destination's resolved seqs by value,
	// which only holds once those are rewritten.
	for s, E := range e.shards {
		w := E.win
		res := cur[s].prov
		for i := range E.heap {
			if sq := E.heap[i].seq; sq >= provBase {
				if p := int(sq &^ provBase); p < res {
					E.heap[i].seq = w.canonTab[p]
				} else {
					E.heap[i].seq = provBase | uint64(p-res)
				}
			}
		}
		for i := cur[s].exec; i < len(w.execs); i++ {
			if sq := w.execs[i].key; sq >= provBase {
				if p := int(sq &^ provBase); p < res {
					w.execs[i].key = w.canonTab[p]
				} else {
					w.execs[i].key = provBase | uint64(p-res)
				}
			}
		}
		w.provCnt -= res
		n := copy(w.execs, w.execs[cur[s].exec:])
		w.execs = w.execs[:n]
		n = copy(w.calls, w.calls[cur[s].call:])
		w.calls = w.calls[:n]
	}
	// Route the replayed outbox prefixes. Every cross-LP event lands at or
	// beyond its destination's executed horizon — that is what the per-pair
	// floors and the in-flight fences guarantee; the check is a cheap
	// backstop.
	for s, E := range e.shards {
		w := E.win
		for i := 0; i < cur[s].out; i++ {
			c := &w.outbox[i]
			if c.at < c.dst.now {
				panic(fmt.Sprintf("sim: lookahead violation: a cross-LP event from LP %d arrived at %v, "+
					"inside LP %d's executed past (clock %v) — AtShard targets must lie at least the "+
					"pair's lookahead floor beyond the sender's clock (see DESIGN.md §5c)",
					s, c.at, c.dst.lpIdx, c.dst.now))
			}
			c.dst.heapPush(event{at: c.at, seq: c.seq, fn: c.fn})
		}
		n := copy(w.outbox, w.outbox[cur[s].out:])
		tail := w.outbox[n:]
		for i := range tail {
			tail[i] = crossEvent{}
		}
		w.outbox = w.outbox[:n]
	}
}

// sharded-mode aggregate accessors (root engine)

// LPStats reports one LP's window-synchronization counters from a sharded
// run: how many bounded windows it executed, how many of those dispatched no
// event on this LP (pure synchronization overhead — zero under per-LP
// fencing, which skips such rounds outright), how many windows ran inline on
// the coordinator with no fence round-trip, how many events it dispatched in
// total, and the wall-clock time its runner thread spent waiting between the
// windows it participated in. Windows minus Chained is the LP's fence
// participations. The counters are observability only — they never influence
// the simulation and are excluded from the byte-identity surface.
type LPStats struct {
	LP          int
	Windows     uint64        // windows executed by this LP
	IdleWindows uint64        // windows with zero events on this LP
	Chained     uint64        // windows run inline on the coordinator (no barrier)
	Events      uint64        // events dispatched by this LP
	FenceWait   time.Duration // wall-clock fence-barrier wait
}

// ShardStats returns the per-LP window counters of a sharded root engine,
// accumulated across its runs so far. It returns nil on an unsharded engine.
// Call it after Run (or between runs); it must not race a live window.
func (e *Engine) ShardStats() []LPStats {
	if e.shards == nil {
		return nil
	}
	out := make([]LPStats, len(e.shards))
	for i, s := range e.shards {
		out[i] = LPStats{
			LP:          i,
			Windows:     s.winWindows,
			IdleWindows: s.winIdle,
			Chained:     s.winChained,
			Events:      s.dispatched,
			FenceWait:   s.fenceWait,
		}
	}
	return out
}

// shardedNow reports the furthest LP clock: the virtual instant the run has
// reached, equal to the sequential engine's clock at the same point.
func (e *Engine) shardedNow() time.Duration {
	now := e.now
	for _, s := range e.shards {
		if s.now > now {
			now = s.now
		}
	}
	return now
}
