package sim

import (
	"errors"
	"runtime"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"albatross/internal/rng"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30*time.Millisecond, func() { got = append(got, 3) })
	e.At(10*time.Millisecond, func() { got = append(got, 1) })
	e.At(20*time.Millisecond, func() { got = append(got, 2) })
	e.At(10*time.Millisecond, func() { got = append(got, 11) }) // FIFO at equal times
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 11, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if e.Now() != 30*time.Millisecond {
		t.Fatalf("end time %v", e.Now())
	}
}

func TestPastEventRunsNow(t *testing.T) {
	e := NewEngine()
	var at time.Duration
	e.At(10*time.Millisecond, func() {
		e.At(5*time.Millisecond, func() { at = e.Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 10*time.Millisecond {
		t.Fatalf("past event ran at %v, want clamped to 10ms", at)
	}
}

func TestSleepAndCompute(t *testing.T) {
	e := NewEngine()
	var p1end, p2end time.Duration
	e.Go("a", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		p.Compute(7 * time.Millisecond)
		p1end = p.Now()
		if p.BusyTime() != 7*time.Millisecond {
			t.Errorf("busy %v", p.BusyTime())
		}
	})
	e.Go("b", func(p *Proc) {
		p.Compute(3 * time.Millisecond)
		p2end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if p1end != 12*time.Millisecond || p2end != 3*time.Millisecond {
		t.Fatalf("ends %v %v", p1end, p2end)
	}
}

func TestProcsRunConcurrentlyInVirtualTime(t *testing.T) {
	// 10 procs each compute 1ms; virtual end time must be 1ms, not 10ms.
	e := NewEngine()
	for i := 0; i < 10; i++ {
		e.Go("w", func(p *Proc) { p.Compute(time.Millisecond) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != time.Millisecond {
		t.Fatalf("end %v, want 1ms", e.Now())
	}
}

func TestFutureBothOrders(t *testing.T) {
	e := NewEngine()
	f1 := NewFuture(e, "f1")
	f2 := NewFuture(e, "f2")
	var got1, got2 any
	e.Go("await-then-set", func(p *Proc) {
		got1 = f1.Await(p) // blocks: set at t=2ms
		got2 = f2.Await(p) // already set: immediate
	})
	e.Go("setter", func(p *Proc) {
		f2.Set("early")
		p.Sleep(2 * time.Millisecond)
		f1.Set(42)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got1 != 42 || got2 != "early" {
		t.Fatalf("got %v %v", got1, got2)
	}
}

func TestFutureWakesAllWaiters(t *testing.T) {
	e := NewEngine()
	f := NewFuture(e, "f")
	woken := 0
	for i := 0; i < 5; i++ {
		e.Go("w", func(p *Proc) {
			f.Await(p)
			woken++
			if p.Now() != time.Millisecond {
				t.Errorf("woke at %v", p.Now())
			}
		})
	}
	e.After(time.Millisecond, func() { f.Set(nil) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 5 {
		t.Fatalf("woken %d", woken)
	}
}

func TestMailboxFIFO(t *testing.T) {
	e := NewEngine()
	m := NewMailbox(e, "m")
	var got []int
	e.Go("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, m.Get(p).(int))
		}
	})
	e.Go("send", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(time.Millisecond)
			m.Put(i)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestMailboxMultipleWaiters(t *testing.T) {
	e := NewEngine()
	m := NewMailbox(e, "m")
	served := 0
	for i := 0; i < 4; i++ {
		e.Go("w", func(p *Proc) {
			m.Get(p)
			served++
		})
	}
	e.After(time.Millisecond, func() {
		for i := 0; i < 4; i++ {
			m.Put(i)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if served != 4 {
		t.Fatalf("served %d", served)
	}
}

func TestMailboxTryGet(t *testing.T) {
	e := NewEngine()
	m := NewMailbox(e, "m")
	if _, ok := m.TryGet(); ok {
		t.Fatal("TryGet on empty succeeded")
	}
	m.Put(7)
	v, ok := m.TryGet()
	if !ok || v.(int) != 7 {
		t.Fatalf("TryGet got %v %v", v, ok)
	}
}

func TestBarrierGenerations(t *testing.T) {
	e := NewEngine()
	const n = 4
	b := NewBarrier(e, "b", n)
	var maxRound [n]int
	for i := 0; i < n; i++ {
		i := i
		e.Go("w", func(p *Proc) {
			for round := 1; round <= 3; round++ {
				p.Compute(time.Duration(i+1) * time.Millisecond)
				b.Arrive(p)
				maxRound[i] = round
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range maxRound {
		if maxRound[i] != 3 {
			t.Fatalf("proc %d finished %d rounds", i, maxRound[i])
		}
	}
	// Each round gated by slowest proc (4ms): total 12ms.
	if e.Now() != 12*time.Millisecond {
		t.Fatalf("end %v, want 12ms", e.Now())
	}
}

func TestSemaphore(t *testing.T) {
	e := NewEngine()
	s := NewSemaphore(e, "s", 2)
	inCrit := 0
	maxCrit := 0
	for i := 0; i < 6; i++ {
		e.Go("w", func(p *Proc) {
			s.Acquire(p)
			inCrit++
			if inCrit > maxCrit {
				maxCrit = inCrit
			}
			p.Compute(time.Millisecond)
			inCrit--
			s.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if maxCrit != 2 {
		t.Fatalf("max concurrency %d, want 2", maxCrit)
	}
	if e.Now() != 3*time.Millisecond {
		t.Fatalf("end %v, want 3ms", e.Now())
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	f := NewFuture(e, "never")
	e.Go("victim", func(p *Proc) { f.Await(p) })
	err := e.Run()
	var d *DeadlockError
	if !errors.As(err, &d) {
		t.Fatalf("err %v, want DeadlockError", err)
	}
	if len(d.Parked) != 1 || d.Parked[0] != "victim on future never" {
		t.Fatalf("parked %v", d.Parked)
	}
}

func TestDaemonExemptFromDeadlock(t *testing.T) {
	e := NewEngine()
	m := NewMailbox(e, "requests")
	e.Go("server", func(p *Proc) {
		p.SetDaemon(true)
		for {
			m.Get(p)
		}
	})
	e.Go("client", func(p *Proc) {
		p.Sleep(time.Millisecond)
		m.Put("hello")
	})
	if err := e.Run(); err != nil {
		t.Fatalf("daemon reported as deadlock: %v", err)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n == 5 {
			e.Stop()
		}
		e.After(time.Millisecond, tick)
	}
	e.After(time.Millisecond, tick)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("ticks %d", n)
	}
}

// goroutinesSettleTo waits for the runtime goroutine count to drop to at
// most want (released goroutines need a moment to actually exit).
func goroutinesSettleTo(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine count stuck at %d, want <= %d", runtime.NumGoroutine(), want)
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

func TestStopReleasesParkedProcs(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		e := NewEngine()
		m := NewMailbox(e, "never")
		// A parked process, a woken-but-not-resumed process, a daemon, and
		// a spawned-but-never-started process: all must be released.
		e.Go("parked", func(p *Proc) { m.Get(p) })
		e.Go("daemon", func(p *Proc) {
			p.SetDaemon(true)
			for {
				m.Get(p)
			}
		})
		e.Go("ticker", func(p *Proc) {
			p.Sleep(time.Millisecond)
			e.Stop()
			p.Sleep(time.Millisecond)
		})
		e.After(2*time.Millisecond, func() {
			e.Go("never-started", func(p *Proc) {})
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if e.Live() != 0 {
			t.Fatalf("Live() = %d after stopped run", e.Live())
		}
	}
	goroutinesSettleTo(t, baseline)
}

func TestShutdownReleasesDaemonsAfterCleanRun(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		e := NewEngine()
		m := NewMailbox(e, "requests")
		e.Go("server", func(p *Proc) {
			p.SetDaemon(true)
			for {
				m.Get(p)
			}
		})
		e.Go("client", func(p *Proc) { m.Put("hi") })
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		e.Shutdown()
		e.Shutdown() // idempotent
		if e.Live() != 0 {
			t.Fatalf("Live() = %d after Shutdown", e.Live())
		}
	}
	goroutinesSettleTo(t, baseline)
}

func TestShutdownRunsProcDefers(t *testing.T) {
	e := NewEngine()
	m := NewMailbox(e, "never")
	deferred := false
	e.Go("w", func(p *Proc) {
		defer func() { deferred = true }()
		m.Get(p)
	})
	e.After(time.Millisecond, func() { e.Stop() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !deferred {
		t.Fatal("deferred function of killed proc did not run")
	}
}

func TestYieldLetsOthersRun(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Go("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	e.Go("b", func(p *Proc) {
		order = append(order, "b1")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v", order)
		}
	}
}

// runRandomProgram builds a pseudo-random process network from seed and
// returns its final virtual time and a trace checksum.
func runRandomProgram(seed uint64) (time.Duration, uint64) {
	r := rng.New(seed)
	e := NewEngine()
	nprocs := 2 + r.Intn(6)
	nboxes := 1 + r.Intn(3)
	boxes := make([]*Mailbox, nboxes)
	for i := range boxes {
		boxes[i] = NewMailbox(e, "box")
	}
	var checksum uint64
	for i := 0; i < nprocs; i++ {
		pr := r.Derive(uint64(i))
		e.Go("w", func(p *Proc) {
			for step := 0; step < 20; step++ {
				switch pr.Intn(3) {
				case 0:
					p.Compute(time.Duration(pr.Intn(1000)) * time.Microsecond)
				case 1:
					boxes[pr.Intn(nboxes)].Put(pr.Uint64())
				case 2:
					b := boxes[pr.Intn(nboxes)]
					if v, ok := b.TryGet(); ok {
						checksum = checksum*31 + v.(uint64)
					}
				}
			}
		})
	}
	if err := e.Run(); err != nil {
		panic(err)
	}
	return e.Now(), checksum
}

func TestDeterministicReplay(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	prop := func(seed uint64) bool {
		t1, c1 := runRandomProgram(seed)
		t2, c2 := runRandomProgram(seed)
		return t1 == t2 && c1 == c2
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestHeapPropertyMonotoneTime(t *testing.T) {
	// Property: regardless of the schedule of insertions, callbacks observe
	// a non-decreasing clock.
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		e := NewEngine()
		ok := true
		last := time.Duration(-1)
		var add func(depth int)
		add = func(depth int) {
			e.At(time.Duration(r.Intn(10000))*time.Microsecond, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
				if depth < 3 && r.Intn(2) == 0 {
					add(depth + 1)
				}
			})
		}
		for i := 0; i < 50; i++ {
			add(0)
		}
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRunReentrancyPanics(t *testing.T) {
	e := NewEngine()
	e.At(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("reentrant Run did not panic")
			}
		}()
		_ = e.Run()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeSleepPanics(t *testing.T) {
	e := NewEngine()
	panicked := false
	e.Go("w", func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		p.Sleep(-1)
	})
	_ = e.Run()
	if !panicked {
		t.Fatal("negative sleep did not panic")
	}
}

func TestProcIntrospection(t *testing.T) {
	e := NewEngine()
	m := NewMailbox(e, "box")
	p := e.Go("worker", func(p *Proc) {
		if p.Name() != "worker" || p.ID() != 0 {
			t.Errorf("name/id wrong: %s %d", p.Name(), p.ID())
		}
		if p.Engine() != e {
			t.Error("Engine() mismatch")
		}
		m.Get(p) // park so the engine can inspect the state
	})
	e.After(time.Millisecond, func() {
		if got := p.String(); got != "worker(#0,parked)" {
			t.Errorf("String() = %q", got)
		}
		if m.Waiting() != 1 {
			t.Errorf("Waiting() = %d", m.Waiting())
		}
		m.Put("go")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(e.Procs()) != 1 {
		t.Fatalf("Procs() = %d", len(e.Procs()))
	}
	if p.String() != "worker(#0,done)" {
		t.Fatalf("final String() = %q", p.String())
	}
}

func TestMailboxLen(t *testing.T) {
	e := NewEngine()
	m := NewMailbox(e, "box")
	m.Put(1)
	m.Put(2)
	if m.Len() != 2 {
		t.Fatalf("Len() = %d", m.Len())
	}
}

func TestFutureDoubleSetPanics(t *testing.T) {
	e := NewEngine()
	f := NewFuture(e, "once")
	f.Set(1)
	defer func() {
		if recover() == nil {
			t.Fatal("second Set did not panic")
		}
	}()
	f.Set(2)
}

func TestFutureDoneAndValue(t *testing.T) {
	e := NewEngine()
	f := NewFuture(e, "v")
	if f.Done() || f.Value() != nil {
		t.Fatal("fresh future claims resolution")
	}
	f.Set(42)
	if !f.Done() || f.Value() != 42 {
		t.Fatal("resolved future wrong")
	}
}

func TestBarrierSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size barrier accepted")
		}
	}()
	NewBarrier(NewEngine(), "b", 0)
}

func TestDeadlockErrorMessage(t *testing.T) {
	d := &DeadlockError{Time: time.Second, Parked: []string{"a on future f"}}
	if !strings.Contains(d.Error(), "a on future f") || !strings.Contains(d.Error(), "1s") {
		t.Fatalf("error message %q", d.Error())
	}
}

func TestLiveCount(t *testing.T) {
	e := NewEngine()
	m := NewMailbox(e, "m")
	e.Go("short", func(p *Proc) {})
	e.Go("long", func(p *Proc) { m.Get(p) })
	e.After(time.Millisecond, func() {
		if e.Live() != 1 {
			t.Errorf("Live() = %d mid-run, want 1", e.Live())
		}
		m.Put(nil)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Live() != 0 {
		t.Fatalf("Live() = %d at end", e.Live())
	}
}

func TestDeadlineAbortsRunawayRun(t *testing.T) {
	e := NewEngine()
	m := NewMailbox(e, "never")
	e.Go("stuck", func(p *Proc) { m.Get(p) })
	var tick func()
	tick = func() { e.After(time.Millisecond, tick) } // livelock in virtual time
	e.After(0, tick)
	e.SetDeadline(10 * time.Millisecond)
	err := e.Run()
	var d *DeadlineError
	if !errors.As(err, &d) {
		t.Fatalf("err %v, want DeadlineError", err)
	}
	if d.Deadline != 10*time.Millisecond {
		t.Fatalf("deadline %v", d.Deadline)
	}
	if d.Next <= d.Deadline {
		t.Fatalf("next event %v not past deadline %v", d.Next, d.Deadline)
	}
	if len(d.Parked) != 1 || d.Parked[0] != "stuck on mailbox never" {
		t.Fatalf("parked %v", d.Parked)
	}
	if d.Live != 1 || d.Dispatched == 0 {
		t.Fatalf("live %d dispatched %d", d.Live, d.Dispatched)
	}
	if !strings.Contains(err.Error(), "stuck on mailbox never") {
		t.Fatalf("error message %q does not name the parked proc", err.Error())
	}
	e.Shutdown()
}

func TestDeadlineDoesNotPerturbCompletingRun(t *testing.T) {
	run := func(deadline time.Duration) (time.Duration, uint64) {
		e := NewEngine()
		e.Go("w", func(p *Proc) {
			for i := 0; i < 5; i++ {
				p.Sleep(time.Millisecond)
			}
		})
		if deadline > 0 {
			e.SetDeadline(deadline)
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now(), e.Dispatched()
	}
	end0, n0 := run(0)
	end1, n1 := run(time.Second)
	if end0 != end1 || n0 != n1 {
		t.Fatalf("deadline perturbed a completing run: %v/%d vs %v/%d", end0, n0, end1, n1)
	}
}

func TestDeadlineBoundaryEventRuns(t *testing.T) {
	e := NewEngine()
	ran := false
	e.At(10*time.Millisecond, func() { ran = true })
	e.SetDeadline(10 * time.Millisecond)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("event scheduled exactly at the deadline did not run")
	}
}

func TestNegativeDeadlinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative deadline accepted")
		}
	}()
	NewEngine().SetDeadline(-1)
}
