package sim

import (
	"fmt"
	"time"
)

// procState tracks where a process is in the baton-passing protocol.
type procState uint8

const (
	procReady   procState = iota // scheduled to run but not holding the baton
	procRunning                  // holds the baton
	procParked                   // blocked on a primitive, off the event heap
	procDone                     // body returned
)

func (s procState) String() string {
	switch s {
	case procReady:
		return "ready"
	case procRunning:
		return "running"
	case procParked:
		return "parked"
	case procDone:
		return "done"
	}
	return "invalid"
}

// Proc is a simulated process. All methods must be called from the process's
// own body function (they block the calling goroutine in virtual time).
type Proc struct {
	e      *Engine
	id     int
	name   string
	resume chan struct{}
	runFn  func() // pre-bound resume thunk: hands this proc the baton
	state  procState

	// What blocks us, split in two so parking never concatenates: the
	// primitive kind ("future ", "mailbox ", ...) and the instance name.
	// waitReport joins them only when a deadlock report needs the text.
	waitKind string
	waitName string
	daemon   bool // daemon procs may be left parked at end of run
	started  bool // the goroutine for the body exists

	busy time.Duration // accumulated Compute time, for utilization metrics
}

// SetDaemon marks the process as a daemon: a server that legitimately stays
// blocked forever (waiting for requests). Daemon processes parked when the
// event queue drains are not reported as deadlocks.
func (p *Proc) SetDaemon(on bool) { p.daemon = on }

// ID reports the spawn-order index of the process.
func (p *Proc) ID() int { return p.id }

// Name reports the process name given to Engine.Go.
func (p *Proc) Name() string { return p.name }

// Engine returns the owning engine.
func (p *Proc) Engine() *Engine { return p.e }

// Now reports the current virtual time.
func (p *Proc) Now() time.Duration { return p.e.now }

// BusyTime reports total virtual time this process has spent in Compute.
func (p *Proc) BusyTime() time.Duration { return p.busy }

func (p *Proc) String() string { return fmt.Sprintf("%s(#%d,%v)", p.name, p.id, p.state) }

func (p *Proc) waitReport() string {
	if p.waitKind == "" {
		return p.name
	}
	return p.name + " on " + p.waitKind + p.waitName
}

// park gives the baton back to the engine and blocks until woken. During
// Shutdown it unwinds the calling goroutine instead of blocking forever.
// kind and name describe the blocking primitive; they are stored as-is and
// joined only if a deadlock report is built, so parking allocates nothing.
func (p *Proc) park(kind, name string) {
	if p.e.killing {
		panic(procKilled{})
	}
	p.state = procParked
	p.waitKind = kind
	p.waitName = name
	p.e.ctl <- sigParked
	<-p.resume
	if p.e.killing {
		panic(procKilled{})
	}
	p.waitKind = ""
	p.waitName = ""
}

// Sleep advances the process's clock by d without charging busy time.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		panic("sim: negative Sleep")
	}
	p.e.At(p.e.now+d, p.runFn)
	p.park("sleep", "")
}

// Compute models d of CPU work: the clock advances and busy time accrues.
func (p *Proc) Compute(d time.Duration) {
	if d < 0 {
		panic("sim: negative Compute")
	}
	p.busy += d
	p.Sleep(d)
}

// Yield reschedules the process at the current time, letting every other
// event and process due now run first.
func (p *Proc) Yield() { p.Sleep(0) }

// Future is a one-shot synchronization cell: many processes may Await it,
// one Set resolves it and wakes them all. A Future may be Set at most once.
// The zero value is ready to use once bound to an engine via NewFuture.
type Future struct {
	e       *Engine
	name    string
	done    bool
	val     any
	waiters []*Proc
}

// NewFuture creates an unresolved future. The name appears in deadlock
// reports of processes blocked on it.
func NewFuture(e *Engine, name string) *Future {
	return &Future{e: e, name: name}
}

// Done reports whether the future has been resolved.
func (f *Future) Done() bool { return f.done }

// Value returns the resolved value, or nil if not yet resolved.
func (f *Future) Value() any { return f.val }

// Set resolves the future and wakes all waiters at the current virtual time.
// It may be called from event callbacks or process context.
func (f *Future) Set(v any) {
	if f.done {
		panic("sim: Future.Set called twice on " + f.name)
	}
	f.done = true
	f.val = v
	for i, w := range f.waiters {
		// Wake through the waiter's own engine: a future may be bound to a
		// sharded root while its waiters live on LP engines (identical to
		// f.e on a plain engine, where every proc shares it).
		w.e.wake(w)
		f.waiters[i] = nil
	}
	f.waiters = f.waiters[:0]
}

// Reset re-arms a resolved future for reuse under a new name, so hot paths
// can pool futures instead of allocating one per call. The caller must have
// consumed the value already: the future must be resolved and waiter-free.
func (f *Future) Reset(name string) {
	if !f.done {
		panic("sim: Future.Reset of unresolved " + f.name)
	}
	if len(f.waiters) != 0 {
		panic("sim: Future.Reset with waiters on " + f.name)
	}
	f.name = name
	f.done = false
	f.val = nil
}

// Await blocks the calling process until the future resolves and returns the
// value. If already resolved it returns immediately without yielding.
func (f *Future) Await(p *Proc) any {
	if f.done {
		return f.val
	}
	f.waiters = append(f.waiters, p)
	p.park("future ", f.name)
	return f.val
}

// fifo is a power-of-two circular buffer: the same shape as the engine's
// ready ring. Unlike an append/reslice slice queue it reuses its backing
// array forever, so a steady put/get cycle allocates nothing.
type fifo[T any] struct {
	buf  []T // len is zero or a power of two
	head int // index of the oldest element
	n    int // queued count
}

func (f *fifo[T]) len() int { return f.n }

func (f *fifo[T]) push(v T) {
	if f.n == len(f.buf) {
		f.grow()
	}
	f.buf[(f.head+f.n)&(len(f.buf)-1)] = v
	f.n++
}

func (f *fifo[T]) pop() T {
	var zero T
	v := f.buf[f.head]
	f.buf[f.head] = zero // drop the reference
	f.head = (f.head + 1) & (len(f.buf) - 1)
	f.n--
	return v
}

func (f *fifo[T]) grow() {
	size := 2 * len(f.buf)
	if size == 0 {
		size = 8
	}
	buf := make([]T, size)
	for i := 0; i < f.n; i++ {
		buf[i] = f.buf[(f.head+i)&(len(f.buf)-1)]
	}
	f.buf = buf
	f.head = 0
}

// Mailbox is an unbounded FIFO queue of values with blocking receive.
// Multiple receivers are served in arrival order.
type Mailbox struct {
	e       *Engine
	name    string
	q       fifo[any]
	waiters fifo[*Proc]
}

// NewMailbox creates an empty mailbox.
func NewMailbox(e *Engine, name string) *Mailbox {
	return &Mailbox{e: e, name: name}
}

// Len reports the number of queued values.
func (m *Mailbox) Len() int { return m.q.len() }

// Waiting reports the number of processes blocked in Get.
func (m *Mailbox) Waiting() int { return m.waiters.len() }

// Put enqueues v, waking the longest-waiting receiver if any. It never
// blocks and may be called from event callbacks or process context.
func (m *Mailbox) Put(v any) {
	m.q.push(v)
	if m.waiters.len() > 0 {
		w := m.waiters.pop()
		w.e.wake(w) // the waiter's engine, as in Future.Set
	}
}

// Get dequeues the oldest value, blocking the process until one arrives.
func (m *Mailbox) Get(p *Proc) any {
	for m.q.len() == 0 {
		m.waiters.push(p)
		p.park("mailbox ", m.name)
	}
	return m.q.pop()
}

// TryGet dequeues the oldest value without blocking; ok is false if empty.
func (m *Mailbox) TryGet() (v any, ok bool) {
	if m.q.len() == 0 {
		return nil, false
	}
	return m.q.pop(), true
}

// Barrier lets n processes rendezvous repeatedly. Each Arrive blocks until
// all n processes of the current generation have arrived.
type Barrier struct {
	e       *Engine
	name    string
	n       int
	arrived int
	waiters []*Proc
}

// NewBarrier creates a barrier for n participants.
func NewBarrier(e *Engine, name string, n int) *Barrier {
	if n <= 0 {
		panic("sim: barrier size must be positive")
	}
	return &Barrier{e: e, name: name, n: n}
}

// Arrive blocks until all participants of this generation have arrived.
// The last arriver does not yield.
func (b *Barrier) Arrive(p *Proc) {
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		for i, w := range b.waiters {
			w.e.wake(w) // the waiter's engine, as in Future.Set
			b.waiters[i] = nil
		}
		b.waiters = b.waiters[:0]
		return
	}
	b.waiters = append(b.waiters, p)
	p.park("barrier ", b.name)
}

// Semaphore is a counting semaphore in virtual time.
type Semaphore struct {
	e       *Engine
	name    string
	count   int
	waiters fifo[*Proc]
}

// NewSemaphore creates a semaphore with the given initial count.
func NewSemaphore(e *Engine, name string, initial int) *Semaphore {
	return &Semaphore{e: e, name: name, count: initial}
}

// Acquire decrements the count, blocking while it is zero.
func (s *Semaphore) Acquire(p *Proc) {
	for s.count == 0 {
		s.waiters.push(p)
		p.park("semaphore ", s.name)
	}
	s.count--
}

// Release increments the count and wakes one waiter if any.
func (s *Semaphore) Release() {
	s.count++
	if s.waiters.len() > 0 {
		w := s.waiters.pop()
		w.e.wake(w) // the waiter's engine, as in Future.Set
	}
}
