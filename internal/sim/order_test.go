package sim

import (
	"testing"
	"time"

	"albatross/internal/rng"
)

// TestSeqOrderingLargeScale floods the dispatcher with over a million events
// at random times (plus nested, sometimes past-time reschedules) and checks
// the full (time, seq) contract at scale: the clock never goes backwards and
// events sharing an instant run in exactly the order they were scheduled.
// This exercises deep 4-ary heap sifts, ready-ring growth, and the seq
// counter well past any small-heap special cases.
func TestSeqOrderingLargeScale(t *testing.T) {
	const n = 1 << 20 // > 1e6 scheduled events before nested reschedules
	r := rng.New(42)
	e := NewEngine()
	lastAt := time.Duration(-1)
	lastScheduled := make(map[time.Duration]int) // instant -> last schedule index run
	dispatchedCount := 0
	bad := 0
	check := func(idx int) {
		dispatchedCount++
		now := e.Now()
		if now < lastAt {
			bad++
			return
		}
		lastAt = now
		if prev, ok := lastScheduled[now]; ok && idx < prev {
			// Two events at one instant ran out of schedule order.
			bad++
		}
		lastScheduled[now] = idx
	}
	idx := 0
	schedule := func(at time.Duration) {
		i := idx
		idx++
		e.At(at, func() {
			check(i)
			// A sprinkle of nested schedules, some into the past (which must
			// clamp to now and still run after everything already queued for
			// this instant).
			if i%1024 == 0 {
				j := idx
				idx++
				e.At(e.Now()-time.Millisecond, func() { check(j) })
			}
		})
	}
	for i := 0; i < n; i++ {
		schedule(time.Duration(r.Intn(1 << 16)) * time.Microsecond)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if bad > 0 {
		t.Fatalf("%d ordering violations over %d dispatches", bad, dispatchedCount)
	}
	if dispatchedCount != idx {
		t.Fatalf("dispatched %d events, scheduled %d", dispatchedCount, idx)
	}
	if got := e.Dispatched(); got != uint64(idx) {
		t.Fatalf("Dispatched() = %d, want %d", got, idx)
	}
}

// TestPastEventOrdersAfterQueuedNowEvents pins the subtle half of the At
// contract: an event scheduled for a past instant is clamped to now, and
// because seq keeps counting it must run AFTER every event already queued at
// the current instant — never jump the queue.
func TestPastEventOrdersAfterQueuedNowEvents(t *testing.T) {
	e := NewEngine()
	var got []string
	e.At(10*time.Millisecond, func() {
		e.At(e.Now(), func() { got = append(got, "now-1") })
		e.At(e.Now(), func() { got = append(got, "now-2") })
		e.At(e.Now()-5*time.Millisecond, func() { got = append(got, "past") })
		e.At(e.Now(), func() { got = append(got, "now-3") })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"now-1", "now-2", "past", "now-3"}
	if len(got) != len(want) {
		t.Fatalf("ran %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

// TestHeapEventsDueNowRunBeforeRingEntries mixes the two queues at one
// instant: a heap event scheduled for this instant from an earlier instant
// carries a smaller seq than any ready-ring entry pushed at the instant
// itself, so it must dispatch first — the pure (time, seq) order.
func TestHeapEventsDueNowRunBeforeRingEntries(t *testing.T) {
	e := NewEngine()
	var got []string
	// Both scheduled at t=0 for t=10ms: they live in the heap, seqs 1 and 2.
	e.At(10*time.Millisecond, func() {
		got = append(got, "heap-1")
		// Pushed onto the ready ring at t=10ms with seq 3: must wait for
		// heap-2 (seq 2, due now) even though the ring is "ready".
		e.At(e.Now(), func() { got = append(got, "ring-1") })
	})
	e.At(10*time.Millisecond, func() { got = append(got, "heap-2") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"heap-1", "heap-2", "ring-1"}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}
