//go:build !race

// Alloc-regression budget for the sharded engine's per-window path. Once
// the crew threads, fence slots, merge buffers and outbox slices are warm,
// a synchronization window must cost ~zero allocations: the epoch barrier
// reuses its channels, the per-round lookahead scratch is preallocated on
// the root, and the merge compacts carried records in place. A change that
// reintroduces per-window allocation (channel churn in the barrier, closure
// captures on the hot path, unpooled cross-LP records) fails here long
// before it shows up in the benchmarks.
//
// Excluded under the race detector: instrumentation inflates allocation
// counts and the budget is meaningless there.
package sim

import (
	"runtime"
	"testing"
	"time"
)

// TestAllocShardedWindow runs a four-LP workload with steady cross-LP
// traffic (every eighth event hops to the next LP at exactly the lookahead
// floor, keeping every fence load-bearing) and charges the whole run's
// allocations against its window count. The fixed setup — runner goroutine
// stacks, wake channels, scratch growth — amortizes across thousands of
// windows, so the per-window budget stays well under one allocation only if
// the steady-state path itself is allocation-free.
func TestAllocShardedWindow(t *testing.T) {
	e := NewEngine()
	lps := e.Shard(4)
	e.SetLookahead(time.Millisecond)
	counts := make([]int, len(lps))
	const per = 20000
	for i := range lps {
		i, lp, next := i, lps[i], lps[(i+1)%len(lps)]
		ni := (i + 1) % len(lps)
		bump := func() { counts[ni]++ }
		n := 0
		var tick func()
		tick = func() {
			counts[i]++
			if n++; n >= per {
				return
			}
			if n%8 == 0 {
				lp.AtShard(next, lp.Now()+time.Millisecond, bump)
			}
			lp.At(lp.Now()+200*time.Microsecond, tick)
		}
		lp.At(200*time.Microsecond, tick)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	total := 0
	for _, c := range counts {
		total += c
	}
	if want := 4*per + 4*(per/8-1); total < want {
		t.Fatalf("ran %d events, want >= %d", total, want)
	}
	var windows uint64
	for _, st := range e.ShardStats() {
		windows += st.Windows
	}
	if windows < 1000 {
		t.Fatalf("only %d windows — workload too small for an amortized budget", windows)
	}
	allocs := after.Mallocs - before.Mallocs
	if per := float64(allocs) / float64(windows); per > 0.5 {
		t.Fatalf("%d allocs over %d windows = %.2f allocs/window, budget 0.5", allocs, windows, per)
	}
}
