// Package sim implements a deterministic, process-oriented discrete-event
// simulation engine.
//
// Simulated processes are goroutines coordinated by a strict baton-passing
// protocol: at any instant exactly one goroutine (either the engine or a
// single process) is running, so simulation state needs no locking and every
// run of the same configuration produces the identical event order and the
// identical virtual end time.
//
// Time is virtual. A process advances its own clock with Compute or Sleep,
// synchronizes with others through Future and Mailbox, and the engine
// schedules arbitrary callbacks with At. When the event heap drains while
// processes are still parked, Run reports a deadlock naming the culprits.
//
// The dispatcher is split in two for throughput. Events scheduled for a
// future instant live in an inlined, monomorphic 4-ary min-heap ordered by
// (time, seq) — no interface boxing, no indirect method calls. Events due at
// the current instant (process wakeups, zero-delay callbacks) bypass the
// heap through a FIFO ready ring; in a baton-passing simulation these are
// the majority of all events. The split is invisible to observers: the
// dispatch order is exactly the (time, seq) total order a single heap would
// produce (see Run).
package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Engine owns the virtual clock and the pending-event queues.
// Create one with NewEngine, spawn processes with Go, then call Run.
type Engine struct {
	now   time.Duration
	heap  []event   // future events: 4-ary min-heap on (at, seq)
	ready readyRing // events due at the current instant, FIFO
	seq   uint64    // schedule-order tiebreak, monotonic across both queues

	dispatched uint64 // events executed so far (observability/testing)

	deadline time.Duration // virtual-time abort limit; 0 = none

	ctl   chan procSignal // processes signal the engine here when parking/exiting
	procs []*Proc
	live  int // spawned but not yet exited

	running bool
	stopped bool
	killing bool // Shutdown in progress or complete; primitives go inert

	// Sharded-mode links (all nil/zero on a plain sequential engine).
	// See shard.go for the conservative parallel execution they support.
	root      *Engine       // on an LP: the sharded root that owns it
	shards    []*Engine     // on the root: the LP engines
	lpIdx     int           // on an LP: its index among the root's shards
	win       *winState     // on an LP: scheduling log, non-nil only during a sharded Run
	winBuf    winState      // backing store for win, reused across windows
	lookahead time.Duration // on the root: minimum entry of the lookahead matrix
	crew      *shardCrew    // on the root: runner threads, live during Run
	winStop   atomic.Bool   // on the root: Stop() flag readable from LP threads

	// Per-directed-LP-pair lookahead (see SetLookaheadMatrix). laD is the
	// relay-closed distance matrix, row-major k*k; bounce is each LP's
	// minimum round-trip floor back to itself via any other LP — the
	// earliest its own cross-LP emission can influence it again.
	laD        []time.Duration                          // root: closed lookahead matrix
	laRouted   bool                                     // root: laD came from SetLookaheadMatrix
	bounce     time.Duration                            // LP: min_j laD[i][j]+laD[j][i]
	crossAudit func(src, dst int, delta time.Duration)  // root: AtShard audit hook (tests)
	laP        []time.Duration                          // root: per-round next-event scratch
	laIn       []time.Duration                          // root: per-round inbound-floor scratch
	laF        []time.Duration                          // root: per-round fence scratch
	mergeCur   []mergeCursor                            // root: merge cursor scratch

	// Per-LP window-synchronization counters (see LPStats). Written only by
	// the thread running the LP's windows during a sharded Run (its runner
	// thread, or the coordinator for inline windows), read after the fence
	// barrier or after Run returns.
	winWindows uint64        // windows executed
	winIdle    uint64        // windows that dispatched no event on this LP
	winChained uint64        // windows run inline on the coordinator, no fence round-trip
	fenceWait  time.Duration // wall-clock time spent waiting at window fences
}

// procKilled is the panic value used to unwind process goroutines during
// Shutdown. It is recovered by the spawn wrapper and never escapes.
type procKilled struct{}

// procSignal tells the engine what the currently running process just did.
type procSignal uint8

const (
	sigParked procSignal = iota // process blocked; it will wait on its resume channel
	sigExited                   // process body returned
)

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

// eventLess orders events by virtual time, then by schedule order.
func eventLess(a, b event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// nowEvent is a ready-ring entry: an event known to be due at the current
// instant, so only its schedule order and callback need storing.
type nowEvent struct {
	seq uint64
	fn  func()
}

// readyRing is a FIFO circular buffer of due-now events. Pushes and pops are
// allocation-free in steady state; the buffer doubles (power-of-two sizes)
// when full.
type readyRing struct {
	buf  []nowEvent
	head int
	n    int
}

func (r *readyRing) push(seq uint64, fn func()) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = nowEvent{seq, fn}
	r.n++
}

func (r *readyRing) grow() {
	newCap := 2 * len(r.buf)
	if newCap == 0 {
		newCap = 64
	}
	nb := make([]nowEvent, newCap)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = nb
	r.head = 0
}

// headSeq reports the schedule order of the oldest entry (r.n must be > 0).
func (r *readyRing) headSeq() uint64 { return r.buf[r.head].seq }

// pop removes and returns the oldest entry's callback, clearing the slot so
// the ring does not retain the closure.
func (r *readyRing) pop() func() {
	fn := r.buf[r.head].fn
	r.buf[r.head] = nowEvent{}
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return fn
}

// heapPush inserts ev into the 4-ary min-heap.
func (e *Engine) heapPush(ev event) {
	h := append(e.heap, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !eventLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	e.heap = h
}

// heapPop removes and returns the minimum event (len(e.heap) must be > 0).
func (e *Engine) heapPop() event {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release the callback reference
	h = h[:n]
	for i := 0; ; {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if eventLess(h[j], h[m]) {
				m = j
			}
		}
		if !eventLess(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	e.heap = h
	return top
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{ctl: make(chan procSignal)}
}

// Now reports the current virtual time. On a sharded root it is the furthest
// LP clock — the instant the sequential engine would have reached.
func (e *Engine) Now() time.Duration {
	if e.shards != nil {
		return e.shardedNow()
	}
	return e.now
}

// Dispatched reports how many events the engine has executed so far (summed
// over the LPs on a sharded root). Two runs of the same configuration execute
// the identical count (used by the determinism tests).
func (e *Engine) Dispatched() uint64 {
	n := e.dispatched
	for _, s := range e.shards {
		n += s.dispatched
	}
	return n
}

// SetDeadline makes Run abort with a *DeadlineError the moment virtual time
// would advance past d, instead of simulating a runaway (or livelocked-in-
// virtual-time) run to completion. Zero disables the deadline. Events
// scheduled exactly at d still execute. An aborted engine is finished:
// callers should Shutdown it, as after any other run.
func (e *Engine) SetDeadline(d time.Duration) {
	if d < 0 {
		panic("sim: negative deadline")
	}
	e.deadline = d
}

// At schedules fn to run at absolute virtual time t. Events scheduled for a
// time in the past run at the current time. Callbacks execute in the engine
// context: they must not block, but they may resume processes (via Future,
// Mailbox, or any primitive built on them) and schedule further events.
func (e *Engine) At(t time.Duration, fn func()) {
	if w := e.win; w != nil {
		// Mid-window on an LP of a sharded run: provisional seq + call log.
		e.winAt(w, t, fn)
		return
	}
	if e.root != nil {
		// Setup phase on an LP: seqs come from the root's global counter, so
		// same-instant events across LPs order exactly as sequentially.
		seq := e.rootSeq()
		if t <= e.now {
			e.ready.push(seq, fn)
			return
		}
		e.heapPush(event{at: t, seq: seq, fn: fn})
		return
	}
	if e.shards != nil {
		panic("sim: At on a sharded root engine (schedule on an LP)")
	}
	e.seq++
	if t <= e.now {
		// Due now (or clamped from the past): the ready ring preserves
		// schedule order, which for same-instant events is dispatch order.
		e.ready.push(e.seq, fn)
		return
	}
	e.heapPush(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d from now.
func (e *Engine) After(d time.Duration, fn func()) { e.At(e.now+d, fn) }

// Go spawns a simulated process that begins executing body at the current
// virtual time. The name is used in deadlock reports and String.
func (e *Engine) Go(name string, body func(*Proc)) *Proc {
	if e.shards != nil {
		panic("sim: Go on a sharded root engine (spawn on an LP)")
	}
	p := &Proc{
		e:      e,
		id:     len(e.procs),
		name:   name,
		resume: make(chan struct{}),
	}
	// The resume thunk is bound once per process; every Sleep and wake
	// reuses it, so handing the baton to a process allocates nothing.
	p.runFn = func() { e.handoff(p) }
	e.procs = append(e.procs, p)
	e.live++
	e.At(e.now, func() { e.start(p, body) })
	return p
}

// start launches the goroutine for p and immediately hands it the baton.
func (e *Engine) start(p *Proc, body func(*Proc)) {
	p.started = true
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(procKilled); !ok {
					panic(r)
				}
			}
			p.state = procDone
			e.ctl <- sigExited
		}()
		<-p.resume
		body(p)
	}()
	e.handoff(p)
}

// handoff transfers the baton to p and waits until p parks or exits.
func (e *Engine) handoff(p *Proc) {
	p.state = procRunning
	p.resume <- struct{}{}
	sig := <-e.ctl
	if sig == sigExited {
		e.live--
	}
}

// wake schedules p to resume at the current virtual time. It goes through
// the ready ring with the process's pre-bound resume thunk: no heap sift,
// no closure allocation.
func (e *Engine) wake(p *Proc) {
	if e.killing {
		// Wakes issued while dying goroutines unwind (e.g. a deferred
		// Future.Set) are meaningless: Shutdown releases every process.
		return
	}
	if p.state != procParked {
		panic(fmt.Sprintf("sim: wake of %s which is %v", p.name, p.state))
	}
	p.state = procReady
	if w := e.win; w != nil {
		e.winWake(w, p)
		return
	}
	if e.root != nil {
		e.ready.push(e.rootSeq(), p.runFn)
		return
	}
	e.seq++
	e.ready.push(e.seq, p.runFn)
}

// Run executes events until both queues drain. It returns a *DeadlockError
// if processes remain parked afterwards, and nil on clean completion.
//
// Dispatch order is the strict (time, seq) total order. The ready ring holds
// only events scheduled at the current instant, and the clock never advances
// while the ring is non-empty — so any heap event that shares the current
// instant was necessarily scheduled earlier (before the clock last advanced)
// and carries a smaller seq. Draining such heap events before the ring, and
// the ring in FIFO order, therefore reproduces exactly the order a single
// (time, seq) heap would produce.
func (e *Engine) Run() error {
	if e.running {
		panic("sim: Engine.Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	if e.shards != nil {
		return e.runSharded()
	}
	for (e.ready.n > 0 || len(e.heap) > 0) && !e.stopped {
		if e.ready.n > 0 {
			// A heap event due at the current instant predates every ring
			// entry (see above); the seq comparison is a cheap guard that
			// keeps this correct even if that invariant ever weakens.
			if len(e.heap) > 0 && e.heap[0].at <= e.now && e.heap[0].seq < e.ready.headSeq() {
				ev := e.heapPop()
				e.dispatched++
				ev.fn()
				continue
			}
			fn := e.ready.pop()
			e.dispatched++
			fn()
			continue
		}
		ev := e.heapPop()
		if ev.at > e.now {
			if e.deadline > 0 && ev.at > e.deadline {
				// The run is about to outlive its deadline. Abort before
				// executing the event; the engine is finished (the popped
				// event is discarded) and should be Shutdown by the caller.
				return &DeadlineError{
					Deadline:   e.deadline,
					Next:       ev.at,
					Parked:     e.parkedReport(),
					Dispatched: e.dispatched,
					Live:       e.live,
				}
			}
			e.now = ev.at
		}
		e.dispatched++
		ev.fn()
	}
	if e.stopped {
		// A stopped engine is dead: release every process goroutine so
		// sweep loops that create (and stop) many engines do not leak.
		e.running = false
		e.Shutdown()
		return nil
	}
	if parked := e.parkedReport(); len(parked) > 0 {
		return &DeadlockError{
			Time:       e.now,
			Parked:     parked,
			Dispatched: e.dispatched,
			Live:       e.live,
		}
	}
	return nil
}

// parkedReport collects the sorted park strings ("name on primitive
// instance") of every non-daemon process still blocked.
func (e *Engine) parkedReport() []string {
	var parked []string
	for _, p := range e.procs {
		if p.state == procParked && !p.daemon {
			parked = append(parked, p.waitReport())
		}
	}
	for _, s := range e.shards {
		for _, p := range s.procs {
			if p.state == procParked && !p.daemon {
				parked = append(parked, p.waitReport())
			}
		}
	}
	sort.Strings(parked)
	return parked
}

// Stop makes Run return after the current event completes. Useful for
// open-ended simulations driven by recurring timers. A stopped engine is
// finished: Run releases all remaining process goroutines before returning.
// On a sharded run (Stop on the root or any LP reaches the root) the run
// stops at the next window fence — still deterministic across repeated runs,
// but the dispatched-event count differs from a sequential engine stopped at
// the same virtual instant.
func (e *Engine) Stop() {
	if e.root != nil {
		e.root.Stop()
		return
	}
	if e.shards != nil {
		e.winStop.Store(true)
		return
	}
	e.stopped = true
}

// Shutdown releases every process goroutine the engine still owns: parked
// processes (daemons included), processes woken but not yet resumed, and
// processes spawned but never started. Blocked goroutines unwind via an
// internal panic, so deferred functions in process bodies still run, but
// re-parking or waking during the unwind is inert. Shutdown is idempotent,
// must not be called from inside Run, and leaves the engine unusable for
// further simulation (state remains readable). Run invokes it automatically
// after Stop; owners of engines with daemon processes call it to reclaim
// their goroutines.
func (e *Engine) Shutdown() {
	if e.running {
		panic("sim: Engine.Shutdown called during Run")
	}
	if e.killing {
		return
	}
	e.killing = true
	// On a sharded root, release every LP first: the runner threads are
	// quiescent outside Run, so the per-LP baton protocols are safe to drive
	// from this thread.
	for _, s := range e.shards {
		s.Shutdown()
	}
	// Index loop: an unwinding process may spawn more procs via defers.
	for i := 0; i < len(e.procs); i++ {
		p := e.procs[i]
		switch {
		case p.state == procDone:
		case !p.started:
			// Spawned but its start event never ran: no goroutine exists.
			p.state = procDone
			e.live--
		default:
			// The goroutine is blocked on <-p.resume inside park. Release
			// it; park sees killing and unwinds, and the spawn wrapper
			// signals the exit we wait for here.
			p.resume <- struct{}{}
			<-e.ctl
			e.live--
		}
	}
}

// Procs returns the processes spawned so far, in spawn order.
func (e *Engine) Procs() []*Proc { return e.procs }

// Live reports how many spawned processes have not yet exited (summed over
// the LPs on a sharded root).
func (e *Engine) Live() int {
	n := e.live
	for _, s := range e.shards {
		n += s.live
	}
	return n
}

// DeadlockError reports processes that were still blocked when the event
// queue drained. It names every parked non-daemon process together with the
// primitive it blocks on, plus enough run state (events dispatched, live
// process count) to diagnose how far the run got before stalling.
type DeadlockError struct {
	Time       time.Duration
	Parked     []string // sorted "name on primitive instance" park strings
	Dispatched uint64   // events executed before the stall
	Live       int      // processes spawned but not yet exited
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v after %d events (%d procs live); parked: %s",
		d.Time, d.Dispatched, d.Live, strings.Join(d.Parked, ", "))
}

// DeadlineError reports a run aborted by SetDeadline: the next pending event
// lay beyond the virtual-time limit. Like DeadlockError it names every
// parked non-daemon process, so runaway runs are diagnosable the same way
// stalls are.
type DeadlineError struct {
	Deadline   time.Duration
	Next       time.Duration // virtual time of the event that would have run
	Parked     []string      // sorted park strings at abort time
	Dispatched uint64        // events executed before the abort
	Live       int           // processes spawned but not yet exited
}

func (d *DeadlineError) Error() string {
	msg := fmt.Sprintf("sim: deadline %v exceeded (next event at %v, %d events dispatched, %d procs live)",
		d.Deadline, d.Next, d.Dispatched, d.Live)
	if len(d.Parked) > 0 {
		msg += "; parked: " + strings.Join(d.Parked, ", ")
	}
	return msg
}
