// Package sim implements a deterministic, process-oriented discrete-event
// simulation engine.
//
// Simulated processes are goroutines coordinated by a strict baton-passing
// protocol: at any instant exactly one goroutine (either the engine or a
// single process) is running, so simulation state needs no locking and every
// run of the same configuration produces the identical event order and the
// identical virtual end time.
//
// Time is virtual. A process advances its own clock with Compute or Sleep,
// synchronizes with others through Future and Mailbox, and the engine
// schedules arbitrary callbacks with At. When the event heap drains while
// processes are still parked, Run reports a deadlock naming the culprits.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Engine owns the virtual clock and the pending-event queue.
// Create one with NewEngine, spawn processes with Go, then call Run.
type Engine struct {
	now    time.Duration
	events eventHeap
	seq    uint64

	ctl   chan procSignal // processes signal the engine here when parking/exiting
	procs []*Proc
	live  int // spawned but not yet exited

	running bool
	stopped bool
	killing bool // Shutdown in progress or complete; primitives go inert
}

// procKilled is the panic value used to unwind process goroutines during
// Shutdown. It is recovered by the spawn wrapper and never escapes.
type procKilled struct{}

// procSignal tells the engine what the currently running process just did.
type procSignal uint8

const (
	sigParked procSignal = iota // process blocked; it will wait on its resume channel
	sigExited                   // process body returned
)

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{ctl: make(chan procSignal)}
}

// Now reports the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// At schedules fn to run at absolute virtual time t. Events scheduled for a
// time in the past run at the current time. Callbacks execute in the engine
// context: they must not block, but they may resume processes (via Future,
// Mailbox, or any primitive built on them) and schedule further events.
func (e *Engine) At(t time.Duration, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d from now.
func (e *Engine) After(d time.Duration, fn func()) { e.At(e.now+d, fn) }

// Go spawns a simulated process that begins executing body at the current
// virtual time. The name is used in deadlock reports and String.
func (e *Engine) Go(name string, body func(*Proc)) *Proc {
	p := &Proc{
		e:      e,
		id:     len(e.procs),
		name:   name,
		resume: make(chan struct{}),
	}
	e.procs = append(e.procs, p)
	e.live++
	e.At(e.now, func() { e.start(p, body) })
	return p
}

// start launches the goroutine for p and immediately hands it the baton.
func (e *Engine) start(p *Proc, body func(*Proc)) {
	p.started = true
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(procKilled); !ok {
					panic(r)
				}
			}
			p.state = procDone
			e.ctl <- sigExited
		}()
		<-p.resume
		body(p)
	}()
	e.handoff(p)
}

// handoff transfers the baton to p and waits until p parks or exits.
func (e *Engine) handoff(p *Proc) {
	p.state = procRunning
	p.resume <- struct{}{}
	sig := <-e.ctl
	if sig == sigExited {
		e.live--
	}
}

// wake schedules p to resume at the current virtual time.
func (e *Engine) wake(p *Proc) {
	if e.killing {
		// Wakes issued while dying goroutines unwind (e.g. a deferred
		// Future.Set) are meaningless: Shutdown releases every process.
		return
	}
	if p.state != procParked {
		panic(fmt.Sprintf("sim: wake of %s which is %v", p.name, p.state))
	}
	p.state = procReady
	e.At(e.now, func() { e.handoff(p) })
}

// Run executes events until the queue drains. It returns a *DeadlockError if
// processes remain parked afterwards, and nil on clean completion.
func (e *Engine) Run() error {
	if e.running {
		panic("sim: Engine.Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.events) > 0 && !e.stopped {
		ev := heap.Pop(&e.events).(event)
		if ev.at > e.now {
			e.now = ev.at
		}
		ev.fn()
	}
	if e.stopped {
		// A stopped engine is dead: release every process goroutine so
		// sweep loops that create (and stop) many engines do not leak.
		e.running = false
		e.Shutdown()
		return nil
	}
	var parked []string
	for _, p := range e.procs {
		if p.state == procParked && !p.daemon {
			parked = append(parked, p.waitReport())
		}
	}
	if len(parked) > 0 {
		sort.Strings(parked)
		return &DeadlockError{Time: e.now, Parked: parked}
	}
	return nil
}

// Stop makes Run return after the current event completes. Useful for
// open-ended simulations driven by recurring timers. A stopped engine is
// finished: Run releases all remaining process goroutines before returning.
func (e *Engine) Stop() { e.stopped = true }

// Shutdown releases every process goroutine the engine still owns: parked
// processes (daemons included), processes woken but not yet resumed, and
// processes spawned but never started. Blocked goroutines unwind via an
// internal panic, so deferred functions in process bodies still run, but
// re-parking or waking during the unwind is inert. Shutdown is idempotent,
// must not be called from inside Run, and leaves the engine unusable for
// further simulation (state remains readable). Run invokes it automatically
// after Stop; owners of engines with daemon processes call it to reclaim
// their goroutines.
func (e *Engine) Shutdown() {
	if e.running {
		panic("sim: Engine.Shutdown called during Run")
	}
	if e.killing {
		return
	}
	e.killing = true
	// Index loop: an unwinding process may spawn more procs via defers.
	for i := 0; i < len(e.procs); i++ {
		p := e.procs[i]
		switch {
		case p.state == procDone:
		case !p.started:
			// Spawned but its start event never ran: no goroutine exists.
			p.state = procDone
			e.live--
		default:
			// The goroutine is blocked on <-p.resume inside park. Release
			// it; park sees killing and unwinds, and the spawn wrapper
			// signals the exit we wait for here.
			p.resume <- struct{}{}
			<-e.ctl
			e.live--
		}
	}
}

// Procs returns the processes spawned so far, in spawn order.
func (e *Engine) Procs() []*Proc { return e.procs }

// Live reports how many spawned processes have not yet exited.
func (e *Engine) Live() int { return e.live }

// DeadlockError reports processes that were still blocked when the event
// queue drained.
type DeadlockError struct {
	Time   time.Duration
	Parked []string
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v; parked: %s", d.Time, strings.Join(d.Parked, ", "))
}
