package trace

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"albatross/internal/apps/sor"
	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/netsim"
)

func TestBucketing(t *testing.T) {
	tl := New(time.Millisecond)
	tl.Add(0, "a", 1)
	tl.Add(999*time.Microsecond, "a", 2)
	tl.Add(time.Millisecond, "a", 5)
	tl.Add(10*time.Millisecond, "b", 7)
	if got := tl.Counts("a"); len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("a buckets %v", got)
	}
	if tl.Total("a") != 8 || tl.Total("b") != 7 {
		t.Fatalf("totals %d %d", tl.Total("a"), tl.Total("b"))
	}
	if got := tl.Series(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("series %v", got)
	}
}

func TestSparklineWidthAndScale(t *testing.T) {
	tl := New(time.Millisecond)
	for i := 0; i < 100; i++ {
		tl.Add(time.Duration(i)*time.Millisecond, "x", int64(i))
	}
	s := tl.Sparkline("x", 20)
	if len([]rune(s)) != 20 {
		t.Fatalf("sparkline width %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[19] != '@' {
		t.Fatalf("peak cell %q, want '@': %q", runes[19], s)
	}
	if runes[0] == '@' {
		t.Fatalf("low cell rendered as peak: %q", s)
	}
}

func TestTotalPreservedByBucketing(t *testing.T) {
	prop := func(vals []uint8) bool {
		tl := New(100 * time.Microsecond)
		var want int64
		for i, v := range vals {
			tl.Add(time.Duration(i)*37*time.Microsecond, "s", int64(v))
			want += int64(v)
		}
		return tl.Total("s") == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRenderContainsAllSeries(t *testing.T) {
	tl := New(time.Millisecond)
	tl.Add(0, "rpc", 3)
	tl.Add(time.Millisecond, "bcast", 1)
	out := tl.Render(30)
	if !strings.Contains(out, "rpc") || !strings.Contains(out, "bcast") {
		t.Fatalf("render missing series:\n%s", out)
	}
}

func TestAddBeforeTimeZeroClampsToFirstBucket(t *testing.T) {
	tl := New(time.Millisecond)
	tl.Add(-5*time.Millisecond, "x", 2) // must not panic
	tl.Add(-1, "x", 1)
	tl.Add(0, "x", 4)
	if got := tl.Counts("x"); len(got) != 1 || got[0] != 7 {
		t.Fatalf("x buckets %v, want [7]", got)
	}
}

func TestRenderShortSpanNeverShowsZeroCell(t *testing.T) {
	tl := New(time.Nanosecond)
	tl.Add(0, "x", 1)
	tl.Add(3, "x", 1) // span of 4ns rendered at width 30
	out := tl.Render(30)
	if strings.Contains(out, "one cell = 0s") {
		t.Fatalf("zero-width cell rendered:\n%s", out)
	}
}

func TestRenderEmptyTimeline(t *testing.T) {
	tl := New(time.Millisecond)
	out := tl.Render(30)
	if strings.Contains(out, "one cell = 0s") {
		t.Fatalf("zero-width cell rendered for empty timeline:\n%s", out)
	}
}

// TestTapIntegration runs a real application with a timeline tap attached
// and checks the recorded traffic matches the run's counters.
func TestTapIntegration(t *testing.T) {
	sys := core.NewSystem(core.Config{
		Topology: cluster.DAS(2, 3),
		Params:   cluster.DASParams(),
	})
	tl := New(time.Millisecond)
	sys.Net.SetTap(func(at time.Duration, m netsim.Msg, inter bool) {
		scope := "intra"
		if inter {
			scope = "inter"
		}
		tl.Add(at, scope+"/"+m.Kind.String(), 1)
	})
	cfg := sor.Config{NX: 24, NY: 16, Omega: 1.7, Eps: 1e-4, MaxIters: 3000,
		CellCost: time.Microsecond, SkipMod: 3}
	verify := sor.Build(sys, cfg, false)
	m, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := verify(); err != nil {
		t.Fatal(err)
	}
	var tapped int64
	for _, s := range tl.Series() {
		tapped += tl.Total(s)
	}
	want := m.Net.TotalIntra().Msgs + m.Net.TotalInter().Msgs
	if tapped != want {
		t.Fatalf("tap saw %d messages, stats counted %d", tapped, want)
	}
	if tl.Total("inter/data") == 0 {
		t.Fatal("no intercluster data traffic recorded for a 2-cluster SOR run")
	}
}

func TestFaultSeriesUseDistinctGlyphs(t *testing.T) {
	tl := New(time.Millisecond)
	for i := 0; i < 40; i++ {
		tl.Add(time.Duration(i)*time.Millisecond, "inter/data", int64(i))
		tl.Add(time.Duration(i)*time.Millisecond, FaultSeriesPrefix+"drop", int64(i))
	}
	traffic := tl.Sparkline("inter/data", 20)
	fault := tl.Sparkline(FaultSeriesPrefix+"drop", 20)
	if traffic == fault {
		t.Fatalf("fault row renders like traffic: %q", fault)
	}
	// Identical data, so the peak cell shows each ramp's top rune.
	tr, fr := []rune(traffic), []rune(fault)
	if tr[19] != '@' || fr[19] != '@' {
		t.Fatalf("peaks %q / %q", tr[19], fr[19])
	}
	// Mid-density cells come from different ramps.
	if strings.ContainsAny(fault, ".:-=+*#") {
		t.Fatalf("fault sparkline %q uses traffic glyphs", fault)
	}
	if strings.ContainsAny(traffic, "'!xoXO%") {
		t.Fatalf("traffic sparkline %q uses fault glyphs", traffic)
	}
	// Both rows appear in the rendered timeline.
	out := tl.Render(20)
	if !strings.Contains(out, "fault/drop") || !strings.Contains(out, "inter/data") {
		t.Fatalf("render missing a row:\n%s", out)
	}
}
