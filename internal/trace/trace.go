// Package trace aggregates simulation activity into time-bucketed series
// and renders them as text timelines — a lightweight way to see *when* a
// run communicates (bursts, phases, saturation plateaus), complementing the
// run-total counters of netsim.Stats.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Timeline accumulates per-series event counts into fixed-width buckets of
// virtual time.
type Timeline struct {
	bucket time.Duration
	series map[string][]int64
	maxLen int
}

// New creates a timeline with the given bucket width.
func New(bucket time.Duration) *Timeline {
	if bucket <= 0 {
		panic("trace: bucket must be positive")
	}
	return &Timeline{bucket: bucket, series: make(map[string][]int64)}
}

// Bucket returns the bucket width.
func (t *Timeline) Bucket() time.Duration { return t.bucket }

// Add records n events on the series at virtual time at. Events before time
// zero (e.g. from callers that pre-date their clock) land in the first bucket.
func (t *Timeline) Add(at time.Duration, series string, n int64) {
	if at < 0 {
		at = 0
	}
	idx := int(at / t.bucket)
	s := t.series[series]
	for len(s) <= idx {
		s = append(s, 0)
	}
	s[idx] += n
	t.series[series] = s
	if len(s) > t.maxLen {
		t.maxLen = len(s)
	}
}

// Series returns the sorted series names.
func (t *Timeline) Series() []string {
	names := make([]string, 0, len(t.series))
	for k := range t.series {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Counts returns a copy of one series' buckets.
func (t *Timeline) Counts(series string) []int64 {
	return append([]int64(nil), t.series[series]...)
}

// Total returns the sum over one series.
func (t *Timeline) Total(series string) int64 {
	var sum int64
	for _, v := range t.series[series] {
		sum += v
	}
	return sum
}

// sparkRunes are the eight density levels of a text sparkline.
var sparkRunes = []rune(" .:-=+*#@")

// faultRunes are the density levels used for fault series: visually
// unmistakable from traffic rows, so injected drops, outages and retries
// stand out when reading a chaos run's timeline.
var faultRunes = []rune(" '!xoXO%@")

// FaultSeriesPrefix marks a series as fault events. Series whose name starts
// with this prefix (e.g. "fault/drop", "fault/outage") render with a
// distinct glyph ramp.
const FaultSeriesPrefix = "fault/"

// rampFor selects the glyph ramp for a series by name.
func rampFor(series string) []rune {
	if strings.HasPrefix(series, FaultSeriesPrefix) {
		return faultRunes
	}
	return sparkRunes
}

// Sparkline renders one series as a density string of the given width,
// rebinning the buckets as needed. The scale is the series' own maximum.
func (t *Timeline) Sparkline(series string, width int) string {
	s := t.series[series]
	if len(s) == 0 || width <= 0 {
		return strings.Repeat(" ", max(width, 0))
	}
	// Rebin to width cells over the timeline's full span.
	cells := make([]int64, width)
	span := t.maxLen
	for i, v := range s {
		c := i * width / span
		if c >= width {
			c = width - 1
		}
		cells[c] += v
	}
	var peak int64 = 1
	for _, v := range cells {
		if v > peak {
			peak = v
		}
	}
	ramp := rampFor(series)
	out := make([]rune, width)
	for i, v := range cells {
		lvl := int(v * int64(len(ramp)-1) / peak)
		out[i] = ramp[lvl]
	}
	return string(out)
}

// Render prints all series as aligned sparklines with totals.
func (t *Timeline) Render(width int) string {
	var b strings.Builder
	span := time.Duration(t.maxLen) * t.bucket
	cell := span / time.Duration(max(width, 1))
	if cell < time.Nanosecond {
		// Span shorter than the cell count: each cell still covers at
		// least the simulator's resolution, never "0s".
		cell = time.Nanosecond
	}
	disp := cell.Round(time.Microsecond)
	if disp <= 0 {
		disp = cell // sub-microsecond cells print exact, not rounded away
	}
	fmt.Fprintf(&b, "timeline over %v (one cell = %v)\n", span.Round(time.Millisecond), disp)
	for _, name := range t.Series() {
		fmt.Fprintf(&b, "%-14s |%s| %d\n", name, t.Sparkline(name, width), t.Total(name))
	}
	return b.String()
}
