module albatross

go 1.22
